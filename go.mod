module codetomo

go 1.22
