package codetomo

import (
	"testing"

	"codetomo/internal/apps"
)

// TestPGONeverRegressesPastPlacement is the end-to-end timing regression
// gate for the profile-guided passes: over the whole benchmark corpus,
// the full PGO stack (inline + superblock + hot/cold + page packing)
// under a flash-page penalty must never end up slower than placement
// alone on the identical workload. Output equality is already enforced
// inside the pipeline, so each Run is also a semantics check.
func TestPGONeverRegressesPastPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus pipeline comparison; skipped in -short")
	}
	// The placement corpus plus the call-heavy inlining kernel.
	for _, app := range append(apps.All(), apps.CallChain) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			src, err := app.Source(600)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{Workload: app.Workload, Seed: 11, PageCrossPenalty: 5}
			placed, err := Run(src, base)
			if err != nil {
				t.Fatalf("placement-only run: %v", err)
			}
			pgoCfg := base
			pgoCfg.PGOInline = true
			pgoCfg.PGOSuperblock = true
			pgoCfg.PGOHotCold = true
			pgoCfg.PGOPagePack = true
			pgod, err := Run(src, pgoCfg)
			if err != nil {
				t.Fatalf("pgo run: %v", err)
			}
			if placed.Before.Cycles != pgod.Before.Cycles {
				t.Fatalf("baselines diverged: %d vs %d cycles", placed.Before.Cycles, pgod.Before.Cycles)
			}
			if pgod.After.Cycles > placed.After.Cycles {
				t.Errorf("pgo build is slower than placement-only: %d > %d cycles (baseline %d)",
					pgod.After.Cycles, placed.After.Cycles, placed.Before.Cycles)
			}
		})
	}
}

// TestPGOFallbackIsNoOp pins the trust gate on the PGO side: when every
// procedure's estimate falls back (here: branchless helpers plus a main
// with too few samples to profile), the PGO passes must leave the build
// exactly where placement-only left it — placeholder uniform weights on
// branchless procedures are not profile data and must not reorder or pad
// anything.
func TestPGOFallbackIsNoOp(t *testing.T) {
	src := `
var ema int = 0;

func update(sample int) int {
	ema = ema + ((sample - ema) / 8);
	return ema;
}

func main() {
	var i int;
	for (i = 0; i < 40; i = i + 1) {
		debug(update(sense()));
	}
}`
	base := Config{Seed: 7, PageCrossPenalty: 5}
	placed, err := Run(src, base)
	if err != nil {
		t.Fatal(err)
	}
	pgoCfg := base
	pgoCfg.PGOInline = true
	pgoCfg.PGOSuperblock = true
	pgoCfg.PGOHotCold = true
	pgoCfg.PGOPagePack = true
	pgod, err := Run(src, pgoCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range pgod.Estimates {
		if !pe.Fallback {
			t.Fatalf("estimate for %q did not fall back; the fixture no longer tests the gate", pe.Proc)
		}
	}
	if pgod.After.Cycles != placed.After.Cycles {
		t.Errorf("PGO changed an all-fallback build: %d vs %d cycles",
			pgod.After.Cycles, placed.After.Cycles)
	}
}
