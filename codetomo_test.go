package codetomo

import (
	"errors"
	"strings"
	"testing"

	"codetomo/internal/apps"
	"codetomo/internal/mote"
	"codetomo/internal/tomography"
)

func sourceFor(t *testing.T, name string, iters int) string {
	t.Helper()
	a, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	src, err := a.Source(iters)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestPipelineEndToEnd(t *testing.T) {
	src := sourceFor(t, "sense", 2000)
	res, err := Run(src, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) == 0 {
		t.Fatal("no procedures estimated")
	}
	var handler *ProcEstimate
	for i := range res.Estimates {
		if res.Estimates[i].Proc == "sample" {
			handler = &res.Estimates[i]
		}
	}
	if handler == nil {
		t.Fatal("handler estimate missing")
	}
	if handler.Fallback {
		t.Fatal("handler fell back to static heuristics")
	}
	if handler.SampleCount != 2000 {
		t.Fatalf("handler samples = %d", handler.SampleCount)
	}
	if handler.MAE > 0.1 {
		t.Fatalf("handler MAE = %v, want < 0.1", handler.MAE)
	}
	for _, be := range handler.Branches {
		if be.Prob < 0 || be.Prob > 1 {
			t.Fatalf("estimate out of range: %+v", be)
		}
	}
	// The end metric: optimized layout must not be worse.
	if res.After.Mispredicts > res.Before.Mispredicts {
		t.Fatalf("mispredicts grew: %d -> %d", res.Before.Mispredicts, res.After.Mispredicts)
	}
	if res.Speedup() < 1.0 {
		t.Fatalf("speedup = %v < 1", res.Speedup())
	}
	if res.Before.EnergyUJ <= 0 {
		t.Fatal("energy not computed")
	}
}

func TestPipelineAllApps(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			src := sourceFor(t, a.Name, 800)
			res, err := Run(src, Config{Seed: 11, Workload: a.Workload})
			if err != nil {
				t.Fatal(err)
			}
			// Output preserved is checked inside Run (ErrOutputChanged);
			// here assert the pipeline never makes things materially
			// worse.
			if res.After.MispredictRate() > res.Before.MispredictRate()*1.05+0.01 {
				t.Fatalf("misprediction rate regressed: %.4f -> %.4f",
					res.Before.MispredictRate(), res.After.MispredictRate())
			}
		})
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	src := sourceFor(t, "sense", 100)
	if _, err := Run(src, Config{Workload: "unknown"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run("not a program", Config{}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	src := sourceFor(t, "sense", 100)
	cases := []struct {
		cfg  Config
		want string // substring of the error
	}{
		{Config{TickDiv: -1}, "TickDiv"},
		{Config{MinSamples: -5}, "MinSamples"},
		{Config{MaxVisits: -1}, "MaxVisits"},
		{Config{MinCoverage: -0.5}, "MinCoverage"},
		{Config{MinCoverage: 1.01}, "MinCoverage"},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not name %q", i, err, tc.want)
		}
		// Run rejects the same configs up front.
		if _, err := Run(src, tc.cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
	// Zero values still select defaults.
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestPipelineCustomSensorAndEstimator(t *testing.T) {
	src := sourceFor(t, "quantize", 600)
	res, err := Run(src, Config{
		Sensor:    constSensor(700),
		Estimator: tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Constant input: every *executed* branch is deterministic, so its
	// oracle probability is 0 or 1 (branches in dead arms never execute
	// and keep the 0.5 prior).
	degenerate := 0
	for _, pe := range res.Estimates {
		if pe.Proc != "binof" {
			continue
		}
		for _, be := range pe.Branches {
			if be.Oracle == 0 || be.Oracle == 1 {
				degenerate++
			}
		}
	}
	if degenerate == 0 {
		t.Fatal("constant input produced no degenerate branches")
	}
}

type constSensor uint16

func (c constSensor) Next() uint16 { return uint16(c) }

func TestPipelineBTFN(t *testing.T) {
	src := sourceFor(t, "eventdetect", 800)
	res, err := Run(src, Config{Seed: 3, Workload: "bursty", Predictor: mote.BTFN{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MispredictRate() > res.Before.MispredictRate()*1.05+0.01 {
		t.Fatalf("BTFN: rate regressed %.4f -> %.4f",
			res.Before.MispredictRate(), res.After.MispredictRate())
	}
}

func TestErrOutputChangedIsSentinel(t *testing.T) {
	if !errors.Is(ErrOutputChanged, ErrOutputChanged) {
		t.Fatal("sentinel broken")
	}
}

func TestRunStatsHelpers(t *testing.T) {
	s := RunStats{CondBranches: 100, Mispredicts: 25}
	if s.MispredictRate() != 0.25 {
		t.Fatalf("rate = %v", s.MispredictRate())
	}
	if (RunStats{}).MispredictRate() != 0 {
		t.Fatal("zero-branch rate should be 0")
	}
	r := Result{Before: RunStats{Cycles: 200, CondBranches: 10, Mispredicts: 4},
		After: RunStats{Cycles: 100, CondBranches: 10, Mispredicts: 1}}
	if r.Speedup() != 2 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if red := r.MispredictReduction(); red < 0.7499 || red > 0.7501 {
		t.Fatalf("reduction = %v", red)
	}
}

func TestPipelineWithBackendOptimizations(t *testing.T) {
	src := sourceFor(t, "sense", 1500)
	res, err := Run(src, Config{Seed: 7, FuseCompares: true, RotateLoops: true, Predictor: mote.BTFN{}})
	if err != nil {
		t.Fatal(err)
	}
	// Optimized backend + BTFN + tomography placement must still deliver
	// on the headline metric without breaking semantics (Run verifies
	// output equality internally).
	if res.After.MispredictRate() > res.Before.MispredictRate()+0.01 {
		t.Fatalf("rate regressed: %.4f -> %.4f",
			res.Before.MispredictRate(), res.After.MispredictRate())
	}
}

func TestPipelineReportsAmbiguity(t *testing.T) {
	// quantize's balanced if-tree is structurally ambiguous at tick 8;
	// the result must carry that diagnostic.
	src := sourceFor(t, "quantize", 1000)
	res, err := Run(src, Config{Seed: 3, Workload: "diurnal"})
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, pe := range res.Estimates {
		if pe.Proc != "binof" {
			continue
		}
		if len(pe.Branches) == 0 {
			t.Fatal("binof has no branch estimates")
		}
		for _, b := range pe.Branches {
			if b.Ambiguity < 0 || b.Ambiguity > 1 {
				t.Fatalf("ambiguity out of range: %+v", b)
			}
			if b.Ambiguity > 0.9 {
				high++
			}
		}
	}
	if high == 0 {
		t.Fatal("quantize at tick 8 should report highly ambiguous branches")
	}

	// At tick 1 the same program is identifiable: ambiguity must drop on
	// most branches.
	res1, err := Run(src, Config{Seed: 3, Workload: "diurnal", TickDiv: 1})
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, pe := range res1.Estimates {
		if pe.Proc != "binof" {
			continue
		}
		for _, b := range pe.Branches {
			if b.Ambiguity < 0.5 {
				low++
			}
		}
	}
	if low == 0 {
		t.Fatal("tick-1 ambiguity did not drop")
	}
}

// TestPipelineStaticResolve checks the opt-in static-analysis path: a
// branch the ADC rail proves one-way is pinned instead of estimated, and
// the accepted fit sits inside the static envelope.
func TestPipelineStaticResolve(t *testing.T) {
	src := `
func handler() int {
	var v int;
	var r int;
	v = sense();
	r = 0;
	if (v < 2000) {
		r = r + v / 3;
	} else {
		r = 99;
	}
	if (v < 500) {
		r = r + v / 5 + v % 11 + 1;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 800; i = i + 1) {
		acc = acc + handler();
	}
	debug(acc);
}`
	res, err := Run(src, Config{Seed: 9, StaticResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	var handler *ProcEstimate
	for i := range res.Estimates {
		if res.Estimates[i].Proc == "handler" {
			handler = &res.Estimates[i]
		}
	}
	if handler == nil {
		t.Fatal("handler estimate missing")
	}
	if handler.Fallback {
		t.Fatal("handler fell back to static heuristics")
	}
	if handler.ResolvedBranches != 1 {
		t.Fatalf("resolved branches = %d, want 1", handler.ResolvedBranches)
	}
	if handler.EnvelopeViolation {
		t.Fatal("healthy fit flagged as an envelope violation")
	}
	// The pinned branch is excluded from the estimated set: only the
	// genuine branch's edges remain.
	for _, be := range handler.Branches {
		if be.Prob < 0 || be.Prob > 1 {
			t.Fatalf("estimate out of range: %+v", be)
		}
	}
	if handler.MAE > 0.1 {
		t.Fatalf("handler MAE = %v, want < 0.1", handler.MAE)
	}

	// Same pipeline without the flag: nothing resolved, nothing flagged.
	res2, err := Run(src, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range res2.Estimates {
		if pe.ResolvedBranches != 0 || pe.EnvelopeViolation {
			t.Fatalf("static fields set without StaticResolve: %+v", pe)
		}
	}
}
