#!/bin/sh
# verify.sh: the repo's tier-1 check. Everything here must pass before a
# change lands: formatting, vet, a clean build, the full test suite under
# the race detector (the fleet simulator and streaming estimator are
# concurrent), and the linter over the example corpus (clean.mc must stay
# clean; the demo programs only carry warnings, so ctlint exits 0 on all
# of them).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$badfmt" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke (packet decoder)"
go test ./internal/trace -run=NONE -fuzz=FuzzPacketDecode -fuzztime=5s

echo "== fuzz smoke (interpreter cores)"
# Differential fuzzing of the fused dispatch core against the reference
# Step core: any state divergence on a random program is a crash.
go test ./internal/mote -run=NONE -fuzz=FuzzFastCore -fuzztime=5s

echo "== fuzz smoke (static bounds)"
# Random programs: measured cycles and stack depth must never exceed the
# static WCET/stack bounds, with and without dead-branch elimination.
go test ./internal/compile -run=NONE -fuzz=FuzzStaticBounds -fuzztime=5s

echo "== fuzz smoke (PGO passes)"
# Differential fuzzing of the profile-guided pipeline: random programs,
# random weights, and random pass combinations must preserve semantics
# bit-for-bit against a plain build under flash-page penalties.
go test ./internal/compile -run=NONE -fuzz=FuzzPGOPasses -fuzztime=5s

echo "== fuzz smoke (checkpoint codec)"
# Random bytes at the checkpoint decoder: corrupt or truncated images must
# be rejected cleanly, and every accepted image must re-encode to an
# equivalent checkpoint.
go test ./internal/mote -run=NONE -fuzz=FuzzCheckpointDecode -fuzztime=5s

echo "== staticcheck"
# Pinned in CI images that carry it; skipped offline (no network installs).
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi

echo "== bench smoke (estimation kernel, interpreter cores, station, fleet, energy, compile, layout)"
# One iteration of every benchmark: keeps the bench code compiling and
# running without paying for stable timings. -benchmem so the fleet
# pipeline's bytes-per-mote stays visible in the smoke output.
go test ./internal/tomography ./internal/markov ./internal/mote ./internal/station ./internal/fleet ./internal/fault ./internal/compile ./internal/layout -run='^$' -bench=. -benchtime=1x -benchmem

echo "== fleet scale smoke (fl3 at 10^5 motes)"
# The streaming cohort pipeline at CI scale: a hundred thousand motes must
# simulate, uplink, and reduce without materializing the fleet.
go run ./cmd/ctbench -exp fl3 -fleetmax 100000

echo "== pgo sweep smoke (pg1 at 400 samples)"
# The full profile-guided pipeline end to end on every kernel: profile,
# estimate, then placement-only vs each PGO pass vs the full stack under
# a flash-page penalty. Smoke sample count keeps it under a second.
go run ./cmd/ctbench -exp pg1 -samples 400

echo "== station smoke (daemon boot, loopback push, HTTP, clean shutdown)"
# Boots ctstationd in-process on ephemeral loopback ports, pushes one
# simulated fleet round over the ARQ'd TCP ingest, asserts /healthz and a
# non-empty /v1/models, and verifies the SIGTERM drain path exits 0.
go test ./cmd/ctstationd -run='^TestStationSmoke$' -count=1

echo "== ctlint examples"
go run ./cmd/ctlint examples/minic/*.mc

echo "verify.sh: all checks passed"
