// Quickstart: run the complete Code Tomography pipeline on a small
// sense-and-report program and print what it estimated and what placement
// bought.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	codetomo "codetomo"
)

// A classic sensor-network kernel: sample, threshold, report. The branch
// probabilities depend on the input distribution and are unknown at compile
// time — exactly what Code Tomography estimates from timing alone.
const program = `
var threshold int = 520;

func sample() int {
	var v int;
	v = sense();
	if (v > threshold) {
		send(v);
		return 1;
	}
	return 0;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 2000; i = i + 1) {
		acc = acc + sample();
	}
	debug(acc);
}
`

func main() {
	res, err := codetomo.Run(program, codetomo.Config{
		Workload: "gaussian", // N(300, 120²) sensor readings
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("What the estimator recovered from timestamps alone:")
	for _, pe := range res.Estimates {
		if pe.Fallback {
			fmt.Printf("  %s: left alone (%d samples)\n", pe.Proc, pe.SampleCount)
			continue
		}
		fmt.Printf("  %s (%d samples, MAE %.4f):\n", pe.Proc, pe.SampleCount, pe.MAE)
		for _, b := range pe.Branches {
			fmt.Printf("    edge b%d->b%d: estimated %.3f, true %.3f\n",
				b.FromBlock, b.ToBlock, b.Prob, b.Oracle)
		}
	}

	fmt.Println("\nWhat feeding it back to the compiler bought:")
	fmt.Printf("  misprediction rate: %.2f%% -> %.2f%%  (%.1f%% reduction)\n",
		100*res.Before.MispredictRate(), 100*res.After.MispredictRate(),
		100*res.MispredictReduction())
	fmt.Printf("  cycles:             %d -> %d  (%.3fx speedup)\n",
		res.Before.Cycles, res.After.Cycles, res.Speedup())
	fmt.Printf("  program output unchanged: %v\n", res.Output)
}
