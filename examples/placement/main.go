// Placement strategy shoot-out: compile one benchmark under five block
// layouts — original, random, static heuristics, Code Tomography, and the
// exact-profile oracle — and measure mispredictions and cycles on the
// identical workload. This is Figure 4/5 of the evaluation in miniature.
//
//	go run ./examples/placement [app]
package main

import (
	"fmt"
	"log"
	"os"

	"codetomo/internal/apps"
	"codetomo/internal/bench"
	"codetomo/internal/mote"
	"codetomo/internal/report"
)

func main() {
	name := "quantize"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if _, ok := apps.ByName(name); !ok {
		log.Fatalf("unknown app %q (valid: %v)", name, apps.Names())
	}

	cfg := bench.DefaultConfig()
	cfg.Samples = 3000
	cfg.Predictor = mote.StaticNotTaken{}

	// FigF4/FigF5 run all eight apps; here we print both metrics for one
	// app by rendering the rows of each table that match it.
	f4, err := bench.FigF4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f5, err := bench.FigF5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pick := func(t *report.Table) *report.Table {
		out := &report.Table{Title: t.Title, Header: t.Header, Note: t.Note}
		for _, row := range t.Rows {
			if row[0] == name {
				out.Rows = append(out.Rows, row)
			}
		}
		return out
	}
	fmt.Print(pick(f4).Render())
	fmt.Println()
	fmt.Print(pick(f5).Render())
	fmt.Println("\nfull-suite tables: go run ./cmd/ctbench -exp f4 (and f5)")
}
