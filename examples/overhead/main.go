// Overhead study: what does profiling cost on the mote? Compares Code
// Tomography's two-timestamps-per-invocation against classical per-arc
// counters for every benchmark — flash bytes, RAM bytes, runtime cycles,
// and energy. This is the paper's core deployment argument: motes can
// afford boundary timestamps where they cannot afford counters everywhere.
//
//	go run ./examples/overhead
package main

import (
	"fmt"
	"log"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/workload"
)

func main() {
	energy := mote.DefaultEnergyModel()
	fmt.Printf("%-12s %-14s %8s %8s %10s %10s\n",
		"app", "strategy", "code +B", "RAM B", "cycles +%", "energy +uJ")

	for _, a := range apps.All() {
		src, err := a.Source(2000)
		if err != nil {
			log.Fatal(err)
		}
		run := func(mode compile.Mode) (*compile.Output, mote.Stats) {
			out, err := compile.Build(src, compile.Options{Instrument: mode})
			if err != nil {
				log.Fatal(err)
			}
			cfg := mote.DefaultConfig()
			rng := stats.NewRNG(7)
			sensor, _ := workload.Named(a.Workload, rng)
			cfg.Sensor = sensor
			cfg.Entropy = workload.NewEntropy(rng.Fork())
			m := mote.New(out.Code, cfg)
			if err := m.Run(2_000_000_000); err != nil {
				log.Fatal(err)
			}
			return out, m.Stats()
		}

		baseOut, baseStats := run(compile.ModeNone)
		for _, mode := range []compile.Mode{compile.ModeTimestamps, compile.ModeEdgeCounters} {
			instOut, instStats := run(mode)
			o := profile.MeasureOverhead(mode.String(), baseOut.Meta, instOut.Meta, baseStats, instStats, energy)
			fmt.Printf("%-12s %-14s %8d %8d %9.2f%% %10.1f\n",
				a.Name, o.Strategy, o.CodeBytes, o.RAMBytes, o.ExtraCyclesPct, o.ExtraEnergyUJ)
		}
	}
	fmt.Println("\ntimestamps = Code Tomography's instrumentation; edge-counters = full profiling baseline")
}
