// Event detection under a bursty environment: the scenario the paper's
// introduction motivates. A hysteresis detector's branch behaviour depends
// entirely on the field's event statistics; this example estimates those
// branch probabilities with all three tomography estimators and compares
// them against the simulator's ground truth.
//
//	go run ./examples/eventdetection
package main

import (
	"fmt"
	"log"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

const tickDiv = 8

func main() {
	app, _ := apps.ByName("eventdetect")
	src, err := app.Source(4000)
	if err != nil {
		log.Fatal(err)
	}

	// Build with timestamp instrumentation and run under Poisson event
	// bursts (5% event starts, mean burst of 8 readings).
	out, err := compile.Build(src, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		log.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	cfg.TickDiv = tickDiv
	cfg.Sensor = workload.NewPoissonEvents(stats.NewRNG(99), 0.05, 8)
	m := mote.New(out.Code, cfg)
	if err := m.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}

	// Extract the handler's end-to-end durations — the only measurement
	// the estimators see.
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		log.Fatal(err)
	}
	pm := out.Meta.ProcByName[app.Handler]
	ticks := trace.ExclusiveByProc(ivs)[pm.Index]
	samples := trace.DurationsCycles(ticks, tickDiv)
	fmt.Printf("collected %d duration samples of %s (quantized to %d-cycle ticks)\n\n",
		len(samples), app.Handler, tickDiv)

	model, err := tomography.NewModel(out, app.Handler, cfg.Predictor,
		markov.EnumerateOptions{MaxVisits: 12, MaxPaths: 30000})
	if err != nil {
		log.Fatal(err)
	}
	truth := profile.OracleProbs(pm, model.Proc, m.BranchStats())

	estimators := []tomography.Estimator{
		tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: tickDiv}},
		tomography.Moments{},
		tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: tickDiv}},
	}
	fmt.Printf("%-24s", "branch edge")
	for _, e := range estimators {
		fmt.Printf("  %9s", e.Name())
	}
	fmt.Printf("  %9s\n", "oracle")

	results := make([]markov.EdgeProbs, len(estimators))
	for i, e := range estimators {
		probs, err := e.Estimate(model, samples)
		if err != nil {
			log.Fatalf("%s: %v", e.Name(), err)
		}
		results[i] = probs
	}
	for _, edge := range model.BranchEdgeList() {
		fmt.Printf("b%-3d -> b%-17d", edge[0], edge[1])
		for i := range estimators {
			fmt.Printf("  %9.3f", results[i][edge])
		}
		fmt.Printf("  %9.3f\n", truth[edge])
	}

	fmt.Println()
	for i, e := range estimators {
		mae, _ := stats.MAE(model.ProbVector(results[i]), model.ProbVector(truth))
		fmt.Printf("%-10s MAE vs oracle: %.4f\n", e.Name(), mae)
	}
	fmt.Printf("\nevents detected during the run: %v (debug output)\n", m.DebugOutput())
}
