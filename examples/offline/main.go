// Offline analysis: the deployment workflow split in two. A mote runs the
// instrumented binary in the field and uploads its trace log; later, the
// host decodes the log and estimates branch probabilities without ever
// re-running the program. This example performs both halves, passing the
// trace through the on-disk format in between.
//
//	go run ./examples/offline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

func main() {
	app, _ := apps.ByName("fir")
	src, err := app.Source(3000)
	if err != nil {
		log.Fatal(err)
	}
	out, err := compile.Build(src, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		log.Fatal(err)
	}

	// --- In the field: run and upload the trace log. ---
	cfg := mote.DefaultConfig()
	rng := stats.NewRNG(2024)
	sensor, _ := workload.Named(app.Workload, rng)
	cfg.Sensor = sensor
	m := mote.New(out.Code, cfg)
	if err := m.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}

	path := filepath.Join(os.TempDir(), "codetomo-offline.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteEvents(f, m.Trace()); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field: uploaded %d trace events (%s)\n", len(m.Trace()), path)

	// --- On the host: decode and estimate, no re-execution. ---
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	events, err := trace.ReadEvents(rf)
	if err != nil {
		log.Fatal(err)
	}
	rf.Close()
	os.Remove(path)

	ivs, err := trace.Extract(events)
	if err != nil {
		log.Fatal(err)
	}
	pm := out.Meta.ProcByName[app.Handler]
	ticks := trace.ExclusiveByProc(ivs)[pm.Index]
	samples := trace.DurationsCycles(ticks, cfg.TickDiv)
	fmt.Printf("host:  decoded %d invocations of %s\n", len(samples), app.Handler)

	model, err := tomography.NewModel(out, app.Handler, cfg.Predictor,
		markov.EnumerateOptions{MaxVisits: 12, MaxPaths: 30000})
	if err != nil {
		log.Fatal(err)
	}
	probs, st, err := tomography.EstimateEM(model, samples,
		tomography.EMConfig{KernelHalfWidth: float64(cfg.TickDiv)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host:  EM converged in %d iterations (log-likelihood %.1f)\n",
		st.Iterations, st.LogLikelihood)
	for _, e := range model.BranchEdgeList() {
		fmt.Printf("       edge b%d->b%d: %.3f\n", e[0], e[1], probs[e])
	}
	fmt.Println("\n(feed these into layout.PlanAll + compile.Options to rebuild optimized firmware)")
}
