// Package codetomo is the public face of the Code Tomography
// reproduction: estimation-based profiling for code placement optimization
// in sensor network programs (Wan, Cao, Zhou — ISPASS 2015).
//
// The pipeline it exposes is the paper's workflow end to end:
//
//  1. compile a MiniC sensor program with timestamp instrumentation at
//     procedure boundaries (the only measurement Code Tomography needs);
//  2. run it on the simulated M16 mote under a nondeterministic workload,
//     collecting the quantized entry/exit timer readings;
//  3. model each procedure as a discrete-time Markov chain over its basic
//     blocks and estimate the branch probabilities from the end-to-end
//     duration samples alone;
//  4. feed the estimates back to the compiler's block-placement pass
//     (Pettis–Hansen chaining) and rebuild without instrumentation;
//  5. re-run and report the branch misprediction and cycle improvements.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the full
// evaluation; package internal/bench regenerates every table and figure.
package codetomo

import (
	"errors"
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// Config tunes a pipeline run. The zero value is usable: it profiles with
// the Gaussian workload, an 8-cycle timer tick, and the predict-not-taken
// pipeline.
type Config struct {
	// Workload names the input regime: gaussian, uniform, bursty, regime,
	// or diurnal (default gaussian). Sensor, if non-nil, overrides it.
	Workload string
	Sensor   mote.SampleSource
	// Seed drives all randomness (default 1).
	Seed int64
	// TickDiv is the hardware timer prescaler in cycles (default 8).
	TickDiv int
	// Predictor is the static branch predictor (default predict-not-taken).
	Predictor mote.Predictor
	// Estimator selects the estimation strategy (default EM tuned to the
	// timer resolution).
	Estimator tomography.Estimator
	// MinSamples is the fewest observations required to estimate a
	// procedure; below it the static Ball–Larus heuristic is used
	// (default 50).
	MinSamples int
	// MaxCycles bounds each simulated run (default 2e9).
	MaxCycles uint64
	// MaxVisits bounds loop unrolling during path enumeration (default 12).
	MaxVisits int
	// MinCoverage is the fraction of duration samples the path model must
	// explain for an estimate to be trusted; below it the procedure falls
	// back to static heuristics (default 0.85).
	MinCoverage float64
	// FuseCompares and RotateLoops enable the backend's optional
	// optimization passes in every build of the pipeline.
	FuseCompares bool
	RotateLoops  bool
	// StaticResolve feeds the compiler's value-range analysis into the
	// estimator: branches proven one-way are pinned instead of estimated
	// (fewer free parameters, fewer spurious mixture components), and each
	// fitted estimate is sanity-checked against the procedure's static
	// feasible duration envelope. Off by default.
	StaticResolve bool
	// PGOInline, PGOSuperblock, PGOHotCold, and PGOPagePack enable the
	// profile-guided optimization passes beyond placement in the optimized
	// rebuild (see compile.PGOOptions), driven by the same estimated
	// probabilities that drive placement. All off by default.
	PGOInline     bool
	PGOSuperblock bool
	PGOHotCold    bool
	PGOPagePack   bool
	// PageCrossPenalty, when positive, charges that many cycles on every
	// executed control transfer landing on a different flash page — in the
	// simulated mote and the timing metadata of every build of the
	// pipeline (default 0: uniform flash).
	PageCrossPenalty int
}

// Validate rejects configurations Run cannot honor. Zero values are legal
// everywhere — they select the documented defaults — but negative knobs
// and out-of-range fractions are configuration bugs and fail loudly
// instead of being silently clamped.
func (c Config) Validate() error {
	if c.TickDiv < 0 {
		return fmt.Errorf("codetomo: TickDiv = %d; must be positive (zero selects the default of 8)", c.TickDiv)
	}
	if c.MinSamples < 0 {
		return fmt.Errorf("codetomo: MinSamples = %d; must be positive (zero selects the default of 50)", c.MinSamples)
	}
	if c.MaxVisits < 0 {
		return fmt.Errorf("codetomo: MaxVisits = %d; must be positive (zero selects the default of 12)", c.MaxVisits)
	}
	if c.MinCoverage < 0 || c.MinCoverage > 1 {
		return fmt.Errorf("codetomo: MinCoverage = %v; must be a fraction in [0, 1] (zero selects the default of 0.85)", c.MinCoverage)
	}
	if c.PageCrossPenalty < 0 {
		return fmt.Errorf("codetomo: PageCrossPenalty = %d; must be non-negative (zero models uniform flash)", c.PageCrossPenalty)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "gaussian"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TickDiv <= 0 {
		c.TickDiv = 8
	}
	if c.Predictor == nil {
		c.Predictor = mote.StaticNotTaken{}
	}
	if c.Estimator == nil {
		c.Estimator = tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: float64(c.TickDiv)}}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.MaxVisits <= 0 {
		c.MaxVisits = 12
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.85
	}
	return c
}

// RunStats summarizes one execution.
type RunStats struct {
	Cycles        uint64
	Instructions  uint64
	CondBranches  uint64
	TakenBranches uint64
	Mispredicts   uint64
	EnergyUJ      float64
}

// MispredictRate is Mispredicts / CondBranches (0 when no branches ran).
func (s RunStats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

func runStats(m *mote.Machine) RunStats {
	s := m.Stats()
	return RunStats{
		Cycles:        s.Cycles,
		Instructions:  s.Instructions,
		CondBranches:  s.CondBranches,
		TakenBranches: s.TakenBranches,
		Mispredicts:   s.Mispredicts,
		EnergyUJ:      mote.DefaultEnergyModel().Energy(s),
	}
}

// BranchEstimate is one estimated branch edge.
type BranchEstimate struct {
	// FromBlock and ToBlock are CFG block IDs within the procedure.
	FromBlock, ToBlock int
	// Prob is the Code Tomography estimate; Oracle is the simulator's
	// ground truth for the same run.
	Prob, Oracle float64
	// Ambiguity is the structural identifiability diagnostic for the
	// source branch (tomography.Model.BranchAmbiguity): mass of execution
	// paths whose durations cannot reveal this branch's direction at the
	// measured timer resolution. Values near 1 mean Prob should not be
	// trusted even when the estimator converged.
	Ambiguity float64
}

// ProcEstimate is the estimation outcome for one procedure.
type ProcEstimate struct {
	Proc string
	// SampleCount is the number of duration observations used.
	SampleCount int
	// Branches lists the branch edges with estimated and true
	// probabilities; empty when the procedure was below MinSamples and
	// fell back to static heuristics.
	Branches []BranchEstimate
	// MAE is the mean absolute error against the oracle.
	MAE float64
	// Fallback reports the static heuristic was used instead.
	Fallback bool
	// TrimmedSamples counts observations the robust estimator discarded
	// as model-implausible outliers (0 under plain estimation).
	TrimmedSamples int
	// LostPartials counts invocations of this procedure that were
	// power-truncated mid-execution (intermittent fleets only). They carry
	// no duration, but their count corrects the survival bias of the
	// completed samples.
	LostPartials int
	// LowConfidence reports the robust estimator did not trust its own
	// result (excessive trimming or non-convergence); the procedure's
	// layout was left at the baseline instead of being optimized on it.
	LowConfidence bool
	// ResolvedBranches counts branch blocks the static value-range
	// analysis proved one-way under Config.StaticResolve; they were pinned
	// rather than estimated and are excluded from Branches and MAE.
	ResolvedBranches int
	// EnvelopeViolation reports that the fitted estimate implied an
	// expected duration outside the procedure's static feasible envelope
	// (Config.StaticResolve only); the estimate was discarded and the
	// procedure's layout left at the baseline.
	EnvelopeViolation bool
}

// Result is the outcome of one full pipeline run.
type Result struct {
	// Estimates holds per-procedure estimation results (procedures with
	// branches only).
	Estimates []ProcEstimate
	// Before and After are the uninstrumented runs under the original and
	// the tomography-optimized layout, on the identical workload.
	Before, After RunStats
	// Output is the optimized binary's debug-port output (must equal the
	// original's; the pipeline verifies this).
	Output []uint16
}

// MispredictReduction returns the relative misprediction-rate improvement
// (0.25 = 25% fewer mispredicts per branch).
func (r *Result) MispredictReduction() float64 {
	b := r.Before.MispredictRate()
	if b == 0 {
		return 0
	}
	return (b - r.After.MispredictRate()) / b
}

// Speedup returns Before.Cycles / After.Cycles.
func (r *Result) Speedup() float64 {
	if r.After.Cycles == 0 {
		return 0
	}
	return float64(r.Before.Cycles) / float64(r.After.Cycles)
}

// ErrOutputChanged reports that the optimized binary produced different
// output — a pipeline bug, never expected.
var ErrOutputChanged = errors.New("codetomo: optimized layout changed program output")

// ambiguityWindow is the collision distance used for the identifiability
// diagnostic: paths closer than ~a quarter tick produce essentially
// identical tick distributions and carry no separating signal.
func ambiguityWindow(tickDiv int) float64 {
	w := float64(tickDiv) / 4
	if w < 1 {
		w = 1
	}
	return w
}

// sensorPair builds the workload and entropy sources for one run. It is
// called once per execution so every run of a pipeline sees the identical
// input stream.
func (c Config) sensorPair() (mote.SampleSource, mote.SampleSource, error) {
	rng := stats.NewRNG(c.Seed)
	entropy := workload.NewEntropy(stats.NewRNG(c.Seed + 7919))
	if c.Sensor != nil {
		return c.Sensor, entropy, nil
	}
	s, ok := workload.Named(c.Workload, rng)
	if !ok {
		return nil, nil, fmt.Errorf("codetomo: unknown workload %q", c.Workload)
	}
	return s, entropy, nil
}

// execute builds source with opts (plus the config's optimization flags)
// and runs it to completion on a fresh mote. Callers must pass a config
// whose defaults are already filled in.
func (c Config) execute(source string, opts compile.Options) (*compile.Output, *mote.Machine, error) {
	opts.FuseCompares = c.FuseCompares
	opts.RotateLoops = c.RotateLoops
	if c.PageCrossPenalty > 0 && opts.Cost == nil {
		cost := isa.DefaultCostModel()
		cost.PageCrossPenalty = uint32(c.PageCrossPenalty)
		opts.Cost = cost
	}
	out, err := compile.Build(source, opts)
	if err != nil {
		return nil, nil, err
	}
	sensor, entropy, err := c.sensorPair()
	if err != nil {
		return nil, nil, err
	}
	mc := mote.DefaultConfig()
	mc.TickDiv = c.TickDiv
	mc.Predictor = c.Predictor
	mc.Sensor = sensor
	mc.Entropy = entropy
	if opts.Cost != nil {
		mc.Cost = opts.Cost
	}
	m := mote.New(out.Code, mc)
	if err := m.Run(c.MaxCycles); err != nil {
		return nil, nil, err
	}
	return out, m, nil
}

// pgoEnabled reports whether any profile-guided pass beyond placement is
// selected.
func (c Config) pgoEnabled() bool {
	return c.PGOInline || c.PGOSuperblock || c.PGOHotCold || c.PGOPagePack
}

// pgoOptions converts the trusted per-procedure probability estimates into
// compile.PGOOptions: each estimated procedure gets expected edge traversal
// weights (the same conversion placement uses), and the selected passes are
// enabled. Procedures without a trusted estimate get no weights and are
// left untouched by every pass.
func (c Config) pgoOptions(prog *cfg.Program, probs map[string]markov.EdgeProbs) *compile.PGOOptions {
	weights := make(map[string]compile.ProcWeights, len(probs))
	for _, p := range prog.Procs {
		ep, ok := probs[p.Name]
		if !ok {
			continue
		}
		// Branchless procedures carry a markov.Uniform placeholder so
		// placement has deterministic chain weights; that is not profile
		// data, and letting it drive the PGO passes (page packing in
		// particular reorders and pads whatever it has weights for) would
		// transform code the estimator knows nothing about.
		if len(p.BranchBlocks()) == 0 {
			continue
		}
		weights[p.Name] = compile.ProcWeights(layout.FromProbs(p, ep))
	}
	return &compile.PGOOptions{
		Weights:    weights,
		Inline:     c.PGOInline,
		Superblock: c.PGOSuperblock,
		HotCold:    c.PGOHotCold,
		PagePack:   c.PGOPagePack,
	}
}

// measureLayouts is the pipeline's tail: run the uninstrumented binary
// under the original and the optimized layout on the identical workload,
// and verify the optimization preserved the program's output. When pgo is
// non-nil the optimized build additionally runs the selected
// profile-guided passes; layouts and hints are then recomputed inside the
// build from the (pass-transformed) weights, so the plan is ignored.
func (c Config) measureLayouts(source string, plan layout.Plan, pgo *compile.PGOOptions) (before, after RunStats, output []uint16, err error) {
	_, beforeM, err := c.execute(source, compile.Options{})
	if err != nil {
		return RunStats{}, RunStats{}, nil, err
	}
	afterOpts := compile.Options{Layouts: plan.Layouts, BranchHints: plan.Hints}
	if pgo != nil {
		afterOpts.PGO = pgo
	}
	_, afterM, err := c.execute(source, afterOpts)
	if err != nil {
		return RunStats{}, RunStats{}, nil, err
	}
	b, a := beforeM.DebugOutput(), afterM.DebugOutput()
	if len(b) != len(a) {
		return RunStats{}, RunStats{}, nil, ErrOutputChanged
	}
	for i := range b {
		if b[i] != a[i] {
			return RunStats{}, RunStats{}, nil, ErrOutputChanged
		}
	}
	return runStats(beforeM), runStats(afterM), a, nil
}

// resolvedBranchCount counts the branch blocks the model pinned from
// static analysis (each contributes its full out-edge set to Pinned).
func resolvedBranchCount(m *tomography.Model) int {
	blocks := make(map[int]bool)
	for e := range m.Pinned {
		blocks[int(e[0])] = true
	}
	return len(blocks)
}

// branchEstimates assembles the per-edge report for one estimated
// procedure: estimate vs oracle per branch edge, the identifiability
// diagnostic, and the mean absolute error.
func branchEstimates(model *tomography.Model, est, oracle markov.EdgeProbs, tickDiv int) ([]BranchEstimate, float64) {
	ambiguity := model.BranchAmbiguity(ambiguityWindow(tickDiv))
	var branches []BranchEstimate
	mae := 0.0
	for _, e := range model.BranchEdgeList() {
		be := BranchEstimate{
			FromBlock: int(e[0]), ToBlock: int(e[1]),
			Prob: est[e], Oracle: oracle[e],
			Ambiguity: ambiguity[ir.BlockID(e[0])],
		}
		branches = append(branches, be)
		d := be.Prob - be.Oracle
		if d < 0 {
			d = -d
		}
		mae += d
	}
	if len(branches) > 0 {
		mae /= float64(len(branches))
	}
	return branches, mae
}

// Run executes the full Code Tomography pipeline on MiniC source text.
func Run(source string, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	enum := markov.EnumerateOptions{MaxVisits: cfg.MaxVisits, MaxPaths: 30000}

	// 1–2. Profile run with timestamp instrumentation.
	prof, profM, err := cfg.execute(source, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		return nil, err
	}
	ivs, err := trace.Extract(profM.Trace())
	if err != nil {
		return nil, err
	}
	byProc := trace.ExclusiveByProc(ivs)

	// 3. Estimate each procedure.
	res := &Result{}
	probs := make(map[string]markov.EdgeProbs)
	for _, p := range prof.CFG.Procs {
		pm := prof.Meta.ProcByName[p.Name]
		if len(p.BranchBlocks()) == 0 {
			probs[p.Name] = markov.Uniform(p)
			continue
		}
		pe := ProcEstimate{Proc: p.Name, SampleCount: len(byProc[pm.Index])}
		oracle := profile.OracleProbs(pm, p, profM.BranchStats())
		var est markov.EdgeProbs
		var model *tomography.Model
		if pe.SampleCount >= cfg.MinSamples {
			m, err := tomography.NewModelOpts(prof, p.Name, cfg.Predictor, enum,
				tomography.ModelOptions{StaticResolve: cfg.StaticResolve})
			if err != nil {
				return nil, fmt.Errorf("codetomo: model %s: %w", p.Name, err)
			}
			pe.ResolvedBranches = resolvedBranchCount(m)
			samples := trace.DurationsCycles(byProc[pm.Index], cfg.TickDiv)
			// Trust the path model only when it explains the data —
			// loops that exceed the unrolling bound show up here.
			if m.Coverage(samples, float64(cfg.TickDiv)) >= cfg.MinCoverage {
				est, err = cfg.Estimator.Estimate(m, samples)
				if err != nil {
					return nil, fmt.Errorf("codetomo: estimate %s: %w", p.Name, err)
				}
				// A fit whose expected duration is statically infeasible is
				// noise; do not let it drive placement.
				if !m.EnvelopeCheck(est, float64(cfg.TickDiv)) {
					pe.EnvelopeViolation = true
					est = nil
				} else {
					model = m
				}
			}
		}
		if model == nil {
			// Untrusted estimate: report the fallback and leave this
			// procedure's layout alone (excluded from probs below).
			pe.Fallback = true
			res.Estimates = append(res.Estimates, pe)
			continue
		}
		pe.Branches, pe.MAE = branchEstimates(model, est, oracle, cfg.TickDiv)
		probs[p.Name] = est
		res.Estimates = append(res.Estimates, pe)
	}

	// 4–5. Optimize placement, rebuild uninstrumented, verify, report.
	plan := layout.PlanAll(prof.CFG, probs)
	var pgo *compile.PGOOptions
	if cfg.pgoEnabled() {
		pgo = cfg.pgoOptions(prof.CFG, probs)
	}
	res.Before, res.After, res.Output, err = cfg.measureLayouts(source, plan, pgo)
	if err != nil {
		return nil, err
	}
	return res, nil
}
