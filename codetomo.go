// Package codetomo is the public face of the Code Tomography
// reproduction: estimation-based profiling for code placement optimization
// in sensor network programs (Wan, Cao, Zhou — ISPASS 2015).
//
// The pipeline it exposes is the paper's workflow end to end:
//
//  1. compile a MiniC sensor program with timestamp instrumentation at
//     procedure boundaries (the only measurement Code Tomography needs);
//  2. run it on the simulated M16 mote under a nondeterministic workload,
//     collecting the quantized entry/exit timer readings;
//  3. model each procedure as a discrete-time Markov chain over its basic
//     blocks and estimate the branch probabilities from the end-to-end
//     duration samples alone;
//  4. feed the estimates back to the compiler's block-placement pass
//     (Pettis–Hansen chaining) and rebuild without instrumentation;
//  5. re-run and report the branch misprediction and cycle improvements.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the full
// evaluation; package internal/bench regenerates every table and figure.
package codetomo

import (
	"errors"
	"fmt"

	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// Config tunes a pipeline run. The zero value is usable: it profiles with
// the Gaussian workload, an 8-cycle timer tick, and the predict-not-taken
// pipeline.
type Config struct {
	// Workload names the input regime: gaussian, uniform, bursty, regime,
	// or diurnal (default gaussian). Sensor, if non-nil, overrides it.
	Workload string
	Sensor   mote.SampleSource
	// Seed drives all randomness (default 1).
	Seed int64
	// TickDiv is the hardware timer prescaler in cycles (default 8).
	TickDiv int
	// Predictor is the static branch predictor (default predict-not-taken).
	Predictor mote.Predictor
	// Estimator selects the estimation strategy (default EM tuned to the
	// timer resolution).
	Estimator tomography.Estimator
	// MinSamples is the fewest observations required to estimate a
	// procedure; below it the static Ball–Larus heuristic is used
	// (default 50).
	MinSamples int
	// MaxCycles bounds each simulated run (default 2e9).
	MaxCycles uint64
	// MaxVisits bounds loop unrolling during path enumeration (default 12).
	MaxVisits int
	// MinCoverage is the fraction of duration samples the path model must
	// explain for an estimate to be trusted; below it the procedure falls
	// back to static heuristics (default 0.85).
	MinCoverage float64
	// FuseCompares and RotateLoops enable the backend's optional
	// optimization passes in every build of the pipeline.
	FuseCompares bool
	RotateLoops  bool
}

func (c Config) withDefaults() Config {
	if c.Workload == "" {
		c.Workload = "gaussian"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TickDiv <= 0 {
		c.TickDiv = 8
	}
	if c.Predictor == nil {
		c.Predictor = mote.StaticNotTaken{}
	}
	if c.Estimator == nil {
		c.Estimator = tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: float64(c.TickDiv)}}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.MaxVisits <= 0 {
		c.MaxVisits = 12
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.85
	}
	return c
}

// RunStats summarizes one execution.
type RunStats struct {
	Cycles        uint64
	Instructions  uint64
	CondBranches  uint64
	TakenBranches uint64
	Mispredicts   uint64
	EnergyUJ      float64
}

// MispredictRate is Mispredicts / CondBranches (0 when no branches ran).
func (s RunStats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

func runStats(m *mote.Machine) RunStats {
	s := m.Stats()
	return RunStats{
		Cycles:        s.Cycles,
		Instructions:  s.Instructions,
		CondBranches:  s.CondBranches,
		TakenBranches: s.TakenBranches,
		Mispredicts:   s.Mispredicts,
		EnergyUJ:      mote.DefaultEnergyModel().Energy(s),
	}
}

// BranchEstimate is one estimated branch edge.
type BranchEstimate struct {
	// FromBlock and ToBlock are CFG block IDs within the procedure.
	FromBlock, ToBlock int
	// Prob is the Code Tomography estimate; Oracle is the simulator's
	// ground truth for the same run.
	Prob, Oracle float64
	// Ambiguity is the structural identifiability diagnostic for the
	// source branch (tomography.Model.BranchAmbiguity): mass of execution
	// paths whose durations cannot reveal this branch's direction at the
	// measured timer resolution. Values near 1 mean Prob should not be
	// trusted even when the estimator converged.
	Ambiguity float64
}

// ProcEstimate is the estimation outcome for one procedure.
type ProcEstimate struct {
	Proc string
	// SampleCount is the number of duration observations used.
	SampleCount int
	// Branches lists the branch edges with estimated and true
	// probabilities; empty when the procedure was below MinSamples and
	// fell back to static heuristics.
	Branches []BranchEstimate
	// MAE is the mean absolute error against the oracle.
	MAE float64
	// Fallback reports the static heuristic was used instead.
	Fallback bool
}

// Result is the outcome of one full pipeline run.
type Result struct {
	// Estimates holds per-procedure estimation results (procedures with
	// branches only).
	Estimates []ProcEstimate
	// Before and After are the uninstrumented runs under the original and
	// the tomography-optimized layout, on the identical workload.
	Before, After RunStats
	// Output is the optimized binary's debug-port output (must equal the
	// original's; the pipeline verifies this).
	Output []uint16
}

// MispredictReduction returns the relative misprediction-rate improvement
// (0.25 = 25% fewer mispredicts per branch).
func (r *Result) MispredictReduction() float64 {
	b := r.Before.MispredictRate()
	if b == 0 {
		return 0
	}
	return (b - r.After.MispredictRate()) / b
}

// Speedup returns Before.Cycles / After.Cycles.
func (r *Result) Speedup() float64 {
	if r.After.Cycles == 0 {
		return 0
	}
	return float64(r.Before.Cycles) / float64(r.After.Cycles)
}

// ErrOutputChanged reports that the optimized binary produced different
// output — a pipeline bug, never expected.
var ErrOutputChanged = errors.New("codetomo: optimized layout changed program output")

// ambiguityWindow is the collision distance used for the identifiability
// diagnostic: paths closer than ~a quarter tick produce essentially
// identical tick distributions and carry no separating signal.
func ambiguityWindow(tickDiv int) float64 {
	w := float64(tickDiv) / 4
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the full Code Tomography pipeline on MiniC source text.
func Run(source string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	enum := markov.EnumerateOptions{MaxVisits: cfg.MaxVisits, MaxPaths: 30000}

	newSensor := func() (mote.SampleSource, mote.SampleSource, error) {
		rng := stats.NewRNG(cfg.Seed)
		entropy := workload.NewEntropy(stats.NewRNG(cfg.Seed + 7919))
		if cfg.Sensor != nil {
			return cfg.Sensor, entropy, nil
		}
		s, ok := workload.Named(cfg.Workload, rng)
		if !ok {
			return nil, nil, fmt.Errorf("codetomo: unknown workload %q", cfg.Workload)
		}
		return s, entropy, nil
	}
	execute := func(opts compile.Options) (*compile.Output, *mote.Machine, error) {
		opts.FuseCompares = cfg.FuseCompares
		opts.RotateLoops = cfg.RotateLoops
		out, err := compile.Build(source, opts)
		if err != nil {
			return nil, nil, err
		}
		sensor, entropy, err := newSensor()
		if err != nil {
			return nil, nil, err
		}
		mc := mote.DefaultConfig()
		mc.TickDiv = cfg.TickDiv
		mc.Predictor = cfg.Predictor
		mc.Sensor = sensor
		mc.Entropy = entropy
		m := mote.New(out.Code, mc)
		if err := m.Run(cfg.MaxCycles); err != nil {
			return nil, nil, err
		}
		return out, m, nil
	}

	// 1–2. Profile run with timestamp instrumentation.
	prof, profM, err := execute(compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		return nil, err
	}
	ivs, err := trace.Extract(profM.Trace())
	if err != nil {
		return nil, err
	}
	byProc := trace.ExclusiveByProc(ivs)

	// 3. Estimate each procedure.
	res := &Result{}
	probs := make(map[string]markov.EdgeProbs)
	for _, p := range prof.CFG.Procs {
		pm := prof.Meta.ProcByName[p.Name]
		if len(p.BranchBlocks()) == 0 {
			probs[p.Name] = markov.Uniform(p)
			continue
		}
		pe := ProcEstimate{Proc: p.Name, SampleCount: len(byProc[pm.Index])}
		oracle := profile.OracleProbs(pm, p, profM.BranchStats())
		var est markov.EdgeProbs
		var model *tomography.Model
		if pe.SampleCount >= cfg.MinSamples {
			m, err := tomography.NewModel(prof, p.Name, cfg.Predictor, enum)
			if err != nil {
				return nil, fmt.Errorf("codetomo: model %s: %w", p.Name, err)
			}
			samples := trace.DurationsCycles(byProc[pm.Index], cfg.TickDiv)
			// Trust the path model only when it explains the data —
			// loops that exceed the unrolling bound show up here.
			if m.Coverage(samples, float64(cfg.TickDiv)) >= cfg.MinCoverage {
				est, err = cfg.Estimator.Estimate(m, samples)
				if err != nil {
					return nil, fmt.Errorf("codetomo: estimate %s: %w", p.Name, err)
				}
				model = m
			}
		}
		if model == nil {
			// Untrusted estimate: report the fallback and leave this
			// procedure's layout alone (excluded from probs below).
			pe.Fallback = true
			res.Estimates = append(res.Estimates, pe)
			continue
		} else {
			ambiguity := model.BranchAmbiguity(ambiguityWindow(cfg.TickDiv))
			for _, e := range model.BranchEdgeList() {
				be := BranchEstimate{
					FromBlock: int(e[0]), ToBlock: int(e[1]),
					Prob: est[e], Oracle: oracle[e],
					Ambiguity: ambiguity[ir.BlockID(e[0])],
				}
				pe.Branches = append(pe.Branches, be)
				d := be.Prob - be.Oracle
				if d < 0 {
					d = -d
				}
				pe.MAE += d
			}
			if len(pe.Branches) > 0 {
				pe.MAE /= float64(len(pe.Branches))
			}
		}
		probs[p.Name] = est
		res.Estimates = append(res.Estimates, pe)
	}

	// 4. Optimize placement and rebuild uninstrumented.
	plan := layout.PlanAll(prof.CFG, probs)
	_, beforeM, err := execute(compile.Options{})
	if err != nil {
		return nil, err
	}
	_, afterM, err := execute(compile.Options{Layouts: plan.Layouts, BranchHints: plan.Hints})
	if err != nil {
		return nil, err
	}

	// 5. Verify semantics and report.
	before, after := beforeM.DebugOutput(), afterM.DebugOutput()
	if len(before) != len(after) {
		return nil, ErrOutputChanged
	}
	for i := range before {
		if before[i] != after[i] {
			return nil, ErrOutputChanged
		}
	}
	res.Before = runStats(beforeM)
	res.After = runStats(afterM)
	res.Output = after
	return res, nil
}
