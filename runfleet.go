package codetomo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"codetomo/internal/compile"
	"codetomo/internal/fault"
	"codetomo/internal/fleet"
	"codetomo/internal/isa"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
)

// MaxFleetMotes bounds the deployment size RunFleet accepts. Wire-format
// mote IDs are 16-bit, so above 65535 IDs wrap; that is harmless
// in-process (reassembly is per-mote and never mixes motes), but paths
// that put IDs on the wire (FleetUploads, FleetFrames) keep the 65535
// cap.
const MaxFleetMotes = 1 << 20

// FleetConfig tunes a fleet pipeline run: the base pipeline knobs plus the
// deployment shape, the radio channel, and the streaming-estimation
// schedule. The zero value is usable — four motes on the base workload
// over a perfect link.
type FleetConfig struct {
	Config

	// Motes is the deployment size (default 4, max MaxFleetMotes).
	Motes int
	// Workloads assigns input regimes to motes round-robin; empty means
	// every mote observes Config.Workload (through its own seed).
	Workloads []string
	// Workers bounds concurrent mote simulations (default 4). It affects
	// wall time only, never results.
	Workers int
	// Cohort is the streaming scheduler's batch size — motes per pooled
	// worker task (default fleet.DefaultCohortSize). Like Workers it moves
	// wall time and peak memory only, never results.
	Cohort int
	// EventsPerPacket is the radio batching granularity (default 32, max
	// trace.MaxPacketEvents).
	EventsPerPacket int
	// DropProb, DupProb, and ReorderProb describe the lossy uplink; all
	// default to 0 (perfect channel). CorruptProb adds per-transmission
	// single-bit flips on top.
	DropProb, DupProb, ReorderProb, CorruptProb float64
	// PacketVersion selects the uplink wire format: 0 or
	// trace.PacketVersionCRC for the CRC-16'd v2 frames (default), or
	// trace.PacketVersionLegacy for the original CRC-less format, under
	// which corrupted frames decode silently wrong instead of being
	// rejected.
	PacketVersion int
	// ARQRetries bounds selective-repeat retransmission rounds per uplink
	// (0 = ARQ off). Requires the CRC packet format. ARQBackoffTicks is
	// the base of the deterministic exponential backoff charged between
	// rounds (0 = default 64).
	ARQRetries      int
	ARQBackoffTicks uint64
	// Faults injects deterministic mote faults — watchdog crash/reboots,
	// brownouts, sensor stuck-at and glitch faults — into every mote. The
	// zero value is a healthy deployment. Faults.Seed derives from Seed
	// when left 0.
	Faults fault.Config
	// Energy powers every mote from an energy-harvesting capacitor
	// (fault.EnergyConfig): power cuts wherever the program's own draw
	// empties the charge, completed invocations become a survival-biased
	// sample, and the estimator corrects the bias from the lost-partial
	// counts. The zero value is a mains-powered deployment. Energy.Seed
	// derives from Seed when left 0.
	Energy fault.EnergyConfig
	// Checkpoint is the checkpoint/restore policy motes run under Energy
	// (zero = cold boot on every outage; ignored on mains power).
	Checkpoint mote.CheckpointPolicy
	// Robust replaces plain EM with the outlier-trimmed robust estimator
	// and gates placement on per-procedure confidence: low-confidence
	// procedures keep the baseline layout instead of being optimized on
	// contaminated estimates.
	Robust bool
	// TrimWidth is the robust outlier cut in cycles — samples farther
	// than this from every enumerated path duration are discarded
	// (0 = default 4× the EM kernel half-width). MaxTrimFraction flags a
	// procedure low-confidence when a larger fraction of its samples was
	// trimmed (0 = default 0.25).
	TrimWidth       float64
	MaxTrimFraction float64
	// Batches is the number of uplink rounds each mote's stream is split
	// into for incremental re-estimation (default 8).
	Batches int
	// ConvergeTol and ConvergePatience control the streaming early stop:
	// estimation halts once no branch probability moves more than
	// ConvergeTol for ConvergePatience consecutive rounds (defaults 1e-3
	// and 2).
	ConvergeTol      float64
	ConvergePatience int
}

// Validate rejects configurations RunFleet cannot honor, with the same
// zero-selects-default convention as Config.Validate.
func (c FleetConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Motes < 0 || c.Motes > MaxFleetMotes {
		return fmt.Errorf("codetomo: Motes = %d; must be in [1, %d] (zero selects the default of 4)", c.Motes, MaxFleetMotes)
	}
	if c.Workers < 0 {
		return fmt.Errorf("codetomo: Workers = %d; must be positive (zero selects the default of 4)", c.Workers)
	}
	if c.Cohort < 0 {
		return fmt.Errorf("codetomo: Cohort = %d; must be positive (zero selects the default of %d)", c.Cohort, fleet.DefaultCohortSize)
	}
	if c.EventsPerPacket < 0 || c.EventsPerPacket > trace.MaxPacketEvents {
		return fmt.Errorf("codetomo: EventsPerPacket = %d; must be in [1, %d] (zero selects the default of %d)",
			c.EventsPerPacket, trace.MaxPacketEvents, trace.DefaultEventsPerPacket)
	}
	link := fleet.LinkConfig{
		DropProb: c.DropProb, DupProb: c.DupProb, ReorderProb: c.ReorderProb,
		CorruptProb:   c.CorruptProb,
		PacketVersion: c.PacketVersion,
		ARQ:           fleet.ARQConfig{MaxRetries: c.ARQRetries, BackoffBaseTicks: c.ARQBackoffTicks},
	}
	if err := link.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.Checkpoint.EveryKInvocations < 0 {
		return fmt.Errorf("codetomo: Checkpoint.EveryKInvocations = %d; must be >= 0", c.Checkpoint.EveryKInvocations)
	}
	if c.Checkpoint.OnLowChargeFrac < 0 || c.Checkpoint.OnLowChargeFrac >= 1 {
		return fmt.Errorf("codetomo: Checkpoint.OnLowChargeFrac = %v; must be a fraction in [0, 1)", c.Checkpoint.OnLowChargeFrac)
	}
	if c.TrimWidth < 0 {
		return fmt.Errorf("codetomo: TrimWidth = %v; must be >= 0 (zero selects the default of 4x the EM kernel)", c.TrimWidth)
	}
	if c.MaxTrimFraction < 0 || c.MaxTrimFraction > 1 {
		return fmt.Errorf("codetomo: MaxTrimFraction = %v; must be a fraction in [0, 1] (zero selects the default of 0.25)", c.MaxTrimFraction)
	}
	if c.Robust {
		switch c.Estimator.(type) {
		case nil, tomography.Robust:
		default:
			return fmt.Errorf("codetomo: Robust wraps the EM estimator; leave Estimator nil (or pass tomography.Robust), not %q", c.Estimator.Name())
		}
	}
	if c.Batches < 0 {
		return fmt.Errorf("codetomo: Batches = %d; must be positive (zero selects the default of 8)", c.Batches)
	}
	if c.ConvergeTol < 0 {
		return fmt.Errorf("codetomo: ConvergeTol = %v; must be positive (zero selects the default of 1e-3)", c.ConvergeTol)
	}
	if c.ConvergePatience < 0 {
		return fmt.Errorf("codetomo: ConvergePatience = %d; must be positive (zero selects the default of 2)", c.ConvergePatience)
	}
	return nil
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Robust && c.Estimator == nil {
		td := c.TickDiv
		if td <= 0 {
			td = 8
		}
		c.Estimator = tomography.Robust{Config: tomography.RobustConfig{
			EM:              tomography.EMConfig{KernelHalfWidth: float64(td)},
			OutlierWidth:    c.TrimWidth,
			MaxTrimFraction: c.MaxTrimFraction,
		}}
	}
	c.Config = c.Config.withDefaults()
	if c.Faults.Enabled() && c.Faults.Seed == 0 {
		c.Faults.Seed = c.Seed + fleetFaultSeed
	}
	if c.Energy.Enabled() && c.Energy.Seed == 0 {
		c.Energy.Seed = c.Seed + fleetEnergySeed
	}
	if c.Motes == 0 {
		c.Motes = 4
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{c.Workload}
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.EventsPerPacket == 0 {
		c.EventsPerPacket = trace.DefaultEventsPerPacket
	}
	if c.Batches == 0 {
		c.Batches = 8
	}
	if c.ConvergeTol == 0 {
		c.ConvergeTol = 1e-3
	}
	if c.ConvergePatience == 0 {
		c.ConvergePatience = 2
	}
	return c
}

// FleetResult is the outcome of one fleet pipeline run.
type FleetResult struct {
	// Estimates holds per-procedure estimation results over the merged
	// fleet samples.
	Estimates []ProcEstimate
	// Before and After are the uninstrumented runs under the original and
	// the fleet-estimated layout (single-mote, base workload — the same
	// measurement Run performs, so results are comparable).
	Before, After RunStats
	// Output is the optimized binary's verified debug output.
	Output []uint16
	// Fleet is the deployment's observability record.
	Fleet fleet.Stats
	// Intermittence summarizes execution under harvested power; nil on a
	// mains-powered fleet.
	Intermittence *IntermittenceStats
}

// IntermittenceStats is the fleet-level view of execution under harvested
// power: how often invocations died mid-procedure, the power-failure
// hazard that implies, and the deployment's energy efficiency under the
// measured and the optimized layout.
type IntermittenceStats struct {
	// Completed counts invocations whose durations reached the estimator;
	// LostPartials counts invocations power-truncated mid-procedure.
	Completed, LostPartials int
	// CompletionRate is Completed / (Completed + LostPartials).
	CompletionRate float64
	// HazardPerCycle is the fleet-level power-failure hazard λ̂ implied by
	// the completion rate at the mean completed duration:
	// λ̂ = −ln(rate)/mean.
	HazardPerCycle float64
	// MeanDurationCycles is the mean completed invocation duration the
	// hazard was solved at.
	MeanDurationCycles float64
	// HarvestedUJ is the fleet's total banked harvest.
	HarvestedUJ float64
	// CompletedPerJoule is Completed divided by the harvested energy in
	// joules — the paper-level figure of merit for a layout under
	// intermittent power. PredictedCompletedPerJoule extrapolates it to
	// the optimized layout: a speedup s shortens invocations to T/s, so
	// each costs s× less energy and survives e^{λT(1−1/s)}× more often.
	CompletedPerJoule          float64
	PredictedCompletedPerJoule float64
}

// MispredictReduction mirrors Result.MispredictReduction.
func (r *FleetResult) MispredictReduction() float64 {
	b := r.Before.MispredictRate()
	if b == 0 {
		return 0
	}
	return (b - r.After.MispredictRate()) / b
}

// Speedup mirrors Result.Speedup.
func (r *FleetResult) Speedup() float64 {
	if r.After.Cycles == 0 {
		return 0
	}
	return float64(r.Before.Cycles) / float64(r.After.Cycles)
}

// Per-mote and per-subsystem seed derivations. Distinct odd constants keep
// the derived streams disjoint; everything flows from cfg.Seed so a fleet
// run is one number away from reproducible.
const (
	fleetMoteSeedStride = 104729 // per-mote sensor/entropy seeds
	fleetOffsetSeed     = 7253   // clock skew RNG
	fleetLinkSeed       = 104659 // radio channel RNG base
	fleetFaultSeed      = 94907  // fault-injection RNG base
	fleetEnergySeed     = 86243  // harvest-process RNG base
)

// maxPerMoteRows caps the per-mote uplink table in FleetResult.Fleet: a
// human-readable diagnostic worth keeping for a testbed, pure ballast for
// a million-mote sweep. Beyond this the table is suppressed (Tables()
// renders nothing for an empty PerMote) and only fleet totals are kept.
const maxPerMoteRows = 4096

// fleetSpecs derives the deployment's mote specs from the config: workload
// assignment round-robin, per-mote seeds, and random (but seeded) clock
// offsets of up to ~1M ticks.
func fleetSpecs(cfg FleetConfig) []fleet.MoteSpec {
	offRNG := stats.NewRNG(cfg.Seed + fleetOffsetSeed)
	specs := make([]fleet.MoteSpec, cfg.Motes)
	for i := range specs {
		specs[i] = fleet.MoteSpec{
			// Wire IDs are 16-bit; above 65535 they wrap, which in-process
			// paths tolerate (see MaxFleetMotes) and wire paths reject.
			ID:               uint16(i),
			Workload:         cfg.Workloads[i%len(cfg.Workloads)],
			Seed:             cfg.Seed + int64(i+1)*fleetMoteSeedStride,
			ClockOffsetTicks: uint64(offRNG.Intn(1 << 20)),
		}
	}
	return specs
}

// simConfig assembles the deployment simulation config shared by RunFleet
// and FleetUploads: the instrumented binary, the mote machine shape, and
// the radio channel, all derived from one FleetConfig (defaults filled).
func simConfig(cfg FleetConfig, prog []isa.Instr) fleet.SimConfig {
	mc := mote.DefaultConfig()
	mc.TickDiv = cfg.TickDiv
	mc.Predictor = cfg.Predictor
	return fleet.SimConfig{
		Prog:      prog,
		Mote:      mc,
		MaxCycles: cfg.MaxCycles,
		Workers:   cfg.Workers,
		Cohort:    cfg.Cohort,
		Link: fleet.LinkConfig{
			DropProb:        cfg.DropProb,
			DupProb:         cfg.DupProb,
			ReorderProb:     cfg.ReorderProb,
			CorruptProb:     cfg.CorruptProb,
			EventsPerPacket: cfg.EventsPerPacket,
			PacketVersion:   cfg.PacketVersion,
			ARQ:             fleet.ARQConfig{MaxRetries: cfg.ARQRetries, BackoffBaseTicks: cfg.ARQBackoffTicks},
			Seed:            cfg.Seed + fleetLinkSeed,
		},
		Faults:     cfg.Faults,
		Energy:     cfg.Energy,
		Checkpoint: cfg.Checkpoint,
	}
}

// FleetUploads runs only the deployment half of RunFleet — the
// instrumented build, N motes under heterogeneous workloads and faults,
// and the lossy uplink — and returns the raw per-mote uploads: the frames
// exactly as the channel delivered them, undecoded. It is the feed for a
// long-running base station (cmd/ctstationd) ingesting over the wire
// instead of estimating in-process, and follows RunFleet's determinism
// contract: a fixed config yields bit-identical frames regardless of
// Workers and GOMAXPROCS.
func FleetUploads(source string, cfg FleetConfig) ([]fleet.MoteUpload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Motes > 65535 {
		return nil, fmt.Errorf("codetomo: Motes = %d; wire-format mote IDs are 16-bit, so uploads cap at 65535 motes", cfg.Motes)
	}
	cfg = cfg.withDefaults()
	prof, err := compile.Build(source, compile.Options{
		Instrument:   compile.ModeTimestamps,
		FuseCompares: cfg.FuseCompares,
		RotateLoops:  cfg.RotateLoops,
	})
	if err != nil {
		return nil, err
	}
	return fleet.Simulate(simConfig(cfg, prof.Code), fleetSpecs(cfg))
}

// FleetFrames streams the deployment's delivered uplink frames to emit,
// one call per mote, without ever materializing the fleet: motes run in
// cohorts on a bounded pool, and each cohort's frames are handed off and
// dropped before the next cohort's results are retained. It is the feed
// for pushing a large fleet to a base station over the wire
// (cmd/ctfleet -push); peak memory is O(Workers × Cohort) motes.
//
// Cohorts complete in scheduling order, not mote order, so emit sees
// motes in a nondeterministic order — safe for a base station, whose
// snapshots are a pure function of the accepted-frame multiset. The frame
// slices become the callee's; they are not recycled.
func FleetFrames(source string, cfg FleetConfig, emit func(frames [][]byte) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Motes > 65535 {
		return fmt.Errorf("codetomo: Motes = %d; wire-format mote IDs are 16-bit, so uploads cap at 65535 motes", cfg.Motes)
	}
	cfg = cfg.withDefaults()
	prof, err := compile.Build(source, compile.Options{
		Instrument:   compile.ModeTimestamps,
		FuseCompares: cfg.FuseCompares,
		RotateLoops:  cfg.RotateLoops,
	})
	if err != nil {
		return err
	}
	sim := simConfig(cfg, prof.Code)
	sim.KeepFrames = true
	pool := fleet.NewPool(cfg.Workers)
	_, err = fleet.SimulateStreamOn(pool, sim, fleetSpecs(cfg), func(first int, cohort []fleet.MoteResult) error {
		for i := range cohort {
			if err := emit(cohort[i].Frames); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// RunFleet executes the Code Tomography pipeline against a simulated
// deployment: N motes run the instrumented binary under heterogeneous
// workloads, upload their traces over a lossy radio link, and the base
// station estimates branch probabilities from the merged streams —
// incrementally, one uplink round at a time, stopping early per procedure
// once the estimate stabilizes. The placement and measurement tail is
// identical to Run's, so FleetResult.Before/After are directly comparable
// to a single-mote Result.
//
// For a fixed config, RunFleet is bit-for-bit deterministic (estimates and
// all counters except wall times) regardless of Workers and GOMAXPROCS.
func RunFleet(source string, cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	enum := markov.EnumerateOptions{MaxVisits: cfg.MaxVisits, MaxPaths: 30000}

	// 1. One instrumented build; every mote runs the same binary.
	prof, err := compile.Build(source, compile.Options{
		Instrument:   compile.ModeTimestamps,
		FuseCompares: cfg.FuseCompares,
		RotateLoops:  cfg.RotateLoops,
	})
	if err != nil {
		return nil, err
	}

	// 2. Simulate the deployment through the streaming cohort pipeline on
	// a bounded worker pool. The sink folds each cohort's results into the
	// fleet accumulators the moment they exist, so raw frames, trace
	// events, and intervals are gone before the next cohort runs: peak
	// memory is O(Workers × Cohort) motes of transient state plus the
	// per-procedure duration samples the estimator actually needs.
	sim := simConfig(cfg, prof.Code)
	specs := fleetSpecs(cfg)
	fst := fleet.Stats{Motes: cfg.Motes, SamplesPerProc: make(map[string]int)}

	// Accumulator slots. Integer counters fold directly in the sink —
	// sums commute, so cohort completion order cannot show in them. Float
	// sums do not commute bit-for-bit, so per-mote energy lands in
	// index-addressed slots and is folded in mote order after the run.
	// The per-mote uplink table is an observability aid, not a result;
	// past maxPerMoteRows it is suppressed rather than held.
	perMote := make([]map[int][]float64, len(specs))
	energyUJ := make([]float64, len(specs))
	harvestUJ := make([]float64, len(specs))
	lostByProc := make(map[int]int)
	var sumGross uint64
	keepRows := len(specs) <= maxPerMoteRows
	var rows []fleet.MoteUplink
	if keepRows {
		rows = make([]fleet.MoteUplink, len(specs))
	}

	// One bounded pool serves the whole campaign: mote simulation (with
	// per-mote uplink reassembly fused into each cohort task), per-procedure
	// model construction, and streaming estimation all share cfg.Workers
	// slots. Simulation runs in the background while the base station
	// builds estimation models — path enumeration is a pure function of
	// the binary, so the estimation tier overlaps the fleet instead of
	// serializing after it. Every task writes only its own slot, so
	// results stay bit-identical across Workers, Cohort, and GOMAXPROCS.
	pool := fleet.NewPool(cfg.Workers)
	t0 := time.Now()
	var (
		oracleDense []mote.BranchStat
		simErr      error
		simDone     = make(chan struct{})
	)
	go func() {
		defer close(simDone)
		oracleDense, simErr = fleet.SimulateStreamOn(pool, sim, specs, func(first int, cohort []fleet.MoteResult) error {
			for j := range cohort {
				up := &cohort[j]
				i := first + j
				ust := up.Uplink
				fst.Link.Add(up.Link)
				fst.ARQ.Add(up.ARQ)
				fst.Resets += up.Stats.Resets
				fst.Uplink.PacketsDelivered += ust.PacketsDelivered
				fst.Uplink.PacketsDuplicate += ust.PacketsDuplicate
				fst.Uplink.PacketsLost += ust.PacketsLost
				fst.Uplink.PacketsCorrupted += ust.PacketsCorrupted
				fst.Uplink.EventsDelivered += ust.EventsDelivered
				fst.Uplink.InvocationsRecovered += ust.InvocationsRecovered
				fst.Uplink.InvocationsDiscarded += ust.InvocationsDiscarded
				fst.Uplink.LostPartials += ust.LostPartials
				for p, n := range ust.LostPartialsByProc {
					lostByProc[p] += n
				}
				fst.EventsLogged += up.EventsLogged
				fst.PowerFailures += up.Stats.PowerFailures
				fst.Checkpoints += up.Stats.Checkpoints
				fst.Restores += up.Stats.Restores
				fst.LostVolatileEvents += up.Stats.LostVolatileEvents
				sumGross += up.GrossTicks
				energyUJ[i] = fleet.MoteEnergyUJ(up.Stats)
				harvestUJ[i] = up.Stats.HarvestedUJ
				perMote[i] = up.Durations
				if keepRows {
					rows[i] = fleet.MoteUplink{
						ID:              up.Spec.ID,
						Resets:          up.Stats.Resets,
						Sent:            up.Link.Sent,
						Delivered:       ust.PacketsDelivered,
						Corrupted:       ust.PacketsCorrupted,
						Retransmissions: up.ARQ.Retransmissions,
						Recovered:       up.ARQ.Recovered,
						EnergyUJ:        energyUJ[i],
						PowerFailures:   up.Stats.PowerFailures,
						Restores:        up.Stats.Restores,
					}
				}
			}
			return nil
		})
	}()

	// Models for every branchy procedure, built concurrently with the
	// simulation. Construction errors are deferred: they only matter for
	// procedures that pass the sample-count gate below (matching the
	// previous behaviour, which never built models for starved procs).
	type builtModel struct {
		model *tomography.Model
		err   error
	}
	models := make([]builtModel, len(prof.CFG.Procs))
	var mwg sync.WaitGroup
	for i, p := range prof.CFG.Procs {
		if len(p.BranchBlocks()) == 0 {
			continue
		}
		i, name := i, p.Name
		pool.Go(&mwg, func() {
			m, err := tomography.NewModel(prof, name, cfg.Predictor, enum)
			models[i] = builtModel{model: m, err: err}
		})
	}
	mwg.Wait()
	<-simDone
	if simErr != nil {
		return nil, simErr
	}
	fst.SimWall = time.Since(t0)

	// 3. Ordered float folds (mote order — deterministic) and batching of
	// the per-procedure samples into uplink rounds. Everything else was
	// already merged in the sink, cohort by cohort.
	t1 := time.Now()
	for i := range specs {
		fst.EnergyUJ += energyUJ[i]
		fst.HarvestedUJ += harvestUJ[i]
	}
	if keepRows {
		fst.PerMote = rows
	}
	sumGrossTicks := float64(sumGross)
	rounds := fleet.BatchStreams(perMote, cfg.Batches)
	fst.UplinkWall = time.Since(t1)

	// 4. Gate the prebuilt models on sample count and coverage, then
	// estimate all streams on the same pool (deterministic merge order).
	oracleStats := fleet.DenseBranchStats(oracleDense)
	type pending struct {
		pe        ProcEstimate
		streamIdx int // -1: fallback, no stream
		procIndex int
		model     *tomography.Model
		oracle    markov.EdgeProbs
	}
	var pendings []pending
	var streams []fleet.ProcStream
	probs := make(map[string]markov.EdgeProbs)
	for i, p := range prof.CFG.Procs {
		pm := prof.Meta.ProcByName[p.Name]
		if len(p.BranchBlocks()) == 0 {
			probs[p.Name] = markov.Uniform(p)
			continue
		}
		batches := rounds[pm.Index]
		total := 0
		var all []float64
		for _, b := range batches {
			total += len(b)
			all = append(all, b...)
		}
		fst.SamplesPerProc[p.Name] = total
		pd := pending{
			pe:        ProcEstimate{Proc: p.Name, SampleCount: total, LostPartials: lostByProc[pm.Index]},
			streamIdx: -1,
			procIndex: pm.Index,
		}
		if total >= cfg.MinSamples {
			bm := models[i]
			if bm.err != nil {
				return nil, fmt.Errorf("codetomo: model %s: %w", p.Name, bm.err)
			}
			if bm.model.Coverage(all, float64(cfg.TickDiv)) >= cfg.MinCoverage {
				pd.model = bm.model
				pd.oracle = profile.OracleProbs(pm, p, oracleStats)
				pd.streamIdx = len(streams)
				streams = append(streams, fleet.ProcStream{Name: p.Name, Model: bm.model, Batches: batches})
			}
		}
		if pd.streamIdx < 0 {
			pd.pe.Fallback = true
		}
		pendings = append(pendings, pd)
	}

	t2 := time.Now()
	outcomes, err := fleet.EstimateStreamsOn(pool, streams, cfg.Estimator, cfg.ConvergeTol, cfg.ConvergePatience)
	if err != nil {
		return nil, err
	}
	fst.EstimateWall = time.Since(t2)

	res := &FleetResult{}
	for _, pd := range pendings {
		if pd.streamIdx < 0 {
			res.Estimates = append(res.Estimates, pd.pe)
			continue
		}
		o := outcomes[pd.streamIdx]
		fst.EstimatedProcs++
		fst.Rounds += o.Rounds
		fst.Iterations += o.Iterations
		fst.TrimmedSamples += o.Trimmed
		if o.Converged {
			fst.ConvergedProcs++
		}
		if cfg.Energy.Enabled() && pd.pe.LostPartials > 0 && pd.pe.SampleCount > 0 {
			// Completed invocations under harvested power are a biased
			// sample — long paths died more often. The lost-partial counts
			// pin the hazard; tilt the estimate back before it is scored
			// or drives placement.
			o.Probs = pd.model.DebiasTruncation(o.Probs, pd.pe.LostPartials, pd.pe.SampleCount)
		}
		pd.pe.Branches, pd.pe.MAE = branchEstimates(pd.model, o.Probs, pd.oracle, cfg.TickDiv)
		pd.pe.TrimmedSamples = o.Trimmed
		if cfg.Robust && !o.Confident {
			// Graceful degradation: report the untrusted estimate, but
			// leave the procedure's layout at the baseline rather than
			// optimizing on contaminated probabilities.
			pd.pe.LowConfidence = true
			fst.LowConfidenceProcs++
		} else {
			probs[pd.pe.Proc] = o.Probs
		}
		res.Estimates = append(res.Estimates, pd.pe)
	}

	// 5. Place and measure with Run's tail.
	plan := layout.PlanAll(prof.CFG, probs)
	var pgo *compile.PGOOptions
	if cfg.pgoEnabled() {
		pgo = cfg.pgoOptions(prof.CFG, probs)
	}
	res.Before, res.After, res.Output, err = cfg.Config.measureLayouts(source, plan, pgo)
	if err != nil {
		return nil, err
	}
	res.Fleet = fst
	if cfg.Energy.Enabled() {
		res.Intermittence = intermittence(fst, sumGrossTicks, cfg.TickDiv, res.Speedup())
	}
	return res, nil
}

// intermittence derives the fleet-level intermittent-execution summary
// from the merged counters: the completion rate, the hazard it implies at
// the mean completed duration, and completed-invocations-per-harvested-
// joule under the measured layout and extrapolated to the optimized one.
func intermittence(fst fleet.Stats, sumGrossTicks float64, tickDiv int, speedup float64) *IntermittenceStats {
	it := &IntermittenceStats{
		Completed:    fst.Uplink.InvocationsRecovered,
		LostPartials: fst.Uplink.LostPartials,
		HarvestedUJ:  fst.HarvestedUJ,
	}
	total := it.Completed + it.LostPartials
	if total > 0 {
		it.CompletionRate = float64(it.Completed) / float64(total)
	}
	if it.Completed > 0 {
		it.MeanDurationCycles = sumGrossTicks * float64(tickDiv) / float64(it.Completed)
	}
	if it.CompletionRate > 0 && it.CompletionRate < 1 && it.MeanDurationCycles > 0 {
		it.HazardPerCycle = -math.Log(it.CompletionRate) / it.MeanDurationCycles
	}
	if it.HarvestedUJ > 0 {
		it.CompletedPerJoule = float64(it.Completed) / (it.HarvestedUJ * 1e-6)
		it.PredictedCompletedPerJoule = it.CompletedPerJoule
		if speedup > 0 {
			// A speedup s shortens each invocation to T/s: s× cheaper in
			// energy, and e^{λT(1−1/s)}× likelier to outrun the next
			// outage.
			it.PredictedCompletedPerJoule = it.CompletedPerJoule * speedup *
				math.Exp(it.HazardPerCycle*it.MeanDurationCycles*(1-1/speedup))
		}
	}
	return it
}
