package codetomo

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"codetomo/internal/fault"
	"codetomo/internal/fleet"
	"codetomo/internal/mote"
	"codetomo/internal/tomography"
)

func fleetConfig() FleetConfig {
	return FleetConfig{
		Config:      Config{Seed: 5},
		Motes:       3,
		Workloads:   []string{"gaussian", "uniform", "bursty"},
		DropProb:    0.2,
		DupProb:     0.05,
		ReorderProb: 0.05,
		Batches:     6,
	}
}

func TestRunFleetEndToEnd(t *testing.T) {
	src := sourceFor(t, "sense", 800)
	res, err := RunFleet(src, fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) == 0 {
		t.Fatal("no procedures estimated")
	}
	var handler *ProcEstimate
	for i := range res.Estimates {
		if res.Estimates[i].Proc == "sample" {
			handler = &res.Estimates[i]
		}
	}
	if handler == nil || handler.Fallback {
		t.Fatalf("handler missing or fell back: %+v", handler)
	}
	// Three motes × 800 iterations, minus loss: the fleet must deliver
	// more samples than any single mote logged.
	if handler.SampleCount <= 800 {
		t.Fatalf("fleet sample count = %d, want > 800", handler.SampleCount)
	}
	if handler.MAE > 0.15 {
		t.Fatalf("handler MAE = %v under 20%% loss, want < 0.15", handler.MAE)
	}
	st := res.Fleet
	if st.Motes != 3 || st.Link.Sent == 0 || st.Link.Dropped == 0 {
		t.Fatalf("uplink accounting implausible: %+v", st.Link)
	}
	if st.Uplink.InvocationsRecovered == 0 || st.Uplink.InvocationsDiscarded == 0 {
		t.Fatalf("loss accounting implausible: %+v", st.Uplink)
	}
	if st.EstimatedProcs == 0 || st.Rounds == 0 || st.Iterations == 0 {
		t.Fatalf("estimation accounting implausible: %+v", st)
	}
	if st.SamplesPerProc["sample"] != handler.SampleCount {
		t.Fatalf("SamplesPerProc = %d, estimate saw %d", st.SamplesPerProc["sample"], handler.SampleCount)
	}
	// The optimization tail still holds under fleet estimation.
	if res.After.Mispredicts > res.Before.Mispredicts {
		t.Fatalf("mispredicts grew: %d -> %d", res.Before.Mispredicts, res.After.Mispredicts)
	}
	// Stats render without panicking and carry the headline counters.
	out := ""
	for _, tab := range st.Tables() {
		out += tab.Render()
	}
	for _, want := range []string{"packets sent", "invocations recovered", "estimation rounds", "sample"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered fleet stats missing %q:\n%s", want, out)
		}
	}
}

// The acceptance bar: a seeded fleet run reproduces bit-for-bit — same
// estimates, same loss/recovery counters — across invocations, worker
// counts, and GOMAXPROCS settings.
func TestRunFleetDeterministic(t *testing.T) {
	src := sourceFor(t, "sense", 500)

	type snapshot struct {
		estimates []ProcEstimate
		link      fleet.LinkStats
		uplink    interface{}
		before    RunStats
		output    []uint16
	}
	take := func(workers, cohort, maxprocs int) snapshot {
		prev := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(prev)
		cfg := fleetConfig()
		cfg.Workers = workers
		cfg.Cohort = cohort
		res, err := RunFleet(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{
			estimates: res.Estimates,
			link:      res.Fleet.Link,
			uplink:    res.Fleet.Uplink,
			before:    res.Before,
			output:    res.Output,
		}
	}

	ref := take(1, 1, 1)
	for _, tc := range []struct{ workers, cohort, maxprocs int }{{1, 1, 1}, {4, 1, 1}, {4, 0, 4}, {3, 2, 4}} {
		got := take(tc.workers, tc.cohort, tc.maxprocs)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d cohort=%d GOMAXPROCS=%d diverged from reference:\n%+v\nvs\n%+v",
				tc.workers, tc.cohort, tc.maxprocs, got, ref)
		}
	}
}

// MAE under 20% packet loss must stay within 2× of the lossless MAE — the
// loss-tolerant reassembly only removes samples, it must not bias them.
func TestRunFleetLossyMAEWithinBound(t *testing.T) {
	src := sourceFor(t, "sense", 1200)
	base := fleetConfig()
	base.DropProb, base.DupProb, base.ReorderProb = 0, 0, 0
	lossy := fleetConfig()
	lossy.DropProb = 0.2

	mae := func(cfg FleetConfig) float64 {
		res, err := RunFleet(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pe := range res.Estimates {
			if pe.Proc == "sample" {
				if pe.Fallback {
					t.Fatal("handler fell back")
				}
				return pe.MAE
			}
		}
		t.Fatal("handler estimate missing")
		return 0
	}
	lossless, lossyMAE := mae(base), mae(lossy)
	bound := 2 * lossless
	if bound < 0.02 {
		// Floor the bound: a near-zero lossless MAE would demand more of
		// 20% loss than of the estimator itself.
		bound = 0.02
	}
	if lossyMAE > bound {
		t.Fatalf("lossy MAE %v exceeds bound %v (lossless %v)", lossyMAE, bound, lossless)
	}
}

// Satellite 4 of the fault-injection PR: the determinism contract must
// survive the whole fault stack. With crashes, brownouts, sensor faults,
// corruption, ARQ, and robust estimation all enabled, a seeded run still
// reproduces bit-for-bit across worker counts and GOMAXPROCS.
func TestRunFleetDeterministicUnderFaults(t *testing.T) {
	src := sourceFor(t, "sense", 500)

	faultyConfig := func() FleetConfig {
		cfg := fleetConfig()
		cfg.CorruptProb = 0.05
		cfg.ARQRetries = 3
		cfg.Robust = true
		cfg.Faults = fault.Config{
			CrashMTBFCycles: 400_000,
			BrownoutProb:    0.3,
			SensorStuckProb: 0.01,
			SensorNoiseProb: 0.05,
		}
		return cfg
	}

	type snapshot struct {
		estimates []ProcEstimate
		link      fleet.LinkStats
		arq       fleet.ARQStats
		resets    uint64
		perMote   []fleet.MoteUplink
		uplink    interface{}
		trimmed   int
		lowConf   int
		before    RunStats
		output    []uint16
	}
	take := func(workers, maxprocs int) snapshot {
		prev := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(prev)
		cfg := faultyConfig()
		cfg.Workers = workers
		res, err := RunFleet(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{
			estimates: res.Estimates,
			link:      res.Fleet.Link,
			arq:       res.Fleet.ARQ,
			resets:    res.Fleet.Resets,
			perMote:   res.Fleet.PerMote,
			uplink:    res.Fleet.Uplink,
			trimmed:   res.Fleet.TrimmedSamples,
			lowConf:   res.Fleet.LowConfidenceProcs,
			before:    res.Before,
			output:    res.Output,
		}
	}

	ref := take(1, 1)
	// The run must actually exercise the fault machinery, or this test
	// proves nothing.
	if ref.resets == 0 {
		t.Fatal("no watchdog resets fired; raise the crash rate")
	}
	if ref.link.Corrupted == 0 || ref.arq.Retransmissions == 0 {
		t.Fatalf("channel faults idle: link %+v, arq %+v", ref.link, ref.arq)
	}
	for _, tc := range []struct{ workers, maxprocs int }{{1, 1}, {4, 1}, {4, 4}} {
		got := take(tc.workers, tc.maxprocs)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d GOMAXPROCS=%d diverged under faults:\n%+v\nvs\n%+v",
				tc.workers, tc.maxprocs, got, ref)
		}
	}
}

// Graceful degradation, end to end: at moderate fault rates the recovery
// stack (CRC rejection + ARQ + robust trimming + confidence-gated
// placement) keeps estimation error within 2× the fault-free baseline, and
// the placement never regresses below the unoptimized binary.
func TestRunFleetGracefulDegradation(t *testing.T) {
	src := sourceFor(t, "sense", 800)

	clean := fleetConfig()
	clean.DropProb, clean.DupProb, clean.ReorderProb = 0, 0, 0
	faulty := fleetConfig()
	faulty.CorruptProb = 0.1
	faulty.ARQRetries = 3
	faulty.Robust = true
	faulty.Faults = fault.Config{CrashMTBFCycles: 600_000, BrownoutProb: 0.2}

	run := func(cfg FleetConfig) (float64, *FleetResult) {
		res, err := RunFleet(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pe := range res.Estimates {
			if pe.Proc == "sample" && !pe.Fallback && !pe.LowConfidence {
				return pe.MAE, res
			}
		}
		t.Fatal("handler estimate missing, fell back, or low-confidence")
		return 0, nil
	}
	cleanMAE, _ := run(clean)
	faultyMAE, res := run(faulty)

	bound := 2 * cleanMAE
	if bound < 0.03 {
		bound = 0.03
	}
	if faultyMAE > bound {
		t.Fatalf("faulty MAE %v exceeds bound %v (clean %v)", faultyMAE, bound, cleanMAE)
	}
	if res.Fleet.Resets == 0 || res.Fleet.Link.Corrupted == 0 {
		t.Fatalf("fault campaign idle: resets=%d link=%+v", res.Fleet.Resets, res.Fleet.Link)
	}
	// Confidence-gated placement must never make the binary slower than
	// leaving it alone.
	if res.After.Cycles > res.Before.Cycles {
		t.Fatalf("optimized binary slower under faults: %d -> %d cycles", res.Before.Cycles, res.After.Cycles)
	}
}

func TestRunFleetRejectsStatefulPredictor(t *testing.T) {
	src := sourceFor(t, "sense", 100)
	cfg := fleetConfig()
	cfg.Predictor = mote.NewBimodal(6)
	if _, err := RunFleet(src, cfg); err == nil {
		t.Fatal("stateful predictor accepted")
	}
}

func TestFleetConfigValidate(t *testing.T) {
	bad := []FleetConfig{
		{Motes: -1},
		{Motes: MaxFleetMotes + 1},
		{Workers: -2},
		{Cohort: -1},
		{EventsPerPacket: -1},
		{EventsPerPacket: 1000},
		{DropProb: 1.5},
		{DupProb: -0.1},
		{ReorderProb: 7},
		{Batches: -3},
		{ConvergeTol: -1},
		{ConvergePatience: -1},
		{Config: Config{TickDiv: -8}},
		{Config: Config{MinCoverage: 1.5}},
		{CorruptProb: 2},
		{PacketVersion: 5},
		{ARQRetries: -1},
		// ARQ has nothing to NACK without checksums.
		{ARQRetries: 2, PacketVersion: 1},
		{TrimWidth: -1},
		{MaxTrimFraction: 1.5},
		// The robust wrapper replaces EM; other estimators can't be wrapped.
		{Robust: true, Config: Config{Estimator: tomography.Histogram{}}},
		{Faults: fault.Config{BrownoutProb: 2}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := fleetConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// RunFleet surfaces validation errors before doing any work.
	if _, err := RunFleet("func main() {}", FleetConfig{Motes: -1}); err == nil {
		t.Error("RunFleet accepted invalid config")
	}
}

// intermittentConfig is an energy-harvesting deployment whose mean
// harvest (0.8 µJ/kcycle) is well below the CPU draw (~1.35 µJ/kcycle),
// forcing a duty cycle on a small capacitor: every mote dies and resumes
// many times per campaign.
func intermittentConfig() FleetConfig {
	cfg := fleetConfig()
	cfg.DropProb, cfg.DupProb, cfg.ReorderProb = 0, 0, 0
	cfg.Energy = fault.EnergyConfig{
		HarvestUJPerKCycle: 0.8,
		HarvestNoiseSigma:  0.4,
		CapacityUJ:         60,
		BrownoutFloorUJ:    2,
		RestartChargeUJ:    40,
	}
	// The low-charge trigger checkpoints just before the brownout — often
	// mid-invocation — so the torn execution's enter is durable and the
	// base station sees it as a lost partial rather than losing it with
	// the volatile tail.
	cfg.Checkpoint = mote.CheckpointPolicy{EveryKInvocations: 4, OnLowChargeFrac: 0.25}
	return cfg
}

// TestRunFleetIntermittent is the tentpole end-to-end: motes on harvested
// power die mid-procedure, checkpoints resume them, the base station
// counts the torn executions as lost partials, and the pipeline reports
// completion rate, hazard, and completed-invocations-per-harvested-joule.
func TestRunFleetIntermittent(t *testing.T) {
	src := sourceFor(t, "sense", 400)
	res, err := RunFleet(src, intermittentConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Fleet
	if st.PowerFailures == 0 || st.Checkpoints == 0 || st.Restores == 0 {
		t.Fatalf("no intermittence: %+v", st)
	}
	if st.HarvestedUJ <= 0 || st.EnergyUJ <= 0 {
		t.Fatalf("energy accounting missing: harvested %v consumed %v", st.HarvestedUJ, st.EnergyUJ)
	}
	if st.Uplink.LostPartials == 0 {
		t.Fatal("outages mid-procedure must surface as lost partials")
	}
	for _, m := range st.PerMote {
		if m.EnergyUJ <= 0 {
			t.Fatalf("mote %d has no energy accounting", m.ID)
		}
	}
	it := res.Intermittence
	if it == nil {
		t.Fatal("intermittence summary missing on an energy-enabled fleet")
	}
	if it.LostPartials != st.Uplink.LostPartials || it.Completed != st.Uplink.InvocationsRecovered {
		t.Fatalf("intermittence counts diverge from uplink: %+v vs %+v", it, st.Uplink)
	}
	if it.CompletionRate <= 0 || it.CompletionRate >= 1 {
		t.Fatalf("completion rate = %v, want in (0,1)", it.CompletionRate)
	}
	if it.HazardPerCycle <= 0 {
		t.Fatalf("hazard = %v, want > 0", it.HazardPerCycle)
	}
	if it.CompletedPerJoule <= 0 || it.PredictedCompletedPerJoule <= 0 {
		t.Fatalf("per-joule figures missing: %+v", it)
	}
	// The estimate must still work: lost partials reduce, not destroy,
	// accuracy.
	for _, pe := range res.Estimates {
		if pe.Proc == "sample" {
			if pe.Fallback {
				t.Fatal("handler fell back under intermittent power")
			}
			if pe.LostPartials == 0 {
				t.Fatal("handler saw no lost partials")
			}
			if pe.MAE > 0.2 {
				t.Fatalf("handler MAE = %v under intermittent power", pe.MAE)
			}
		}
	}
}

// TestRunFleetDeterministicUnderPower: the determinism contract survives
// the whole intermittent stack — harvest noise, brownouts, checkpoints,
// restores, survival-bias correction — across worker counts and
// GOMAXPROCS.
func TestRunFleetDeterministicUnderPower(t *testing.T) {
	src := sourceFor(t, "sense", 300)

	type snapshot struct {
		estimates     []ProcEstimate
		uplink        interface{}
		perMote       []fleet.MoteUplink
		intermittence IntermittenceStats
		output        []uint16
	}
	take := func(workers, maxprocs int) snapshot {
		prev := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(prev)
		cfg := intermittentConfig()
		cfg.Workers = workers
		cfg.Robust = true
		res, err := RunFleet(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{
			estimates:     res.Estimates,
			uplink:        res.Fleet.Uplink,
			perMote:       res.Fleet.PerMote,
			intermittence: *res.Intermittence,
			output:        res.Output,
		}
	}

	ref := take(1, 1)
	for _, tc := range []struct{ workers, maxprocs int }{{4, 1}, {4, 4}} {
		got := take(tc.workers, tc.maxprocs)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d GOMAXPROCS=%d diverged from reference:\n%+v\nvs\n%+v",
				tc.workers, tc.maxprocs, got, ref)
		}
	}
}
