package codetomo_test

// One testing.B benchmark per table and figure of the evaluation (see
// DESIGN.md's per-experiment index), so `go test -bench=.` regenerates the
// whole study. Each benchmark reports the experiment's headline number as
// a custom metric alongside the usual time/op.
//
// The committed EXPERIMENTS.md values come from `go run ./cmd/ctbench`
// (same runners, default config); the benchmarks here use a lighter sample
// budget so the full suite stays minutes, not hours.

import (
	"strconv"
	"strings"
	"testing"

	codetomo "codetomo"
	"codetomo/internal/apps"
	"codetomo/internal/bench"
	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/report"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

func benchConfig() bench.Config {
	c := bench.DefaultConfig()
	c.Samples = 1000
	return c
}

// runExperiment drives one table/figure runner b.N times.
func runExperiment(b *testing.B, run func(bench.Config) (*report.Table, error)) *report.Table {
	b.Helper()
	cfg := benchConfig()
	var tab *report.Table
	for i := 0; i < b.N; i++ {
		t, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	return tab
}

func cellFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("cell %q not numeric", s)
	}
	return v
}

func BenchmarkTableT1(b *testing.B) {
	tab := runExperiment(b, bench.TableT1)
	b.ReportMetric(float64(len(tab.Rows)), "apps")
}

func BenchmarkFigF2(b *testing.B) {
	tab := runExperiment(b, bench.FigF2)
	// Headline: fraction of EM edges within 0.05 of truth.
	b.ReportMetric(cellFloat(b, tab.Rows[0][4]), "em_pct_le_0.05")
}

func BenchmarkFigF3(b *testing.B) {
	tab := runExperiment(b, bench.FigF3)
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cellFloat(b, last[1]), "sense_mae_at_10k")
}

func BenchmarkFigF4(b *testing.B) {
	tab := runExperiment(b, bench.FigF4)
	var orig, ct float64
	for _, row := range tab.Rows {
		orig += cellFloat(b, row[1])
		ct += cellFloat(b, row[4])
	}
	b.ReportMetric(orig/float64(len(tab.Rows)), "orig_mispred_pct")
	b.ReportMetric(ct/float64(len(tab.Rows)), "ctomo_mispred_pct")
}

func BenchmarkFigF5(b *testing.B) {
	tab := runExperiment(b, bench.FigF5)
	var ct float64
	for _, row := range tab.Rows {
		ct += cellFloat(b, row[4])
	}
	b.ReportMetric(ct/float64(len(tab.Rows)), "ctomo_cycles_norm")
}

func BenchmarkTableT2(b *testing.B) {
	tab := runExperiment(b, bench.TableT2)
	var ts, ec float64
	for i := 0; i < len(tab.Rows); i += 2 {
		ts += cellFloat(b, tab.Rows[i][4])
		ec += cellFloat(b, tab.Rows[i+1][4])
	}
	n := float64(len(tab.Rows) / 2)
	b.ReportMetric(ts/n, "ts_cycles_pct")
	b.ReportMetric(ec/n, "ec_cycles_pct")
}

func BenchmarkFigF6(b *testing.B) {
	tab := runExperiment(b, bench.FigF6)
	b.ReportMetric(cellFloat(b, tab.Rows[0][1]), "sense_mae_tick1")
	b.ReportMetric(cellFloat(b, tab.Rows[len(tab.Rows)-1][1]), "sense_mae_tick64")
}

func BenchmarkFigF7(b *testing.B) {
	tab := runExperiment(b, bench.FigF7)
	worst := 0.0
	for _, row := range tab.Rows {
		if v := cellFloat(b, row[1]); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst_regime_mae")
}

func BenchmarkFigF8(b *testing.B) {
	tab := runExperiment(b, bench.FigF8)
	// Headline: tomography accuracy on the flagship identifiable app.
	for _, row := range tab.Rows {
		if row[0] == "sense" {
			b.ReportMetric(cellFloat(b, row[1]), "sense_ct_mae")
			b.ReportMetric(cellFloat(b, row[2]), "sense_sampling_mae")
		}
	}
}

func BenchmarkTableT3(b *testing.B) {
	runExperiment(b, bench.TableT3)
}

func BenchmarkAblationUnroll(b *testing.B) {
	runExperiment(b, bench.AblationUnroll)
}

func BenchmarkAblationPredictor(b *testing.B) {
	runExperiment(b, bench.AblationPredictor)
}

func BenchmarkAblationOptimizations(b *testing.B) {
	runExperiment(b, bench.AblationOptimizations)
}

func BenchmarkAblationDynamicPredictor(b *testing.B) {
	runExperiment(b, bench.AblationDynamicPredictor)
}

// --- Micro-benchmarks of the pipeline's hot components. ---

// BenchmarkSimulator measures raw interpretation speed.
func BenchmarkSimulator(b *testing.B) {
	a, _ := apps.ByName("fir")
	src, _ := a.Source(2000)
	out, err := compile.Build(src, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := mote.DefaultConfig()
		rng := stats.NewRNG(1)
		sensor, _ := workload.Named(a.Workload, rng)
		cfg.Sensor = sensor
		m := mote.New(out.Code, cfg)
		if err := m.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
		cycles = m.Stats().Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkCompiler measures full MiniC compilation throughput.
func BenchmarkCompiler(b *testing.B) {
	a, _ := apps.ByName("aggregate")
	src, _ := a.Source(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Build(src, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMEstimator measures the estimator on a fixed sample set.
func BenchmarkEMEstimator(b *testing.B) {
	a, _ := apps.ByName("eventdetect")
	src, _ := a.Source(3000)
	out, err := compile.Build(src, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		b.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	rng := stats.NewRNG(1)
	sensor, _ := workload.Named(a.Workload, rng)
	cfg.Sensor = sensor
	m := mote.New(out.Code, cfg)
	if err := m.Run(2_000_000_000); err != nil {
		b.Fatal(err)
	}
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		b.Fatal(err)
	}
	pm := out.Meta.ProcByName[a.Handler]
	samples := trace.DurationsCycles(trace.ExclusiveByProc(ivs)[pm.Index], cfg.TickDiv)
	model, err := tomography.NewModel(out, a.Handler, cfg.Predictor,
		markov.EnumerateOptions{MaxVisits: 12, MaxPaths: 30000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tomography.EstimateEM(model, samples, tomography.EMConfig{KernelHalfWidth: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures the facade end to end.
func BenchmarkFullPipeline(b *testing.B) {
	a, _ := apps.ByName("sense")
	src, _ := a.Source(1000)
	b.ResetTimer()
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := codetomo.Run(src, codetomo.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		red = res.MispredictReduction()
	}
	b.ReportMetric(100*red, "mispred_reduction_pct")
}
