package fleet

import (
	"reflect"
	"testing"

	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
)

const testProgram = `
func work(v int) int {
	var r int;
	r = 0;
	while (v > 100) {
		v = v - 100;
		r = r + 1;
	}
	if (v > 50) {
		r = r + 10;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 150; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

func buildFleet(t testing.TB) SimConfig {
	t.Helper()
	out, err := compile.Build(testProgram, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	return SimConfig{
		Prog:      out.Code,
		Mote:      mote.DefaultConfig(),
		MaxCycles: 100_000_000,
		Workers:   3,
		Link:      LinkConfig{Seed: 99},
	}
}

func fleetSpecs(n int) []MoteSpec {
	specs := make([]MoteSpec, n)
	names := []string{"gaussian", "uniform", "bursty"}
	for i := range specs {
		specs[i] = MoteSpec{
			ID:               uint16(i),
			Workload:         names[i%len(names)],
			Seed:             100 + int64(i)*7,
			ClockOffsetTicks: uint64(i) * 100_000,
		}
	}
	return specs
}

func TestSimulateLossless(t *testing.T) {
	cfg := buildFleet(t)
	uploads, err := Simulate(cfg, fleetSpecs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(uploads) != 3 {
		t.Fatalf("got %d uploads", len(uploads))
	}
	for i, up := range uploads {
		if up.Spec.ID != uint16(i) {
			t.Fatalf("upload %d has mote ID %d: order not preserved", i, up.Spec.ID)
		}
		if up.EventsLogged == 0 || len(up.Frames) == 0 {
			t.Fatalf("mote %d logged nothing", i)
		}
		if up.Link.Dropped != 0 || up.Link.Duplicated != 0 {
			t.Fatalf("lossless link mangled mote %d: %+v", i, up.Link)
		}
		ivs, st, err := Reassemble(up)
		if err != nil {
			t.Fatal(err)
		}
		if st.InvocationsDiscarded != 0 || len(ivs) == 0 {
			t.Fatalf("mote %d: %d intervals, %d discarded", i, len(ivs), st.InvocationsDiscarded)
		}
		// Clock skew shifts timestamps, not durations: the first interval
		// must start at or after the mote's offset.
		if up.Spec.ClockOffsetTicks > 0 && ivs[0].EnterTick < up.Spec.ClockOffsetTicks {
			t.Fatalf("mote %d: interval starts at %d, before clock offset %d", i, ivs[0].EnterTick, up.Spec.ClockOffsetTicks)
		}
	}
	// Heterogeneous workloads must actually produce different streams.
	if uploads[0].EventsLogged == uploads[1].EventsLogged &&
		uploads[0].Stats.Cycles == uploads[1].Stats.Cycles {
		t.Fatal("motes 0 and 1 look identical despite different workloads")
	}
}

// The fleet's core determinism contract: identical config and specs give
// bit-for-bit identical uploads regardless of worker count.
func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	cfg := buildFleet(t)
	cfg.Link.DropProb, cfg.Link.DupProb, cfg.Link.ReorderProb = 0.2, 0.1, 0.1
	specs := fleetSpecs(4)

	var runs [][]MoteUpload
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		ups, err := Simulate(c, specs)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, ups)
	}
	for i := range runs[0] {
		a, b := runs[0][i], runs[1][i]
		if a.Link != b.Link || a.EventsLogged != b.EventsLogged {
			t.Fatalf("mote %d differs across worker counts: %+v vs %+v", i, a.Link, b.Link)
		}
		if a.Stats != b.Stats {
			t.Fatalf("mote %d execution stats differ across worker counts: %+v vs %+v", i, a.Stats, b.Stats)
		}
		if !reflect.DeepEqual(a.Frames, b.Frames) {
			t.Fatalf("mote %d delivered different frame streams", i)
		}
		if !reflect.DeepEqual(a.BranchStats, b.BranchStats) {
			t.Fatalf("mote %d branch stats differ", i)
		}
	}
}

func TestSimulateRejectsStatefulPredictor(t *testing.T) {
	cfg := buildFleet(t)
	cfg.Mote.Predictor = mote.NewBimodal(6)
	if _, err := Simulate(cfg, fleetSpecs(2)); err == nil {
		t.Fatal("stateful predictor accepted")
	}
}

func TestSimulateRejectsUnknownWorkload(t *testing.T) {
	cfg := buildFleet(t)
	specs := fleetSpecs(2)
	specs[1].Workload = "nonesuch"
	if _, err := Simulate(cfg, specs); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTransmitLossyDeterministic(t *testing.T) {
	events, _ := syntheticEvents(50)
	pkts := trace.Packetize(1, events, 4)
	lc := LinkConfig{DropProb: 0.3, DupProb: 0.2, ReorderProb: 0.2}

	out1, st1 := lc.Transmit(pkts, stats.NewRNG(5))
	out2, st2 := lc.Transmit(pkts, stats.NewRNG(5))
	if st1 != st2 || !reflect.DeepEqual(out1, out2) {
		t.Fatal("same seed produced different channels")
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 {
		t.Fatalf("channel did nothing: %+v", st1)
	}
	if st1.Sent != len(pkts) {
		t.Fatalf("Sent = %d, want %d", st1.Sent, len(pkts))
	}
	if len(out1) != st1.Sent-st1.Dropped+st1.Duplicated {
		t.Fatalf("accounting broken: %d delivered, %+v", len(out1), st1)
	}

	// A perfect channel is the identity.
	out3, st3 := LinkConfig{}.Transmit(pkts, stats.NewRNG(5))
	if !reflect.DeepEqual(out3, pkts) || st3.Dropped+st3.Duplicated+st3.Reordered != 0 {
		t.Fatal("perfect channel altered the stream")
	}
}

// With ReorderProb = 1 every draw fires, and the skip-after-swap rule
// must yield pairwise swaps — not a cascade carrying element 0 to the end.
func TestReorderPassNoCascade(t *testing.T) {
	out := []int{0, 1, 2, 3}
	swaps := reorderPass(out, 1, stats.NewRNG(1))
	want := []int{1, 0, 3, 2}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("reorderPass cascaded: got %v, want %v", out, want)
	}
	if swaps != 2 {
		t.Fatalf("swaps = %d, want 2", swaps)
	}
}

func syntheticFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	events, _ := syntheticEvents(n)
	pkts := trace.Packetize(1, events, 4)
	frames := make([][]byte, len(pkts))
	for i, p := range pkts {
		f, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

func TestTransmitFramesCorruption(t *testing.T) {
	frames := syntheticFrames(t, 60)
	lc := LinkConfig{CorruptProb: 0.5}

	out1, st1 := lc.TransmitFrames(frames, stats.NewRNG(7))
	out2, st2 := lc.TransmitFrames(frames, stats.NewRNG(7))
	if st1 != st2 || !reflect.DeepEqual(out1, out2) {
		t.Fatal("same seed produced different channels")
	}
	if st1.Corrupted == 0 {
		t.Fatalf("corruption never fired: %+v", st1)
	}
	if len(out1) != len(frames) {
		t.Fatalf("corruption-only channel changed frame count: %d vs %d", len(out1), len(frames))
	}
	// Every corrupted frame must be caught by the CRC on decode, and the
	// reassembler must count it as corrupt — not as a drop (satellite:
	// corrupted-packet accounting).
	r := trace.NewReassembler(1)
	for _, f := range out1 {
		if err := r.AddFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	_, ust := r.Recover()
	if ust.PacketsCorrupted != st1.Corrupted {
		t.Fatalf("reassembler counted %d corrupt, channel corrupted %d", ust.PacketsCorrupted, st1.Corrupted)
	}
	if ust.PacketsDelivered != len(frames)-st1.Corrupted {
		t.Fatalf("delivered %d, want %d", ust.PacketsDelivered, len(frames)-st1.Corrupted)
	}

	// Corruption must not mutate the sender's copy of the frame.
	clean := syntheticFrames(t, 60)
	for i := range frames {
		if !reflect.DeepEqual(frames[i], clean[i]) {
			t.Fatalf("TransmitFrames mutated source frame %d", i)
		}
	}
}

// With CorruptProb = 0 the frame-level channel must make exactly the same
// RNG draws as the packet-level one, so both views of one (seed, stream)
// pair agree.
func TestTransmitFramesMatchesTransmit(t *testing.T) {
	events, _ := syntheticEvents(50)
	pkts := trace.Packetize(1, events, 4)
	frames := make([][]byte, len(pkts))
	for i, p := range pkts {
		f, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	lc := LinkConfig{DropProb: 0.3, DupProb: 0.2, ReorderProb: 0.2}
	outP, stP := lc.Transmit(pkts, stats.NewRNG(5))
	outF, stF := lc.TransmitFrames(frames, stats.NewRNG(5))
	if stP != stF {
		t.Fatalf("stats diverge: packets %+v, frames %+v", stP, stF)
	}
	if len(outP) != len(outF) {
		t.Fatalf("stream lengths diverge: %d vs %d", len(outP), len(outF))
	}
	for i := range outF {
		var p trace.Packet
		if err := p.UnmarshalBinary(outF[i]); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, outP[i]) {
			t.Fatalf("frame %d decodes to %+v, packet channel gave %+v", i, p, outP[i])
		}
	}
}

func TestTransmitARQRecovers(t *testing.T) {
	frames := syntheticFrames(t, 80)
	lc := LinkConfig{
		DropProb:    0.3,
		CorruptProb: 0.1,
		ARQ:         ARQConfig{MaxRetries: 8, BackoffBaseTicks: 64},
	}
	delivered, st, ast := lc.TransmitARQ(frames, stats.NewRNG(11))

	if ast.Rounds == 0 || ast.Retransmissions == 0 {
		t.Fatalf("lossy channel needed no ARQ rounds: %+v", ast)
	}
	if ast.Unrecovered != 0 {
		t.Fatalf("8 retries failed to recover %d sequences (link %+v)", ast.Unrecovered, st)
	}
	// Every sequence number must have arrived intact at least once.
	got := map[uint32]bool{}
	for _, f := range delivered {
		var p trace.Packet
		if p.UnmarshalBinary(f) == nil {
			got[p.Seq] = true
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("ARQ delivered %d/%d distinct sequences", len(got), len(frames))
	}
	// Sent counts every transmission including resends: goodput is against
	// radio airtime.
	if st.Sent != len(frames)+ast.Retransmissions {
		t.Fatalf("Sent = %d, want %d initial + %d resends", st.Sent, len(frames), ast.Retransmissions)
	}
	wantBackoff := uint64(0)
	for r := 1; r <= ast.Rounds; r++ {
		wantBackoff += 64 << uint(r-1)
	}
	if ast.BackoffTicks != wantBackoff {
		t.Fatalf("BackoffTicks = %d, want %d over %d rounds", ast.BackoffTicks, wantBackoff, ast.Rounds)
	}

	// Determinism: same seed, same everything.
	d2, st2, ast2 := lc.TransmitARQ(frames, stats.NewRNG(11))
	if st != st2 || ast != ast2 || !reflect.DeepEqual(delivered, d2) {
		t.Fatal("ARQ is not deterministic under a fixed seed")
	}

	// ARQ disabled: identical to TransmitFrames.
	plain := LinkConfig{DropProb: 0.3, CorruptProb: 0.1}
	dP, stP := plain.TransmitFrames(frames, stats.NewRNG(11))
	dA, stA, astA := plain.TransmitARQ(frames, stats.NewRNG(11))
	if stP != stA || astA != (ARQStats{}) || !reflect.DeepEqual(dP, dA) {
		t.Fatal("disabled ARQ does not reduce to TransmitFrames")
	}
}

func TestLinkConfigValidate(t *testing.T) {
	bad := []LinkConfig{
		{DropProb: -0.1},
		{DupProb: 1.5},
		{ReorderProb: 2},
		{CorruptProb: -0.2},
		{EventsPerPacket: -1},
		{PacketVersion: 3},
		{ARQ: ARQConfig{MaxRetries: -1}},
		// ARQ needs checksums to know what to NACK.
		{PacketVersion: trace.PacketVersionLegacy, ARQ: ARQConfig{MaxRetries: 3}},
	}
	for i, lc := range bad {
		if lc.Validate() == nil {
			t.Errorf("case %d: invalid link config accepted: %+v", i, lc)
		}
	}
	good := []LinkConfig{
		{DropProb: 0.5, EventsPerPacket: 16},
		{CorruptProb: 0.2, PacketVersion: trace.PacketVersionCRC, ARQ: ARQConfig{MaxRetries: 4}},
		{PacketVersion: trace.PacketVersionLegacy},
	}
	for i, lc := range good {
		if err := lc.Validate(); err != nil {
			t.Errorf("case %d: valid config rejected: %v", i, err)
		}
	}
}

func TestMergeBranchStats(t *testing.T) {
	cfg := buildFleet(t)
	uploads, err := Simulate(cfg, fleetSpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeBranchStats(uploads)
	if len(merged) == 0 {
		t.Fatal("no branch stats merged")
	}
	for pc, st := range merged {
		var taken, notTaken uint64
		for _, up := range uploads {
			if s := up.BranchStats[pc]; s != nil {
				taken += s.Taken
				notTaken += s.NotTaken
			}
		}
		if st.Taken != taken || st.NotTaken != notTaken {
			t.Fatalf("pc %d: merged %+v, want taken=%d notTaken=%d", pc, st, taken, notTaken)
		}
	}
}

func TestBatchStreams(t *testing.T) {
	perMote := []map[int][]float64{
		{0: {1, 2, 3, 4, 5}, 1: {10}},
		{0: {6, 7, 8}},
	}
	rounds := BatchStreams(perMote, 2)
	// Proc 0: mote 0 contributes {1,2,3},{4,5}; mote 1 contributes {6,7},{8}.
	want0 := [][]float64{{1, 2, 3, 6, 7}, {4, 5, 8}}
	if !reflect.DeepEqual(rounds[0], want0) {
		t.Fatalf("proc 0 rounds = %v, want %v", rounds[0], want0)
	}
	// Proc 1 has one sample: all of it lands in round 0.
	if !reflect.DeepEqual(rounds[1][0], []float64{10}) || len(rounds[1][1]) != 0 {
		t.Fatalf("proc 1 rounds = %v", rounds[1])
	}
	// Total samples are conserved.
	total := 0
	for _, rs := range rounds {
		for _, r := range rs {
			total += len(r)
		}
	}
	if total != 9 {
		t.Fatalf("batching lost samples: %d of 9", total)
	}
}

// TestEstimateStreams drives the full fleet path — simulate, uplink,
// reassemble, batch, estimate in parallel — and checks the outcome is
// well-formed and reproducible.
func TestEstimateStreams(t *testing.T) {
	out, err := compile.Build(testProgram, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildFleet(t)
	cfg.Prog = out.Code
	uploads, err := Simulate(cfg, fleetSpecs(3))
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["work"]
	perMote := make([]map[int][]float64, len(uploads))
	for i, up := range uploads {
		ivs, _, err := Reassemble(up)
		if err != nil {
			t.Fatal(err)
		}
		byProc := trace.ExclusiveByProc(ivs)
		perMote[i] = map[int][]float64{
			pm.Index: trace.DurationsCycles(byProc[pm.Index], 8),
		}
	}
	rounds := BatchStreams(perMote, 4)
	model, err := tomography.NewModel(out, "work", mote.StaticNotTaken{}, markov.DefaultEnumerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	streams := []ProcStream{{Name: "work", Model: model, Batches: rounds[pm.Index]}}
	est := tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: 8}}

	o1, err := EstimateStreams(streams, est, 1e-3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != 1 || o1[0].Probs == nil {
		t.Fatalf("no outcome: %+v", o1)
	}
	total := 0
	for _, b := range rounds[pm.Index] {
		total += len(b)
	}
	if o1[0].SampleCount != total {
		t.Fatalf("SampleCount = %d, want %d", o1[0].SampleCount, total)
	}
	if o1[0].Rounds < 1 || o1[0].Iterations < 1 {
		t.Fatalf("no estimation effort recorded: %+v", o1[0])
	}
	// A different worker bound must not change the outcome.
	o2, err := EstimateStreams(streams, est, 1e-3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("streaming estimation is not reproducible")
	}
}

// TestSimulateReassembledMatchesTwoStep pins the fused per-mote pool task
// (simulate + reassemble + duration extraction in one slot) to the
// two-step Simulate-then-Reassemble path, across different pool sizes.
func TestSimulateReassembledMatchesTwoStep(t *testing.T) {
	cfg := buildFleet(t)
	cfg.Link.DropProb = 0.1
	specs := fleetSpecs(3)

	uploads, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		fused, err := SimulateReassembledOn(NewPool(workers), cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		if len(fused) != len(uploads) {
			t.Fatalf("workers=%d: %d uploads, want %d", workers, len(fused), len(uploads))
		}
		for i, pu := range fused {
			ivs, ust, err := Reassemble(uploads[i])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pu.MoteUpload, uploads[i]) {
				t.Fatalf("workers=%d mote %d: upload differs from two-step path", workers, i)
			}
			if !reflect.DeepEqual(pu.Intervals, ivs) || !reflect.DeepEqual(pu.Uplink, ust) {
				t.Fatalf("workers=%d mote %d: reassembly differs from two-step path", workers, i)
			}
			want := make(map[int][]float64)
			for p, ticks := range trace.ExclusiveByProc(ivs) {
				want[p] = trace.DurationsCycles(ticks, cfg.Mote.TickDiv)
			}
			if !reflect.DeepEqual(pu.Durations, want) {
				t.Fatalf("workers=%d mote %d: durations differ from two-step path", workers, i)
			}
		}
	}
}

// syntheticEvents builds a well-nested single-proc log for link tests.
func syntheticEvents(n int) ([]mote.TraceEvent, int) {
	var events []mote.TraceEvent
	tick := uint64(0)
	for i := 0; i < n; i++ {
		tick += 2
		events = append(events, mote.TraceEvent{ID: trace.EnterID(0), Tick: tick})
		tick += 5
		events = append(events, mote.TraceEvent{ID: trace.ExitID(0), Tick: tick})
	}
	return events, n
}
