package fleet

import (
	"sort"
	"time"

	"codetomo/internal/report"
	"codetomo/internal/trace"
)

// Stats is the fleet run's observability record: what the radios did, what
// the base station recovered, and what estimation cost. Wall times are the
// only fields that vary between identically-seeded runs.
type Stats struct {
	// Motes is the deployment size.
	Motes int
	// Link sums the channel-side accounting over all motes.
	Link LinkStats
	// Uplink sums the base-station-side accounting over all motes.
	Uplink trace.UplinkStats
	// EventsLogged is the total mote-side trace length before the radio.
	EventsLogged int
	// SamplesPerProc counts the duration samples that reached each
	// procedure's estimator.
	SamplesPerProc map[string]int
	// Rounds and Iterations sum streaming-estimation effort over all
	// procedures (Iterations is EM-only).
	Rounds     int
	Iterations int
	// ConvergedProcs counts procedures whose streams converged early, out
	// of EstimatedProcs.
	ConvergedProcs int
	EstimatedProcs int
	// Per-stage wall clock.
	SimWall      time.Duration
	UplinkWall   time.Duration
	EstimateWall time.Duration
}

// Tables renders the observability record for terminal reports.
func (s Stats) Tables() []*report.Table {
	uplink := report.KV("Fleet uplink",
		[2]string{"motes", report.I(s.Motes)},
		[2]string{"events logged", report.I(s.EventsLogged)},
		[2]string{"packets sent", report.I(s.Link.Sent)},
		[2]string{"packets dropped", report.I(s.Link.Dropped)},
		[2]string{"packets duplicated", report.I(s.Link.Duplicated)},
		[2]string{"packets reordered", report.I(s.Link.Reordered)},
		[2]string{"packets delivered", report.I(s.Uplink.PacketsDelivered)},
		[2]string{"packets lost (observed)", report.I(s.Uplink.PacketsLost)},
		[2]string{"events delivered", report.I(s.Uplink.EventsDelivered)},
		[2]string{"invocations recovered", report.I(s.Uplink.InvocationsRecovered)},
		[2]string{"invocations discarded", report.I(s.Uplink.InvocationsDiscarded)},
	)
	est := report.KV("Fleet estimation",
		[2]string{"procedures estimated", report.I(s.EstimatedProcs)},
		[2]string{"procedures converged early", report.I(s.ConvergedProcs)},
		[2]string{"estimation rounds", report.I(s.Rounds)},
		[2]string{"EM iterations", report.I(s.Iterations)},
		[2]string{"simulate wall", s.SimWall.String()},
		[2]string{"uplink wall", s.UplinkWall.String()},
		[2]string{"estimate wall", s.EstimateWall.String()},
	)
	samples := &report.Table{Title: "Fleet samples per procedure", Header: []string{"proc", "samples"}}
	names := make([]string, 0, len(s.SamplesPerProc))
	for name := range s.SamplesPerProc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		samples.AddRow(name, report.I(s.SamplesPerProc[name]))
	}
	return []*report.Table{uplink, est, samples}
}
