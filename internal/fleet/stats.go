package fleet

import (
	"fmt"
	"sort"
	"time"

	"codetomo/internal/report"
	"codetomo/internal/trace"
)

// MoteUplink is one mote's radio accounting for the per-mote breakdown:
// what it transmitted (ARQ resends included), what the base station could
// actually use, and what faults it took.
type MoteUplink struct {
	ID uint16
	// Resets counts fault-injected reboots the mote took mid-campaign.
	Resets uint64
	// Sent counts transmissions including ARQ resends; Delivered counts
	// distinct packets reassembled; Corrupted counts frames the base
	// station rejected.
	Sent, Delivered, Corrupted int
	// Retransmissions and Recovered are the mote's ARQ effort and payoff.
	Retransmissions, Recovered int
	// EnergyUJ is the mote's consumed energy in microjoules: capacitor
	// drain under harvested power, the energy model's price of the run on
	// a mains-powered mote.
	EnergyUJ float64
	// PowerFailures and Restores count this mote's brownout deaths and
	// checkpoint resumes (0 on a mains-powered fleet).
	PowerFailures, Restores uint64
}

// Goodput is the fraction of radio transmissions that became usable
// distinct packets at the base station.
func (m MoteUplink) Goodput() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Sent)
}

// Stats is the fleet run's observability record: what the radios did, what
// the base station recovered, and what estimation cost. Wall times are the
// only fields that vary between identically-seeded runs.
type Stats struct {
	// Motes is the deployment size.
	Motes int
	// Link sums the channel-side accounting over all motes.
	Link LinkStats
	// Uplink sums the base-station-side accounting over all motes.
	Uplink trace.UplinkStats
	// ARQ sums the recovery protocol's accounting over all motes.
	ARQ ARQStats
	// Resets counts fault-injected reboots across the fleet.
	Resets uint64
	// Energy totals across the fleet: EnergyUJ sums each mote's consumed
	// energy (model-priced on mains power, capacitor drain under
	// harvesting); HarvestedUJ is the banked harvest (0 on mains power).
	EnergyUJ, HarvestedUJ float64
	// Intermittence counters across the fleet (all 0 on mains power).
	PowerFailures, Checkpoints, Restores, LostVolatileEvents uint64
	// PerMote is the per-mote uplink breakdown, in mote order.
	PerMote []MoteUplink
	// EventsLogged is the total mote-side trace length before the radio.
	EventsLogged int
	// SamplesPerProc counts the duration samples that reached each
	// procedure's estimator.
	SamplesPerProc map[string]int
	// Rounds and Iterations sum streaming-estimation effort over all
	// procedures (Iterations is EM-only).
	Rounds     int
	Iterations int
	// ConvergedProcs counts procedures whose streams converged early, out
	// of EstimatedProcs.
	ConvergedProcs int
	EstimatedProcs int
	// TrimmedSamples counts observations the robust estimator discarded
	// as model-implausible outliers; LowConfidenceProcs counts estimated
	// procedures whose layout fell back to the baseline because the
	// estimate was not trusted.
	TrimmedSamples     int
	LowConfidenceProcs int
	// Per-stage wall clock.
	SimWall      time.Duration
	UplinkWall   time.Duration
	EstimateWall time.Duration
}

// Tables renders the observability record for terminal reports.
func (s Stats) Tables() []*report.Table {
	uplink := report.KV("Fleet uplink",
		[2]string{"motes", report.I(s.Motes)},
		[2]string{"mote resets (watchdog/brownout)", report.I(int(s.Resets))},
		[2]string{"events logged", report.I(s.EventsLogged)},
		[2]string{"packets sent", report.I(s.Link.Sent)},
		[2]string{"packets dropped", report.I(s.Link.Dropped)},
		[2]string{"packets corrupted (channel)", report.I(s.Link.Corrupted)},
		[2]string{"packets duplicated", report.I(s.Link.Duplicated)},
		[2]string{"packets reordered", report.I(s.Link.Reordered)},
		[2]string{"packets delivered", report.I(s.Uplink.PacketsDelivered)},
		[2]string{"packets rejected (CRC/framing)", report.I(s.Uplink.PacketsCorrupted)},
		[2]string{"packets lost (observed)", report.I(s.Uplink.PacketsLost)},
		[2]string{"events delivered", report.I(s.Uplink.EventsDelivered)},
		[2]string{"invocations recovered", report.I(s.Uplink.InvocationsRecovered)},
		[2]string{"invocations discarded", report.I(s.Uplink.InvocationsDiscarded)},
		[2]string{"invocations lost to power (partials)", report.I(s.Uplink.LostPartials)},
	)
	est := report.KV("Fleet estimation",
		[2]string{"procedures estimated", report.I(s.EstimatedProcs)},
		[2]string{"procedures converged early", report.I(s.ConvergedProcs)},
		[2]string{"procedures low-confidence", report.I(s.LowConfidenceProcs)},
		[2]string{"samples trimmed (robust)", report.I(s.TrimmedSamples)},
		[2]string{"estimation rounds", report.I(s.Rounds)},
		[2]string{"EM iterations", report.I(s.Iterations)},
		[2]string{"simulate wall", s.SimWall.String()},
		[2]string{"uplink wall", s.UplinkWall.String()},
		[2]string{"estimate wall", s.EstimateWall.String()},
	)
	out := []*report.Table{uplink}
	if s.EnergyUJ > 0 {
		perInv := "n/a"
		if s.Uplink.InvocationsRecovered > 0 {
			perInv = fmt.Sprintf("%.3f", s.EnergyUJ/float64(s.Uplink.InvocationsRecovered))
		}
		energy := report.KV("Fleet energy",
			[2]string{"energy consumed (µJ)", fmt.Sprintf("%.1f", s.EnergyUJ)},
			[2]string{"energy harvested (µJ)", fmt.Sprintf("%.1f", s.HarvestedUJ)},
			[2]string{"energy per completed invocation (µJ)", perInv},
			[2]string{"power failures", report.I(int(s.PowerFailures))},
			[2]string{"checkpoints taken", report.I(int(s.Checkpoints))},
			[2]string{"checkpoint restores", report.I(int(s.Restores))},
			[2]string{"volatile events lost", report.I(int(s.LostVolatileEvents))},
		)
		out = append(out, energy)
	}
	if s.ARQ != (ARQStats{}) {
		out = append(out, report.KV("Fleet ARQ",
			[2]string{"retransmission rounds", report.I(s.ARQ.Rounds)},
			[2]string{"sequences NACKed", report.I(s.ARQ.Nacked)},
			[2]string{"frames retransmitted", report.I(s.ARQ.Retransmissions)},
			[2]string{"packets recovered", report.I(s.ARQ.Recovered)},
			[2]string{"packets unrecovered", report.I(s.ARQ.Unrecovered)},
			[2]string{"backoff ticks charged", report.I(int(s.ARQ.BackoffTicks))},
		))
	}
	out = append(out, est)
	if len(s.PerMote) > 0 {
		pm := &report.Table{
			Title:  "Per-mote uplink",
			Header: []string{"mote", "resets", "pwrfail", "restores", "energy µJ", "sent", "delivered", "rejected", "retrans", "recovered", "goodput"},
		}
		for _, m := range s.PerMote {
			pm.AddRow(report.I(int(m.ID)), report.I(int(m.Resets)),
				report.I(int(m.PowerFailures)), report.I(int(m.Restores)),
				fmt.Sprintf("%.1f", m.EnergyUJ), report.I(m.Sent),
				report.I(m.Delivered), report.I(m.Corrupted),
				report.I(m.Retransmissions), report.I(m.Recovered),
				fmt.Sprintf("%.1f%%", 100*m.Goodput()))
		}
		out = append(out, pm)
	}
	samples := &report.Table{Title: "Fleet samples per procedure", Header: []string{"proc", "samples"}}
	names := make([]string, 0, len(s.SamplesPerProc))
	for name := range s.SamplesPerProc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		samples.AddRow(name, report.I(s.SamplesPerProc[name]))
	}
	return append(out, samples)
}
