package fleet

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"codetomo/internal/isa"
	"codetomo/internal/mote"
)

// TestStreamMatchesMaterialized is the streaming pipeline's differential
// acceptance: on a hostile channel (loss, duplication, reordering,
// corruption, ARQ), every per-mote figure the streaming path produces —
// frames, link/ARQ/uplink accounting, durations, machine stats — must be
// bit-identical to the retained materializing path, and the dense fleet
// oracle must match the map-merged one.
func TestStreamMatchesMaterialized(t *testing.T) {
	cfg := buildFleet(t)
	cfg.Link.DropProb, cfg.Link.DupProb, cfg.Link.ReorderProb = 0.2, 0.1, 0.1
	cfg.Link.CorruptProb = 0.05
	cfg.Link.ARQ.MaxRetries = 2
	cfg.KeepFrames = true
	cfg.Cohort = 2 // force multiple cohorts and machine reuse
	specs := fleetSpecs(7)

	want, err := SimulateReassembledOn(NewPool(3), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, dense, err := SimulateStream(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streaming returned %d motes, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !reflect.DeepEqual(g.Spec, w.Spec) {
			t.Fatalf("mote %d: spec mismatch", i)
		}
		if !reflect.DeepEqual(g.Frames, w.Frames) {
			t.Fatalf("mote %d: delivered frames diverged", i)
		}
		if g.Link != w.Link || g.ARQ != w.ARQ {
			t.Fatalf("mote %d: link stats diverged:\nstream %+v %+v\nmater  %+v %+v", i, g.Link, g.ARQ, w.Link, w.ARQ)
		}
		if !reflect.DeepEqual(g.Uplink, w.Uplink) {
			t.Fatalf("mote %d: uplink stats diverged:\nstream %+v\nmater  %+v", i, g.Uplink, w.Uplink)
		}
		if g.EventsLogged != w.EventsLogged || g.Stats != w.Stats {
			t.Fatalf("mote %d: mote stats diverged", i)
		}
		if !reflect.DeepEqual(g.Durations, w.Durations) {
			t.Fatalf("mote %d: durations diverged", i)
		}
		var wantGross uint64
		for _, iv := range w.Intervals {
			wantGross += iv.GrossTicks()
		}
		if g.GrossTicks != wantGross {
			t.Fatalf("mote %d: gross ticks %d, want %d", i, g.GrossTicks, wantGross)
		}
	}
	wantOracle := MergeBranchStatsProcessed(want)
	gotOracle := DenseBranchStats(dense)
	if len(gotOracle) != len(wantOracle) {
		t.Fatalf("oracle has %d branches, want %d", len(gotOracle), len(wantOracle))
	}
	for pc, w := range wantOracle {
		g := gotOracle[pc]
		if g == nil || *g != *w {
			t.Fatalf("oracle pc %d: %+v, want %+v", pc, g, w)
		}
	}
}

// streamProg is a minimal raw-ISA instrumented workload for the large
// determinism sweep: proc 0 (TRACE 0/1) runs a few sensor-dependent,
// branchy invocations and halts — a few hundred cycles per mote, so tens
// of thousands of motes stay cheap even under the race detector.
func streamProg() []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 6},
		{Op: isa.LDI, Rd: 5, Imm: 3},
		{Op: isa.TRACE, Imm: 0}, // 2: invocation enter
		{Op: isa.IN, Rd: 2, Imm: isa.PortADC},
		{Op: isa.AND, Rd: 3, Ra: 2, Rb: 5},
		{Op: isa.BNZ, Ra: 3, Imm: 7}, // sensor-dependent branch
		{Op: isa.ADDI, Rd: 4, Ra: 4, Imm: 1},
		{Op: isa.TRACE, Imm: 1}, // 7: invocation exit
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.BNZ, Ra: 1, Imm: 2},
		{Op: isa.HALT},
	}
}

// TestStreamDeterminismAtScale pins the tentpole contract at fleet scale:
// ten thousand motes (a thousand under -short) produce bit-identical
// results and oracle across every combination of worker count and cohort
// size, including cohort 1 (maximal interleaving) and cohorts larger than
// the fleet share of a worker.
func TestStreamDeterminismAtScale(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	cfg := SimConfig{
		Prog:      streamProg(),
		Mote:      mote.DefaultConfig(),
		MaxCycles: 1_000_000,
		Link:      LinkConfig{Seed: 42, DropProb: 0.1, DupProb: 0.05},
	}
	cfg.Mote.RAMWords = 64
	specs := fleetSpecs(n)

	type variant struct{ workers, cohort int }
	variants := []variant{{1, 1}, {3, 64}, {8, 1000}, {5, 0}}
	var base []MoteResult
	var baseOracle []mote.BranchStat
	for _, v := range variants {
		c := cfg
		c.Workers, c.Cohort = v.workers, v.cohort
		out, oracle, err := SimulateStream(c, specs)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, baseOracle = out, oracle
			// The sweep must exercise real signal: recovered samples and a
			// populated oracle.
			var samples int
			for i := range out {
				samples += len(out[i].Durations[0])
			}
			if samples < n {
				t.Fatalf("only %d recovered samples across %d motes", samples, n)
			}
			continue
		}
		if !reflect.DeepEqual(out, base) {
			t.Fatalf("workers=%d cohort=%d: per-mote results diverged from workers=1 cohort=1", v.workers, v.cohort)
		}
		if !reflect.DeepEqual(oracle, baseOracle) {
			t.Fatalf("workers=%d cohort=%d: fleet oracle diverged", v.workers, v.cohort)
		}
	}
}

// TestStreamErrors pins the failure contract: no motes, stateful
// predictors, bad workloads, and sink errors all abort with a useful
// error instead of a partial result.
func TestStreamErrors(t *testing.T) {
	cfg := buildFleet(t)
	if _, _, err := SimulateStream(cfg, nil); err == nil {
		t.Fatal("no error for an empty fleet")
	}
	bad := fleetSpecs(2)
	bad[1].Workload = "no-such-regime"
	if _, _, err := SimulateStream(cfg, bad); err == nil {
		t.Fatal("no error for an unknown workload")
	}
	cfg2 := cfg
	cfg2.Mote.Predictor = mote.NewBimodal(64)
	if _, _, err := SimulateStream(cfg2, fleetSpecs(1)); err == nil {
		t.Fatal("no error for a trainable predictor")
	}
	sinkErr := fmt.Errorf("sink exploded")
	_, err := SimulateStreamOn(NewPool(2), cfg, fleetSpecs(3), func(int, []MoteResult) error {
		return sinkErr
	})
	if err == nil || !reflect.DeepEqual(err.Error(), "fleet: sink: sink exploded") {
		t.Fatalf("sink error not surfaced: %v", err)
	}
}

// TestPoolBoundedGoroutines pins the PR-9 Pool fix: submitting far more
// tasks than workers must not spawn a goroutine per task. Ten thousand
// queued tasks behind a gate may add at most the drain workers plus
// scheduler slack — not ten thousand goroutines.
func TestPoolBoundedGoroutines(t *testing.T) {
	pool := NewPool(4)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	before := runtime.NumGoroutine()
	for i := 0; i < 10_000; i++ {
		pool.Go(&wg, func() { <-gate })
	}
	// Give the drain workers a moment to start and park on the gate.
	time.Sleep(20 * time.Millisecond)
	if grew := runtime.NumGoroutine() - before; grew > 64 {
		t.Errorf("10k queued tasks grew goroutines by %d; the pool must stay bounded", grew)
	}
	close(gate)
	wg.Wait()
	// The queue must fully drain and execute every task.
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 100; i++ {
		pool.Go(&wg, func() { mu.Lock(); ran++; mu.Unlock() })
	}
	wg.Wait()
	if ran != 100 {
		t.Fatalf("ran %d of 100 post-drain tasks", ran)
	}
}
