package fleet

import "sync"

// Pool is the campaign's bounded worker pool: one semaphore shared by every
// parallel stage — mote simulation, uplink reassembly, model construction,
// streaming estimation — so the whole pipeline runs at most `workers` tasks
// at once no matter how stages overlap. Tasks must be pure functions of
// their inputs writing to caller-owned slots; the pool bounds concurrency
// only and never influences results.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool running at most workers tasks concurrently
// (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Do runs f under the pool's concurrency bound, blocking until a slot
// frees up. Callers fan out with their own goroutines and WaitGroups; Do
// is the choke point they all share.
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// Go runs f on a new goroutine under the pool's concurrency bound,
// registered on wg. The goroutine is spawned immediately (submission never
// blocks) but f itself waits for a pool slot.
func (p *Pool) Go(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(f)
	}()
}
