package fleet

import "sync"

// Pool is the campaign's bounded worker pool: one semaphore shared by every
// parallel stage — mote simulation, uplink reassembly, model construction,
// streaming estimation — so the whole pipeline runs at most `workers` tasks
// at once no matter how stages overlap. Tasks must be pure functions of
// their inputs writing to caller-owned slots; the pool bounds concurrency
// only and never influences results.
//
// Submission is cheap at any fan-out: Go enqueues the task and at most
// `workers` long-lived drain goroutines pull from the queue, so submitting
// a million tasks costs a million queue slots, not a million goroutines
// (the pre-PR-9 behaviour). Queue slots are released as tasks are picked
// up and the backing array is recycled whenever the queue drains.
type Pool struct {
	sem chan struct{}

	mu      sync.Mutex
	queue   []func()
	head    int // queue[:head] already dispatched
	running int // drain goroutines alive
}

// NewPool builds a pool running at most workers tasks concurrently
// (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Do runs f under the pool's concurrency bound, blocking until a slot
// frees up. Callers fan out with their own goroutines and WaitGroups; Do
// is the choke point they all share.
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// Go runs f under the pool's concurrency bound, registered on wg.
// Submission never blocks: the task is queued, and a bounded set of drain
// goroutines (at most the pool's worker count, spawned lazily and exiting
// when the queue empties) executes queued tasks in submission order. The
// drain workers acquire the same semaphore as Do, so mixed Do/Go callers
// still share one global bound.
func (p *Pool) Go(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	p.mu.Lock()
	p.queue = append(p.queue, func() {
		defer wg.Done()
		p.Do(f)
	})
	spawn := p.running < cap(p.sem)
	if spawn {
		p.running++
	}
	p.mu.Unlock()
	if spawn {
		go p.drain()
	}
}

// drain pulls queued tasks until the queue is empty, then exits. The
// running counter and the emptiness check share p.mu, so a Go racing a
// dying drain worker either hands it the task or observes the decremented
// count and spawns a replacement — tasks are never stranded.
func (p *Pool) drain() {
	for {
		p.mu.Lock()
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
			p.running--
			p.mu.Unlock()
			return
		}
		task := p.queue[p.head]
		p.queue[p.head] = nil // release the closure as soon as it is claimed
		p.head++
		if p.head >= 1024 && p.head*2 >= len(p.queue) {
			n := copy(p.queue, p.queue[p.head:])
			p.queue = p.queue[:n]
			p.head = 0
		}
		p.mu.Unlock()
		task()
	}
}
