// Package fleet simulates a deployed sensor network running a Code
// Tomography measurement campaign: N motes execute the same compiled
// program under heterogeneous workloads and unsynchronized clocks, batch
// their TRACE logs into radio packets, and upload them over a lossy link
// to a base station that reassembles the per-mote streams and runs
// streaming estimation over the merged fleet samples.
//
// Everything here is deterministic for a fixed seed: motes simulate
// independently (pure per-mote state, per-mote derived RNGs), results are
// merged in mote-ID order, and the concurrency knobs (worker pool size,
// GOMAXPROCS) change only wall time, never results.
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"codetomo/internal/fault"
	"codetomo/internal/isa"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// MoteSpec describes one mote of the deployment.
type MoteSpec struct {
	// ID is the radio identity stamped into uplink packets.
	ID uint16
	// Workload names the input regime this mote observes (workload.Named).
	Workload string
	// Seed drives this mote's sensor and entropy streams.
	Seed int64
	// ClockOffsetTicks skews this mote's timer, modeling unsynchronized
	// clocks across the deployment.
	ClockOffsetTicks uint64
}

// SimConfig configures a deployment simulation.
type SimConfig struct {
	// Prog is the compiled (instrumented) program every mote runs.
	Prog []isa.Instr
	// Mote is the base machine configuration. Sensor, Entropy, and
	// ClockOffsetTicks are overridden per mote from its spec. The
	// Predictor must be stateless: a TrainablePredictor carries mutable
	// per-branch state that cannot be shared across concurrent motes.
	Mote mote.Config
	// MaxCycles bounds each mote's run.
	MaxCycles uint64
	// Workers bounds how many motes simulate concurrently (default 4).
	Workers int
	// Link is the radio channel every mote uploads through.
	Link LinkConfig
	// Faults is the fault environment: crash/reboot schedules and sensor
	// faults, derived per mote from the fault seed. The zero value is a
	// healthy deployment.
	Faults fault.Config
	// Energy, when enabled, powers every mote from a harvesting capacitor
	// (fault.EnergyConfig): execution browns out wherever the program's
	// own energy consumption drains the charge, not on a wall-clock
	// schedule. Composes with Faults — watchdog windows become dead time
	// during which harvest continues.
	Energy fault.EnergyConfig
	// Checkpoint is the checkpoint/restore policy motes run under Energy
	// (ignored otherwise). The zero value cold-boots on every outage.
	Checkpoint mote.CheckpointPolicy
	// Cohort is the streaming scheduler's batch size: motes per pooled
	// task in SimulateStreamOn (0 = DefaultCohortSize). Like Workers it
	// moves wall time and peak memory only, never results.
	Cohort int
	// KeepFrames retains each mote's delivered frames on its MoteResult in
	// the streaming pipeline (for forwarding to a real base station over
	// the wire); by default frames are dropped the moment they are
	// reassembled — the point of streaming.
	KeepFrames bool
}

// MoteUpload is what the base station holds for one mote after its upload:
// the packets that survived the link, plus ground truth kept on the side
// for evaluation (a real deployment would not have it).
type MoteUpload struct {
	Spec MoteSpec
	// Frames are the link's deliveries in arrival order: raw bytes,
	// because corruption happens to bytes — the base station finds out
	// what survived only by decoding.
	Frames [][]byte
	// Link counts what happened on the channel; ARQ counts what recovery
	// cost.
	Link LinkStats
	ARQ  ARQStats
	// EventsLogged is the mote-side trace length before packetization.
	EventsLogged int
	// BranchStats is the simulator's ground truth for this mote.
	BranchStats map[int32]*mote.BranchStat
	// Stats are the mote's architectural counters.
	Stats mote.Stats
}

// Simulate runs every mote of the deployment on a bounded worker pool and
// returns their uploads in spec order. The result is independent of
// Workers and GOMAXPROCS: each mote's simulation and link are pure
// functions of its spec and the configs.
func Simulate(cfg SimConfig, specs []MoteSpec) ([]MoteUpload, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	pus, err := SimulateReassembledOn(NewPool(workers), cfg, specs)
	if err != nil {
		return nil, err
	}
	uploads := make([]MoteUpload, len(pus))
	for i := range pus {
		uploads[i] = pus[i].MoteUpload
	}
	return uploads, nil
}

// ProcessedUpload is one mote's upload after the base station has done the
// per-mote half of its work: frames reassembled into invocation intervals
// and converted to per-procedure durations. Producing it inside the mote's
// own pool task lets uplink processing overlap other motes' simulations.
type ProcessedUpload struct {
	MoteUpload
	// Intervals are the invocation intervals recovered from the frames;
	// Uplink is the reassembly accounting.
	Intervals []trace.Interval
	Uplink    trace.UplinkStats
	// Durations maps procedure index to measured durations in cycles
	// (exclusive time, tick-quantized with cfg.Mote.TickDiv).
	Durations map[int][]float64
}

// SimulateReassembledOn runs every mote of the deployment on the shared
// pool — simulation, link transit, frame reassembly, and duration
// extraction fused into one task per mote — and returns the processed
// uploads in spec order. cfg.Workers is ignored; the pool bounds
// concurrency. Results are independent of pool size and GOMAXPROCS: each
// task is a pure function of (cfg, spec) writing only its own slot.
func SimulateReassembledOn(pool *Pool, cfg SimConfig, specs []MoteSpec) ([]ProcessedUpload, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no motes")
	}
	if _, ok := cfg.Mote.Predictor.(mote.TrainablePredictor); ok {
		return nil, fmt.Errorf("fleet: predictor %q is stateful (TrainablePredictor); fleet motes run concurrently and cannot share trained state", cfg.Mote.Predictor.Name())
	}
	out := make([]ProcessedUpload, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		pool.Go(&wg, func() {
			up, err := runMote(cfg, spec)
			if err != nil {
				errs[i] = fmt.Errorf("fleet: mote %d: %w", spec.ID, err)
				return
			}
			ivs, ust, err := Reassemble(up) // wraps with the mote identity itself
			if err != nil {
				errs[i] = err
				return
			}
			durs := make(map[int][]float64)
			for p, ticks := range trace.ExclusiveByProc(ivs) {
				durs[p] = trace.DurationsCycles(ticks, cfg.Mote.TickDiv)
			}
			out[i] = ProcessedUpload{MoteUpload: up, Intervals: ivs, Uplink: ust, Durations: durs}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moteConfig derives one mote's machine configuration from its spec: the
// base machine shape plus the spec's sensor/entropy streams, clock skew,
// and the fault/energy environment keyed by the mote identity.
func moteConfig(cfg SimConfig, spec MoteSpec) (mote.Config, error) {
	sensor, ok := workload.Named(spec.Workload, stats.NewRNG(spec.Seed))
	if !ok {
		return mote.Config{}, fmt.Errorf("unknown workload %q", spec.Workload)
	}
	mc := cfg.Mote
	mc.Sensor = sensor
	mc.Entropy = workload.NewEntropy(stats.NewRNG(spec.Seed + 7919))
	mc.ClockOffsetTicks = spec.ClockOffsetTicks
	if cfg.Faults.Enabled() {
		mc.Resets = cfg.Faults.Resets(cfg.MaxCycles, int64(spec.ID))
		mc.Sensor = cfg.Faults.WrapSensor(mc.Sensor, int64(spec.ID))
	}
	if cfg.Energy.Enabled() {
		mc.Power = cfg.Energy.Power(int64(spec.ID), cfg.Checkpoint)
	}
	return mc, nil
}

// runMachine executes one mote's measurement campaign on an already
// configured machine, tolerating the stops a hostile environment is
// expected to produce.
func runMachine(m *mote.Machine, cfg SimConfig) error {
	if err := m.Run(cfg.MaxCycles); err != nil {
		// Under fault injection or harvested power a mote that never
		// finishes its campaign — crash-looping past the cycle budget,
		// stalled on an empty capacitor, or filling the trace buffer
		// re-running work — is an expected outcome, not a failure: the
		// base station works with whatever was logged before the window
		// closed. Anything else (or any error on a healthy fleet) is a
		// real bug and aborts.
		expected := (cfg.Faults.Enabled() || cfg.Energy.Enabled()) &&
			(errors.Is(err, mote.ErrCycleBudget) || errors.Is(err, mote.ErrTraceOverflow))
		if !expected {
			return err
		}
	}
	return nil
}

// uplinkMote packetizes a finished machine's trace and pushes the frames
// through the radio channel, returning the link's deliveries.
func uplinkMote(m *mote.Machine, cfg SimConfig, spec MoteSpec) (delivered [][]byte, ls LinkStats, ast ARQStats, eventsLogged int, err error) {
	events := m.Trace()
	pkts := trace.Packetize(spec.ID, events, cfg.Link.EventsPerPacket)
	if cfg.Link.PacketVersion == trace.PacketVersionLegacy {
		for i := range pkts {
			pkts[i].Version = trace.PacketVersionLegacy
		}
	}
	frames := make([][]byte, len(pkts))
	for i := range pkts {
		b, err := pkts[i].MarshalBinary()
		if err != nil {
			return nil, LinkStats{}, ARQStats{}, 0, err
		}
		frames[i] = b
	}
	// The channel RNG derives from the link seed and the mote identity so
	// each mote sees an independent but reproducible channel.
	delivered, ls, ast = cfg.Link.TransmitARQ(frames, stats.NewRNG(cfg.Link.Seed+int64(spec.ID)*6151+1))
	return delivered, ls, ast, len(events), nil
}

// runMote simulates one mote and pushes its trace through the link. It is
// a pure function of (cfg, spec) — the determinism of the whole fleet
// rests on that.
func runMote(cfg SimConfig, spec MoteSpec) (MoteUpload, error) {
	mc, err := moteConfig(cfg, spec)
	if err != nil {
		return MoteUpload{}, err
	}
	m := mote.New(cfg.Prog, mc)
	if err := runMachine(m, cfg); err != nil {
		return MoteUpload{}, err
	}
	delivered, ls, ast, events, err := uplinkMote(m, cfg, spec)
	if err != nil {
		return MoteUpload{}, err
	}
	return MoteUpload{
		Spec:         spec,
		Frames:       delivered,
		Link:         ls,
		ARQ:          ast,
		EventsLogged: events,
		BranchStats:  m.BranchStats(),
		Stats:        m.Stats(),
	}, nil
}

// MoteEnergyUJ prices one mote's run in microjoules: the capacitor drain
// when the mote ran from harvested power (which already excludes dead
// time), the default energy model's price of the run otherwise.
func MoteEnergyUJ(s mote.Stats) float64 {
	if s.DrainedUJ > 0 {
		return s.DrainedUJ
	}
	return mote.DefaultEnergyModel().Energy(s)
}

// Reassemble runs one mote's delivered frames through the loss-tolerant
// reassembler and returns the surviving invocation intervals with the
// uplink accounting. Frames the channel corrupted are rejected (and
// counted) at this boundary — the CRC check happens where a real base
// station would run it, on the received bytes.
func Reassemble(up MoteUpload) ([]trace.Interval, trace.UplinkStats, error) {
	r := trace.NewReassembler(up.Spec.ID)
	for _, f := range up.Frames {
		if err := r.AddFrame(f); err != nil {
			return nil, trace.UplinkStats{}, fmt.Errorf("fleet: mote %d: %w", up.Spec.ID, err)
		}
	}
	ivs, st := r.Recover()
	return ivs, st, nil
}

// MergeBranchStatsProcessed is MergeBranchStats over processed uploads.
func MergeBranchStatsProcessed(uploads []ProcessedUpload) map[int32]*mote.BranchStat {
	raw := make([]MoteUpload, len(uploads))
	for i := range uploads {
		raw[i] = uploads[i].MoteUpload
	}
	return MergeBranchStats(raw)
}

// MergeBranchStats sums per-branch ground-truth outcome counts across the
// fleet (keyed by branch address; every mote runs the same binary, so
// addresses line up). The result is the fleet oracle.
func MergeBranchStats(uploads []MoteUpload) map[int32]*mote.BranchStat {
	merged := make(map[int32]*mote.BranchStat)
	for _, up := range uploads {
		for pc, st := range up.BranchStats {
			m := merged[pc]
			if m == nil {
				m = &mote.BranchStat{}
				merged[pc] = m
			}
			m.Taken += st.Taken
			m.NotTaken += st.NotTaken
			m.Mispred += st.Mispred
		}
	}
	return merged
}
