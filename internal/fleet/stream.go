package fleet

import (
	"errors"
	"fmt"
	"sync"

	"codetomo/internal/markov"
	"codetomo/internal/tomography"
)

// BatchStreams turns per-mote, per-procedure sample sets into uplink
// rounds: each mote's stream is cut into `batches` slices, and round b is
// the concatenation of every mote's slice b in mote order. This models the
// base station receiving one upload round from the whole fleet at a time,
// and is deterministic for a fixed mote order.
func BatchStreams(perMote []map[int][]float64, batches int) map[int][][]float64 {
	if batches <= 0 {
		batches = 1
	}
	out := make(map[int][][]float64)
	procs := map[int]bool{}
	for _, m := range perMote {
		for p := range m {
			procs[p] = true
		}
	}
	for p := range procs {
		rounds := make([][]float64, batches)
		for _, m := range perMote {
			s := m[p]
			if len(s) == 0 {
				continue
			}
			chunk := (len(s) + batches - 1) / batches
			for b := 0; b < batches; b++ {
				lo := b * chunk
				if lo >= len(s) {
					break
				}
				hi := lo + chunk
				if hi > len(s) {
					hi = len(s)
				}
				rounds[b] = append(rounds[b], s[lo:hi]...)
			}
		}
		out[p] = rounds
	}
	return out
}

// ProcStream is one procedure's model plus its batched fleet samples,
// ready for streaming estimation.
type ProcStream struct {
	Name    string
	Model   *tomography.Model
	Batches [][]float64
}

// ProcOutcome is the streaming-estimation result for one procedure.
type ProcOutcome struct {
	Name  string
	Probs markov.EdgeProbs
	// Rounds is how many re-estimations ran before convergence stopped
	// them (or the stream ran out).
	Rounds int
	// Iterations is the total EM iterations across rounds (0 for non-EM
	// estimators).
	Iterations int
	// SampleCount is the number of duration samples absorbed.
	SampleCount int
	// Converged reports the estimate stopped moving before the stream
	// ended.
	Converged bool
	// Trimmed is how many samples the robust estimator discarded as
	// outliers (0 for non-robust estimators); Confident is its verdict on
	// whether the estimate should be acted on (always true otherwise).
	Trimmed   int
	Confident bool
}

// EstimateStreams runs streaming estimation for every procedure on a
// bounded worker pool (workers <= 0 selects one per stream) and returns
// outcomes in input order. Each stream is a pure function of its input, so
// the result is independent of worker count and scheduling.
func EstimateStreams(streams []ProcStream, est tomography.Estimator, tol float64, patience, workers int) ([]ProcOutcome, error) {
	if workers <= 0 {
		workers = len(streams)
	}
	return EstimateStreamsOn(NewPool(workers), streams, est, tol, patience)
}

// EstimateStreamsOn is EstimateStreams running on a caller-owned pool, so
// estimation can share the campaign's concurrency bound with simulation
// and model construction instead of claiming its own.
func EstimateStreamsOn(pool *Pool, streams []ProcStream, est tomography.Estimator, tol float64, patience int) ([]ProcOutcome, error) {
	outcomes := make([]ProcOutcome, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, s := range streams {
		i, s := i, s
		pool.Go(&wg, func() {
			// Incremental handles the convergence-based early stop: once
			// the estimate settles, later batches are absorbed into the
			// sample accounting without re-estimating.
			inc := tomography.NewIncremental(s.Model, est, tol, patience)
			for _, batch := range s.Batches {
				if _, err := inc.Observe(batch); err != nil {
					if errors.Is(err, tomography.ErrNoSamples) {
						// An uplink round that delivered nothing for this
						// procedure: nothing to re-estimate yet.
						continue
					}
					errs[i] = fmt.Errorf("fleet: estimate %s: %w", s.Name, err)
					return
				}
			}
			outcomes[i] = ProcOutcome{
				Name:        s.Name,
				Probs:       inc.Probs(),
				Rounds:      inc.Rounds(),
				Iterations:  inc.Iterations(),
				SampleCount: inc.SampleCount(),
				Converged:   inc.Converged(),
				Trimmed:     inc.Trimmed(),
				Confident:   inc.Confident(),
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}
