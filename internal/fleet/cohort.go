// Cohort-batched streaming simulation: the density-oriented fleet
// pipeline. Motes are partitioned into fixed-size cohorts, each cohort
// runs as one pooled task on a reused mote.Machine, and each mote's frames
// are reassembled, duration-extracted, and reduced to a compact MoteResult
// inside the cohort — raw frames and trace events die before the next
// cohort starts, so peak memory is O(workers × cohort), not O(fleet).
package fleet

import (
	"fmt"
	"sync"

	"codetomo/internal/mote"
	"codetomo/internal/trace"
)

// DefaultCohortSize is the streaming scheduler's batch size when
// SimConfig.Cohort is zero: big enough to amortize worker-local machine
// reuse and sink locking, small enough that a cohort's retained results
// stay a rounding error next to one machine's RAM.
const DefaultCohortSize = 64

// MoteResult is the streaming pipeline's per-mote output: everything the
// base station keeps after a mote's upload has been reassembled and
// duration-extracted, with the raw frames and trace events already
// dropped (unless SimConfig.KeepFrames asks for them).
type MoteResult struct {
	Spec MoteSpec
	// Link and ARQ count what happened on the channel and what recovery
	// cost; Uplink is the reassembly accounting.
	Link   LinkStats
	ARQ    ARQStats
	Uplink trace.UplinkStats
	// EventsLogged is the mote-side trace length before packetization.
	EventsLogged int
	// Stats are the mote's architectural counters.
	Stats mote.Stats
	// GrossTicks sums the gross (callee-inclusive) duration of every
	// recovered invocation, in ticks — exact, so fleet-level folds can
	// stay integer for as long as possible.
	GrossTicks uint64
	// Durations maps procedure index to measured exclusive durations in
	// cycles (tick-quantized with the mote's TickDiv).
	Durations map[int][]float64
	// Frames are the link's deliveries in arrival order; nil unless
	// SimConfig.KeepFrames retained them for wire forwarding.
	Frames [][]byte
}

// streamWorker is the per-task scratch the engine recycles across cohorts:
// the reused machine (reset per mote), a cohort-local dense oracle folded
// into the shared one once per cohort, and the result slots handed to the
// sink. At most pool.Workers() of these are ever live.
type streamWorker struct {
	m      *mote.Machine
	oracle []mote.BranchStat
	out    []MoteResult
}

// runMote simulates one mote on the worker's reused machine and reduces
// it to a MoteResult. Reset leaves the machine bit-identical to a fresh
// New, so reuse cannot leak state between motes.
func (w *streamWorker) runMote(cfg SimConfig, spec MoteSpec) (MoteResult, error) {
	mc, err := moteConfig(cfg, spec)
	if err != nil {
		return MoteResult{}, fmt.Errorf("fleet: mote %d: %w", spec.ID, err)
	}
	if w.m == nil {
		w.m = mote.New(cfg.Prog, mc)
	} else {
		w.m.Reset(mc)
	}
	if err := runMachine(w.m, cfg); err != nil {
		return MoteResult{}, fmt.Errorf("fleet: mote %d: %w", spec.ID, err)
	}
	frames, ls, ast, events, err := uplinkMote(w.m, cfg, spec)
	if err != nil {
		return MoteResult{}, fmt.Errorf("fleet: mote %d: %w", spec.ID, err)
	}

	// The base station's per-mote half, fused in: reassemble, extract
	// durations, and let the frames go.
	r := trace.NewReassembler(spec.ID)
	for _, f := range frames {
		if err := r.AddFrame(f); err != nil {
			return MoteResult{}, fmt.Errorf("fleet: mote %d: %w", spec.ID, err)
		}
	}
	ivs, ust := r.Recover()
	durs := make(map[int][]float64)
	for p, ticks := range trace.ExclusiveByProc(ivs) {
		durs[p] = trace.DurationsCycles(ticks, cfg.Mote.TickDiv)
	}
	var gross uint64
	for _, iv := range ivs {
		gross += iv.GrossTicks()
	}
	w.m.AddBranchStatsTo(w.oracle)

	res := MoteResult{
		Spec:         spec,
		Link:         ls,
		ARQ:          ast,
		Uplink:       ust,
		EventsLogged: events,
		Stats:        w.m.Stats(),
		GrossTicks:   gross,
		Durations:    durs,
	}
	if cfg.KeepFrames {
		res.Frames = frames
	}
	return res, nil
}

// SimulateStreamOn runs the deployment through the cohort-batched
// streaming pipeline on the shared pool. Motes are partitioned into
// cohorts of cfg.Cohort specs; each cohort is one pooled task running its
// motes sequentially on one reused machine, then handing the cohort's
// MoteResults to sink. The returned dense table is the fleet's merged
// ground-truth branch oracle, indexed by pc (DenseBranchStats gives the
// map view).
//
// sink is called once per cohort, never concurrently, with the index of
// the cohort's first spec and the cohort's results in spec order. Cohorts
// arrive in completion order, so sinks must write into index-addressed
// slots or fold commutatively (integer sums). The slice passed to sink is
// engine-owned and recycled after sink returns; the MoteResult values and
// everything they reference are the sink's to keep. A sink error aborts
// the run.
//
// Results are bit-identical across Workers, Cohort, and GOMAXPROCS: each
// mote is a pure function of (cfg, spec), machine reuse is pinned
// equivalent to construction, and every cross-cohort fold is either
// index-addressed or a commutative integer sum.
func SimulateStreamOn(pool *Pool, cfg SimConfig, specs []MoteSpec, sink func(first int, cohort []MoteResult) error) ([]mote.BranchStat, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no motes")
	}
	if _, ok := cfg.Mote.Predictor.(mote.TrainablePredictor); ok {
		return nil, fmt.Errorf("fleet: predictor %q is stateful (TrainablePredictor); fleet motes run concurrently and cannot share trained state", cfg.Mote.Predictor.Name())
	}
	cohort := cfg.Cohort
	if cohort <= 0 {
		cohort = DefaultCohortSize
	}

	oracle := make([]mote.BranchStat, len(cfg.Prog))
	free := make(chan *streamWorker, pool.Workers())
	nCohorts := (len(specs) + cohort - 1) / cohort
	errs := make([]error, nCohorts)
	var (
		sinkMu  sync.Mutex
		stopped bool // set under sinkMu on first error; later cohorts bail out
		wg      sync.WaitGroup
	)
	for c := 0; c < nCohorts; c++ {
		c := c
		first := c * cohort
		end := first + cohort
		if end > len(specs) {
			end = len(specs)
		}
		batch := specs[first:end]
		pool.Go(&wg, func() {
			sinkMu.Lock()
			bail := stopped
			sinkMu.Unlock()
			if bail {
				return
			}
			var w *streamWorker
			select {
			case w = <-free:
			default:
				w = &streamWorker{oracle: make([]mote.BranchStat, len(cfg.Prog))}
			}
			if cap(w.out) < len(batch) {
				w.out = make([]MoteResult, len(batch))
			}
			out := w.out[:len(batch)]
			for j, spec := range batch {
				res, err := w.runMote(cfg, spec)
				if err != nil {
					sinkMu.Lock()
					errs[c] = err
					stopped = true
					sinkMu.Unlock()
					return
				}
				out[j] = res
			}
			sinkMu.Lock()
			if !stopped {
				for pc := range w.oracle {
					st := &w.oracle[pc]
					if st.Taken == 0 && st.NotTaken == 0 {
						continue
					}
					d := &oracle[pc]
					d.Taken += st.Taken
					d.NotTaken += st.NotTaken
					d.Mispred += st.Mispred
					*st = mote.BranchStat{}
				}
				if err := sink(first, out); err != nil {
					errs[c] = fmt.Errorf("fleet: sink: %w", err)
					stopped = true
				}
			}
			sinkMu.Unlock()
			// Recycle the worker: the machine is Reset per mote and the
			// result slots are overwritten per cohort, so nothing can leak
			// between cohorts. Dropped (collected) when the buffer is full.
			select {
			case free <- w:
			default:
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return oracle, nil
}

// SimulateStream materializes the streaming pipeline's per-mote results in
// spec order alongside the merged oracle — the differential-test
// comparator for SimulateStreamOn, and a convenience for fleets small
// enough to hold.
func SimulateStream(cfg SimConfig, specs []MoteSpec) ([]MoteResult, []mote.BranchStat, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	out := make([]MoteResult, len(specs))
	oracle, err := SimulateStreamOn(NewPool(workers), cfg, specs, func(first int, cohort []MoteResult) error {
		copy(out[first:], cohort)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, oracle, nil
}

// DenseBranchStats converts a dense pc-indexed oracle into the map view
// MergeBranchStats produces for the estimator-facing API.
func DenseBranchStats(dense []mote.BranchStat) map[int32]*mote.BranchStat {
	out := make(map[int32]*mote.BranchStat)
	for pc := range dense {
		if st := dense[pc]; st.Taken != 0 || st.NotTaken != 0 {
			c := st
			out[int32(pc)] = &c
		}
	}
	return out
}
