package fleet

import (
	"fmt"

	"codetomo/internal/stats"
	"codetomo/internal/trace"
)

// LinkConfig models the radio channel between a mote and the base
// station. Each packet is independently dropped, duplicated, or swapped
// with its successor; all three are Bernoulli draws from a seeded RNG, so
// a given (seed, packet stream) pair always produces the same channel
// behaviour.
type LinkConfig struct {
	// DropProb is the per-packet loss probability in [0, 1].
	DropProb float64
	// DupProb is the per-packet duplication probability in [0, 1].
	DupProb float64
	// ReorderProb is the per-packet probability of being swapped with the
	// next surviving packet, in [0, 1].
	ReorderProb float64
	// EventsPerPacket is the packetization batch size (0 = default).
	EventsPerPacket int
	// Seed drives the channel RNG.
	Seed int64
}

// Validate rejects probabilities outside [0, 1].
func (lc LinkConfig) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fleet: link %s = %v, must be in [0, 1]", name, p)
		}
		return nil
	}
	if err := check("DropProb", lc.DropProb); err != nil {
		return err
	}
	if err := check("DupProb", lc.DupProb); err != nil {
		return err
	}
	if err := check("ReorderProb", lc.ReorderProb); err != nil {
		return err
	}
	if lc.EventsPerPacket < 0 {
		return fmt.Errorf("fleet: link EventsPerPacket = %d, must be >= 0", lc.EventsPerPacket)
	}
	return nil
}

// LinkStats counts what the channel did to one mote's upload.
type LinkStats struct {
	Sent       int
	Dropped    int
	Duplicated int
	Reordered  int
}

// Transmit pushes a packet stream through the channel: drops first, then
// duplication, then adjacent swaps among the survivors. The draws happen
// in a fixed order per packet so the outcome is a deterministic function
// of the RNG seed and the stream.
func (lc LinkConfig) Transmit(pkts []trace.Packet, rng *stats.RNG) ([]trace.Packet, LinkStats) {
	st := LinkStats{Sent: len(pkts)}
	out := make([]trace.Packet, 0, len(pkts))
	for _, p := range pkts {
		if rng.Bernoulli(lc.DropProb) {
			st.Dropped++
			continue
		}
		out = append(out, p)
		if rng.Bernoulli(lc.DupProb) {
			st.Duplicated++
			out = append(out, p)
		}
	}
	for i := 0; i+1 < len(out); i++ {
		if rng.Bernoulli(lc.ReorderProb) {
			out[i], out[i+1] = out[i+1], out[i]
			st.Reordered++
		}
	}
	if len(out) == 0 {
		return nil, st
	}
	return out, st
}
