package fleet

import (
	"fmt"

	"codetomo/internal/stats"
	"codetomo/internal/trace"
)

// LinkConfig models the radio channel between a mote and the base
// station. Each transmission is independently dropped, corrupted (one bit
// flipped), duplicated, or swapped with its successor; all draws come from
// a seeded RNG, so a given (seed, frame stream) pair always produces the
// same channel behaviour.
type LinkConfig struct {
	// DropProb is the per-packet loss probability in [0, 1].
	DropProb float64
	// DupProb is the per-packet duplication probability in [0, 1].
	DupProb float64
	// ReorderProb is the per-packet probability of being swapped with the
	// next surviving packet, in [0, 1].
	ReorderProb float64
	// CorruptProb is the per-transmission probability, in [0, 1], of a
	// single-bit flip somewhere in the frame. CRC-carrying v2 frames let
	// the base station reject the damage; v1 frames decode silently wrong
	// (or fail framing checks if the flip lands in the header).
	CorruptProb float64
	// EventsPerPacket is the packetization batch size (0 = default).
	EventsPerPacket int
	// PacketVersion selects the uplink wire format:
	// trace.PacketVersionCRC (the default when 0) or
	// trace.PacketVersionLegacy for pre-CRC captures.
	PacketVersion int
	// ARQ configures selective-repeat recovery; the zero value disables
	// it.
	ARQ ARQConfig
	// Seed drives the channel RNG.
	Seed int64
}

// Validate rejects probabilities outside [0, 1] and inconsistent
// recovery configurations.
func (lc LinkConfig) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fleet: link %s = %v, must be in [0, 1]", name, p)
		}
		return nil
	}
	if err := check("DropProb", lc.DropProb); err != nil {
		return err
	}
	if err := check("DupProb", lc.DupProb); err != nil {
		return err
	}
	if err := check("ReorderProb", lc.ReorderProb); err != nil {
		return err
	}
	if err := check("CorruptProb", lc.CorruptProb); err != nil {
		return err
	}
	if lc.EventsPerPacket < 0 {
		return fmt.Errorf("fleet: link EventsPerPacket = %d, must be >= 0", lc.EventsPerPacket)
	}
	switch lc.PacketVersion {
	case 0, trace.PacketVersionLegacy, trace.PacketVersionCRC:
	default:
		return fmt.Errorf("fleet: link PacketVersion = %d, must be %d or %d",
			lc.PacketVersion, trace.PacketVersionLegacy, trace.PacketVersionCRC)
	}
	if lc.ARQ.MaxRetries < 0 {
		return fmt.Errorf("fleet: link ARQ.MaxRetries = %d, must be >= 0", lc.ARQ.MaxRetries)
	}
	if lc.ARQ.Enabled() && lc.PacketVersion == trace.PacketVersionLegacy {
		return fmt.Errorf("fleet: ARQ requires the CRC packet format (PacketVersion %d): without checksums the base station cannot tell an intact packet from a corrupt one to NACK", trace.PacketVersionCRC)
	}
	return nil
}

// LinkStats counts what the channel did to one mote's upload.
type LinkStats struct {
	Sent       int
	Dropped    int
	Corrupted  int
	Duplicated int
	Reordered  int
}

// Add accumulates another mote's (or another round's) channel accounting.
func (st *LinkStats) Add(o LinkStats) {
	st.Sent += o.Sent
	st.Dropped += o.Dropped
	st.Corrupted += o.Corrupted
	st.Duplicated += o.Duplicated
	st.Reordered += o.Reordered
}

// Transmit pushes a decoded packet stream through the channel: drops
// first, then duplication, then adjacent swaps among the survivors. The
// draws happen in a fixed order per packet so the outcome is a
// deterministic function of the RNG seed and the stream. Bit corruption is
// a property of the byte stream and is not modeled here — use
// TransmitFrames for the physical channel.
func (lc LinkConfig) Transmit(pkts []trace.Packet, rng *stats.RNG) ([]trace.Packet, LinkStats) {
	st := LinkStats{Sent: len(pkts)}
	out := make([]trace.Packet, 0, len(pkts))
	for _, p := range pkts {
		if rng.Bernoulli(lc.DropProb) {
			st.Dropped++
			continue
		}
		out = append(out, p)
		if rng.Bernoulli(lc.DupProb) {
			st.Duplicated++
			out = append(out, p)
		}
	}
	st.Reordered = reorderPass(out, lc.ReorderProb, rng)
	if len(out) == 0 {
		return nil, st
	}
	return out, st
}

// TransmitFrames pushes raw frames through the channel. Per frame: a drop
// draw, then (only when CorruptProb > 0) a corruption draw flipping one
// random bit, then a duplication draw — the duplicate gets its own
// corruption draw, since it is a separate radio transmission — and
// finally adjacent swaps among the survivors. With CorruptProb = 0 the
// draw sequence is identical to Transmit's, so the packet-level and
// byte-level views of the channel agree.
func (lc LinkConfig) TransmitFrames(frames [][]byte, rng *stats.RNG) ([][]byte, LinkStats) {
	st := LinkStats{Sent: len(frames)}
	out := make([][]byte, 0, len(frames))
	deliver := func(f []byte) {
		if lc.CorruptProb > 0 && rng.Bernoulli(lc.CorruptProb) {
			f = flipBit(f, rng)
			st.Corrupted++
		}
		out = append(out, f)
	}
	for _, f := range frames {
		if rng.Bernoulli(lc.DropProb) {
			st.Dropped++
			continue
		}
		deliver(f)
		if rng.Bernoulli(lc.DupProb) {
			st.Duplicated++
			deliver(f)
		}
	}
	st.Reordered = reorderPass(out, lc.ReorderProb, rng)
	if len(out) == 0 {
		return nil, st
	}
	return out, st
}

// reorderPass swaps each surviving packet with its successor on a
// Bernoulli draw. After a swap the cursor skips the swapped-in element so
// one draw displaces a packet by at most one slot — without the skip a
// single unlucky packet would cascade toward the end of the stream,
// violating the documented "swapped with its successor" semantics.
func reorderPass[T any](out []T, prob float64, rng *stats.RNG) int {
	swaps := 0
	for i := 0; i+1 < len(out); i++ {
		if rng.Bernoulli(prob) {
			out[i], out[i+1] = out[i+1], out[i]
			swaps++
			i++
		}
	}
	return swaps
}

// flipBit returns a copy of the frame with one uniformly-chosen bit
// flipped. The copy matters: duplicated frames share backing storage, and
// corruption must damage one transmission, not both.
func flipBit(frame []byte, rng *stats.RNG) []byte {
	if len(frame) == 0 {
		return frame
	}
	out := append([]byte(nil), frame...)
	bit := rng.Intn(len(out) * 8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}
