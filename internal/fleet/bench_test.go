package fleet

import (
	"testing"

	"codetomo/internal/mote"
)

// benchSim is the micro-benchmark deployment: the raw-ISA streaming
// workload on a modestly lossy channel, sized so one iteration simulates
// a full multi-cohort fleet.
func benchSim(workers, cohort int) SimConfig {
	cfg := SimConfig{
		Prog:      streamProg(),
		MaxCycles: 1_000_000,
		Workers:   workers,
		Cohort:    cohort,
		Link:      LinkConfig{Seed: 42, DropProb: 0.1},
	}
	cfg.Mote = mote.DefaultConfig()
	cfg.Mote.RAMWords = 64
	return cfg
}

// BenchmarkSimulateStream measures the streaming cohort pipeline's
// per-mote cost — time and, with -benchmem, allocated bytes per
// simulated mote (machine reuse should hold the latter to the retained
// MoteResult, not the simulation).
func BenchmarkSimulateStream(b *testing.B) {
	specs := fleetSpecs(512)
	cfg := benchSim(4, 64)
	pool := NewPool(cfg.Workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motes := 0
		_, err := SimulateStreamOn(pool, cfg, specs, func(first int, cohort []MoteResult) error {
			motes += len(cohort)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if motes != len(specs) {
			b.Fatalf("sank %d motes", motes)
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "motes/s")
}

// BenchmarkSimulateMaterialized is the pre-PR-9 path on the same fleet —
// the baseline the streaming numbers are read against.
func BenchmarkSimulateMaterialized(b *testing.B) {
	specs := fleetSpecs(512)
	cfg := benchSim(4, 0)
	pool := NewPool(cfg.Workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ups, err := SimulateReassembledOn(pool, cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
		if len(ups) != len(specs) {
			b.Fatalf("materialized %d motes", len(ups))
		}
	}
	b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "motes/s")
}
