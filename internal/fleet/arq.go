package fleet

import (
	"codetomo/internal/stats"
	"codetomo/internal/trace"
)

// ARQConfig tunes selective-repeat retransmission on the uplink: after
// each round the base station NACKs every sequence number it did not
// receive intact, and the mote resends those frames through the same
// channel. The protocol is deterministic — retry rounds draw from the
// same channel RNG stream, and backoff is accounted in ticks rather than
// waited in wall time.
type ARQConfig struct {
	// MaxRetries bounds the retransmission rounds per uplink; 0 disables
	// ARQ entirely.
	MaxRetries int
	// BackoffBaseTicks is the base of the exponential backoff between
	// rounds: round k charges BackoffBaseTicks << (k-1) ticks to the
	// ARQStats (default 64). This models the radio's contention window;
	// it never sleeps.
	BackoffBaseTicks uint64
}

// Enabled reports whether any retransmission rounds may run.
func (a ARQConfig) Enabled() bool { return a.MaxRetries > 0 }

// ARQStats is the recovery protocol's accounting for one mote's upload
// (or, summed, for a fleet).
type ARQStats struct {
	// Rounds counts retransmission rounds that actually ran; Nacked is
	// the total sequence numbers NACKed across them (a sequence NACKed in
	// two rounds counts twice); Retransmissions is the frames resent.
	Rounds, Nacked, Retransmissions int
	// Recovered counts sequences missing after the initial pass that an
	// ARQ round eventually delivered intact; Unrecovered is what was
	// still missing when retries ran out.
	Recovered, Unrecovered int
	// BackoffTicks is the total simulated backoff charged across rounds.
	BackoffTicks uint64
}

// Add accumulates another mote's recovery accounting.
func (a *ARQStats) Add(o ARQStats) {
	a.Rounds += o.Rounds
	a.Nacked += o.Nacked
	a.Retransmissions += o.Retransmissions
	a.Recovered += o.Recovered
	a.Unrecovered += o.Unrecovered
	a.BackoffTicks += o.BackoffTicks
}

// TransmitARQ pushes one mote's packetized upload through the channel
// with selective-repeat recovery. frames must be the mote's packet frames
// in sequence order (frame i carries sequence number i, as Packetize
// produces); delivered frames — including corrupt ones the base station
// will reject, and late duplicates — are returned in arrival order. With
// ARQ disabled this is exactly TransmitFrames.
func (lc LinkConfig) TransmitARQ(frames [][]byte, rng *stats.RNG) ([][]byte, LinkStats, ARQStats) {
	delivered, st := lc.TransmitFrames(frames, rng)
	var ast ARQStats
	if !lc.ARQ.Enabled() || len(frames) == 0 {
		return delivered, st, ast
	}

	// The base station's receive window: which sequences have arrived
	// intact (decodable, CRC passing) so far.
	intact := make([]bool, len(frames))
	mark := func(batch [][]byte) {
		for _, f := range batch {
			var p trace.Packet
			if p.UnmarshalBinary(f) == nil && int(p.Seq) < len(intact) {
				intact[p.Seq] = true
			}
		}
	}
	missing := func() []int {
		var m []int
		for s, ok := range intact {
			if !ok {
				m = append(m, s)
			}
		}
		return m
	}
	mark(delivered)
	m := missing()
	initialMissing := len(m)

	base := lc.ARQ.BackoffBaseTicks
	if base == 0 {
		base = 64
	}
	for round := 1; round <= lc.ARQ.MaxRetries && len(m) > 0; round++ {
		ast.Rounds++
		ast.Nacked += len(m)
		ast.BackoffTicks += base << uint(round-1)
		resend := make([][]byte, len(m))
		for i, s := range m {
			resend[i] = frames[s]
		}
		ast.Retransmissions += len(resend)
		// LinkStats.Sent ends up counting every transmission, resends
		// included — goodput is measured against radio airtime.
		d, rst := lc.TransmitFrames(resend, rng)
		st.Add(rst)
		delivered = append(delivered, d...)
		mark(d)
		m = missing()
	}
	ast.Recovered = initialMissing - len(m)
	ast.Unrecovered = len(m)
	return delivered, st, ast
}
