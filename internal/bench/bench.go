// Package bench is the evaluation harness: one runner per table/figure of
// the reconstructed evaluation (see DESIGN.md's per-experiment index). Each
// runner compiles the benchmark suite, drives the mote simulator under the
// configured workloads, runs the estimators, and returns a report.Table
// whose rows are the figure's series.
package bench

import (
	"fmt"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// Config holds the experiment-wide knobs.
type Config struct {
	// Seed drives all workload randomness.
	Seed int64
	// Samples is the number of handler invocations per profiling run.
	Samples int
	// TickDiv is the timer prescaler of the profiled mote.
	TickDiv int
	// Predictor is the static branch prediction policy under study.
	Predictor mote.Predictor
	// Enum bounds path enumeration.
	Enum markov.EnumerateOptions
	// MaxCycles bounds each simulated run.
	MaxCycles uint64
	// MaxFleet caps the largest deployment the fl3 scaling sweep runs;
	// CI smokes lower it so the sweep stays seconds, the committed numbers
	// use the default million.
	MaxFleet int
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config {
	return Config{
		Seed:      1234,
		Samples:   3000,
		TickDiv:   8,
		Predictor: mote.StaticNotTaken{},
		Enum:      markov.EnumerateOptions{MaxVisits: 12, MaxPaths: 30000},
		MaxCycles: 2_000_000_000,
		MaxFleet:  1_000_000,
	}
}

// Run is one compiled-and-executed benchmark instance.
type Run struct {
	App     apps.App
	Out     *compile.Output
	Machine *mote.Machine
}

// execute builds an app with the given options and runs it under its
// default workload for cfg.Samples handler invocations.
func (c Config) execute(app apps.App, opts compile.Options, seedOffset int64) (*Run, error) {
	return c.executeWorkload(app, opts, app.Workload, seedOffset, c.Samples)
}

func (c Config) executeWorkload(app apps.App, opts compile.Options, regime string, seedOffset int64, samples int) (*Run, error) {
	src, err := app.Source(samples)
	if err != nil {
		return nil, err
	}
	out, err := compile.Build(src, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: build %s: %w", app.Name, err)
	}
	rng := stats.NewRNG(c.Seed + seedOffset)
	sensor, ok := workload.Named(regime, rng)
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", regime)
	}
	mc := mote.DefaultConfig()
	mc.TickDiv = c.TickDiv
	mc.Predictor = c.Predictor
	mc.Sensor = sensor
	mc.Entropy = workload.NewEntropy(rng.Fork())
	// A build under a custom cost model (e.g. the PGO sweep's page-cross
	// penalty) must execute under the same model, or the measured cycles
	// would disagree with what the compiler optimized for.
	if opts.Cost != nil {
		mc.Cost = opts.Cost
	}
	m := mote.New(out.Code, mc)
	if err := m.Run(c.MaxCycles); err != nil {
		return nil, fmt.Errorf("bench: run %s: %w", app.Name, err)
	}
	return &Run{App: app, Out: out, Machine: m}, nil
}

// handlerSamples extracts the handler's exclusive durations in cycles from
// a ModeTimestamps run.
func (c Config) handlerSamples(r *Run) ([]float64, error) {
	ivs, err := trace.Extract(r.Machine.Trace())
	if err != nil {
		return nil, err
	}
	pm, ok := r.Out.Meta.ProcByName[r.App.Handler]
	if !ok {
		return nil, fmt.Errorf("bench: %s: handler %q missing", r.App.Name, r.App.Handler)
	}
	ticks := trace.ExclusiveByProc(ivs)[pm.Index]
	if len(ticks) == 0 {
		return nil, fmt.Errorf("bench: %s: no handler samples", r.App.Name)
	}
	return trace.DurationsCycles(ticks, c.TickDiv), nil
}

// model builds the tomography model for a run's handler.
func (c Config) model(r *Run) (*tomography.Model, error) {
	return tomography.NewModel(r.Out, r.App.Handler, c.Predictor, c.Enum)
}

// estimateResult holds one estimation outcome scored against ground truth.
type estimateResult struct {
	Model  *tomography.Model
	Est    markov.EdgeProbs
	Truth  markov.EdgeProbs
	Errors []float64 // per-branch-edge absolute error
	MAE    float64
	MaxErr float64
}

// estimate profiles an app via timestamps and runs the given estimator,
// scoring against the run's ground-truth branch statistics.
func (c Config) estimate(app apps.App, est tomography.Estimator, seedOffset int64, samples int) (*estimateResult, error) {
	r, err := c.executeWorkload(app, compile.Options{Instrument: compile.ModeTimestamps}, app.Workload, seedOffset, samples)
	if err != nil {
		return nil, err
	}
	return c.estimateRun(r, est)
}

func (c Config) estimateRun(r *Run, est tomography.Estimator) (*estimateResult, error) {
	durations, err := c.handlerSamples(r)
	if err != nil {
		return nil, err
	}
	model, err := c.model(r)
	if err != nil {
		return nil, err
	}
	probs, err := est.Estimate(model, durations)
	if err != nil {
		return nil, err
	}
	pm := r.Out.Meta.ProcByName[r.App.Handler]
	truth := profile.OracleProbs(pm, model.Proc, r.Machine.BranchStats())
	return score(model, probs, truth)
}

func score(model *tomography.Model, est, truth markov.EdgeProbs) (*estimateResult, error) {
	ev, tv := model.ProbVector(est), model.ProbVector(truth)
	res := &estimateResult{Model: model, Est: est, Truth: truth}
	for i := range ev {
		d := ev[i] - tv[i]
		if d < 0 {
			d = -d
		}
		res.Errors = append(res.Errors, d)
		res.MAE += d
		if d > res.MaxErr {
			res.MaxErr = d
		}
	}
	if len(ev) > 0 {
		res.MAE /= float64(len(ev))
	}
	return res, nil
}

// defaultEstimator returns the primary estimator tuned to the config's
// timer resolution.
func (c Config) defaultEstimator() tomography.Estimator {
	return tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: float64(c.TickDiv)}}
}
