package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/report"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// Experiment is a runnable table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*report.Table, error)
}

// Experiments lists every table and figure of the evaluation, in paper
// order (see DESIGN.md's per-experiment index).
func Experiments() []Experiment {
	return []Experiment{
		{"t1", "Table 1: benchmark characteristics", TableT1},
		{"f2", "Figure 2: branch-probability error CDF by estimator", FigF2},
		{"f3", "Figure 3: estimation error vs. number of samples", FigF3},
		{"f4", "Figure 4: branch misprediction rate by layout strategy", FigF4},
		{"f5", "Figure 5: execution cycles by layout strategy (normalized)", FigF5},
		{"t2", "Table 2: profiling overhead by strategy", TableT2},
		{"f6", "Figure 6: estimation error vs. timer resolution", FigF6},
		{"f7", "Figure 7: estimation error vs. input regime", FigF7},
		{"f8", "Figure 8: estimation accuracy vs the PC-sampling baseline", FigF8},
		{"t3", "Table 3: estimator ablation (accuracy and cost)", TableT3},
		{"a1", "Ablation 1: path-enumeration unroll bound", AblationUnroll},
		{"a2", "Ablation 2: static predictor policy", AblationPredictor},
		{"a3", "Ablation 3: compare fusion and loop rotation", AblationOptimizations},
		{"a4", "Ablation 4: dynamic prediction vs code placement", AblationDynamicPredictor},
		{"fl1", "Fleet 1: estimation error vs packet loss", FleetLossSweep},
		{"fl2", "Fleet 2: estimation error vs fleet size", FleetSizeSweep},
		{"ft1", "Fault 1: naive vs hardened uplink under faults", FaultRecoverySweep},
		{"ft2", "Fault 2: ARQ recovery cost vs corruption rate", ARQOverheadSweep},
		{"k1", "Kernel 1: estimation kernel microbenchmarks", KernelBench},
		{"s1", "Speed 1: interpreter core throughput (fused vs reference)", InterpreterBench},
		{"sa1", "Static 1: value-range pinning and dead-branch elimination", StaticAnalysisBench},
		{"st1", "Station 1: base-station ingest throughput vs shards and fleet size", StationIngestSweep},
		{"in1", "Intermittent 1: completion and estimation under harvested power", IntermittentSweep},
		{"fl3", "Fleet 3: simulation density and scaling (motes/sec/core)", FleetScaleSweep},
		{"pg1", "PGO 1: cycles by profile-guided pass vs placement-only", PGOSweep},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TableT1 reports the static characteristics of every benchmark.
func TableT1(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "T1: benchmark characteristics",
		Header: []string{"app", "loc", "procs", "blocks", "branches", "code B", "globals W", "handler", "paths"},
		Note:   "paths = handler execution paths within the enumeration bound",
	}
	for _, a := range apps.All() {
		src, err := a.Source(c.Samples)
		if err != nil {
			return nil, err
		}
		out, err := compile.Build(src, compile.Options{})
		if err != nil {
			return nil, err
		}
		loc := 0
		for _, line := range strings.Split(src, "\n") {
			if s := strings.TrimSpace(line); s != "" && !strings.HasPrefix(s, "//") {
				loc++
			}
		}
		blocks, branches := 0, 0
		for _, p := range out.CFG.Procs {
			blocks += len(p.Blocks)
			branches += len(p.BranchBlocks())
		}
		paths, _ := markov.Enumerate(out.CFG.Proc(a.Handler), c.Enum)
		t.AddRow(a.Name, report.I(loc), report.I(len(out.CFG.Procs)), report.I(blocks),
			report.I(branches), report.I(out.Meta.CodeBytes), report.I(out.Meta.GlobalWords),
			a.Handler, report.I(len(paths)))
	}
	return t, nil
}

// FigF2 reports the CDF of per-branch-edge estimation error for each
// estimator, aggregated over the whole suite.
func FigF2(c Config) (*report.Table, error) {
	grid := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50}
	ests := []tomography.Estimator{
		c.defaultEstimator(),
		tomography.Moments{},
		tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: float64(c.TickDiv)}},
	}
	t := &report.Table{
		Title:  "F2: per-edge |error| CDF by estimator (all apps)",
		Header: []string{"estimator", "edges"},
		Note:   fmt.Sprintf("%d samples per app, tick=%d cycles", c.Samples, c.TickDiv),
	}
	for _, g := range grid {
		t.Header = append(t.Header, fmt.Sprintf("<=%.2f", g))
	}
	for _, est := range ests {
		var errs []float64
		for i, a := range apps.All() {
			res, err := c.estimate(a, est, int64(i), c.Samples)
			if err != nil {
				// Estimator not applicable to this app (e.g. the
				// histogram method on path-explosive kernels); skip
				// rather than failing the whole figure. The edge-count
				// column reveals reduced coverage.
				continue
			}
			errs = append(errs, res.Errors...)
		}
		if len(errs) == 0 {
			t.AddRow(est.Name(), "0")
			continue
		}
		row := []string{est.Name(), report.I(len(errs))}
		for _, g := range grid {
			n := 0
			for _, e := range errs {
				if e <= g {
					n++
				}
			}
			row = append(row, report.Pct(float64(n)/float64(len(errs))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FigF3 reports MAE vs. sample count (estimator convergence).
func FigF3(c Config) (*report.Table, error) {
	counts := []int{30, 100, 300, 1000, 3000, 10000}
	names := []string{"sense", "eventdetect", "fir"}
	t := &report.Table{
		Title:  "F3: EM estimation MAE vs. number of timing samples",
		Header: append([]string{"samples"}, names...),
		Note:   "expected shape: error falls roughly as 1/sqrt(samples)",
	}
	est := c.defaultEstimator()
	for _, n := range counts {
		row := []string{report.I(n)}
		for j, name := range names {
			a, _ := apps.ByName(name)
			res, err := c.estimate(a, est, int64(100+j), n)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(res.MAE, 4))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Strategy names for the placement experiments, in reporting order.
var strategies = []string{"original", "random", "static", "ctomo", "oracle"}

// placementResult carries one (app, strategy) measured run.
type placementResult struct {
	mispredicts, condBranches, cycles uint64
}

// runPlacement executes the full pipeline for one app: profile under the
// default layout, derive layouts per strategy, rebuild uninstrumented
// binaries, and re-run each under the identical workload.
func (c Config) runPlacement(a apps.App, seedOffset int64) (map[string]placementResult, error) {
	// 1. Profiling run (timestamps, natural layout).
	prof, err := c.execute(a, compile.Options{Instrument: compile.ModeTimestamps}, seedOffset)
	if err != nil {
		return nil, err
	}

	// 2. Per-procedure probabilities under each information source.
	ctProbs, err := c.estimateAllProcs(prof)
	if err != nil {
		return nil, err
	}
	oracleProbs := make(map[string]markov.EdgeProbs)
	staticProbs := make(map[string]markov.EdgeProbs)
	for _, p := range prof.Out.CFG.Procs {
		oracleProbs[p.Name] = profile.OracleProbs(prof.Out.Meta.ProcByName[p.Name], p, prof.Machine.BranchStats())
		staticProbs[p.Name] = profile.BallLarusProbs(p)
	}

	plansBy := map[string]layout.Plan{
		"original": {},
		"random":   {Layouts: layout.RandomAll(prof.Out.CFG, c.Seed+seedOffset)},
		"static":   layout.PlanAll(prof.Out.CFG, staticProbs),
		"ctomo":    layout.PlanAll(prof.Out.CFG, ctProbs),
		"oracle":   layout.PlanAll(prof.Out.CFG, oracleProbs),
	}

	// 3. Measurement runs: plain binaries, identical workload.
	out := make(map[string]placementResult, len(plansBy))
	for name, plan := range plansBy {
		r, err := c.execute(a, compile.Options{Layouts: plan.Layouts, BranchHints: plan.Hints}, seedOffset)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", a.Name, name, err)
		}
		s := r.Machine.Stats()
		out[name] = placementResult{
			mispredicts:  s.Mispredicts,
			condBranches: s.CondBranches,
			cycles:       s.Cycles,
		}
	}
	return out, nil
}

// estimateAllProcs runs Code Tomography on every procedure whose duration
// samples its path model can explain, and omits the rest — procedures with
// too few observations (e.g. main) or with loops beyond the unrolling
// bound keep their original layout, exactly what a deployment would do.
func (c Config) estimateAllProcs(prof *Run) (map[string]markov.EdgeProbs, error) {
	ivs, err := trace.Extract(prof.Machine.Trace())
	if err != nil {
		return nil, err
	}
	byProc := trace.ExclusiveByProc(ivs)
	est := c.defaultEstimator()
	out := make(map[string]markov.EdgeProbs)
	for _, p := range prof.Out.CFG.Procs {
		pm := prof.Out.Meta.ProcByName[p.Name]
		ticks := byProc[pm.Index]
		if len(p.BranchBlocks()) == 0 || len(ticks) < 50 {
			continue
		}
		model, err := tomography.NewModel(prof.Out, p.Name, c.Predictor, c.Enum)
		if err != nil {
			continue
		}
		samples := trace.DurationsCycles(ticks, c.TickDiv)
		// Untrustworthy path models (coverage below 85%) are omitted
		// rather than feeding garbage to the optimizer.
		if model.Coverage(samples, float64(c.TickDiv)) < 0.85 {
			continue
		}
		probs, err := est.Estimate(model, samples)
		if err != nil {
			continue
		}
		out[p.Name] = probs
	}
	return out, nil
}

// FigF4 reports the misprediction rate per app and layout strategy.
func FigF4(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "F4: branch misprediction rate by layout strategy",
		Header: append([]string{"app"}, strategies...),
		Note:   "rate = mispredicted / executed conditional branches; lower is better",
	}
	for i, a := range apps.All() {
		res, err := c.runPlacement(a, int64(200+i))
		if err != nil {
			return nil, err
		}
		row := []string{a.Name}
		for _, s := range strategies {
			r := res[s]
			rate := 0.0
			if r.condBranches > 0 {
				rate = float64(r.mispredicts) / float64(r.condBranches)
			}
			row = append(row, report.Pct(rate))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FigF5 reports execution cycles normalized to the original layout.
func FigF5(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "F5: execution cycles by layout strategy, normalized to original",
		Header: append([]string{"app"}, strategies...),
		Note:   "lower is better; 1.0000 = original layout",
	}
	for i, a := range apps.All() {
		res, err := c.runPlacement(a, int64(300+i))
		if err != nil {
			return nil, err
		}
		base := float64(res["original"].cycles)
		row := []string{a.Name}
		for _, s := range strategies {
			row = append(row, report.F(float64(res[s].cycles)/base, 4))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// TableT2 reports the profiling overhead of Code Tomography's timestamps
// versus full edge-counter instrumentation.
func TableT2(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "T2: profiling overhead by strategy",
		Header: []string{"app", "strategy", "code +B", "RAM B", "cycles +%", "energy +uJ"},
		Note:   "relative to the uninstrumented build on the identical workload",
	}
	energy := mote.DefaultEnergyModel()
	for i, a := range apps.All() {
		base, err := c.execute(a, compile.Options{}, int64(400+i))
		if err != nil {
			return nil, err
		}
		for _, mode := range []compile.Mode{compile.ModeTimestamps, compile.ModeEdgeCounters} {
			inst, err := c.execute(a, compile.Options{Instrument: mode}, int64(400+i))
			if err != nil {
				return nil, err
			}
			o := profile.MeasureOverhead(mode.String(), base.Out.Meta, inst.Out.Meta,
				base.Machine.Stats(), inst.Machine.Stats(), energy)
			t.AddRow(a.Name, o.Strategy, report.I(o.CodeBytes), report.I(o.RAMBytes),
				report.F(o.ExtraCyclesPct, 2), report.F(o.ExtraEnergyUJ, 2))
		}
	}
	return t, nil
}

// FigF6 reports estimation error as the hardware timer gets coarser.
func FigF6(c Config) (*report.Table, error) {
	ticks := []int{1, 2, 4, 8, 16, 32, 64}
	names := []string{"sense", "fir"}
	t := &report.Table{
		Title:  "F6: EM estimation MAE vs. timer resolution (cycles per tick)",
		Header: append([]string{"tick"}, names...),
		Note:   "error grows once the tick exceeds inter-path time differences",
	}
	for _, tick := range ticks {
		cc := c
		cc.TickDiv = tick
		row := []string{report.I(tick)}
		for j, name := range names {
			a, _ := apps.ByName(name)
			res, err := cc.estimate(a, cc.defaultEstimator(), int64(500+j), c.Samples)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(res.MAE, 4))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FigF7 reports estimation error across input regimes (the
// nondeterministic-input robustness sweep).
func FigF7(c Config) (*report.Table, error) {
	a, _ := apps.ByName("eventdetect")
	t := &report.Table{
		Title:  "F7: EM estimation MAE by input regime (eventdetect)",
		Header: []string{"regime", "mae", "maxerr"},
	}
	regimes := []string{"gaussian", "uniform", "bursty", "regime", "diurnal"}
	for j, regime := range regimes {
		r, err := c.executeWorkload(a, compile.Options{Instrument: compile.ModeTimestamps}, regime, int64(600+j), c.Samples)
		if err != nil {
			return nil, err
		}
		res, err := c.estimateRun(r, c.defaultEstimator())
		if err != nil {
			return nil, err
		}
		t.AddRow(regime, report.F(res.MAE, 4), report.F(res.MaxErr, 4))
	}
	return t, nil
}

// FigF8 compares Code Tomography's accuracy against the classical cheap
// alternative on motes — timer-interrupt PC sampling — and the free one,
// static heuristics. Sampling observes block residency, not edges, so its
// branch probabilities are smeared by shared successors; this figure
// quantifies that gap.
func FigF8(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "F8: branch-probability MAE — tomography vs PC sampling vs static",
		Header: []string{"app", "ctomo", "sampling", "ballarus"},
		Note:   "sampling period 199 cycles; all scored against the same run's oracle",
	}
	for i, a := range apps.All() {
		// Tomography accuracy from a timestamps run.
		ct, err := c.estimate(a, c.defaultEstimator(), int64(1200+i), c.Samples)
		ctCell := "n/a"
		if err == nil {
			ctCell = report.F(ct.MAE, 4)
		}

		// Sampling run: plain binary stepped with a host-side sampler.
		src, err := a.Source(c.Samples)
		if err != nil {
			return nil, err
		}
		out, err := compile.Build(src, compile.Options{})
		if err != nil {
			return nil, err
		}
		rng := stats.NewRNG(c.Seed + int64(1200+i))
		sensor, _ := workload.Named(a.Workload, rng)
		mc := mote.DefaultConfig()
		mc.TickDiv = c.TickDiv
		mc.Predictor = c.Predictor
		mc.Sensor = sensor
		mc.Entropy = workload.NewEntropy(rng.Fork())
		m := mote.New(out.Code, mc)
		samples, err := profile.SampleRun(m, out.Meta, 199, c.MaxCycles)
		if err != nil {
			return nil, err
		}
		proc := out.CFG.Proc(a.Handler)
		pm := out.Meta.ProcByName[a.Handler]
		oracle := profile.OracleProbs(pm, proc, m.BranchStats())
		sampProbs := profile.SamplingProbs(proc, samples[a.Handler])
		blProbs := profile.BallLarusProbs(proc)

		mae := func(est markov.EdgeProbs) string {
			var sum float64
			var n int
			for _, bb := range proc.BranchBlocks() {
				for _, s := range proc.Block(bb).Succs() {
					k := [2]ir.BlockID{bb, s}
					d := est[k] - oracle[k]
					if d < 0 {
						d = -d
					}
					sum += d
					n++
				}
			}
			if n == 0 {
				return "n/a"
			}
			return report.F(sum/float64(n), 4)
		}
		t.AddRow(a.Name, ctCell, mae(sampProbs), mae(blProbs))
	}
	return t, nil
}

// TableT3 is the estimator ablation: accuracy and host-side cost.
func TableT3(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "T3: estimator ablation",
		Header: []string{"app", "em mae", "moments mae", "hist mae", "em ms", "moments ms", "hist ms"},
		Note:   "same samples per app; MAE vs. oracle; host estimation time",
	}
	ests := []tomography.Estimator{
		c.defaultEstimator(),
		tomography.Moments{},
		tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: float64(c.TickDiv)}},
	}
	for i, a := range apps.All() {
		r, err := c.execute(a, compile.Options{Instrument: compile.ModeTimestamps}, int64(700+i))
		if err != nil {
			return nil, err
		}
		maes := make([]string, len(ests))
		times := make([]string, len(ests))
		for k, est := range ests {
			start := time.Now()
			res, err := c.estimateRun(r, est)
			elapsed := time.Since(start)
			if err != nil {
				maes[k], times[k] = "n/a", "n/a"
				continue
			}
			maes[k] = report.F(res.MAE, 4)
			times[k] = report.F(float64(elapsed.Microseconds())/1000, 1)
		}
		t.AddRow(a.Name, maes[0], maes[1], maes[2], times[0], times[1], times[2])
	}
	return t, nil
}

// AblationUnroll sweeps the path-enumeration visit bound.
func AblationUnroll(c Config) (*report.Table, error) {
	bounds := []int{2, 3, 4, 6, 10}
	names := []string{"crc", "aggregate"}
	t := &report.Table{
		Title:  "A1: EM MAE vs. loop-unroll bound (max visits per block)",
		Header: append([]string{"maxvisits"}, names...),
		Note:   "loop-heavy handlers need the bound to cover realized iteration counts",
	}
	for _, b := range bounds {
		cc := c
		cc.Enum.MaxVisits = b
		row := []string{report.I(b)}
		for j, name := range names {
			a, _ := apps.ByName(name)
			res, err := cc.estimate(a, cc.defaultEstimator(), int64(800+j), c.Samples)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, report.F(res.MAE, 4))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPredictor compares placement gains under the two static
// predictor policies.
func AblationPredictor(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "A2: misprediction rate, original vs ctomo layout, by predictor",
		Header: []string{"app", "predictor", "original", "ctomo", "oracle"},
	}
	names := []string{"sense", "eventdetect", "quantize"}
	preds := []mote.Predictor{mote.StaticNotTaken{}, mote.BTFN{}}
	for i, name := range names {
		a, _ := apps.ByName(name)
		for _, p := range preds {
			cc := c
			cc.Predictor = p
			res, err := cc.runPlacement(a, int64(900+i))
			if err != nil {
				return nil, err
			}
			rate := func(s string) string {
				r := res[s]
				if r.condBranches == 0 {
					return "n/a"
				}
				return report.Pct(float64(r.mispredicts) / float64(r.condBranches))
			}
			t.AddRow(a.Name, p.Name(), rate("original"), rate("ctomo"), rate("oracle"))
		}
	}
	return t, nil
}

// AblationOptimizations measures the backend's optional passes — the
// compare-branch peephole and loop rotation — on cycles and mispredicts,
// normalized to the plain build (original layout, predict-not-taken).
func AblationOptimizations(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "A3: cycles (and mispredict rate) by backend optimization",
		Header: []string{"app", "plain cyc", "fuse cyc", "rotate cyc", "both cyc", "mp nt", "mp nt+opt", "mp btfn+opt"},
		Note: "cycles normalized to plain build, original layout. Rotation turns latches into " +
			"backward-taken branches: poison for predict-not-taken, food for BTFN",
	}
	variants := []compile.Options{
		{},
		{FuseCompares: true},
		{RotateLoops: true},
		{FuseCompares: true, RotateLoops: true},
	}
	for i, a := range apps.All() {
		var cycles []uint64
		var rates []float64
		for _, opts := range variants {
			r, err := c.execute(a, opts, int64(1000+i))
			if err != nil {
				return nil, err
			}
			s := r.Machine.Stats()
			cycles = append(cycles, s.Cycles)
			rate := 0.0
			if s.CondBranches > 0 {
				rate = float64(s.Mispredicts) / float64(s.CondBranches)
			}
			rates = append(rates, rate)
		}
		// The fully optimized build once more, under BTFN.
		cb := c
		cb.Predictor = mote.BTFN{}
		rb, err := cb.execute(a, compile.Options{FuseCompares: true, RotateLoops: true}, int64(1000+i))
		if err != nil {
			return nil, err
		}
		sb := rb.Machine.Stats()
		btfnRate := 0.0
		if sb.CondBranches > 0 {
			btfnRate = float64(sb.Mispredicts) / float64(sb.CondBranches)
		}
		base := float64(cycles[0])
		t.AddRow(a.Name,
			"1.0000",
			report.F(float64(cycles[1])/base, 4),
			report.F(float64(cycles[2])/base, 4),
			report.F(float64(cycles[3])/base, 4),
			report.Pct(rates[0]),
			report.Pct(rates[3]),
			report.Pct(btfnRate),
		)
	}
	return t, nil
}

// AblationDynamicPredictor contrasts what placement buys under static
// prediction against a hardware 2-bit bimodal predictor. Motes don't have
// the latter — the point of the experiment is to show that placement
// recovers, through the compiler, most of what the missing hardware would
// provide.
func AblationDynamicPredictor(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "A4: misprediction rate — static prediction + placement vs dynamic hardware",
		Header: []string{"app", "nt orig", "nt ctomo", "bimodal orig", "bimodal ctomo"},
		Note:   "bimodal = 64-entry 2-bit dynamic predictor (not available on motes); profiles taken under nt",
	}
	for i, a := range apps.All() {
		// Profile and plan under the static policy, as a mote would.
		prof, err := c.execute(a, compile.Options{Instrument: compile.ModeTimestamps}, int64(1100+i))
		if err != nil {
			return nil, err
		}
		ctProbs, err := c.estimateAllProcs(prof)
		if err != nil {
			return nil, err
		}
		plan := layout.PlanAll(prof.Out.CFG, ctProbs)

		rate := func(pred mote.Predictor, opts compile.Options) (string, error) {
			cc := c
			cc.Predictor = pred
			r, err := cc.execute(a, opts, int64(1100+i))
			if err != nil {
				return "", err
			}
			s := r.Machine.Stats()
			if s.CondBranches == 0 {
				return "n/a", nil
			}
			return report.Pct(float64(s.Mispredicts) / float64(s.CondBranches)), nil
		}
		ctOpts := compile.Options{Layouts: plan.Layouts, BranchHints: plan.Hints}
		row := []string{a.Name}
		for _, cfg := range []struct {
			fresh func() mote.Predictor
			opts  compile.Options
		}{
			{func() mote.Predictor { return mote.StaticNotTaken{} }, compile.Options{}},
			{func() mote.Predictor { return mote.StaticNotTaken{} }, ctOpts},
			{func() mote.Predictor { return mote.NewBimodal(6) }, compile.Options{}},
			{func() mote.Predictor { return mote.NewBimodal(6) }, ctOpts},
		} {
			cell, err := rate(cfg.fresh(), cfg.opts)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SortedIDs lists experiment ids in run order.
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
