package bench

import (
	"fmt"

	codetomo "codetomo"
	"codetomo/internal/apps"
	"codetomo/internal/fault"
	"codetomo/internal/report"
	"codetomo/internal/trace"
)

// faultMaxCycles bounds each mote's run in the fault experiments: a mote
// that keeps crashing mid-program re-runs from the reset vector, so a
// pathological fault level could otherwise crash-loop for the full default
// budget. The pipeline salvages whatever the trace buffer holds when the
// budget runs out.
const faultMaxCycles = 64_000_000

// runFaultFleet drives the fleet pipeline with a caller-mutated config and
// returns the handler's estimate alongside the whole result.
func (c Config) runFaultFleet(app apps.App, motes, perMote int, mut func(*codetomo.FleetConfig)) (*codetomo.FleetResult, *codetomo.ProcEstimate, error) {
	src, err := app.Source(perMote)
	if err != nil {
		return nil, nil, err
	}
	cfg := codetomo.FleetConfig{
		Config: codetomo.Config{
			Workload:  app.Workload,
			Seed:      c.Seed,
			TickDiv:   c.TickDiv,
			Predictor: c.Predictor,
			MaxCycles: faultMaxCycles,
		},
		Motes: motes,
	}
	mut(&cfg)
	res, err := codetomo.RunFleet(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	for i := range res.Estimates {
		if res.Estimates[i].Proc == app.Handler {
			return res, &res.Estimates[i], nil
		}
	}
	return nil, nil, fmt.Errorf("bench: %s: handler %q not estimated", app.Name, app.Handler)
}

// faultLevel is one row of the FT1 fault-environment ladder.
type faultLevel struct {
	name      string
	crashMTBF uint64  // mean cycles between watchdog resets (0 = none)
	corrupt   float64 // per-transmission bit-flip probability
}

// FaultRecoverySweep (FT1) contrasts the naive uplink path — legacy
// CRC-less frames, no retransmission, plain EM — against the hardened one
// — CRC-16 frames, selective-repeat ARQ, outlier-robust estimation with
// confidence-gated placement — as the fault environment worsens. The
// hardened path should hold estimation error near the fault-free baseline
// and never ship a placement slower than the unoptimized binary; the naive
// path is at the channel's mercy.
func FaultRecoverySweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const motes = 4
	perMote := c.Samples / motes
	levels := []faultLevel{
		{"none", 0, 0},
		{"low", 1_000_000, 0.02},
		{"medium", 400_000, 0.10},
		{"high", 150_000, 0.25},
	}
	t := &report.Table{
		Title:  "FT1: fault tolerance — naive uplink vs CRC+ARQ+robust estimation",
		Header: []string{"faults", "resets", "naive MAE", "hard MAE", "hard speedup", "lowconf", "trimmed"},
		Note: fmt.Sprintf("%s, %d motes, %d invocations each; naive = v1 frames, no ARQ, plain EM; "+
			"hard = CRC-16, ARQ(3), robust EM with fallback placement", app.Name, motes, perMote),
	}
	common := func(cfg *codetomo.FleetConfig, lv faultLevel) {
		cfg.CorruptProb = lv.corrupt
		if lv.crashMTBF > 0 {
			cfg.Faults = fault.Config{CrashMTBFCycles: lv.crashMTBF, BrownoutProb: 0.2}
		}
	}
	for _, lv := range levels {
		_, naivePE, err := c.runFaultFleet(app, motes, perMote, func(cfg *codetomo.FleetConfig) {
			common(cfg, lv)
			cfg.PacketVersion = trace.PacketVersionLegacy
		})
		if err != nil {
			return nil, err
		}
		hardRes, hardPE, err := c.runFaultFleet(app, motes, perMote, func(cfg *codetomo.FleetConfig) {
			common(cfg, lv)
			cfg.PacketVersion = trace.PacketVersionCRC
			cfg.ARQRetries = 3
			cfg.Robust = true
		})
		if err != nil {
			return nil, err
		}
		mae := func(pe *codetomo.ProcEstimate) string {
			if pe.Fallback {
				return "fallback"
			}
			s := fmt.Sprintf("%.4f", pe.MAE)
			if pe.LowConfidence {
				s += "*"
			}
			return s
		}
		t.AddRow(lv.name, report.I(int(hardRes.Fleet.Resets)),
			mae(naivePE), mae(hardPE),
			fmt.Sprintf("%.3fx", hardRes.Speedup()),
			report.I(hardRes.Fleet.LowConfidenceProcs),
			report.I(hardRes.Fleet.TrimmedSamples))
	}
	return t, nil
}

// ARQOverheadSweep (FT2) prices the recovery protocol: as the corruption
// rate climbs, CRC rejection discards more frames and ARQ buys them back
// with retransmissions. The table reports what that costs (resends,
// backoff) and what it preserves (goodput, estimation error).
func ARQOverheadSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const motes = 4
	perMote := c.Samples / motes
	rates := []float64{0, 0.05, 0.10, 0.20, 0.40}
	t := &report.Table{
		Title:  "FT2: ARQ recovery cost vs corruption rate (CRC-16 frames, 3 retries)",
		Header: []string{"corrupt", "rejected", "resent", "recovered", "unrecov", "goodput", "handler MAE"},
		Note: fmt.Sprintf("%s, %d motes, %d invocations each; goodput = distinct packets delivered / frames sent",
			app.Name, motes, perMote),
	}
	for _, rate := range rates {
		res, pe, err := c.runFaultFleet(app, motes, perMote, func(cfg *codetomo.FleetConfig) {
			cfg.CorruptProb = rate
			cfg.ARQRetries = 3
			cfg.Robust = true
		})
		if err != nil {
			return nil, err
		}
		st := res.Fleet
		goodput := 0.0
		if st.Link.Sent > 0 {
			goodput = float64(st.Uplink.PacketsDelivered) / float64(st.Link.Sent)
		}
		maeCell := fmt.Sprintf("%.4f", pe.MAE)
		if pe.Fallback {
			maeCell = "fallback"
		} else if pe.LowConfidence {
			maeCell += "*"
		}
		t.AddRow(report.Pct(rate), report.I(st.Uplink.PacketsCorrupted),
			report.I(st.ARQ.Retransmissions), report.I(st.ARQ.Recovered),
			report.I(st.ARQ.Unrecovered), report.Pct(goodput), maeCell)
	}
	return t, nil
}
