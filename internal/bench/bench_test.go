package bench

import (
	"strconv"
	"strings"
	"testing"

	"codetomo/internal/apps"
)

// fastConfig keeps the experiment tests quick; ctbench uses DefaultConfig.
func fastConfig() Config {
	c := DefaultConfig()
	c.Samples = 400
	return c
}

func pctCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not a percentage", s)
	}
	return v
}

func floatCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float", s)
	}
	return v
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 25 {
		t.Fatalf("experiments = %d, want 25", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("f4"); !ok {
		t.Fatal("ByID(f4) missing")
	}
	if _, ok := ByID("zz"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	if len(SortedIDs()) != len(exps) {
		t.Fatal("SortedIDs incomplete")
	}
}

func TestTableT1(t *testing.T) {
	tab, err := TableT1(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("T1 rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if paths := floatCell(t, row[8]); paths < 1 {
			t.Fatalf("%s: no handler paths", row[0])
		}
	}
}

func TestFigF4QualitativeShape(t *testing.T) {
	c := fastConfig()
	tab, err := FigF4(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("F4 rows = %d", len(tab.Rows))
	}
	// Aggregate check (the paper's headline): ctomo beats original and
	// random on average, and lands near oracle.
	var sumOrig, sumRand, sumCT, sumOracle float64
	for _, row := range tab.Rows {
		sumOrig += pctCell(t, row[1])
		sumRand += pctCell(t, row[2])
		sumCT += pctCell(t, row[4])
		sumOracle += pctCell(t, row[5])
	}
	if !(sumCT < sumOrig) {
		t.Fatalf("ctomo (%v) not better than original (%v) in aggregate\n%s", sumCT, sumOrig, tab.Render())
	}
	if !(sumCT < sumRand) {
		t.Fatalf("ctomo (%v) not better than random (%v)\n%s", sumCT, sumRand, tab.Render())
	}
	if !(sumOracle <= sumCT+1e-9) {
		t.Fatalf("oracle (%v) worse than ctomo (%v)?\n%s", sumOracle, sumCT, tab.Render())
	}
}

func TestTableT2QualitativeShape(t *testing.T) {
	c := fastConfig()
	tab, err := TableT2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 { // 8 apps × 2 strategies
		t.Fatalf("T2 rows = %d", len(tab.Rows))
	}
	// Per app: timestamps row precedes edge-counters row; tomography's
	// runtime overhead must be lower for branch-heavy apps in aggregate.
	var tsCycles, ecCycles float64
	for i := 0; i < len(tab.Rows); i += 2 {
		ts, ec := tab.Rows[i], tab.Rows[i+1]
		if ts[1] != "timestamps" || ec[1] != "edge-counters" {
			t.Fatalf("row order wrong: %v / %v", ts, ec)
		}
		tsCycles += floatCell(t, ts[4])
		ecCycles += floatCell(t, ec[4])
	}
	if !(tsCycles < ecCycles) {
		t.Fatalf("timestamps runtime overhead (%v) not below edge counters (%v)\n%s",
			tsCycles, ecCycles, tab.Render())
	}
}

func TestFigF3Shape(t *testing.T) {
	c := fastConfig()
	tab, err := FigF3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("F3 rows = %d", len(tab.Rows))
	}
	// Error at 10000 samples must be below error at 30 samples for every
	// app column.
	for col := 1; col <= 3; col++ {
		lo := floatCell(t, tab.Rows[0][col])
		hi := floatCell(t, tab.Rows[len(tab.Rows)-1][col])
		if !(hi <= lo) {
			t.Fatalf("column %d error grew with samples: %v -> %v\n%s", col, lo, hi, tab.Render())
		}
	}
}

func TestFigF7AllRegimes(t *testing.T) {
	tab, err := FigF7(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("F7 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if mae := floatCell(t, row[1]); mae > 0.30 {
			t.Fatalf("regime %s MAE = %v, implausibly high", row[0], mae)
		}
	}
}

func TestFleetSweepShapes(t *testing.T) {
	c := fastConfig()
	c.Samples = 1600 // 400 per mote at the 4-mote baseline

	fl1, err := FleetLossSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl1.Rows) != 5 {
		t.Fatalf("FL1 rows = %d\n%s", len(fl1.Rows), fl1.Render())
	}
	lossless := floatCell(t, fl1.Rows[0][3])
	at20 := floatCell(t, fl1.Rows[3][3])
	bound := 2 * lossless
	if bound < 0.02 {
		bound = 0.02
	}
	if at20 > bound {
		t.Fatalf("FL1: MAE at 20%% loss %v exceeds bound %v\n%s", at20, bound, fl1.Render())
	}
	// Loss removes samples; it must never add them.
	for i := 1; i < len(fl1.Rows); i++ {
		if floatCell(t, fl1.Rows[i][1]) > floatCell(t, fl1.Rows[0][1]) {
			t.Fatalf("FL1: samples grew under loss\n%s", fl1.Render())
		}
	}

	fl2, err := FleetSizeSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl2.Rows) != 4 {
		t.Fatalf("FL2 rows = %d\n%s", len(fl2.Rows), fl2.Render())
	}
	// Fixed per-mote budget: merged sample count must grow with fleet
	// size, and the biggest fleet must estimate at least as well as the
	// single mote (modulo a small noise allowance).
	if floatCell(t, fl2.Rows[3][1]) <= floatCell(t, fl2.Rows[0][1]) {
		t.Fatalf("FL2: samples did not grow with fleet size\n%s", fl2.Render())
	}
	solo, octet := floatCell(t, fl2.Rows[0][2]), floatCell(t, fl2.Rows[3][2])
	if octet > solo+0.01 {
		t.Fatalf("FL2: MAE worsened with fleet size: %v -> %v\n%s", solo, octet, fl2.Render())
	}
}

// maeCell parses a MAE cell that may carry a low-confidence marker; a
// "fallback" cell fails the test, since these sweeps must keep estimating.
func maeCell(t *testing.T, s string) float64 {
	t.Helper()
	if s == "fallback" {
		t.Fatalf("handler fell back to baseline")
	}
	return floatCell(t, strings.TrimSuffix(s, "*"))
}

// The acceptance bar for the fault experiments: the hardened path degrades
// gracefully — MAE within 2× the fault-free figure at every fault level —
// while the naive path demonstrably does not, and the recovery protocol's
// cost shows up where it should.
func TestFaultSweepShapes(t *testing.T) {
	c := fastConfig()
	c.Samples = 1600 // 400 per mote at the 4-mote baseline

	ft1, err := FaultRecoverySweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft1.Rows) != 4 {
		t.Fatalf("FT1 rows = %d\n%s", len(ft1.Rows), ft1.Render())
	}
	hardBase := maeCell(t, ft1.Rows[0][3])
	bound := 2 * hardBase
	if bound < 0.03 {
		bound = 0.03
	}
	for _, row := range ft1.Rows {
		if hard := maeCell(t, row[3]); hard > bound {
			t.Fatalf("FT1 %s: hardened MAE %v exceeds bound %v\n%s", row[0], hard, bound, ft1.Render())
		}
	}
	// The naive path must visibly suffer at the highest fault level, or
	// the comparison demonstrates nothing.
	naiveClean := maeCell(t, ft1.Rows[0][2])
	naiveHigh := maeCell(t, ft1.Rows[3][2])
	hardHigh := maeCell(t, ft1.Rows[3][3])
	if !(naiveHigh > 2*naiveClean) || !(naiveHigh > hardHigh) {
		t.Fatalf("FT1: naive path did not degrade (clean %v, high %v, hard %v)\n%s",
			naiveClean, naiveHigh, hardHigh, ft1.Render())
	}
	// The high fault level must actually crash motes.
	if floatCell(t, ft1.Rows[3][1]) == 0 {
		t.Fatalf("FT1: no resets at the high fault level\n%s", ft1.Render())
	}

	ft2, err := ARQOverheadSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft2.Rows) != 5 {
		t.Fatalf("FT2 rows = %d\n%s", len(ft2.Rows), ft2.Render())
	}
	// No corruption, no protocol: the zero row must be all-quiet.
	if floatCell(t, ft2.Rows[0][1]) != 0 || floatCell(t, ft2.Rows[0][2]) != 0 {
		t.Fatalf("FT2: protocol active on a clean channel\n%s", ft2.Render())
	}
	// Rising corruption costs retransmissions and goodput, monotonically
	// from the clean row to the worst one.
	if !(floatCell(t, ft2.Rows[4][2]) > floatCell(t, ft2.Rows[1][2])) {
		t.Fatalf("FT2: retransmissions did not grow with corruption\n%s", ft2.Render())
	}
	if !(pctCell(t, ft2.Rows[4][5]) < pctCell(t, ft2.Rows[0][5])) {
		t.Fatalf("FT2: goodput did not fall with corruption\n%s", ft2.Render())
	}
	// What ARQ buys: even the worst corruption rate stays near the clean
	// estimation error.
	cleanMAE := maeCell(t, ft2.Rows[0][6])
	worstMAE := maeCell(t, ft2.Rows[4][6])
	wbound := 2 * cleanMAE
	if wbound < 0.03 {
		wbound = 0.03
	}
	if worstMAE > wbound {
		t.Fatalf("FT2: MAE at 40%% corruption %v exceeds bound %v\n%s", worstMAE, wbound, ft2.Render())
	}
}

// TestInterpreterBench checks shape and the acceptance floor for s1: every
// workload runs at least a million instructions, and InterpreterBench
// itself errors if the fused and reference cores' Stats diverge. Timing
// ratios are deliberately not asserted — wall-clock is too noisy under
// instrumented builds.
func TestInterpreterBench(t *testing.T) {
	tab, err := InterpreterBench(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("S1 rows = %d, want 4\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if mi := floatCell(t, row[2]); mi < 1.0 {
			t.Fatalf("S1 %s/%s executed only %v Minstr, want >= 1\n%s", row[0], row[1], mi, tab.Render())
		}
		if !strings.HasSuffix(row[6], "x") {
			t.Fatalf("S1 speedup cell %q not a ratio", row[6])
		}
	}
}

// TestStaticAnalysisBench checks the sa1 acceptance shape: pinning shrinks
// the estimator's free-parameter set on the rail cases at equal-or-better
// accuracy, and dead-branch elimination saves cycles and code bytes
// exactly where branches were provable.
func TestStaticAnalysisBench(t *testing.T) {
	tab, err := StaticAnalysisBench(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("SA1 rows = %d, want 3\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		pinned := floatCell(t, row[2])
		edgesOff, edgesOn := floatCell(t, row[3]), floatCell(t, row[4])
		itersOff, itersOn := floatCell(t, row[5]), floatCell(t, row[6])
		maeOff, maeOn := floatCell(t, row[9]), floatCell(t, row[10])
		cycSaved, codeSaved := floatCell(t, row[11]), floatCell(t, row[12])
		if edgesOn != edgesOff-2*pinned {
			t.Errorf("%s: pinning %v branches left %v of %v edges free",
				row[0], pinned, edgesOn, edgesOff)
		}
		if itersOn > itersOff {
			t.Errorf("%s: pinning increased EM iterations %v -> %v", row[0], itersOff, itersOn)
		}
		if maeOn > maeOff+0.01 {
			t.Errorf("%s: pinning worsened MAE %v -> %v", row[0], maeOff, maeOn)
		}
		if pinned > 0 && (cycSaved <= 0 || codeSaved <= 0) {
			t.Errorf("%s: dead-branch elim saved nothing (cyc %v, code %v)",
				row[0], cycSaved, codeSaved)
		}
		if pinned == 0 && (cycSaved != 0 || codeSaved != 0) {
			t.Errorf("%s: control case changed under DBE (cyc %v, code %v)",
				row[0], cycSaved, codeSaved)
		}
	}
}

func TestStationIngestSweep(t *testing.T) {
	tab, err := StationIngestSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("ST1 rows = %d, want 9\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		frames, epochs := floatCell(t, row[2]), floatCell(t, row[3])
		if frames < 1 {
			t.Errorf("motes=%s shards=%s: no frames ingested", row[0], row[1])
		}
		if epochs < 1 {
			t.Errorf("motes=%s shards=%s: no epochs sealed", row[0], row[1])
		}
		if rate := floatCell(t, row[5]); rate <= 0 {
			t.Errorf("motes=%s shards=%s: nonpositive frame rate %v", row[0], row[1], rate)
		}
	}
}

// TestPGOSweepShape checks the pg1 acceptance shape: one row per kernel
// (the placement corpus plus the call-heavy chain), the full PGO stack
// never slower than placement alone, and inlining actually earning cycles
// on the call-heavy kernel it exists for.
func TestPGOSweepShape(t *testing.T) {
	tab, err := PGOSweep(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(apps.All()) + 1; len(tab.Rows) != want {
		t.Fatalf("PG1 rows = %d, want %d\n%s", len(tab.Rows), want, tab.Render())
	}
	var sawChain bool
	for _, row := range tab.Rows {
		if floatCell(t, row[1]) <= 0 {
			t.Errorf("%s: nonpositive placed cycles %s", row[0], row[1])
		}
		if stacked := floatCell(t, row[6]); stacked > 1.0 {
			t.Errorf("%s: stacked PGO slower than placement-only (%v)\n%s", row[0], stacked, tab.Render())
		}
		if row[0] == "chain" {
			sawChain = true
			if inline := floatCell(t, row[2]); inline >= 1.0 {
				t.Errorf("chain: inlining saved nothing (%v)\n%s", inline, tab.Render())
			}
		}
	}
	if !sawChain {
		t.Fatalf("PG1 is missing the call-heavy chain kernel\n%s", tab.Render())
	}
}
