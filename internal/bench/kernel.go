package bench

import (
	"time"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/report"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
)

// KernelBench (experiment k1) measures the estimation kernel itself rather
// than any paper figure: the dense EstimateEM against the retained
// map-based reference at 256/1024/4096 enumerated paths, and a warm
// Incremental.Observe round against the cold first round at equal
// accumulated sample counts. `ctbench -exp k1 -json` emits the
// machine-readable form committed as BENCH_PR4.json.
func KernelBench(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "K1: estimation kernel (dense vs reference, warm vs cold)",
		Header: []string{"case", "paths", "samples", "baseline ms", "optimized ms", "speedup"},
		Note:   "medians of 5 runs; estimate-em: baseline = map-based reference kernel, optimized = dense kernel; observe-round: baseline = cold round one over all samples, optimized = warm round folding in the last 100 at the same accumulated count",
	}
	for _, diamonds := range []int{8, 10, 12} {
		m, samples := kernelModel(diamonds, 2000, c.Seed)
		emCfg := tomography.EMConfig{KernelHalfWidth: 8, MaxIter: 30}
		ref := medianSecs(5, func() error {
			_, _, err := tomography.EstimateEMReference(m, samples, emCfg)
			return err
		})
		dense := medianSecs(5, func() error {
			_, _, err := tomography.EstimateEM(m, samples, emCfg)
			return err
		})
		t.AddRow("estimate-em", report.I(1<<diamonds), report.I(len(samples)),
			report.F(ref*1e3, 2), report.F(dense*1e3, 2), report.F(ref/dense, 1)+"x")
	}

	// Warm streaming round vs the cold first round, both ending at the
	// same accumulated sample count.
	m, samples := kernelModel(10, 2000, c.Seed)
	est := tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: 4, Tol: 1e-4}}
	cold := medianSecs(5, func() error {
		inc := tomography.NewIncremental(m, est, 1e-3, 1<<30)
		_, err := inc.Observe(samples)
		return err
	})
	// medianSecs times the whole closure, so the warm-up happens outside
	// the timed region: one pre-warmed stream per run.
	warmRuns := make([]*tomography.Incremental, 5)
	for i := range warmRuns {
		inc := tomography.NewIncremental(m, est, 1e-3, 1<<30)
		if _, err := inc.Observe(samples[:1900]); err != nil {
			return nil, err
		}
		warmRuns[i] = inc
	}
	i := 0
	warm := medianSecs(5, func() error {
		inc := warmRuns[i]
		i++
		_, err := inc.Observe(samples[1900:])
		return err
	})
	t.AddRow("observe-round", report.I(1<<10), report.I(len(samples)),
		report.F(cold*1e3, 2), report.F(warm*1e3, 2), report.F(cold/warm, 1)+"x")
	return t, nil
}

// kernelModel builds a chain of `diamonds` two-way branches (2^diamonds
// enumerated paths) with seeded random costs, plus a quantized sample set
// drawn from seeded random branch probabilities — the same corpus shape
// the tomography property tests pin dense-vs-reference on.
func kernelModel(diamonds, n int, seed int64) (*tomography.Model, []float64) {
	rng := stats.NewRNG(seed + int64(diamonds)*1009)
	var blocks []*cfg.Block
	for d := 0; d < diamonds; d++ {
		base := ir.BlockID(3 * d)
		blocks = append(blocks,
			&cfg.Block{ID: base, Term: ir.Br{Cond: 0, True: base + 1, False: base + 2}},
			&cfg.Block{ID: base + 1, Term: ir.Jmp{Target: base + 3}},
			&cfg.Block{ID: base + 2, Term: ir.Jmp{Target: base + 3}},
		)
	}
	blocks = append(blocks, &cfg.Block{ID: ir.BlockID(3 * diamonds), Term: ir.Ret{Val: -1}})
	p := &cfg.Proc{Name: "kernel", Entry: 0, Blocks: blocks}

	costs := &markov.Costs{
		Block:         make([]float64, len(blocks)),
		Edge:          make(map[[2]ir.BlockID]float64),
		EntryOverhead: float64(rng.Intn(20)),
	}
	for i := range costs.Block {
		costs.Block[i] = float64(rng.Intn(120))
	}
	for _, e := range p.Edges() {
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = float64(rng.Intn(8))
	}

	m := &tomography.Model{Proc: p, Costs: costs}
	m.Paths, m.Truncated = markov.Enumerate(p, markov.EnumerateOptions{MaxVisits: 4, MaxPaths: 1 << 13})
	m.PathTimes = make([]float64, len(m.Paths))
	for i, path := range m.Paths {
		m.PathTimes[i] = markov.PathTime(path, costs)
	}
	for _, bb := range p.BranchBlocks() {
		u := tomography.Unknown{Block: bb}
		for _, s := range p.Block(bb).Succs() {
			u.Edges = append(u.Edges, [2]ir.BlockID{bb, s})
		}
		m.Unknowns = append(m.Unknowns, u)
	}

	truth := markov.Uniform(p)
	for _, u := range m.Unknowns {
		pr := 0.1 + 0.8*rng.Float64()
		truth[u.Edges[0]] = pr
		truth[u.Edges[1]] = 1 - pr
	}
	chain, err := markov.New(p, truth)
	if err != nil {
		panic(err) // structurally impossible: truth covers every edge
	}
	const tickDiv = 4.0
	samples := make([]float64, 0, n)
	for len(samples) < n {
		path := chain.SamplePath(rng.Float64, 1_000_000)
		if path == nil {
			continue
		}
		d := markov.PathTime(path, costs)
		// Tick quantization with a uniform start phase, as on the mote.
		phase := float64(rng.Intn(tickDiv))
		d = (float64(int((d+phase)/tickDiv)) - float64(int(phase/tickDiv))) * tickDiv
		samples = append(samples, d)
	}
	return m, samples
}

// medianSecs runs f `runs` times and returns the median wall time in
// seconds, or -1 on the first error so a broken case is obvious in the
// table.
func medianSecs(runs int, f func() error) float64 {
	times := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return -1
		}
		times = append(times, time.Since(start).Seconds())
	}
	// Insertion sort: runs is tiny.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}
