package bench

import (
	"fmt"

	"codetomo/internal/isa"
	"codetomo/internal/mote"
	"codetomo/internal/report"
)

// The s1 workloads are hand-assembled M16 kernels sized so each run
// executes at least a million instructions, covering the three dispatch
// profiles that dominate real handler code: dense conditional branches,
// straight-line ALU work, and call/return traffic through the stack.

// interpBranchKernel is a nested counted loop whose body toggles a flag
// and branches on it, so ~45% of executed instructions are conditional
// branches with mixed outcomes. ~4.5*inner*outer instructions, then HALT.
func interpBranchKernel(outer, inner int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 3, Imm: outer},
		{Op: isa.LDI, Rd: 4, Imm: -1},
		{Op: isa.LDI, Rd: 1, Imm: inner},      // 2: outer loop head
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1}, // 3: inner loop head
		{Op: isa.XORI, Rd: 2, Ra: 2, Imm: 1},
		{Op: isa.BNZ, Ra: 2, Imm: 7}, // alternating taken/not-taken
		{Op: isa.NOP},
		{Op: isa.BNZ, Ra: 1, Imm: 3}, // 7: latch, taken inner-1 times
		{Op: isa.ADD, Rd: 3, Ra: 3, Rb: 4},
		{Op: isa.BNZ, Ra: 3, Imm: 2},
		{Op: isa.HALT},
	}
}

// interpALUKernel is a nested loop with a straight-line ALU body, so only
// ~11% of executed instructions are branches. ~9*inner*outer instructions.
func interpALUKernel(outer, inner int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 5, Imm: outer},
		{Op: isa.LDI, Rd: 6, Imm: -1},
		{Op: isa.LDI, Rd: 7, Imm: 1},
		{Op: isa.LDI, Rd: 1, Imm: inner},   // 3: outer loop head
		{Op: isa.ADD, Rd: 2, Ra: 2, Rb: 1}, // 4: inner loop head
		{Op: isa.XOR, Rd: 3, Ra: 3, Rb: 2},
		{Op: isa.SHL, Rd: 4, Ra: 2, Rb: 7},
		{Op: isa.AND, Rd: 4, Ra: 4, Rb: 3},
		{Op: isa.OR, Rd: 2, Ra: 2, Rb: 4},
		{Op: isa.SUB, Rd: 3, Ra: 3, Rb: 6},
		{Op: isa.SLT, Rd: 8, Ra: 3, Rb: 2},
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.BNZ, Ra: 1, Imm: 4},
		{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 6},
		{Op: isa.BNZ, Ra: 5, Imm: 3},
		{Op: isa.HALT},
	}
}

// interpCallKernel is a nested loop whose inner body calls a leaf that
// pushes and pops, exercising CALL/RET and stack traffic on every
// iteration. ~7*inner*outer instructions.
func interpCallKernel(outer, inner int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 5, Imm: outer},
		{Op: isa.LDI, Rd: 6, Imm: -1},
		{Op: isa.LDI, Rd: 1, Imm: inner}, // 2: outer loop head
		{Op: isa.CALL, Imm: 9},           // 3: inner loop head
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.BNZ, Ra: 1, Imm: 3},
		{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 6},
		{Op: isa.BNZ, Ra: 5, Imm: 2},
		{Op: isa.HALT},
		{Op: isa.PUSH, Ra: 2}, // 9: leaf
		{Op: isa.ADDI, Rd: 2, Ra: 2, Imm: 1},
		{Op: isa.POP, Rd: 2},
		{Op: isa.RET},
	}
}

// InterpreterBench (experiment s1) measures raw interpreter throughput:
// the fused segment-dispatch core (Machine.Run) against the retained
// Step-loop reference core (Machine.RunReference) on workloads of at
// least a million executed instructions each. Before a row is reported
// the final Stats of the two cores are compared; any divergence is an
// error, so the committed numbers double as an equivalence check.
// `ctbench -exp s1 -json` emits the form committed as BENCH_PR5.json.
func InterpreterBench(c Config) (*report.Table, error) {
	t := &report.Table{
		Title:  "S1: interpreter core throughput (fused Run vs reference Step loop)",
		Header: []string{"workload", "predictor", "Minstr", "branch%", "reference Mi/s", "fused Mi/s", "speedup"},
		Note:   "medians of 5 runs; reference = Step-loop core (RunReference), fused = segment-dispatch core (Run); final Stats of both cores are checked for equality before each row is reported",
	}
	cases := []struct {
		name  string
		prog  []isa.Instr
		pname string
		fresh func() mote.Predictor
	}{
		{"branch-heavy", interpBranchKernel(250, 1000), "not-taken",
			func() mote.Predictor { return mote.StaticNotTaken{} }},
		{"branch-heavy", interpBranchKernel(250, 1000), "bimodal-6",
			func() mote.Predictor { return mote.NewBimodal(6) }},
		{"alu-mix", interpALUKernel(120, 1000), "not-taken",
			func() mote.Predictor { return mote.StaticNotTaken{} }},
		{"call-ret", interpCallKernel(150, 1000), "btfn",
			func() mote.Predictor { return mote.BTFN{} }},
	}
	const runs = 5
	const budget = uint64(1) << 40
	for _, cs := range cases {
		mk := func() *mote.Machine {
			mc := mote.DefaultConfig()
			mc.RAMWords = 64
			mc.Predictor = cs.fresh()
			return mote.New(cs.prog, mc)
		}
		// Machines are pre-built so the timed region is the dispatch loop
		// alone; each run gets a fresh machine (and fresh predictor state).
		refMachines := make([]*mote.Machine, runs)
		fusedMachines := make([]*mote.Machine, runs)
		for i := 0; i < runs; i++ {
			refMachines[i], fusedMachines[i] = mk(), mk()
		}
		i := 0
		refSecs := medianSecs(runs, func() error {
			m := refMachines[i]
			i++
			return m.RunReference(budget)
		})
		i = 0
		fusedSecs := medianSecs(runs, func() error {
			m := fusedMachines[i]
			i++
			return m.Run(budget)
		})
		if refSecs < 0 || fusedSecs < 0 {
			return nil, fmt.Errorf("s1 %s/%s: core run failed", cs.name, cs.pname)
		}
		rs, fs := refMachines[0].Stats(), fusedMachines[0].Stats()
		if rs != fs {
			return nil, fmt.Errorf("s1 %s/%s: cores diverge:\n  reference %+v\n  fused     %+v",
				cs.name, cs.pname, rs, fs)
		}
		mi := float64(fs.Instructions) / 1e6
		brPct := 100 * float64(fs.CondBranches) / float64(fs.Instructions)
		t.AddRow(cs.name, cs.pname, report.F(mi, 2), report.F(brPct, 1)+"%",
			report.F(mi/refSecs, 0), report.F(mi/fusedSecs, 0),
			report.F(refSecs/fusedSecs, 1)+"x")
	}
	return t, nil
}
