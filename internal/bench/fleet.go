package bench

import (
	"fmt"

	codetomo "codetomo"
	"codetomo/internal/apps"
	"codetomo/internal/report"
)

// fleetApp is the deployment benchmark: sense is the canonical
// sample-and-filter handler and the one every fleet test exercises.
const fleetApp = "sense"

// runFleet drives the full fleet pipeline — N motes, lossy uplink,
// streaming estimation, placement — and returns the handler's estimate
// alongside the whole result.
func (c Config) runFleet(app apps.App, motes int, drop float64, perMote int) (*codetomo.FleetResult, *codetomo.ProcEstimate, error) {
	src, err := app.Source(perMote)
	if err != nil {
		return nil, nil, err
	}
	cfg := codetomo.FleetConfig{
		Config: codetomo.Config{
			Workload:  app.Workload,
			Seed:      c.Seed,
			TickDiv:   c.TickDiv,
			Predictor: c.Predictor,
			MaxCycles: c.MaxCycles,
		},
		Motes:    motes,
		DropProb: drop,
	}
	res, err := codetomo.RunFleet(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	for i := range res.Estimates {
		if res.Estimates[i].Proc == app.Handler {
			return res, &res.Estimates[i], nil
		}
	}
	return nil, nil, fmt.Errorf("bench: %s: handler %q not estimated", app.Name, app.Handler)
}

// FleetLossSweep reports estimation quality as the uplink degrades: the
// loss-tolerant reassembly discards truncated invocations rather than
// biasing the surviving samples, so MAE should stay near the lossless
// figure while the sample count shrinks.
func FleetLossSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const motes = 4
	perMote := c.Samples / motes
	drops := []float64{0, 0.05, 0.10, 0.20, 0.40}
	t := &report.Table{
		Title:  "FL1: estimation error vs. packet loss (fleet uplink)",
		Header: []string{"drop", "samples", "discarded", "handler MAE", "mispred reduction"},
		Note: fmt.Sprintf("%s, %d motes, %d invocations each, tick=%d cycles",
			app.Name, motes, perMote, c.TickDiv),
	}
	for _, drop := range drops {
		res, pe, err := c.runFleet(app, motes, drop, perMote)
		if err != nil {
			return nil, err
		}
		if pe.Fallback {
			t.AddRow(report.Pct(drop), report.I(pe.SampleCount), report.I(res.Fleet.Uplink.InvocationsDiscarded), "fallback", "-")
			continue
		}
		t.AddRow(report.Pct(drop), report.I(pe.SampleCount),
			report.I(res.Fleet.Uplink.InvocationsDiscarded),
			fmt.Sprintf("%.4f", pe.MAE), report.Pct(res.MispredictReduction()))
	}
	return t, nil
}

// FleetSizeSweep reports estimation quality as the deployment grows at a
// fixed per-mote sample budget: more motes means more merged samples at
// the base station, so MAE should fall with fleet size even under a
// lossy channel.
func FleetSizeSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const drop = 0.20
	perMote := c.Samples / 4
	sizes := []int{1, 2, 4, 8}
	t := &report.Table{
		Title:  "FL2: estimation error vs. fleet size (fixed per-mote budget)",
		Header: []string{"motes", "samples", "handler MAE", "rounds", "mispred reduction"},
		Note: fmt.Sprintf("%s, %d invocations per mote, %s packet loss, tick=%d cycles",
			app.Name, perMote, report.Pct(drop), c.TickDiv),
	}
	for _, motes := range sizes {
		res, pe, err := c.runFleet(app, motes, drop, perMote)
		if err != nil {
			return nil, err
		}
		if pe.Fallback {
			t.AddRow(report.I(motes), report.I(pe.SampleCount), "fallback", report.I(res.Fleet.Rounds), "-")
			continue
		}
		t.AddRow(report.I(motes), report.I(pe.SampleCount),
			fmt.Sprintf("%.4f", pe.MAE), report.I(res.Fleet.Rounds),
			report.Pct(res.MispredictReduction()))
	}
	return t, nil
}
