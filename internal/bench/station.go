package bench

import (
	"fmt"
	"time"

	codetomo "codetomo"
	"codetomo/internal/apps"
	"codetomo/internal/report"
	"codetomo/internal/station"
)

// StationIngestSweep measures the base-station service's ingest
// throughput across deployment size and shard count: one simulated fleet
// round is fed through the in-process ingest path (decode, route,
// reassemble) with an epoch cut every fixed number of frames, so the
// figure covers the full standing cost of the service — reassembly,
// seal-and-rebase, streaming estimation, and snapshot publication.
// Snapshots are sharding-invariant by construction; only the wall time
// moves with the shard count.
func StationIngestSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const epochEvery = 256
	perMote := c.Samples / 4
	src, err := app.Source(perMote)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "ST1: station ingest throughput vs. shards and fleet size",
		Header: []string{"motes", "shards", "frames", "epochs", "wall ms", "frames/s", "epochs/s"},
		Note: fmt.Sprintf("%s, %d invocations per mote, epoch cut every %d frames, tick=%d cycles",
			app.Name, perMote, epochEvery, c.TickDiv),
	}
	for _, motes := range []int{2, 4, 8} {
		cfg := codetomo.FleetConfig{
			Config: codetomo.Config{
				Workload:  app.Workload,
				Seed:      c.Seed,
				TickDiv:   c.TickDiv,
				Predictor: c.Predictor,
				MaxCycles: c.MaxCycles,
			},
			Motes: motes,
		}
		uploads, err := codetomo.FleetUploads(src, cfg)
		if err != nil {
			return nil, err
		}
		for _, shards := range []int{1, 2, 4} {
			srv, err := station.New(station.Config{
				Program:   src,
				Shards:    shards,
				TickDiv:   c.TickDiv,
				Predictor: c.Predictor,
				MaxVisits: c.Enum.MaxVisits,
			})
			if err != nil {
				return nil, err
			}
			frames := 0
			start := time.Now()
			for _, up := range uploads {
				for _, f := range up.Frames {
					if err := srv.IngestFrame(f); err != nil {
						srv.Close()
						return nil, err
					}
					frames++
					if frames%epochEvery == 0 {
						if _, err := srv.CutEpoch(); err != nil {
							srv.Close()
							return nil, err
						}
					}
				}
			}
			if _, err := srv.CutEpoch(); err != nil {
				srv.Close()
				return nil, err
			}
			wall := time.Since(start)
			epochs := srv.Epoch()
			if err := srv.Close(); err != nil {
				return nil, err
			}
			secs := wall.Seconds()
			t.AddRow(report.I(motes), report.I(shards), report.I(frames), report.I(int(epochs)),
				fmt.Sprintf("%.1f", 1e3*secs),
				fmt.Sprintf("%.0f", float64(frames)/secs),
				fmt.Sprintf("%.1f", float64(epochs)/secs))
		}
	}
	return t, nil
}
