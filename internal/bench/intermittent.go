package bench

import (
	"fmt"

	codetomo "codetomo"
	"codetomo/internal/apps"
	"codetomo/internal/fault"
	"codetomo/internal/mote"
	"codetomo/internal/report"
)

// ckptPolicy is one column family of the IN1 sweep.
type ckptPolicy struct {
	name string
	pol  mote.CheckpointPolicy
}

// IntermittentSweep (IN1) runs the fleet on harvested power across a
// ladder of harvest rates and checkpoint policies. The CPU draws ~1.35 µJ
// per kcycle, so rates below that force a duty cycle: motes brown out
// mid-procedure and either cold-boot (no checkpoints — every outage
// restarts the program from the reset vector) or restore the last
// checkpoint image. The table tracks what intermittence costs (power
// failures, invocations lost mid-execution, completion rate), whether the
// estimator survives it (MAE with the truncation debias active), and the
// figure of merit a deployment actually optimizes: completed invocations
// per harvested joule, measured and predicted for the optimized layout.
func IntermittentSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const motes = 4
	perMote := c.Samples / motes
	rates := []float64{0.5, 0.8, 1.2, 2.0}
	policies := []ckptPolicy{
		{"none", mote.CheckpointPolicy{}},
		{"every-4", mote.CheckpointPolicy{EveryKInvocations: 4}},
		{"low-charge", mote.CheckpointPolicy{OnLowChargeFrac: 0.25}},
	}
	t := &report.Table{
		Title: "IN1: intermittent execution — completion and estimation vs harvest rate and checkpoint policy",
		Header: []string{"harvest", "policy", "pwrfail", "ckpts", "lost", "completion",
			"handler MAE", "speedup", "compl/J", "pred/J"},
		Note: fmt.Sprintf("%s, %d motes, %d invocations each; harvest in µJ/kcycle (CPU draw ~1.35); "+
			"lost = power-truncated invocations; compl/J = completed invocations per harvested joule, "+
			"pred/J = same extrapolated to the optimized layout. Without checkpoints every outage "+
			"cold-boots the program from the start, so those motes replay invocations until the cycle "+
			"budget runs out — completed counts include the re-executed work", app.Name, motes, perMote),
	}
	for _, rate := range rates {
		for _, p := range policies {
			res, pe, err := c.runFaultFleet(app, motes, perMote, func(cfg *codetomo.FleetConfig) {
				cfg.Energy = fault.EnergyConfig{
					HarvestUJPerKCycle: rate,
					HarvestNoiseSigma:  0.4,
					CapacityUJ:         60,
					BrownoutFloorUJ:    2,
					RestartChargeUJ:    40,
					Seed:               c.Seed + 1,
				}
				cfg.Checkpoint = p.pol
				cfg.Robust = true
			})
			if err != nil {
				return nil, err
			}
			st := res.Fleet
			maeCell := fmt.Sprintf("%.4f", pe.MAE)
			if pe.Fallback {
				maeCell = "fallback"
			} else if pe.LowConfidence {
				maeCell += "*"
			}
			complCell, perJ, predJ := "n/a", "n/a", "n/a"
			if in := res.Intermittence; in != nil {
				complCell = report.Pct(in.CompletionRate)
				perJ = report.F(in.CompletedPerJoule, 0)
				predJ = report.F(in.PredictedCompletedPerJoule, 0)
			}
			t.AddRow(fmt.Sprintf("%.1f", rate), p.name,
				report.I(st.PowerFailures), report.I(st.Checkpoints),
				report.I(st.Uplink.LostPartials), complCell, maeCell,
				fmt.Sprintf("%.3fx", res.Speedup()), perJ, predJ)
		}
	}
	return t, nil
}
