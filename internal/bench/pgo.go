package bench

import (
	"fmt"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/isa"
	"codetomo/internal/layout"
	"codetomo/internal/report"
)

// pgoPageCrossPenalty is the flash-page refill cost the PGO sweep charges
// per page-crossing redirect — the regime where page packing has something
// to optimize. Both the compiler and the mote run under the same model.
const pgoPageCrossPenalty = 5

// pgoPasses enumerates the single-pass configurations of the sweep, in
// pipeline order.
var pgoPasses = []struct {
	name string
	set  func(*compile.PGOOptions)
}{
	{"inline", func(o *compile.PGOOptions) { o.Inline = true }},
	{"superblock", func(o *compile.PGOOptions) { o.Superblock = true }},
	{"hotcold", func(o *compile.PGOOptions) { o.HotCold = true }},
	{"pagepack", func(o *compile.PGOOptions) { o.PagePack = true }},
}

// PGOSweep measures what each profile-guided pass adds on top of
// estimation-based placement: every app is profiled once via timestamps,
// the estimated probabilities feed both the placement plan and the PGO
// edge weights, and then the identical workload runs under placement
// alone, under each single pass stacked on placement, and under all four
// passes together — all with the same flash-page penalty in force.
func PGOSweep(c Config) (*report.Table, error) {
	t := &report.Table{
		Title: "PG1: execution cycles by profile-guided pass, normalized to placement-only",
		Header: []string{"app", "placed cycles", "inline", "superblock", "hotcold",
			"pagepack", "stacked", "saved"},
		Note: fmt.Sprintf("lower is better; 1.0000 = estimation-based placement under a %d-cycle page-cross penalty; saved = placed - stacked cycles",
			pgoPageCrossPenalty),
	}

	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = pgoPageCrossPenalty

	// The placement corpus is branch-heavy; CallChain adds the call-heavy
	// shape the inlining pass exists for.
	suite := append(apps.All(), apps.CallChain)
	for i, a := range suite {
		seedOffset := int64(1000 + i)

		// One profiling run; its estimates drive every optimized build.
		prof, err := c.execute(a, compile.Options{Instrument: compile.ModeTimestamps}, seedOffset)
		if err != nil {
			return nil, err
		}
		ctProbs, err := c.estimateAllProcs(prof)
		if err != nil {
			return nil, err
		}
		plan := layout.PlanAll(prof.Out.CFG, ctProbs)
		weights := make(map[string]compile.ProcWeights, len(ctProbs))
		for _, p := range prof.Out.CFG.Procs {
			if probs, ok := ctProbs[p.Name]; ok {
				weights[p.Name] = compile.ProcWeights(layout.FromProbs(p, probs))
			}
		}

		measure := func(pgo *compile.PGOOptions) (uint64, error) {
			r, err := c.execute(a, compile.Options{
				Layouts:     plan.Layouts,
				BranchHints: plan.Hints,
				Cost:        cost,
				PGO:         pgo,
			}, seedOffset)
			if err != nil {
				return 0, err
			}
			return r.Machine.Stats().Cycles, nil
		}

		placed, err := measure(nil)
		if err != nil {
			return nil, fmt.Errorf("%s/placement: %w", a.Name, err)
		}
		row := []string{a.Name, report.I(int(placed))}
		for _, pass := range pgoPasses {
			pgo := &compile.PGOOptions{Weights: weights}
			pass.set(pgo)
			cycles, err := measure(pgo)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", a.Name, pass.name, err)
			}
			row = append(row, report.F(float64(cycles)/float64(placed), 4))
		}
		all := &compile.PGOOptions{Weights: weights}
		for _, pass := range pgoPasses {
			pass.set(all)
		}
		stacked, err := measure(all)
		if err != nil {
			return nil, fmt.Errorf("%s/stacked: %w", a.Name, err)
		}
		row = append(row,
			report.F(float64(stacked)/float64(placed), 4),
			report.I(int(placed)-int(stacked)))
		t.AddRow(row...)
	}
	return t, nil
}
