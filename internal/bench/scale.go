package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"codetomo/internal/apps"
	"codetomo/internal/compile"
	"codetomo/internal/fleet"
	"codetomo/internal/mote"
	"codetomo/internal/report"
)

// scaleSeedStride matches the runfleet per-mote seed derivation so fl3
// motes observe the same workload diversity as the pipeline's fleets.
const scaleSeedStride = 104729

// scaleRun drives the streaming cohort pipeline over n motes with a
// counting sink — simulation, uplink, reassembly, and duration
// extraction, no estimation — and reports throughput and memory.
type scaleRun struct {
	Wall      time.Duration
	Recovered int    // invocations recovered across the fleet (sanity)
	AllocB    uint64 // total bytes allocated during the run
	PeakHeapB uint64 // max observed live heap during the run
}

func runScale(cfg fleet.SimConfig, specs []fleet.MoteSpec) (scaleRun, error) {
	var r scaleRun

	// Memory accounting: total allocation over the run (steady-state cost
	// per mote) and sampled peak live heap (the O(workers × cohort) claim).
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	done := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > r.PeakHeapB {
					r.PeakHeapB = ms.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	pool := fleet.NewPool(cfg.Workers)
	_, err := fleet.SimulateStreamOn(pool, cfg, specs, func(first int, cohort []fleet.MoteResult) error {
		for i := range cohort {
			r.Recovered += cohort[i].Uplink.InvocationsRecovered
		}
		return nil
	})
	r.Wall = time.Since(start)
	close(done)
	sampleWG.Wait()
	if err != nil {
		return r, err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	r.AllocB = after.TotalAlloc - before.TotalAlloc
	if after.HeapAlloc > r.PeakHeapB {
		r.PeakHeapB = after.HeapAlloc
	}
	return r, nil
}

// FleetScaleSweep (fl3) measures simulation density: how many motes per
// second per core the streaming cohort pipeline sustains as the fleet
// grows from 10^3 to 10^6, across worker counts and GOMAXPROCS. The
// figures of merit are motes/s/core (should be flat — the pipeline is
// embarrassingly parallel with one serialized sink) and B/mote (should be
// flat and small — machine reuse makes per-mote allocation O(results),
// not O(simulation)), with peak heap staying bounded as the fleet grows
// past it.
func FleetScaleSweep(c Config) (*report.Table, error) {
	app, ok := apps.ByName(fleetApp)
	if !ok {
		return nil, fmt.Errorf("bench: app %q missing", fleetApp)
	}
	const perMote = 4 // invocations per mote: density, not statistics
	src, err := app.Source(perMote)
	if err != nil {
		return nil, err
	}
	out, err := compile.Build(src, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		return nil, fmt.Errorf("bench: build %s: %w", app.Name, err)
	}

	maxFleet := c.MaxFleet
	if maxFleet <= 0 {
		maxFleet = 1_000_000
	}
	var sizes []int
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		if n <= maxFleet || len(sizes) == 0 {
			sizes = append(sizes, min(n, maxFleet))
		}
	}
	ncpu := runtime.NumCPU()
	var workerSet []int
	for _, w := range []int{1, 4, ncpu} {
		dup := false
		for _, seen := range workerSet {
			dup = dup || seen == w
		}
		if !dup {
			workerSet = append(workerSet, w)
		}
	}

	t := &report.Table{
		Title:  "FL3: simulation density and scaling (streaming cohort pipeline)",
		Header: []string{"motes", "workers", "procs", "wall s", "motes/s", "motes/s/core", "B/mote", "peak heap MB"},
		Note: fmt.Sprintf("%s, %d invocations per mote, perfect channel, tick=%d cycles, cohort=%d, %d CPUs",
			app.Name, perMote, c.TickDiv, fleet.DefaultCohortSize, ncpu),
	}
	for _, n := range sizes {
		specs := make([]fleet.MoteSpec, n)
		for i := range specs {
			specs[i] = fleet.MoteSpec{
				ID:               uint16(i),
				Workload:         app.Workload,
				Seed:             c.Seed + int64(i+1)*scaleSeedStride,
				ClockOffsetTicks: uint64(i*997) % (1 << 20),
			}
		}
		// Small fleets sweep the worker axis; at 10^5 and beyond only the
		// all-cores row runs (the small sizes already pin per-core scaling).
		rowWorkers := workerSet
		if n >= 100_000 {
			rowWorkers = workerSet[len(workerSet)-1:]
		}
		for _, w := range rowWorkers {
			procs := min(w, ncpu)
			mc := mote.DefaultConfig()
			mc.TickDiv = c.TickDiv
			mc.Predictor = c.Predictor
			cfg := fleet.SimConfig{
				Prog:      out.Code,
				Mote:      mc,
				MaxCycles: c.MaxCycles,
				Workers:   w,
				Link:      fleet.LinkConfig{Seed: c.Seed + 104659},
			}
			prev := runtime.GOMAXPROCS(procs)
			r, err := runScale(cfg, specs)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, err
			}
			secs := r.Wall.Seconds()
			rate := float64(n) / secs
			t.AddRow(report.I(n), report.I(w), report.I(procs),
				report.F(secs, 2), report.F(rate, 0), report.F(rate/float64(procs), 0),
				report.I(r.AllocB/uint64(n)), report.F(float64(r.PeakHeapB)/(1<<20), 1))
		}
	}
	return t, nil
}
