package bench

// Static-analysis experiment: how much estimator work the value-range
// pinning saves, and what dead-branch elimination buys at runtime. The
// benchmark programs read the sensor directly inside the handler, so the
// ADC rail (sense() <= 1023) makes a controllable fraction of the branches
// statically provable.

import (
	"fmt"
	"time"

	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/report"
	"codetomo/internal/stats"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// railCase is one synthetic program with a known number of rail-provable
// branches in its handler.
type railCase struct {
	name    string
	handler string // handler body: branches over v = sense()
}

var railCases = []railCase{
	// Control: both branches genuinely data-dependent. The arms carry
	// enough work to be separable at the default tick.
	{"rail-0of2", `
	if (v < 300) { r = r + v / 3; }
	if (v < 700) { r = r + v / 5 + v % 11 + 1; }`},
	// One of two branches provable: sense() never reaches 2000.
	{"rail-1of2", `
	if (v < 2000) { r = r + v / 3; } else { r = 99; }
	if (v < 500) { r = r + v / 5 + v % 11 + 1; }`},
	// Two of three provable: the rail bounds both comparisons.
	{"rail-2of3", `
	if (v < 2000) { r = r + v / 3; } else { r = 99; }
	if (v >= 0) { r = r + 1; } else { r = 77; }
	if (v < 500) { r = r + v / 5 + v % 11 + 1; }`},
}

func (rc railCase) source(samples int) string {
	return fmt.Sprintf(`
func handler() int {
	var v int;
	var r int;
	v = sense();
	r = 0;%s
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < %d; i = i + 1) {
		acc = acc + handler();
	}
	debug(acc);
}`, rc.handler, samples)
}

// railRun builds a rail program and executes it under a Gaussian sensor.
func (c Config) railRun(rc railCase, opts compile.Options, seedOffset int64) (*compile.Output, *mote.Machine, error) {
	out, err := compile.Build(rc.source(c.Samples), opts)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: build %s: %w", rc.name, err)
	}
	rng := stats.NewRNG(c.Seed + seedOffset)
	mc := mote.DefaultConfig()
	mc.TickDiv = c.TickDiv
	mc.Predictor = c.Predictor
	mc.Sensor = workload.NewGaussian(rng, 400, 180)
	mc.Entropy = workload.NewEntropy(rng.Fork())
	m := mote.New(out.Code, mc)
	if err := m.Run(c.MaxCycles); err != nil {
		return nil, nil, fmt.Errorf("bench: run %s: %w", rc.name, err)
	}
	return out, m, nil
}

// maeOver scores an estimate against truth over an explicit edge list —
// used to compare the pinned and unpinned models on identical footing (the
// pinned model's own edge list omits the resolved branches).
func maeOver(edges [][2]ir.BlockID, est, truth markov.EdgeProbs) float64 {
	if len(edges) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range edges {
		d := est[e] - truth[e]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(edges))
}

// StaticAnalysisBench measures (a) estimator work and accuracy with and
// without static branch resolution and (b) the cycles and code bytes that
// dead-branch elimination recovers, per rail case.
func StaticAnalysisBench(c Config) (*report.Table, error) {
	t := &report.Table{
		Title: "SA1: value-range pinning and dead-branch elimination",
		Header: []string{"case", "branches", "pinned",
			"edges off", "edges on", "iters off", "iters on",
			"ms off", "ms on", "mae off", "mae on",
			"dbe cyc saved", "dbe code B"},
		Note: "off/on = EM without/with static resolution; MAE over the full " +
			"edge set vs the run's oracle; dbe columns compare plain vs " +
			"DeadBranchElim uninstrumented builds on the identical workload",
	}
	emCfg := tomography.EMConfig{KernelHalfWidth: float64(c.TickDiv)}
	for i, rc := range railCases {
		seed := int64(1300 + i)

		// Profiling run (timestamps, no optimization: the dead arm stays in
		// the CFG so the unpinned model must treat it as a free parameter).
		out, machine, err := c.railRun(rc, compile.Options{Instrument: compile.ModeTimestamps}, seed)
		if err != nil {
			return nil, err
		}
		ivs, err := trace.Extract(machine.Trace())
		if err != nil {
			return nil, err
		}
		pm := out.Meta.ProcByName["handler"]
		samples := trace.DurationsCycles(trace.ExclusiveByProc(ivs)[pm.Index], c.TickDiv)
		if len(samples) == 0 {
			return nil, fmt.Errorf("bench: %s: no handler samples", rc.name)
		}

		off, err := tomography.NewModel(out, "handler", c.Predictor, c.Enum)
		if err != nil {
			return nil, err
		}
		on, err := tomography.NewModelOpts(out, "handler", c.Predictor, c.Enum,
			tomography.ModelOptions{StaticResolve: true})
		if err != nil {
			return nil, err
		}

		run := func(m *tomography.Model) (markov.EdgeProbs, int, float64, error) {
			start := time.Now()
			est, st, err := tomography.EstimateEM(m, samples, emCfg)
			if err != nil {
				return nil, 0, 0, err
			}
			return est, st.Iterations, float64(time.Since(start).Microseconds()) / 1000, nil
		}
		estOff, itersOff, msOff, err := run(off)
		if err != nil {
			return nil, err
		}
		estOn, itersOn, msOn, err := run(on)
		if err != nil {
			return nil, err
		}

		// Score both on the unpinned model's complete edge list; the pinned
		// estimate carries its 1/0 edges so the comparison is fair.
		edges := off.BranchEdgeList()
		truth := profile.OracleProbs(pm, off.Proc, machine.BranchStats())

		// Dead-branch elimination: identical workload, plain binaries.
		_, basePlain, err := c.railRun(rc, compile.Options{}, seed)
		if err != nil {
			return nil, err
		}
		outDBE, withDBE, err := c.railRun(rc, compile.Options{DeadBranchElim: true}, seed)
		if err != nil {
			return nil, err
		}
		baseOut, err := compile.Build(rc.source(c.Samples), compile.Options{})
		if err != nil {
			return nil, err
		}
		cycSaved := int64(basePlain.Stats().Cycles) - int64(withDBE.Stats().Cycles)
		codeSaved := int64(baseOut.Meta.CodeBytes) - int64(outDBE.Meta.CodeBytes)

		t.AddRow(rc.name,
			report.I(len(off.Proc.BranchBlocks())),
			report.I(len(off.Unknowns)-len(on.Unknowns)),
			report.I(len(off.BranchEdgeList())), report.I(len(on.BranchEdgeList())),
			report.I(itersOff), report.I(itersOn),
			report.F(msOff, 2), report.F(msOn, 2),
			report.F(maeOver(edges, estOff, truth), 4),
			report.F(maeOver(edges, estOn, truth), 4),
			fmt.Sprintf("%d", cycSaved), fmt.Sprintf("%d", codeSaved))
	}
	return t, nil
}
