package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func TestUsageNamesFlagAndPrintsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	fs.Int("motes", 4, "deployment size")
	var stderr bytes.Buffer
	usage := Usage(fs, &stderr, "demo", "[flags] file.mc")

	if code := usage("invalid -motes: %d", 0); code != ExitUsage {
		t.Fatalf("usage returned %d, want %d", code, ExitUsage)
	}
	out := stderr.String()
	for _, want := range []string{"demo: invalid -motes: 0", "usage: demo [flags] file.mc", "-motes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stderr missing %q:\n%s", want, out)
		}
	}
}

func TestBadProbability(t *testing.T) {
	if f, bad := BadProbability(ProbFlag{"-drop", 0}, ProbFlag{"-dup", 1}); bad {
		t.Fatalf("in-range values flagged: %+v", f)
	}
	f, bad := BadProbability(ProbFlag{"-drop", 0.5}, ProbFlag{"-corrupt", 1.5})
	if !bad || f.Name != "-corrupt" {
		t.Fatalf("got %+v bad=%v, want -corrupt flagged", f, bad)
	}
	f, bad = BadProbability(ProbFlag{"-stuck", -0.1})
	if !bad || f.Name != "-stuck" {
		t.Fatalf("got %+v bad=%v, want -stuck flagged", f, bad)
	}
}

func TestParsePGOPasses(t *testing.T) {
	cases := []struct {
		spec string
		want PGOPasses
	}{
		{"", PGOPasses{}},
		{"none", PGOPasses{}},
		{"inline", PGOPasses{Inline: true}},
		{"superblock,pagepack", PGOPasses{Superblock: true, PagePack: true}},
		{"hotcold, inline", PGOPasses{Inline: true, HotCold: true}},
		{"all", PGOPasses{Inline: true, Superblock: true, HotCold: true, PagePack: true}},
	}
	for _, tc := range cases {
		got, err := ParsePGOPasses(tc.spec)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePGOPasses(%q) = (%+v, %v), want %+v", tc.spec, got, err, tc.want)
		}
	}
	if _, err := ParsePGOPasses("inline,unroll"); err == nil || !strings.Contains(err.Error(), "unroll") {
		t.Fatalf("unknown pass error = %v, want it to name the token", err)
	}
}

func TestEstimatorResolution(t *testing.T) {
	if est, err := Estimator("em", 8); err != nil || est != nil {
		t.Fatalf("em: got (%v, %v), want (nil, nil) — the pipeline supplies the tuned default", est, err)
	}
	for _, name := range []string{"moments", "histogram"} {
		est, err := Estimator(name, 8)
		if err != nil || est == nil || est.Name() != name {
			t.Fatalf("%s: got (%v, %v)", name, est, err)
		}
	}
	if _, err := Estimator("psychic", 8); err == nil || !strings.Contains(err.Error(), "psychic") {
		t.Fatalf("unknown estimator error = %v, want it to name the value", err)
	}
}
