// Package cli holds the small contract every codetomo command shares:
// the exit-code convention (0 success, 1 runtime failure, 2 usage error),
// the usage-error reporter that names the offending flag, and the
// validation and flag-resolution helpers that used to be copied per CLI.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"codetomo/internal/tomography"
)

// The exit-code contract shared by ctomo, ctfleet, and ctstationd.
const (
	ExitOK      = 0 // run completed
	ExitFailure = 1 // runtime failure (I/O, pipeline, server)
	ExitUsage   = 2 // flag-validation failure; stderr names the flag
)

// UsageFunc reports one flag-validation failure and returns ExitUsage for
// main to hand to os.Exit. The format string must name the offending flag
// (e.g. "invalid -drop: ..."), so a misconfigured run fails loudly and
// actionably instead of running with silently-clamped parameters.
type UsageFunc func(format string, args ...any) int

// Usage builds the shared usage-error reporter for one command: it prints
// "<cmd>: <msg>", the usage line, and the flag defaults to stderr.
func Usage(fs *flag.FlagSet, stderr io.Writer, cmd, argsHint string) UsageFunc {
	return func(format string, args ...any) int {
		fmt.Fprintf(stderr, "%s: %s\n", cmd, fmt.Sprintf(format, args...))
		fmt.Fprintf(stderr, "usage: %s %s\n", cmd, argsHint)
		fs.PrintDefaults()
		return ExitUsage
	}
}

// ProbFlag is one probability-valued flag under validation.
type ProbFlag struct {
	Name string
	Val  float64
}

// BadProbability returns the first flag whose value is not a probability
// in [0, 1], if any.
func BadProbability(flags ...ProbFlag) (ProbFlag, bool) {
	for _, f := range flags {
		if f.Val < 0 || f.Val > 1 {
			return f, true
		}
	}
	return ProbFlag{}, false
}

// PGOPasses holds the selection parsed from a -pgo flag.
type PGOPasses struct {
	Inline     bool
	Superblock bool
	HotCold    bool
	PagePack   bool
}

// ParsePGOPasses resolves the -pgo flag the pipeline CLIs share: a
// comma-separated subset of {inline, superblock, hotcold, pagepack}, the
// shorthand "all", or "" / "none" for placement-only.
func ParsePGOPasses(spec string) (PGOPasses, error) {
	var p PGOPasses
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "inline":
			p.Inline = true
		case "superblock":
			p.Superblock = true
		case "hotcold":
			p.HotCold = true
		case "pagepack":
			p.PagePack = true
		case "all":
			p = PGOPasses{Inline: true, Superblock: true, HotCold: true, PagePack: true}
		default:
			return PGOPasses{}, fmt.Errorf("%q (want a comma-separated subset of inline,superblock,hotcold,pagepack, or all/none)", tok)
		}
	}
	return p, nil
}

// Estimator resolves the -estimator flag every pipeline CLI exposes. The
// EM default returns nil: the pipeline tunes its kernel to the timer tick
// internally, so callers must leave the config's Estimator unset for it.
func Estimator(name string, tick int) (tomography.Estimator, error) {
	switch name {
	case "em":
		return nil, nil
	case "moments":
		return tomography.Moments{}, nil
	case "histogram":
		return tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: float64(tick)}}, nil
	default:
		return nil, fmt.Errorf("%q (want em, moments, or histogram)", name)
	}
}
