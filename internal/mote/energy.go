package mote

// EnergyModel converts one run's architectural event counts into an energy
// estimate in microjoules. The coefficients follow the usual mote budget
// shape (TelosB-class): the CPU draws on the order of a few mA at a few
// MHz, and each radio packet costs orders of magnitude more than an
// instruction, which is why profiling instrumentation overhead is counted
// in both cycles and bytes-of-RAM rather than being "free".
type EnergyModel struct {
	// UJPerCycle is the active-mode CPU energy per cycle.
	UJPerCycle float64
	// UJPerRadioWord is the energy to transmit one 16-bit word.
	UJPerRadioWord float64
	// UJPerRadioPacket is the fixed per-packet overhead (preamble, turnaround).
	UJPerRadioPacket float64
	// UJPerSensorRead is the ADC conversion energy.
	UJPerSensorRead float64
}

// DefaultEnergyModel returns coefficients for a TelosB-class mote at 4 MHz:
// ~1.8 mA · 3 V / 4 MHz ≈ 1.35 nJ per cycle, ~2 µJ per transmitted word,
// 40 µJ fixed per packet, 1 µJ per ADC conversion.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		UJPerCycle:       0.00135,
		UJPerRadioWord:   2.0,
		UJPerRadioPacket: 40.0,
		UJPerSensorRead:  1.0,
	}
}

// Energy returns the estimated energy in microjoules for the given run.
func (e EnergyModel) Energy(s Stats) float64 {
	return float64(s.Cycles)*e.UJPerCycle +
		float64(s.RadioWords)*e.UJPerRadioWord +
		float64(s.RadioPackets)*e.UJPerRadioPacket +
		float64(s.SensorReads)*e.UJPerSensorRead
}
