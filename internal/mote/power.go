package mote

// Intermittent execution: the machine can run from a harvested-energy
// capacitor instead of mains power. Every instruction drains the capacitor
// through the EnergyModel while a HarvestSource trickles charge back in;
// the moment charge falls to the brownout floor the CPU loses power
// mid-procedure. With a checkpoint policy configured the mote persists a
// Checkpoint image (see checkpoint.go) at safe points and resumes from it
// after the capacitor recovers; without one every outage is a cold boot.
//
// Trace semantics under power mode follow the volatile-commit model: with
// checkpointing enabled, TRACE events accumulate in a volatile RAM window
// and are committed to the durable journal only when a checkpoint is
// taken, so a power failure discards exactly the uncommitted tail (the
// torn partial execution, which the restored mote re-executes and
// re-logs). A PowerMarkID record separates the restored epoch from the
// prefix so offline salvage can discard invocations that straddle the
// outage without touching completed ones. Without checkpointing the PR 3
// semantics are unchanged: the whole journal is durable and an outage
// appends an EpochMarkID cold-boot marker.

// PowerMarkID is the reserved trace ID logged when the machine restores
// from a durable checkpoint after a power failure (warm boot). Unlike
// EpochMarkID (cold boot: all machine state lost), frames open at the
// restored checkpoint DO have their enter events in the durable prefix —
// but the time spent between checkpoint and outage is lost and re-run, so
// their eventual exits carry dead time. Decoders treat such straddling
// invocations as lost partials: discarded from duration samples but
// counted per procedure, because the count itself carries information
// (survival bias) the estimator corrects for.
const PowerMarkID int32 = -2

// HarvestSource models the ambient energy input: the instantaneous
// harvest power, in microjoules per cycle, as a pure function of the
// absolute cycle counter. Implementations must be deterministic —
// package fault builds seeded solar-like sources (diurnal envelope ×
// per-window noise) with random access by cycle.
type HarvestSource interface {
	RateUJPerCycle(cycle uint64) float64
}

// CheckpointPolicy decides when a running mote persists a Checkpoint.
// Checkpoints are taken only at safe points (immediately after a TRACE
// instruction, when no instruction is mid-flight). The zero value
// disables checkpointing: power failures then cold-boot exactly like
// watchdog resets.
type CheckpointPolicy struct {
	// EveryKInvocations checkpoints after every K completed top-level
	// invocations (traced returns at nesting depth <= 1). 0 disables the
	// periodic trigger.
	EveryKInvocations int
	// OnLowChargeFrac checkpoints at the next safe point whenever the
	// capacitor charge falls below this fraction of capacity and there
	// are uncommitted trace events. 0 disables the low-charge trigger.
	OnLowChargeFrac float64
	// CostCycles and CostUJ are the price of writing one checkpoint image
	// to non-volatile storage. Zero selects the defaults (512 cycles,
	// 4 µJ — flash-page-write territory).
	CostCycles uint64
	CostUJ     float64
}

// Enabled reports whether any checkpoint trigger is configured.
func (p CheckpointPolicy) Enabled() bool {
	return p.EveryKInvocations > 0 || p.OnLowChargeFrac > 0
}

func (p CheckpointPolicy) withDefaults() CheckpointPolicy {
	if p.CostCycles == 0 {
		p.CostCycles = 512
	}
	if p.CostUJ == 0 {
		p.CostUJ = 4
	}
	return p
}

// PowerConfig attaches a harvested-energy supply to the machine. All
// energy quantities are in microjoules.
type PowerConfig struct {
	// Model prices architectural events; the zero value selects
	// DefaultEnergyModel.
	Model EnergyModel
	// CapacityUJ is the storage capacitor size (0 = 1000 µJ).
	CapacityUJ float64
	// StartChargeUJ is the initial charge (0 = full capacity).
	StartChargeUJ float64
	// BrownoutFloorUJ is the charge at which the CPU loses power
	// (0 = 2% of capacity).
	BrownoutFloorUJ float64
	// RestartChargeUJ is the charge the capacitor must reach before the
	// mote boots again after a power failure (0 = 60% of capacity).
	// Must exceed the brownout floor or the mote oscillates.
	RestartChargeUJ float64
	// RestoreCycles is the boot/restore overhead after recharge
	// (0 = 256 cycles).
	RestoreCycles uint64
	// Harvest is the ambient energy input; nil means no harvesting (the
	// mote runs the capacitor down once and never recovers).
	Harvest HarvestSource
	// Checkpoint selects the checkpoint policy (zero value: none).
	Checkpoint CheckpointPolicy
}

func (p PowerConfig) withDefaults() PowerConfig {
	if p.Model == (EnergyModel{}) {
		p.Model = DefaultEnergyModel()
	}
	if p.CapacityUJ <= 0 {
		p.CapacityUJ = 1000
	}
	if p.StartChargeUJ <= 0 || p.StartChargeUJ > p.CapacityUJ {
		p.StartChargeUJ = p.CapacityUJ
	}
	if p.BrownoutFloorUJ <= 0 {
		p.BrownoutFloorUJ = p.CapacityUJ * 0.02
	}
	if p.RestartChargeUJ <= p.BrownoutFloorUJ {
		p.RestartChargeUJ = p.BrownoutFloorUJ + p.CapacityUJ*0.6
	}
	if p.RestartChargeUJ > p.CapacityUJ {
		p.RestartChargeUJ = p.CapacityUJ
	}
	if p.RestoreCycles == 0 {
		p.RestoreCycles = 256
	}
	p.Checkpoint = p.Checkpoint.withDefaults()
	return p
}

// powerState is the machine-side capacitor bookkeeping.
type powerState struct {
	cfg    PowerConfig
	charge float64
}

// harvestChunkCycles is the integration step for crediting harvest over
// spans the CPU is not executing (outages, reset dead time). The seeded
// sources are piecewise-constant over windows of the same order, so
// chunked integration is near-exact and, critically, deterministic.
const harvestChunkCycles = 1 << 16

// maxDarkCycles bounds one recharge wait. A mote whose harvest source
// never recovers (e.g. rate 0) would otherwise wait forever; instead the
// dark window is capped and the caller's cycle budget ends the run.
const maxDarkCycles = uint64(1) << 32

// credit adds harvested energy to the capacitor, clamped at capacity,
// and accounts the usable part in Stats.HarvestedUJ. Spill (harvest
// arriving on a full capacitor) is not counted as harvested: the
// completed-invocations-per-harvested-joule metric divides by energy the
// mote could actually bank.
func (p *powerState) credit(m *Machine, uj float64) {
	if uj <= 0 {
		return
	}
	if room := p.cfg.CapacityUJ - p.charge; uj > room {
		uj = room
	}
	if uj > 0 {
		p.charge += uj
		m.stats.HarvestedUJ += uj
	}
}

// harvestSpan credits harvest over [start, start+n) cycles of dead time:
// the capacitor charges while the CPU drains nothing. Used for reset
// outages and restore windows so a brownout during recharge never
// double-counts CPU drain (the regression the fault package pins).
func (p *powerState) harvestSpan(m *Machine, start, n uint64) {
	if p.cfg.Harvest == nil {
		return
	}
	for n > 0 {
		step := uint64(harvestChunkCycles)
		if step > n {
			step = n
		}
		p.credit(m, p.cfg.Harvest.RateUJPerCycle(start)*float64(step))
		start += step
		n -= step
	}
}

// recharge integrates harvest from the current cycle until the capacitor
// reaches the restart threshold, returning the dark-window length in
// cycles (capped at maxDarkCycles).
func (p *powerState) recharge(m *Machine) uint64 {
	var dead uint64
	for p.charge < p.cfg.RestartChargeUJ && dead < maxDarkCycles {
		var rate float64
		if p.cfg.Harvest != nil {
			rate = p.cfg.Harvest.RateUJPerCycle(m.stats.Cycles + dead)
		}
		if rate <= 0 && p.cfg.Harvest == nil {
			// No source at all: nothing will ever arrive.
			return maxDarkCycles
		}
		p.credit(m, rate*harvestChunkCycles)
		dead += harvestChunkCycles
	}
	return dead
}

// ckptsEnabled reports whether the volatile-commit trace model is active.
func (m *Machine) ckptsEnabled() bool {
	return m.power != nil && m.power.cfg.Checkpoint.Enabled()
}

// ChargeUJ returns the current capacitor charge, or 0 when the machine is
// mains-powered.
func (m *Machine) ChargeUJ() float64 {
	if m.power == nil {
		return 0
	}
	return m.power.charge
}

// stepPowered wraps one reference-core instruction with capacitor
// accounting: drain the energy-model delta, credit harvest over the
// instruction's cycles, commit checkpoints at safe points, and fail power
// the instant charge reaches the brownout floor.
func (m *Machine) stepPowered() error {
	p := m.power
	e0 := p.cfg.Model.Energy(m.stats)
	c0 := m.stats.Cycles
	t0 := len(m.trace)
	if err := m.stepInstr(); err != nil {
		return err
	}
	drained := p.cfg.Model.Energy(m.stats) - e0
	m.stats.DrainedUJ += drained
	if p.cfg.Harvest != nil {
		p.credit(m, p.cfg.Harvest.RateUJPerCycle(c0)*float64(m.stats.Cycles-c0))
	}
	p.charge -= drained
	if len(m.trace) > t0 {
		m.notePoweredTrace()
	}
	if !m.halted && p.charge <= p.cfg.BrownoutFloorUJ {
		m.powerFail()
	}
	return nil
}

// notePoweredTrace runs after a TRACE instruction appended an event: it
// maintains the invocation-depth counter and fires the checkpoint policy
// at this safe point.
func (m *Machine) notePoweredTrace() {
	ev := m.trace[len(m.trace)-1]
	exited := false
	if ev.ID&1 == 0 {
		m.traceDepth++
	} else {
		if m.traceDepth > 0 {
			m.traceDepth--
		}
		exited = true
		// A traced return at depth <= 1 is a completed top-level
		// invocation (depth 1 = inside main's frame).
		if m.traceDepth <= 1 {
			m.invSinceCkpt++
		}
	}
	pol := m.power.cfg.Checkpoint
	if !pol.Enabled() {
		return
	}
	take := false
	if pol.EveryKInvocations > 0 && exited && m.invSinceCkpt >= pol.EveryKInvocations {
		take = true
	}
	if pol.OnLowChargeFrac > 0 && m.power.charge < pol.OnLowChargeFrac*m.power.cfg.CapacityUJ && len(m.trace) > m.durableLen {
		take = true
	}
	if take {
		m.takeCheckpoint()
	}
}

// takeCheckpoint persists the machine state to the durable image, commits
// the volatile trace window, and pays the checkpoint's energy/time price.
func (m *Machine) takeCheckpoint() {
	p := m.power
	pol := p.cfg.Checkpoint
	c0 := m.stats.Cycles
	m.stats.Cycles += pol.CostCycles
	cost := pol.CostUJ + float64(pol.CostCycles)*p.cfg.Model.UJPerCycle
	m.stats.DrainedUJ += cost
	if p.cfg.Harvest != nil {
		p.credit(m, p.cfg.Harvest.RateUJPerCycle(c0)*float64(pol.CostCycles))
	}
	p.charge -= cost
	m.durableLen = len(m.trace)
	m.ckptImage = m.checkpointNow().encode()
	m.invSinceCkpt = 0
	m.stats.Checkpoints++
}

// powerFail models the capacitor reaching the brownout floor: volatile
// state (including the uncommitted trace window) is lost, the mote sits
// dark until harvest refills the capacitor to the restart threshold, then
// boots — warm from the last durable checkpoint when one decodes cleanly,
// cold otherwise.
func (m *Machine) powerFail() {
	p := m.power
	m.stats.PowerFailures++
	if m.ckptsEnabled() {
		m.stats.LostVolatileEvents += uint64(len(m.trace) - m.durableLen)
		m.trace = m.trace[:m.durableLen]
	}
	dead := p.recharge(m)
	start := m.stats.Cycles
	m.stats.Cycles += dead + p.cfg.RestoreCycles
	m.stats.DownCycles += dead + p.cfg.RestoreCycles
	p.harvestSpan(m, start+dead, p.cfg.RestoreCycles)
	// Watchdog resets scheduled inside the dark window are moot: the CPU
	// they would have reset was already off.
	for m.resetIdx < len(m.cfg.Resets) && m.cfg.Resets[m.resetIdx].AtCycle < m.stats.Cycles {
		m.resetIdx++
	}
	m.bootFromPower()
}

// powerAwareReset handles a scheduled watchdog/brownout reset while on
// harvested power: the outage is dead time during which the capacitor
// keeps charging but the CPU drains nothing (charging CPU drain here
// would double-count the outage — the composition bug the fault package's
// regression test pins). The reboot then goes through the same
// restore-or-cold-boot path as a power failure: the intermittent runtime
// always resumes from its last durable checkpoint when one exists.
func (m *Machine) powerAwareReset(downCycles uint64) {
	start := m.stats.Cycles
	m.stats.Cycles += downCycles
	m.stats.Resets++
	m.stats.DownCycles += downCycles
	m.power.harvestSpan(m, start, downCycles)
	if m.ckptsEnabled() {
		// RAM is cleared by the reset, so the uncommitted window dies with it.
		m.stats.LostVolatileEvents += uint64(len(m.trace) - m.durableLen)
		m.trace = m.trace[:m.durableLen]
	}
	m.bootFromPower()
}

// bootFromPower restores from the durable checkpoint image when possible
// and cold-boots otherwise. A torn or bit-flipped image must never
// restore garbage: the CRC-guarded decoder rejects it and the boot
// degrades to cold (FuzzCheckpointDecode pins the decoder).
func (m *Machine) bootFromPower() {
	if m.ckptsEnabled() && m.ckptImage != nil {
		if ck, err := decodeCheckpoint(m.ckptImage); err == nil && m.restoreFrom(ck) {
			m.stats.Restores++
			if len(m.trace) < m.cfg.MaxTraceEvents {
				m.trace = append(m.trace, TraceEvent{ID: PowerMarkID, Tick: m.Tick()})
			}
			m.durableLen = len(m.trace)
			return
		}
		// Undecodable image: drop it so later boots don't retry it.
		m.ckptImage = nil
	}
	m.clearVolatileState()
	m.traceDepth = 0
	m.invSinceCkpt = 0
	if len(m.trace) < m.cfg.MaxTraceEvents {
		m.trace = append(m.trace, TraceEvent{ID: EpochMarkID, Tick: m.Tick()})
	}
	m.durableLen = len(m.trace)
}

// restoreFrom rebuilds machine state from a decoded checkpoint. It
// reports false when the image does not fit this machine (wrong RAM or
// predictor-table size), which the caller treats like a torn image.
func (m *Machine) restoreFrom(ck *Checkpoint) bool {
	if len(ck.Mem) != len(m.mem) {
		return false
	}
	if m.bimodal != nil {
		if len(ck.Pred) != len(m.bimodal.table) {
			return false
		}
	} else if len(ck.Pred) != 0 {
		return false
	}
	m.pc = ck.PC
	m.sp = ck.SP
	m.regs = ck.Regs
	copy(m.mem, ck.Mem)
	if m.bimodal != nil {
		copy(m.bimodal.table, ck.Pred)
	}
	m.radioBuf = m.radioBuf[:0]
	m.ledState = 0
	m.traceDepth = int(ck.Depth)
	m.invSinceCkpt = int(ck.InvSinceCkpt)
	if tl := int(ck.TraceLen); tl < len(m.trace) {
		m.trace = m.trace[:tl]
	}
	return true
}

// clearVolatileState zeroes everything a power loss or reset destroys:
// CPU registers, RAM, the stack, and peripheral latches. Shared by the
// watchdog reboot path and power-mode cold boots so the two stay
// bit-identical.
func (m *Machine) clearVolatileState() {
	m.pc = 0
	m.sp = int32(m.cfg.RAMWords)
	m.regs = [16]uint16{}
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.radioBuf = m.radioBuf[:0]
	m.ledState = 0
}
