package mote

import (
	"encoding/binary"
	"testing"

	"codetomo/internal/isa"
)

// FuzzFastCore decodes arbitrary bytes into a short program plus a
// machine configuration and requires the fused core and the reference
// core to stay bit-identical: same error, Stats, registers, memory,
// trace, peripherals, and per-branch ground truth — across a tight
// budget installment (cutting runs mid-flight) and a final large one.
//
// Input layout: 8 header bytes (budget scale, tick divider, RAM size,
// trace cap, predictor kind, reset schedule) followed by 5 bytes per
// instruction (opcode, packed registers, immediate).

const fuzzInstrBytes = 5

// decodeFuzzMachine turns fuzz bytes into a program and two identical
// configs with independent mutable state. ok is false when the input is
// too short to describe a machine.
func decodeFuzzMachine(data []byte) (prog []isa.Instr, cfgF, cfgR Config, budget uint64, ok bool) {
	if len(data) < 8+fuzzInstrBytes {
		return nil, Config{}, Config{}, 0, false
	}
	hdr := data[:8]
	body := data[8:]
	n := len(body) / fuzzInstrBytes
	if n > 64 {
		n = 64
	}
	prog = make([]isa.Instr, n)
	numOps := int(isa.PROFCNT) + 1
	for i := 0; i < n; i++ {
		b := body[i*fuzzInstrBytes:]
		op := isa.Op(int(b[0]) % numOps)
		raw := int32(int16(binary.LittleEndian.Uint16(b[3:5])))
		imm := raw
		switch op {
		case isa.JMP, isa.BZ, isa.BNZ, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.CALL:
			// Mostly in range, slightly out on both sides.
			imm = raw%int32(n+2) - 1
		case isa.LD, isa.ST:
			imm = raw % 96
		case isa.SPADJ:
			imm = raw % 8
		case isa.IN, isa.OUT:
			imm = (raw%8 + 8) % 8
		case isa.TRACE, isa.PROFCNT:
			imm = (raw%4 + 4) % 4
		}
		prog[i] = isa.Instr{
			Op:  op,
			Rd:  isa.Reg(b[1] & 15),
			Ra:  isa.Reg(b[1] >> 4),
			Rb:  isa.Reg(b[2] & 15),
			Imm: imm,
		}
	}
	budget = uint64(hdr[0]) * 16
	var resets []ResetEvent
	at := uint64(0)
	for i := 0; i < int(hdr[5]%3); i++ {
		at += 1 + uint64(hdr[6])*uint64(i+1)
		resets = append(resets, ResetEvent{AtCycle: at, DownCycles: uint64(hdr[7] % 64)})
	}
	var traceMax int
	if hdr[3]%4 == 0 {
		traceMax = 1 + int(hdr[3]%8)
	}
	// The high bits of the predictor byte select a flash page-cross
	// penalty at a tiny page size, so short fuzz programs cross pages.
	cost := isa.DefaultCostModel()
	if pp := (hdr[4] / 5) % 4; pp != 0 {
		cost.PageCrossPenalty = uint32(pp)
		cost.PageSizeBytes = 16
	}
	mk := func() Config {
		cfg := Config{
			RAMWords:         16 + int(hdr[2]%49),
			TickDiv:          1 + int(hdr[1]%8),
			MaxTraceEvents:   traceMax,
			ClockOffsetTicks: uint64(hdr[6]) << 4,
			Resets:           resets,
			Cost:             cost,
			Sensor:           &lcgTestSource{s: uint32(hdr[0]) * 2654435761},
			Entropy:          &lcgTestSource{s: uint32(hdr[2]) * 40503},
		}
		switch hdr[4] % 5 {
		case 0:
			cfg.Predictor = StaticNotTaken{}
		case 1:
			cfg.Predictor = BTFN{}
		case 2:
			cfg.Predictor = NewBimodal(2)
		case 3:
			cfg.Predictor = &parityPredictor{seen: make(map[int32]uint64)}
		case 4:
			cfg.Predictor = oddPC{}
		}
		return cfg
	}
	return prog, mk(), mk(), budget, true
}

// encodeFuzzSeed is the inverse of decodeFuzzMachine's body layout, used
// to build a targeted seed corpus.
func encodeFuzzSeed(hdr [8]byte, prog []isa.Instr) []byte {
	out := append([]byte{}, hdr[:]...)
	for _, in := range prog {
		var b [fuzzInstrBytes]byte
		b[0] = byte(in.Op)
		b[1] = byte(in.Rd&15) | byte(in.Ra&15)<<4
		b[2] = byte(in.Rb & 15)
		binary.LittleEndian.PutUint16(b[3:5], uint16(int16(in.Imm)))
		out = append(out, b[:]...)
	}
	return out
}

func FuzzFastCore(f *testing.F) {
	// Branch-heavy loop with a counter (covers taken/not-taken mixes and
	// the budget boundary inside a hot loop).
	f.Add(encodeFuzzSeed([8]byte{40, 3, 10, 1, 1, 0, 0, 0}, []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 20},
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.XORI, Rd: 2, Ra: 2, Imm: 1},
		{Op: isa.BNZ, Ra: 2, Imm: 1},
		{Op: isa.BNZ, Ra: 1, Imm: 1},
		{Op: isa.HALT},
	}))
	// Faults and resets: memory fault after a reset schedule fires.
	f.Add(encodeFuzzSeed([8]byte{200, 1, 4, 2, 0, 2, 30, 9}, []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 100},
		{Op: isa.ST, Ra: 1, Rb: 2, Imm: 50},
		{Op: isa.JMP, Imm: 0},
	}))
	// Trace records against a tiny trace cap (overflow), timer reads.
	f.Add(encodeFuzzSeed([8]byte{100, 2, 8, 4, 2, 0, 5, 0}, []isa.Instr{
		{Op: isa.IN, Rd: 3, Imm: isa.PortTimer},
		{Op: isa.TRACE, Imm: 1},
		{Op: isa.TRACE, Imm: 2},
		{Op: isa.JMP, Imm: 0},
	}))
	// Stack ops: call/ret, push/pop, stack faults via SPADJ.
	f.Add(encodeFuzzSeed([8]byte{80, 4, 2, 1, 3, 1, 11, 3}, []isa.Instr{
		{Op: isa.CALL, Imm: 3},
		{Op: isa.PUSH, Ra: 1},
		{Op: isa.HALT},
		{Op: isa.GETSP, Rd: 4},
		{Op: isa.SPADJ, Imm: -4},
		{Op: isa.POP, Rd: 5},
		{Op: isa.RET},
	}))
	// Page-cross penalty active (hdr[4]=6: BTFN, penalty 1 at 16-byte
	// pages): a backward loop branch that straddles a page boundary.
	f.Add(encodeFuzzSeed([8]byte{60, 2, 12, 1, 6, 0, 0, 0}, []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 6},
		{Op: isa.ADDI, Rd: 2, Ra: 2, Imm: 3},
		{Op: isa.XORI, Rd: 2, Ra: 2, Imm: 5},
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.BNZ, Ra: 1, Imm: 1},
		{Op: isa.JMP, Imm: 7},
		{Op: isa.NOP},
		{Op: isa.HALT},
	}))
	// Division fault plus radio/debug output.
	f.Add(encodeFuzzSeed([8]byte{60, 1, 16, 3, 4, 0, 0, 0}, []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 7},
		{Op: isa.OUT, Ra: 1, Imm: isa.PortRadioData},
		{Op: isa.OUT, Ra: 1, Imm: isa.PortRadioCtl},
		{Op: isa.OUT, Ra: 1, Imm: isa.PortDebug},
		{Op: isa.DIV, Rd: 2, Ra: 1, Rb: 3},
		{Op: isa.HALT},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, cfgF, cfgR, budget, ok := decodeFuzzMachine(data)
		if !ok {
			return
		}
		fused := New(prog, cfgF)
		ref := New(prog, cfgR)
		for k, b := range []uint64{budget, 20000} {
			errF := fused.Run(b)
			errR := ref.RunReference(b)
			compareState(t, "installment "+string(rune('0'+k)), fused, ref, errF, errR)
		}
	})
}
