package mote

import "codetomo/internal/isa"

// Reset reinitializes the machine in place for a fresh run of the same
// program under a (possibly different) configuration. New(prog, cfg) and
// Reset(cfg) on an already-used machine leave bit-identical state — the
// fleet's machine-reuse determinism rests on that, pinned by
// TestResetMatchesNew — but Reset reuses every buffer whose shape is
// unchanged: RAM is re-zeroed in place, the trace/radio/debug buffers are
// truncated, and the dense branch and profile tables are cleared. A worker
// simulating a fleet can therefore run one mote after another with zero
// steady-state allocations on the mains-powered path (pinned by
// TestResetRunAllocatesNothing); only a shape change (different RAMWords,
// harvested-power state) allocates. The compiled program and the cost
// model are shared read-only and never touched.
func (m *Machine) Reset(cfg Config) {
	if cfg.RAMWords <= 0 {
		cfg.RAMWords = isa.DefaultRAMWords
	}
	if cfg.TickDiv <= 0 {
		cfg.TickDiv = 8
	}
	if cfg.Predictor == nil {
		cfg.Predictor = StaticNotTaken{}
	}
	if cfg.Cost == nil {
		cfg.Cost = isa.DefaultCostModel()
	}
	if cfg.MaxTraceEvents <= 0 {
		cfg.MaxTraceEvents = 1 << 22
	}
	if cfg.Sensor == nil {
		cfg.Sensor = zeroSource{}
	}
	if cfg.Entropy == nil {
		cfg.Entropy = zeroSource{}
	}
	m.cfg = cfg

	m.pc = 0
	m.sp = int32(cfg.RAMWords)
	m.regs = [16]uint16{}
	if len(m.mem) == cfg.RAMWords {
		for i := range m.mem {
			m.mem[i] = 0
		}
	} else {
		m.mem = make([]uint16, cfg.RAMWords)
	}
	m.halted = false
	m.resetIdx = 0

	m.ledState = 0
	m.radioBuf = m.radioBuf[:0]
	m.debugOut = m.debugOut[:0]
	m.trace = m.trace[:0]
	if len(m.profCnt) == len(m.prog) {
		for i := range m.profCnt {
			m.profCnt[i] = 0
		}
	} else {
		m.profCnt = make([]uint64, len(m.prog))
	}
	if len(m.branchStat) == len(m.prog) {
		for i := range m.branchStat {
			m.branchStat[i] = BranchStat{}
		}
	} else {
		m.branchStat = make([]BranchStat, len(m.prog))
	}

	m.costs = [256]uint32{}
	for op, cyc := range cfg.Cost.Cycles {
		m.costs[op] = cyc
	}
	m.penalty = uint64(cfg.Cost.TakenPenalty)
	m.pageOf = cfg.Cost.PageTable(m.prog)
	m.pagePen = uint64(cfg.Cost.PageCrossPenalty)
	m.bimodal = nil
	m.trainable = nil
	switch p := cfg.Predictor.(type) {
	case StaticNotTaken:
		m.predKind = predNotTaken
	case BTFN:
		m.predKind = predBTFN
	case *Bimodal:
		// A shared *Bimodal keeps its trained table across machines, exactly
		// as New leaves it; resetting it here would change single-machine
		// semantics.
		m.predKind = predBimodal
		m.bimodal = p
	default:
		m.predKind = predGeneric
		m.trainable, _ = cfg.Predictor.(TrainablePredictor)
	}

	m.power = nil
	if cfg.Power != nil {
		pw := cfg.Power.withDefaults()
		m.cfg.Power = &pw
		m.power = &powerState{cfg: pw, charge: pw.StartChargeUJ}
	}
	m.durableLen = 0
	m.traceDepth = 0
	m.invSinceCkpt = 0
	m.ckptImage = nil
	m.stats = Stats{}
}

// AddBranchStatsTo accumulates this machine's dense ground-truth branch
// table into dst, which must span the program (len(dst) >= program
// length). The fleet's streaming pipeline folds per-mote tables into one
// oracle this way, without materializing a map per mote.
func (m *Machine) AddBranchStatsTo(dst []BranchStat) {
	for pc := range m.branchStat {
		st := &m.branchStat[pc]
		if st.Taken == 0 && st.NotTaken == 0 {
			continue
		}
		d := &dst[pc]
		d.Taken += st.Taken
		d.NotTaken += st.NotTaken
		d.Mispred += st.Mispred
	}
}
