package mote

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"codetomo/internal/isa"
)

// The differential property test: the fused core (Run) and the reference
// core (Step/RunReference) must be bit-identical on random programs under
// random configurations — same error (or none), same Stats, registers,
// pc, sp, data memory, trace buffer, peripheral state, ground-truth
// branch table, and profiling counters. Budgets are fed in installments
// so budget exhaustion and resumption land mid-run, and reset schedules
// force the fused core through multiple cycle-bounded segments.

// lcgTestSource is a deterministic peripheral feed; each core gets its
// own instance with the same seed so sampled values match step for step.
type lcgTestSource struct{ s uint32 }

func (l *lcgTestSource) Next() uint16 {
	l.s = l.s*1664525 + 1013904223
	return uint16(l.s >> 16)
}

// parityPredictor is a custom trainable predictor the machine cannot
// devirtualize, exercising the generic interface path in both cores.
type parityPredictor struct{ seen map[int32]uint64 }

func (p *parityPredictor) PredictTaken(pc int32, _ isa.Instr) bool {
	return (p.seen[pc]+uint64(pc))%2 == 1
}

func (p *parityPredictor) Train(pc int32, taken bool) {
	if taken {
		p.seen[pc]++
	}
}

func (p *parityPredictor) Name() string { return "test-parity" }

// oddPC is a custom non-trainable predictor (generic path, no Train).
type oddPC struct{}

func (oddPC) PredictTaken(pc int32, _ isa.Instr) bool { return pc%2 == 1 }

func (oddPC) Name() string { return "test-oddpc" }

// randInstr draws one instruction with valid opcode and register fields.
// Branch and jump targets usually land inside the program (with a tail of
// out-of-range targets to exercise pc faults), memory offsets hover
// around the valid window, and ports/IDs stay in their small ranges.
func randInstr(r *rand.Rand, progLen, ramWords int) isa.Instr {
	// Weighted opcode choice: branch-heavy, with all opcode classes
	// represented.
	ops := []isa.Op{
		isa.NOP, isa.LDI, isa.LDI, isa.MOV, isa.ADD, isa.SUB, isa.MUL,
		isa.DIV, isa.MOD, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.SAR, isa.ADDI, isa.ADDI, isa.XORI, isa.SLT, isa.SLTU, isa.SEQ,
		isa.LD, isa.ST, isa.PUSH, isa.POP, isa.SPADJ, isa.GETSP,
		isa.JMP, isa.BZ, isa.BZ, isa.BNZ, isa.BNZ, isa.BEQ, isa.BNE,
		isa.BLT, isa.BGE, isa.CALL, isa.RET, isa.IN, isa.OUT,
		isa.TRACE, isa.TRACE, isa.PROFCNT, isa.HALT,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Instr{
		Op: op,
		Rd: isa.Reg(r.Intn(16)),
		Ra: isa.Reg(r.Intn(16)),
		Rb: isa.Reg(r.Intn(16)),
	}
	switch op {
	case isa.JMP, isa.BZ, isa.BNZ, isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.CALL:
		if r.Intn(10) == 0 {
			in.Imm = int32(r.Intn(2*progLen+4)) - int32(progLen) - 2 // may be out of range
		} else {
			in.Imm = int32(r.Intn(progLen))
		}
	case isa.LD, isa.ST:
		in.Imm = int32(r.Intn(ramWords+8)) - 4 // mostly valid, some faults
	case isa.SPADJ:
		in.Imm = int32(r.Intn(9)) - 4
	case isa.IN, isa.OUT:
		in.Imm = int32(r.Intn(8)) // ports 0..6 plus one unmapped
	case isa.TRACE, isa.PROFCNT:
		in.Imm = int32(r.Intn(4))
	case isa.LDI, isa.ADDI, isa.XORI:
		in.Imm = int32(r.Intn(1<<16)) - (1 << 15)
	}
	return in
}

func randProg(r *rand.Rand, ramWords int) []isa.Instr {
	n := 4 + r.Intn(37)
	prog := make([]isa.Instr, n)
	for i := range prog {
		prog[i] = randInstr(r, n, ramWords)
	}
	prog[n-1] = isa.Instr{Op: isa.HALT}
	return prog
}

// randCfgPair builds two identical configurations with independent
// mutable parts (predictor state, peripheral streams) so the two cores
// cannot influence each other.
func randCfgPair(r *rand.Rand) (Config, Config) {
	ram := 16 + r.Intn(49)
	tick := 1 + r.Intn(8)
	var traceMax int
	if r.Intn(3) == 0 {
		traceMax = 1 + r.Intn(4) // tiny: exercise trace overflow
	}
	offset := uint64(r.Intn(1 << 12))
	var resets []ResetEvent
	at := uint64(0)
	for i := r.Intn(4); i > 0; i-- {
		at += 1 + uint64(r.Intn(800))
		resets = append(resets, ResetEvent{AtCycle: at, DownCycles: uint64(r.Intn(50))})
	}
	seed := r.Uint32()
	predKind := r.Intn(5)
	// Half the configurations run with a flash page-cross penalty at a
	// tiny page size, so random short programs still straddle pages and
	// the fused core's page charge is exercised against the reference.
	cost := isa.DefaultCostModel()
	if pp := r.Intn(4); pp >= 2 {
		cost.PageCrossPenalty = uint32(pp)
		cost.PageSizeBytes = uint32(8 << r.Intn(3)) // 8, 16, or 32 bytes
	}
	mk := func() Config {
		cfg := Config{
			RAMWords:         ram,
			TickDiv:          tick,
			MaxTraceEvents:   traceMax,
			ClockOffsetTicks: offset,
			Resets:           resets,
			Cost:             cost,
			Sensor:           &lcgTestSource{s: seed},
			Entropy:          &lcgTestSource{s: seed ^ 0x9e3779b9},
		}
		switch predKind {
		case 0:
			cfg.Predictor = StaticNotTaken{}
		case 1:
			cfg.Predictor = BTFN{}
		case 2:
			cfg.Predictor = NewBimodal(3)
		case 3:
			cfg.Predictor = &parityPredictor{seen: make(map[int32]uint64)}
		case 4:
			cfg.Predictor = oddPC{}
		}
		return cfg
	}
	return mk(), mk()
}

// compareState asserts every observable (and internal) piece of machine
// state matches between the fused-core and reference-core machines.
func compareState(t *testing.T, tag string, fused, ref *Machine, errF, errR error) {
	t.Helper()
	if (errF == nil) != (errR == nil) || (errF != nil && errF.Error() != errR.Error()) {
		t.Fatalf("%s: error mismatch:\n  fused: %v\n  ref:   %v", tag, errF, errR)
	}
	if fused.stats != ref.stats {
		t.Fatalf("%s: stats mismatch:\n  fused: %+v\n  ref:   %+v", tag, fused.stats, ref.stats)
	}
	if fused.pc != ref.pc || fused.sp != ref.sp || fused.halted != ref.halted {
		t.Fatalf("%s: pc/sp/halted mismatch: fused pc=%d sp=%d halted=%v, ref pc=%d sp=%d halted=%v",
			tag, fused.pc, fused.sp, fused.halted, ref.pc, ref.sp, ref.halted)
	}
	if fused.regs != ref.regs {
		t.Fatalf("%s: register mismatch:\n  fused: %v\n  ref:   %v", tag, fused.regs, ref.regs)
	}
	if !reflect.DeepEqual(fused.mem, ref.mem) {
		t.Fatalf("%s: data memory mismatch", tag)
	}
	if !reflect.DeepEqual(fused.trace, ref.trace) {
		t.Fatalf("%s: trace mismatch:\n  fused: %v\n  ref:   %v", tag, fused.trace, ref.trace)
	}
	if !reflect.DeepEqual(fused.branchStat, ref.branchStat) {
		t.Fatalf("%s: branch ground truth mismatch", tag)
	}
	if !reflect.DeepEqual(fused.profCnt, ref.profCnt) {
		t.Fatalf("%s: profile counter mismatch", tag)
	}
	if !reflect.DeepEqual(fused.debugOut, ref.debugOut) ||
		!reflect.DeepEqual(fused.radioBuf, ref.radioBuf) ||
		fused.ledState != ref.ledState {
		t.Fatalf("%s: peripheral state mismatch", tag)
	}
}

func TestDifferentialFusedVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(0x7060C0DE))
	const cases = 600
	for c := 0; c < cases; c++ {
		cfgF, cfgR := randCfgPair(r)
		prog := randProg(r, cfgF.RAMWords)
		fused := New(prog, cfgF)
		ref := New(prog, cfgR)

		// Feed the budget in installments so exhaustion and resumption
		// land mid-run; the final installment is large enough for any
		// halting program to finish and bounds the non-halting ones.
		budget := uint64(r.Intn(600))
		installments := []uint64{budget, budget + uint64(r.Intn(2000)), 50000}
		for k, b := range installments {
			errF := fused.Run(b)
			errR := ref.RunReference(b)
			tag := fmt.Sprintf("case %d installment %d budget %d", c, k, b)
			compareState(t, tag, fused, ref, errF, errR)
			// A fault is not terminal for the comparison: rerunning a
			// faulted machine re-executes the faulting instruction in
			// both cores, which the next installment verifies too.
		}
	}
}
