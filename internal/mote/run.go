package mote

import (
	"fmt"

	"codetomo/internal/isa"
)

// Devirtualized predictor kinds, resolved once in New from the concrete
// type of Config.Predictor. The fused loop dispatches on this small
// integer instead of making an interface call (plus a TrainablePredictor
// type assertion) per conditional branch.
const (
	predGeneric uint8 = iota // unknown implementation: interface calls
	predNotTaken
	predBTFN
	predBimodal
)

// Run executes until HALT, an execution fault, or the cycle budget is
// exhausted. A HALT stop returns nil; budget exhaustion returns
// ErrCycleBudget wrapped with position info.
//
// Run is the fused interpreter core: instead of calling Step once per
// instruction it dispatches inline, with the per-instruction overheads
// hoisted out of the loop — the fault-reset schedule and budget checks
// collapse into cycle-bounded segments, the predictor is devirtualized,
// branch ground truth lands in a dense pc-indexed table, and the opcode
// cost table is a flat 256-entry array. It allocates nothing per
// instruction. The differential property test and FuzzFastCore pin it
// bit-identical to the Step/RunReference core: same Stats (including the
// cycle count and pc reported on budget exhaustion), trace, registers,
// and memory.
func (m *Machine) Run(maxCycles uint64) error {
	if m.power != nil {
		// Intermittent execution drains the capacitor per instruction, so
		// there are no reset-free segments to fuse: delegate to the
		// per-instruction reference loop. Both cores are then identical by
		// construction under power mode.
		return m.RunReference(maxCycles)
	}
	for !m.halted {
		if m.stats.Cycles >= maxCycles {
			return fmt.Errorf("%w at pc=%d after %d instructions", ErrCycleBudget, m.pc, m.stats.Instructions)
		}
		if m.resetIdx < len(m.cfg.Resets) && m.stats.Cycles >= m.cfg.Resets[m.resetIdx].AtCycle {
			m.reboot(m.cfg.Resets[m.resetIdx].DownCycles)
			m.resetIdx++
			continue
		}
		// Within [Cycles, stop) neither the budget nor a reset can fire,
		// so the inner loop needs no per-instruction schedule checks. Both
		// bounds are strictly above the current cycle count here, so every
		// segment makes progress and exits with the exact cycle count and
		// pc the per-Step checks of the reference core would see.
		stop := maxCycles
		if m.resetIdx < len(m.cfg.Resets) && m.cfg.Resets[m.resetIdx].AtCycle < stop {
			stop = m.cfg.Resets[m.resetIdx].AtCycle
		}
		if err := m.runSegment(stop); err != nil {
			return err
		}
	}
	return nil
}

// runSegment is the hot dispatch loop: execute instructions until the
// cycle counter reaches stop, the program halts, or an execution fault
// stops it.
//
// Only the values live across every iteration — pc, cycles, instrs, and
// the program slice — are held in locals; everything else is addressed
// off m, which occupies a single register. Keeping the cross-iteration
// set this small is what lets the compiler keep the dispatch tail free
// of stack traffic: with more live values each switch case ends in a
// dozen spill/reload moves to satisfy the loop-head merge, which costs
// more than the interpreted work itself. For the same reason HALT
// returns directly (no per-instruction halted flag) and faults jump to
// a cold shared exit, so the hot tail is just the cycle charge and the
// pc update.
func (m *Machine) runSegment(stop uint64) error {
	prog := m.prog
	pc := m.pc
	cycles, instrs := m.stats.Cycles, m.stats.Instructions
	var err error

	for cycles < stop {
		i := int(pc)
		if uint(i) >= uint(len(prog)) {
			err = fmt.Errorf("%w: pc=%d", ErrPCFault, pc)
			goto fault
		}
		in := &prog[i]
		cost := uint64(m.costs[in.Op])
		next := pc + 1
		instrs++

		switch in.Op {
		case isa.NOP:
		case isa.HALT:
			m.halted = true
			m.pc = next
			m.stats.Cycles, m.stats.Instructions = cycles+cost, instrs
			return nil
		case isa.LDI:
			m.regs[in.Rd] = uint16(in.Imm)
		case isa.MOV:
			m.regs[in.Rd] = m.regs[in.Ra]
		case isa.ADD:
			m.regs[in.Rd] = m.regs[in.Ra] + m.regs[in.Rb]
		case isa.SUB:
			m.regs[in.Rd] = m.regs[in.Ra] - m.regs[in.Rb]
		case isa.MUL:
			m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) * int16(m.regs[in.Rb]))
		case isa.DIV:
			if m.regs[in.Rb] == 0 {
				err = fmt.Errorf("%w at pc=%d", ErrDivByZero, pc)
				goto fault
			}
			m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) / int16(m.regs[in.Rb]))
		case isa.MOD:
			if m.regs[in.Rb] == 0 {
				err = fmt.Errorf("%w at pc=%d", ErrDivByZero, pc)
				goto fault
			}
			m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) % int16(m.regs[in.Rb]))
		case isa.AND:
			m.regs[in.Rd] = m.regs[in.Ra] & m.regs[in.Rb]
		case isa.OR:
			m.regs[in.Rd] = m.regs[in.Ra] | m.regs[in.Rb]
		case isa.XOR:
			m.regs[in.Rd] = m.regs[in.Ra] ^ m.regs[in.Rb]
		case isa.SHL:
			m.regs[in.Rd] = m.regs[in.Ra] << (m.regs[in.Rb] & 15)
		case isa.SHR:
			m.regs[in.Rd] = m.regs[in.Ra] >> (m.regs[in.Rb] & 15)
		case isa.SAR:
			m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) >> (m.regs[in.Rb] & 15))
		case isa.ADDI:
			m.regs[in.Rd] = m.regs[in.Ra] + uint16(in.Imm)
		case isa.XORI:
			m.regs[in.Rd] = m.regs[in.Ra] ^ uint16(in.Imm)
		case isa.SLT:
			m.regs[in.Rd] = boolWord(int16(m.regs[in.Ra]) < int16(m.regs[in.Rb]))
		case isa.SLTU:
			m.regs[in.Rd] = boolWord(m.regs[in.Ra] < m.regs[in.Rb])
		case isa.SEQ:
			m.regs[in.Rd] = boolWord(m.regs[in.Ra] == m.regs[in.Rb])
		case isa.LD:
			addr := int32(int16(m.regs[in.Ra])) + in.Imm
			if addr < 0 || int(addr) >= len(m.mem) {
				err = fmt.Errorf("%w: load addr %d at pc=%d", ErrMemFault, addr, pc)
				goto fault
			}
			m.regs[in.Rd] = m.mem[addr]
			m.stats.LoadsStores++
		case isa.ST:
			addr := int32(int16(m.regs[in.Ra])) + in.Imm
			if addr < 0 || int(addr) >= len(m.mem) {
				err = fmt.Errorf("%w: store addr %d at pc=%d", ErrMemFault, addr, pc)
				goto fault
			}
			m.mem[addr] = m.regs[in.Rb]
			m.stats.LoadsStores++
		case isa.PUSH:
			if m.sp <= 0 {
				err = fmt.Errorf("%w: push with sp=%d at pc=%d", ErrStackFault, m.sp, pc)
				goto fault
			}
			m.sp--
			m.mem[m.sp] = m.regs[in.Ra]
		case isa.POP:
			if int(m.sp) >= len(m.mem) {
				err = fmt.Errorf("%w: pop with sp=%d at pc=%d", ErrStackFault, m.sp, pc)
				goto fault
			}
			m.regs[in.Rd] = m.mem[m.sp]
			m.sp++
		case isa.SPADJ:
			ns := m.sp + in.Imm
			if ns < 0 || int(ns) > len(m.mem) {
				err = fmt.Errorf("%w: spadj to %d at pc=%d", ErrStackFault, ns, pc)
				goto fault
			}
			m.sp = ns
		case isa.GETSP:
			m.regs[in.Rd] = uint16(m.sp)
		case isa.JMP:
			next = in.Imm
			if m.pageOf != nil && uint(next) < uint(len(m.pageOf)) && m.pageOf[next] != m.pageOf[pc] {
				cost += m.pagePen
				m.stats.PageCrossings++
			}
		case isa.BZ, isa.BNZ, isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			var taken bool
			switch in.Op {
			case isa.BZ:
				taken = m.regs[in.Ra] == 0
			case isa.BNZ:
				taken = m.regs[in.Ra] != 0
			case isa.BEQ:
				taken = m.regs[in.Ra] == m.regs[in.Rb]
			case isa.BNE:
				taken = m.regs[in.Ra] != m.regs[in.Rb]
			case isa.BLT:
				taken = int16(m.regs[in.Ra]) < int16(m.regs[in.Rb])
			case isa.BGE:
				taken = int16(m.regs[in.Ra]) >= int16(m.regs[in.Rb])
			}
			m.stats.CondBranches++
			bs := &m.branchStat[pc]
			var predicted bool
			switch m.predKind {
			case predNotTaken:
				// predicted stays false
			case predBTFN:
				predicted = in.Imm <= pc
			case predBimodal:
				predicted = m.bimodal.table[pc&m.bimodal.mask] >= 2
			default:
				predicted = m.cfg.Predictor.PredictTaken(pc, *in)
			}
			if taken {
				m.stats.TakenBranches++
				bs.Taken++
				next = in.Imm
				if m.pageOf != nil && uint(next) < uint(len(m.pageOf)) && m.pageOf[next] != m.pageOf[pc] {
					cost += m.pagePen
					m.stats.PageCrossings++
				}
			} else {
				bs.NotTaken++
			}
			if predicted != taken {
				m.stats.Mispredicts++
				bs.Mispred++
				cost += m.penalty
			}
			switch m.predKind {
			case predBimodal:
				t := m.bimodal.table
				j := pc & m.bimodal.mask
				if taken {
					if t[j] < 3 {
						t[j]++
					}
				} else if t[j] > 0 {
					t[j]--
				}
			case predGeneric:
				if m.trainable != nil {
					m.trainable.Train(pc, taken)
				}
			}
		case isa.CALL:
			if m.sp <= 0 {
				err = fmt.Errorf("%w: call with sp=%d at pc=%d", ErrStackFault, m.sp, pc)
				goto fault
			}
			m.sp--
			m.mem[m.sp] = uint16(pc + 1)
			next = in.Imm
			m.stats.Calls++
		case isa.RET:
			if int(m.sp) >= len(m.mem) {
				err = fmt.Errorf("%w: ret with sp=%d at pc=%d", ErrStackFault, m.sp, pc)
				goto fault
			}
			next = int32(m.mem[m.sp])
			m.sp++
		case isa.IN:
			switch in.Imm {
			case isa.PortTimer:
				m.regs[in.Rd] = uint16(cycles/uint64(m.cfg.TickDiv) + m.cfg.ClockOffsetTicks)
			case isa.PortADC:
				// Saturate at the converter rails, exactly as Step does.
				m.regs[in.Rd] = isa.ClampADC(m.cfg.Sensor.Next())
				m.stats.SensorReads++
			case isa.PortRNG:
				m.regs[in.Rd] = m.cfg.Entropy.Next()
			case isa.PortRadioCtl:
				m.regs[in.Rd] = 1 // last TX always succeeded in this model
			default:
				m.regs[in.Rd] = 0
			}
		case isa.OUT:
			v := m.regs[in.Ra]
			switch in.Imm {
			case isa.PortLED:
				m.ledState = v
				m.stats.LEDWrites++
			case isa.PortRadioData:
				m.radioBuf = append(m.radioBuf, v)
			case isa.PortRadioCtl:
				if v != 0 {
					m.stats.RadioPackets++
					m.stats.RadioWords += uint64(len(m.radioBuf))
					m.radioBuf = m.radioBuf[:0]
				}
			case isa.PortDebug:
				m.debugOut = append(m.debugOut, v)
			}
		case isa.TRACE:
			if len(m.trace) >= m.cfg.MaxTraceEvents {
				err = fmt.Errorf("%w: %d events", ErrTraceOverflow, len(m.trace))
				goto fault
			}
			m.trace = append(m.trace, TraceEvent{ID: in.Imm, Tick: cycles/uint64(m.cfg.TickDiv) + m.cfg.ClockOffsetTicks})
		case isa.PROFCNT:
			m.profCnt[i]++
		default:
			err = fmt.Errorf("%w: opcode %v at pc=%d", ErrBadInstr, in.Op, pc)
			goto fault
		}

		cycles += cost
		pc = next
	}

	m.pc = pc
	m.stats.Cycles, m.stats.Instructions = cycles, instrs
	return nil

fault:
	// Faults charge no cycles and leave pc on the faulting instruction,
	// but the instruction itself was counted — same as the reference core.
	m.pc = pc
	m.stats.Cycles, m.stats.Instructions = cycles, instrs
	return err
}
