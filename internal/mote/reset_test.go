package mote

import (
	"reflect"
	"testing"

	"codetomo/internal/isa"
)

// resetProg exercises every per-run mutable surface Reset must clear:
// branches (dense branchStat), PROFCNT counters, TRACE events, ADC reads,
// RAM stores, and the radio/debug/LED peripherals.
func resetProg(n int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: n},
		{Op: isa.TRACE, Imm: 0},               // 1: loop head, proc-0 enter
		{Op: isa.IN, Rd: 2, Imm: isa.PortADC}, // sensor-dependent state
		{Op: isa.ST, Ra: 0, Rb: 2, Imm: 4},    // touch RAM at word 4
		{Op: isa.PROFCNT, Imm: 7},
		{Op: isa.XORI, Rd: 3, Ra: 3, Imm: 1},
		{Op: isa.BNZ, Ra: 3, Imm: 8}, // alternating, trains branchStat
		{Op: isa.NOP},
		{Op: isa.OUT, Ra: 2, Imm: isa.PortRadioData}, // 8
		{Op: isa.OUT, Ra: 2, Imm: isa.PortLED},
		{Op: isa.TRACE, Imm: 1}, // proc-0 exit
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1},
		{Op: isa.BNZ, Ra: 1, Imm: 1},
		{Op: isa.HALT},
	}
}

// snapshot copies every piece of machine state a program can observe or a
// caller can extract, so two machines can be compared field by field.
func snapshot(m *Machine) map[string]any {
	return map[string]any{
		"pc":         m.pc,
		"sp":         m.sp,
		"regs":       m.regs,
		"mem":        append([]uint16(nil), m.mem...),
		"halted":     m.halted,
		"resetIdx":   m.resetIdx,
		"led":        m.ledState,
		"radio":      append([]uint16(nil), m.radioBuf...),
		"debug":      append([]uint16(nil), m.debugOut...),
		"trace":      append([]TraceEvent(nil), m.trace...),
		"profCnt":    append([]uint64(nil), m.profCnt...),
		"branchStat": append([]BranchStat(nil), m.branchStat...),
		"costs":      m.costs,
		"penalty":    m.penalty,
		"predKind":   m.predKind,
		"durableLen": m.durableLen,
		"traceDepth": m.traceDepth,
		"stats":      m.stats,
	}
}

// TestResetMatchesNew pins the machine-reuse determinism contract: running
// a program on a Reset machine — after it already ran something else,
// under a different configuration — leaves state bit-identical to running
// it on a freshly constructed machine. The fleet's streaming pipeline
// reuses one machine per worker on exactly this guarantee.
func TestResetMatchesNew(t *testing.T) {
	prog := resetProg(50)
	cfg := DefaultConfig()
	cfg.RAMWords = 128
	cfg.TickDiv = 4
	cfg.Predictor = BTFN{}

	dirty := New(prog, cfg)
	// Dirty the machine thoroughly first: a different shape (RAMWords), a
	// different predictor, and a mid-run watchdog reset.
	dirtyCfg := DefaultConfig()
	dirtyCfg.RAMWords = 64
	dirtyCfg.Predictor = StaticNotTaken{}
	dirtyCfg.Resets = []ResetEvent{{AtCycle: 500}}
	dirty.Reset(dirtyCfg)
	if err := dirty.Run(200_000); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		fresh := New(prog, cfg)
		if err := fresh.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
		dirty.Reset(cfg)
		if err := dirty.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
		fs, ds := snapshot(fresh), snapshot(dirty)
		for k, fv := range fs {
			if !reflect.DeepEqual(fv, ds[k]) {
				t.Fatalf("round %d: %s diverged after Reset:\nfresh: %+v\nreset: %+v", round, k, fv, ds[k])
			}
		}
		if len(dirty.trace) == 0 || dirty.stats.CondBranches == 0 {
			t.Fatalf("round %d: program did not exercise trace/branch state", round)
		}
	}
}

// TestResetHonorsDefaults pins that Reset applies the same zero-value
// defaulting as New (a cfg with holes must not carry the previous run's
// values through).
func TestResetHonorsDefaults(t *testing.T) {
	prog := resetProg(3)
	custom := DefaultConfig()
	custom.RAMWords = 64
	custom.TickDiv = 16
	m := New(prog, custom)
	m.Reset(Config{})
	if got, want := len(m.mem), isa.DefaultRAMWords; got != want {
		t.Fatalf("RAMWords after Reset(Config{}): %d, want default %d", got, want)
	}
	if m.cfg.TickDiv != 8 {
		t.Fatalf("TickDiv after Reset(Config{}): %d, want default 8", m.cfg.TickDiv)
	}
	if m.cfg.Predictor == nil || m.cfg.Cost == nil {
		t.Fatal("predictor/cost defaults not applied by Reset")
	}
}

// TestResetRunAllocatesNothing pins the fleet's steady-state allocation
// contract: after warmup, Reset + Run on the mains-powered path allocates
// nothing — RAM is re-zeroed in place and the instrumentation tables are
// cleared, not reallocated. The trace buffer is excluded by sizing the
// run so append never grows it past the warmup capacity.
func TestResetRunAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	prog := branchyProg(2, 500)
	cfg := benchCfg() // Cost and Predictor set: Reset shares them read-only
	m := New(prog, cfg)
	if err := m.Run(1 << 40); err != nil { // warmup sizes every buffer
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		m.Reset(cfg)
		if err := m.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Reset+Run: %v allocs per mote, want 0", avg)
	}
}
