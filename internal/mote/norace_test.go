//go:build !race

package mote

// raceEnabled reports whether the race detector instruments this build;
// the zero-allocation assertions skip under it.
const raceEnabled = false
