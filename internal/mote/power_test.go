package mote

import (
	"math"
	"reflect"
	"testing"

	"codetomo/internal/isa"
)

// constRate is a flat harvest source for tests.
type constRate float64

func (c constRate) RateUJPerCycle(uint64) float64 { return float64(c) }

// tracedLoopProg is a main frame (proc 0) around n handler invocations
// (proc 1), each spinning a small work loop. TRACE ids follow the 2k/2k+1
// enter/exit convention.
func tracedLoopProg(n, work int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.TRACE, Imm: 0},            // 0: enter main
		{Op: isa.LDI, Rd: 1, Imm: n},       // 1
		{Op: isa.TRACE, Imm: 2},            // 2: enter handler
		{Op: isa.LDI, Rd: 2, Imm: work},    // 3
		{Op: isa.LDI, Rd: 3, Imm: 1},       // 4
		{Op: isa.SUB, Rd: 2, Ra: 2, Rb: 3}, // 5: work loop
		{Op: isa.BNZ, Ra: 2, Imm: 5},       // 6
		{Op: isa.TRACE, Imm: 3},            // 7: exit handler
		{Op: isa.SUB, Rd: 1, Ra: 1, Rb: 3}, // 8
		{Op: isa.BNZ, Ra: 1, Imm: 2},       // 9
		{Op: isa.TRACE, Imm: 1},            // 10: exit main
		{Op: isa.HALT},                     // 11
	}
}

func countID(trace []TraceEvent, id int32) int {
	n := 0
	for _, ev := range trace {
		if ev.ID == id {
			n++
		}
	}
	return n
}

// TestPowerDrainAccounting: on a capacitor big enough to never brown out,
// the drained energy must telescope to exactly the energy model's price
// of the run, and charge conservation must hold.
func TestPowerDrainAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Power = &PowerConfig{CapacityUJ: 1e6, BrownoutFloorUJ: 1}
	m := New(tracedLoopProg(10, 20), cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.PowerFailures != 0 || s.HarvestedUJ != 0 {
		t.Fatalf("unexpected power events: %+v", s)
	}
	want := DefaultEnergyModel().Energy(s)
	if math.Abs(s.DrainedUJ-want) > 1e-6 {
		t.Errorf("DrainedUJ = %v, want %v", s.DrainedUJ, want)
	}
	if got := m.ChargeUJ(); math.Abs(got-(1e6-s.DrainedUJ)) > 1e-6 {
		t.Errorf("charge = %v, want %v", got, 1e6-s.DrainedUJ)
	}
}

// TestPowerFailureColdBoot: with no checkpoint policy an outage cold-boots
// the mote — EpochMark in the (fully durable) trace, no restores — and
// the run completes on the second attempt once harvest refills the
// capacitor (the program fits in one full charge but not in the small
// starting charge).
func TestPowerFailureColdBoot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Power = &PowerConfig{
		CapacityUJ:      2.0,
		StartChargeUJ:   0.3,
		BrownoutFloorUJ: 0.05,
		RestartChargeUJ: 1.8,
		Harvest:         constRate(0.0005), // well below the CPU draw
	}
	m := New(tracedLoopProg(8, 10), cfg)
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.PowerFailures == 0 {
		t.Fatal("expected at least one power failure")
	}
	if s.Restores != 0 || s.Checkpoints != 0 {
		t.Fatalf("cold-boot mode took checkpoints: %+v", s)
	}
	if got := countID(m.Trace(), EpochMarkID); got != int(s.PowerFailures) {
		t.Errorf("epoch marks = %d, want %d", got, s.PowerFailures)
	}
	if countID(m.Trace(), PowerMarkID) != 0 {
		t.Error("cold boots must not log PowerMark")
	}
	if s.DownCycles == 0 {
		t.Error("recharge windows must appear as down cycles")
	}
	if !m.Halted() {
		t.Error("program did not complete")
	}
}

// TestCheckpointRestore: with a periodic checkpoint policy the mote
// resumes from the durable image, so every handler invocation appears in
// the final durable trace exactly once even though outages discard and
// re-execute the volatile tail.
func TestCheckpointRestore(t *testing.T) {
	const n = 200
	cfg := DefaultConfig()
	cfg.Power = &PowerConfig{
		CapacityUJ:      100,
		BrownoutFloorUJ: 2,
		RestartChargeUJ: 90,
		Harvest:         constRate(0.0005),
		Checkpoint:      CheckpointPolicy{EveryKInvocations: 4},
	}
	m := New(tracedLoopProg(n, 30), cfg)
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.PowerFailures == 0 || s.Checkpoints == 0 || s.Restores == 0 {
		t.Fatalf("expected failures+checkpoints+restores, got %+v", s)
	}
	tr := m.Trace()
	if got := countID(tr, PowerMarkID); got != int(s.Restores) {
		t.Errorf("power marks = %d, want %d restores", got, s.Restores)
	}
	if enters, exits := countID(tr, 2), countID(tr, 3); enters != n || exits != n {
		t.Errorf("handler enter/exit = %d/%d, want %d/%d", enters, exits, n, n)
	}
	if s.LostVolatileEvents == 0 {
		t.Error("outages should have discarded volatile events")
	}
	if !m.Halted() {
		t.Error("program did not complete")
	}
}

// TestPowerDeterminism: two identical intermittent runs are bit-identical
// in stats and trace.
func TestPowerDeterminism(t *testing.T) {
	mk := func() *Machine {
		cfg := DefaultConfig()
		cfg.Power = &PowerConfig{
			CapacityUJ:      100,
			BrownoutFloorUJ: 2,
			RestartChargeUJ: 90,
			Harvest:         constRate(0.0006),
			Checkpoint:      CheckpointPolicy{EveryKInvocations: 3},
		}
		return New(tracedLoopProg(160, 25), cfg)
	}
	a, b := mk(), mk()
	errA, errB := a.Run(200_000_000), b.Run(200_000_000)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors diverge: %v vs %v", errA, errB)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverge:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	if !reflect.DeepEqual(a.Trace(), b.Trace()) {
		t.Error("traces diverge")
	}
}

// TestResetComposesWithPower is the satellite regression: a time-based
// watchdog/brownout outage under power mode is dead time — the capacitor
// keeps harvesting but the CPU must not be charged drain for the down
// cycles. Drained energy therefore prices only active cycles, and charge
// conservation holds including the outage's harvest credit.
func TestResetComposesWithPower(t *testing.T) {
	const rate = 0.0002
	cfg := DefaultConfig()
	cfg.Resets = []ResetEvent{{AtCycle: 400, DownCycles: 65536}}
	cfg.Power = &PowerConfig{
		CapacityUJ:      1e6,
		StartChargeUJ:   5e5, // headroom: nothing harvested may spill
		BrownoutFloorUJ: 1,
		Harvest:         constRate(rate),
	}
	m := New(tracedLoopProg(30, 20), cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.Resets != 1 || s.DownCycles != 65536 {
		t.Fatalf("reset not taken as scheduled: %+v", s)
	}
	if s.PowerFailures != 0 {
		t.Fatalf("unexpected power failure: %+v", s)
	}
	// Energy(stats) prices every cycle including the outage; drained must
	// exclude the 65536 down cycles (the double-count this test pins).
	active := s
	active.Cycles -= s.DownCycles
	want := DefaultEnergyModel().Energy(active)
	if math.Abs(s.DrainedUJ-want) > 1e-6 {
		t.Errorf("DrainedUJ = %v, want %v (active cycles only)", s.DrainedUJ, want)
	}
	// The capacitor never filled (huge capacity), so every harvested µJ
	// was banked: rate × all cycles, outage included.
	wantHarvest := rate * float64(s.Cycles)
	if math.Abs(s.HarvestedUJ-wantHarvest) > 1e-6 {
		t.Errorf("HarvestedUJ = %v, want %v", s.HarvestedUJ, wantHarvest)
	}
	if got := m.ChargeUJ(); math.Abs(got-(5e5+s.HarvestedUJ-s.DrainedUJ)) > 1e-6 {
		t.Errorf("charge conservation violated: %v", got)
	}
}

// TestWatchdogRestoreUnderPower: with checkpointing on, a watchdog reset
// goes through the same restore path as a power failure (the intermittent
// runtime always boots from its last durable image), so the handler count
// invariant holds across the reset too.
func TestWatchdogRestoreUnderPower(t *testing.T) {
	const n = 20
	cfg := DefaultConfig()
	cfg.Resets = []ResetEvent{{AtCycle: 3000, DownCycles: 512}}
	cfg.Power = &PowerConfig{
		CapacityUJ:      1e6,
		BrownoutFloorUJ: 1,
		Harvest:         constRate(0.002),
		Checkpoint:      CheckpointPolicy{EveryKInvocations: 2},
	}
	m := New(tracedLoopProg(n, 20), cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.Resets != 1 {
		t.Fatalf("reset not taken: %+v", s)
	}
	if s.Restores != 1 {
		t.Fatalf("watchdog reset did not restore from checkpoint: %+v", s)
	}
	tr := m.Trace()
	if enters, exits := countID(tr, 2), countID(tr, 3); enters != n || exits != n {
		t.Errorf("handler enter/exit = %d/%d, want %d/%d", enters, exits, n, n)
	}
}

// TestLowChargeCheckpointPolicy: the on-low-charge trigger alone must
// produce checkpoints and restores.
func TestLowChargeCheckpointPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Power = &PowerConfig{
		CapacityUJ:      100,
		BrownoutFloorUJ: 2,
		RestartChargeUJ: 90,
		Harvest:         constRate(0.0002),
		Checkpoint:      CheckpointPolicy{OnLowChargeFrac: 0.25},
	}
	m := New(tracedLoopProg(600, 30), cfg)
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.Checkpoints == 0 || s.Restores == 0 {
		t.Fatalf("low-charge policy idle: %+v", s)
	}
	if !m.Halted() {
		t.Error("program did not complete")
	}
}

// TestNoHarvestExhaustsBudget: a dead harvest source cannot recover, so
// the capped dark window must surface as cycle-budget exhaustion instead
// of an infinite recharge wait.
func TestNoHarvestExhaustsBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Power = &PowerConfig{
		CapacityUJ:      2.0,
		BrownoutFloorUJ: 0.05,
		RestartChargeUJ: 1.8,
	}
	m := New(tracedLoopProg(1000, 50), cfg)
	err := m.Run(50_000_000)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if s := m.Stats(); s.PowerFailures != 1 {
		t.Errorf("power failures = %d, want 1", s.PowerFailures)
	}
}
