package mote

import (
	"errors"
	"testing"

	"codetomo/internal/isa"
)

// run executes a hand-assembled program to completion and returns the machine.
func run(t *testing.T, prog []isa.Instr, cfg Config) *Machine {
	t.Helper()
	m := New(prog, cfg)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return m
}

func TestALUOps(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 7},
		{Op: isa.LDI, Rd: 2, Imm: 3},
		{Op: isa.ADD, Rd: 3, Ra: 1, Rb: 2},  // 10
		{Op: isa.SUB, Rd: 4, Ra: 1, Rb: 2},  // 4
		{Op: isa.MUL, Rd: 5, Ra: 1, Rb: 2},  // 21
		{Op: isa.DIV, Rd: 6, Ra: 1, Rb: 2},  // 2
		{Op: isa.MOD, Rd: 7, Ra: 1, Rb: 2},  // 1
		{Op: isa.AND, Rd: 8, Ra: 1, Rb: 2},  // 3
		{Op: isa.OR, Rd: 9, Ra: 1, Rb: 2},   // 7
		{Op: isa.XOR, Rd: 10, Ra: 1, Rb: 2}, // 4
		{Op: isa.SHL, Rd: 11, Ra: 1, Rb: 2}, // 56
		{Op: isa.SHR, Rd: 12, Ra: 1, Rb: 2}, // 0
		{Op: isa.HALT},
	}
	m := run(t, prog, DefaultConfig())
	want := map[isa.Reg]uint16{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 56, 12: 0}
	for r, v := range want {
		if m.Reg(r) != v {
			t.Errorf("r%d = %d, want %d", r, m.Reg(r), v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: -6}, // 0xFFFA
		{Op: isa.LDI, Rd: 2, Imm: 4},
		{Op: isa.DIV, Rd: 3, Ra: 1, Rb: 2},  // -1
		{Op: isa.MOD, Rd: 4, Ra: 1, Rb: 2},  // -2
		{Op: isa.SLT, Rd: 5, Ra: 1, Rb: 2},  // 1 (signed -6 < 4)
		{Op: isa.SLTU, Rd: 6, Ra: 1, Rb: 2}, // 0 (0xFFFA > 4)
		{Op: isa.SEQ, Rd: 7, Ra: 1, Rb: 1},  // 1
		{Op: isa.LDI, Rd: 8, Imm: 1},
		{Op: isa.SAR, Rd: 9, Ra: 1, Rb: 8},    // -3
		{Op: isa.ADDI, Rd: 10, Ra: 1, Imm: 6}, // 0
		{Op: isa.XORI, Rd: 11, Ra: 7, Imm: 1}, // 0
		{Op: isa.HALT},
	}
	m := run(t, prog, DefaultConfig())
	if int16(m.Reg(3)) != -1 || int16(m.Reg(4)) != -2 {
		t.Errorf("div/mod = %d/%d", int16(m.Reg(3)), int16(m.Reg(4)))
	}
	if m.Reg(5) != 1 || m.Reg(6) != 0 || m.Reg(7) != 1 {
		t.Errorf("slt/sltu/seq = %d/%d/%d", m.Reg(5), m.Reg(6), m.Reg(7))
	}
	if int16(m.Reg(9)) != -3 {
		t.Errorf("sar = %d, want -3", int16(m.Reg(9)))
	}
	if m.Reg(10) != 0 || m.Reg(11) != 0 {
		t.Errorf("addi/xori = %d/%d", m.Reg(10), m.Reg(11))
	}
}

func TestMemoryAndStack(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 100},
		{Op: isa.LDI, Rd: 2, Imm: 1234},
		{Op: isa.ST, Ra: 1, Imm: 5, Rb: 2}, // mem[105] = 1234
		{Op: isa.LD, Rd: 3, Ra: 1, Imm: 5}, // r3 = 1234
		{Op: isa.PUSH, Ra: 3},
		{Op: isa.LDI, Rd: 3, Imm: 0},
		{Op: isa.POP, Rd: 4},
		{Op: isa.GETSP, Rd: 5},
		{Op: isa.HALT},
	}
	m := run(t, prog, DefaultConfig())
	if v, _ := m.Mem(105); v != 1234 {
		t.Errorf("mem[105] = %d", v)
	}
	if m.Reg(4) != 1234 {
		t.Errorf("pop = %d", m.Reg(4))
	}
	if m.Reg(5) != 4096 {
		t.Errorf("sp = %d, want 4096", m.Reg(5))
	}
	if m.Stats().LoadsStores != 2 {
		t.Errorf("loads+stores = %d", m.Stats().LoadsStores)
	}
}

func TestCallRet(t *testing.T) {
	// main: LDI r1,5; CALL 4; HALT at 2... layout:
	// 0: LDI r1, 5
	// 1: CALL 3
	// 2: HALT
	// 3: ADDI r1, r1, 1
	// 4: RET
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 5},
		{Op: isa.CALL, Imm: 3},
		{Op: isa.HALT},
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: 1},
		{Op: isa.RET},
	}
	m := run(t, prog, DefaultConfig())
	if m.Reg(1) != 6 {
		t.Errorf("r1 = %d, want 6", m.Reg(1))
	}
	if m.Stats().Calls != 1 {
		t.Errorf("calls = %d", m.Stats().Calls)
	}
}

func TestBranchesAndPrediction(t *testing.T) {
	// Loop 10 times with a backward BNZ. Under not-taken prediction the
	// taken back-branch mispredicts every taken execution (9 times),
	// under BTFN it mispredicts only the final not-taken one (1 time).
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 10},
		{Op: isa.LDI, Rd: 2, Imm: -1},
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2}, // 2: r1--
		{Op: isa.BNZ, Ra: 1, Imm: 2},       // 3: loop while r1 != 0
		{Op: isa.HALT},
	}
	cfgNT := DefaultConfig()
	m1 := run(t, prog, cfgNT)
	if m1.Stats().CondBranches != 10 || m1.Stats().TakenBranches != 9 {
		t.Fatalf("branches = %d taken = %d", m1.Stats().CondBranches, m1.Stats().TakenBranches)
	}
	if m1.Stats().Mispredicts != 9 {
		t.Errorf("not-taken mispredicts = %d, want 9", m1.Stats().Mispredicts)
	}
	st := m1.BranchStats()[3]
	if st == nil || st.Taken != 9 || st.NotTaken != 1 {
		t.Errorf("branch stat = %+v", st)
	}

	cfgBTFN := DefaultConfig()
	cfgBTFN.Predictor = BTFN{}
	m2 := run(t, prog, cfgBTFN)
	if m2.Stats().Mispredicts != 1 {
		t.Errorf("btfn mispredicts = %d, want 1", m2.Stats().Mispredicts)
	}
	// Misprediction penalty must show in cycles: NT run pays 9 penalties,
	// BTFN pays 1; difference = 8 × penalty.
	diff := m1.Stats().Cycles - m2.Stats().Cycles
	if diff != uint64(8*cfgNT.Cost.TakenPenalty) {
		t.Errorf("cycle difference = %d, want %d", diff, 8*cfgNT.Cost.TakenPenalty)
	}
}

func TestCompareBranches(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 3},
		{Op: isa.LDI, Rd: 2, Imm: 5},
		{Op: isa.BLT, Ra: 1, Rb: 2, Imm: 5}, // taken
		{Op: isa.LDI, Rd: 3, Imm: 99},       // skipped
		{Op: isa.HALT},
		{Op: isa.BGE, Ra: 2, Rb: 1, Imm: 8}, // taken
		{Op: isa.LDI, Rd: 4, Imm: 99},       // skipped
		{Op: isa.HALT},
		{Op: isa.BEQ, Ra: 1, Rb: 1, Imm: 11}, // taken
		{Op: isa.LDI, Rd: 5, Imm: 99},
		{Op: isa.HALT},
		{Op: isa.BNE, Ra: 1, Rb: 1, Imm: 0}, // not taken
		{Op: isa.HALT},
	}
	m := run(t, prog, DefaultConfig())
	if m.Reg(3) == 99 || m.Reg(4) == 99 || m.Reg(5) == 99 {
		t.Fatal("branch fell through when it should have been taken")
	}
	if m.Stats().TakenBranches != 3 || m.Stats().CondBranches != 4 {
		t.Fatalf("taken/cond = %d/%d", m.Stats().TakenBranches, m.Stats().CondBranches)
	}
}

type seqSource struct {
	vals []uint16
	i    int
}

func (s *seqSource) Next() uint16 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}

func TestPeripherals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sensor = &seqSource{vals: []uint16{11, 22}}
	cfg.Entropy = &seqSource{vals: []uint16{7}}
	prog := []isa.Instr{
		{Op: isa.IN, Rd: 1, Imm: isa.PortADC},
		{Op: isa.IN, Rd: 2, Imm: isa.PortADC},
		{Op: isa.IN, Rd: 3, Imm: isa.PortRNG},
		{Op: isa.OUT, Imm: isa.PortLED, Ra: 1},
		{Op: isa.OUT, Imm: isa.PortRadioData, Ra: 1},
		{Op: isa.OUT, Imm: isa.PortRadioData, Ra: 2},
		{Op: isa.LDI, Rd: 4, Imm: 1},
		{Op: isa.OUT, Imm: isa.PortRadioCtl, Ra: 4},
		{Op: isa.OUT, Imm: isa.PortDebug, Ra: 3},
		{Op: isa.HALT},
	}
	m := run(t, prog, cfg)
	if m.Reg(1) != 11 || m.Reg(2) != 22 || m.Reg(3) != 7 {
		t.Fatalf("peripheral reads = %d/%d/%d", m.Reg(1), m.Reg(2), m.Reg(3))
	}
	if m.LED() != 11 {
		t.Errorf("led = %d", m.LED())
	}
	s := m.Stats()
	if s.RadioPackets != 1 || s.RadioWords != 2 || s.SensorReads != 2 || s.LEDWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
	if len(m.DebugOutput()) != 1 || m.DebugOutput()[0] != 7 {
		t.Errorf("debug = %v", m.DebugOutput())
	}
}

func TestTimerAndTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickDiv = 4
	prog := []isa.Instr{
		{Op: isa.TRACE, Imm: 1},
		{Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP},
		{Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP},
		{Op: isa.TRACE, Imm: -1},
		{Op: isa.IN, Rd: 1, Imm: isa.PortTimer},
		{Op: isa.HALT},
	}
	m := run(t, prog, cfg)
	tr := m.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace events = %d", len(tr))
	}
	if tr[0].ID != 1 || tr[1].ID != -1 {
		t.Fatalf("trace ids = %v", tr)
	}
	// First TRACE at cycle 0 → tick 0. Second after TRACE(5)+7 NOPs = 12
	// cycles → tick 3.
	if tr[0].Tick != 0 || tr[1].Tick != 3 {
		t.Fatalf("trace ticks = %d, %d; want 0, 3", tr[0].Tick, tr[1].Tick)
	}
}

func TestClockOffsetSkewsTimestampsNotDurations(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.TRACE, Imm: 1},
		{Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP},
		{Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP},
		{Op: isa.TRACE, Imm: -1},
		{Op: isa.HALT},
	}
	cfg := DefaultConfig()
	cfg.TickDiv = 4
	base := run(t, prog, cfg)
	cfg.ClockOffsetTicks = 1_000_000
	skewed := run(t, prog, cfg)

	bt, st := base.Trace(), skewed.Trace()
	if len(bt) != 2 || len(st) != 2 {
		t.Fatalf("trace lengths %d, %d", len(bt), len(st))
	}
	for i := range bt {
		if st[i].Tick != bt[i].Tick+1_000_000 {
			t.Fatalf("event %d: skewed tick %d, want %d", i, st[i].Tick, bt[i].Tick+1_000_000)
		}
	}
	// Durations — what the estimator consumes — are offset-invariant.
	if st[1].Tick-st[0].Tick != bt[1].Tick-bt[0].Tick {
		t.Fatal("clock offset changed a duration")
	}
}

func TestProfileCounters(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 3},
		{Op: isa.LDI, Rd: 2, Imm: -1},
		{Op: isa.PROFCNT, Imm: 42}, // 2
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.BNZ, Ra: 1, Imm: 2},
		{Op: isa.HALT},
	}
	m := run(t, prog, DefaultConfig())
	if m.ProfileCounters()[42] != 3 {
		t.Fatalf("counter = %d, want 3", m.ProfileCounters()[42])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		prog []isa.Instr
		want error
	}{
		{"div0", []isa.Instr{{Op: isa.DIV, Rd: 1, Ra: 1, Rb: 2}}, ErrDivByZero},
		{"mod0", []isa.Instr{{Op: isa.MOD, Rd: 1, Ra: 1, Rb: 2}}, ErrDivByZero},
		{"load oob", []isa.Instr{{Op: isa.LDI, Rd: 1, Imm: 9000}, {Op: isa.LD, Rd: 2, Ra: 1}}, ErrMemFault},
		{"store neg", []isa.Instr{{Op: isa.LDI, Rd: 1, Imm: -1}, {Op: isa.ST, Ra: 1, Rb: 2}}, ErrMemFault},
		{"pop empty", []isa.Instr{{Op: isa.POP, Rd: 1}}, ErrStackFault},
		{"pc runs off end", []isa.Instr{{Op: isa.NOP}}, ErrPCFault},
		{"jump oob", []isa.Instr{{Op: isa.JMP, Imm: 99}}, ErrPCFault},
	}
	for _, c := range cases {
		m := New(c.prog, DefaultConfig())
		err := m.Run(1000)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// A scheduled watchdog reset reboots the CPU mid-run: the trace buffer
// keeps both epochs separated by an EpochMarkID record, the clock keeps
// advancing through the dead time, and the program re-runs from the reset
// vector.
func TestWatchdogResetTraceEpochs(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.TRACE, Imm: 0}, // enter proc 0
		{Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP}, {Op: isa.NOP},
		{Op: isa.TRACE, Imm: 1}, // exit proc 0
		{Op: isa.HALT},
	}
	cfg := DefaultConfig()
	// Fires during the NOP run, truncating the first invocation.
	cfg.Resets = []ResetEvent{{AtCycle: 7, DownCycles: 1000}}
	m := New(prog, cfg)
	if err := m.Run(100_000); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	st := m.Stats()
	if st.Resets != 1 || st.DownCycles != 1000 {
		t.Fatalf("Resets = %d, DownCycles = %d", st.Resets, st.DownCycles)
	}
	tr := m.Trace()
	ids := make([]int32, len(tr))
	for i, ev := range tr {
		ids[i] = ev.ID
	}
	want := []int32{0, EpochMarkID, 0, 1}
	if len(ids) != len(want) {
		t.Fatalf("trace ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("trace ids = %v, want %v", ids, want)
		}
	}
	// The dead time advances the clock: the re-run starts after the mark.
	if tr[2].Tick <= tr[0].Tick {
		t.Fatalf("post-reboot enter at tick %d, pre-crash enter at %d", tr[2].Tick, tr[0].Tick)
	}
}

// Reboot must clear RAM, not just the program counter: this program HALTs
// only if a flag it stored before the crash survives into the next epoch.
// A correct reset makes it spin forever and exhaust the cycle budget.
func TestWatchdogResetClearsMemory(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LD, Rd: 1, Imm: 100}, // r1 = mem[100]
		{Op: isa.BNZ, Ra: 1, Imm: 5},  // flag survived a reboot → HALT
		{Op: isa.LDI, Rd: 2, Imm: 1},  //
		{Op: isa.ST, Imm: 100, Rb: 2}, // mem[100] = 1
		{Op: isa.JMP, Imm: 4},         // spin until the watchdog fires
		{Op: isa.HALT},
	}
	cfg := DefaultConfig()
	cfg.Resets = []ResetEvent{{AtCycle: 50, DownCycles: 10}}
	m := New(prog, cfg)
	err := m.Run(10_000)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget (nil means RAM survived the reboot)", err)
	}
	if m.Stats().Resets != 1 {
		t.Fatalf("Resets = %d, want 1", m.Stats().Resets)
	}
}

func TestCycleBudget(t *testing.T) {
	prog := []isa.Instr{{Op: isa.JMP, Imm: 0}}
	m := New(prog, DefaultConfig())
	if err := m.Run(100); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want budget", err)
	}
}

func TestSPADJBounds(t *testing.T) {
	prog := []isa.Instr{{Op: isa.SPADJ, Imm: 1}}
	m := New(prog, DefaultConfig())
	if err := m.Run(100); !errors.Is(err, ErrStackFault) {
		t.Fatalf("err = %v, want stack fault", err)
	}
}

func TestDeterminism(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 50},
		{Op: isa.LDI, Rd: 2, Imm: -1},
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.BNZ, Ra: 1, Imm: 2},
		{Op: isa.HALT},
	}
	a := run(t, prog, DefaultConfig())
	b := run(t, prog, DefaultConfig())
	if a.Stats() != b.Stats() {
		t.Fatalf("same program produced different stats:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestEnergyModel(t *testing.T) {
	e := DefaultEnergyModel()
	s := Stats{Cycles: 1000, RadioPackets: 2, RadioWords: 10, SensorReads: 5}
	got := e.Energy(s)
	want := 1000*e.UJPerCycle + 10*e.UJPerRadioWord + 2*e.UJPerRadioPacket + 5*e.UJPerSensorRead
	if got != want {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	// Radio must dominate CPU for typical counts — that's the premise of
	// counting instrumentation overhead carefully.
	if 1000*e.UJPerCycle > e.UJPerRadioPacket {
		t.Fatal("energy coefficients out of shape")
	}
}

func TestPredictors(t *testing.T) {
	br := isa.Instr{Op: isa.BNZ, Ra: 1, Imm: 5}
	if (StaticNotTaken{}).PredictTaken(10, br) {
		t.Fatal("not-taken predicted taken")
	}
	if !(BTFN{}).PredictTaken(10, br) {
		t.Fatal("BTFN should predict backward branch taken")
	}
	if (BTFN{}).PredictTaken(2, br) {
		t.Fatal("BTFN should predict forward branch not taken")
	}
}

func TestBimodalLearnsLoop(t *testing.T) {
	// A 50-iteration loop: the bimodal predictor warms up in 2 iterations
	// and then predicts the backward-taken latch correctly, while static
	// not-taken mispredicts every taken execution.
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 50},
		{Op: isa.LDI, Rd: 2, Imm: -1},
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.BNZ, Ra: 1, Imm: 2},
		{Op: isa.HALT},
	}
	cfgNT := DefaultConfig()
	mNT := run(t, prog, cfgNT)

	cfgBi := DefaultConfig()
	cfgBi.Predictor = NewBimodal(6)
	mBi := run(t, prog, cfgBi)

	if mNT.Stats().Mispredicts != 49 {
		t.Fatalf("static mispredicts = %d, want 49", mNT.Stats().Mispredicts)
	}
	// Bimodal: initialized weakly-not-taken → mispredicts the first two
	// taken executions while saturating, then the final not-taken.
	if mBi.Stats().Mispredicts > 3 {
		t.Fatalf("bimodal mispredicts = %d, want <= 3", mBi.Stats().Mispredicts)
	}
}

func TestBimodalAliasing(t *testing.T) {
	// Two branches aliasing to the same table entry interfere; with a
	// large table they do not. Alternate a taken and a not-taken branch.
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 40}, // counter
		{Op: isa.LDI, Rd: 2, Imm: -1},
		{Op: isa.LDI, Rd: 3, Imm: 0},
		// 3: always-taken branch to 5.
		{Op: isa.BZ, Ra: 3, Imm: 5},
		{Op: isa.NOP},
		// 5: decrement and loop.
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.BNZ, Ra: 1, Imm: 3},
		{Op: isa.HALT},
	}
	cfg := DefaultConfig()
	cfg.Predictor = NewBimodal(10) // 1024 entries: no aliasing
	m := run(t, prog, cfg)
	// Both branches are strongly biased; after warmup nearly everything
	// predicts. Allow a small warmup budget.
	if m.Stats().Mispredicts > 6 {
		t.Fatalf("bimodal with large table mispredicts = %d", m.Stats().Mispredicts)
	}
	if NewBimodal(99).Name() != NewBimodal(6).Name() {
		t.Fatal("out-of-range table bits should clamp to the default size")
	}
}
