package mote

import (
	"errors"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	ck := &Checkpoint{
		PC:           42,
		SP:           4000,
		Cycle:        123456789,
		Depth:        2,
		InvSinceCkpt: 3,
		TraceLen:     77,
		Pred:         []byte{0, 1, 2, 3},
		Mem:          make([]uint16, 128),
	}
	for i := range ck.Regs {
		ck.Regs[i] = uint16(i * 257)
	}
	for i := range ck.Mem {
		ck.Mem[i] = uint16(i*31 + 7)
	}
	return ck
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	img := EncodeCheckpoint(ck)
	got, err := DecodeCheckpoint(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round trip diverges:\n%+v\n%+v", ck, got)
	}
	// Re-encoding the decoded image must reproduce the bytes.
	if !reflect.DeepEqual(img, EncodeCheckpoint(got)) {
		t.Error("re-encode diverges from original image")
	}
}

func TestCheckpointDecodeRejects(t *testing.T) {
	img := EncodeCheckpoint(sampleCheckpoint())

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(img); n++ {
		if _, err := DecodeCheckpoint(img[:n]); err == nil {
			t.Fatalf("truncated image (%d bytes) decoded", n)
		}
	}
	// Trailing garbage is a length mismatch.
	if _, err := DecodeCheckpoint(append(append([]byte{}, img...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Any single bit flip must fail the CRC (or a structural check).
	for i := 0; i < len(img); i++ {
		mut := append([]byte{}, img...)
		mut[i] ^= 0x10
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	// Wrong version.
	mut := append([]byte{}, img...)
	mut[4] = 9
	if _, err := DecodeCheckpoint(mut); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("version check should fail structurally, got %v", err)
	}
}

// FuzzCheckpointDecode: arbitrary bytes must either fail decode or yield
// a checkpoint that re-encodes to the exact input — a torn or bit-flipped
// image can never restore garbage state.
func FuzzCheckpointDecode(f *testing.F) {
	img := EncodeCheckpoint(sampleCheckpoint())
	f.Add(img)
	short := append([]byte{}, img[:len(img)/2]...) // torn flash write
	f.Add(short)
	flip := append([]byte{}, img...)
	flip[20] ^= 0x80
	f.Add(flip)
	f.Add(EncodeCheckpoint(&Checkpoint{}))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if !reflect.DeepEqual(EncodeCheckpoint(ck), data) {
			t.Fatal("accepted image does not round-trip")
		}
	})
}
