// Package mote simulates the M16 sensor mote: a cycle-level interpreter of
// the M16 ISA with a static-prediction pipeline model, word-addressed RAM,
// and the peripherals a sensor-network program touches (hardware timer,
// ADC-connected sensor, entropy source, LEDs, radio) plus the trace buffer
// and profiling counters the instrumented builds write into.
//
// The simulator is the stand-in for the physical motes of the paper: it
// supplies ground-truth edge counts (the oracle the estimators are judged
// against), the coarse hardware timer the Code Tomography measurements are
// quantized by, and the taken-branch/misprediction penalties that code
// placement optimizes.
package mote

import (
	"errors"
	"fmt"

	"codetomo/internal/isa"
)

// Errors the machine can stop with.
var (
	ErrDivByZero     = errors.New("mote: division by zero")
	ErrMemFault      = errors.New("mote: data memory access out of range")
	ErrStackFault    = errors.New("mote: stack overflow or underflow")
	ErrPCFault       = errors.New("mote: program counter out of range")
	ErrCycleBudget   = errors.New("mote: cycle budget exhausted")
	ErrTraceOverflow = errors.New("mote: trace buffer overflow")
	ErrBadInstr      = errors.New("mote: illegal instruction")
)

// SampleSource produces the nondeterministic 16-bit values a peripheral
// feeds the program (ADC readings, entropy words). Package workload
// provides implementations.
type SampleSource interface {
	Next() uint16
}

// zeroSource is the default for unconnected peripherals.
type zeroSource struct{}

func (zeroSource) Next() uint16 { return 0 }

// TraceEvent is one record in the hardware trace buffer: the TRACE
// instruction's ID operand and the timer tick at which it executed. The
// tick is kept at full width here — decoding the mote's 16-bit rollover
// log offline is standard practice and not part of what the estimator must
// invert.
type TraceEvent struct {
	ID   int32
	Tick uint64
}

// EpochMarkID is the reserved trace ID logged when the machine reboots
// after a fault-injected reset. Compiler-generated TRACE ids are
// non-negative, so decoders can treat the marker as an epoch boundary:
// invocation frames open at the crash can never complete and must be
// flushed rather than matched against post-reboot events.
const EpochMarkID int32 = -1

// ResetEvent schedules one fault-injected reset. When the cycle counter
// reaches AtCycle the CPU reboots: pc, sp, registers, and RAM are cleared
// and execution restarts at the reset vector (which re-runs global
// initialization) after DownCycles of dead time. The trace buffer models
// the mote's flash/radio journal and survives the reset, with an
// EpochMarkID record separating the epochs. Package fault derives these
// schedules deterministically from a seed.
type ResetEvent struct {
	AtCycle    uint64
	DownCycles uint64
}

// BranchStat accumulates ground-truth outcome counts for one static
// conditional branch, keyed by its program address.
type BranchStat struct {
	Taken    uint64
	NotTaken uint64
	Mispred  uint64
}

// Stats aggregates architectural event counts for one run.
type Stats struct {
	Cycles        uint64
	Instructions  uint64
	CondBranches  uint64
	TakenBranches uint64
	Mispredicts   uint64
	// PageCrossings counts control-flow redirects (executed JMPs and taken
	// conditional branches) that landed on a different flash page and paid
	// Cost.PageCrossPenalty. Always zero when the penalty is zero.
	PageCrossings uint64
	Calls         uint64
	LoadsStores   uint64
	RadioPackets  uint64
	RadioWords    uint64
	LEDWrites     uint64
	SensorReads   uint64
	// Resets counts fault-injected reboots taken; DownCycles is the total
	// dead time they cost (included in Cycles). Under power mode DownCycles
	// also includes capacitor recharge waits and restore overhead.
	Resets     uint64
	DownCycles uint64
	// Intermittent-execution counters, all zero on mains power (see
	// power.go). PowerFailures counts brownout outages; Restores counts
	// the subset of boots (power failures and watchdog resets) that
	// resumed from a durable checkpoint rather than cold; Checkpoints
	// counts images written. HarvestedUJ is energy actually banked in the
	// capacitor (spill on a full capacitor is excluded) and DrainedUJ is
	// energy consumed through the EnergyModel plus checkpoint costs.
	// LostVolatileEvents counts trace events discarded from the
	// uncommitted volatile window across all outages.
	PowerFailures      uint64
	Checkpoints        uint64
	Restores           uint64
	LostVolatileEvents uint64
	HarvestedUJ        float64
	DrainedUJ          float64
}

// Config sets the machine's architectural parameters.
type Config struct {
	// RAMWords is the size of data memory in 16-bit words.
	RAMWords int
	// TickDiv is the timer prescaler: one timer tick per TickDiv cycles.
	// This is the quantization the tomography estimator must see through.
	TickDiv int
	// Predictor is the static branch prediction policy.
	Predictor Predictor
	// Cost is the cycle/size table; nil means isa.DefaultCostModel().
	Cost *isa.CostModel
	// MaxTraceEvents bounds the trace buffer (0 = default 1<<22).
	MaxTraceEvents int
	// ClockOffsetTicks skews the timer's absolute value, modeling the
	// unsynchronized clocks of a deployed fleet. Durations are tick
	// differences, so the offset shifts logged timestamps without touching
	// measured durations.
	ClockOffsetTicks uint64
	// Resets schedules fault-injected watchdog resets and brownouts, in
	// ascending AtCycle order (package fault builds these deterministically
	// from a seed). Empty means a healthy mote.
	Resets []ResetEvent
	// Sensor and Entropy feed the ADC and RNG ports.
	Sensor  SampleSource
	Entropy SampleSource
	// Power, when non-nil, runs the mote from a harvested-energy capacitor
	// instead of mains: instructions drain charge through the energy
	// model, and the machine power-fails (checkpoint/restore or cold boot)
	// whenever charge reaches the brownout floor. See power.go.
	Power *PowerConfig
}

// DefaultConfig returns the configuration used across the evaluation:
// 4K words of RAM, an 8-cycle timer prescaler, and predict-not-taken.
func DefaultConfig() Config {
	return Config{
		RAMWords:  isa.DefaultRAMWords,
		TickDiv:   8,
		Predictor: StaticNotTaken{},
		Cost:      isa.DefaultCostModel(),
	}
}

// Machine is one simulated mote.
type Machine struct {
	prog []isa.Instr
	cfg  Config

	pc   int32
	sp   int32
	regs [16]uint16
	mem  []uint16

	halted   bool
	resetIdx int // next pending entry of cfg.Resets

	// Peripherals.
	ledState   uint16
	radioBuf   []uint16
	debugOut   []uint16
	trace      []TraceEvent
	profCnt    []uint64     // dense PROFCNT hit counts, indexed by pc
	branchStat []BranchStat // dense ground-truth table, indexed by pc

	// Precomputed fast-path state shared by both cores (see run.go): the
	// per-opcode cycle table padded to the full opcode byte range so a
	// uint8 index needs no bounds check, the misprediction penalty widened
	// once, and the devirtualized predictor.
	costs     [256]uint32
	penalty   uint64
	predKind  uint8
	bimodal   *Bimodal
	trainable TrainablePredictor

	// pageOf[pc] is the flash page holding instruction pc, or nil when the
	// cost model has no page-cross penalty (the common case) so the hot
	// loops skip the check with one nil test per redirect. pagePen is the
	// penalty widened once.
	pageOf  []uint32
	pagePen uint64

	// Intermittent-execution state (nil power = mains, see power.go).
	// durableLen is the committed-trace watermark: events at or beyond it
	// live in the volatile RAM window and die with a power loss.
	power        *powerState
	durableLen   int
	traceDepth   int
	invSinceCkpt int
	ckptImage    []byte

	stats Stats
}

// New creates a machine loaded with the given program. All mutable state
// lives behind Reset so a machine can later be reinitialized in place for
// another run of the same program without reallocating (see reset.go).
func New(prog []isa.Instr, cfg Config) *Machine {
	m := &Machine{prog: prog}
	m.Reset(cfg)
	return m
}

// Stats returns the architectural counters accumulated so far.
func (m *Machine) Stats() Stats { return m.stats }

// SP returns the current stack pointer (words; the stack grows down from
// Config.RAMWords). Tests compare the observed low-water mark against the
// static stack-depth bound.
func (m *Machine) SP() int32 { return m.sp }

// Trace returns the trace buffer (TRACE instruction log).
func (m *Machine) Trace() []TraceEvent { return m.trace }

// ProfileCounters returns the PROFCNT counters keyed by counter id. The
// map is a snapshot built per call over the machine's dense per-pc hit
// table (the same dense-inside, map-at-the-boundary shape as BranchStats);
// PROFCNT sites sharing an id sum into one entry, exactly as the original
// live map did.
func (m *Machine) ProfileCounters() map[int32]uint64 {
	out := make(map[int32]uint64)
	for pc, n := range m.profCnt {
		if n != 0 {
			out[m.prog[pc].Imm] += n
		}
	}
	return out
}

// BranchStats returns ground-truth per-branch outcome counts keyed by the
// branch instruction's address. The map is a view built per call over the
// machine's dense per-pc table; the *BranchStat values alias that table,
// so they keep updating if the machine runs further.
func (m *Machine) BranchStats() map[int32]*BranchStat {
	out := make(map[int32]*BranchStat)
	for pc := range m.branchStat {
		if st := &m.branchStat[pc]; st.Taken != 0 || st.NotTaken != 0 {
			out[int32(pc)] = st
		}
	}
	return out
}

// DebugOutput returns the words written to the debug port.
func (m *Machine) DebugOutput() []uint16 { return m.debugOut }

// LED returns the current LED state.
func (m *Machine) LED() uint16 { return m.ledState }

// Halted reports whether the program executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Tick returns the current timer tick (cycles / TickDiv plus the mote's
// clock offset) at full width.
func (m *Machine) Tick() uint64 {
	return m.stats.Cycles/uint64(m.cfg.TickDiv) + m.cfg.ClockOffsetTicks
}

// Reg returns the value of register r (for tests and tools).
func (m *Machine) Reg(r isa.Reg) uint16 { return m.regs[r] }

// PC returns the current program counter (for sampling profilers and
// debuggers).
func (m *Machine) PC() int32 { return m.pc }

// Mem returns the value of data word addr (for tests and tools).
func (m *Machine) Mem(addr int) (uint16, error) {
	if addr < 0 || addr >= len(m.mem) {
		return 0, fmt.Errorf("%w: addr %d", ErrMemFault, addr)
	}
	return m.mem[addr], nil
}

// SetMem writes a data word (for tests and tools that pre-load state).
func (m *Machine) SetMem(addr int, v uint16) error {
	if addr < 0 || addr >= len(m.mem) {
		return fmt.Errorf("%w: addr %d", ErrMemFault, addr)
	}
	m.mem[addr] = v
	return nil
}

// RunReference executes until HALT, an execution fault, or the cycle
// budget is exhausted, one Step call per instruction. It is the reference
// core: Run (the fused core, see run.go) must stop with the same error at
// the same pc after the same cycle count, a contract pinned by the
// differential property test and FuzzFastCore. A HALT stop returns nil;
// budget exhaustion returns ErrCycleBudget wrapped with position info.
func (m *Machine) RunReference(maxCycles uint64) error {
	for !m.halted {
		if m.stats.Cycles >= maxCycles {
			return fmt.Errorf("%w at pc=%d after %d instructions", ErrCycleBudget, m.pc, m.stats.Instructions)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes a single instruction on the reference core, or takes a
// pending fault-injected reset when its scheduled cycle has been reached.
// It is the public single-step API (sampling profilers and debuggers hook
// it); the batch path is Run's fused loop. Under power mode (Config.Power
// non-nil) each step additionally runs the capacitor accounting in
// power.go.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.resetIdx < len(m.cfg.Resets) && m.stats.Cycles >= m.cfg.Resets[m.resetIdx].AtCycle {
		down := m.cfg.Resets[m.resetIdx].DownCycles
		m.resetIdx++
		if m.power != nil {
			m.powerAwareReset(down)
		} else {
			m.reboot(down)
		}
		return nil
	}
	if m.power != nil {
		return m.stepPowered()
	}
	return m.stepInstr()
}

// stepInstr executes exactly one instruction (no reset or power checks):
// the shared core under Step and stepPowered.
func (m *Machine) stepInstr() error {
	if m.pc < 0 || int(m.pc) >= len(m.prog) {
		return fmt.Errorf("%w: pc=%d", ErrPCFault, m.pc)
	}
	in := m.prog[m.pc]
	cost := uint64(m.cfg.Cost.InstrCycles(in))
	nextPC := m.pc + 1
	m.stats.Instructions++

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.halted = true
	case isa.LDI:
		m.regs[in.Rd] = uint16(in.Imm)
	case isa.MOV:
		m.regs[in.Rd] = m.regs[in.Ra]
	case isa.ADD:
		m.regs[in.Rd] = m.regs[in.Ra] + m.regs[in.Rb]
	case isa.SUB:
		m.regs[in.Rd] = m.regs[in.Ra] - m.regs[in.Rb]
	case isa.MUL:
		m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) * int16(m.regs[in.Rb]))
	case isa.DIV:
		if m.regs[in.Rb] == 0 {
			return fmt.Errorf("%w at pc=%d", ErrDivByZero, m.pc)
		}
		m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) / int16(m.regs[in.Rb]))
	case isa.MOD:
		if m.regs[in.Rb] == 0 {
			return fmt.Errorf("%w at pc=%d", ErrDivByZero, m.pc)
		}
		m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) % int16(m.regs[in.Rb]))
	case isa.AND:
		m.regs[in.Rd] = m.regs[in.Ra] & m.regs[in.Rb]
	case isa.OR:
		m.regs[in.Rd] = m.regs[in.Ra] | m.regs[in.Rb]
	case isa.XOR:
		m.regs[in.Rd] = m.regs[in.Ra] ^ m.regs[in.Rb]
	case isa.SHL:
		m.regs[in.Rd] = m.regs[in.Ra] << (m.regs[in.Rb] & 15)
	case isa.SHR:
		m.regs[in.Rd] = m.regs[in.Ra] >> (m.regs[in.Rb] & 15)
	case isa.SAR:
		m.regs[in.Rd] = uint16(int16(m.regs[in.Ra]) >> (m.regs[in.Rb] & 15))
	case isa.ADDI:
		m.regs[in.Rd] = m.regs[in.Ra] + uint16(in.Imm)
	case isa.XORI:
		m.regs[in.Rd] = m.regs[in.Ra] ^ uint16(in.Imm)
	case isa.SLT:
		m.regs[in.Rd] = boolWord(int16(m.regs[in.Ra]) < int16(m.regs[in.Rb]))
	case isa.SLTU:
		m.regs[in.Rd] = boolWord(m.regs[in.Ra] < m.regs[in.Rb])
	case isa.SEQ:
		m.regs[in.Rd] = boolWord(m.regs[in.Ra] == m.regs[in.Rb])
	case isa.LD:
		addr := int32(int16(m.regs[in.Ra])) + in.Imm
		if addr < 0 || int(addr) >= len(m.mem) {
			return fmt.Errorf("%w: load addr %d at pc=%d", ErrMemFault, addr, m.pc)
		}
		m.regs[in.Rd] = m.mem[addr]
		m.stats.LoadsStores++
	case isa.ST:
		addr := int32(int16(m.regs[in.Ra])) + in.Imm
		if addr < 0 || int(addr) >= len(m.mem) {
			return fmt.Errorf("%w: store addr %d at pc=%d", ErrMemFault, addr, m.pc)
		}
		m.mem[addr] = m.regs[in.Rb]
		m.stats.LoadsStores++
	case isa.PUSH:
		if m.sp <= 0 {
			return fmt.Errorf("%w: push with sp=%d at pc=%d", ErrStackFault, m.sp, m.pc)
		}
		m.sp--
		m.mem[m.sp] = m.regs[in.Ra]
	case isa.POP:
		if int(m.sp) >= len(m.mem) {
			return fmt.Errorf("%w: pop with sp=%d at pc=%d", ErrStackFault, m.sp, m.pc)
		}
		m.regs[in.Rd] = m.mem[m.sp]
		m.sp++
	case isa.SPADJ:
		ns := m.sp + in.Imm
		if ns < 0 || int(ns) > len(m.mem) {
			return fmt.Errorf("%w: spadj to %d at pc=%d", ErrStackFault, ns, m.pc)
		}
		m.sp = ns
	case isa.GETSP:
		m.regs[in.Rd] = uint16(m.sp)
	case isa.JMP:
		nextPC = in.Imm
		if m.pageOf != nil && uint(nextPC) < uint(len(m.pageOf)) && m.pageOf[nextPC] != m.pageOf[m.pc] {
			cost += m.pagePen
			m.stats.PageCrossings++
		}
	case isa.BZ, isa.BNZ, isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		taken := false
		switch in.Op {
		case isa.BZ:
			taken = m.regs[in.Ra] == 0
		case isa.BNZ:
			taken = m.regs[in.Ra] != 0
		case isa.BEQ:
			taken = m.regs[in.Ra] == m.regs[in.Rb]
		case isa.BNE:
			taken = m.regs[in.Ra] != m.regs[in.Rb]
		case isa.BLT:
			taken = int16(m.regs[in.Ra]) < int16(m.regs[in.Rb])
		case isa.BGE:
			taken = int16(m.regs[in.Ra]) >= int16(m.regs[in.Rb])
		}
		m.stats.CondBranches++
		st := &m.branchStat[m.pc]
		predictedTaken := m.cfg.Predictor.PredictTaken(m.pc, in)
		if taken {
			m.stats.TakenBranches++
			st.Taken++
			nextPC = in.Imm
			if m.pageOf != nil && uint(nextPC) < uint(len(m.pageOf)) && m.pageOf[nextPC] != m.pageOf[m.pc] {
				cost += m.pagePen
				m.stats.PageCrossings++
			}
		} else {
			st.NotTaken++
		}
		if predictedTaken != taken {
			m.stats.Mispredicts++
			st.Mispred++
			cost += uint64(m.cfg.Cost.TakenPenalty)
		}
		if tp, ok := m.cfg.Predictor.(TrainablePredictor); ok {
			tp.Train(m.pc, taken)
		}
	case isa.CALL:
		if m.sp <= 0 {
			return fmt.Errorf("%w: call with sp=%d at pc=%d", ErrStackFault, m.sp, m.pc)
		}
		m.sp--
		m.mem[m.sp] = uint16(m.pc + 1)
		nextPC = in.Imm
		m.stats.Calls++
	case isa.RET:
		if int(m.sp) >= len(m.mem) {
			return fmt.Errorf("%w: ret with sp=%d at pc=%d", ErrStackFault, m.sp, m.pc)
		}
		nextPC = int32(m.mem[m.sp])
		m.sp++
	case isa.IN:
		switch in.Imm {
		case isa.PortTimer:
			m.regs[in.Rd] = uint16(m.Tick())
		case isa.PortADC:
			// The ADC saturates at its rails: readings are architecturally
			// confined to [0, isa.ADCMaxReading], which the static
			// value-range analysis relies on.
			m.regs[in.Rd] = isa.ClampADC(m.cfg.Sensor.Next())
			m.stats.SensorReads++
		case isa.PortRNG:
			m.regs[in.Rd] = m.cfg.Entropy.Next()
		case isa.PortRadioCtl:
			m.regs[in.Rd] = 1 // last TX always succeeded in this model
		default:
			m.regs[in.Rd] = 0
		}
	case isa.OUT:
		v := m.regs[in.Ra]
		switch in.Imm {
		case isa.PortLED:
			m.ledState = v
			m.stats.LEDWrites++
		case isa.PortRadioData:
			m.radioBuf = append(m.radioBuf, v)
		case isa.PortRadioCtl:
			if v != 0 {
				m.stats.RadioPackets++
				m.stats.RadioWords += uint64(len(m.radioBuf))
				m.radioBuf = m.radioBuf[:0]
			}
		case isa.PortDebug:
			m.debugOut = append(m.debugOut, v)
		}
	case isa.TRACE:
		if len(m.trace) >= m.cfg.MaxTraceEvents {
			return fmt.Errorf("%w: %d events", ErrTraceOverflow, len(m.trace))
		}
		m.trace = append(m.trace, TraceEvent{ID: in.Imm, Tick: m.Tick()})
	case isa.PROFCNT:
		m.profCnt[m.pc]++
	default:
		return fmt.Errorf("%w: opcode %v at pc=%d", ErrBadInstr, in.Op, m.pc)
	}

	m.stats.Cycles += cost
	m.pc = nextPC
	return nil
}

// reboot models a watchdog reset or brownout recovery: the CPU and RAM
// lose all state and execution restarts at the reset vector (pc 0, where
// the startup stub re-runs global initialization) after downCycles of
// dead time. The trace buffer models the flash/radio journal, which
// survives resets; an EpochMarkID record separates the epochs so decoders
// never pair an enter logged before the crash with an exit logged after.
func (m *Machine) reboot(downCycles uint64) {
	m.clearVolatileState()
	m.stats.Cycles += downCycles
	m.stats.Resets++
	m.stats.DownCycles += downCycles
	if len(m.trace) < m.cfg.MaxTraceEvents {
		m.trace = append(m.trace, TraceEvent{ID: EpochMarkID, Tick: m.Tick()})
	}
}

func boolWord(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
