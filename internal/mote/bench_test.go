package mote

import (
	"testing"

	"codetomo/internal/isa"
)

// branchyProg assembles the branch-heavy kernel the interpreter benchmarks
// run: a nested counted loop whose body toggles a flag and branches on it,
// so ~45% of executed instructions are conditional branches with mixed
// outcomes. It executes ~4.5*inner*outer instructions and halts.
func branchyProg(outer, inner int32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.LDI, Rd: 3, Imm: outer},
		{Op: isa.LDI, Rd: 4, Imm: -1},
		{Op: isa.LDI, Rd: 1, Imm: inner},      // 2: outer loop head
		{Op: isa.ADDI, Rd: 1, Ra: 1, Imm: -1}, // 3: inner loop head
		{Op: isa.XORI, Rd: 2, Ra: 2, Imm: 1},
		{Op: isa.BNZ, Ra: 2, Imm: 7}, // alternating taken/not-taken
		{Op: isa.NOP},
		{Op: isa.BNZ, Ra: 1, Imm: 3}, // 7: latch, taken inner-1 times
		{Op: isa.ADD, Rd: 3, Ra: 3, Rb: 4},
		{Op: isa.BNZ, Ra: 3, Imm: 2},
		{Op: isa.HALT},
	}
}

// benchCfg keeps per-machine allocations small so pre-building one machine
// per benchmark iteration stays cheap.
func benchCfg() Config {
	cfg := DefaultConfig()
	cfg.RAMWords = 64
	return cfg
}

// runCore benchmarks one interpreter core on the branch-heavy kernel.
// Machines are pre-built outside the timed region, so allocs/op reports
// the dispatch loop alone — which must be zero.
func runCore(b *testing.B, run func(*Machine) error) {
	prog := branchyProg(20, 5000) // ~450k instructions per run
	cfg := benchCfg()
	machines := make([]*Machine, b.N)
	for i := range machines {
		machines[i] = New(prog, cfg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(machines[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		instrs := machines[0].Stats().Instructions
		b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	}
}

func BenchmarkRun(b *testing.B) {
	runCore(b, func(m *Machine) error { return m.Run(1 << 40) })
}

func BenchmarkStep(b *testing.B) {
	runCore(b, func(m *Machine) error { return m.RunReference(1 << 40) })
}

// Both cores must execute the dispatch loop without allocating: the fused
// loop by construction, the reference Step since the per-call closure and
// the per-branch map insert were removed.
func TestCoresAllocateNothingPerInstruction(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	prog := branchyProg(2, 500)
	cfg := benchCfg()
	cores := []struct {
		name string
		run  func(*Machine) error
	}{
		{"fused", func(m *Machine) error { return m.Run(1 << 40) }},
		{"reference", func(m *Machine) error { return m.RunReference(1 << 40) }},
	}
	for _, core := range cores {
		const rounds = 10
		machines := make([]*Machine, rounds+1) // +1 for AllocsPerRun's warm-up call
		for i := range machines {
			machines[i] = New(prog, cfg)
		}
		i := 0
		avg := testing.AllocsPerRun(rounds, func() {
			if err := core.run(machines[i]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if avg != 0 {
			t.Errorf("%s core: %v allocs per run, want 0", core.name, avg)
		}
	}
}
