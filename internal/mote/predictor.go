package mote

import "codetomo/internal/isa"

// Predictor is a static branch prediction policy: given a conditional
// branch's address and encoding, predict whether it is taken. Low-end MCUs
// implement exactly such fixed policies in their fetch stage; the compiler's
// block placement decides which successor is the fall-through and thereby
// which dynamic outcomes get mispredicted.
type Predictor interface {
	PredictTaken(pc int32, in isa.Instr) bool
	Name() string
}

// StaticNotTaken always predicts fall-through. Under this policy every
// taken conditional branch is a misprediction, so placement should make hot
// successors the fall-through — the classic branch-alignment objective.
type StaticNotTaken struct{}

// PredictTaken implements Predictor.
func (StaticNotTaken) PredictTaken(int32, isa.Instr) bool { return false }

// Name implements Predictor.
func (StaticNotTaken) Name() string { return "not-taken" }

// BTFN predicts backward branches taken and forward branches not taken —
// the standard static heuristic that assumes backward branches are loop
// latches.
type BTFN struct{}

// PredictTaken implements Predictor.
func (BTFN) PredictTaken(pc int32, in isa.Instr) bool { return in.Imm <= pc }

// Name implements Predictor.
func (BTFN) Name() string { return "btfn" }
