package mote

import (
	"fmt"

	"codetomo/internal/isa"
)

// TrainablePredictor is a Predictor with per-branch state that learns from
// resolved outcomes. The machine trains it after every conditional branch.
type TrainablePredictor interface {
	Predictor
	Train(pc int32, taken bool)
}

// Bimodal is a classic 2-bit saturating-counter dynamic predictor with a
// direct-mapped table. Sensor motes do not ship one — that is precisely
// why static prediction plus code placement matters there — but the
// ablation harness uses it to show how much of the placement benefit a
// dynamic predictor would erase.
type Bimodal struct {
	table []uint8 // 2-bit counters: 0,1 = not taken; 2,3 = taken
	mask  int32
}

// NewBimodal returns a bimodal predictor with 2^bits counters initialized
// to weakly-not-taken.
func NewBimodal(bits int) *Bimodal {
	if bits < 1 || bits > 20 {
		bits = 6
	}
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1
	}
	return &Bimodal{table: t, mask: int32(n - 1)}
}

// PredictTaken implements Predictor.
func (b *Bimodal) PredictTaken(pc int32, _ isa.Instr) bool {
	return b.table[pc&b.mask] >= 2
}

// Train implements TrainablePredictor.
func (b *Bimodal) Train(pc int32, taken bool) {
	i := pc & b.mask
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// Name implements Predictor.
func (b *Bimodal) Name() string {
	return fmt.Sprintf("bimodal-%d", len(b.table))
}
