package mote

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Checkpoint is the machine state persisted to non-volatile storage at a
// safe point: everything needed to resume execution after a power failure
// without replaying the epoch — CPU registers, RAM, the predictor's
// learned state, and the durable-trace watermark that tells salvage where
// the committed journal ends. The image is written with a versioned,
// CRC-guarded codec ("CTCK"): flash writes on a dying capacitor tear, and
// a torn image must fail decode rather than restore garbage.
type Checkpoint struct {
	PC           int32
	SP           int32
	Cycle        uint64 // cycle counter when taken (diagnostic)
	Depth        uint16 // traced-invocation nesting depth at the safe point
	InvSinceCkpt uint16 // periodic-policy progress counter
	TraceLen     uint32 // durable trace watermark (events)
	Regs         [16]uint16
	Pred         []byte   // bimodal counter table; empty for static predictors
	Mem          []uint16 // full RAM image
}

// Checkpoint image wire format (all integers little-endian):
//
//	offset size  field
//	0      4     magic "CTCK"
//	4      2     version (currently 1)
//	6      4     pc (int32)
//	10     4     sp (int32)
//	14     8     cycle
//	22     2     depth
//	24     2     invocations since last checkpoint
//	26     4     trace watermark (events)
//	30     32    regs[16] (uint16 each)
//	62     4     predictor table length P (bytes)
//	66     4     RAM length R (words)
//	70     P     predictor table
//	70+P   2R    RAM words (uint16 each)
//	...    2     CRC-16/CCITT-FALSE over every preceding byte
const (
	checkpointMagic   = "CTCK"
	checkpointVersion = 1
	checkpointHdrSize = 70
	checkpointCRCSize = 2

	// Decode-side sanity bounds, far above anything New accepts but small
	// enough that a corrupt length field cannot demand gigabytes.
	maxCheckpointPredBytes = 1 << 21
	maxCheckpointRAMWords  = 1 << 21
)

// Checkpoint decode errors.
var (
	ErrBadCheckpoint     = errors.New("mote: malformed checkpoint image")
	ErrCorruptCheckpoint = errors.New("mote: checkpoint CRC mismatch")
)

// checkpointNow snapshots the machine at the current safe point.
func (m *Machine) checkpointNow() *Checkpoint {
	ck := &Checkpoint{
		PC:           m.pc,
		SP:           m.sp,
		Cycle:        m.stats.Cycles,
		Depth:        uint16(m.traceDepth),
		InvSinceCkpt: uint16(m.invSinceCkpt),
		TraceLen:     uint32(len(m.trace)),
		Regs:         m.regs,
		Mem:          append([]uint16(nil), m.mem...),
	}
	if m.bimodal != nil {
		ck.Pred = append([]byte(nil), m.bimodal.table...)
	}
	return ck
}

// encode serializes the checkpoint in the CTCK format.
func (ck *Checkpoint) encode() []byte {
	n := checkpointHdrSize + len(ck.Pred) + 2*len(ck.Mem) + checkpointCRCSize
	out := make([]byte, n)
	copy(out, checkpointMagic)
	binary.LittleEndian.PutUint16(out[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(out[6:], uint32(ck.PC))
	binary.LittleEndian.PutUint32(out[10:], uint32(ck.SP))
	binary.LittleEndian.PutUint64(out[14:], ck.Cycle)
	binary.LittleEndian.PutUint16(out[22:], ck.Depth)
	binary.LittleEndian.PutUint16(out[24:], ck.InvSinceCkpt)
	binary.LittleEndian.PutUint32(out[26:], ck.TraceLen)
	for i, r := range ck.Regs {
		binary.LittleEndian.PutUint16(out[30+2*i:], r)
	}
	binary.LittleEndian.PutUint32(out[62:], uint32(len(ck.Pred)))
	binary.LittleEndian.PutUint32(out[66:], uint32(len(ck.Mem)))
	off := checkpointHdrSize
	copy(out[off:], ck.Pred)
	off += len(ck.Pred)
	for _, w := range ck.Mem {
		binary.LittleEndian.PutUint16(out[off:], w)
		off += 2
	}
	binary.LittleEndian.PutUint16(out[off:], crc16ck(out[:off]))
	return out
}

// decodeCheckpoint parses and validates a CTCK image. It is strict: the
// buffer must hold exactly one image, lengths must be sane, and the CRC
// trailer must match — any torn, truncated, or bit-flipped image errors.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < checkpointHdrSize+checkpointCRCSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCheckpoint, len(data))
	}
	if string(data[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCheckpoint, v)
	}
	predLen := int(binary.LittleEndian.Uint32(data[62:]))
	memLen := int(binary.LittleEndian.Uint32(data[66:]))
	if predLen > maxCheckpointPredBytes || memLen > maxCheckpointRAMWords {
		return nil, fmt.Errorf("%w: lengths pred=%d mem=%d", ErrBadCheckpoint, predLen, memLen)
	}
	want := checkpointHdrSize + predLen + 2*memLen + checkpointCRCSize
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes (want %d)", ErrBadCheckpoint, len(data), want)
	}
	body := data[:len(data)-checkpointCRCSize]
	if got := binary.LittleEndian.Uint16(data[len(data)-checkpointCRCSize:]); crc16ck(body) != got {
		return nil, ErrCorruptCheckpoint
	}
	ck := &Checkpoint{
		PC:           int32(binary.LittleEndian.Uint32(data[6:])),
		SP:           int32(binary.LittleEndian.Uint32(data[10:])),
		Cycle:        binary.LittleEndian.Uint64(data[14:]),
		Depth:        binary.LittleEndian.Uint16(data[22:]),
		InvSinceCkpt: binary.LittleEndian.Uint16(data[24:]),
		TraceLen:     binary.LittleEndian.Uint32(data[26:]),
	}
	for i := range ck.Regs {
		ck.Regs[i] = binary.LittleEndian.Uint16(data[30+2*i:])
	}
	off := checkpointHdrSize
	if predLen > 0 {
		ck.Pred = append([]byte(nil), data[off:off+predLen]...)
	}
	off += predLen
	if memLen > 0 {
		ck.Mem = make([]uint16, memLen)
		for i := range ck.Mem {
			ck.Mem[i] = binary.LittleEndian.Uint16(data[off+2*i:])
		}
	}
	return ck, nil
}

// DecodeCheckpoint parses a CTCK checkpoint image (exported for tools and
// the fuzz harness).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return decodeCheckpoint(data) }

// EncodeCheckpoint serializes a checkpoint in the CTCK format.
func EncodeCheckpoint(ck *Checkpoint) []byte { return ck.encode() }

// crc16ck is CRC-16/CCITT-FALSE, the same polynomial the CTP2 radio frame
// trailer uses (package trace has its own copy; the packages must not
// import each other).
func crc16ck(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
