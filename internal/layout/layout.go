// Package layout implements profile-guided basic-block placement — the
// consumer of Code Tomography's estimates. Given edge weights (estimated or
// exact), it orders each procedure's blocks so that hot edges become
// fall-throughs, which under the mote's static branch prediction directly
// reduces mispredicted (penalized) branches. The algorithm is the classic
// Pettis–Hansen bottom-up chaining.
package layout

import (
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/stats"
)

// Weights are edge weights — expected or measured traversal counts.
type Weights map[[2]ir.BlockID]float64

// FromProbs converts branch probabilities into expected edge traversal
// weights via the Markov chain (frequency matters for chaining: an edge
// inside a hot loop outweighs a one-shot edge with the same probability).
// If the chain is not absorbing under probs, the probabilities themselves
// are used as weights.
func FromProbs(proc *cfg.Proc, probs markov.EdgeProbs) Weights {
	chain, err := markov.New(proc, probs)
	if err == nil {
		if tr, err := chain.ExpectedEdgeTraversals(); err == nil {
			return Weights(tr)
		}
	}
	w := make(Weights, len(probs))
	for k, v := range probs {
		w[k] = v
	}
	return w
}

// Optimize returns a block emission order for the procedure that makes
// high-weight edges fall-throughs (Pettis–Hansen bottom-up chaining):
//
//  1. every block starts as a singleton chain;
//  2. edges are visited in decreasing weight; an edge whose source is a
//     chain tail and whose target is a different chain's head merges the
//     two chains (making the edge a fall-through);
//  3. chains are emitted starting with the entry chain, then repeatedly
//     the chain most strongly connected to the already-placed blocks.
func Optimize(proc *cfg.Proc, weights Weights) []ir.BlockID {
	n := len(proc.Blocks)
	// chainOf[b] = chain index; chains[i] = block sequence (nil = merged).
	chainOf := make([]int, n)
	chains := make([][]ir.BlockID, n)
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []ir.BlockID{ir.BlockID(i)}
	}

	type wedge struct {
		e [2]ir.BlockID
		w float64
	}
	var edges []wedge
	for _, e := range proc.Edges() {
		key := [2]ir.BlockID{e.From, e.To}
		edges = append(edges, wedge{e: key, w: weights[key]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].e[0] != edges[j].e[0] {
			return edges[i].e[0] < edges[j].e[0]
		}
		return edges[i].e[1] < edges[j].e[1]
	})

	// maxOut[b] is the largest outgoing weight of each block: only a
	// block's hottest out-edge may become its fall-through. Falling
	// through to a colder arm would force the hot arm onto the taken
	// (mispredicted) side, which is worse than leaving the block
	// chain-terminal and letting the backend's polarity choice put the
	// conditional branch on the cold arm.
	maxOut := make(map[ir.BlockID]float64, n)
	for _, we := range edges {
		if we.w > maxOut[we.e[0]] {
			maxOut[we.e[0]] = we.w
		}
	}

	for _, we := range edges {
		a, b := we.e[0], we.e[1]
		if we.w < maxOut[a] {
			continue
		}
		ca, cb := chainOf[a], chainOf[b]
		if ca == cb {
			continue
		}
		tailA := chains[ca][len(chains[ca])-1]
		headB := chains[cb][0]
		if tailA != a || headB != b {
			continue
		}
		// Merge cb onto ca.
		for _, blk := range chains[cb] {
			chainOf[blk] = ca
		}
		chains[ca] = append(chains[ca], chains[cb]...)
		chains[cb] = nil
	}

	// Emit: entry chain first, then greedily the chain with the strongest
	// connection to placed blocks. Connection strengths are cached rather
	// than rescanned per candidate per round: each chain's incoming
	// cross-chain edges are collected once in proc.Edges() order, and when
	// a chain is placed only the chains it feeds are re-summed — over the
	// same ordered edge list, so every sum adds the same floats in the
	// same order as a full rescan and the selection (ties included) is
	// bit-identical to the quadratic loop this replaces.
	type inEdge struct {
		from int // source chain
		w    float64
	}
	inEdges := make([][]inEdge, n)
	feeds := make([][]int, n) // dedup'd target chains per source chain
	fed := make(map[[2]int]bool)
	for _, e := range proc.Edges() {
		cf, ct := chainOf[e.From], chainOf[e.To]
		if cf == ct {
			continue
		}
		inEdges[ct] = append(inEdges[ct], inEdge{from: cf, w: weights[[2]ir.BlockID{e.From, e.To}]})
		if !fed[[2]int{cf, ct}] {
			fed[[2]int{cf, ct}] = true
			feeds[cf] = append(feeds[cf], ct)
		}
	}

	placed := make([]bool, n)
	conn := make([]float64, n)
	resum := func(ci int) {
		s := 0.0
		for _, ie := range inEdges[ci] {
			if placed[ie.from] {
				s += ie.w
			}
		}
		conn[ci] = s
	}

	var order []ir.BlockID
	emit := func(ci int) {
		order = append(order, chains[ci]...)
		placed[ci] = true
		for _, ct := range feeds[ci] {
			if !placed[ct] {
				resum(ct)
			}
		}
	}
	emit(chainOf[proc.Entry])
	for len(order) < n {
		best, bestW := -1, -1.0
		for ci, ch := range chains {
			if ch == nil || placed[ci] {
				continue
			}
			w := conn[ci]
			if w > bestW || (w == bestW && (best == -1 || chains[ci][0] < chains[best][0])) {
				best, bestW = ci, w
			}
		}
		if best == -1 {
			break
		}
		emit(best)
	}
	return order
}

// Hints computes per-branch polarity hints from edge weights: true when
// the Br's True successor is at least as likely as the False one. The
// backend uses them for branches left without a fall-through.
func Hints(proc *cfg.Proc, weights Weights) map[ir.BlockID]bool {
	out := make(map[ir.BlockID]bool)
	for _, bb := range proc.BranchBlocks() {
		br, ok := proc.Block(bb).Term.(ir.Br)
		if !ok {
			continue
		}
		wt := weights[[2]ir.BlockID{bb, br.True}]
		wf := weights[[2]ir.BlockID{bb, br.False}]
		out[bb] = wt >= wf
	}
	return out
}

// Plan is a whole-program placement decision: block orders plus branch
// polarity hints, ready to hand to compile.Options.
type Plan struct {
	Layouts map[string][]ir.BlockID
	Hints   map[string]map[ir.BlockID]bool
}

// PlanAll computes layouts and polarity hints for the procedures present
// in probs. Procedures without an entry keep their original order — the
// right behaviour when a profile source could not produce a trustworthy
// estimate for them (reordering on no information can only hurt).
func PlanAll(prog *cfg.Program, probs map[string]markov.EdgeProbs) Plan {
	plan := Plan{
		Layouts: make(map[string][]ir.BlockID, len(probs)),
		Hints:   make(map[string]map[ir.BlockID]bool, len(probs)),
	}
	for _, p := range prog.Procs {
		ep, ok := probs[p.Name]
		if !ok {
			continue
		}
		w := FromProbs(p, ep)
		plan.Layouts[p.Name] = Optimize(p, w)
		plan.Hints[p.Name] = Hints(p, w)
	}
	return plan
}

// OptimizeAll computes layouts (without polarity hints) for the procedures
// present in probs; PlanAll is preferred.
func OptimizeAll(prog *cfg.Program, probs map[string]markov.EdgeProbs) map[string][]ir.BlockID {
	return PlanAll(prog, probs).Layouts
}

// Original returns the natural (lowering) order.
func Original(proc *cfg.Proc) []ir.BlockID {
	order := make([]ir.BlockID, len(proc.Blocks))
	for i := range order {
		order[i] = ir.BlockID(i)
	}
	return order
}

// Random returns a seeded random permutation with the entry block first —
// the pessimal-ish baseline layout.
func Random(proc *cfg.Proc, seed int64) []ir.BlockID {
	rng := stats.NewRNG(seed)
	rest := make([]ir.BlockID, 0, len(proc.Blocks)-1)
	for i := range proc.Blocks {
		if ir.BlockID(i) != proc.Entry {
			rest = append(rest, ir.BlockID(i))
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	return append([]ir.BlockID{proc.Entry}, rest...)
}

// RandomAll returns random layouts for all procedures.
func RandomAll(prog *cfg.Program, seed int64) map[string][]ir.BlockID {
	out := make(map[string][]ir.BlockID, len(prog.Procs))
	for i, p := range prog.Procs {
		out[p.Name] = Random(p, seed+int64(i))
	}
	return out
}
