package layout_test

import (
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/workload"
)

// diamond: 0 -> 1|2 -> 3
func diamond() *cfg.Proc {
	return &cfg.Proc{
		Name:  "d",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Term: ir.Jmp{Target: 3}},
			{ID: 2, Term: ir.Jmp{Target: 3}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
}

func TestOptimizeMakesHotEdgeFallThrough(t *testing.T) {
	p := diamond()
	w := layout.Weights{
		{0, 1}: 0.9, {0, 2}: 0.1,
		{1, 3}: 0.9, {2, 3}: 0.1,
	}
	order := layout.Optimize(p, w)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("hot successor not fall-through: %v", order)
	}
	// Cold arm placed after the hot chain.
	if order[2] != 3 {
		t.Fatalf("hot chain broken: %v", order)
	}
}

func TestOptimizeColdBranchFlip(t *testing.T) {
	p := diamond()
	w := layout.Weights{
		{0, 1}: 0.05, {0, 2}: 0.95,
		{1, 3}: 0.05, {2, 3}: 0.95,
	}
	order := layout.Optimize(p, w)
	if order[1] != 2 {
		t.Fatalf("hot (false) successor not fall-through: %v", order)
	}
}

func TestOptimizeIsPermutation(t *testing.T) {
	p := diamond()
	for seed := int64(0); seed < 10; seed++ {
		rng := stats.NewRNG(seed)
		w := layout.Weights{}
		for _, e := range p.Edges() {
			w[[2]ir.BlockID{e.From, e.To}] = rng.Float64()
		}
		order := layout.Optimize(p, w)
		seen := map[ir.BlockID]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("duplicate block in %v", order)
			}
			seen[b] = true
		}
		if len(order) != len(p.Blocks) {
			t.Fatalf("order %v not a permutation", order)
		}
		if order[0] != p.Entry {
			t.Fatalf("entry not first: %v", order)
		}
	}
}

func TestRandomLayoutProperties(t *testing.T) {
	p := diamond()
	a := layout.Random(p, 1)
	b := layout.Random(p, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic per seed")
		}
	}
	if a[0] != p.Entry {
		t.Fatal("entry not first")
	}
}

func TestFromProbsWeightsLoopHigher(t *testing.T) {
	// Loop: 0->1; 1->2|3; 2->1. With continue prob 0.9 the back edge's
	// traversal weight must exceed the exit edge's.
	p := &cfg.Proc{
		Name:  "loop",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Jmp{Target: 1}},
			{ID: 1, Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Term: ir.Jmp{Target: 1}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
	probs := markov.Uniform(p)
	probs[[2]ir.BlockID{1, 2}] = 0.9
	probs[[2]ir.BlockID{1, 3}] = 0.1
	w := layout.FromProbs(p, probs)
	if w[[2]ir.BlockID{1, 2}] <= w[[2]ir.BlockID{1, 3}] {
		t.Fatalf("loop edge weight %v not above exit %v",
			w[[2]ir.BlockID{1, 2}], w[[2]ir.BlockID{1, 3}])
	}
	// Expected traversals of the exit edge are exactly 1 per invocation.
	if diff := w[[2]ir.BlockID{1, 3}] - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("exit edge weight = %v, want 1", w[[2]ir.BlockID{1, 3}])
	}
}

const skewedProgram = `
func work(v int) int {
	var r int;
	r = 0;
	if (v < 900) {      // overwhelmingly likely under the workload
		r = v / 3;
	} else {
		r = v * 2 + 7;
	}
	if (v < 100) {      // unlikely
		r = r + 1000;
	}
	while (r > 400) {
		r = r - 150;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 400; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

func runWith(t *testing.T, layouts map[string][]ir.BlockID, seed int64) (*compile.Output, *mote.Machine) {
	t.Helper()
	out, err := compile.Build(skewedProgram, compile.Options{Layouts: layouts})
	if err != nil {
		t.Fatal(err)
	}
	cfgM := mote.DefaultConfig()
	cfgM.Sensor = workload.NewGaussian(stats.NewRNG(seed), 420, 160)
	m := mote.New(out.Code, cfgM)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestOracleLayoutReducesMispredicts is the paper's end metric in
// miniature: profile-guided placement must beat the original layout on
// misprediction count, and the program output must be unchanged.
func TestOracleLayoutReducesMispredicts(t *testing.T) {
	outBase, mBase := runWith(t, nil, 77)

	// Build oracle probabilities from the baseline run.
	probs := make(map[string]markov.EdgeProbs)
	for _, p := range outBase.CFG.Procs {
		probs[p.Name] = profile.OracleProbs(outBase.Meta.ProcByName[p.Name], p, mBase.BranchStats())
	}
	layouts := layout.OptimizeAll(outBase.CFG, probs)
	outOpt, mOpt := runWith(t, layouts, 77)

	if mBase.DebugOutput()[0] != mOpt.DebugOutput()[0] {
		t.Fatal("optimized layout changed program output")
	}
	base, opt := mBase.Stats(), mOpt.Stats()
	if opt.Mispredicts >= base.Mispredicts {
		t.Fatalf("mispredicts did not improve: base=%d opt=%d", base.Mispredicts, opt.Mispredicts)
	}
	if opt.Cycles >= base.Cycles {
		t.Fatalf("cycles did not improve: base=%d opt=%d", base.Cycles, opt.Cycles)
	}
	_ = outOpt
}

func TestRandomLayoutWorseThanOracle(t *testing.T) {
	outBase, mBase := runWith(t, nil, 99)
	probs := make(map[string]markov.EdgeProbs)
	for _, p := range outBase.CFG.Procs {
		probs[p.Name] = profile.OracleProbs(outBase.Meta.ProcByName[p.Name], p, mBase.BranchStats())
	}
	_, mOpt := runWith(t, layout.OptimizeAll(outBase.CFG, probs), 99)
	_, mRand := runWith(t, layout.RandomAll(outBase.CFG, 5), 99)
	if mOpt.Stats().Mispredicts >= mRand.Stats().Mispredicts {
		t.Fatalf("oracle (%d mispredicts) not better than random (%d)",
			mOpt.Stats().Mispredicts, mRand.Stats().Mispredicts)
	}
}

func TestHintsFollowWeights(t *testing.T) {
	p := diamond()
	w := layout.Weights{{0, 1}: 0.8, {0, 2}: 0.2}
	h := layout.Hints(p, w)
	if !h[0] {
		t.Fatal("hint should mark True successor hot")
	}
	w = layout.Weights{{0, 1}: 0.1, {0, 2}: 0.9}
	if layout.Hints(p, w)[0] {
		t.Fatal("hint should mark False successor hot")
	}
}

func TestPlanAllSkipsUnlistedProcs(t *testing.T) {
	out, err := compile.Build(skewedProgram, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs := map[string]markov.EdgeProbs{
		"work": markov.Uniform(out.CFG.Proc("work")),
	}
	plan := layout.PlanAll(out.CFG, probs)
	if _, ok := plan.Layouts["work"]; !ok {
		t.Fatal("listed proc not planned")
	}
	if _, ok := plan.Layouts["main"]; ok {
		t.Fatal("unlisted proc was planned; untrusted procs must keep their original layout")
	}
}

func TestMergeOnlyHottestOutEdge(t *testing.T) {
	// Branch 0 -> {1 (cold, 0.2), 2 (hot, 0.8)}, but 2 is claimed as the
	// fall-through of a hotter predecessor chain. The cold arm must NOT
	// become block 0's fall-through: better to leave 0 chain-terminal and
	// let branch polarity handle it.
	p := &cfg.Proc{
		Name:  "claim",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Jmp{Target: 1}},
			{ID: 1, Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Term: ir.Jmp{Target: 4}},
			{ID: 3, Term: ir.Jmp{Target: 2}},
			{ID: 4, Term: ir.Ret{Val: -1}},
		},
	}
	w := layout.Weights{
		{0, 1}: 1.0,
		{1, 2}: 0.2, // cold arm
		{1, 3}: 0.8, // hot arm
		{3, 2}: 0.8,
		{2, 4}: 1.0,
	}
	order := layout.Optimize(p, w)
	pos := map[ir.BlockID]int{}
	for i, b := range order {
		pos[b] = i
	}
	// Hot arm 3 must directly follow the branch block 1.
	if pos[3] != pos[1]+1 {
		t.Fatalf("hot arm not fall-through: %v", order)
	}
}
