package layout

// Pins the incremental chain-emission loop in Optimize to the quadratic
// rescan it replaced: optimizeReference below is that original emission
// retained verbatim, and the property test requires bit-identical layouts
// (float ties included) across random CFGs and weight distributions.

import (
	"sort"
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/stats"
)

// optimizeReference is Optimize with the original emission loop: per round,
// every unplaced chain rescans every CFG edge to compute its connection to
// the placed set.
func optimizeReference(proc *cfg.Proc, weights Weights) []ir.BlockID {
	n := len(proc.Blocks)
	chainOf := make([]int, n)
	chains := make([][]ir.BlockID, n)
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []ir.BlockID{ir.BlockID(i)}
	}

	type wedge struct {
		e [2]ir.BlockID
		w float64
	}
	var edges []wedge
	for _, e := range proc.Edges() {
		key := [2]ir.BlockID{e.From, e.To}
		edges = append(edges, wedge{e: key, w: weights[key]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].e[0] != edges[j].e[0] {
			return edges[i].e[0] < edges[j].e[0]
		}
		return edges[i].e[1] < edges[j].e[1]
	})

	maxOut := make(map[ir.BlockID]float64, n)
	for _, we := range edges {
		if we.w > maxOut[we.e[0]] {
			maxOut[we.e[0]] = we.w
		}
	}

	for _, we := range edges {
		a, b := we.e[0], we.e[1]
		if we.w < maxOut[a] {
			continue
		}
		ca, cb := chainOf[a], chainOf[b]
		if ca == cb {
			continue
		}
		tailA := chains[ca][len(chains[ca])-1]
		headB := chains[cb][0]
		if tailA != a || headB != b {
			continue
		}
		for _, blk := range chains[cb] {
			chainOf[blk] = ca
		}
		chains[ca] = append(chains[ca], chains[cb]...)
		chains[cb] = nil
	}

	placed := make(map[int]bool)
	var order []ir.BlockID
	emit := func(ci int) {
		order = append(order, chains[ci]...)
		placed[ci] = true
	}
	emit(chainOf[proc.Entry])
	for len(order) < n {
		best, bestW := -1, -1.0
		for ci, ch := range chains {
			if ch == nil || placed[ci] {
				continue
			}
			w := 0.0
			for _, e := range proc.Edges() {
				if chainOf[e.From] != ci && placed[chainOf[e.From]] && chainOf[e.To] == ci {
					w += weights[[2]ir.BlockID{e.From, e.To}]
				}
			}
			if w > bestW || (w == bestW && (best == -1 || chains[ci][0] < chains[best][0])) {
				best, bestW = ci, w
			}
		}
		if best == -1 {
			break
		}
		emit(best)
	}
	return order
}

// randomLayoutProc builds an arbitrary control-flow shape: entry 0, random
// jumps/branches (never back to the entry), a sprinkling of returns, and
// possibly-unreachable regions.
func randomLayoutProc(seed int64, n int) *cfg.Proc {
	rng := stats.NewRNG(seed)
	blocks := make([]*cfg.Block, n)
	target := func() ir.BlockID { return ir.BlockID(1 + rng.Intn(n-1)) }
	for i := 0; i < n; i++ {
		var term ir.Terminator
		switch {
		case n == 1 || rng.Float64() < 0.08:
			term = ir.Ret{Val: -1}
		case rng.Float64() < 0.45:
			term = ir.Jmp{Target: target()}
		default:
			term = ir.Br{Cond: 0, True: target(), False: target()}
		}
		blocks[i] = &cfg.Block{ID: ir.BlockID(i), Term: term}
	}
	return &cfg.Proc{Name: "r", Entry: 0, Blocks: blocks}
}

// randomLayoutWeights mixes continuous weights with small-integer ones so
// exact float ties (and the tie-break path) occur regularly.
func randomLayoutWeights(p *cfg.Proc, seed int64) Weights {
	rng := stats.NewRNG(seed)
	w := Weights{}
	for _, e := range p.Edges() {
		v := rng.Float64() * 10
		if rng.Bernoulli(0.5) {
			v = float64(rng.Intn(5))
		}
		w[[2]ir.BlockID{e.From, e.To}] = v
	}
	return w
}

func TestOptimizeMatchesReferenceEmission(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		n := 2 + int(seed%60)
		p := randomLayoutProc(seed, n)
		w := randomLayoutWeights(p, seed*7+1)
		got := Optimize(p, w)
		want := optimizeReference(p, w)
		if len(got) != len(want) {
			t.Fatalf("seed %d: len %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: order differs at %d:\n got %v\nwant %v", seed, i, got, want)
			}
		}
	}
}

func BenchmarkOptimize1kBlocks(b *testing.B) {
	p := randomLayoutProc(42, 1000)
	w := randomLayoutWeights(p, 43)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(p, w)
	}
}
