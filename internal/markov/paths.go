package markov

import (
	"math"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// Arc is one traversed edge of a path with its traversal count.
type Arc struct {
	Edge  [2]ir.BlockID
	Count int
}

// Path is one complete execution path: a block sequence from the entry to
// a return block.
type Path struct {
	Blocks []ir.BlockID
	// Arcs lists the traversed edges in order of first traversal. All
	// arithmetic over paths iterates Arcs (never EdgeCounts) so results
	// are bit-for-bit reproducible across runs.
	Arcs []Arc
	// EdgeCounts gives how many times each edge is traversed on the path
	// (loops can traverse an edge repeatedly). It mirrors Arcs for O(1)
	// lookup.
	EdgeCounts map[[2]ir.BlockID]int
}

// Prob returns the path's probability under the given edge probabilities:
// the product of edge probabilities over traversals.
func (p *Path) Prob(probs EdgeProbs) float64 {
	logp := 0.0
	for _, a := range p.Arcs {
		q := probs[a.Edge]
		if q <= 0 {
			return 0
		}
		logp += float64(a.Count) * math.Log(q)
	}
	return math.Exp(logp)
}

// EnumerateOptions bounds the path enumeration.
type EnumerateOptions struct {
	// MaxVisits caps how many times any single block may appear on a path
	// (the loop unrolling bound). Minimum 1.
	MaxVisits int
	// MaxPaths caps the number of paths returned.
	MaxPaths int
}

// DefaultEnumerateOptions bounds enumeration to 6 visits per block and
// 4096 paths — enough for the sensor kernels' CFGs while keeping the EM
// e-step cheap.
func DefaultEnumerateOptions() EnumerateOptions {
	return EnumerateOptions{MaxVisits: 6, MaxPaths: 4096}
}

// Enumerate lists execution paths of the procedure by depth-first search
// with a per-block visit cap. truncated reports whether any path was cut
// off by the caps (its probability mass is missing from the returned set;
// estimators renormalize over the enumerated paths).
func Enumerate(p *cfg.Proc, opts EnumerateOptions) (paths []*Path, truncated bool) {
	if opts.MaxVisits < 1 {
		opts.MaxVisits = 1
	}
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = 4096
	}
	visits := make([]int, len(p.Blocks))
	var seq []ir.BlockID

	var walk func(id ir.BlockID)
	walk = func(id ir.BlockID) {
		if len(paths) >= opts.MaxPaths {
			truncated = true
			return
		}
		if visits[int(id)] >= opts.MaxVisits {
			truncated = true
			return
		}
		visits[int(id)]++
		seq = append(seq, id)

		succs := p.Block(id).Succs()
		if len(succs) == 0 {
			path := &Path{
				Blocks:     append([]ir.BlockID(nil), seq...),
				EdgeCounts: make(map[[2]ir.BlockID]int),
			}
			for i := 0; i+1 < len(path.Blocks); i++ {
				e := [2]ir.BlockID{path.Blocks[i], path.Blocks[i+1]}
				if path.EdgeCounts[e] == 0 {
					path.Arcs = append(path.Arcs, Arc{Edge: e})
				}
				path.EdgeCounts[e]++
			}
			for i := range path.Arcs {
				path.Arcs[i].Count = path.EdgeCounts[path.Arcs[i].Edge]
			}
			paths = append(paths, path)
		} else {
			for _, s := range succs {
				walk(s)
			}
		}

		seq = seq[:len(seq)-1]
		visits[int(id)]--
	}
	walk(p.Entry)
	return paths, truncated
}

// PathTime computes a path's deterministic duration from the chain costs.
func PathTime(path *Path, costs *Costs) float64 {
	t := costs.EntryOverhead
	for _, b := range path.Blocks {
		t += costs.Block[int(b)]
	}
	for _, a := range path.Arcs {
		t += float64(a.Count) * costs.Edge[a.Edge]
	}
	return t
}

// SamplePath draws a random path through the chain (used by tests and the
// synthetic-chain experiments). rng is any func returning uniform [0,1).
// maxSteps guards against non-absorbing chains; a nil path is returned if
// the walk fails to absorb.
func (c *Chain) SamplePath(rng func() float64, maxSteps int) *Path {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	path := &Path{EdgeCounts: make(map[[2]ir.BlockID]int)}
	cur := c.proc.Entry
	path.Blocks = append(path.Blocks, cur)
	for step := 0; step < maxSteps; step++ {
		succs := c.proc.Block(cur).Succs()
		if len(succs) == 0 {
			return path
		}
		u := rng()
		acc := 0.0
		next := succs[len(succs)-1]
		for _, s := range succs {
			acc += c.probs[[2]ir.BlockID{cur, s}]
			if u < acc {
				next = s
				break
			}
		}
		e := [2]ir.BlockID{cur, next}
		if path.EdgeCounts[e] == 0 {
			path.Arcs = append(path.Arcs, Arc{Edge: e})
		}
		path.EdgeCounts[e]++
		for i := range path.Arcs {
			if path.Arcs[i].Edge == e {
				path.Arcs[i].Count = path.EdgeCounts[e]
				break
			}
		}
		path.Blocks = append(path.Blocks, next)
		cur = next
	}
	return nil
}
