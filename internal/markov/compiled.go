package markov

import (
	"math"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// EdgeIndex assigns every CFG edge of one procedure a dense index so the
// estimation hot loops can replace map lookups with slice indexing. Indices
// are assigned in (block ID, successor order) — a deterministic layout that
// matches the iteration order of the reference (map-based) estimators at
// the API boundary.
type EdgeIndex struct {
	edges [][2]ir.BlockID
	index map[[2]ir.BlockID]int32
}

// NewEdgeIndex builds the dense edge numbering of a procedure.
func NewEdgeIndex(p *cfg.Proc) *EdgeIndex {
	ix := &EdgeIndex{index: make(map[[2]ir.BlockID]int32)}
	for _, b := range p.Blocks {
		for _, s := range b.Succs() {
			e := [2]ir.BlockID{b.ID, s}
			if _, ok := ix.index[e]; ok {
				continue
			}
			ix.index[e] = int32(len(ix.edges))
			ix.edges = append(ix.edges, e)
		}
	}
	return ix
}

// Len returns the number of indexed edges.
func (ix *EdgeIndex) Len() int { return len(ix.edges) }

// Edge returns the edge at a dense index.
func (ix *EdgeIndex) Edge(i int) [2]ir.BlockID { return ix.edges[i] }

// Index returns the dense index of an edge.
func (ix *EdgeIndex) Index(e [2]ir.BlockID) (int32, bool) {
	i, ok := ix.index[e]
	return i, ok
}

// Dense projects an EdgeProbs map onto the dense layout. Edges missing from
// the map get probability 0.
func (ix *EdgeIndex) Dense(ep EdgeProbs) []float64 {
	out := make([]float64, len(ix.edges))
	for i, e := range ix.edges {
		out[i] = ep[e]
	}
	return out
}

// Probs converts a dense probability vector back to the map form used at
// the API boundary.
func (ix *EdgeIndex) Probs(v []float64) EdgeProbs {
	out := make(EdgeProbs, len(ix.edges))
	for i, e := range ix.edges {
		out[e] = v[i]
	}
	return out
}

// CompiledPaths is the dense, cache-friendly form of an enumerated path
// set: every path's arcs stored back to back in CSR layout as
// (edge index, traversal count) pairs. Path.Prob over the map form and
// PathProbs over this form are bit-for-bit identical — same arc order, same
// sequence of floating-point operations — so estimators can switch freely.
type CompiledPaths struct {
	Index *EdgeIndex
	// arcStart[j] .. arcStart[j+1] bounds path j's arcs in arcEdge/arcCount.
	arcStart []int32
	arcEdge  []int32
	// arcCount holds float64(Arc.Count) so the inner loop is a pure fused
	// multiply-sum with no int→float conversions.
	arcCount []float64
}

// Compile builds the dense form of a path set enumerated from p.
func Compile(p *cfg.Proc, paths []*Path) *CompiledPaths {
	ix := NewEdgeIndex(p)
	cp := &CompiledPaths{Index: ix, arcStart: make([]int32, len(paths)+1)}
	n := 0
	for _, path := range paths {
		n += len(path.Arcs)
	}
	cp.arcEdge = make([]int32, 0, n)
	cp.arcCount = make([]float64, 0, n)
	for j, path := range paths {
		cp.arcStart[j] = int32(len(cp.arcEdge))
		for _, a := range path.Arcs {
			ei, ok := ix.index[a.Edge]
			if !ok {
				// An arc over an edge absent from the CFG would be a path
				// enumeration bug; index it defensively so lookups stay
				// in-bounds.
				ei = int32(len(ix.edges))
				ix.index[a.Edge] = ei
				ix.edges = append(ix.edges, a.Edge)
			}
			cp.arcEdge = append(cp.arcEdge, ei)
			cp.arcCount = append(cp.arcCount, float64(a.Count))
		}
		cp.arcStart[j+1] = int32(len(cp.arcEdge))
	}
	return cp
}

// NumPaths returns the number of compiled paths.
func (cp *CompiledPaths) NumPaths() int { return len(cp.arcStart) - 1 }

// LogProbs fills logq[i] = log(q[i]) for every indexed edge, with
// non-positive probabilities mapped to -Inf (so a path using such an edge
// gets probability exp(-Inf) = 0, exactly like Path.Prob's early return).
// This is the shared per-iteration table: one log per edge instead of one
// per arc per path.
func (cp *CompiledPaths) LogProbs(q, logq []float64) {
	for i, p := range q {
		if p <= 0 {
			logq[i] = math.Inf(-1)
		} else {
			logq[i] = math.Log(p)
		}
	}
}

// PathProbs computes every path's probability from the shared log table:
// out[j] = exp(Σ count·logq[edge]) over path j's arcs in order. The sum
// runs in the same arc order with the same operations as Path.Prob, so the
// results are bit-identical to the map-based form.
func (cp *CompiledPaths) PathProbs(logq, out []float64) {
	for j := 0; j+1 < len(cp.arcStart); j++ {
		logp := 0.0
		for a := cp.arcStart[j]; a < cp.arcStart[j+1]; a++ {
			logp += cp.arcCount[a] * logq[cp.arcEdge[a]]
		}
		out[j] = math.Exp(logp)
	}
}

// AccumulateArcs adds gamma·count to w[edge] for each arc of path j, in
// arc order — the estimators' M-step accumulation. The fixed order keeps
// floating-point sums reproducible run to run.
func (cp *CompiledPaths) AccumulateArcs(j int, gamma float64, w []float64) {
	for a := cp.arcStart[j]; a < cp.arcStart[j+1]; a++ {
		w[cp.arcEdge[a]] += gamma * cp.arcCount[a]
	}
}

// SortedTimes is the binary-search index over a path set's deterministic
// durations: times ascending, ties broken by path index, with Idx mapping
// each sorted position back to the original path index.
type SortedTimes struct {
	Times []float64
	Idx   []int32
}

// NewSortedTimes indexes a PathTimes slice for O(log n) window and
// nearest-path queries.
func NewSortedTimes(times []float64) *SortedTimes {
	st := &SortedTimes{Times: make([]float64, len(times)), Idx: make([]int32, len(times))}
	for i := range st.Idx {
		st.Idx[i] = int32(i)
	}
	sort.Slice(st.Idx, func(a, b int) bool {
		i, j := st.Idx[a], st.Idx[b]
		if times[i] != times[j] {
			return times[i] < times[j]
		}
		return i < j
	})
	for i, j := range st.Idx {
		st.Times[i] = times[j]
	}
	return st
}

// Window returns the half-open sorted-position range [lo, hi) of paths with
// |t − time| <= hw, under the exact floating-point predicate
// math.Abs(t−τ) <= hw that the reference estimator scans for. Correctness
// rests on IEEE-754 subtraction being monotone: fl(t−τ) is nonincreasing in
// τ, so the predicate region is contiguous and both boundaries binary
// search.
func (st *SortedTimes) Window(t, hw float64) (lo, hi int) {
	lo = sort.Search(len(st.Times), func(i int) bool { return t-st.Times[i] <= hw })
	hi = sort.Search(len(st.Times), func(i int) bool { return st.Times[i]-t > hw })
	return lo, hi
}

// Within reports whether any path time lies within width of t (the exact
// predicate math.Abs(t−τ) <= width).
func (st *SortedTimes) Within(t, width float64) bool {
	lo, hi := st.Window(t, width)
	return lo < hi
}

// Nearest returns the original index of the path whose time is closest to
// t, replicating the reference scan exactly: among all paths achieving the
// minimal math.Abs(t−τ), the smallest path index wins. Returns -1 on an
// empty set.
func (st *SortedTimes) Nearest(t float64) int {
	n := len(st.Times)
	if n == 0 {
		return -1
	}
	// Insertion point: first time >= t.
	p := sort.SearchFloat64s(st.Times, t)
	best := math.Inf(1)
	if p > 0 {
		best = math.Abs(t - st.Times[p-1])
	}
	if p < n {
		if d := math.Abs(t - st.Times[p]); d < best {
			best = d
		}
	}
	// Distances are nondecreasing moving away from the insertion point, so
	// every path achieving the minimum sits in the two runs adjacent to it.
	idx := -1
	for i := p - 1; i >= 0 && math.Abs(t-st.Times[i]) == best; i-- {
		if j := int(st.Idx[i]); idx < 0 || j < idx {
			idx = j
		}
	}
	for i := p; i < n && math.Abs(t-st.Times[i]) == best; i++ {
		if j := int(st.Idx[i]); idx < 0 || j < idx {
			idx = j
		}
	}
	return idx
}
