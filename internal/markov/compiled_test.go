package markov

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/stats"
)

// diamondChain builds k sequential diamonds (2^k paths) with distinct arm
// costs so every path has a unique duration — the scaling shape used by the
// kernel benchmarks.
func diamondChain(k int) (*cfg.Proc, *Costs) {
	var blocks []*cfg.Block
	next := func() ir.BlockID { return ir.BlockID(len(blocks)) }
	costs := &Costs{Edge: make(map[[2]ir.BlockID]float64)}
	var blockCosts []float64
	for i := 0; i < k; i++ {
		head := next()
		blocks = append(blocks, &cfg.Block{ID: head, Term: ir.Br{Cond: 0, True: head + 1, False: head + 2}})
		blockCosts = append(blockCosts, 3)
		blocks = append(blocks, &cfg.Block{ID: head + 1, Term: ir.Jmp{Target: head + 3}})
		blockCosts = append(blockCosts, float64(int(1)<<uint(i))) // distinct power-of-two arm
		blocks = append(blocks, &cfg.Block{ID: head + 2, Term: ir.Jmp{Target: head + 3}})
		blockCosts = append(blockCosts, 0)
		if i == k-1 {
			blocks = append(blocks, &cfg.Block{ID: head + 3, Term: ir.Ret{Val: -1}})
			blockCosts = append(blockCosts, 5)
		}
	}
	p := &cfg.Proc{Name: fmt.Sprintf("chain%d", k), Entry: 0, Blocks: blocks}
	costs.Block = blockCosts
	for _, e := range p.Edges() {
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = 0
	}
	return p, costs
}

func TestCompiledPathProbsMatchReference(t *testing.T) {
	for _, build := range []func() *cfg.Proc{diamond, loopProc} {
		p := build()
		paths, _ := Enumerate(p, EnumerateOptions{MaxVisits: 6, MaxPaths: 1000})
		cp := Compile(p, paths)
		if cp.NumPaths() != len(paths) {
			t.Fatalf("%s: NumPaths = %d, want %d", p.Name, cp.NumPaths(), len(paths))
		}
		ep := Uniform(p)
		// Skew every branch so the probabilities are not symmetric.
		for _, b := range p.Blocks {
			succs := b.Succs()
			if len(succs) < 2 {
				continue
			}
			ep[[2]ir.BlockID{b.ID, succs[0]}] = 0.3
			ep[[2]ir.BlockID{b.ID, succs[1]}] = 0.7
		}
		q := cp.Index.Dense(ep)
		logq := make([]float64, cp.Index.Len())
		cp.LogProbs(q, logq)
		got := make([]float64, len(paths))
		cp.PathProbs(logq, got)
		for j, path := range paths {
			want := path.Prob(ep)
			if got[j] != want {
				t.Fatalf("%s path %d: dense prob %v != reference %v", p.Name, j, got[j], want)
			}
		}
	}
}

func TestCompiledPathProbsZeroEdge(t *testing.T) {
	p := diamond()
	paths, _ := Enumerate(p, DefaultEnumerateOptions())
	cp := Compile(p, paths)
	ep := Uniform(p)
	ep[edge(0, 1)] = 0
	ep[edge(0, 2)] = 1
	q := cp.Index.Dense(ep)
	logq := make([]float64, cp.Index.Len())
	cp.LogProbs(q, logq)
	out := make([]float64, len(paths))
	cp.PathProbs(logq, out)
	for j, path := range paths {
		if want := path.Prob(ep); out[j] != want {
			t.Fatalf("path %d: dense %v != reference %v under a zero edge", j, out[j], want)
		}
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	p, _ := diamondChain(3)
	ix := NewEdgeIndex(p)
	ep := Uniform(p)
	if ix.Len() != len(ep) {
		t.Fatalf("indexed %d edges, Uniform has %d", ix.Len(), len(ep))
	}
	dense := ix.Dense(ep)
	back := ix.Probs(dense)
	if len(back) != len(ep) {
		t.Fatalf("round trip lost edges: %d vs %d", len(back), len(ep))
	}
	for e, v := range ep {
		if back[e] != v {
			t.Fatalf("edge %v: %v != %v after round trip", e, back[e], v)
		}
	}
	for i := 0; i < ix.Len(); i++ {
		if j, ok := ix.Index(ix.Edge(i)); !ok || int(j) != i {
			t.Fatalf("Index(Edge(%d)) = %d, %v", i, j, ok)
		}
	}
}

func TestSortedTimesWindowMatchesScan(t *testing.T) {
	p, costs := diamondChain(6)
	paths, _ := Enumerate(p, DefaultEnumerateOptions())
	times := make([]float64, len(paths))
	for i, path := range paths {
		times[i] = PathTime(path, costs)
	}
	st := NewSortedTimes(times)
	if !sort.Float64sAreSorted(st.Times) {
		t.Fatal("times not sorted")
	}
	rng := stats.NewRNG(17)
	for trial := 0; trial < 2000; trial++ {
		obs := rng.Float64() * (st.Times[len(st.Times)-1] + 20)
		hw := rng.Float64() * 10
		// Reference: the linear scan predicate.
		want := map[int]bool{}
		for j, tau := range times {
			if math.Abs(obs-tau) <= hw {
				want[j] = true
			}
		}
		lo, hi := st.Window(obs, hw)
		got := map[int]bool{}
		for i := lo; i < hi; i++ {
			got[int(st.Idx[i])] = true
		}
		if len(got) != len(want) {
			t.Fatalf("window(%v,%v): %d paths, scan found %d", obs, hw, len(got), len(want))
		}
		for j := range want {
			if !got[j] {
				t.Fatalf("window(%v,%v) missing path %d", obs, hw, j)
			}
		}
		if st.Within(obs, hw) != (len(want) > 0) {
			t.Fatalf("Within(%v,%v) = %v, want %v", obs, hw, st.Within(obs, hw), len(want) > 0)
		}
	}
}

func TestSortedTimesNearestMatchesScan(t *testing.T) {
	// Duplicate times included: nearest must break ties toward the lowest
	// path index, exactly like the reference scan.
	times := []float64{40, 10, 20, 20, 30, 10, 25}
	st := NewSortedTimes(times)
	rng := stats.NewRNG(23)
	for trial := 0; trial < 2000; trial++ {
		obs := rng.Float64() * 50
		best, bd := -1, math.Inf(1)
		for j, tau := range times {
			if d := math.Abs(obs - tau); d < bd {
				best, bd = j, d
			}
		}
		if got := st.Nearest(obs); got != best {
			t.Fatalf("Nearest(%v) = %d, want %d", obs, got, best)
		}
	}
	if (&SortedTimes{}).Nearest(5) != -1 {
		t.Fatal("empty Nearest must return -1")
	}
}

func BenchmarkCompiledPathProbs(b *testing.B) {
	for _, k := range []int{8, 10, 12} {
		p, _ := diamondChain(k)
		paths, _ := Enumerate(p, EnumerateOptions{MaxVisits: 6, MaxPaths: 1 << 13})
		cp := Compile(p, paths)
		ep := Uniform(p)
		q := cp.Index.Dense(ep)
		logq := make([]float64, cp.Index.Len())
		out := make([]float64, cp.NumPaths())
		b.Run(fmt.Sprintf("paths=%d", len(paths)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp.LogProbs(q, logq)
				cp.PathProbs(logq, out)
			}
		})
	}
}

func BenchmarkPathProbsReference(b *testing.B) {
	for _, k := range []int{8, 10, 12} {
		p, _ := diamondChain(k)
		paths, _ := Enumerate(p, EnumerateOptions{MaxVisits: 6, MaxPaths: 1 << 13})
		ep := Uniform(p)
		out := make([]float64, len(paths))
		b.Run(fmt.Sprintf("paths=%d", len(paths)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, path := range paths {
					out[j] = path.Prob(ep)
				}
			}
		})
	}
}
