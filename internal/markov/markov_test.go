package markov

import (
	"math"
	"testing"
	"testing/quick"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/stats"
)

// diamond: b0 -Br-> b1|b2 -> b3 -> exit
func diamond() *cfg.Proc {
	return &cfg.Proc{
		Name:  "diamond",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Term: ir.Jmp{Target: 3}},
			{ID: 2, Term: ir.Jmp{Target: 3}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
}

// loop: b0 -> b1(head) -Br-> b2(body)|b3(exit); b2 -> b1
func loopProc() *cfg.Proc {
	return &cfg.Proc{
		Name:  "loop",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Jmp{Target: 1}},
			{ID: 1, Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Term: ir.Jmp{Target: 1}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
}

func edge(a, b int) [2]ir.BlockID { return [2]ir.BlockID{ir.BlockID(a), ir.BlockID(b)} }

func TestUniform(t *testing.T) {
	ep := Uniform(diamond())
	if ep[edge(0, 1)] != 0.5 || ep[edge(0, 2)] != 0.5 {
		t.Fatalf("branch probs = %v", ep)
	}
	if ep[edge(1, 3)] != 1 {
		t.Fatalf("jump prob = %v", ep[edge(1, 3)])
	}
}

func TestNewValidates(t *testing.T) {
	p := diamond()
	ep := Uniform(p)
	if _, err := New(p, ep); err != nil {
		t.Fatal(err)
	}
	bad := ep.Clone()
	bad[edge(0, 1)] = 0.9 // sums to 1.4
	if _, err := New(p, bad); err == nil {
		t.Fatal("invalid probabilities accepted")
	}
	missing := ep.Clone()
	delete(missing, edge(0, 2))
	if _, err := New(p, missing); err == nil {
		t.Fatal("missing edge accepted")
	}
	neg := ep.Clone()
	neg[edge(0, 1)] = -0.1
	neg[edge(0, 2)] = 1.1
	if _, err := New(p, neg); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestExpectedVisitsDiamond(t *testing.T) {
	p := diamond()
	ep := Uniform(p)
	ep[edge(0, 1)] = 0.3
	ep[edge(0, 2)] = 0.7
	c, err := New(p, ep)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.ExpectedVisits()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.3, 0.7, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("visits = %v, want %v", v, want)
		}
	}
	tr, err := c.ExpectedEdgeTraversals()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr[edge(0, 1)]-0.3) > 1e-12 || math.Abs(tr[edge(1, 3)]-0.3) > 1e-12 {
		t.Fatalf("traversals = %v", tr)
	}
}

func TestExpectedVisitsLoop(t *testing.T) {
	// Loop continues with probability q: body visited q/(1-q)·... —
	// header expected visits = 1/(1-q), body = q/(1-q).
	p := loopProc()
	q := 0.8
	ep := Uniform(p)
	ep[edge(1, 2)] = q
	ep[edge(1, 3)] = 1 - q
	c, err := New(p, ep)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.ExpectedVisits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[1]-5) > 1e-9 {
		t.Fatalf("header visits = %v, want 5", v[1])
	}
	if math.Abs(v[2]-4) > 1e-9 {
		t.Fatalf("body visits = %v, want 4", v[2])
	}
}

func TestNotAbsorbing(t *testing.T) {
	p := loopProc()
	ep := Uniform(p)
	ep[edge(1, 2)] = 1
	ep[edge(1, 3)] = 0
	c, err := New(p, ep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExpectedVisits(); err == nil {
		t.Fatal("non-absorbing chain accepted")
	}
}

func costsFor(p *cfg.Proc, block float64) *Costs {
	c := &Costs{Block: make([]float64, len(p.Blocks)), Edge: make(map[[2]ir.BlockID]float64)}
	for i := range c.Block {
		c.Block[i] = block
	}
	for _, e := range p.Edges() {
		c.Edge[[2]ir.BlockID{e.From, e.To}] = 0
	}
	return c
}

func TestMeanVarDiamondAnalytic(t *testing.T) {
	p := diamond()
	ep := Uniform(p)
	ep[edge(0, 1)] = 0.25
	ep[edge(0, 2)] = 0.75
	c, _ := New(p, ep)

	costs := costsFor(p, 0)
	costs.Block[0] = 10
	costs.Block[1] = 100 // rare fast/slow arm
	costs.Block[2] = 20
	costs.Block[3] = 5
	costs.EntryOverhead = 3

	mean, variance, err := c.MeanVar(costs)
	if err != nil {
		t.Fatal(err)
	}
	// T = 3 + 10 + (100 w.p. .25 | 20 w.p. .75) + 5.
	wantMean := 3 + 10 + 0.25*100 + 0.75*20 + 5
	wantVar := 0.25 * 0.75 * (100 - 20) * (100 - 20)
	if math.Abs(mean-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 1e-6 {
		t.Fatalf("variance = %v, want %v", variance, wantVar)
	}
}

func TestMeanVarGeometricLoop(t *testing.T) {
	// Loop body executes K ~ Geometric(1-q) times; with unit block costs
	// analytic mean/var follow from the geometric distribution.
	p := loopProc()
	q := 0.6
	ep := Uniform(p)
	ep[edge(1, 2)] = q
	ep[edge(1, 3)] = 1 - q
	c, _ := New(p, ep)

	costs := costsFor(p, 0)
	costs.Block[2] = 7 // only the body costs time

	mean, variance, err := c.MeanVar(costs)
	if err != nil {
		t.Fatal(err)
	}
	// K ~ Geom: E[K] = q/(1-q), Var[K] = q/(1-q)².
	ek := q / (1 - q)
	vk := q / ((1 - q) * (1 - q))
	if math.Abs(mean-7*ek) > 1e-9 {
		t.Fatalf("mean = %v, want %v", mean, 7*ek)
	}
	if math.Abs(variance-49*vk) > 1e-6 {
		t.Fatalf("variance = %v, want %v", variance, 49*vk)
	}
}

func TestMeanVarMatchesSimulation(t *testing.T) {
	p := loopProc()
	ep := Uniform(p)
	ep[edge(1, 2)] = 0.7
	ep[edge(1, 3)] = 0.3
	c, _ := New(p, ep)
	costs := costsFor(p, 1)
	costs.Edge[edge(1, 2)] = 2.5
	costs.EntryOverhead = 4

	mean, variance, err := c.MeanVar(costs)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	var m stats.Moments
	for i := 0; i < 200000; i++ {
		path := c.SamplePath(rng.Float64, 100000)
		if path == nil {
			t.Fatal("sample failed to absorb")
		}
		m.Push(PathTime(path, costs))
	}
	if math.Abs(m.Mean()-mean) > 0.01*mean {
		t.Fatalf("simulated mean %v vs analytic %v", m.Mean(), mean)
	}
	if math.Abs(m.Variance()-variance) > 0.03*variance {
		t.Fatalf("simulated var %v vs analytic %v", m.Variance(), variance)
	}
}

func TestEnumerateDiamond(t *testing.T) {
	paths, truncated := Enumerate(diamond(), DefaultEnumerateOptions())
	if truncated {
		t.Fatal("diamond enumeration truncated")
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	ep := Uniform(diamond())
	total := 0.0
	for _, path := range paths {
		total += path.Prob(ep)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("path probabilities sum to %v", total)
	}
}

func TestEnumerateLoopTruncation(t *testing.T) {
	paths, truncated := Enumerate(loopProc(), EnumerateOptions{MaxVisits: 4, MaxPaths: 100})
	if !truncated {
		t.Fatal("loop enumeration must truncate")
	}
	// Paths: 0,1,2,3 iterations of the body (header visited ≤ 4 times).
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	// Edge counts on the longest path.
	last := paths[len(paths)-1]
	maxBody := 0
	for _, p := range paths {
		if n := p.EdgeCounts[edge(2, 1)]; n > maxBody {
			maxBody = n
		}
	}
	_ = last
	if maxBody != 3 {
		t.Fatalf("max back-edge traversals = %d, want 3", maxBody)
	}
}

func TestEnumerateMaxPaths(t *testing.T) {
	paths, truncated := Enumerate(loopProc(), EnumerateOptions{MaxVisits: 50, MaxPaths: 5})
	if !truncated || len(paths) > 5 {
		t.Fatalf("cap not honored: %d paths, truncated=%v", len(paths), truncated)
	}
}

// Property: for random absorbing diamonds-with-loop, expected visits are
// consistent with path enumeration (visits = Σ_paths prob · count).
func TestVisitsMatchPathsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		p := loopProc()
		q := 0.05 + 0.6*rng.Float64()
		ep := Uniform(p)
		ep[edge(1, 2)] = q
		ep[edge(1, 3)] = 1 - q
		c, err := New(p, ep)
		if err != nil {
			return false
		}
		visits, err := c.ExpectedVisits()
		if err != nil {
			return false
		}
		// Enumerate deep enough that the truncated tail is negligible.
		paths, _ := Enumerate(p, EnumerateOptions{MaxVisits: 60, MaxPaths: 100000})
		est := make([]float64, len(p.Blocks))
		for _, path := range paths {
			pr := path.Prob(ep)
			for _, b := range path.Blocks {
				est[int(b)] += pr
			}
		}
		for i := range visits {
			if math.Abs(visits[i]-est[i]) > 1e-6*(1+visits[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
