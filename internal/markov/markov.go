// Package markov models a procedure's execution as a discrete-time
// absorbing Markov chain, exactly as the paper frames it: basic blocks are
// states, procedure exit is the absorbing state, and conditional branches
// carry unknown transition probabilities. Given branch probabilities it
// computes expected block visit counts and the mean/variance of the
// end-to-end duration; it also enumerates execution paths (with a loop
// unrolling bound) for the mixture-based estimators.
package markov

import (
	"errors"
	"fmt"
	"math"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/linalg"
)

// EdgeProbs maps CFG edges (from, to block IDs) to transition
// probabilities. Unconditional edges have probability 1; each branch
// block's outgoing probabilities must sum to 1.
type EdgeProbs map[[2]ir.BlockID]float64

// Clone deep-copies the probability map.
func (ep EdgeProbs) Clone() EdgeProbs {
	out := make(EdgeProbs, len(ep))
	for k, v := range ep {
		out[k] = v
	}
	return out
}

// Uniform returns edge probabilities that split every branch evenly — the
// estimators' starting point.
func Uniform(p *cfg.Proc) EdgeProbs {
	ep := make(EdgeProbs)
	for _, b := range p.Blocks {
		succs := b.Succs()
		if len(succs) == 0 {
			continue
		}
		q := 1 / float64(len(succs))
		for _, s := range succs {
			ep[[2]ir.BlockID{b.ID, s}] = q
		}
	}
	return ep
}

// ErrNotAbsorbing is returned when the chain cannot reach the exit from
// some visited state (an infinite loop under the given probabilities).
var ErrNotAbsorbing = errors.New("markov: exit unreachable (chain is not absorbing)")

// Chain is the absorbing DTMC of one procedure under given probabilities.
type Chain struct {
	proc  *cfg.Proc
	probs EdgeProbs
}

// New validates the probabilities against the CFG and builds a chain.
func New(p *cfg.Proc, probs EdgeProbs) (*Chain, error) {
	for _, b := range p.Blocks {
		succs := b.Succs()
		if len(succs) == 0 {
			continue
		}
		sum := 0.0
		for _, s := range succs {
			q, ok := probs[[2]ir.BlockID{b.ID, s}]
			if !ok {
				return nil, fmt.Errorf("markov: %s: missing probability for edge %v->%v", p.Name, b.ID, s)
			}
			if q < 0 || q > 1 || math.IsNaN(q) {
				return nil, fmt.Errorf("markov: %s: edge %v->%v probability %v out of range", p.Name, b.ID, s, q)
			}
			sum += q
		}
		if math.Abs(sum-1) > 1e-6 {
			return nil, fmt.Errorf("markov: %s: block %v outgoing probabilities sum to %v", p.Name, b.ID, sum)
		}
	}
	return &Chain{proc: p, probs: probs}, nil
}

// Proc returns the underlying procedure.
func (c *Chain) Proc() *cfg.Proc { return c.proc }

// Probs returns the chain's edge probabilities.
func (c *Chain) Probs() EdgeProbs { return c.probs }

// transition returns P as a dense matrix over block indices (transient
// states only; the absorbing exit is implicit).
func (c *Chain) transition() *linalg.Matrix {
	n := len(c.proc.Blocks)
	p := linalg.NewMatrix(n, n)
	for _, b := range c.proc.Blocks {
		for _, s := range b.Succs() {
			p.Add(int(b.ID), int(s), c.probs[[2]ir.BlockID{b.ID, s}])
		}
	}
	return p
}

// ExpectedVisits returns, for each block, the expected number of visits in
// one invocation started at the entry: n = (I − Pᵀ)⁻¹ e_entry.
func (c *Chain) ExpectedVisits() ([]float64, error) {
	n := len(c.proc.Blocks)
	p := c.transition()
	a := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Add(i, j, -p.At(j, i)) // transpose of P
		}
	}
	rhs := make([]float64, n)
	rhs[int(c.proc.Entry)] = 1
	visits, err := linalg.Solve(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotAbsorbing, err)
	}
	for i, v := range visits {
		if v < -1e-9 {
			return nil, fmt.Errorf("markov: negative expected visits %v for block %d", v, i)
		}
		if v < 0 {
			visits[i] = 0
		}
	}
	return visits, nil
}

// ExpectedEdgeTraversals returns the expected traversal count of each edge:
// visits(from) · p(edge).
func (c *Chain) ExpectedEdgeTraversals() (map[[2]ir.BlockID]float64, error) {
	visits, err := c.ExpectedVisits()
	if err != nil {
		return nil, err
	}
	out := make(map[[2]ir.BlockID]float64)
	for _, b := range c.proc.Blocks {
		for _, s := range b.Succs() {
			key := [2]ir.BlockID{b.ID, s}
			out[key] = visits[int(b.ID)] * c.probs[key]
		}
	}
	return out, nil
}

// Costs carries the deterministic timing parameters of the chain: the cycle
// cost of each block, the extra cycles on each edge, and the fixed
// per-invocation overhead. These come straight from the compiler metadata.
type Costs struct {
	Block         []float64 // indexed by block ID
	Edge          map[[2]ir.BlockID]float64
	EntryOverhead float64
}

// reward returns r(u,v): the cost charged when transitioning u→v (block
// u's cost plus the edge extra). Exit transitions (to the implicit
// absorbing state) charge only the block cost.
func (c *Chain) reward(costs *Costs, u ir.BlockID, v ir.BlockID, toAbsorbing bool) float64 {
	r := costs.Block[int(u)]
	if !toAbsorbing {
		r += costs.Edge[[2]ir.BlockID{u, v}]
	}
	return r
}

// MeanVar returns the mean and variance of one invocation's duration under
// the chain, by first-step analysis of the accumulated transition rewards:
//
//	m1(u) = Σ_v p(u,v)·(r(u,v) + m1(v))
//	m2(u) = Σ_v p(u,v)·(r(u,v)² + 2·r(u,v)·m1(v) + m2(v))
//
// solved as two linear systems in the transient states.
func (c *Chain) MeanVar(costs *Costs) (mean, variance float64, err error) {
	n := len(c.proc.Blocks)
	if len(costs.Block) != n {
		return 0, 0, fmt.Errorf("markov: %d block costs for %d blocks", len(costs.Block), n)
	}
	p := c.transition()
	a := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Add(i, j, -p.At(i, j))
		}
	}
	fact, err := linalg.Factor(a)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrNotAbsorbing, err)
	}

	// First moment.
	r1 := make([]float64, n)
	for _, b := range c.proc.Blocks {
		succs := b.Succs()
		if len(succs) == 0 {
			r1[int(b.ID)] = c.reward(costs, b.ID, 0, true)
			continue
		}
		for _, s := range succs {
			q := c.probs[[2]ir.BlockID{b.ID, s}]
			r1[int(b.ID)] += q * c.reward(costs, b.ID, s, false)
		}
	}
	m1, err := fact.SolveVec(r1)
	if err != nil {
		return 0, 0, err
	}

	// Second moment.
	r2 := make([]float64, n)
	for _, b := range c.proc.Blocks {
		succs := b.Succs()
		if len(succs) == 0 {
			r := c.reward(costs, b.ID, 0, true)
			r2[int(b.ID)] = r * r
			continue
		}
		for _, s := range succs {
			q := c.probs[[2]ir.BlockID{b.ID, s}]
			r := c.reward(costs, b.ID, s, false)
			r2[int(b.ID)] += q * (r*r + 2*r*m1[int(s)])
		}
	}
	m2, err := fact.SolveVec(r2)
	if err != nil {
		return 0, 0, err
	}

	e := int(c.proc.Entry)
	mean = m1[e] + costs.EntryOverhead
	variance = m2[e] - m1[e]*m1[e]
	if variance < 0 && variance > -1e-6 {
		variance = 0
	}
	return mean, variance, nil
}
