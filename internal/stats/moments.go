package stats

import (
	"math"
	"sort"
)

// Moments accumulates streaming mean and variance (Welford's algorithm),
// plus min/max, without storing the samples.
type Moments struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Push adds a sample.
func (m *Moments) Push(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples pushed.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest sample (0 if empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest sample (0 if empty).
func (m *Moments) Max() float64 { return m.max }

// Mean returns the mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var m Moments
	for _, x := range xs {
		m.Push(x)
	}
	return m.Variance()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation on a sorted copy. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
