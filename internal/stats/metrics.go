package stats

import (
	"fmt"
	"math"
)

// MAE returns the mean absolute error between equal-length vectors.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// RMSE returns the root-mean-square error between equal-length vectors.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// MaxAbsError returns the largest absolute componentwise difference.
func MaxAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: MaxAbsError length mismatch %d vs %d", len(a), len(b))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// TotalVariation returns the total-variation distance ½Σ|pᵢ−qᵢ| between two
// discrete distributions of equal support.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: TV length mismatch %d vs %d", len(p), len(q))
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// KLDivergence returns D(p‖q) in nats, treating 0·log(0/q) as 0 and
// returning +Inf when p places mass where q does not.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL length mismatch %d vs %d", len(p), len(q))
	}
	s := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		s += p[i] * math.Log(p[i]/q[i])
	}
	return s, nil
}

// CDF returns the empirical CDF of xs evaluated at each point of grid
// (grid must be ascending).
func CDF(xs, grid []float64) []float64 {
	out := make([]float64, len(grid))
	if len(xs) == 0 {
		return out
	}
	for i, g := range grid {
		n := 0
		for _, x := range xs {
			if x <= g {
				n++
			}
		}
		out[i] = float64(n) / float64(len(xs))
	}
	return out
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NormalizeSimplex projects a nonnegative weight vector onto the
// probability simplex by scaling; if the vector is all zeros it returns the
// uniform distribution. The result always sums to 1 (up to float rounding).
func NormalizeSimplex(w []float64) []float64 {
	out := make([]float64, len(w))
	total := 0.0
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(w))
		}
		return out
	}
	for i, v := range w {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}
