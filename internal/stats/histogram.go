package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside
// the range are clamped into the first/last bin so no mass is lost — the
// tomography estimators rely on bin counts summing to the sample count.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with n bins covering [lo, hi).
// It panics if the range is empty or n is not positive.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if !(hi > lo) || n <= 0 {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) with %d bins", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinIndex returns the bin a value falls into, clamped to the valid range.
func (h *Histogram) BinIndex(x float64) int {
	i := int(math.Floor((x - h.Lo) / h.BinWidth()))
	if i < 0 {
		return 0
	}
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// Push adds a sample.
func (h *Histogram) Push(x float64) {
	h.Counts[h.BinIndex(x)]++
	h.total++
}

// Total returns the number of samples pushed.
func (h *Histogram) Total() int { return h.total }

// Density returns the normalized bin frequencies (empirical pmf over bins).
// The result is all zeros if the histogram is empty.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// String renders a compact ASCII sketch for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * 40 / max
		}
		fmt.Fprintf(&b, "%10.1f |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
