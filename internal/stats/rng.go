// Package stats provides the statistical substrate for the tomography
// estimators and the workload generators: a seedable RNG with the
// distributions the system needs, streaming moments, histograms, and the
// error metrics used by the evaluation harness.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seedable random source exposing the distributions the system
// uses. It is a thin wrapper over math/rand so every simulation and
// estimator run is reproducible from a single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Normal returns a sample from N(mu, sigma²).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Exponential returns a sample from Exp(rate); mean is 1/rate.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential rate must be positive")
	}
	return g.r.ExpFloat64() / rate
}

// Poisson returns a sample from Poisson(lambda) via inversion for small
// lambda and normal approximation for large lambda.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(g.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success for
// success probability p (support {0,1,2,...}).
func (g *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric p must be in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := g.r.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// Categorical returns an index sampled with the given (nonnegative,
// not necessarily normalized) weights. It panics on an all-zero weight
// vector.
func (g *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: all-zero categorical weights")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new RNG deterministically derived from this one, for
// giving independent streams to subcomponents.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}
