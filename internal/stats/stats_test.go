package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(1)
	f1 := g.Fork()
	f2 := g.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked streams are identical")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(7)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Push(g.Normal(5, 2))
	}
	if math.Abs(m.Mean()-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", m.Mean())
	}
	if math.Abs(m.StdDev()-2) > 0.05 {
		t.Fatalf("stddev = %v, want ~2", m.StdDev())
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(9)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Push(g.Exponential(4))
	}
	if math.Abs(m.Mean()-0.25) > 0.01 {
		t.Fatalf("mean = %v, want ~0.25", m.Mean())
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(11)
	for _, lambda := range []float64{0.5, 3, 50} {
		var m Moments
		for i := 0; i < 50000; i++ {
			m.Push(float64(g.Poisson(lambda)))
		}
		if math.Abs(m.Mean()-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, m.Mean())
		}
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(13)
	p := 0.3
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Push(float64(g.Geometric(p)))
	}
	want := (1 - p) / p
	if math.Abs(m.Mean()-want) > 0.05 {
		t.Fatalf("Geometric mean = %v, want ~%v", m.Mean(), want)
	}
	if g.Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	g := NewRNG(17)
	w := []float64{1, 2, 7}
	counts := make([]float64, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := counts[i] / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			g.Categorical(w)
		}()
	}
}

func TestMomentsWelford(t *testing.T) {
	var m Moments
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		m.Push(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", m.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", m.Variance(), 32.0/7)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median = %v, want 3", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 2.5, 2.6, 9.9, -3, 42} {
		h.Push(x)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -3
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[4] != 2 { // 9.9 and clamped 42
		t.Fatalf("bin4 = %d, want 2", h.Counts[4])
	}
	d := h.Density()
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("density sums to %v", sum)
	}
	if h.BinCenter(0) != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", h.BinCenter(0))
	}
}

func TestMetrics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 5}
	mae, err := MAE(a, b)
	if err != nil || mae != 1 {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	rmse, err := RMSE(a, b)
	if err != nil || math.Abs(rmse-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", rmse)
	}
	mx, _ := MaxAbsError(a, b)
	if mx != 2 {
		t.Fatalf("MaxAbsError = %v", mx)
	}
	if _, err := MAE(a, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTotalVariationAndKL(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.25, 0.25, 0.5}
	tv, err := TotalVariation(p, q)
	if err != nil || math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("TV = %v", tv)
	}
	kl, err := KLDivergence(p, q)
	if err != nil || math.Abs(kl-math.Log(2)) > 1e-12 {
		t.Fatalf("KL = %v, want ln2", kl)
	}
	klInf, _ := KLDivergence(q, p) // q has mass where p doesn't
	if !math.IsInf(klInf, 1) {
		t.Fatalf("KL with unsupported mass = %v, want +Inf", klInf)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 2, 5})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestNormalizeSimplex(t *testing.T) {
	got := NormalizeSimplex([]float64{1, 3})
	if got[0] != 0.25 || got[1] != 0.75 {
		t.Fatalf("got %v", got)
	}
	uniform := NormalizeSimplex([]float64{0, 0, 0})
	for _, v := range uniform {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("zero vector did not normalize to uniform: %v", uniform)
		}
	}
	// Negative entries are treated as zero mass.
	neg := NormalizeSimplex([]float64{-1, 1})
	if neg[0] != 0 || neg[1] != 1 {
		t.Fatalf("negative handling wrong: %v", neg)
	}
}

// Property: Moments matches the direct two-pass formulas.
func TestMomentsMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 2 + g.Intn(50)
		xs := make([]float64, n)
		var m Moments
		for i := range xs {
			xs[i] = g.Normal(0, 10)
			m.Push(xs[i])
		}
		if math.Abs(m.Mean()-Mean(xs)) > 1e-9 {
			return false
		}
		return math.Abs(m.Variance()-Variance(xs)) < 1e-9*(1+m.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram never loses samples, whatever the input.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		h := NewHistogram(-5, 5, 1+g.Intn(20))
		n := g.Intn(200)
		for i := 0; i < n; i++ {
			h.Push(g.Normal(0, 20))
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
