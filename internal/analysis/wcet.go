package analysis

import (
	"math"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// This file composes the structural analyses into provable whole-procedure
// worst-case cycle bounds. Each natural loop is contracted innermost-first
// into a super-node whose cost is
//
//	C(L) = B(L) · iterCost(L) + A(L)
//
// where B is the loop's trip bound (back-edge traversals), iterCost the
// costliest header-to-back-edge path including the back edge's cost, and A
// the costliest acyclic path from the header to anywhere in the loop (the
// final, partial pass). Every concrete execution decomposes into B' <= B
// full passes plus one partial pass, each bounded by the corresponding
// term, so C(L) dominates the loop's total cost. The contracted graph is a
// DAG, on which the worst case is a longest-path computation.

// WCET is the provable worst-case execution bound of one procedure.
type WCET struct {
	// Cycles is the provable bound when Bounded; otherwise the acyclic
	// envelope (every loop back edge cut), which is NOT a total bound.
	Cycles uint64
	// Bounded reports whether every loop carries a provable trip bound.
	Bounded bool
	// UnboundedLoops names the headers of loops that defeat the bound, in
	// ascending order.
	UnboundedLoops []ir.BlockID
}

// ProcWCET computes the worst-case cycle bound of a procedure given
// per-block cycle costs, per-edge extra costs (both upper bounds on the
// realized costs, e.g. compile metadata with worst-case branch penalties),
// and the loops' trip bounds (LoopTripBounds). The result does not include
// any once-per-invocation entry overhead; callers add it.
func ProcWCET(p *cfg.Proc, blockCycles map[ir.BlockID]uint64, edgeExtra map[[2]ir.BlockID]uint64, trips map[ir.BlockID]TripBound) WCET {
	nest := p.BuildLoopNest()

	var unbounded []ir.BlockID
	for _, l := range nest.Loops {
		if tb, ok := trips[l.Header]; !ok || !tb.Bounded {
			unbounded = append(unbounded, l.Header)
		}
	}
	if len(unbounded) > 0 {
		sort.Slice(unbounded, func(i, j int) bool { return unbounded[i] < unbounded[j] })
		envelope, _ := MaxAcyclicCycles(p, blockCycles)
		return WCET{Cycles: envelope, UnboundedLoops: unbounded}
	}

	loopTotal := make([]uint64, len(nest.Loops))
	for _, li := range nest.InnermostFirst() {
		total, ok := contractLoop(p, nest, li, blockCycles, edgeExtra, loopTotal, trips)
		if !ok {
			// Irreducible flow inside the region; no safe composition.
			envelope, _ := MaxAcyclicCycles(p, blockCycles)
			return WCET{Cycles: envelope, UnboundedLoops: []ir.BlockID{nest.Loops[li].Header}}
		}
		loopTotal[li] = total
	}

	// Top-level region: blocks outside every loop plus the outermost loops
	// as super-nodes.
	rep := func(b ir.BlockID) ir.BlockID {
		c := nest.Innermost(b)
		for c != -1 && nest.Parent[c] != -1 {
			c = nest.Parent[c]
		}
		if c == -1 {
			return b
		}
		return nest.Loops[c].Header
	}
	cost := func(n ir.BlockID) uint64 {
		if c := nest.Innermost(n); c != -1 {
			// n is a top-level loop header standing for the whole loop.
			for nest.Parent[c] != -1 {
				c = nest.Parent[c]
			}
			return loopTotal[c]
		}
		return blockCycles[n]
	}
	reach := p.Reachable()
	g := newRegion()
	for _, b := range p.Blocks {
		if !reach[b.ID] {
			continue
		}
		u := rep(b.ID)
		g.addNode(u, cost(u))
		for _, s := range b.Succs() {
			if v := rep(s); v != u {
				g.addEdge(u, v, edgeExtra[[2]ir.BlockID{b.ID, s}])
			}
		}
	}
	dist, ok := g.longestFrom(rep(p.Entry))
	if !ok {
		envelope, heads := MaxAcyclicCycles(p, blockCycles)
		return WCET{Cycles: envelope, UnboundedLoops: heads}
	}
	var max uint64
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return WCET{Cycles: max, Bounded: true}
}

// contractLoop computes C(L) for one loop whose child loops are already
// contracted.
func contractLoop(p *cfg.Proc, nest *cfg.LoopNest, li int, blockCycles map[ir.BlockID]uint64, edgeExtra map[[2]ir.BlockID]uint64, loopTotal []uint64, trips map[ir.BlockID]TripBound) (uint64, bool) {
	loop := nest.Loops[li]
	rep := func(b ir.BlockID) ir.BlockID {
		if c := nest.ChildIn(li, b); c != -1 {
			return nest.Loops[c].Header
		}
		return b
	}
	cost := func(n ir.BlockID) uint64 {
		if c := nest.ChildIn(li, n); c != -1 && nest.Loops[c].Header == n {
			return loopTotal[c]
		}
		return blockCycles[n]
	}

	g := newRegion()
	type backArc struct {
		from  ir.BlockID
		extra uint64
	}
	var backs []backArc
	for b := range loop.Body {
		blk := p.Block(b)
		u := rep(b)
		g.addNode(u, cost(u))
		for _, s := range blk.Succs() {
			if !loop.Body[s] {
				continue // exit edge: charged in the parent region
			}
			extra := edgeExtra[[2]ir.BlockID{b, s}]
			if s == loop.Header {
				backs = append(backs, backArc{from: u, extra: extra})
				continue
			}
			if v := rep(s); v != u {
				g.addEdge(u, v, extra)
			}
		}
	}
	dist, ok := g.longestFrom(loop.Header)
	if !ok {
		return 0, false
	}
	var acyclic uint64
	for _, d := range dist {
		if d > acyclic {
			acyclic = d
		}
	}
	var iter uint64
	for _, ba := range backs {
		d, reached := dist[ba.from]
		if !reached {
			return 0, false // back-edge tail unreachable from the header
		}
		if c := satAdd(d, ba.extra); c > iter {
			iter = c
		}
	}
	b := trips[loop.Header].MaxBackEdges
	return satAdd(satMul(b, iter), acyclic), true
}

// region is a small DAG with node costs and edge costs for longest-path
// computation.
type region struct {
	cost map[ir.BlockID]uint64
	succ map[ir.BlockID][]regionEdge
	pred map[ir.BlockID]int // in-degree
}

type regionEdge struct {
	to    ir.BlockID
	extra uint64
}

func newRegion() *region {
	return &region{
		cost: make(map[ir.BlockID]uint64),
		succ: make(map[ir.BlockID][]regionEdge),
		pred: make(map[ir.BlockID]int),
	}
}

// addNode registers n with its cost, overwriting a provisional zero left
// by an earlier addEdge — every region node receives exactly one addNode
// call with its real cost.
func (g *region) addNode(n ir.BlockID, c uint64) {
	if _, ok := g.pred[n]; !ok {
		g.pred[n] = 0
	}
	g.cost[n] = c
}

func (g *region) addEdge(u, v ir.BlockID, extra uint64) {
	if _, ok := g.pred[v]; !ok {
		g.pred[v] = 0
		g.cost[v] = 0 // provisional; v's own addNode sets the real cost
	}
	g.succ[u] = append(g.succ[u], regionEdge{to: v, extra: extra})
	g.pred[v]++
}

// longestFrom computes the longest entry-to-node distance (node costs plus
// edge extras, entry cost included) via Kahn topological order. The second
// result is false when the subgraph contains a cycle.
func (g *region) longestFrom(entry ir.BlockID) (map[ir.BlockID]uint64, bool) {
	indeg := make(map[ir.BlockID]int, len(g.pred))
	for n, d := range g.pred {
		indeg[n] = d
	}
	var order []ir.BlockID
	var queue []ir.BlockID
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, n)
		for _, e := range g.succ[n] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if len(order) != len(g.cost) {
		return nil, false // cycle
	}
	dist := make(map[ir.BlockID]uint64, len(order))
	dist[entry] = g.cost[entry]
	for _, n := range order {
		d, reached := dist[n]
		if !reached {
			continue
		}
		for _, e := range g.succ[n] {
			cand := satAdd(satAdd(d, e.extra), g.cost[e.to])
			if cur, ok := dist[e.to]; !ok || cand > cur {
				dist[e.to] = cand
			}
		}
	}
	return dist, true
}

func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a != 0 && b > math.MaxUint64/a {
		return math.MaxUint64
	}
	return a * b
}
