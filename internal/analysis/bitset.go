package analysis

import "math/bits"

// Bits is a fixed-width bit vector — the dataflow fact representation the
// solver iterates over. All binary operations assume equal widths.
type Bits []uint64

// NewBits returns an all-zero bit vector able to hold n bits.
func NewBits(n int) Bits {
	return make(Bits, (n+63)/64)
}

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Fill sets the first n bits.
func (b Bits) Fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << rem) - 1
	}
}

// Zero clears all bits.
func (b Bits) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// CopyFrom overwrites b with o.
func (b Bits) CopyFrom(o Bits) { copy(b, o) }

// UnionWith ors o into b, reporting whether b changed.
func (b Bits) UnionWith(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith ands o into b, reporting whether b changed.
func (b Bits) IntersectWith(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// AndNotWith removes o's bits from b.
func (b Bits) AndNotWith(o Bits) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Equal reports whether two vectors hold the same bits.
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f with the index of every set bit, in ascending order.
func (b Bits) ForEach(f func(int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &= w - 1
		}
	}
}
