package analysis

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// Liveness is a per-block liveness fixpoint: LiveIn[b] holds the facts
// live at the top of block b, LiveOut[b] at the bottom.
type Liveness struct {
	LiveIn, LiveOut []Bits
}

// TempLiveness computes live virtual registers (temps) per block: a temp
// is live at a point when some path from it reaches a read before any
// write. Nothing is live across procedure exits.
func TempLiveness(p *cfg.Proc) *Liveness {
	n := p.NumTemp
	prob := &Problem{
		Dir:  Backward,
		May:  true,
		Bits: n,
		Gen:  make([]Bits, len(p.Blocks)),
		Kill: make([]Bits, len(p.Blocks)),
	}
	for i, b := range p.Blocks {
		gen, kill := NewBits(n), NewBits(n)
		// Forward scan: a use is upward-exposed unless a def precedes it
		// in the same block.
		for _, in := range b.Instrs {
			ir.InstrUses(in, func(t ir.Temp) {
				if inRange(t, n) && !kill.Get(int(t)) {
					gen.Set(int(t))
				}
			})
			if d, ok := ir.InstrDef(in); ok && inRange(d, n) {
				kill.Set(int(d))
			}
		}
		ir.TermUses(b.Term, func(t ir.Temp) {
			if inRange(t, n) && !kill.Get(int(t)) {
				gen.Set(int(t))
			}
		})
		prob.Gen[i], prob.Kill[i] = gen, kill
	}
	res := Solve(p, prob)
	return &Liveness{LiveIn: res.In, LiveOut: res.Out}
}

func inRange(t ir.Temp, n int) bool { return t >= 0 && int(t) < n }

// VarSpace indexes the named scalar variables of one procedure for
// bit-vector analyses: parameters first, then locals, in declaration
// order. Globals and arrays are excluded — globals are observable outside
// the procedure and arrays are accessed through indices the analyses do
// not model.
type VarSpace struct {
	Names []string
	index map[string]int
	// NumParams counts how many leading Names are parameters.
	NumParams int
}

// NewVarSpace builds the variable index of a procedure.
func NewVarSpace(p *cfg.Proc) *VarSpace {
	vs := &VarSpace{index: make(map[string]int)}
	add := func(name string) {
		if _, dup := vs.index[name]; dup {
			return
		}
		vs.index[name] = len(vs.Names)
		vs.Names = append(vs.Names, name)
	}
	for _, name := range p.Params {
		add(name)
	}
	vs.NumParams = len(vs.Names)
	for _, name := range p.Locals {
		add(name)
	}
	return vs
}

// Index returns the bit index of name, or -1 when the name is not a local
// scalar (i.e. it is a global or an array).
func (vs *VarSpace) Index(name string) int {
	if i, ok := vs.index[name]; ok {
		return i
	}
	return -1
}

// VarLiveness computes live local scalars (parameters and locals) per
// block. Reads are LoadVar, writes are StoreVar; calls cannot touch
// another frame's locals (MiniC has no pointers), so they neither use nor
// kill anything here.
func VarLiveness(p *cfg.Proc, vs *VarSpace) *Liveness {
	n := len(vs.Names)
	prob := &Problem{
		Dir:  Backward,
		May:  true,
		Bits: n,
		Gen:  make([]Bits, len(p.Blocks)),
		Kill: make([]Bits, len(p.Blocks)),
	}
	for i, b := range p.Blocks {
		gen, kill := NewBits(n), NewBits(n)
		for _, in := range b.Instrs {
			switch v := in.(type) {
			case ir.LoadVar:
				if j := vs.Index(v.Name); j >= 0 && !kill.Get(j) {
					gen.Set(j)
				}
			case ir.StoreVar:
				if j := vs.Index(v.Name); j >= 0 {
					kill.Set(j)
				}
			}
		}
		prob.Gen[i], prob.Kill[i] = gen, kill
	}
	res := Solve(p, prob)
	return &Liveness{LiveIn: res.In, LiveOut: res.Out}
}

// DeadStore is a StoreVar whose value can never be read: no path from the
// store reaches a load of the variable before the next store or the
// procedure exit.
type DeadStore struct {
	Block ir.BlockID
	Index int // instruction index within the block
	Name  string
	Pos   ir.Pos
}

// DeadStores finds dead stores to local scalars (parameters and locals)
// in the reachable part of the procedure. Stores to globals are never
// reported: they stay observable to other procedures.
func DeadStores(p *cfg.Proc) []DeadStore {
	vs := NewVarSpace(p)
	if len(vs.Names) == 0 {
		return nil
	}
	live := VarLiveness(p, vs)
	reach := p.Reachable()
	var out []DeadStore
	for _, b := range p.Blocks {
		if !reach[b.ID] {
			continue
		}
		// Walk the block backward tracking the live set.
		cur := live.LiveOut[b.ID].Clone()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			switch v := b.Instrs[i].(type) {
			case ir.StoreVar:
				if j := vs.Index(v.Name); j >= 0 {
					if !cur.Get(j) {
						out = append(out, DeadStore{
							Block: b.ID, Index: i, Name: v.Name, Pos: b.InstrPos(i),
						})
					}
					cur.Clear(j)
				}
			case ir.LoadVar:
				if j := vs.Index(v.Name); j >= 0 {
					cur.Set(j)
				}
			}
		}
	}
	return out
}
