package analysis

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// This file implements an interval (value-range) abstract interpretation
// over the lowered IR. Every MiniC value is a 16-bit word the operators
// treat as signed (except the bitwise ones, which agree on the bit level);
// the domain is therefore intervals over [-32768, 32767], with the full
// range acting as "unknown" (Top). Transfer functions mirror the reference
// interpreter's semantics exactly — wraparound goes to Top rather than
// being modeled — so every concrete execution is contained in the computed
// intervals. That containment is what lets the results drive provable
// trip-count bounds, dead-branch elimination, and static priors for the
// tomography estimator.

// Int16 domain bounds.
const (
	MinWord = -1 << 15
	MaxWord = 1<<15 - 1
)

// Interval is an inclusive signed-16-bit value range. Lo > Hi denotes the
// empty interval (unreachable value set).
type Interval struct {
	Lo, Hi int
}

// Top returns the full-range interval (unknown value).
func Top() Interval { return Interval{MinWord, MaxWord} }

// Single returns the singleton interval {v}.
func Single(v int) Interval { return Interval{v, v} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return iv.Lo <= MinWord && iv.Hi >= MaxWord }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// Const reports whether the interval pins a single value, and that value.
func (iv Interval) Const() (int, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

func (iv Interval) String() string {
	if iv.Empty() {
		return "⊥"
	}
	if iv.IsTop() {
		return "⊤"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// join returns the smallest interval containing both operands.
func join(a, b Interval) Interval {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// meet returns the intersection (possibly empty).
func meet(a, b Interval) Interval {
	if b.Lo > a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi < a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// clamp16 returns the interval if it fits the 16-bit signed domain, Top
// otherwise — the wraparound escape hatch of every arithmetic transfer.
func clamp16(lo, hi int64) Interval {
	if lo < MinWord || hi > MaxWord {
		return Top()
	}
	return Interval{int(lo), int(hi)}
}

// nextPow2Minus1 returns the smallest 2^k−1 covering v (v >= 0).
func nextPow2Minus1(v int) int {
	m := 1
	for m-1 < v {
		m <<= 1
	}
	return m - 1
}

// binInterval is the transfer function of ir.Bin, mirroring minic.binOp.
func binInterval(op ir.Op, a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{1, 0}
	}
	switch op {
	case ir.OpAdd:
		return clamp16(int64(a.Lo)+int64(b.Lo), int64(a.Hi)+int64(b.Hi))
	case ir.OpSub:
		return clamp16(int64(a.Lo)-int64(b.Hi), int64(a.Hi)-int64(b.Lo))
	case ir.OpMul:
		lo, hi := corners(a, b, func(x, y int64) int64 { return x * y })
		return clamp16(lo, hi)
	case ir.OpDiv:
		// Division by zero faults at runtime; a divisor range containing 0
		// yields Top (sound for every non-faulting execution). With the
		// divisor's sign fixed, the truncated quotient is monotone in each
		// operand, so the extremes lie at the corners. A corner outside the
		// 16-bit domain (-32768/-1) wraps, handled by clamp16.
		if b.Contains(0) {
			return Top()
		}
		lo, hi := corners(a, b, func(x, y int64) int64 { return x / y })
		return clamp16(lo, hi)
	case ir.OpMod:
		if b.Contains(0) {
			return Top()
		}
		// 0 ∉ b, so the divisor's sign is fixed; |result| <= |divisor|−1.
		m := b.Hi - 1
		if b.Hi < 0 {
			m = -b.Lo - 1
		}
		// Go's % takes the dividend's sign: a >= 0 keeps the result >= 0.
		lo, hi := -m, m
		if a.Lo >= 0 {
			lo = 0
		}
		if a.Hi <= 0 {
			hi = 0
		}
		return Interval{lo, hi}
	case ir.OpAnd:
		// x & y with one operand known nonnegative is in [0, that operand].
		switch {
		case a.Lo >= 0 && b.Lo >= 0:
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return Interval{0, hi}
		case a.Lo >= 0:
			return Interval{0, a.Hi}
		case b.Lo >= 0:
			return Interval{0, b.Hi}
		}
		return Top()
	case ir.OpOr, ir.OpXor:
		if a.Lo >= 0 && b.Lo >= 0 {
			hi := a.Hi
			if b.Hi > hi {
				hi = b.Hi
			}
			return Interval{0, nextPow2Minus1(hi)}
		}
		return Top()
	case ir.OpShl:
		// The machine masks the shift count to 4 bits on the raw word, so
		// only counts provably in [0,15] are modeled; negative left
		// operands shift through the sign bit, so they are not.
		s, isConst := b.Const()
		if !isConst || s < 0 || s > 15 || a.Lo < 0 {
			return Top()
		}
		return clamp16(int64(a.Lo)<<uint(s), int64(a.Hi)<<uint(s))
	case ir.OpShr:
		// Arithmetic shift: monotone in the value and in the count, so the
		// extremes are corners, provided the count is provably in [0,15].
		if b.Lo < 0 || b.Hi > 15 {
			return Top()
		}
		lo, hi := corners(a, b, func(x, y int64) int64 { return x >> uint(y) })
		return clamp16(lo, hi)
	case ir.OpLt:
		return cmpInterval(a.Hi < b.Lo, a.Lo >= b.Hi)
	case ir.OpLe:
		return cmpInterval(a.Hi <= b.Lo, a.Lo > b.Hi)
	case ir.OpGt:
		return cmpInterval(a.Lo > b.Hi, a.Hi <= b.Lo)
	case ir.OpGe:
		return cmpInterval(a.Lo >= b.Hi, a.Hi < b.Lo)
	case ir.OpEq:
		if va, oka := a.Const(); oka {
			if vb, okb := b.Const(); okb && va == vb {
				return Single(1)
			}
		}
		return cmpInterval(false, a.Hi < b.Lo || b.Hi < a.Lo)
	case ir.OpNe:
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return Single(1)
		}
		if va, oka := a.Const(); oka {
			if vb, okb := b.Const(); okb && va == vb {
				return Single(0)
			}
		}
		return Interval{0, 1}
	}
	return Top()
}

// cmpInterval maps (provably true, provably false) to a boolean interval.
func cmpInterval(alwaysTrue, alwaysFalse bool) Interval {
	switch {
	case alwaysTrue:
		return Single(1)
	case alwaysFalse:
		return Single(0)
	}
	return Interval{0, 1}
}

// corners evaluates f at the four interval corners and returns min/max.
func corners(a, b Interval, f func(x, y int64) int64) (lo, hi int64) {
	first := true
	for _, x := range [2]int64{int64(a.Lo), int64(a.Hi)} {
		for _, y := range [2]int64{int64(b.Lo), int64(b.Hi)} {
			v := f(x, y)
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	return lo, hi
}

// unInterval is the transfer function of ir.Un.
func unInterval(op ir.Op, a Interval) Interval {
	if a.Empty() {
		return Interval{1, 0}
	}
	switch op {
	case ir.OpNeg:
		if a.Lo == MinWord {
			return Top() // -(-32768) wraps
		}
		return Interval{-a.Hi, -a.Lo}
	case ir.OpNot:
		if !a.Contains(0) {
			return Single(0)
		}
		if v, ok := a.Const(); ok && v == 0 {
			return Single(1)
		}
		return Interval{0, 1}
	}
	return Top()
}

// rstate is one program point's abstract store: an interval per temp and
// per tracked scalar (parameters and locals, via VarSpace — globals and
// arrays are Top because calls may write them).
type rstate struct {
	temps []Interval
	vars  []Interval
}

func newTopState(numTemps, numVars int) *rstate {
	s := &rstate{
		temps: make([]Interval, numTemps),
		vars:  make([]Interval, numVars),
	}
	for i := range s.temps {
		s.temps[i] = Top()
	}
	for i := range s.vars {
		s.vars[i] = Top()
	}
	return s
}

func (s *rstate) clone() *rstate {
	return &rstate{
		temps: append([]Interval(nil), s.temps...),
		vars:  append([]Interval(nil), s.vars...),
	}
}

// joinInto widens-joins src into dst, returning whether dst changed. With
// widen set, any bound that would grow jumps straight to the domain limit,
// guaranteeing quick termination on loops the plain join would walk slowly.
func (s *rstate) joinInto(src *rstate, widen bool) bool {
	changed := false
	mergeOne := func(dst *Interval, sv Interval) {
		j := join(*dst, sv)
		if j == *dst {
			return
		}
		if widen {
			if j.Lo < dst.Lo {
				j.Lo = MinWord
			}
			if j.Hi > dst.Hi {
				j.Hi = MaxWord
			}
		}
		*dst = j
		changed = true
	}
	for i := range s.temps {
		mergeOne(&s.temps[i], src.temps[i])
	}
	for i := range s.vars {
		mergeOne(&s.vars[i], src.vars[i])
	}
	return changed
}

// widenVisits is the number of joins a block absorbs before widening kicks
// in; small CFG loops converge well before it, slow arithmetic contractions
// (EMA-style feedback) jump to Top instead of crawling.
const widenVisits = 12

// Ranges holds the fixpoint result of the interval analysis for one
// procedure.
type Ranges struct {
	proc *cfg.Proc
	vs   *VarSpace
	in   []*rstate                 // per block; nil = not reached under ranges
	edge map[[2]ir.BlockID]*rstate // refined out-state per CFG edge
	res  map[ir.BlockID]ir.BlockID // Br blocks with exactly one live arm
	live map[[2]ir.BlockID]bool    // edges the fixpoint propagated along
}

// InferRanges runs the interval analysis to fixpoint. Propagation follows
// only edges not yet proven dead, so a branch resolved by value ranges
// also stops its dead arm's state from flowing — blocks reachable in the
// CFG but only through dead arms end up with no state (see DeadBlocks).
func InferRanges(p *cfg.Proc) *Ranges {
	r := &Ranges{
		proc: p,
		vs:   NewVarSpace(p),
		in:   make([]*rstate, len(p.Blocks)),
		edge: make(map[[2]ir.BlockID]*rstate),
		res:  make(map[ir.BlockID]ir.BlockID),
		live: make(map[[2]ir.BlockID]bool),
	}
	numVars := len(r.vs.Names)
	r.in[p.Entry] = newTopState(p.NumTemp, numVars)

	visits := make([]int, len(p.Blocks))
	inWork := make([]bool, len(p.Blocks))
	work := []ir.BlockID{p.Entry}
	inWork[p.Entry] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		outs := r.transfer(p.Block(b), r.in[b])
		// Duplicate successors (a Br with both arms on one block) join
		// before being recorded or propagated.
		merged := make(map[ir.BlockID]*rstate)
		for _, o := range outs {
			if o.state == nil {
				continue // dead arm
			}
			key := [2]ir.BlockID{b, o.to}
			r.live[key] = true
			if prev := merged[o.to]; prev != nil {
				prev.joinInto(o.state, false)
			} else {
				merged[o.to] = o.state
			}
		}
		for to, st := range merged {
			r.edge[[2]ir.BlockID{b, to}] = st
			if r.in[to] == nil {
				r.in[to] = st.clone()
			} else {
				visits[to]++
				if !r.in[to].joinInto(st, visits[to] > widenVisits) {
					continue
				}
			}
			if !inWork[to] {
				inWork[to] = true
				work = append(work, to)
			}
		}
	}
	return r
}

// edgeState is one successor's propagated state; nil means the arm is
// proven dead.
type edgeState struct {
	to    ir.BlockID
	state *rstate
}

// transfer interprets one block from the given in-state, producing the
// per-successor out-states (with branch-condition refinement) and
// recording branch resolution.
func (r *Ranges) transfer(b *cfg.Block, in *rstate) []edgeState {
	st := in.clone()
	for _, instr := range b.Instrs {
		r.step(st, instr)
	}

	br, isBr := b.Term.(ir.Br)
	if !isBr {
		var out []edgeState
		for _, s := range b.Succs() {
			out = append(out, edgeState{to: s, state: st})
		}
		return out
	}

	cond := st.temps[br.Cond]
	liveTrue := !(cond.Lo == 0 && cond.Hi == 0) // some nonzero value possible
	if cond.Empty() {
		liveTrue = false
	}
	liveFalse := cond.Contains(0)

	trueSt, falseSt := st.clone(), st.clone()
	r.refine(b, br.Cond, trueSt, falseSt)
	if stEmpty(trueSt) {
		liveTrue = false
	}
	if stEmpty(falseSt) {
		liveFalse = false
	}

	delete(r.res, b.ID)
	switch {
	case liveTrue && !liveFalse:
		r.res[b.ID] = br.True
	case liveFalse && !liveTrue:
		r.res[b.ID] = br.False
	}

	out := []edgeState{{to: br.True}, {to: br.False}}
	if liveTrue {
		out[0].state = trueSt
	}
	if liveFalse {
		out[1].state = falseSt
	}
	return out
}

// stEmpty reports whether refinement emptied any tracked location —
// meaning the edge is infeasible.
func stEmpty(s *rstate) bool {
	for _, iv := range s.temps {
		if iv.Empty() {
			return true
		}
	}
	for _, iv := range s.vars {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// step applies one instruction's transfer function in place.
func (r *Ranges) step(st *rstate, instr ir.Instr) {
	setTemp := func(t ir.Temp, iv Interval) {
		if t >= 0 && int(t) < len(st.temps) {
			st.temps[t] = iv
		}
	}
	switch v := instr.(type) {
	case ir.Const:
		setTemp(v.Dst, Single(int(int16(v.Val))))
	case ir.Mov:
		setTemp(v.Dst, st.temps[v.Src])
	case ir.Bin:
		setTemp(v.Dst, binInterval(v.Op, st.temps[v.A], st.temps[v.B]))
	case ir.Un:
		setTemp(v.Dst, unInterval(v.Op, st.temps[v.A]))
	case ir.LoadVar:
		if i := r.vs.Index(v.Name); i >= 0 {
			setTemp(v.Dst, st.vars[i])
		} else {
			setTemp(v.Dst, Top()) // global: any caller/callee may write it
		}
	case ir.StoreVar:
		if i := r.vs.Index(v.Name); i >= 0 {
			st.vars[i] = st.temps[v.Src]
		}
	case ir.LoadIndex:
		setTemp(v.Dst, Top())
	case ir.StoreIndex:
		// arrays are not tracked
	case ir.Call:
		// MiniC has no pointers: a call cannot touch this frame's locals
		// or temps, only globals (which are already Top).
		setTemp(v.Dst, Top())
	case ir.Builtin:
		switch v.Name {
		case "sense":
			setTemp(v.Dst, Interval{0, isa.ADCMaxReading})
		default:
			setTemp(v.Dst, Top())
		}
	}
}

// refine narrows the out-states of a Br's arms using the block-local
// definition chain of the condition: the condition temp itself, a variable
// the condition loaded directly ("if (x)"), and the operands of an
// in-block comparison feeding it ("if (x < k)"). A variable is only
// refined when no later store in the block can have changed it since the
// observing load.
func (r *Ranges) refine(b *cfg.Block, cond ir.Temp, trueSt, falseSt *rstate) {
	applyVar := func(name string, t, f Interval) {
		i := r.vs.Index(name)
		if i < 0 {
			return
		}
		trueSt.vars[i] = meet(trueSt.vars[i], t)
		falseSt.vars[i] = meet(falseSt.vars[i], f)
	}

	// The condition temp: nonzero on the true arm, zero on the false arm.
	cv := trueSt.temps[cond]
	if cv.Lo == 0 && cv.Hi > 0 {
		cv.Lo = 1
	} else if cv.Hi == 0 && cv.Lo < 0 {
		cv.Hi = -1
	}
	trueSt.temps[cond] = cv
	falseSt.temps[cond] = meet(falseSt.temps[cond], Single(0))

	if name := r.resolveVar(b, len(b.Instrs), cond); name != "" {
		t := trueSt.vars[r.vs.Index(name)]
		if t.Lo == 0 && t.Hi > 0 {
			t.Lo = 1
		} else if t.Hi == 0 && t.Lo < 0 {
			t.Hi = -1
		}
		applyVar(name, t, Single(0))
		return
	}

	cmpIdx, cmp := r.findCompare(b, cond)
	if cmpIdx < 0 {
		return
	}
	// Operand intervals at the compare: replay the block prefix.
	pre := r.in[b.ID].clone()
	for _, instr := range b.Instrs[:cmpIdx] {
		r.step(pre, instr)
	}
	aIv, bIv := pre.temps[cmp.A], pre.temps[cmp.B]
	if nameA := r.resolveVar(b, cmpIdx, cmp.A); nameA != "" {
		t, f := constrain(cmp.Op, bIv)
		applyVar(nameA, t, f)
	}
	if nameB := r.resolveVar(b, cmpIdx, cmp.B); nameB != "" {
		t, f := constrain(mirrorOp(cmp.Op), aIv)
		applyVar(nameB, t, f)
	}
}

// findCompare walks the block backward from the terminator, following Mov
// chains, to the comparison that defines the condition — returning its
// index and instruction, or -1.
func (r *Ranges) findCompare(b *cfg.Block, cond ir.Temp) (int, ir.Bin) {
	cur := cond
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		d, ok := ir.InstrDef(b.Instrs[i])
		if !ok || d != cur {
			continue
		}
		switch v := b.Instrs[i].(type) {
		case ir.Mov:
			cur = v.Src
		case ir.Bin:
			if v.Op.IsComparison() {
				return i, v
			}
			return -1, ir.Bin{}
		default:
			return -1, ir.Bin{}
		}
	}
	return -1, ir.Bin{}
}

// resolveVar reports the tracked scalar whose current value temp t holds at
// instruction index end of block b, or "". It requires t to trace (through
// Movs) to a LoadVar with no later store to that variable anywhere in the
// block — so the variable still holds the observed value at the block's
// exit.
func (r *Ranges) resolveVar(b *cfg.Block, end int, t ir.Temp) string {
	cur := t
	for i := end - 1; i >= 0; i-- {
		d, ok := ir.InstrDef(b.Instrs[i])
		if !ok || d != cur {
			continue
		}
		switch v := b.Instrs[i].(type) {
		case ir.Mov:
			cur = v.Src
		case ir.LoadVar:
			if r.vs.Index(v.Name) < 0 {
				return ""
			}
			for _, later := range b.Instrs[i+1:] {
				if sv, isStore := later.(ir.StoreVar); isStore && sv.Name == v.Name {
					return ""
				}
			}
			return v.Name
		default:
			return ""
		}
	}
	return ""
}

// constrain returns the (true-arm, false-arm) intervals for a variable v
// known to satisfy `v op other` / its negation, with other in o.
func constrain(op ir.Op, o Interval) (t, f Interval) {
	t, f = Top(), Top()
	switch op {
	case ir.OpLt:
		t.Hi, f.Lo = o.Hi-1, o.Lo
	case ir.OpLe:
		t.Hi, f.Lo = o.Hi, o.Lo+1
	case ir.OpGt:
		t.Lo, f.Hi = o.Lo+1, o.Hi
	case ir.OpGe:
		t.Lo, f.Hi = o.Lo, o.Hi-1
	case ir.OpEq:
		t = o
		if v, ok := o.Const(); ok {
			f = excludePoint(v)
		}
	case ir.OpNe:
		f = o
		if v, ok := o.Const(); ok {
			t = excludePoint(v)
		}
	}
	return t, f
}

// excludePoint returns the tightest interval excluding v: the domain can
// only carve at the endpoints, so interior points leave Top unchanged.
func excludePoint(v int) Interval {
	iv := Top()
	if v == iv.Lo {
		iv.Lo++
	} else if v == iv.Hi {
		iv.Hi--
	}
	return iv
}

// mirrorOp swaps a comparison's operand order (a op b == b mirror(op) a).
func mirrorOp(op ir.Op) ir.Op {
	switch op {
	case ir.OpLt:
		return ir.OpGt
	case ir.OpLe:
		return ir.OpGe
	case ir.OpGt:
		return ir.OpLt
	case ir.OpGe:
		return ir.OpLe
	}
	return op // Eq, Ne are symmetric
}

// ResolvedBranches returns, for every conditional branch the analysis
// proves one-way, the single successor control can actually reach.
// Branches in blocks the analysis never reached are not reported (they are
// dead code themselves).
func (r *Ranges) ResolvedBranches() map[ir.BlockID]ir.BlockID {
	out := make(map[ir.BlockID]ir.BlockID, len(r.res))
	for b, s := range r.res {
		out[b] = s
	}
	return out
}

// DeadBlocks returns blocks that are reachable in the CFG but that no
// execution can reach (every path to them crosses a dead branch arm), in
// ascending order.
func (r *Ranges) DeadBlocks() []ir.BlockID {
	var out []ir.BlockID
	for id := range r.proc.Reachable() {
		if r.in[id] == nil {
			out = append(out, id)
		}
	}
	sortBlockIDs(out)
	return out
}

func sortBlockIDs(ids []ir.BlockID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// VarIntervalAt returns the interval of a scalar variable at block entry.
// Untracked names (globals, arrays) and unreached blocks return Top.
func (r *Ranges) VarIntervalAt(b ir.BlockID, name string) Interval {
	i := r.vs.Index(name)
	if i < 0 || int(b) >= len(r.in) || r.in[b] == nil {
		return Top()
	}
	return r.in[b].vars[i]
}

// EdgeVarInterval returns the interval of a scalar variable as control
// crosses the given edge, refined by the branch condition when the edge
// leaves a conditional block. The second result is false when the edge was
// never traversed under the analysis (dead) or the variable is untracked.
func (r *Ranges) EdgeVarInterval(from, to ir.BlockID, name string) (Interval, bool) {
	i := r.vs.Index(name)
	st := r.edge[[2]ir.BlockID{from, to}]
	if i < 0 || st == nil {
		return Top(), false
	}
	return st.vars[i], true
}

// TempAtTerm returns the interval of a temp at a block's terminator (after
// the whole block body has executed). Unreached blocks return Top.
func (r *Ranges) TempAtTerm(b ir.BlockID, t ir.Temp) Interval {
	if int(b) >= len(r.in) || r.in[b] == nil || t < 0 || int(t) >= r.proc.NumTemp {
		return Top()
	}
	st := r.in[b].clone()
	for _, instr := range r.proc.Block(b).Instrs {
		r.step(st, instr)
	}
	return st.temps[t]
}

// tempAt returns the interval of a temp just before instruction idx of
// block b, replaying the block prefix from the fixpoint in-state.
func (r *Ranges) tempAt(b ir.BlockID, idx int, t ir.Temp) Interval {
	if int(b) >= len(r.in) || r.in[b] == nil || t < 0 || int(t) >= r.proc.NumTemp {
		return Top()
	}
	st := r.in[b].clone()
	blk := r.proc.Block(b)
	if idx > len(blk.Instrs) {
		idx = len(blk.Instrs)
	}
	for _, instr := range blk.Instrs[:idx] {
		r.step(st, instr)
	}
	return st.temps[t]
}

// VarSpace exposes the variable index the analysis tracks (parameters and
// locals).
func (r *Ranges) VarSpace() *VarSpace { return r.vs }
