package analysis

import (
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// diamondProc builds:
//
//	b0: t0=c; t1=c; br t0 ? b1 : b2
//	b1: x = t1          -> b3
//	b2: (empty)         -> b3
//	b3: ret t1
func diamondProc() *cfg.Proc {
	return &cfg.Proc{
		Name:    "diamond",
		Entry:   0,
		NumTemp: 2,
		HasRet:  true,
		Locals:  []string{"x"},
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{ir.Const{Dst: 0, Val: 1}, ir.Const{Dst: 1, Val: 2}},
				Term:   ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Label: "then",
				Instrs: []ir.Instr{ir.StoreVar{Name: "x", Src: 1}},
				Term:   ir.Jmp{Target: 3}},
			{ID: 2, Label: "else", Term: ir.Jmp{Target: 3}},
			{ID: 3, Label: "join", Term: ir.Ret{Val: 1}},
		},
	}
}

// loopedProc builds:
//
//	b0: t0=c; t1=c        -> b1
//	b1: br t0 ? b2 : b3
//	b2: t2 = t1+t1        -> b1 (back edge)
//	b3: ret
func loopedProc() *cfg.Proc {
	return &cfg.Proc{
		Name:    "looped",
		Entry:   0,
		NumTemp: 3,
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{ir.Const{Dst: 0, Val: 1}, ir.Const{Dst: 1, Val: 2}},
				Term:   ir.Jmp{Target: 1}},
			{ID: 1, Label: "head", Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Label: "body",
				Instrs: []ir.Instr{ir.Bin{Dst: 2, Op: ir.OpAdd, A: 1, B: 1}},
				Term:   ir.Jmp{Target: 1}},
			{ID: 3, Label: "exit", Term: ir.Ret{Val: -1}},
		},
	}
}

func TestTempLivenessDiamond(t *testing.T) {
	p := diamondProc()
	live := TempLiveness(p)
	// t1 is read in b1 and at the Ret in b3: live out of b0, into b1..b3.
	for _, b := range []int{1, 2, 3} {
		if !live.LiveIn[b].Get(1) {
			t.Errorf("t1 not live-in at b%d", b)
		}
	}
	if !live.LiveOut[0].Get(1) {
		t.Error("t1 not live-out of b0")
	}
	// t0 is defined and consumed inside b0: not live-in anywhere.
	for b := 0; b < 4; b++ {
		if live.LiveIn[b].Get(0) {
			t.Errorf("t0 unexpectedly live-in at b%d", b)
		}
	}
	// Nothing is live out of the exit.
	if live.LiveOut[3].Count() != 0 {
		t.Errorf("live-out of exit = %d facts, want 0", live.LiveOut[3].Count())
	}
}

func TestTempLivenessLoop(t *testing.T) {
	p := loopedProc()
	live := TempLiveness(p)
	// t0 and t1 are read on every iteration: live around the back edge.
	for _, tmp := range []int{0, 1} {
		if !live.LiveIn[1].Get(tmp) || !live.LiveOut[2].Get(tmp) {
			t.Errorf("t%d not live through the loop", tmp)
		}
	}
	// t2 is never read.
	if live.LiveIn[1].Get(2) {
		t.Error("dead t2 reported live")
	}
}

func TestTempLivenessIgnoresUnreachable(t *testing.T) {
	p := diamondProc()
	// An unreachable block reading t0 must not make t0 live anywhere.
	p.Blocks = append(p.Blocks, &cfg.Block{
		ID: 4, Label: "dead",
		Instrs: []ir.Instr{ir.Mov{Dst: 1, Src: 0}},
		Term:   ir.Ret{Val: 1},
	})
	live := TempLiveness(p)
	if live.LiveOut[0].Get(0) {
		t.Error("unreachable use made t0 live-out of b0")
	}
}

func TestReachingDefsDiamond(t *testing.T) {
	p := diamondProc()
	// Redefine t1 in the else arm so two defs of t1 meet at the join.
	p.Blocks[2].Instrs = []ir.Instr{ir.Const{Dst: 1, Val: 9}}
	r := ReachingDefs(p)
	if len(r.Defs) != 3 {
		t.Fatalf("defs = %d, want 3", len(r.Defs))
	}
	var idxThen, idxElse, idxEntry int = -1, -1, -1
	for i, d := range r.Defs {
		switch {
		case d.Temp == 1 && d.Block == 0:
			idxEntry = i
		case d.Temp == 1 && d.Block == 2:
			idxElse = i
		case d.Temp == 0:
			idxThen = i
		}
	}
	if idxEntry < 0 || idxElse < 0 || idxThen < 0 {
		t.Fatalf("def sites not found: %+v", r.Defs)
	}
	// Both t1 defs reach the join; the entry def survives only via b1.
	if !r.In[3].Get(idxEntry) || !r.In[3].Get(idxElse) {
		t.Errorf("join does not see both t1 definitions")
	}
	// The else-arm redefinition kills the entry def along b2.
	if r.Out[2].Get(idxEntry) {
		t.Error("killed definition reaches out of b2")
	}
}

func TestReachingDefsLoop(t *testing.T) {
	p := loopedProc()
	r := ReachingDefs(p)
	// The body's def of t2 flows around the back edge into the header.
	var idxBody = -1
	for i, d := range r.Defs {
		if d.Temp == 2 {
			idxBody = i
		}
	}
	if idxBody < 0 {
		t.Fatal("body def not found")
	}
	if !r.In[1].Get(idxBody) {
		t.Error("loop body definition does not reach the header")
	}
	if r.In[0].Count() != 0 {
		t.Error("entry sees reaching definitions")
	}
}

func TestDeadStores(t *testing.T) {
	p := &cfg.Proc{
		Name:    "ds",
		Entry:   0,
		NumTemp: 2,
		Locals:  []string{"x"},
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{
					ir.Const{Dst: 0, Val: 1},
					ir.StoreVar{Name: "x", Src: 0}, // dead: overwritten below
					ir.Const{Dst: 1, Val: 2},
					ir.StoreVar{Name: "x", Src: 1}, // live: read in b1
				},
				Term: ir.Jmp{Target: 1}},
			{ID: 1, Label: "use",
				Instrs: []ir.Instr{
					ir.LoadVar{Dst: 0, Name: "x"},
					ir.StoreVar{Name: "x", Src: 0}, // dead: never read again
				},
				Term: ir.Ret{Val: -1}},
		},
	}
	ds := DeadStores(p)
	if len(ds) != 2 {
		t.Fatalf("dead stores = %+v, want 2", ds)
	}
	if ds[0].Block != 0 || ds[0].Index != 1 || ds[1].Block != 1 || ds[1].Index != 1 {
		t.Fatalf("dead store sites = %+v", ds)
	}
}

func TestDeadStoresSkipGlobalsAndUnreachable(t *testing.T) {
	p := diamondProc()
	// A store to a name that is not a local (a global): never reported.
	p.Blocks[2].Instrs = []ir.Instr{ir.StoreVar{Name: "g", Src: 1}}
	// A dead store in an unreachable block: never reported.
	p.Blocks = append(p.Blocks, &cfg.Block{
		ID: 4, Label: "dead",
		Instrs: []ir.Instr{ir.StoreVar{Name: "x", Src: 0}},
		Term:   ir.Ret{Val: 0},
	})
	for _, d := range DeadStores(p) {
		if d.Name == "g" || d.Block == 4 {
			t.Fatalf("unexpected dead store %+v", d)
		}
	}
}

func TestMaybeUninitVars(t *testing.T) {
	// x assigned only on the then-arm, read at the join: maybe-uninit.
	// Parameters are assigned by the caller and must not be flagged.
	p := &cfg.Proc{
		Name:    "uninit",
		Entry:   0,
		NumTemp: 2,
		Params:  []string{"a"},
		Locals:  []string{"x"},
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{ir.LoadVar{Dst: 0, Name: "a"}},
				Term:   ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Label: "then",
				Instrs: []ir.Instr{ir.StoreVar{Name: "x", Src: 0}},
				Term:   ir.Jmp{Target: 2}},
			{ID: 2, Label: "join",
				Instrs: []ir.Instr{ir.LoadVar{Dst: 1, Name: "x"}},
				Term:   ir.Ret{Val: -1}},
		},
	}
	uses := MaybeUninitVars(p)
	if len(uses) != 1 || uses[0].Name != "x" || uses[0].Block != 2 {
		t.Fatalf("uninit uses = %+v, want one use of x in b2", uses)
	}
}

func TestUninitTempUses(t *testing.T) {
	p := diamondProc()
	if uses := UninitTempUses(p); len(uses) != 0 {
		t.Fatalf("clean proc reported uninit temps: %+v", uses)
	}
	// Drop t0's definition: the branch condition is now undefined.
	p.Blocks[0].Instrs = p.Blocks[0].Instrs[1:]
	uses := UninitTempUses(p)
	if len(uses) != 1 || uses[0].Temp != 0 {
		t.Fatalf("uninit uses = %+v, want one use of t0", uses)
	}
}

func TestMaxAcyclicCycles(t *testing.T) {
	p := diamondProc()
	costs := map[ir.BlockID]uint64{0: 10, 1: 7, 2: 3, 3: 5}
	cycles, heads := MaxAcyclicCycles(p, costs)
	if len(heads) != 0 {
		t.Errorf("diamond reported loop heads %v", heads)
	}
	if cycles != 22 { // 10 + max(7,3) + 5
		t.Errorf("cycles = %d, want 22", cycles)
	}

	lp := loopedProc()
	lcosts := map[ir.BlockID]uint64{0: 1, 1: 2, 2: 4, 3: 8}
	cycles, heads = MaxAcyclicCycles(lp, lcosts)
	if len(heads) != 1 || heads[0] != 1 {
		t.Errorf("loop heads = %v, want [1]", heads)
	}
	if cycles != 11 { // 1 + 2 + 8, back edge cut; body path 1+2+4=7
		t.Errorf("cycles = %d, want 11", cycles)
	}
}

func TestStackBounds(t *testing.T) {
	// main -> f(2 args) -> g; g is a leaf; r is self-recursive.
	leaf := &cfg.Proc{Name: "g", Entry: 0, NumTemp: 1, Locals: []string{"l"},
		Blocks: []*cfg.Block{{ID: 0, Instrs: []ir.Instr{ir.Const{Dst: 0, Val: 1}}, Term: ir.Ret{Val: -1}}}}
	mid := &cfg.Proc{Name: "f", Entry: 0, NumTemp: 2, Params: []string{"a", "b"},
		Blocks: []*cfg.Block{{ID: 0,
			Instrs: []ir.Instr{ir.Call{Dst: -1, Fn: "g"}},
			Term:   ir.Ret{Val: -1}}}}
	rec := &cfg.Proc{Name: "r", Entry: 0, NumTemp: 1,
		Blocks: []*cfg.Block{{ID: 0,
			Instrs: []ir.Instr{ir.Call{Dst: -1, Fn: "r"}},
			Term:   ir.Ret{Val: -1}}}}
	mainP := &cfg.Proc{Name: "main", Entry: 0, NumTemp: 3,
		Blocks: []*cfg.Block{{ID: 0,
			Instrs: []ir.Instr{
				ir.Const{Dst: 0, Val: 1},
				ir.Const{Dst: 1, Val: 2},
				ir.Call{Dst: 2, Fn: "f", Args: []ir.Temp{0, 1}},
			},
			Term: ir.Halt{}}}}
	prog := &cfg.Program{Procs: []*cfg.Proc{mainP, mid, leaf, rec}}

	b := StackBounds(prog)
	// g: 2 + (1 local + 1 temp) = 4.
	if got := b["g"]; got.Recursive || got.Words != 4 {
		t.Errorf("g bound = %+v, want 4 words", got)
	}
	// f: 2 + 2 temps + (0 args + g's 4) = 8.
	if got := b["f"]; got.Recursive || got.Words != 8 {
		t.Errorf("f bound = %+v, want 8 words", got)
	}
	// main: 2 + 3 temps + (2 args + f's 8) = 15.
	if got := b["main"]; got.Recursive || got.Words != 15 {
		t.Errorf("main bound = %+v, want 15 words", got)
	}
	if got := b["r"]; !got.Recursive {
		t.Errorf("r bound = %+v, want recursive", got)
	}
}

func TestVerifyHandBuilt(t *testing.T) {
	good := func() *cfg.Program {
		return &cfg.Program{Procs: []*cfg.Proc{diamondProc()}}
	}
	if err := Verify(good()); err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}

	// Edge into the entry block.
	prog := good()
	prog.Procs[0].Blocks[3].Term = ir.Jmp{Target: 0}
	if err := Verify(prog); err == nil {
		t.Error("entry predecessor accepted")
	}

	// Call to a procedure that does not exist.
	prog = good()
	prog.Procs[0].Blocks[2].Instrs = []ir.Instr{ir.Call{Dst: -1, Fn: "ghost"}}
	if err := Verify(prog); err == nil {
		t.Error("call to unknown procedure accepted")
	}

	// Builtin arity violation.
	prog = good()
	prog.Procs[0].Blocks[2].Instrs = []ir.Instr{ir.Builtin{Dst: -1, Name: "led"}}
	if err := Verify(prog); err == nil {
		t.Error("builtin arity violation accepted")
	}

	// Void return from a value-returning procedure.
	prog = good()
	prog.Procs[0].Blocks[3].Term = ir.Ret{Val: -1}
	if err := Verify(prog); err == nil {
		t.Error("void return in value-returning proc accepted")
	}

	// Unresolved variable name.
	prog = good()
	prog.Procs[0].Blocks[2].Instrs = []ir.Instr{ir.StoreVar{Name: "nope", Src: 1}}
	if err := Verify(prog); err == nil {
		t.Error("unresolved name accepted")
	}

	// Duplicate procedure names.
	prog = good()
	prog.Procs = append(prog.Procs, diamondProc())
	if err := Verify(prog); err == nil {
		t.Error("duplicate procedure names accepted")
	}
}
