// Package analysis provides static analyses over the compiler's CFG form
// (package cfg): a generic iterative dataflow solver with concrete
// instances — temp/variable liveness, reaching definitions, definite
// assignment — plus an inter-pass IR verifier (Verify) and static
// worst-case cost bounds (cycles, stack, code size) checked against the
// M16 part limits.
//
// The solver works on the classic gen/kill bit-vector formulation: a
// Problem names the direction (forward/backward), the meet (may = union,
// must = intersection), per-block gen and kill sets, and the boundary
// fact. Solve iterates a worklist seeded in reverse postorder until the
// fixpoint, touching only blocks reachable from the entry.
package analysis

import "codetomo/internal/cfg"

// Direction selects how facts flow through the CFG.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Problem is a monotone gen/kill dataflow problem over bit-vector facts.
// OUT[b] = gen[b] ∪ (IN[b] − kill[b]) for forward problems (swap IN/OUT
// for backward ones); IN[b] is the meet over predecessor OUTs.
type Problem struct {
	Dir Direction
	// May selects the meet operator: union for may-analyses (liveness,
	// reaching definitions), intersection for must-analyses (definite
	// assignment).
	May bool
	// Bits is the width of the fact vectors.
	Bits int
	// Gen and Kill are indexed by block ID.
	Gen, Kill []Bits
	// Boundary is the fact at the CFG boundary: IN of the entry block for
	// forward problems, OUT of every exit block for backward ones. A nil
	// Boundary means the empty set.
	Boundary Bits
}

// Result holds the per-block fixpoint. In and Out are indexed by block ID
// and are always in *program order*: In[b] is the fact at the top of block
// b and Out[b] at the bottom, regardless of direction. Entries for blocks
// unreachable from the entry are zero vectors.
type Result struct {
	In, Out []Bits
}

// Solve computes the fixpoint of the problem over the procedure's CFG.
func Solve(p *cfg.Proc, prob *Problem) *Result {
	n := len(p.Blocks)
	res := &Result{In: make([]Bits, n), Out: make([]Bits, n)}
	for i := 0; i < n; i++ {
		res.In[i] = NewBits(prob.Bits)
		res.Out[i] = NewBits(prob.Bits)
	}

	rpo := p.ReversePostorder()
	// Iteration order: reverse postorder for forward problems, postorder
	// for backward ones — both reach the fixpoint in few sweeps on
	// reducible CFGs.
	order := make([]int, 0, len(rpo))
	for _, id := range rpo {
		order = append(order, int(id))
	}
	if prob.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	reachable := make([]bool, n)
	for _, id := range rpo {
		reachable[id] = true
	}

	// meetInput(b) is the fact flowing into block b from its CFG
	// neighbors: predecessors for forward problems, successors for
	// backward ones.
	preds := p.Preds()
	neighbors := func(b int) []int {
		var out []int
		if prob.Dir == Forward {
			for _, pr := range preds[p.Blocks[b].ID] {
				if reachable[pr] {
					out = append(out, int(pr))
				}
			}
		} else {
			for _, s := range p.Blocks[b].Succs() {
				out = append(out, int(s))
			}
		}
		return out
	}
	// atBoundary reports whether block b sits on the CFG boundary for this
	// direction (the entry for forward, an exit for backward).
	atBoundary := func(b int) bool {
		if prob.Dir == Forward {
			return b == int(p.Entry)
		}
		return len(p.Blocks[b].Succs()) == 0
	}
	// side(b) returns the meet-side and flow-side vectors of block b in
	// program order: (In, Out) for forward, (Out, In) for backward.
	side := func(b int) (meet, flow Bits) {
		if prob.Dir == Forward {
			return res.In[b], res.Out[b]
		}
		return res.Out[b], res.In[b]
	}

	boundary := prob.Boundary
	if boundary == nil {
		boundary = NewBits(prob.Bits)
	}

	// Initialize flow-side values: top is the full set for must-analyses
	// so that intersection meets start permissive, empty for may-analyses.
	for _, b := range order {
		_, flow := side(b)
		if !prob.May {
			flow.Fill(prob.Bits)
		}
		if atBoundary(b) && prob.Dir == Backward {
			// Exit blocks flow the boundary fact directly.
			meet, _ := side(b)
			meet.CopyFrom(boundary)
		}
	}

	apply := func(b int) bool {
		meet, flow := side(b)
		// Meet over neighbors.
		ns := neighbors(b)
		switch {
		case atBoundary(b) && prob.Dir == Forward:
			meet.CopyFrom(boundary)
		case len(ns) == 0:
			if prob.Dir == Backward {
				meet.CopyFrom(boundary)
			}
		default:
			tmp := NewBits(prob.Bits)
			if !prob.May {
				tmp.Fill(prob.Bits)
			}
			for _, nb := range ns {
				_, nflow := side(nb)
				if prob.May {
					tmp.UnionWith(nflow)
				} else {
					tmp.IntersectWith(nflow)
				}
			}
			meet.CopyFrom(tmp)
		}
		// Transfer: flow = gen ∪ (meet − kill).
		next := meet.Clone()
		if prob.Kill != nil {
			next.AndNotWith(prob.Kill[b])
		}
		if prob.Gen != nil {
			next.UnionWith(prob.Gen[b])
		}
		if next.Equal(flow) {
			return false
		}
		flow.CopyFrom(next)
		return true
	}

	// Worklist iteration to the fixpoint.
	inList := make([]bool, n)
	var list []int
	for _, b := range order {
		list = append(list, b)
		inList[b] = true
	}
	// Dependents of b: the blocks whose meet input includes b's flow value.
	dependents := func(b int) []int {
		var out []int
		if prob.Dir == Forward {
			for _, s := range p.Blocks[b].Succs() {
				out = append(out, int(s))
			}
		} else {
			for _, pr := range preds[p.Blocks[b].ID] {
				if reachable[pr] {
					out = append(out, int(pr))
				}
			}
		}
		return out
	}
	for len(list) > 0 {
		b := list[0]
		list = list[1:]
		inList[b] = false
		if apply(b) {
			for _, d := range dependents(b) {
				if !inList[d] && reachable[d] {
					list = append(list, d)
					inList[d] = true
				}
			}
		}
	}
	return res
}
