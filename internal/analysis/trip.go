package analysis

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// This file infers provable trip-count bounds for natural loops: a loop
// whose exit test compares a monotone counter against a range-bounded limit
// gets a hard cap on how many times its back edges can be taken per entry.
// The reasoning is deliberately conservative — a bound is only emitted when
// every soundness condition is discharged:
//
//   - the exit test executes exactly once per iteration (its block belongs
//     to this loop, not a nested one, and dominates every back-edge tail);
//   - the counter has exactly one store in the whole loop body, of the form
//     v = v ± c with constant c, likewise executing exactly once per
//     iteration;
//   - the observed counter values cannot wrap between iterations (the
//     16-bit overflow guards below).
//
// Under those conditions consecutive test observations differ by exactly
// ±c, so the number of iterations that can still satisfy the "stay"
// predicate is a closed-form function of the counter's entry range and the
// limit's value range.

// TripBound caps a natural loop's back-edge traversals per loop entry.
type TripBound struct {
	Header ir.BlockID
	// MaxBackEdges bounds how many times any of the loop's back edges can
	// be traversed between entering the loop and leaving it. Meaningless
	// unless Bounded.
	MaxBackEdges uint64
	// Bounded reports whether a provable bound was found.
	Bounded bool
	// HasExit reports whether the loop can terminate at all: some body
	// block branches outside the loop or returns/halts. Event loops
	// (while(1)) have no exit and are deliberately infinite — diagnostics
	// should not flag them as "unbounded".
	HasExit bool
}

// LoopTripBounds infers a TripBound for every natural loop of the
// procedure, keyed by header. r must be the procedure's range analysis.
func LoopTripBounds(p *cfg.Proc, r *Ranges) map[ir.BlockID]TripBound {
	nest := p.BuildLoopNest()
	if len(nest.Loops) == 0 {
		return nil
	}
	idom := p.Dominators()
	out := make(map[ir.BlockID]TripBound, len(nest.Loops))
	for li, loop := range nest.Loops {
		tb := TripBound{Header: loop.Header}
		for _, b := range p.Blocks {
			if !loop.Body[b.ID] {
				continue
			}
			switch b.Term.(type) {
			case ir.Ret, ir.Halt:
				tb.HasExit = true
			}
			exits := 0
			for _, s := range b.Succs() {
				if !loop.Body[s] {
					exits++
				}
			}
			if exits > 0 {
				tb.HasExit = true
			}
			if exits != 1 || len(b.Succs()) != 2 {
				continue
			}
			if n, ok := boundViaTest(p, r, nest, li, idom, b); ok {
				if !tb.Bounded || n < tb.MaxBackEdges {
					tb.MaxBackEdges = n
				}
				tb.Bounded = true
			}
		}
		out[loop.Header] = tb
	}
	return out
}

// boundViaTest tries to derive a back-edge bound from one candidate exit
// test block.
func boundViaTest(p *cfg.Proc, r *Ranges, nest *cfg.LoopNest, li int, idom map[ir.BlockID]ir.BlockID, test *cfg.Block) (uint64, bool) {
	loop := nest.Loops[li]
	// The test must run exactly once per iteration.
	if nest.Innermost(test.ID) != li {
		return 0, false
	}
	for _, e := range loop.BackEdges {
		if !cfg.Dominates(idom, test.ID, e.From) {
			return 0, false
		}
	}
	br, ok := test.Term.(ir.Br)
	if !ok {
		return 0, false
	}
	stayOnTrue := loop.Body[br.True]

	cmpIdx, cmp := r.findCompare(test, br.Cond)
	if cmpIdx < 0 {
		return 0, false
	}

	// One operand must be a monotone counter, the other the limit.
	for _, side := range [2]struct {
		v     ir.Temp
		limit ir.Temp
		op    ir.Op
	}{
		{cmp.A, cmp.B, cmp.Op},
		{cmp.B, cmp.A, mirrorOp(cmp.Op)},
	} {
		vName := r.resolveVar(test, cmpIdx, side.v)
		if vName == "" {
			continue
		}
		stay := side.op
		if !stayOnTrue {
			stay = negateOp(stay)
		}
		limitIv := r.tempAt(test.ID, cmpIdx, side.limit)
		if n, ok := boundCounter(p, r, nest, li, idom, test, vName, stay, limitIv); ok {
			return n, true
		}
	}
	return 0, false
}

// negateOp returns the comparison that holds exactly when op does not.
func negateOp(op ir.Op) ir.Op {
	switch op {
	case ir.OpLt:
		return ir.OpGe
	case ir.OpLe:
		return ir.OpGt
	case ir.OpGt:
		return ir.OpLe
	case ir.OpGe:
		return ir.OpLt
	case ir.OpEq:
		return ir.OpNe
	case ir.OpNe:
		return ir.OpEq
	}
	return op
}

// boundCounter discharges the counter-shape conditions for variable vName
// and, if they hold, computes the stay-observation bound.
func boundCounter(p *cfg.Proc, r *Ranges, nest *cfg.LoopNest, li int, idom map[ir.BlockID]ir.BlockID, test *cfg.Block, vName string, stay ir.Op, limit Interval) (uint64, bool) {
	loop := nest.Loops[li]

	// Exactly one store to the counter in the whole loop body.
	var update *cfg.Block
	updateIdx := -1
	for _, b := range p.Blocks {
		if !loop.Body[b.ID] {
			continue
		}
		for i, instr := range b.Instrs {
			if sv, isStore := instr.(ir.StoreVar); isStore && sv.Name == vName {
				if update != nil {
					return 0, false
				}
				update, updateIdx = b, i
			}
		}
	}
	if update == nil {
		return 0, false
	}
	// The update must run exactly once per iteration.
	if nest.Innermost(update.ID) != li {
		return 0, false
	}
	for _, e := range loop.BackEdges {
		if !cfg.Dominates(idom, update.ID, e.From) {
			return 0, false
		}
	}
	step, ok := updateStep(update, updateIdx, vName)
	if !ok || step == 0 {
		return 0, false
	}

	// Counter range at loop entry: join over live non-back edges into the
	// header.
	entry := Interval{1, 0} // empty
	entered := false
	for _, pr := range p.Preds()[loop.Header] {
		if loop.Body[pr] {
			continue // back edge
		}
		if iv, live := r.EdgeVarInterval(pr, loop.Header, vName); live {
			entry = join(entry, iv)
			entered = true
		}
	}
	if !entered {
		return 0, true // loop never entered under the value analysis
	}

	// First observation: before the update if the test dominates it, after
	// it otherwise; when the order is unknown (same block, or neither
	// dominates), take the looser of the two.
	sameBlock := update.ID == test.ID
	testFirst := !sameBlock && cfg.Dominates(idom, test.ID, update.ID)
	updateFirst := !sameBlock && cfg.Dominates(idom, update.ID, test.ID)
	o1 := entry
	if !testFirst {
		shifted := shiftEntry(entry, step)
		if updateFirst {
			o1 = shifted
		} else {
			o1 = join(entry, shifted)
		}
	}
	return stayCount(stay, o1, limit, step)
}

// shiftEntry advances the entry range by one update step, widening to the
// domain limit when the shift could wrap.
func shiftEntry(entry Interval, step int) Interval {
	lo, hi := entry.Lo+step, entry.Hi+step
	if hi > MaxWord || lo < MinWord {
		return Top() // wrap possible: any value
	}
	return Interval{lo, hi}
}

// stayCount bounds how many test observations can satisfy the stay
// predicate `v stay limit` when consecutive observations differ by exactly
// step (no wrap, enforced by the guards).
func stayCount(stay ir.Op, o1, limit Interval, step int) (uint64, bool) {
	count := func(span int64, s int64) (uint64, bool) {
		if span < 0 {
			return 0, true
		}
		return uint64(span/s) + 1, true
	}
	switch {
	case step > 0:
		s := int64(step)
		switch stay {
		case ir.OpLt:
			// Every stay observation is <= limit.Hi−1; the post-stay update
			// must not wrap.
			if int64(limit.Hi)-1+s > MaxWord {
				return 0, false
			}
			return count(int64(limit.Hi)-1-int64(o1.Lo), s)
		case ir.OpLe:
			if int64(limit.Hi)+s > MaxWord {
				return 0, false
			}
			return count(int64(limit.Hi)-int64(o1.Lo), s)
		case ir.OpNe:
			// Exits only by hitting the limit exactly: needs unit step, a
			// fixed limit, and a first observation at or below it.
			n, isConst := limit.Const()
			if step != 1 || !isConst || o1.Hi > n {
				return 0, false
			}
			return count(int64(n)-1-int64(o1.Lo), 1)
		}
	case step < 0:
		s := int64(-step)
		switch stay {
		case ir.OpGt:
			if int64(limit.Lo)+1-s < MinWord {
				return 0, false
			}
			return count(int64(o1.Hi)-(int64(limit.Lo)+1), s)
		case ir.OpGe:
			if int64(limit.Lo)-s < MinWord {
				return 0, false
			}
			return count(int64(o1.Hi)-int64(limit.Lo), s)
		case ir.OpNe:
			n, isConst := limit.Const()
			if step != -1 || !isConst || o1.Lo < n {
				return 0, false
			}
			return count(int64(o1.Hi)-int64(n)-1, 1)
		}
	}
	return 0, false
}

// updateStep matches the single counter store against `v = v + c` /
// `v = v - c` (either operand order for +) and returns the signed step.
func updateStep(b *cfg.Block, storeIdx int, vName string) (int, bool) {
	src := b.Instrs[storeIdx].(ir.StoreVar).Src
	binIdx, instr := lastDef(b, storeIdx, src)
	if binIdx < 0 {
		return 0, false
	}
	bin, ok := instr.(ir.Bin)
	if !ok {
		return 0, false
	}
	loadsV := func(end int, t ir.Temp) bool {
		i, d := lastDef(b, end, t)
		if i < 0 {
			return false
		}
		lv, isLoad := d.(ir.LoadVar)
		return isLoad && lv.Name == vName
	}
	constOf := func(end int, t ir.Temp) (int, bool) {
		i, d := lastDef(b, end, t)
		if i < 0 {
			return 0, false
		}
		c, isConst := d.(ir.Const)
		if !isConst {
			return 0, false
		}
		return int(int16(c.Val)), true
	}
	switch bin.Op {
	case ir.OpAdd:
		if loadsV(binIdx, bin.A) {
			if c, ok := constOf(binIdx, bin.B); ok {
				return c, true
			}
		}
		if loadsV(binIdx, bin.B) {
			if c, ok := constOf(binIdx, bin.A); ok {
				return c, true
			}
		}
	case ir.OpSub:
		if loadsV(binIdx, bin.A) {
			if c, ok := constOf(binIdx, bin.B); ok && c != MinWord {
				return -c, true
			}
		}
	}
	return 0, false
}

// lastDef returns the index and instruction of the last definition of t
// before index end in block b, following Mov chains; -1 when t is not
// defined in the prefix.
func lastDef(b *cfg.Block, end int, t ir.Temp) (int, ir.Instr) {
	cur := t
	for i := end - 1; i >= 0; i-- {
		d, ok := ir.InstrDef(b.Instrs[i])
		if !ok || d != cur {
			continue
		}
		if mv, isMov := b.Instrs[i].(ir.Mov); isMov {
			cur = mv.Src
			continue
		}
		return i, b.Instrs[i]
	}
	return -1, nil
}
