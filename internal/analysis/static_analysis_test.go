package analysis

// Unit tests for the static-analysis layer: interval arithmetic, range
// inference with branch resolution, and WCET composition over hand-built
// CFGs. Source-level behavior (trip counts over real loop shapes, soundness
// against execution) is exercised in internal/compile's static tests.

import (
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

func TestIntervalArithmetic(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b Interval
		want Interval
	}{
		{ir.OpAdd, Single(3), Single(4), Single(7)},
		{ir.OpAdd, Interval{0, 10}, Interval{-5, 5}, Interval{-5, 15}},
		{ir.OpAdd, Single(MaxWord), Single(1), Top()}, // wrap: any value
		{ir.OpSub, Interval{0, 10}, Interval{2, 3}, Interval{-3, 8}},
		{ir.OpMul, Interval{-3, 3}, Single(10), Interval{-30, 30}},
		{ir.OpMul, Single(1000), Single(1000), Top()}, // wraps int16
		{ir.OpDiv, Interval{0, 100}, Single(8), Interval{0, 12}},
		{ir.OpMod, Interval{0, 1000}, Single(8), Interval{0, 7}},
		{ir.OpMod, Interval{-50, 50}, Single(8), Interval{-7, 7}},
		{ir.OpShr, Interval{0, 1023}, Single(2), Interval{0, 255}},
		{ir.OpLt, Interval{0, 5}, Interval{10, 20}, Single(1)},
		{ir.OpLt, Interval{10, 20}, Interval{0, 5}, Single(0)},
		{ir.OpLt, Interval{0, 15}, Interval{10, 20}, Interval{0, 1}},
		{ir.OpEq, Single(7), Single(7), Single(1)},
		{ir.OpEq, Single(7), Single(8), Single(0)},
		{ir.OpEq, Interval{0, 5}, Interval{6, 9}, Single(0)},
	}
	for _, tc := range cases {
		if got := binInterval(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%v(%v, %v) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	if got := unInterval(ir.OpNeg, Interval{-3, 5}); got != (Interval{-5, 3}) {
		t.Errorf("neg = %v", got)
	}
}

// rangeProc builds:
//
//	b0: x = 5            -> b1
//	b1: if (x < 10)      -> b2 (then) | b3 (else, infeasible)
//	b2: t = x + 1        -> b4
//	b3: t = 99           -> b4 (dead)
//	b4: ret
func rangeProc() *cfg.Proc {
	return &cfg.Proc{
		Name:    "resolve",
		Entry:   0,
		NumTemp: 6,
		Locals:  []string{"x"},
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{
					ir.Const{Dst: 0, Val: 5},
					ir.StoreVar{Name: "x", Src: 0},
				},
				Term: ir.Jmp{Target: 1}},
			{ID: 1, Label: "test",
				Instrs: []ir.Instr{
					ir.LoadVar{Dst: 1, Name: "x"},
					ir.Const{Dst: 2, Val: 10},
					ir.Bin{Dst: 3, Op: ir.OpLt, A: 1, B: 2},
				},
				Term: ir.Br{Cond: 3, True: 2, False: 3}},
			{ID: 2, Label: "then",
				Instrs: []ir.Instr{
					ir.LoadVar{Dst: 4, Name: "x"},
					ir.Const{Dst: 5, Val: 1},
					ir.Bin{Dst: 4, Op: ir.OpAdd, A: 4, B: 5},
				},
				Term: ir.Jmp{Target: 4}},
			{ID: 3, Label: "else",
				Instrs: []ir.Instr{ir.Const{Dst: 4, Val: 99}},
				Term:   ir.Jmp{Target: 4}},
			{ID: 4, Label: "exit", Term: ir.Ret{Val: -1}},
		},
	}
}

func TestInferRangesResolvesBranch(t *testing.T) {
	p := rangeProc()
	r := InferRanges(p)

	res := r.ResolvedBranches()
	if live, ok := res[1]; !ok || live != 2 {
		t.Fatalf("resolved branches = %v, want {1: 2}", res)
	}
	dead := r.DeadBlocks()
	if len(dead) != 1 || dead[0] != 3 {
		t.Fatalf("dead blocks = %v, want [3]", dead)
	}
	if iv := r.VarIntervalAt(1, "x"); iv != Single(5) {
		t.Errorf("x at b1 = %v, want [5,5]", iv)
	}
}

func TestInferRangesJoin(t *testing.T) {
	// Make the branch genuinely two-way: x is 5 or 50 depending on an
	// unknown condition, so x<10 cannot resolve and both arms stay live.
	p := rangeProc()
	p.NumTemp = 7
	p.Blocks[0].Instrs = []ir.Instr{
		ir.Builtin{Dst: 6, Name: "rand"},
		ir.Const{Dst: 0, Val: 5},
		ir.StoreVar{Name: "x", Src: 0},
	}
	p.Blocks[0].Term = ir.Br{Cond: 6, True: 1, False: 5}
	p.Blocks = append(p.Blocks, &cfg.Block{
		ID: 5, Label: "alt",
		Instrs: []ir.Instr{
			ir.Const{Dst: 0, Val: 50},
			ir.StoreVar{Name: "x", Src: 0},
		},
		Term: ir.Jmp{Target: 1},
	})
	r := InferRanges(p)
	if res := r.ResolvedBranches(); len(res) != 0 {
		t.Fatalf("resolved = %v, want none", res)
	}
	if dead := r.DeadBlocks(); len(dead) != 0 {
		t.Fatalf("dead = %v, want none", dead)
	}
	if iv := r.VarIntervalAt(1, "x"); iv != (Interval{5, 50}) {
		t.Errorf("x at b1 = %v, want [5,50]", iv)
	}
	// Refinement: inside the then-arm x < 10, so x joins to [5,9].
	if iv := r.VarIntervalAt(2, "x"); iv != (Interval{5, 9}) {
		t.Errorf("x at then = %v, want [5,9]", iv)
	}
	// Inside the else-arm x >= 10: only the 50 path remains.
	if iv := r.VarIntervalAt(3, "x"); iv != (Interval{10, 50}) {
		t.Errorf("x at else = %v, want [10,50]", iv)
	}
}

// wcetProc builds a single-loop procedure:
//
//	b0 (cost 2) -> b1 header (cost 3) -> b2 body (cost 5) -back-> b1
//	                              \-> b3 exit (cost 7)
func wcetProc() *cfg.Proc {
	return &cfg.Proc{
		Name:    "loop",
		Entry:   0,
		NumTemp: 1,
		Blocks: []*cfg.Block{
			{ID: 0, Label: "entry",
				Instrs: []ir.Instr{ir.Const{Dst: 0, Val: 1}},
				Term:   ir.Jmp{Target: 1}},
			{ID: 1, Label: "head", Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Label: "body", Term: ir.Jmp{Target: 1}},
			{ID: 3, Label: "exit", Term: ir.Ret{Val: -1}},
		},
	}
}

func TestProcWCET(t *testing.T) {
	p := wcetProc()
	costs := map[ir.BlockID]uint64{0: 2, 1: 3, 2: 5, 3: 7}
	extras := map[[2]ir.BlockID]uint64{{2, 1}: 1}

	// Bounded loop: C(L) = 4*(3+5+1) + (3+5) = 44; total 2 + 44 + 7 = 53.
	trips := map[ir.BlockID]TripBound{
		1: {Header: 1, MaxBackEdges: 4, Bounded: true, HasExit: true},
	}
	w := ProcWCET(p, costs, extras, trips)
	if !w.Bounded || w.Cycles != 53 {
		t.Fatalf("WCET = %+v, want bounded 53", w)
	}

	// Unbounded loop: fall back to the acyclic envelope and name the
	// header.
	w = ProcWCET(p, costs, extras, nil)
	if w.Bounded {
		t.Fatal("unbounded loop reported bounded")
	}
	if len(w.UnboundedLoops) != 1 || w.UnboundedLoops[0] != 1 {
		t.Fatalf("unbounded loops = %v, want [1]", w.UnboundedLoops)
	}
	// Envelope: longest path with the back edge cut — 2+3+7 = 12 through
	// the exit (the body path 2+3+5 = 10 is shorter; MaxAcyclicCycles does
	// not charge edge extras).
	if w.Cycles != 12 {
		t.Fatalf("envelope = %d, want 12", w.Cycles)
	}

	// Zero-trip loop body never runs... but the envelope still includes
	// one traversal: a bound of 0 back edges means at most one partial
	// pass: 2 + (0*9 + 8) + 7 = 17.
	trips[1] = TripBound{Header: 1, MaxBackEdges: 0, Bounded: true, HasExit: true}
	w = ProcWCET(p, costs, extras, trips)
	if !w.Bounded || w.Cycles != 17 {
		t.Fatalf("zero-trip WCET = %+v, want bounded 17", w)
	}
}

func TestLoopNest(t *testing.T) {
	// Two-level nest:
	//
	//	b0 -> b1 (outer head) -> b2 (inner head) -> b3 (inner body) -> b2
	//	      b2 -> b4 (outer latch) -> b1; b1 -> b5 exit
	p := &cfg.Proc{
		Name:    "nest",
		Entry:   0,
		NumTemp: 1,
		Blocks: []*cfg.Block{
			{ID: 0, Instrs: []ir.Instr{ir.Const{Dst: 0, Val: 1}}, Term: ir.Jmp{Target: 1}},
			{ID: 1, Term: ir.Br{Cond: 0, True: 2, False: 5}},
			{ID: 2, Term: ir.Br{Cond: 0, True: 3, False: 4}},
			{ID: 3, Term: ir.Jmp{Target: 2}},
			{ID: 4, Term: ir.Jmp{Target: 1}},
			{ID: 5, Term: ir.Ret{Val: -1}},
		},
	}
	nest := p.BuildLoopNest()
	if len(nest.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(nest.Loops))
	}
	// NaturalLoops sorts by header: index 0 = outer (header 1), 1 = inner.
	if nest.Loops[0].Header != 1 || nest.Loops[1].Header != 2 {
		t.Fatalf("headers = %v, %v", nest.Loops[0].Header, nest.Loops[1].Header)
	}
	if nest.Parent[0] != -1 || nest.Parent[1] != 0 {
		t.Fatalf("parents = %v", nest.Parent)
	}
	if nest.Depth[0] != 1 || nest.Depth[1] != 2 {
		t.Fatalf("depths = %v", nest.Depth)
	}
	if nest.Innermost(3) != 1 || nest.Innermost(4) != 0 || nest.Innermost(0) != -1 {
		t.Fatalf("innermost wrong: b3=%d b4=%d b0=%d",
			nest.Innermost(3), nest.Innermost(4), nest.Innermost(0))
	}
	if order := nest.InnermostFirst(); order[0] != 1 || order[1] != 0 {
		t.Fatalf("contraction order = %v, want inner first", order)
	}
	// Within the outer loop, the inner loop's blocks map to child index 1.
	if nest.ChildIn(0, 3) != 1 || nest.ChildIn(0, 2) != 1 || nest.ChildIn(0, 4) != -1 {
		t.Fatalf("ChildIn wrong: b3=%d b2=%d b4=%d",
			nest.ChildIn(0, 3), nest.ChildIn(0, 2), nest.ChildIn(0, 4))
	}
}
