package analysis

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/minic"
)

// Verify checks that a lowered program is well-formed enough for every
// later stage — optimization passes, layout, code generation, and the
// timing model — to rely on. It is the inter-pass contract: compile.Build
// runs it after lowering and after every CFG-mutating pass when
// Options.VerifyIR is set, so a pass that breaks an invariant (say, a
// fusion that drops a still-read temp) fails loudly at the pass that broke
// it rather than as a wrong answer in the simulator.
//
// Beyond the structural checks of cfg.Program.Validate, Verify enforces:
//
//   - the entry block has no predecessors (the backend places the
//     prologue there and must not re-execute it);
//   - every temp is defined on every path before it is read
//     (def-before-use, via a definite-assignment dataflow);
//   - every named variable and array resolves to a parameter, local, or
//     global of the right shape;
//   - calls match their callee's signature (existence, arity, and result
//     use vs. void), and builtins match the minic.Builtins table;
//   - return terminators agree with the procedure's declared result.
func Verify(prog *cfg.Program) error {
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("analysis: verify: %w", err)
	}
	seen := make(map[string]bool, len(prog.Procs))
	for _, p := range prog.Procs {
		if seen[p.Name] {
			return fmt.Errorf("analysis: verify: duplicate procedure %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, p := range prog.Procs {
		if err := verifyProc(prog, p); err != nil {
			return err
		}
	}
	return nil
}

func verifyProc(prog *cfg.Program, p *cfg.Proc) error {
	errf := func(b ir.BlockID, format string, args ...any) error {
		return fmt.Errorf("analysis: verify: %s/%v: %s", p.Name, b, fmt.Sprintf(format, args...))
	}

	// Entry must have no predecessors.
	for _, b := range p.Blocks {
		for _, s := range b.Succs() {
			if s == p.Entry {
				return errf(b.ID, "edge targets the entry block (the prologue would re-execute)")
			}
		}
	}

	// Scalar and array name tables.
	scalars := make(map[string]bool)
	for _, name := range p.Params {
		scalars[name] = true
	}
	for _, name := range p.Locals {
		scalars[name] = true
	}
	for _, name := range prog.Globals {
		scalars[name] = true
	}
	arrays := make(map[string]int)
	for name, n := range p.Arrays {
		arrays[name] = n
	}
	for name, n := range prog.GlobalArrays {
		arrays[name] = n
	}

	reach := p.Reachable()
	for _, b := range p.Blocks {
		for i, in := range b.Instrs {
			if err := verifyInstr(prog, p, scalars, arrays, b, i, in); err != nil {
				return err
			}
		}
		switch t := b.Term.(type) {
		case ir.Ret:
			if p.HasRet && t.Val < 0 && reach[b.ID] {
				return errf(b.ID, "void return in value-returning procedure")
			}
			if !p.HasRet && t.Val >= 0 {
				return errf(b.ID, "value return in void procedure")
			}
		}
	}

	// Def-before-use over temps — catches passes that drop or reorder a
	// definition some other block still reads.
	if uses := UninitTempUses(p); len(uses) > 0 {
		u := uses[0]
		return errf(u.Block, "instr %d reads %v before any definition on some path", u.Index, u.Temp)
	}
	return nil
}

func verifyInstr(prog *cfg.Program, p *cfg.Proc, scalars map[string]bool, arrays map[string]int, b *cfg.Block, i int, in ir.Instr) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("analysis: verify: %s/%v instr %d (%s): %s",
			p.Name, b.ID, i, in, fmt.Sprintf(format, args...))
	}
	switch v := in.(type) {
	case ir.LoadVar:
		if !scalars[v.Name] {
			return errf("unresolved scalar %q", v.Name)
		}
	case ir.StoreVar:
		if !scalars[v.Name] {
			return errf("unresolved scalar %q", v.Name)
		}
	case ir.LoadIndex:
		if _, ok := arrays[v.Array]; !ok {
			return errf("unresolved array %q", v.Array)
		}
	case ir.StoreIndex:
		if _, ok := arrays[v.Array]; !ok {
			return errf("unresolved array %q", v.Array)
		}
	case ir.Call:
		callee := prog.Proc(v.Fn)
		if callee == nil {
			return errf("call to unknown procedure %q", v.Fn)
		}
		if len(v.Args) != len(callee.Params) {
			return errf("call to %q with %d args, want %d", v.Fn, len(v.Args), len(callee.Params))
		}
		if v.Dst >= 0 && !callee.HasRet {
			return errf("result of void procedure %q is used", v.Fn)
		}
	case ir.Builtin:
		sig, ok := minic.Builtins[v.Name]
		if !ok {
			return errf("unknown builtin %q", v.Name)
		}
		if len(v.Args) != sig.Arity {
			return errf("builtin %q with %d args, want %d", v.Name, len(v.Args), sig.Arity)
		}
		if v.Dst >= 0 && !sig.HasRet {
			return errf("result of void builtin %q is used", v.Name)
		}
	}
	return nil
}
