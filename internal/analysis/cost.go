package analysis

import (
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// FrameWords returns the stack-frame size of a procedure in words, below
// the frame pointer: local scalars, local arrays, and IR temps. This
// mirrors the backend's frame layout (compile.newFrame) exactly.
func FrameWords(p *cfg.Proc) int {
	n := len(p.Locals) + p.NumTemp
	for _, length := range p.Arrays {
		n += length
	}
	return n
}

// frameOccupancy is what one activation of a procedure adds to the stack
// beyond its caller's argument pushes: the CALL-pushed return address, the
// saved frame pointer, and the frame itself.
func frameOccupancy(p *cfg.Proc) int { return 2 + FrameWords(p) }

// MaxAcyclicCycles returns the worst-case cycle count of a single acyclic
// traversal of the procedure — the longest entry-to-anywhere path with
// every loop back edge cut — given per-block cycle costs (typically the
// backend's exact static timing, compile.ProcMeta.BlockCycles). The
// second result lists the headers of the loops that were cut, in ascending
// order; when non-empty the acyclic figure is only a per-"iteration
// envelope" bound, not a total one (see ProcWCET for the composed bound).
func MaxAcyclicCycles(p *cfg.Proc, blockCycles map[ir.BlockID]uint64) (uint64, []ir.BlockID) {
	rpo := p.ReversePostorder()
	pos := make(map[ir.BlockID]int, len(rpo))
	for i, id := range rpo {
		pos[id] = i
	}
	dist := make(map[ir.BlockID]uint64, len(rpo))
	headSet := make(map[ir.BlockID]bool)
	var max uint64
	for _, id := range rpo {
		d := dist[id] + blockCycles[id]
		if d > max {
			max = d
		}
		for _, s := range p.Block(id).Succs() {
			if pos[s] <= pos[id] {
				// Retreating edge: a loop. Cut it for the bound and
				// remember where it lands.
				headSet[s] = true
				continue
			}
			if d > dist[s] {
				dist[s] = d
			}
		}
	}
	var heads []ir.BlockID
	for h := range headSet {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return max, heads
}

// StackBound is the worst-case stack usage of one procedure including its
// deepest call chain.
type StackBound struct {
	// Words is the worst-case words pushed from the procedure's entry
	// (return address, saved FP, frame, and the deepest callee chain with
	// its argument pushes). Zero when Recursive.
	Words int
	// Recursive marks procedures that participate in or can reach a call
	// cycle, for which no static bound exists.
	Recursive bool
}

// StackBounds computes the worst-case stack depth of every procedure over
// the program's call graph, detecting recursion. Builtins consume no
// stack.
func StackBounds(prog *cfg.Program) map[string]StackBound {
	type callSite struct {
		callee string
		args   int
	}
	calls := make(map[string][]callSite)
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(ir.Call); ok {
					calls[p.Name] = append(calls[p.Name], callSite{callee: c.Fn, args: len(c.Args)})
				}
			}
		}
	}

	out := make(map[string]StackBound, len(prog.Procs))
	const (
		white = 0 // unvisited
		gray  = 1 // on the DFS stack
		black = 2 // done
	)
	color := make(map[string]int)
	var depth func(name string) (int, bool) // (words, recursive)
	depth = func(name string) (int, bool) {
		p := prog.Proc(name)
		if p == nil {
			return 0, false // unknown callee: Generate rejects it anyway
		}
		switch color[name] {
		case gray:
			return 0, true // back edge in the call graph: recursion
		case black:
			b := out[name]
			return b.Words, b.Recursive
		}
		color[name] = gray
		words := frameOccupancy(p)
		rec := false
		deepest := 0
		for _, cs := range calls[name] {
			d, r := depth(cs.callee)
			if r {
				rec = true
			}
			if cs.args+d > deepest {
				deepest = cs.args + d
			}
		}
		color[name] = black
		b := StackBound{Words: words + deepest, Recursive: rec}
		if rec {
			b.Words = 0
		}
		out[name] = b
		return b.Words, b.Recursive
	}
	for _, p := range prog.Procs {
		depth(p.Name)
	}
	return out
}
