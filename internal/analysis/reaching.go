package analysis

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// DefSite identifies one temp definition in a procedure.
type DefSite struct {
	Block ir.BlockID
	Index int // instruction index within the block
	Temp  ir.Temp
}

// Reaching is the reaching-definitions fixpoint over temp definitions:
// fact i corresponds to Defs[i], and In[b]/Out[b] hold the definitions
// that may reach the top/bottom of block b.
type Reaching struct {
	Defs    []DefSite
	In, Out []Bits
}

// ReachingDefs computes which temp definitions may reach each block. Every
// instruction that defines a temp is one fact; a definition of temp t
// kills every other definition of t.
func ReachingDefs(p *cfg.Proc) *Reaching {
	var defs []DefSite
	// defsOf[t] lists the fact indices defining temp t.
	defsOf := make([][]int, p.NumTemp)
	siteAt := make([][]int, len(p.Blocks)) // per block, fact index per defining instr (-1 none)
	for _, b := range p.Blocks {
		siteAt[b.ID] = make([]int, len(b.Instrs))
		for i, in := range b.Instrs {
			siteAt[b.ID][i] = -1
			if d, ok := ir.InstrDef(in); ok && inRange(d, p.NumTemp) {
				idx := len(defs)
				defs = append(defs, DefSite{Block: b.ID, Index: i, Temp: d})
				defsOf[d] = append(defsOf[d], idx)
				siteAt[b.ID][i] = idx
			}
		}
	}

	n := len(defs)
	prob := &Problem{
		Dir:  Forward,
		May:  true,
		Bits: n,
		Gen:  make([]Bits, len(p.Blocks)),
		Kill: make([]Bits, len(p.Blocks)),
	}
	for _, b := range p.Blocks {
		gen, kill := NewBits(n), NewBits(n)
		for i := range b.Instrs {
			idx := siteAt[b.ID][i]
			if idx < 0 {
				continue
			}
			t := defs[idx].Temp
			for _, other := range defsOf[t] {
				gen.Clear(other)
				kill.Set(other)
			}
			gen.Set(idx)
		}
		prob.Gen[int(b.ID)], prob.Kill[int(b.ID)] = gen, kill
	}
	res := Solve(p, prob)
	return &Reaching{Defs: defs, In: res.In, Out: res.Out}
}

// UninitUse is a read of a temp or variable on some path along which it
// was never written.
type UninitUse struct {
	Block ir.BlockID
	Index int // instruction index; len(Instrs) means the terminator
	Name  string
	Temp  ir.Temp // -1 for variable uses
	Pos   ir.Pos
}

// UninitTempUses finds temps read before any definition on some path —
// always a compiler bug (the lowerer defines every temp before use), so
// Verify treats any hit as an error. Detection is by definite assignment:
// a forward must-analysis tracking temps assigned on every path.
func UninitTempUses(p *cfg.Proc) []UninitUse {
	n := p.NumTemp
	prob := &Problem{
		Dir:  Forward,
		May:  false,
		Bits: n,
		Gen:  make([]Bits, len(p.Blocks)),
	}
	for i, b := range p.Blocks {
		gen := NewBits(n)
		for _, in := range b.Instrs {
			if d, ok := ir.InstrDef(in); ok && inRange(d, n) {
				gen.Set(int(d))
			}
		}
		prob.Gen[i] = gen
	}
	res := Solve(p, prob)

	reach := p.Reachable()
	var out []UninitUse
	for _, b := range p.Blocks {
		if !reach[b.ID] {
			continue
		}
		assigned := res.In[b.ID].Clone()
		report := func(t ir.Temp, idx int) {
			if inRange(t, n) && !assigned.Get(int(t)) {
				out = append(out, UninitUse{Block: b.ID, Index: idx, Temp: t, Pos: b.InstrPos(idx)})
				assigned.Set(int(t)) // report each temp once per block
			}
		}
		for i, in := range b.Instrs {
			ir.InstrUses(in, func(t ir.Temp) { report(t, i) })
			if d, ok := ir.InstrDef(in); ok && inRange(d, n) {
				assigned.Set(int(d))
			}
		}
		ir.TermUses(b.Term, func(t ir.Temp) { report(t, len(b.Instrs)) })
	}
	return out
}

// MaybeUninitVars finds local scalars read before being assigned on some
// path. Parameters are assigned by the caller and globals are zeroed by
// the startup stub, so only locals are candidates; a hit means the program
// reads whatever the stack slot happened to hold — legal but almost
// certainly a bug in the source program.
func MaybeUninitVars(p *cfg.Proc) []UninitUse {
	vs := NewVarSpace(p)
	n := len(vs.Names)
	if n == 0 {
		return nil
	}
	boundary := NewBits(n)
	for i := 0; i < vs.NumParams; i++ {
		boundary.Set(i)
	}
	prob := &Problem{
		Dir:      Forward,
		May:      false,
		Bits:     n,
		Gen:      make([]Bits, len(p.Blocks)),
		Boundary: boundary,
	}
	for i, b := range p.Blocks {
		gen := NewBits(n)
		for _, in := range b.Instrs {
			if v, ok := in.(ir.StoreVar); ok {
				if j := vs.Index(v.Name); j >= 0 {
					gen.Set(j)
				}
			}
		}
		prob.Gen[i] = gen
	}
	res := Solve(p, prob)

	reach := p.Reachable()
	var out []UninitUse
	for _, b := range p.Blocks {
		if !reach[b.ID] {
			continue
		}
		assigned := res.In[b.ID].Clone()
		for i, in := range b.Instrs {
			switch v := in.(type) {
			case ir.LoadVar:
				if j := vs.Index(v.Name); j >= 0 && !assigned.Get(j) {
					out = append(out, UninitUse{Block: b.ID, Index: i, Name: v.Name, Temp: -1, Pos: b.InstrPos(i)})
					assigned.Set(j) // report each variable once per block
				}
			case ir.StoreVar:
				if j := vs.Index(v.Name); j >= 0 {
					assigned.Set(j)
				}
			}
		}
	}
	return out
}
