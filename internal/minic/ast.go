package minic

// File is a parsed MiniC compilation unit.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// VarDecl declares a scalar or array variable.
//
//	var x int;  var x int = 3;  var buf[16] int;
type VarDecl struct {
	Pos      Pos
	Name     string
	ArrayLen int  // 0 for scalars
	Init     Expr // optional; globals require constant expressions
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	HasRet bool // declared to return int
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a { ... } sequence.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns to a scalar or array element.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar targets
	Value Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil when absent; else-if is a nested block
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for(init; cond; post) with assignment init/post.
type ForStmt struct {
	Pos  Pos
	Init *AssignStmt // optional
	Cond Expr        // optional (nil = true)
	Post *AssignStmt // optional
	Body *BlockStmt
}

// ReturnStmt returns from the function; Value nil for void returns.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// NumLit is an integer literal.
type NumLit struct {
	Pos Pos
	Val int
}

// VarRef reads a scalar variable.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// BinExpr is a binary operation. Op is a token kind (Plus, AndAnd, ...).
type BinExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// UnExpr is a unary operation (Minus, Not, Tilde).
type UnExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// CallExpr calls a user function or builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (*NumLit) exprNode()    {}
func (*VarRef) exprNode()    {}
func (*IndexExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}

// ExprPos implements Expr.
func (e *NumLit) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *VarRef) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *IndexExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *BinExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *UnExpr) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *CallExpr) ExprPos() Pos { return e.Pos }

// Builtins maps intrinsic names to their (arity, hasResult) signature.
var Builtins = map[string]struct {
	Arity  int
	HasRet bool
}{
	"sense": {0, true},  // read the ADC sensor
	"now":   {0, true},  // read the hardware timer tick
	"rand":  {0, true},  // read the entropy source
	"send":  {1, false}, // append a word to the radio buffer and transmit
	"led":   {1, false}, // set the LED state
	"debug": {1, false}, // write to the debug capture port
}
