package minic

import (
	"errors"
	"fmt"

	"codetomo/internal/isa"
)

// This file implements a reference interpreter that executes MiniC directly
// over the AST with the language's 16-bit wraparound semantics. It exists
// for differential testing: the compiler + mote simulator must produce
// exactly the outputs this interpreter produces, for any program. It is
// deliberately independent of the backend (no CFG, no machine code).

// Env supplies the hardware intrinsics to the interpreter.
type Env struct {
	// Sense and Rand produce the next ADC / entropy reading.
	Sense func() uint16
	Rand  func() uint16
	// Now produces the current timer tick. The reference interpreter has
	// no cycle model, so tests normally supply a constant.
	Now func() uint16
	// Debug receives debug(w) values; Send receives send(w) values; LED
	// receives led(v) values. Any may be nil.
	Debug func(uint16)
	Send  func(uint16)
	LED   func(uint16)
}

// ErrInterpLimit is returned when execution exceeds the step budget
// (runaway loop in a generated program).
var ErrInterpLimit = errors.New("minic: interpreter step limit exceeded")

type interp struct {
	file    *File
	env     Env
	globals map[string]uint16
	garrs   map[string][]uint16
	steps   int
	maxStep int
}

type frameEnv struct {
	vars map[string]uint16
	arrs map[string][]uint16
}

// control-flow signals inside the interpreter.
type signal int

const (
	sigNone signal = iota
	sigBreak
	sigContinue
	sigReturn
)

// Interpret runs a checked MiniC file under the given environment,
// executing at most maxSteps statements/expressions.
func Interpret(f *File, env Env, maxSteps int) error {
	if env.Sense == nil {
		env.Sense = func() uint16 { return 0 }
	}
	if env.Rand == nil {
		env.Rand = func() uint16 { return 0 }
	}
	if env.Now == nil {
		env.Now = func() uint16 { return 0 }
	}
	if maxSteps <= 0 {
		maxSteps = 10_000_000
	}
	in := &interp{
		file:    f,
		env:     env,
		globals: make(map[string]uint16),
		garrs:   make(map[string][]uint16),
		maxStep: maxSteps,
	}
	for _, g := range f.Globals {
		if g.ArrayLen > 0 {
			in.garrs[g.Name] = make([]uint16, g.ArrayLen)
			continue
		}
		v := 0
		if g.Init != nil {
			c, err := EvalConst(g.Init)
			if err != nil {
				return err
			}
			v = c
		}
		in.globals[g.Name] = uint16(v)
	}
	_, _, err := in.callFunc(f.Func("main"), nil)
	return err
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.maxStep {
		return ErrInterpLimit
	}
	return nil
}

func (in *interp) callFunc(fn *FuncDecl, args []uint16) (uint16, bool, error) {
	fr := &frameEnv{vars: make(map[string]uint16), arrs: make(map[string][]uint16)}
	for i, p := range fn.Params {
		fr.vars[p] = args[i]
	}
	sig, ret, err := in.block(fn.Body, fr)
	if err != nil {
		return 0, false, err
	}
	return ret, sig == sigReturn, nil
}

func (in *interp) block(b *BlockStmt, fr *frameEnv) (signal, uint16, error) {
	for _, s := range b.Stmts {
		sig, ret, err := in.stmt(s, fr)
		if err != nil || sig != sigNone {
			return sig, ret, err
		}
	}
	return sigNone, 0, nil
}

func (in *interp) stmt(s Stmt, fr *frameEnv) (signal, uint16, error) {
	if err := in.tick(); err != nil {
		return sigNone, 0, err
	}
	switch st := s.(type) {
	case *BlockStmt:
		return in.block(st, fr)
	case *DeclStmt:
		d := st.Decl
		if d.ArrayLen > 0 {
			fr.arrs[d.Name] = make([]uint16, d.ArrayLen)
			return sigNone, 0, nil
		}
		v := uint16(0)
		if d.Init != nil {
			x, err := in.expr(d.Init, fr)
			if err != nil {
				return sigNone, 0, err
			}
			v = x
		}
		fr.vars[d.Name] = v
		return sigNone, 0, nil
	case *AssignStmt:
		v, err := in.expr(st.Value, fr)
		if err != nil {
			return sigNone, 0, err
		}
		if st.Index == nil {
			if _, ok := fr.vars[st.Name]; ok {
				fr.vars[st.Name] = v
			} else {
				in.globals[st.Name] = v
			}
			return sigNone, 0, nil
		}
		idx, err := in.expr(st.Index, fr)
		if err != nil {
			return sigNone, 0, err
		}
		arr := fr.arrs[st.Name]
		if arr == nil {
			arr = in.garrs[st.Name]
		}
		if int(int16(idx)) < 0 || int(int16(idx)) >= len(arr) {
			return sigNone, 0, fmt.Errorf("minic: %s: index %d out of range [0,%d)", st.Name, int16(idx), len(arr))
		}
		arr[int16(idx)] = v
		return sigNone, 0, nil
	case *IfStmt:
		c, err := in.expr(st.Cond, fr)
		if err != nil {
			return sigNone, 0, err
		}
		if c != 0 {
			return in.block(st.Then, fr)
		}
		if st.Else != nil {
			return in.block(st.Else, fr)
		}
		return sigNone, 0, nil
	case *WhileStmt:
		for {
			if err := in.tick(); err != nil {
				return sigNone, 0, err
			}
			c, err := in.expr(st.Cond, fr)
			if err != nil {
				return sigNone, 0, err
			}
			if c == 0 {
				return sigNone, 0, nil
			}
			sig, ret, err := in.block(st.Body, fr)
			if err != nil {
				return sigNone, 0, err
			}
			switch sig {
			case sigBreak:
				return sigNone, 0, nil
			case sigReturn:
				return sig, ret, nil
			}
		}
	case *ForStmt:
		if st.Init != nil {
			if sig, ret, err := in.stmt(st.Init, fr); err != nil || sig != sigNone {
				return sig, ret, err
			}
		}
		for {
			if err := in.tick(); err != nil {
				return sigNone, 0, err
			}
			if st.Cond != nil {
				c, err := in.expr(st.Cond, fr)
				if err != nil {
					return sigNone, 0, err
				}
				if c == 0 {
					return sigNone, 0, nil
				}
			}
			sig, ret, err := in.block(st.Body, fr)
			if err != nil {
				return sigNone, 0, err
			}
			switch sig {
			case sigBreak:
				return sigNone, 0, nil
			case sigReturn:
				return sig, ret, nil
			}
			if st.Post != nil {
				if sig, ret, err := in.stmt(st.Post, fr); err != nil || sig != sigNone {
					return sig, ret, err
				}
			}
		}
	case *ReturnStmt:
		if st.Value == nil {
			return sigReturn, 0, nil
		}
		v, err := in.expr(st.Value, fr)
		return sigReturn, v, err
	case *BreakStmt:
		return sigBreak, 0, nil
	case *ContinueStmt:
		return sigContinue, 0, nil
	case *ExprStmt:
		_, err := in.expr(st.X, fr)
		return sigNone, 0, err
	}
	return sigNone, 0, fmt.Errorf("minic: unknown statement %T", s)
}

func (in *interp) expr(e Expr, fr *frameEnv) (uint16, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch ex := e.(type) {
	case *NumLit:
		return uint16(ex.Val), nil
	case *VarRef:
		if v, ok := fr.vars[ex.Name]; ok {
			return v, nil
		}
		return in.globals[ex.Name], nil
	case *IndexExpr:
		idx, err := in.expr(ex.Index, fr)
		if err != nil {
			return 0, err
		}
		arr := fr.arrs[ex.Name]
		if arr == nil {
			arr = in.garrs[ex.Name]
		}
		if int(int16(idx)) < 0 || int(int16(idx)) >= len(arr) {
			return 0, fmt.Errorf("minic: %s: index %d out of range [0,%d)", ex.Name, int16(idx), len(arr))
		}
		return arr[int16(idx)], nil
	case *UnExpr:
		x, err := in.expr(ex.X, fr)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case Minus:
			return -x, nil
		case Tilde:
			return ^x, nil
		case Not:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("minic: unknown unary %v", ex.Op)
	case *BinExpr:
		// Short-circuit forms evaluate lazily.
		if ex.Op == AndAnd {
			l, err := in.expr(ex.L, fr)
			if err != nil {
				return 0, err
			}
			if l == 0 {
				return 0, nil
			}
			r, err := in.expr(ex.R, fr)
			if err != nil {
				return 0, err
			}
			return boolWord(r != 0), nil
		}
		if ex.Op == OrOr {
			l, err := in.expr(ex.L, fr)
			if err != nil {
				return 0, err
			}
			if l != 0 {
				return 1, nil
			}
			r, err := in.expr(ex.R, fr)
			if err != nil {
				return 0, err
			}
			return boolWord(r != 0), nil
		}
		l, err := in.expr(ex.L, fr)
		if err != nil {
			return 0, err
		}
		r, err := in.expr(ex.R, fr)
		if err != nil {
			return 0, err
		}
		return binOp(ex.Op, l, r)
	case *CallExpr:
		args := make([]uint16, len(ex.Args))
		for i, a := range ex.Args {
			v, err := in.expr(a, fr)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if _, ok := Builtins[ex.Name]; ok {
			return in.builtin(ex.Name, args), nil
		}
		v, _, err := in.callFunc(in.file.Func(ex.Name), args)
		return v, err
	}
	return 0, fmt.Errorf("minic: unknown expression %T", e)
}

func (in *interp) builtin(name string, args []uint16) uint16 {
	switch name {
	case "sense":
		// The ADC saturates at its rails (mirrors the mote's SENSE).
		return isa.ClampADC(in.env.Sense())
	case "rand":
		return in.env.Rand()
	case "now":
		return in.env.Now()
	case "send":
		if in.env.Send != nil {
			in.env.Send(args[0])
		}
	case "led":
		if in.env.LED != nil {
			in.env.LED(args[0])
		}
	case "debug":
		if in.env.Debug != nil {
			in.env.Debug(args[0])
		}
	}
	return 0
}

func binOp(op Kind, l, r uint16) (uint16, error) {
	ls, rs := int16(l), int16(r)
	switch op {
	case Plus:
		return l + r, nil
	case Minus:
		return l - r, nil
	case Star:
		return uint16(ls * rs), nil
	case Slash:
		if r == 0 {
			return 0, errors.New("minic: division by zero")
		}
		return uint16(ls / rs), nil
	case Percent:
		if r == 0 {
			return 0, errors.New("minic: modulo by zero")
		}
		return uint16(ls % rs), nil
	case Amp:
		return l & r, nil
	case Pipe:
		return l | r, nil
	case Caret:
		return l ^ r, nil
	case Shl:
		return l << (r & 15), nil
	case Shr:
		// MiniC >> is arithmetic (ints are signed).
		return uint16(ls >> (r & 15)), nil
	case Lt:
		return boolWord(ls < rs), nil
	case Le:
		return boolWord(ls <= rs), nil
	case Gt:
		return boolWord(ls > rs), nil
	case Ge:
		return boolWord(ls >= rs), nil
	case EqEq:
		return boolWord(l == r), nil
	case NotEq:
		return boolWord(l != r), nil
	}
	return 0, fmt.Errorf("minic: unknown operator %v", op)
}

func boolWord(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
