package minic

import "fmt"

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	lex *Lexer
	tok Token // current token
	err error
}

// Parse parses a MiniC source file.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	f := &File{}
	for p.tok.Kind != EOF {
		switch p.tok.Kind {
		case KwVar:
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, d)
		case KwFunc:
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errorf(p.tok.Pos, "expected 'var' or 'func' at top level, found %s", p.tok)
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: EOF}
		return
	}
	p.tok = t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, errorf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t, p.err
}

func (p *Parser) accept(k Kind) bool {
	if p.err == nil && p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// varDecl := "var" IDENT ("[" NUMBER "]")? "int" ("=" expr)? ";"
func (p *Parser) varDecl() (*VarDecl, error) {
	start, err := p.expect(KwVar)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: start.Pos, Name: name.Text}
	if p.accept(LBracket) {
		n, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, errorf(n.Pos, "array length must be positive, got %d", n.Val)
		}
		d.ArrayLen = n.Val
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(KwInt); err != nil {
		return nil, err
	}
	if p.accept(Assign) {
		if d.ArrayLen > 0 {
			return nil, errorf(d.Pos, "array %s cannot have an initializer", d.Name)
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return d, nil
}

// funcDecl := "func" IDENT "(" (IDENT "int" ("," IDENT "int")*)? ")" "int"? block
func (p *Parser) funcDecl() (*FuncDecl, error) {
	start, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: start.Pos, Name: name.Text}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.tok.Kind != RParen {
		for {
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(KwInt); err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pn.Text)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if p.accept(KwInt) {
		fn.HasRet = true
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	start, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: start.Pos}
	for p.err == nil && p.tok.Kind != RBrace && p.tok.Kind != EOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.tok.Kind {
	case KwVar:
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwFor:
		return p.forStmt()
	case KwReturn:
		start := p.tok.Pos
		p.next()
		r := &ReturnStmt{Pos: start}
		if p.tok.Kind != Semicolon {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		start := p.tok.Pos
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: start}, nil
	case KwContinue:
		start := p.tok.Pos
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: start}, nil
	case LBrace:
		return p.block()
	case IDENT:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, errorf(p.tok.Pos, "expected a statement, found %s", p.tok)
}

// simpleStmt parses an assignment or an expression statement starting at an
// identifier (used by statements and for-loop clauses).
func (p *Parser) simpleStmt() (Stmt, error) {
	name := p.tok
	p.next()
	switch p.tok.Kind {
	case Assign:
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: name.Pos, Name: name.Text, Value: v}, nil
	case LBracket:
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: name.Pos, Name: name.Text, Index: idx, Value: v}, nil
	case LParen:
		call, err := p.callTail(name)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: name.Pos, X: call}, nil
	}
	return nil, errorf(p.tok.Pos, "expected '=', '[' or '(' after %q, found %s", name.Text, p.tok)
}

func (p *Parser) assignClause() (*AssignStmt, error) {
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	a, ok := s.(*AssignStmt)
	if !ok {
		return nil, errorf(p.tok.Pos, "for-loop clause must be an assignment")
	}
	return a, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	start, err := p.expect(KwIf)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: start.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		if p.tok.Kind == KwIf {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = &BlockStmt{Pos: p.tok.Pos, Stmts: []Stmt{nested}}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	start, err := p.expect(KwWhile)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: start.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	start, err := p.expect(KwFor)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: start.Pos}
	if p.tok.Kind != Semicolon {
		init, err := p.assignClause()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != Semicolon {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != RParen {
		post, err := p.assignClause()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Expression parsing: precedence climbing.

type precLevel struct {
	ops []Kind
}

// Precedence levels from loosest to tightest (C-like, with && above ||).
var precedence = []precLevel{
	{[]Kind{OrOr}},
	{[]Kind{AndAnd}},
	{[]Kind{Pipe}},
	{[]Kind{Caret}},
	{[]Kind{Amp}},
	{[]Kind{EqEq, NotEq}},
	{[]Kind{Lt, Le, Gt, Ge}},
	{[]Kind{Shl, Shr}},
	{[]Kind{Plus, Minus}},
	{[]Kind{Star, Slash, Percent}},
}

func (p *Parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *Parser) binExpr(level int) (Expr, error) {
	if level >= len(precedence) {
		return p.unary()
	}
	left, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precedence[level].ops {
			if p.tok.Kind == op {
				pos := p.tok.Pos
				p.next()
				right, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				left = &BinExpr{Pos: pos, Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *Parser) unary() (Expr, error) {
	switch p.tok.Kind {
	case Minus, Not, Tilde:
		pos, op := p.tok.Pos, p.tok.Kind
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	switch p.tok.Kind {
	case NUMBER:
		t := p.tok
		p.next()
		return &NumLit{Pos: t.Pos, Val: t.Val}, nil
	case LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		name := p.tok
		p.next()
		switch p.tok.Kind {
		case LParen:
			return p.callTail(name)
		case LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx}, nil
		}
		return &VarRef{Pos: name.Pos, Name: name.Text}, nil
	}
	return nil, errorf(p.tok.Pos, "expected an expression, found %s", p.tok)
}

func (p *Parser) callTail(name Token) (*CallExpr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Pos: name.Pos, Name: name.Text}
	if p.tok.Kind != RParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return call, nil
}

// MustParse parses src and panics on error (testing convenience).
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("minic.MustParse: %v", err))
	}
	return f
}
