package minic

import (
	"errors"
	"testing"
)

// runInterp executes src, returning the debug capture.
func runInterp(t *testing.T, src string, sense []uint16, maxSteps int) ([]uint16, error) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	si := 0
	var out []uint16
	env := Env{
		Sense: func() uint16 {
			if len(sense) == 0 {
				return 0
			}
			v := sense[si%len(sense)]
			si++
			return v
		},
		Debug: func(v uint16) { out = append(out, v) },
	}
	err = Interpret(f, env, maxSteps)
	return out, err
}

func TestInterpretArithmetic(t *testing.T) {
	src := `
func main() {
	var a int;
	a = 0 - 7;
	debug(a / 2 + 100);   // 97
	debug(a % 2 + 100);   // 99
	debug(a >> 1);        // arithmetic: 0xFFFC
	debug(30000 + 30000); // wraps to 60000
	debug(1 << 4);        // 16
	debug(~0);            // 0xFFFF
}`
	got, err := runInterp(t, src, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{97, 99, 0xFFFC, 60000, 16, 0xFFFF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("debug = %v, want %v", got, want)
		}
	}
}

func TestInterpretControlAndCalls(t *testing.T) {
	src := `
var g int = 5;
var arr[4] int;

func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}

func main() {
	var i int;
	var s int;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		s = s + i;
	}
	debug(s);        // 18
	debug(fib(10));  // 55
	arr[2] = g * 3;
	debug(arr[2]);   // 15
	while (s > 4) { s = s - 5; }
	debug(s);        // 3
	debug(1 && 7);   // 1
	debug(0 || 0);   // 0
}`
	got, err := runInterp(t, src, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{18, 55, 15, 3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("debug = %v, want %v", got, want)
		}
	}
}

func TestInterpretShortCircuitEffects(t *testing.T) {
	src := `
var hits int;
func bump() int { hits = hits + 1; return 1; }
func main() {
	var x int;
	x = 0 && bump();
	x = 1 || bump();
	debug(hits);       // 0: neither rhs evaluated
	x = 1 && bump();
	x = 0 || bump();
	debug(hits);       // 2
	debug(x);
}`
	got, err := runInterp(t, src, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("debug = %v", got)
	}
}

func TestInterpretStepLimit(t *testing.T) {
	src := `func main() { while (1) { } }`
	_, err := runInterp(t, src, nil, 1000)
	if !errors.Is(err, ErrInterpLimit) {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestInterpretRuntimeErrors(t *testing.T) {
	cases := []string{
		`func main() { var z int; z = 0; debug(1 / z); }`,
		`func main() { var z int; z = 0; debug(1 % z); }`,
		`var a[4] int; func main() { var i int; i = 9; a[i] = 1; }`,
		`var a[4] int; func main() { var i int; i = 0 - 1; debug(a[i]); }`,
	}
	for _, src := range cases {
		if _, err := runInterp(t, src, nil, 0); err == nil {
			t.Errorf("Interpret(%q) succeeded, want error", src)
		}
	}
}

func TestInterpretSensor(t *testing.T) {
	src := `
func main() {
	debug(sense());
	debug(sense() + sense());
}`
	got, err := runInterp(t, src, []uint16{10, 20, 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 50 {
		t.Fatalf("debug = %v", got)
	}
}

func TestEvalConstWraps16(t *testing.T) {
	// Folding must match runtime 16-bit semantics, including negative
	// intermediates and arithmetic shifts.
	cases := map[string]int{
		"(0 - 478) * 80 / 4": 6824,   // wraps to +27296 before dividing
		"(0 - 47) >> 2":      -12,    // arithmetic shift
		"(0-1) & 255":        255,    // negative bit patterns
		"40000 + 40000":      14464,  // unsigned wrap
		"(0-300) * 300":      -24464, // wrap within signed range
	}
	for src, want := range cases {
		f := MustParse("var g int = " + src + "; func main() { }")
		v, err := EvalConst(f.Globals[0].Init)
		if err != nil {
			t.Errorf("EvalConst(%q): %v", src, err)
			continue
		}
		if v != want {
			t.Errorf("EvalConst(%q) = %d, want %d", src, v, want)
		}
	}
}
