package minic

import "testing"

func TestCheckWithDiagnosticsUnusedNames(t *testing.T) {
	src := `
var g int;
func helper(a int, b int) int {
	return a + 1;
}
func main() {
	var x int = 1;
	var y int;
	debug(x);
	g = helper(2, 3);
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckWithDiagnostics(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"unused-param": `parameter "b" of "helper" is never used`,
		"unused-var":   `variable "y" is declared but never used`,
	}
	if len(diags) != len(want) {
		t.Fatalf("diagnostics = %v, want %d entries", diags, len(want))
	}
	for _, d := range diags {
		if want[d.Code] != d.Msg {
			t.Errorf("unexpected diagnostic %v", d)
		}
		if d.Pos.Line == 0 {
			t.Errorf("diagnostic %v has no position", d)
		}
	}
}

func TestCheckWithDiagnosticsWriteOnlyIsUsed(t *testing.T) {
	// Write-only variables are "used" here: flagging them is the dead-store
	// analysis' job, and double-reporting would be noise.
	src := `
func main() {
	var x int;
	x = 5;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckWithDiagnostics(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}

func TestCheckWithDiagnosticsPartialOnError(t *testing.T) {
	// helper checks clean (warning collected) before main's error stops
	// the walk; the warning must survive.
	src := `
func helper(a int) int { return 1; }
func main() { bogus(); }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckWithDiagnostics(f)
	if err == nil {
		t.Fatal("expected check error")
	}
	if len(diags) != 1 || diags[0].Code != "unused-param" {
		t.Fatalf("diagnostics = %v, want the unused-param warning", diags)
	}
}
