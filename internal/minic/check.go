package minic

import "fmt"

// symKind classifies names in scope.
type symKind int

const (
	symScalar symKind = iota
	symArray
	symFunc
)

type symbol struct {
	kind     symKind
	arrayLen int
	fn       *FuncDecl
	used     bool // referenced anywhere after its declaration
}

// checker walks the AST validating names, arities, l-values, and control
// placement. MiniC has a single type (16-bit int), so "type checking" is
// mostly shape checking: scalars vs arrays vs functions, and value vs void
// contexts.
type checker struct {
	file    *File
	globals map[string]*symbol
	locals  map[string]*symbol // current function scope (flat, C89-style)
	decls   []localDecl        // current function's params+locals, in order
	diags   []Diagnostic
	fn      *FuncDecl
	loop    int // loop nesting depth
}

// localDecl remembers declaration order and position for unused-name
// warnings (the locals map alone loses both).
type localDecl struct {
	name  string
	pos   Pos
	sym   *symbol
	param bool
}

// Check validates a parsed file. The returned error is the first
// diagnostic found.
func Check(f *File) error {
	_, err := CheckWithDiagnostics(f)
	return err
}

// CheckWithDiagnostics validates a parsed file like Check, additionally
// collecting non-fatal warnings (unused locals and parameters). The
// returned slice is valid even when err is non-nil: it holds whatever
// warnings were collected before the error stopped the walk.
func CheckWithDiagnostics(f *File) ([]Diagnostic, error) {
	c := &checker{file: f, globals: make(map[string]*symbol)}
	err := c.run(f)
	return c.diags, err
}

func (c *checker) run(f *File) error {

	for _, g := range f.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errorf(g.Pos, "duplicate global %q", g.Name)
		}
		if _, isBuiltin := Builtins[g.Name]; isBuiltin {
			return errorf(g.Pos, "%q shadows a builtin", g.Name)
		}
		s := &symbol{kind: symScalar}
		if g.ArrayLen > 0 {
			s.kind = symArray
			s.arrayLen = g.ArrayLen
		}
		if g.Init != nil {
			if _, err := EvalConst(g.Init); err != nil {
				return err
			}
		}
		c.globals[g.Name] = s
	}

	for _, fn := range f.Funcs {
		if _, dup := c.globals[fn.Name]; dup {
			return errorf(fn.Pos, "duplicate name %q", fn.Name)
		}
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			return errorf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		c.globals[fn.Name] = &symbol{kind: symFunc, fn: fn}
	}

	main := f.Func("main")
	if main == nil {
		return errorf(Pos{1, 1}, "program has no 'main' function")
	}
	if len(main.Params) != 0 {
		return errorf(main.Pos, "'main' must take no parameters")
	}

	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.locals = make(map[string]*symbol)
	c.decls = nil
	c.loop = 0
	for _, p := range fn.Params {
		if _, dup := c.locals[p]; dup {
			return errorf(fn.Pos, "duplicate parameter %q in %q", p, fn.Name)
		}
		sym := &symbol{kind: symScalar}
		c.locals[p] = sym
		c.decls = append(c.decls, localDecl{name: p, pos: fn.Pos, sym: sym, param: true})
	}
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	if fn.HasRet && !alwaysReturns(fn.Body) {
		return errorf(fn.Pos, "function %q declared int but control can reach the end without a return", fn.Name)
	}
	for _, d := range c.decls {
		if d.sym.used {
			continue
		}
		if d.param {
			c.diags = append(c.diags, Diagnostic{
				Pos:  d.pos,
				Code: "unused-param",
				Msg:  fmt.Sprintf("parameter %q of %q is never used", d.name, fn.Name),
			})
		} else {
			c.diags = append(c.diags, Diagnostic{
				Pos:  d.pos,
				Code: "unused-var",
				Msg:  fmt.Sprintf("variable %q is declared but never used", d.name),
			})
		}
	}
	return nil
}

// lookup resolves a name and marks the symbol as used: any mention after
// the declaration — read or write — counts, so the unused-name warning
// only fires for names that never appear again. Write-only variables are
// the dead-store analysis' job, not this one's.
func (c *checker) lookup(name string) *symbol {
	if s, ok := c.locals[name]; ok {
		s.used = true
		return s
	}
	if s, ok := c.globals[name]; ok {
		s.used = true
		return s
	}
	return nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		if _, dup := c.locals[d.Name]; dup {
			return errorf(d.Pos, "duplicate local %q", d.Name)
		}
		if _, isBuiltin := Builtins[d.Name]; isBuiltin {
			return errorf(d.Pos, "%q shadows a builtin", d.Name)
		}
		sym := &symbol{kind: symScalar}
		if d.ArrayLen > 0 {
			sym.kind = symArray
			sym.arrayLen = d.ArrayLen
			if d.Init != nil {
				return errorf(d.Pos, "array %q cannot have an initializer", d.Name)
			}
		}
		if d.Init != nil {
			if err := c.checkValueExpr(d.Init); err != nil {
				return err
			}
		}
		c.locals[d.Name] = sym
		c.decls = append(c.decls, localDecl{name: d.Name, pos: d.Pos, sym: sym})
		return nil
	case *AssignStmt:
		sym := c.lookup(st.Name)
		if sym == nil {
			return errorf(st.Pos, "assignment to undeclared %q", st.Name)
		}
		switch {
		case st.Index == nil && sym.kind != symScalar:
			return errorf(st.Pos, "%q is not a scalar variable", st.Name)
		case st.Index != nil && sym.kind != symArray:
			return errorf(st.Pos, "%q is not an array", st.Name)
		}
		if st.Index != nil {
			if err := c.checkValueExpr(st.Index); err != nil {
				return err
			}
		}
		return c.checkValueExpr(st.Value)
	case *IfStmt:
		if err := c.checkValueExpr(st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkValueExpr(st.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)
	case *ForStmt:
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkValueExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)
	case *ReturnStmt:
		if c.fn.HasRet && st.Value == nil {
			return errorf(st.Pos, "function %q must return a value", c.fn.Name)
		}
		if !c.fn.HasRet && st.Value != nil {
			return errorf(st.Pos, "function %q returns no value", c.fn.Name)
		}
		if st.Value != nil {
			return c.checkValueExpr(st.Value)
		}
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return errorf(st.Pos, "'break' outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return errorf(st.Pos, "'continue' outside a loop")
		}
		return nil
	case *ExprStmt:
		call, ok := st.X.(*CallExpr)
		if !ok {
			return errorf(st.Pos, "expression statement must be a call")
		}
		return c.checkCall(call, false)
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// checkValueExpr validates an expression used where a value is needed.
func (c *checker) checkValueExpr(e Expr) error {
	switch ex := e.(type) {
	case *NumLit:
		return nil
	case *VarRef:
		sym := c.lookup(ex.Name)
		if sym == nil {
			return errorf(ex.Pos, "undeclared variable %q", ex.Name)
		}
		if sym.kind != symScalar {
			return errorf(ex.Pos, "%q is not a scalar variable", ex.Name)
		}
		return nil
	case *IndexExpr:
		sym := c.lookup(ex.Name)
		if sym == nil {
			return errorf(ex.Pos, "undeclared array %q", ex.Name)
		}
		if sym.kind != symArray {
			return errorf(ex.Pos, "%q is not an array", ex.Name)
		}
		return c.checkValueExpr(ex.Index)
	case *BinExpr:
		if err := c.checkValueExpr(ex.L); err != nil {
			return err
		}
		return c.checkValueExpr(ex.R)
	case *UnExpr:
		return c.checkValueExpr(ex.X)
	case *CallExpr:
		return c.checkCall(ex, true)
	}
	return fmt.Errorf("minic: unknown expression %T", e)
}

func (c *checker) checkCall(call *CallExpr, needValue bool) error {
	if b, ok := Builtins[call.Name]; ok {
		if len(call.Args) != b.Arity {
			return errorf(call.Pos, "builtin %q takes %d argument(s), got %d", call.Name, b.Arity, len(call.Args))
		}
		if needValue && !b.HasRet {
			return errorf(call.Pos, "builtin %q returns no value", call.Name)
		}
		for _, a := range call.Args {
			if err := c.checkValueExpr(a); err != nil {
				return err
			}
		}
		return nil
	}
	sym := c.lookup(call.Name)
	if sym == nil || sym.kind != symFunc {
		return errorf(call.Pos, "call to undeclared function %q", call.Name)
	}
	if len(call.Args) != len(sym.fn.Params) {
		return errorf(call.Pos, "function %q takes %d argument(s), got %d", call.Name, len(sym.fn.Params), len(call.Args))
	}
	if needValue && !sym.fn.HasRet {
		return errorf(call.Pos, "function %q returns no value", call.Name)
	}
	for _, a := range call.Args {
		if err := c.checkValueExpr(a); err != nil {
			return err
		}
	}
	return nil
}

// alwaysReturns reports whether every path through the block ends in a
// return (conservative: loops are not assumed to return).
func alwaysReturns(b *BlockStmt) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ReturnStmt:
			return true
		case *IfStmt:
			if st.Else != nil && alwaysReturns(st.Then) && alwaysReturns(st.Else) {
				return true
			}
		case *BlockStmt:
			if alwaysReturns(st) {
				return true
			}
		}
	}
	return false
}

// EvalConst evaluates a compile-time constant expression (used for global
// initializers and by the lowering pass for constant folding). Only
// literals and pure operators are allowed. All arithmetic follows the
// language's 16-bit wraparound semantics exactly — folding must never
// produce a value the machine would not.
func EvalConst(e Expr) (int, error) {
	v, err := evalConst16(e)
	return int(int16(v)), err
}

func evalConst16(e Expr) (uint16, error) {
	switch ex := e.(type) {
	case *NumLit:
		return uint16(ex.Val), nil
	case *UnExpr:
		v, err := evalConst16(ex.X)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case Minus:
			return -v, nil
		case Tilde:
			return ^v, nil
		case Not:
			return boolWord(v == 0), nil
		}
	case *BinExpr:
		// && and || over constants have no short-circuit observability.
		l, err := evalConst16(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := evalConst16(ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case AndAnd:
			return boolWord(l != 0 && r != 0), nil
		case OrOr:
			return boolWord(l != 0 || r != 0), nil
		case Slash:
			if r == 0 {
				return 0, errorf(ex.Pos, "constant division by zero")
			}
		case Percent:
			if r == 0 {
				return 0, errorf(ex.Pos, "constant modulo by zero")
			}
		}
		// binOp is the interpreter's operator table — the single source
		// of truth for MiniC arithmetic.
		v, err := binOp(ex.Op, l, r)
		if err != nil {
			return 0, errorf(ex.Pos, "%v", err)
		}
		return v, nil
	}
	return 0, errorf(e.ExprPos(), "expression is not a compile-time constant")
}
