package minic_test

// External test package: the fuzz targets drive the whole compiler stack
// (minic -> compile -> analysis.Verify), which package minic itself cannot
// import without a cycle.

import (
	"strings"
	"testing"

	"codetomo/internal/compile"
	"codetomo/internal/minic"
)

// FuzzParse checks the front end never panics and that anything it accepts
// also passes (or is cleanly rejected by) the checker — and that anything
// the checker accepts lowers to IR that survives the inter-pass verifier
// under the most aggressive option set. Run with
// `go test -fuzz=FuzzParse ./internal/minic` for continuous fuzzing; the
// seed corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x int;",
		"func main() { }",
		"func main() { var x int = 1 + 2 * 3; debug(x); }",
		"func f(a int) int { return a; } func main() { f(1); }",
		"func main() { if (1 && 0 || 2) { led(1); } else { led(0); } }",
		"func main() { var i int; for (i = 0; i < 8; i = i + 1) { send(i); } }",
		"var a[8] int; func main() { a[0] = sense(); while (a[0] > 2) { a[0] = a[0] - 1; } }",
		"func main() { debug(0x1F ^ ~3 % 5 / 2 << 1 >> 1); }",
		"/* block */ // line\nfunc main() { }",
		"func main() { x = ; }",
		"var a[0] int;",
		"func main() { break; }",
		"@#$%",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := minic.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever parses must go through the checker without panicking.
		if err := minic.Check(file); err != nil {
			return
		}
		// Fully valid programs must also interpret without panicking
		// (runtime errors and step-limit stops are fine).
		_ = minic.Interpret(file, minic.Env{}, 50_000)

		// And they must compile with every pass enabled and the IR
		// re-verified after each one. Capacity-class rejections (frame or
		// immediate overflow on absurd inputs) are acceptable; a verifier
		// or validator failure is a compiler bug by definition.
		_, err = compile.Build(src, compile.Options{
			VerifyIR:     true,
			FuseCompares: true,
			RotateLoops:  true,
		})
		if err != nil && (strings.Contains(err.Error(), "IR verification failed") ||
			strings.Contains(err.Error(), "invalid CFG")) {
			t.Fatalf("checked program failed IR verification: %v\n%s", err, src)
		}
	})
}

// FuzzLexer checks the tokenizer never panics or loops.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"", "a b c", "0x", "123 0xFF", "<<=>>=!&&||", "\x00\xff", "var"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lex := minic.NewLexer(src)
		for i := 0; i < len(src)+16; i++ {
			tok, err := lex.Next()
			if err != nil || tok.Kind == minic.EOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate on %q", src)
	})
}
