// Package minic implements the front end of the MiniC language — the small
// C-like language the benchmark sensor programs are written in. It covers
// lexing, parsing to an AST, and semantic checking; package compile lowers
// the checked AST to CFG form and machine code.
//
// MiniC deliberately mirrors the shape of nesC/TinyOS application code:
// 16-bit integers, global state, arrays, event-handler-style procedures,
// and hardware intrinsics (sense, send, led, now, rand, debug).
package minic

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwVar
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwInt

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign // =

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwVar: "'var'", KwFunc: "'func'", KwIf: "'if'", KwElse: "'else'",
	KwWhile: "'while'", KwFor: "'for'", KwReturn: "'return'",
	KwBreak: "'break'", KwContinue: "'continue'", KwInt: "'int'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semicolon: "';'",
	Assign: "'='", Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
	Percent: "'%'", Amp: "'&'", Pipe: "'|'", Caret: "'^'", Tilde: "'~'",
	Shl: "'<<'", Shr: "'>>'", Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='",
	EqEq: "'=='", NotEq: "'!='", AndAnd: "'&&'", OrOr: "'||'", Not: "'!'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"var": KwVar, "func": KwFunc, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "int": KwInt,
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Val  int // for NUMBER
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("ident(%s)", t.Text)
	case NUMBER:
		return fmt.Sprintf("number(%d)", t.Val)
	default:
		return t.Kind.String()
	}
}
