package minic

import "fmt"

// Diagnostic is a non-fatal finding from semantic analysis. Errors stop
// the compiler; diagnostics are advice the front end collects alongside a
// successful (or failed) check, for tools like ctlint to surface.
type Diagnostic struct {
	Pos  Pos
	Code string // stable machine-readable kind, e.g. "unused-var"
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s [%s]", d.Pos.Line, d.Pos.Col, d.Msg, d.Code)
}
