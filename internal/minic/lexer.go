package minic

import (
	"fmt"
	"strconv"
)

// Error is a positioned front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer turns MiniC source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && (isIdentStart(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			start = l.off
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
			if l.off == start {
				return Token{}, errorf(pos, "malformed hex literal")
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, base, 64)
		if err != nil {
			return Token{}, errorf(pos, "malformed number %q", text)
		}
		if v > 0xFFFF {
			return Token{}, errorf(pos, "literal %d exceeds 16 bits", v)
		}
		return Token{Kind: NUMBER, Text: text, Val: int(v), Pos: pos}, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semicolon)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '^':
		return one(Caret)
	case '~':
		return one(Tilde)
	case '&':
		if l.peek2() == '&' {
			return two(AndAnd)
		}
		return one(Amp)
	case '|':
		if l.peek2() == '|' {
			return two(OrOr)
		}
		return one(Pipe)
	case '<':
		if l.peek2() == '<' {
			return two(Shl)
		}
		if l.peek2() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek2() == '>' {
			return two(Shr)
		}
		if l.peek2() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if l.peek2() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '!':
		if l.peek2() == '=' {
			return two(NotEq)
		}
		return one(Not)
	}
	return Token{}, errorf(pos, "unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
