package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("var x int = 0x1F; // comment\nfunc f() { }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwVar, IDENT, KwInt, Assign, NUMBER, Semicolon, KwFunc, IDENT, LParen, RParen, LBrace, RBrace, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[4].Val != 31 {
		t.Fatalf("hex literal = %d, want 31", toks[4].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("a << b >> c <= d >= e == f != g && h || i & j | k ^ ~m !n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		if tk.Kind != IDENT && tk.Kind != EOF {
			kinds = append(kinds, tk.Kind)
		}
	}
	want := []Kind{Shl, Shr, Le, Ge, EqEq, NotEq, AndAnd, OrOr, Amp, Pipe, Caret, Tilde, Not}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "0x", "99999"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) accepted", src)
		}
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := LexAll("a /* hi\nthere */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "b" {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Fatalf("b at line %d, want 2", toks[1].Pos.Line)
	}
}

const goodProgram = `
var threshold int = 50 + 2*25;
var buf[8] int;

func classify(x int) int {
	var y int;
	if (x > threshold && x < 900) {
		y = 1;
	} else if (x == 0) {
		y = 2;
	} else {
		y = 0;
	}
	return y;
}

func fill() {
	var i int;
	for (i = 0; i < 8; i = i + 1) {
		buf[i] = sense();
		if (buf[i] > 1000) { break; }
	}
}

func main() {
	var n int;
	n = 0;
	while (n < 10) {
		fill();
		if (classify(buf[0]) != 0) {
			send(buf[0]);
		}
		led(n & 1);
		n = n + 1;
	}
	debug(now());
}
`

func TestParseAndCheckGood(t *testing.T) {
	f, err := Parse(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 2 || len(f.Funcs) != 3 {
		t.Fatalf("globals=%d funcs=%d", len(f.Globals), len(f.Funcs))
	}
	if f.Globals[1].ArrayLen != 8 {
		t.Fatalf("buf length = %d", f.Globals[1].ArrayLen)
	}
	cl := f.Func("classify")
	if cl == nil || !cl.HasRet || len(cl.Params) != 1 {
		t.Fatalf("classify signature wrong: %+v", cl)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	// The global initializer must be constant-foldable.
	v, err := EvalConst(f.Globals[0].Init)
	if err != nil || v != 100 {
		t.Fatalf("threshold init = %d, %v", v, err)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("func main() { var x int; x = 1 + 2 * 3; }")
	asg := f.Funcs[0].Body.Stmts[1].(*AssignStmt)
	bin := asg.Value.(*BinExpr)
	if bin.Op != Plus {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.R.(*BinExpr); !ok || inner.Op != Star {
		t.Fatalf("rhs = %#v, want multiplication", bin.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	f := MustParse("func main() { var x int; x = 1 || 2 && 3; }")
	asg := f.Funcs[0].Body.Stmts[1].(*AssignStmt)
	bin := asg.Value.(*BinExpr)
	if bin.Op != OrOr {
		t.Fatalf("top op = %v, want ||", bin.Op)
	}
}

func TestParseElseIfChain(t *testing.T) {
	f := MustParse(`func main() { var x int; if (x == 1) { x = 1; } else if (x == 2) { x = 2; } else { x = 3; } }`)
	ifs := f.Funcs[0].Body.Stmts[1].(*IfStmt)
	if ifs.Else == nil {
		t.Fatal("else missing")
	}
	nested, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok || nested.Else == nil {
		t.Fatal("else-if chain not nested")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func",
		"var x;",
		"var x int",
		"var a[0] int;",
		"var a[4] int = 3;",
		"func f( { }",
		"func f() { if x { } }",
		"func f() { x = ; }",
		"func f() { 3; }",
		"garbage",
		"func f() { for (break;;) {} }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"no main":          `func f() { }`,
		"main params":      `func main(x int) { }`,
		"undeclared var":   `func main() { x = 1; }`,
		"undeclared call":  `func main() { f(); }`,
		"arity":            `func f(a int) { } func main() { f(); }`,
		"void as value":    `func f() { } func main() { var x int; x = f(); }`,
		"scalar as array":  `var x int; func main() { x[0] = 1; }`,
		"array as scalar":  `var a[4] int; func main() { a = 1; }`,
		"dup global":       `var x int; var x int; func main() { }`,
		"dup local":        `func main() { var x int; var x int; }`,
		"dup param":        `func f(a int, a int) { } func main() { }`,
		"break outside":    `func main() { break; }`,
		"continue outside": `func main() { continue; }`,
		"missing return":   `func f() int { var x int; x = 1; } func main() { }`,
		"return value":     `func f() { return 3; } func main() { f(); }`,
		"return void":      `func f() int { return; } func main() { }`,
		"builtin arity":    `func main() { send(); }`,
		"builtin as value": `func main() { var x int; x = led(1); }`,
		"shadow builtin":   `func sense() int { return 0; } func main() { }`,
		"nonconst global":  `var x int = sense(); func main() { }`,
	}
	for name, src := range bad {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("%s: parse error %v (should fail in Check)", name, err)
			continue
		}
		if err := Check(f); err == nil {
			t.Errorf("%s: Check accepted %q", name, src)
		}
	}
}

func TestCheckIfWithoutElseReturn(t *testing.T) {
	// if-without-else cannot satisfy the must-return rule.
	src := `func f(x int) int { if (x > 0) { return 1; } } func main() { }`
	f := MustParse(src)
	if err := Check(f); err == nil {
		t.Fatal("accepted function whose control can reach the end")
	}
	// With both sides returning it must pass.
	src2 := `func f(x int) int { if (x > 0) { return 1; } else { return 0; } } func main() { }`
	if err := Check(MustParse(src2)); err != nil {
		t.Fatal(err)
	}
}

func TestEvalConst(t *testing.T) {
	cases := map[string]int{
		"1+2":      3,
		"2*3-1":    5,
		"~0 & 255": 255,
		"1 << 4":   16,
		"-5":       -5,
		"!0":       1,
		"!7":       0,
		"7 % 3":    1,
		"8 / 2":    4,
		"6 ^ 3":    5,
		"6 | 1":    7,
	}
	for src, want := range cases {
		f := MustParse("var g int = " + src + "; func main() { }")
		v, err := EvalConst(f.Globals[0].Init)
		if err != nil {
			t.Errorf("EvalConst(%q): %v", src, err)
			continue
		}
		if v != want {
			t.Errorf("EvalConst(%q) = %d, want %d", src, v, want)
		}
	}
	for _, src := range []string{"1/0", "5%0"} {
		f := MustParse("var g int = " + src + "; func main() { }")
		if _, err := EvalConst(f.Globals[0].Init); err == nil {
			t.Errorf("EvalConst(%q) accepted", src)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("func main() {\n  x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line info", err)
	}
}
