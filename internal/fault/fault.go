// Package fault injects deterministic hardware faults into simulated
// motes: watchdog crash/reboots and energy brownouts (delivered as
// mote.ResetEvent schedules) and stuck-at / noisy-ADC sensor faults
// (delivered as a mote.SampleSource wrapper). Every fault is a pure
// function of the fault config and the mote's identity, so a faulty fleet
// is exactly as reproducible as a healthy one — no wall clock, no global
// RNG.
package fault

import (
	"fmt"

	"codetomo/internal/mote"
	"codetomo/internal/stats"
)

// Per-subsystem seed strides: each mote's crash and sensor streams derive
// from (Seed, mote identity) with distinct odd primes so the streams stay
// disjoint from each other and from the fleet's workload/channel RNGs.
const (
	crashSeedStride  = 15485863
	sensorSeedStride = 32452843

	// maxResetsPerMote is a safety bound on a schedule's length; a
	// realistic campaign sees a handful of resets, so hitting it means a
	// misconfigured MTBF, not a longer outage series worth modeling.
	maxResetsPerMote = 10000
)

// Config describes the fault environment a deployment runs in. The zero
// value injects nothing.
type Config struct {
	// CrashMTBFCycles is the mean number of cycles between watchdog
	// resets (exponential inter-arrival times); 0 disables crash
	// injection.
	CrashMTBFCycles uint64
	// RebootCycles is the dead time an ordinary watchdog reset costs
	// (default 512).
	RebootCycles uint64
	// BrownoutProb is the probability, in [0, 1], that a given reset is an
	// energy brownout with a much longer outage instead of a quick
	// watchdog reboot.
	BrownoutProb float64
	// BrownoutCycles is the brownout outage length (default 65536).
	BrownoutCycles uint64
	// SensorStuckProb is the per-read probability, in [0, 1], that the ADC
	// latches the current reading for SensorStuckReads reads (a classic
	// stuck-at fault).
	SensorStuckProb float64
	// SensorStuckReads is how many reads a stuck-at episode lasts
	// (default 32).
	SensorStuckReads int
	// SensorNoiseProb is the per-read probability, in [0, 1], of an ADC
	// glitch replacing the reading with reading±uniform(SensorNoiseAmp).
	SensorNoiseProb float64
	// SensorNoiseAmp is the glitch magnitude (default 2048).
	SensorNoiseAmp int
	// Seed drives every fault draw; per-mote streams derive from it.
	Seed int64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.CrashMTBFCycles > 0 || c.SensorStuckProb > 0 || c.SensorNoiseProb > 0
}

// Validate rejects configurations that cannot describe a fault
// environment: probabilities outside [0, 1] or negative episode lengths.
func (c Config) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: %s = %v, must be in [0, 1]", name, p)
		}
		return nil
	}
	if err := check("BrownoutProb", c.BrownoutProb); err != nil {
		return err
	}
	if err := check("SensorStuckProb", c.SensorStuckProb); err != nil {
		return err
	}
	if err := check("SensorNoiseProb", c.SensorNoiseProb); err != nil {
		return err
	}
	if c.SensorStuckReads < 0 {
		return fmt.Errorf("fault: SensorStuckReads = %d, must be >= 0 (zero selects the default of 32)", c.SensorStuckReads)
	}
	if c.SensorNoiseAmp < 0 {
		return fmt.Errorf("fault: SensorNoiseAmp = %d, must be >= 0 (zero selects the default of 2048)", c.SensorNoiseAmp)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RebootCycles == 0 {
		c.RebootCycles = 512
	}
	if c.BrownoutCycles == 0 {
		c.BrownoutCycles = 65536
	}
	if c.SensorStuckReads == 0 {
		c.SensorStuckReads = 32
	}
	if c.SensorNoiseAmp == 0 {
		c.SensorNoiseAmp = 2048
	}
	return c
}

// Resets derives one mote's reset schedule for a campaign of maxCycles
// cycles: exponential inter-arrival times with mean CrashMTBFCycles, each
// reset independently upgraded to a brownout with BrownoutProb. The
// schedule is strictly increasing and entirely determined by (Config,
// moteSeed), so re-deriving it always yields the same faults.
func (c Config) Resets(maxCycles uint64, moteSeed int64) []mote.ResetEvent {
	c = c.withDefaults()
	if c.CrashMTBFCycles == 0 || maxCycles == 0 {
		return nil
	}
	rng := stats.NewRNG(c.Seed + moteSeed*crashSeedStride + 1)
	var out []mote.ResetEvent
	at := uint64(0)
	for len(out) < maxResetsPerMote {
		gap := uint64(rng.Exponential(1 / float64(c.CrashMTBFCycles)))
		if gap == 0 {
			gap = 1
		}
		at += gap
		if at >= maxCycles {
			break
		}
		down := c.RebootCycles
		if rng.Bernoulli(c.BrownoutProb) {
			down = c.BrownoutCycles
		}
		out = append(out, mote.ResetEvent{AtCycle: at, DownCycles: down})
		at += down
	}
	return out
}

// WrapSensor layers the config's sensor faults over a workload source.
// With no sensor faults configured the source is returned unchanged, so
// healthy motes pay nothing.
func (c Config) WrapSensor(inner mote.SampleSource, moteSeed int64) mote.SampleSource {
	c = c.withDefaults()
	if c.SensorStuckProb == 0 && c.SensorNoiseProb == 0 {
		return inner
	}
	return &faultySensor{
		inner: inner,
		cfg:   c,
		rng:   stats.NewRNG(c.Seed + moteSeed*sensorSeedStride + 2),
	}
}

// faultySensor injects stuck-at and glitch faults into an ADC stream. The
// inner source is always consulted first so the underlying workload RNG
// advances identically with and without faults — faults perturb what the
// program sees, not what the environment produced.
type faultySensor struct {
	inner mote.SampleSource
	cfg   Config
	rng   *stats.RNG

	stuckVal  uint16
	stuckLeft int
}

func (s *faultySensor) Next() uint16 {
	v := s.inner.Next()
	if s.stuckLeft > 0 {
		s.stuckLeft--
		return s.stuckVal
	}
	if s.cfg.SensorStuckProb > 0 && s.rng.Bernoulli(s.cfg.SensorStuckProb) {
		// The ADC latches the current reading for the episode length.
		s.stuckVal = v
		s.stuckLeft = s.cfg.SensorStuckReads
		return v
	}
	if s.cfg.SensorNoiseProb > 0 && s.rng.Bernoulli(s.cfg.SensorNoiseProb) {
		amp := s.cfg.SensorNoiseAmp
		g := int(v) + s.rng.Intn(2*amp+1) - amp
		// The ADC saturates at its rails; a glitch never wraps around.
		if g < 0 {
			g = 0
		} else if g > 0xFFFF {
			g = 0xFFFF
		}
		return uint16(g)
	}
	return v
}
