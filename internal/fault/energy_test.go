package fault

import (
	"errors"
	"math"
	"testing"

	"codetomo/internal/isa"
	"codetomo/internal/mote"
)

func TestEnergyConfigValidate(t *testing.T) {
	good := []EnergyConfig{
		{},
		{HarvestUJPerKCycle: 1},
		{HarvestUJPerKCycle: 1, HarvestNoiseSigma: 0.5, DiurnalPeriodCycles: 1 << 20},
		{HarvestUJPerKCycle: 1, CapacityUJ: 50, BrownoutFloorUJ: 1, RestartChargeUJ: 40},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []EnergyConfig{
		{HarvestUJPerKCycle: -1},
		{HarvestUJPerKCycle: 1, HarvestNoiseSigma: -0.1},
		{HarvestUJPerKCycle: 1, CapacityUJ: -5},
		{HarvestUJPerKCycle: 1, CapacityUJ: 50, BrownoutFloorUJ: 60},
		{HarvestUJPerKCycle: 1, CapacityUJ: 50, RestartChargeUJ: 60},
		{HarvestUJPerKCycle: 1, CapacityUJ: 50, BrownoutFloorUJ: 10, RestartChargeUJ: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, c)
		}
	}
}

// TestHarvestDeterministicRandomAccess: the harvest rate is a pure
// function of (config, mote, window) — two sources over the same config
// agree at arbitrary access orders, and the rate is constant within a
// window. This is what makes chunked dead-time integration during an
// outage bit-identical to per-instruction live accounting.
func TestHarvestDeterministicRandomAccess(t *testing.T) {
	cfg := EnergyConfig{
		HarvestUJPerKCycle:  2,
		HarvestNoiseSigma:   0.7,
		DiurnalPeriodCycles: 10_000_000,
		Seed:                99,
	}
	a := cfg.Harvest(5)
	b := cfg.Harvest(5)
	cycles := []uint64{0, 1, 65535, 65536, 1 << 20, 123456789, 17, 1<<20 + 3}
	for _, c := range cycles {
		ra := a.RateUJPerCycle(c)
		if rb := b.RateUJPerCycle(c); ra != rb {
			t.Fatalf("cycle %d: %v vs %v across sources", c, ra, rb)
		}
		if r2 := a.RateUJPerCycle(c - c%harvestWindowCycles); r2 != ra {
			t.Fatalf("cycle %d: rate varies within window (%v vs %v)", c, ra, r2)
		}
	}
	// A different mote sees a different noise stream.
	other := cfg.Harvest(6)
	same := 0
	for _, c := range cycles {
		if other.RateUJPerCycle(c) == a.RateUJPerCycle(c) {
			same++
		}
	}
	if same == len(cycles) {
		t.Error("mote 5 and mote 6 share a harvest trace")
	}
}

// TestHarvestMeanPreserved: diurnal envelope and lognormal noise are both
// normalized to preserve the configured mean rate.
func TestHarvestMeanPreserved(t *testing.T) {
	cfg := EnergyConfig{
		HarvestUJPerKCycle:  2,
		HarvestNoiseSigma:   0.5,
		DiurnalPeriodCycles: 1 << 22, // 64 windows per day
		Seed:                7,
	}
	h := cfg.Harvest(1)
	var sum float64
	const windows = 4096
	for w := uint64(0); w < windows; w++ {
		sum += h.RateUJPerCycle(w * harvestWindowCycles)
	}
	mean := sum / windows * 1000 // back to µJ/kcycle
	if mean < 1.5 || mean > 2.5 {
		t.Errorf("empirical mean %v µJ/kcycle, configured 2", mean)
	}
}

// TestBrownoutComposesWithEnergySchedule is the satellite regression: a
// time-based brownout window from Config.Resets during an energy-schedule
// run is dead time — the capacitor must keep charging through it and the
// CPU must not be billed drain for the outage, otherwise the two
// schedules double-count the brownout.
func TestBrownoutComposesWithEnergySchedule(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 30000},
		{Op: isa.LDI, Rd: 2, Imm: 1},
		{Op: isa.SUB, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.BNZ, Ra: 1, Imm: 2},
		{Op: isa.HALT},
	}
	fc := Config{CrashMTBFCycles: 20_000, BrownoutProb: 1, Seed: 11}
	ec := EnergyConfig{
		HarvestUJPerKCycle: 0.2,
		CapacityUJ:         1e6, // never browns out: isolates the compose math
		BrownoutFloorUJ:    1,
		Seed:               11,
	}
	const moteSeed = 3
	mc := mote.DefaultConfig()
	mc.Resets = fc.Resets(10_000_000, moteSeed)
	if len(mc.Resets) == 0 {
		t.Fatal("no resets scheduled")
	}
	pw := ec.Power(moteSeed, mote.CheckpointPolicy{})
	pw.StartChargeUJ = ec.CapacityUJ / 2 // headroom: banked harvest is exact
	mc.Power = pw
	m := mote.New(prog, mc)
	// Frequent brownouts restart the long loop from scratch each time, so
	// the run ends on the cycle budget — the accounting, not completion,
	// is what this regression pins.
	if err := m.Run(3_000_000); err != nil && !errors.Is(err, mote.ErrCycleBudget) {
		t.Fatalf("run: %v", err)
	}
	s := m.Stats()
	if s.Resets == 0 || s.DownCycles == 0 {
		t.Fatalf("brownouts not injected: %+v", s)
	}
	// Drain prices active cycles only.
	active := s
	active.Cycles -= s.DownCycles
	wantDrain := mote.DefaultEnergyModel().Energy(active)
	if math.Abs(s.DrainedUJ-wantDrain) > 1e-6 {
		t.Errorf("DrainedUJ = %v, want %v: brownout cycles double-counted as CPU drain", s.DrainedUJ, wantDrain)
	}
	// Harvest keeps flowing through the outage: flat source, uncapped
	// capacitor, so banked harvest is rate × every elapsed cycle.
	wantHarvest := ec.HarvestUJPerKCycle / 1000 * float64(s.Cycles)
	if math.Abs(s.HarvestedUJ-wantHarvest) > 1e-3 {
		t.Errorf("HarvestedUJ = %v, want %v: outage harvest lost", s.HarvestedUJ, wantHarvest)
	}
}

// BenchmarkHarvestRate prices the per-instruction hot path: a cached
// same-window lookup plus one window crossing per 65536 cycles.
func BenchmarkHarvestRate(b *testing.B) {
	cfg := EnergyConfig{
		HarvestUJPerKCycle:  2,
		HarvestNoiseSigma:   0.5,
		DiurnalPeriodCycles: 1 << 24,
		Seed:                1,
	}
	h := cfg.Harvest(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.RateUJPerCycle(uint64(i) * 2)
	}
	_ = sink
}

// BenchmarkResets prices schedule derivation for one mote.
func BenchmarkResets(b *testing.B) {
	cfg := Config{CrashMTBFCycles: 500_000, BrownoutProb: 0.2, Seed: 42}
	for i := 0; i < b.N; i++ {
		cfg.Resets(64_000_000, int64(i))
	}
}
