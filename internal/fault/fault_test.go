package fault

import (
	"reflect"
	"testing"
)

// counter is a deterministic ADC that counts up, so any fault-induced
// deviation from the ramp is visible.
type counter struct{ n uint16 }

func (c *counter) Next() uint16 { c.n++; return c.n }

func TestResetsDeterministic(t *testing.T) {
	cfg := Config{CrashMTBFCycles: 100_000, Seed: 7}
	a := cfg.Resets(10_000_000, 3)
	b := cfg.Resets(10_000_000, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, mote) derived different schedules")
	}
	if len(a) == 0 {
		t.Fatal("MTBF 100k over 10M cycles produced no resets")
	}
	c := cfg.Resets(10_000_000, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different motes got identical fault schedules")
	}
	prev := uint64(0)
	for i, r := range a {
		if r.AtCycle <= prev {
			t.Fatalf("schedule not strictly increasing at %d: %+v", i, a)
		}
		if r.AtCycle >= 10_000_000 {
			t.Fatalf("reset %d at %d, past the campaign end", i, r.AtCycle)
		}
		if r.DownCycles != 512 {
			t.Fatalf("reset %d: down %d, want default watchdog 512", i, r.DownCycles)
		}
		prev = r.AtCycle
	}
}

func TestResetsBrownouts(t *testing.T) {
	cfg := Config{CrashMTBFCycles: 50_000, BrownoutProb: 1, BrownoutCycles: 9999, Seed: 1}
	for i, r := range cfg.Resets(5_000_000, 0) {
		if r.DownCycles != 9999 {
			t.Fatalf("reset %d: down %d, want every reset upgraded to a brownout", i, r.DownCycles)
		}
	}
}

func TestResetsDisabled(t *testing.T) {
	if (Config{}).Resets(1_000_000, 0) != nil {
		t.Fatal("zero config scheduled resets")
	}
	if (Config{CrashMTBFCycles: 100}).Resets(0, 0) != nil {
		t.Fatal("empty campaign scheduled resets")
	}
}

func TestWrapSensorPassthrough(t *testing.T) {
	src := &counter{}
	if (Config{CrashMTBFCycles: 100}).WrapSensor(src, 0) != src {
		t.Fatal("sensor-fault-free config should return the source unchanged")
	}
}

func TestWrapSensorStuckAt(t *testing.T) {
	cfg := Config{SensorStuckProb: 1, SensorStuckReads: 5, Seed: 3}
	s := cfg.WrapSensor(&counter{}, 0)
	first := s.Next()
	for i := 0; i < 5; i++ {
		if got := s.Next(); got != first {
			t.Fatalf("read %d = %d during stuck episode, want latched %d", i, got, first)
		}
	}
	// The inner source kept advancing underneath the latch: with prob 1 a
	// new episode starts immediately, latching the post-episode ramp value.
	if got := s.Next(); got != first+6 {
		t.Fatalf("post-episode read = %d, want %d (inner source must keep advancing)", got, first+6)
	}
}

func TestWrapSensorNoiseBounded(t *testing.T) {
	cfg := Config{SensorNoiseProb: 1, SensorNoiseAmp: 10, Seed: 5}
	s := cfg.WrapSensor(&counter{}, 0)
	glitched := false
	for i := 1; i <= 200; i++ {
		got := int(s.Next())
		if got < i-10 || got > i+10 {
			t.Fatalf("read %d = %d, outside ±10 of ramp value %d", i, got, i)
		}
		if got != i {
			glitched = true
		}
	}
	if !glitched {
		t.Fatal("noise with prob 1 never perturbed a reading")
	}
}

func TestWrapSensorDeterministic(t *testing.T) {
	cfg := Config{SensorStuckProb: 0.05, SensorNoiseProb: 0.2, Seed: 11}
	a := cfg.WrapSensor(&counter{}, 2)
	b := cfg.WrapSensor(&counter{}, 2)
	other := cfg.WrapSensor(&counter{}, 9)
	same, diff := true, true
	for i := 0; i < 500; i++ {
		va, vb, vo := a.Next(), b.Next(), other.Next()
		if va != vb {
			same = false
		}
		if va != vo {
			diff = false
		}
	}
	if !same {
		t.Fatal("same (config, mote) produced different sensor streams")
	}
	if diff {
		t.Fatal("different motes saw identical fault perturbations")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for _, c := range []Config{
		{CrashMTBFCycles: 1},
		{SensorStuckProb: 0.1},
		{SensorNoiseProb: 0.1},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v reports disabled", c)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BrownoutProb: -0.1},
		{BrownoutProb: 1.1},
		{SensorStuckProb: 2},
		{SensorNoiseProb: -1},
		{SensorStuckReads: -1},
		{SensorNoiseAmp: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := (Config{CrashMTBFCycles: 1000, BrownoutProb: 0.5, SensorNoiseProb: 0.1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
