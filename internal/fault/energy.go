package fault

import (
	"fmt"
	"math"

	"codetomo/internal/mote"
	"codetomo/internal/stats"
)

// Energy-harvesting power schedules: instead of (or in addition to) the
// time-based crash schedules above, a mote can run from a storage
// capacitor charged by a seeded stochastic harvest process — a solar-like
// diurnal envelope modulated by per-window lognormal noise — and drained
// per cycle / per radio word through mote.EnergyModel. Power cuts the
// instant charge hits the brownout floor, so outages land wherever the
// program's own energy consumption puts them, not on a wall-clock
// schedule. Like every fault in this package, the harvest trace is a pure
// function of (EnergyConfig, mote identity).

// Harvest-process constants. The noise window matches the mote core's
// harvest integration chunk so chunked dead-time integration crosses
// window boundaries exactly.
const (
	harvestWindowCycles = 1 << 16

	// Seed strides for the harvest stream, distinct odd primes from the
	// crash/sensor strides above.
	harvestSeedStride  = 49979687
	harvestWindowPrime = 15485867
)

// EnergyConfig describes an energy-harvesting deployment. The zero value
// disables power modeling (mains-powered motes).
type EnergyConfig struct {
	// HarvestUJPerKCycle is the mean harvested power in microjoules per
	// 1000 cycles; 0 disables the energy schedule entirely. For scale: the
	// default CPU draw is 1.35 µJ per kcycle, so a mean below that forces
	// a duty cycle.
	HarvestUJPerKCycle float64
	// HarvestNoiseSigma is the sigma of the per-window lognormal noise
	// multiplier (mean-1, so the configured mean rate is preserved);
	// 0 = noiseless.
	HarvestNoiseSigma float64
	// DiurnalPeriodCycles is the solar day length in cycles: the harvest
	// rate follows a half-rectified sinusoid (night = zero) scaled to
	// preserve the configured mean. 0 = flat (indoor/thermal source).
	DiurnalPeriodCycles uint64
	// CapacityUJ is the storage capacitor size (0 = 1000 µJ).
	CapacityUJ float64
	// BrownoutFloorUJ is the charge at which the CPU loses power
	// (0 = 2% of capacity).
	BrownoutFloorUJ float64
	// RestartChargeUJ is the charge required to boot after an outage
	// (0 = floor + 60% of capacity).
	RestartChargeUJ float64
	// RestoreCycles is the post-recharge boot/restore overhead
	// (0 = 256 cycles).
	RestoreCycles uint64
	// Seed drives the harvest noise; per-mote streams derive from it.
	Seed int64
}

// Enabled reports whether the config models power at all.
func (c EnergyConfig) Enabled() bool { return c.HarvestUJPerKCycle > 0 }

// Validate rejects configurations that cannot describe a harvest
// environment.
func (c EnergyConfig) Validate() error {
	if c.HarvestUJPerKCycle < 0 {
		return fmt.Errorf("fault: HarvestUJPerKCycle = %v, must be >= 0", c.HarvestUJPerKCycle)
	}
	if c.HarvestNoiseSigma < 0 {
		return fmt.Errorf("fault: HarvestNoiseSigma = %v, must be >= 0", c.HarvestNoiseSigma)
	}
	if c.CapacityUJ < 0 {
		return fmt.Errorf("fault: CapacityUJ = %v, must be >= 0 (zero selects the default of 1000)", c.CapacityUJ)
	}
	if c.BrownoutFloorUJ < 0 {
		return fmt.Errorf("fault: BrownoutFloorUJ = %v, must be >= 0", c.BrownoutFloorUJ)
	}
	if c.RestartChargeUJ < 0 {
		return fmt.Errorf("fault: RestartChargeUJ = %v, must be >= 0", c.RestartChargeUJ)
	}
	capUJ := c.CapacityUJ
	if capUJ == 0 {
		capUJ = 1000
	}
	if c.BrownoutFloorUJ >= capUJ {
		return fmt.Errorf("fault: BrownoutFloorUJ = %v must be below CapacityUJ = %v", c.BrownoutFloorUJ, capUJ)
	}
	if c.RestartChargeUJ > capUJ {
		return fmt.Errorf("fault: RestartChargeUJ = %v must not exceed CapacityUJ = %v", c.RestartChargeUJ, capUJ)
	}
	if c.RestartChargeUJ > 0 && c.RestartChargeUJ <= c.BrownoutFloorUJ {
		return fmt.Errorf("fault: RestartChargeUJ = %v must exceed BrownoutFloorUJ = %v", c.RestartChargeUJ, c.BrownoutFloorUJ)
	}
	return nil
}

// Power builds the mote-side power configuration for one mote: the
// capacitor parameters plus this mote's deterministic harvest source and
// the given checkpoint policy. Returns nil when the config is disabled.
func (c EnergyConfig) Power(moteSeed int64, policy mote.CheckpointPolicy) *mote.PowerConfig {
	if !c.Enabled() {
		return nil
	}
	return &mote.PowerConfig{
		CapacityUJ:      c.CapacityUJ,
		BrownoutFloorUJ: c.BrownoutFloorUJ,
		RestartChargeUJ: c.RestartChargeUJ,
		RestoreCycles:   c.RestoreCycles,
		Harvest:         c.Harvest(moteSeed),
		Checkpoint:      policy,
	}
}

// Harvest returns the mote's deterministic harvest source. The rate is
// piecewise-constant over 65536-cycle windows: mean rate × diurnal
// envelope at the window midpoint × the window's seeded lognormal noise
// draw. Windows are addressed randomly (the noise RNG is re-seeded per
// window), so dead-time integration and live execution see the exact same
// trace regardless of how the span is chunked.
func (c EnergyConfig) Harvest(moteSeed int64) mote.HarvestSource {
	if !c.Enabled() {
		return nil
	}
	return &harvestSource{cfg: c, moteSeed: moteSeed, lastWindow: ^uint64(0)}
}

type harvestSource struct {
	cfg      EnergyConfig
	moteSeed int64

	// Single-entry window cache: the machine advances monotonically, so
	// almost every call hits the previous window. Purely an optimization —
	// the rate is a pure function of the window index.
	lastWindow uint64
	lastRate   float64
}

// RateUJPerCycle implements mote.HarvestSource.
func (h *harvestSource) RateUJPerCycle(cycle uint64) float64 {
	w := cycle / harvestWindowCycles
	if w == h.lastWindow {
		return h.lastRate
	}
	rate := h.cfg.HarvestUJPerKCycle / 1000
	if p := h.cfg.DiurnalPeriodCycles; p > 0 {
		// Half-rectified sinusoid at the window midpoint. E[max(0,sin)] =
		// 1/π over a period, so the π factor preserves the configured
		// mean; peak solar noon is π× the mean.
		mid := w*harvestWindowCycles + harvestWindowCycles/2
		s := math.Sin(2 * math.Pi * float64(mid%p) / float64(p))
		if s < 0 {
			s = 0
		}
		rate *= s * math.Pi
	}
	if sig := h.cfg.HarvestNoiseSigma; sig > 0 && rate > 0 {
		rng := stats.NewRNG(h.cfg.Seed + h.moteSeed*harvestSeedStride + int64(w)*harvestWindowPrime + 3)
		rate *= math.Exp(sig*rng.Normal(0, 1) - sig*sig/2)
	}
	h.lastWindow, h.lastRate = w, rate
	return rate
}
