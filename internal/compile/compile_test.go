package compile

import (
	"strings"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/mote"
)

type seqSource struct {
	vals []uint16
	i    int
}

func (s *seqSource) Next() uint16 {
	if len(s.vals) == 0 {
		return 0
	}
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}

// exec compiles and runs a program, returning the machine for inspection.
func exec(t *testing.T, src string, opts Options, sensor []uint16) *mote.Machine {
	t.Helper()
	out, err := Build(src, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := mote.DefaultConfig()
	cfg.Sensor = &seqSource{vals: sensor}
	m := mote.New(out.Code, cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v\n%s", err, out.Listing())
	}
	return m
}

// debugWords runs the program and returns the debug port capture.
func debugWords(t *testing.T, src string, opts Options, sensor []uint16) []uint16 {
	t.Helper()
	return exec(t, src, opts, sensor).DebugOutput()
}

func wantDebug(t *testing.T, got []uint16, want ...uint16) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("debug = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("debug = %v, want %v", got, want)
		}
	}
}

func TestArithmeticEndToEnd(t *testing.T) {
	src := `
func main() {
	debug(2 + 3 * 4);       // 14 (folded)
	var a int;
	var b int;
	a = sense();            // 10
	b = sense();            // 3
	debug(a + b);           // 13
	debug(a - b);           // 7
	debug(a * b);           // 30
	debug(a / b);           // 3
	debug(a % b);           // 1
	debug(a < b);           // 0
	debug(a > b);           // 1
	debug(a <= b);          // 0
	debug(a >= b);          // 1
	debug(a == b);          // 0
	debug(a != b);          // 1
	debug(a & b);           // 2
	debug(a | b);           // 11
	debug(a ^ b);           // 9
	debug(a << b);          // 80
	debug(a >> 1);          // 5
	debug(-a + 11);         // 1
	debug(!b);              // 0
	debug(!0 + 1);          // 2
	debug(~a & 15);         // 5
}`
	got := debugWords(t, src, Options{}, []uint16{10, 3})
	wantDebug(t, got, 14, 13, 7, 30, 3, 1, 0, 1, 0, 1, 0, 1, 2, 11, 9, 80, 5, 1, 0, 2, 5)
}

func TestSignedArithmetic(t *testing.T) {
	src := `
func main() {
	var a int;
	a = 0 - 7;
	debug(a / 2 + 100);  // -3 + 100 = 97
	debug(a % 2 + 100);  // -1 + 100 = 99
	debug(a >> 1);       // arithmetic: -4 → 0xFFFC
	debug(a < 0);        // 1
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 97, 99, 0xFFFC, 1)
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
var base int = 40 + 2;
var arr[5] int;
var scratch int;

func fill(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		arr[i] = base + i;
	}
}

func main() {
	var local[3] int;
	var i int;
	fill(5);
	debug(arr[0]);  // 42
	debug(arr[4]);  // 46
	for (i = 0; i < 3; i = i + 1) {
		local[i] = arr[i] * 2;
	}
	debug(local[2]); // 88
	scratch = arr[1] + local[0];
	debug(scratch);  // 43 + 84 = 127
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 42, 46, 88, 127)
}

func TestCallsAndRecursion(t *testing.T) {
	src := `
func add3(a int, b int, c int) int {
	return a + b + c;
}

func fib(n int) int {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}

func main() {
	debug(add3(1, 2, 3));  // 6
	debug(fib(10));        // 55
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 6, 55)
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
	var i int;
	var sum int;
	sum = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		sum = sum + i;
	}
	debug(sum); // 0+1+2+4+5+6 = 18
	i = 0;
	while (i < 100) {
		i = i + 17;
	}
	debug(i); // 102
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 18, 102)
}

func TestShortCircuit(t *testing.T) {
	src := `
var hits int;

func bump() int {
	hits = hits + 1;
	return 1;
}

func main() {
	var x int;
	x = 0 && bump();   // rhs not evaluated
	debug(x);          // 0
	debug(hits);       // 0
	x = 1 && bump();   // rhs evaluated
	debug(x);          // 1
	debug(hits);       // 1
	x = 1 || bump();   // rhs not evaluated
	debug(x);          // 1
	debug(hits);       // 1
	x = 0 || bump();   // rhs evaluated
	debug(x);          // 1
	debug(hits);       // 2
	x = 0 || 0;
	debug(x);          // 0
	x = 5 && 7;        // normalized to 1
	debug(x);          // 1
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 0, 0, 1, 1, 1, 1, 1, 2, 0, 1)
}

func TestBuiltinsEndToEnd(t *testing.T) {
	src := `
func main() {
	led(5);
	send(777);
	debug(rand());
}`
	m := exec(t, src, Options{}, nil)
	if m.LED() != 5 {
		t.Fatalf("led = %d", m.LED())
	}
	s := m.Stats()
	if s.RadioPackets != 1 || s.RadioWords != 1 {
		t.Fatalf("radio stats = %+v", s)
	}
}

const branchyProgram = `
var count int;

func step(v int) int {
	var r int;
	if (v > 500) {
		r = v - 500;
	} else {
		r = v + 13;
	}
	while (r > 100) {
		r = r - 100;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 20; i = i + 1) {
		acc = acc + step(sense());
	}
	debug(acc);
}`

func sensorRamp(n int) []uint16 {
	vals := make([]uint16, n)
	for i := range vals {
		vals[i] = uint16((i * 137) % 1024)
	}
	return vals
}

// TestLayoutPreservesSemantics is the key placement-correctness property:
// any block permutation must produce identical program output.
func TestLayoutPreservesSemantics(t *testing.T) {
	base, err := Build(branchyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := debugWords(t, branchyProgram, Options{}, sensorRamp(64))

	// Reverse every procedure's non-entry blocks — a hostile layout.
	layouts := make(map[string][]ir.BlockID)
	for _, p := range base.CFG.Procs {
		order := []ir.BlockID{p.Entry}
		for i := len(p.Blocks) - 1; i >= 0; i-- {
			if ir.BlockID(i) != p.Entry {
				order = append(order, ir.BlockID(i))
			}
		}
		layouts[p.Name] = order
	}
	got := debugWords(t, branchyProgram, Options{Layouts: layouts}, sensorRamp(64))
	wantDebug(t, got, ref...)
}

func TestLayoutChangesTakenBranches(t *testing.T) {
	base, err := Build(branchyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	layouts := make(map[string][]ir.BlockID)
	for _, p := range base.CFG.Procs {
		order := []ir.BlockID{p.Entry}
		for i := len(p.Blocks) - 1; i >= 0; i-- {
			if ir.BlockID(i) != p.Entry {
				order = append(order, ir.BlockID(i))
			}
		}
		layouts[p.Name] = order
	}
	m1 := exec(t, branchyProgram, Options{}, sensorRamp(64))
	m2 := exec(t, branchyProgram, Options{Layouts: layouts}, sensorRamp(64))
	if m1.Stats().CondBranches != m2.Stats().CondBranches {
		t.Fatalf("layout changed branch count: %d vs %d",
			m1.Stats().CondBranches, m2.Stats().CondBranches)
	}
	if m1.Stats().TakenBranches == m2.Stats().TakenBranches {
		t.Fatal("hostile layout did not change taken-branch count; placement has no effect to optimize")
	}
}

func TestInvalidLayouts(t *testing.T) {
	out, err := Build(branchyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	name := out.CFG.Procs[0].Name
	n := len(out.CFG.Procs[0].Blocks)
	bad := [][]ir.BlockID{
		{},                    // wrong length
		make([]ir.BlockID, n), // all zeros: repeats
	}
	for _, layout := range bad {
		_, err := Build(branchyProgram, Options{Layouts: map[string][]ir.BlockID{name: layout}})
		if err == nil {
			t.Errorf("layout %v accepted", layout)
		}
	}
}

func TestInstrumentationTrace(t *testing.T) {
	out, err := Build(branchyProgram, Options{Instrument: ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	cfg.Sensor = &seqSource{vals: sensorRamp(64)}
	m := mote.New(out.Code, cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	// main enter/exit + 20 step enter/exit pairs.
	stepMeta := out.Meta.ProcByName["step"]
	enters, exits := 0, 0
	for _, ev := range tr {
		switch ev.ID {
		case stepMeta.EnterTraceID:
			enters++
		case stepMeta.ExitTraceID:
			exits++
		}
	}
	if enters != 20 || exits != 20 {
		t.Fatalf("step enter/exit = %d/%d, want 20/20", enters, exits)
	}
	// Instrumented and plain builds must produce identical output.
	plain := debugWords(t, branchyProgram, Options{}, sensorRamp(64))
	if m.DebugOutput()[0] != plain[0] {
		t.Fatal("instrumentation changed program semantics")
	}
}

func TestEdgeCounterInstrumentation(t *testing.T) {
	out, err := Build(branchyProgram, Options{Instrument: ModeEdgeCounters})
	if err != nil {
		t.Fatal(err)
	}
	if out.Meta.NumArcCounters == 0 {
		t.Fatal("no arc counters allocated")
	}
	cfg := mote.DefaultConfig()
	cfg.Sensor = &seqSource{vals: sensorRamp(64)}
	m := mote.New(out.Code, cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// The if in step has both arcs; their counter sum must be 20.
	stepMeta := out.Meta.ProcByName["step"]
	p := out.CFG.Proc("step")
	var ifEdges []EdgeKey
	for _, bb := range p.BranchBlocks() {
		for _, s := range p.Block(bb).Succs() {
			ifEdges = append(ifEdges, EdgeKey{From: bb, To: s})
		}
	}
	if len(ifEdges) < 4 {
		t.Fatalf("expected >= 2 branch blocks in step, edges = %v", ifEdges)
	}
	counters := m.ProfileCounters()
	sum := uint64(0)
	first := p.BranchBlocks()[0]
	for _, ek := range ifEdges {
		if ek.From == first {
			sum += counters[stepMeta.ArcCounters[ek]]
		}
	}
	if sum != 20 {
		t.Fatalf("if-arc counters sum = %d, want 20", sum)
	}
	// Semantics preserved.
	plain := debugWords(t, branchyProgram, Options{}, sensorRamp(64))
	if m.DebugOutput()[0] != plain[0] {
		t.Fatal("edge counters changed program semantics")
	}
}

func TestArcCountersMatchOracle(t *testing.T) {
	// The PROFCNT arc counts must equal the simulator's ground-truth
	// branch statistics read through the edge metadata.
	out, err := Build(branchyProgram, Options{Instrument: ModeEdgeCounters})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	cfg.Sensor = &seqSource{vals: sensorRamp(64)}
	m := mote.New(out.Code, cfg)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	counters := m.ProfileCounters()
	for _, pm := range out.Meta.Procs {
		for ek, id := range pm.ArcCounters {
			info := pm.Edges[ek]
			st := m.BranchStats()[info.BranchPC]
			if st == nil {
				if counters[id] != 0 {
					t.Fatalf("%s %v: counter %d nonzero but branch never executed", pm.Name, ek, counters[id])
				}
				continue
			}
			want := st.NotTaken
			if info.Taken {
				want = st.Taken
			}
			if counters[id] != want {
				t.Fatalf("%s %v: counter = %d, oracle = %d", pm.Name, ek, counters[id], want)
			}
		}
	}
}

func TestListing(t *testing.T) {
	out, err := Build(branchyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := out.Listing()
	for _, want := range []string{"main:", "step:", "call", "ret"} {
		if !strings.Contains(l, want) {
			t.Fatalf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestLowerProducesValidCFG(t *testing.T) {
	out, err := Build(branchyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.CFG.Validate(); err != nil {
		t.Fatal(err)
	}
	// Entry must have no predecessors (backend invariant).
	for _, p := range out.CFG.Procs {
		if preds := p.Preds()[p.Entry]; len(preds) != 0 {
			t.Fatalf("%s: entry has predecessors %v", p.Name, preds)
		}
	}
	// step must contain a loop.
	if loops := out.CFG.Proc("step").NaturalLoops(); len(loops) != 1 {
		t.Fatalf("step loops = %d, want 1", len(loops))
	}
}

func TestBuildErrors(t *testing.T) {
	for _, src := range []string{
		"func main() { x = 1; }",   // check error
		"func main() { var x in }", // parse error
	} {
		if _, err := Build(src, Options{}); err == nil {
			t.Errorf("Build(%q) accepted", src)
		}
	}
}

func TestMain16BitWraparound(t *testing.T) {
	src := `
func main() {
	var x int;
	x = 30000 + 30000;  // wraps to 60000 unsigned / -5536 signed
	debug(x);
	debug(x < 0);       // signed comparison sees negative
}`
	got := debugWords(t, src, Options{}, nil)
	wantDebug(t, got, 60000, 1)
}
