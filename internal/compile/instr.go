package compile

import (
	"fmt"

	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// genInstr emits machine code for one IR instruction and returns the cycle
// cost charged to the enclosing block under the measured-interval
// convention (call sites include the callee-boundary overhead that falls
// outside the callee's own measured interval).
func (e *emitter) genInstr(in ir.Instr, fr *frame, timestamps bool) (uint64, error) {
	const (
		r1 = isa.RegScratch1
		r2 = isa.RegScratch2
	)
	var cycles uint64
	add := func(instr isa.Instr) {
		e.emit(instr)
		cycles += uint64(e.cost.Cycles[instr.Op])
	}
	loadTemp := func(rd isa.Reg, t ir.Temp) {
		add(isa.Instr{Op: isa.LD, Rd: rd, Ra: isa.RegFP, Imm: -fr.tempOff(t)})
	}
	storeTemp := func(t ir.Temp, rs isa.Reg) {
		add(isa.Instr{Op: isa.ST, Ra: isa.RegFP, Imm: -fr.tempOff(t), Rb: rs})
	}

	switch i := in.(type) {
	case ir.Const:
		add(isa.Instr{Op: isa.LDI, Rd: r1, Imm: int32(i.Val)})
		storeTemp(i.Dst, r1)

	case ir.Mov:
		loadTemp(r1, i.Src)
		storeTemp(i.Dst, r1)

	case ir.Bin:
		loadTemp(r1, i.A)
		loadTemp(r2, i.B)
		if err := e.genBinOp(i.Op, add); err != nil {
			return 0, err
		}
		storeTemp(i.Dst, r1)

	case ir.Un:
		loadTemp(r1, i.A)
		switch i.Op {
		case ir.OpNeg:
			add(isa.Instr{Op: isa.LDI, Rd: r2, Imm: 0})
			add(isa.Instr{Op: isa.SUB, Rd: r1, Ra: r2, Rb: r1})
		case ir.OpNot:
			add(isa.Instr{Op: isa.LDI, Rd: r2, Imm: 0})
			add(isa.Instr{Op: isa.SEQ, Rd: r1, Ra: r1, Rb: r2})
		default:
			return 0, fmt.Errorf("unknown unary op %v", i.Op)
		}
		storeTemp(i.Dst, r1)

	case ir.LoadVar:
		class, off, err := fr.resolve(i.Name, e.globalScalars, e.globalArrays)
		if err != nil {
			return 0, err
		}
		switch class {
		case varParam:
			add(isa.Instr{Op: isa.LD, Rd: r1, Ra: isa.RegFP, Imm: off})
		case varLocal:
			add(isa.Instr{Op: isa.LD, Rd: r1, Ra: isa.RegFP, Imm: -off})
		case varGlobal:
			add(isa.Instr{Op: isa.LDI, Rd: r2, Imm: off})
			add(isa.Instr{Op: isa.LD, Rd: r1, Ra: r2, Imm: 0})
		default:
			return 0, fmt.Errorf("%q is not a scalar", i.Name)
		}
		storeTemp(i.Dst, r1)

	case ir.StoreVar:
		loadTemp(r1, i.Src)
		class, off, err := fr.resolve(i.Name, e.globalScalars, e.globalArrays)
		if err != nil {
			return 0, err
		}
		switch class {
		case varParam:
			add(isa.Instr{Op: isa.ST, Ra: isa.RegFP, Imm: off, Rb: r1})
		case varLocal:
			add(isa.Instr{Op: isa.ST, Ra: isa.RegFP, Imm: -off, Rb: r1})
		case varGlobal:
			add(isa.Instr{Op: isa.LDI, Rd: r2, Imm: off})
			add(isa.Instr{Op: isa.ST, Ra: r2, Imm: 0, Rb: r1})
		default:
			return 0, fmt.Errorf("%q is not a scalar", i.Name)
		}

	case ir.LoadIndex:
		class, base, err := fr.resolve(i.Array, e.globalScalars, e.globalArrays)
		if err != nil {
			return 0, err
		}
		loadTemp(r2, i.Idx)
		switch class {
		case varLocalArray:
			add(isa.Instr{Op: isa.ADD, Rd: r2, Ra: r2, Rb: isa.RegFP})
			add(isa.Instr{Op: isa.LD, Rd: r1, Ra: r2, Imm: -base})
		case varGlobalArray:
			add(isa.Instr{Op: isa.LD, Rd: r1, Ra: r2, Imm: base})
		default:
			return 0, fmt.Errorf("%q is not an array", i.Array)
		}
		storeTemp(i.Dst, r1)

	case ir.StoreIndex:
		class, base, err := fr.resolve(i.Array, e.globalScalars, e.globalArrays)
		if err != nil {
			return 0, err
		}
		loadTemp(r1, i.Src)
		loadTemp(r2, i.Idx)
		switch class {
		case varLocalArray:
			add(isa.Instr{Op: isa.ADD, Rd: r2, Ra: r2, Rb: isa.RegFP})
			add(isa.Instr{Op: isa.ST, Ra: r2, Imm: -base, Rb: r1})
		case varGlobalArray:
			add(isa.Instr{Op: isa.ST, Ra: r2, Imm: base, Rb: r1})
		default:
			return 0, fmt.Errorf("%q is not an array", i.Array)
		}

	case ir.Call:
		// Push arguments right-to-left.
		for a := len(i.Args) - 1; a >= 0; a-- {
			loadTemp(r1, i.Args[a])
			add(isa.Instr{Op: isa.PUSH, Ra: r1})
		}
		idx := e.emit(isa.Instr{Op: isa.CALL})
		e.callFixups = append(e.callFixups, callFixup{idx: int(idx), name: i.Fn})
		cycles += e.cyc(isa.CALL)
		// Callee-boundary overhead outside the callee's measured interval:
		// its exit TRACE (in timestamp builds) and its epilogue. The
		// callee's SPADJ only exists when its frame is nonzero; procedures
		// always have at least one temp or local in practice, but account
		// exactly by looking at the callee when it is known. Frame sizes
		// are not known yet for not-yet-emitted callees, so the epilogue
		// SPADJ is always emitted (see genProc) for frames > 0; to keep
		// the model exact we conservatively require nonzero frames, which
		// newFrame guarantees for any procedure with at least one temp.
		if timestamps {
			cycles += e.cyc(isa.TRACE)
		}
		cycles += e.calleeEpilogueCycles(i.Fn)
		if len(i.Args) > 0 {
			add(isa.Instr{Op: isa.SPADJ, Imm: int32(len(i.Args))})
		}
		if i.Dst >= 0 {
			storeTemp(i.Dst, isa.RegRet)
		}

	case ir.Builtin:
		if err := e.genBuiltin(i, add, loadTemp, storeTemp); err != nil {
			return 0, err
		}

	default:
		return 0, fmt.Errorf("unknown IR instruction %T", in)
	}
	return cycles, nil
}

// calleeEpilogueCycles returns the epilogue cost of the named procedure
// (SPADJ + POP + RET, with SPADJ omitted for empty frames).
func (e *emitter) calleeEpilogueCycles(name string) uint64 {
	c := e.cyc(isa.POP) + e.cyc(isa.RET)
	p := e.prog.Proc(name)
	if p == nil {
		// Unknown callee: Generate will fail at fixup time anyway.
		return c + e.cyc(isa.SPADJ)
	}
	if newFrame(p).size > 0 {
		c += e.cyc(isa.SPADJ)
	}
	return c
}

// genBinOp emits the ALU sequence for a binary operator with operands in
// r1, r2 and result in r1.
func (e *emitter) genBinOp(op ir.Op, add func(isa.Instr)) error {
	const (
		r1 = isa.RegScratch1
		r2 = isa.RegScratch2
	)
	simple := map[ir.Op]isa.Op{
		ir.OpAdd: isa.ADD, ir.OpSub: isa.SUB, ir.OpMul: isa.MUL,
		ir.OpDiv: isa.DIV, ir.OpMod: isa.MOD, ir.OpAnd: isa.AND,
		ir.OpOr: isa.OR, ir.OpXor: isa.XOR, ir.OpShl: isa.SHL,
	}
	if mop, ok := simple[op]; ok {
		add(isa.Instr{Op: mop, Rd: r1, Ra: r1, Rb: r2})
		return nil
	}
	switch op {
	case ir.OpShr:
		// MiniC ints are signed; >> is arithmetic.
		add(isa.Instr{Op: isa.SAR, Rd: r1, Ra: r1, Rb: r2})
	case ir.OpLt:
		add(isa.Instr{Op: isa.SLT, Rd: r1, Ra: r1, Rb: r2})
	case ir.OpGt:
		add(isa.Instr{Op: isa.SLT, Rd: r1, Ra: r2, Rb: r1})
	case ir.OpLe: // a<=b == !(b<a)
		add(isa.Instr{Op: isa.SLT, Rd: r1, Ra: r2, Rb: r1})
		add(isa.Instr{Op: isa.XORI, Rd: r1, Ra: r1, Imm: 1})
	case ir.OpGe: // a>=b == !(a<b)
		add(isa.Instr{Op: isa.SLT, Rd: r1, Ra: r1, Rb: r2})
		add(isa.Instr{Op: isa.XORI, Rd: r1, Ra: r1, Imm: 1})
	case ir.OpEq:
		add(isa.Instr{Op: isa.SEQ, Rd: r1, Ra: r1, Rb: r2})
	case ir.OpNe:
		add(isa.Instr{Op: isa.SEQ, Rd: r1, Ra: r1, Rb: r2})
		add(isa.Instr{Op: isa.XORI, Rd: r1, Ra: r1, Imm: 1})
	default:
		return fmt.Errorf("unknown binary op %v", op)
	}
	return nil
}

// genBuiltin emits hardware intrinsics.
func (e *emitter) genBuiltin(i ir.Builtin, add func(isa.Instr), loadTemp func(isa.Reg, ir.Temp), storeTemp func(ir.Temp, isa.Reg)) error {
	const r1 = isa.RegScratch1
	switch i.Name {
	case "sense":
		add(isa.Instr{Op: isa.IN, Rd: r1, Imm: isa.PortADC})
		if i.Dst >= 0 {
			storeTemp(i.Dst, r1)
		}
	case "now":
		add(isa.Instr{Op: isa.IN, Rd: r1, Imm: isa.PortTimer})
		if i.Dst >= 0 {
			storeTemp(i.Dst, r1)
		}
	case "rand":
		add(isa.Instr{Op: isa.IN, Rd: r1, Imm: isa.PortRNG})
		if i.Dst >= 0 {
			storeTemp(i.Dst, r1)
		}
	case "led":
		loadTemp(r1, i.Args[0])
		add(isa.Instr{Op: isa.OUT, Imm: isa.PortLED, Ra: r1})
	case "debug":
		loadTemp(r1, i.Args[0])
		add(isa.Instr{Op: isa.OUT, Imm: isa.PortDebug, Ra: r1})
	case "send":
		loadTemp(r1, i.Args[0])
		add(isa.Instr{Op: isa.OUT, Imm: isa.PortRadioData, Ra: r1})
		add(isa.Instr{Op: isa.LDI, Rd: r1, Imm: 1})
		add(isa.Instr{Op: isa.OUT, Imm: isa.PortRadioCtl, Ra: r1})
	default:
		return fmt.Errorf("unknown builtin %q", i.Name)
	}
	return nil
}
