package compile

import (
	"fmt"
	"math"

	"codetomo/internal/analysis"
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// EliminateDeadBranches rewrites conditional branches whose direction the
// range analysis proves into unconditional jumps, then prunes the blocks
// that become unreachable. The branch block's body — including the
// computation of the now-unused condition — is preserved, so observable
// behavior is bit-identical: the proof only says the condition's value is
// fixed, and removing the dead arm cannot change any executed instruction.
func EliminateDeadBranches(prog *cfg.Program) {
	for _, p := range prog.Procs {
		r := analysis.InferRanges(p)
		res := r.ResolvedBranches()
		if len(res) == 0 {
			continue
		}
		for b, live := range res {
			p.Block(b).Term = ir.Jmp{Target: live}
		}
		// Dead arms may leave empty forwarders and unreachable regions;
		// threadJumps prunes both.
		threadJumps(p)
	}
}

// WorstCaseEdgeExtra bounds EdgeExtraCycles over every predictor: it
// charges the mispredict penalty whenever the edge is decided by a
// conditional branch, plus the explicit JMP and any deterministic extra.
func (m *Meta) WorstCaseEdgeExtra(info EdgeInfo) uint64 {
	var extra uint64
	if info.BranchPC >= 0 {
		extra += uint64(m.Cost.TakenPenalty)
	}
	if info.ViaJmp {
		extra += uint64(m.Cost.Cycles[isa.JMP])
	}
	return extra + info.Extra + m.pageExtra(info)
}

// StaticBound is a provable, predictor-independent worst-case bound for one
// procedure of a compiled program, under the measured-interval convention
// (the same one trace extraction and Meta.PathCycles use).
type StaticBound struct {
	analysis.WCET
	// Trips are the loop trip bounds that went into the WCET, keyed by
	// header.
	Trips map[ir.BlockID]analysis.TripBound
	// ResolvedBranches maps branch blocks whose direction the range
	// analysis proves to the only successor that can execute.
	ResolvedBranches map[ir.BlockID]ir.BlockID
}

// ProcStaticBound composes the range analysis, loop trip inference, and the
// backend's exact block/edge cycle metadata into a worst-case cycle bound
// for one procedure, including its entry overhead. The bound holds for any
// predictor because every branch is charged its mispredict penalty.
func (out *Output) ProcStaticBound(name string) (StaticBound, error) {
	p := out.CFG.Proc(name)
	pm := out.Meta.ProcByName[name]
	if p == nil || pm == nil {
		return StaticBound{}, fmt.Errorf("compile: no procedure %q", name)
	}
	r := analysis.InferRanges(p)
	trips := analysis.LoopTripBounds(p, r)
	edgeExtra := make(map[[2]ir.BlockID]uint64, len(pm.Edges))
	for e, info := range pm.Edges {
		edgeExtra[[2]ir.BlockID{e.From, e.To}] = out.Meta.WorstCaseEdgeExtra(info)
	}
	w := analysis.ProcWCET(p, pm.BlockCycles, edgeExtra, trips)
	if w.Cycles <= math.MaxUint64-pm.EntryOverhead {
		w.Cycles += pm.EntryOverhead
	}
	return StaticBound{WCET: w, Trips: trips, ResolvedBranches: r.ResolvedBranches()}, nil
}

// StaticBounds computes ProcStaticBound for every procedure.
func (out *Output) StaticBounds() (map[string]StaticBound, error) {
	bounds := make(map[string]StaticBound, len(out.CFG.Procs))
	for _, p := range out.CFG.Procs {
		b, err := out.ProcStaticBound(p.Name)
		if err != nil {
			return nil, err
		}
		bounds[p.Name] = b
	}
	return bounds, nil
}

// StaticEnvelope is the feasible range of one measured interval of a
// procedure: no exclusive-duration observation can fall outside
// [MinCycles, MaxCycles] when Bounded.
type StaticEnvelope struct {
	// MinCycles is the cheapest complete path under a zero-penalty
	// traversal (entry overhead included) — a lower bound on any interval.
	MinCycles uint64
	// MaxCycles is the WCET (entry overhead included). Meaningless unless
	// Bounded.
	MaxCycles uint64
	Bounded   bool
}

// ProcStaticEnvelope bounds every feasible measured interval of a
// procedure. The lower bound is the shortest entry-to-return path with all
// edge extras at their minimum (only deterministic extras charged); the
// upper bound is the predictor-independent WCET.
func (out *Output) ProcStaticEnvelope(name string) (StaticEnvelope, error) {
	sb, err := out.ProcStaticBound(name)
	if err != nil {
		return StaticEnvelope{}, err
	}
	p := out.CFG.Proc(name)
	pm := out.Meta.ProcByName[name]
	min, ok := out.Meta.shortestReturnPath(p, pm)
	if !ok {
		// No return reachable (event-loop procedure): no complete interval
		// is ever measured, so the envelope is vacuous.
		return StaticEnvelope{Bounded: false}, nil
	}
	return StaticEnvelope{
		MinCycles: min + pm.EntryOverhead,
		MaxCycles: sb.Cycles,
		Bounded:   sb.Bounded,
	}, nil
}

// shortestReturnPath computes the minimum-cost entry-to-return block path
// (block cycles plus deterministic edge extras only — the cheapest any
// predictor can realize). Dijkstra over non-negative costs.
func (m *Meta) shortestReturnPath(p *cfg.Proc, pm *ProcMeta) (uint64, bool) {
	const inf = math.MaxUint64
	dist := make(map[ir.BlockID]uint64, len(p.Blocks))
	for _, b := range p.Blocks {
		dist[b.ID] = inf
	}
	dist[p.Entry] = pm.BlockCycles[p.Entry]
	done := make(map[ir.BlockID]bool, len(p.Blocks))
	for {
		u, best := ir.BlockID(-1), uint64(inf)
		for id, d := range dist {
			if !done[id] && d < best {
				u, best = id, d
			}
		}
		if u == -1 {
			break
		}
		done[u] = true
		for _, s := range p.Block(u).Succs() {
			info := pm.Edges[EdgeKey{From: u, To: s}]
			// Minimum realizable extra: a perfectly predicting predictor
			// pays no penalty, so only the JMP and deterministic parts
			// (page crossings are paid on every traversal of the edge).
			var extra uint64
			if info.ViaJmp {
				extra += uint64(m.Cost.Cycles[isa.JMP])
			}
			extra += info.Extra + m.pageExtra(info)
			if d := best + extra + pm.BlockCycles[s]; d < dist[s] {
				dist[s] = d
			}
		}
	}
	best, found := uint64(inf), false
	for _, b := range p.Blocks {
		if _, isRet := b.Term.(ir.Ret); !isRet {
			continue
		}
		if d := dist[b.ID]; d < best {
			best, found = d, true
		}
	}
	return best, found
}
