package compile

import (
	"fmt"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// frame resolves names and temps of one procedure to stack-frame offsets.
//
// Stack layout (word addresses, FP = r15 points at the saved-FP slot):
//
//	FP+2+i : parameter i (pushed right-to-left by the caller)
//	FP+1   : return address (pushed by CALL)
//	FP     : caller's saved FP
//	FP-1.. : local scalars, local arrays, then IR temps
type frame struct {
	paramOff  map[string]int32 // FP + off
	localOff  map[string]int32 // FP - off
	arrayBase map[string]int32 // element k at FP - base + k
	tempBase  int32            // temp t at FP - (tempBase + t)
	size      int32            // words below FP
}

// newFrame lays out a procedure's frame.
func newFrame(p *cfg.Proc) *frame {
	f := &frame{
		paramOff:  make(map[string]int32),
		localOff:  make(map[string]int32),
		arrayBase: make(map[string]int32),
	}
	for i, name := range p.Params {
		f.paramOff[name] = int32(2 + i)
	}
	next := int32(1)
	for _, name := range p.Locals {
		f.localOff[name] = next
		next++
	}
	// Deterministic array placement.
	arrays := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		arrays = append(arrays, name)
	}
	sort.Strings(arrays)
	for _, name := range arrays {
		length := int32(p.Arrays[name])
		f.arrayBase[name] = next + length - 1
		next += length
	}
	f.tempBase = next
	f.size = next - 1 + int32(p.NumTemp)
	return f
}

// tempOff returns the FP-relative (negative direction) offset of a temp.
func (f *frame) tempOff(t ir.Temp) int32 { return f.tempBase + int32(t) }

// varClass describes how a name resolves in the current procedure.
type varClass int

const (
	varParam varClass = iota
	varLocal
	varLocalArray
	varGlobal
	varGlobalArray
)

// resolve classifies a variable reference against the frame and the global
// map, returning its class and offset/address.
func (f *frame) resolve(name string, globals map[string]int32, globalArrays map[string]int32) (varClass, int32, error) {
	if off, ok := f.paramOff[name]; ok {
		return varParam, off, nil
	}
	if off, ok := f.localOff[name]; ok {
		return varLocal, off, nil
	}
	if base, ok := f.arrayBase[name]; ok {
		return varLocalArray, base, nil
	}
	if addr, ok := globals[name]; ok {
		return varGlobal, addr, nil
	}
	if addr, ok := globalArrays[name]; ok {
		return varGlobalArray, addr, nil
	}
	return 0, 0, fmt.Errorf("compile: unresolved name %q", name)
}
