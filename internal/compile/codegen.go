package compile

import (
	"fmt"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// GlobalBase is the first RAM word used for globals (low words are left
// free as a guard/zero page).
const GlobalBase = 32

// Options configures code generation.
type Options struct {
	// Instrument selects the profiling instrumentation to insert.
	Instrument Mode
	// Layouts optionally overrides the basic-block emission order per
	// procedure (a permutation of its block IDs). Missing entries use the
	// natural (lowering) order.
	Layouts map[string][]ir.BlockID
	// BranchHints optionally records, per procedure and branch block,
	// whether the Br's True successor is the likelier one. When a branch
	// has no fall-through successor under the layout, the backend aims
	// the conditional branch at the colder arm (and the unconditional JMP
	// at the hotter one), minimizing mispredictions at equal cycle cost.
	BranchHints map[string]map[ir.BlockID]bool
	// FuseCompares enables the compare-branch peephole: a comparison
	// whose boolean result feeds only the block's branch is emitted as a
	// single compare-and-branch instruction (BEQ/BNE/BLT/BGE) instead of
	// materializing the boolean. Ignored in ModeEdgeCounters builds.
	FuseCompares bool
	// RotateLoops rewrites natural loops into bottom-test form before
	// code generation (see RotateLoops), turning loop latches into
	// backward conditional branches that BTFN-style prediction wins on.
	RotateLoops bool
	// DeadBranchElim folds conditional branches whose direction the range
	// analysis proves (see EliminateDeadBranches) and prunes the arms that
	// can never execute. Runs before loop rotation so rotation sees the
	// simplified CFG.
	DeadBranchElim bool
	// VerifyIR runs the strict IR verifier (analysis.Verify) on the CFG
	// after lowering and again after every CFG-mutating pass, so a pass
	// that breaks an invariant fails at the pass that broke it. The test
	// suite keeps it always on; production builds may skip it for speed.
	VerifyIR bool
	// Cost is the cycle/size table; nil means isa.DefaultCostModel().
	Cost *isa.CostModel
}

// Output is a compiled program: machine code, the timing/placement
// metadata, and the CFG it was generated from.
type Output struct {
	Code []isa.Instr
	Meta *Meta
	CFG  *cfg.Program
}

type callFixup struct {
	idx  int
	name string
}

type branchFixup struct {
	idx   int
	block ir.BlockID
}

type emitter struct {
	opts Options
	cost *isa.CostModel
	prog *cfg.Program
	code []isa.Instr
	meta *Meta

	globalScalars map[string]int32
	globalArrays  map[string]int32

	callFixups []callFixup
	nextArcID  int32
}

// Generate emits M16 machine code for a lowered program.
func Generate(prog *cfg.Program, opts Options) (*Output, error) {
	if opts.Cost == nil {
		opts.Cost = isa.DefaultCostModel()
	}
	e := &emitter{
		opts:          opts,
		cost:          opts.Cost,
		prog:          prog,
		globalScalars: make(map[string]int32),
		globalArrays:  make(map[string]int32),
		meta: &Meta{
			ProcByName: make(map[string]*ProcMeta),
			GlobalAddr: make(map[string]int32),
			Mode:       opts.Instrument,
			Cost:       opts.Cost,
		},
	}
	e.layoutGlobals()

	// Startup stub: initialize globals, call main, halt. Global scalar
	// initializers are applied by the loader in package mote builds? No —
	// MiniC globals start zeroed; initializers are applied by the caller
	// of Compile via Meta.GlobalInits encoded here as stub code.
	e.emitStub()

	for i, p := range prog.Procs {
		if err := e.genProc(p, i); err != nil {
			return nil, err
		}
	}
	// Resolve CALL targets.
	for _, f := range e.callFixups {
		pm, ok := e.meta.ProcByName[f.name]
		if !ok {
			return nil, fmt.Errorf("compile: call to unknown procedure %q", f.name)
		}
		e.code[f.idx].Imm = pm.EntryAddr
	}
	e.meta.CodeBytes = e.cost.CodeBytes(e.code)
	e.meta.NumArcCounters = int(e.nextArcID)
	e.meta.Code = e.code
	return &Output{Code: e.code, Meta: e.meta, CFG: prog}, nil
}

func (e *emitter) layoutGlobals() {
	addr := int32(GlobalBase)
	for _, name := range e.prog.Globals {
		e.globalScalars[name] = addr
		e.meta.GlobalAddr[name] = addr
		addr++
	}
	names := make([]string, 0, len(e.prog.GlobalArrays))
	for name := range e.prog.GlobalArrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.globalArrays[name] = addr
		e.meta.GlobalAddr[name] = addr
		addr += int32(e.prog.GlobalArrays[name])
	}
	e.meta.GlobalWords = int(addr)
}

// emit appends an instruction and returns its address.
func (e *emitter) emit(in isa.Instr) int32 {
	e.code = append(e.code, in)
	return int32(len(e.code) - 1)
}

func (e *emitter) cyc(op isa.Op) uint64 { return uint64(e.cost.Cycles[op]) }

// emitStub emits the reset vector: global initialization, CALL main, HALT.
// Global initializer values must have been folded by the front end; Lower
// keeps them out of the CFG, so the values are re-derived by the driver and
// passed via SetGlobalInit before Generate — instead we simply zero-default
// here and let the driver's stub data (GlobalInits) be emitted directly.
func (e *emitter) emitStub() {
	for _, init := range e.prog.GlobalInits {
		e.emit(isa.Instr{Op: isa.LDI, Rd: isa.RegScratch1, Imm: int32(init.Val)})
		e.emit(isa.Instr{Op: isa.LDI, Rd: isa.RegScratch2, Imm: e.meta.GlobalAddr[init.Name]})
		e.emit(isa.Instr{Op: isa.ST, Ra: isa.RegScratch2, Imm: 0, Rb: isa.RegScratch1})
	}
	idx := e.emit(isa.Instr{Op: isa.CALL})
	e.callFixups = append(e.callFixups, callFixup{idx: int(idx), name: "main"})
	e.emit(isa.Instr{Op: isa.HALT})
}

func (e *emitter) genProc(p *cfg.Proc, procIdx int) error {
	fr := newFrame(p)
	layout := e.opts.Layouts[p.Name]
	if layout == nil {
		layout = make([]ir.BlockID, len(p.Blocks))
		for i := range p.Blocks {
			layout[i] = ir.BlockID(i)
		}
	}
	if err := validateLayout(p, layout); err != nil {
		return err
	}

	pm := &ProcMeta{
		Name:         p.Name,
		Index:        procIdx,
		EntryBlock:   p.Entry,
		Layout:       append([]ir.BlockID(nil), layout...),
		BlockAddr:    make(map[ir.BlockID]int32),
		BlockCycles:  make(map[ir.BlockID]uint64),
		Edges:        make(map[EdgeKey]EdgeInfo),
		EnterTraceID: int32(procIdx * 2),
		ExitTraceID:  int32(procIdx*2 + 1),
		ArcCounters:  make(map[EdgeKey]int32),
	}
	e.meta.Procs = append(e.meta.Procs, pm)
	e.meta.ProcByName[p.Name] = pm

	var branchFixups []branchFixup
	timestamps := e.opts.Instrument == ModeTimestamps

	var tempReads []int
	if e.opts.FuseCompares && e.opts.Instrument != ModeEdgeCounters {
		tempReads = tempReadCounts(p)
	}

	for li, bid := range layout {
		b := p.Block(bid)
		var next ir.BlockID = -1
		if li+1 < len(layout) {
			next = layout[li+1]
		}

		if bid == p.Entry {
			// Procedure preamble. EntryOverhead is charged once per
			// invocation by the timing model.
			pm.EntryAddr = int32(len(e.code))
			var over uint64
			if timestamps {
				e.emit(isa.Instr{Op: isa.TRACE, Imm: pm.EnterTraceID})
				over += e.cyc(isa.TRACE)
			}
			e.emit(isa.Instr{Op: isa.PUSH, Ra: isa.RegFP})
			e.emit(isa.Instr{Op: isa.GETSP, Rd: isa.RegFP})
			over += e.cyc(isa.PUSH) + e.cyc(isa.GETSP)
			if fr.size > 0 {
				e.emit(isa.Instr{Op: isa.SPADJ, Imm: -fr.size})
				over += e.cyc(isa.SPADJ)
			}
			pm.EntryOverhead = over
		}
		pm.BlockAddr[bid] = int32(len(e.code))

		var fuse *ir.Bin
		if tempReads != nil {
			fuse = fusableCompare(p, b, tempReads)
		}
		body := b.Instrs
		if fuse != nil {
			body = body[:len(body)-1]
		}

		var cycles uint64
		for _, in := range body {
			c, err := e.genInstr(in, fr, timestamps)
			if err != nil {
				return fmt.Errorf("compile: %s/%v: %w", p.Name, bid, err)
			}
			cycles += c
		}

		switch t := b.Term.(type) {
		case ir.Ret:
			if t.Val >= 0 {
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegRet, Ra: isa.RegFP, Imm: -fr.tempOff(t.Val)})
				cycles += e.cyc(isa.LD)
			}
			// Everything from the exit TRACE on is outside the measured
			// interval: charged to the caller via its call-site constant.
			if timestamps {
				e.emit(isa.Instr{Op: isa.TRACE, Imm: pm.ExitTraceID})
			}
			if fr.size > 0 {
				e.emit(isa.Instr{Op: isa.SPADJ, Imm: fr.size})
			}
			e.emit(isa.Instr{Op: isa.POP, Rd: isa.RegFP})
			e.emit(isa.Instr{Op: isa.RET})

		case ir.Halt:
			e.emit(isa.Instr{Op: isa.HALT})
			cycles += e.cyc(isa.HALT)

		case ir.Jmp:
			viaJmp := t.Target != next
			if viaJmp {
				idx := e.emit(isa.Instr{Op: isa.JMP})
				branchFixups = append(branchFixups, branchFixup{idx: int(idx), block: t.Target})
			}
			pm.Edges[EdgeKey{From: bid, To: t.Target}] = EdgeInfo{BranchPC: -1, ViaJmp: viaJmp}

		case ir.Br:
			hotTrue := e.opts.BranchHints[p.Name][bid]
			switch {
			case e.opts.Instrument == ModeEdgeCounters:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(t.Cond)})
				cycles += e.cyc(isa.LD)
				cycles += e.genCountedBranch(pm, bid, t, next, &branchFixups)
			case fuse != nil:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(fuse.A)})
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch2, Ra: isa.RegFP, Imm: -fr.tempOff(fuse.B)})
				cycles += 2 * e.cyc(isa.LD)
				cycles += e.genFusedBranch(pm, bid, t, fuse.Op, next, hotTrue, &branchFixups)
			default:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(t.Cond)})
				cycles += e.cyc(isa.LD)
				cycles += e.genBranch(pm, bid, t, next, hotTrue, &branchFixups)
			}

		default:
			return fmt.Errorf("compile: %s/%v: unknown terminator %T", p.Name, bid, b.Term)
		}
		pm.BlockCycles[bid] = cycles
	}
	pm.EndAddr = int32(len(e.code))

	// Resolve intra-procedure branch targets.
	for _, f := range branchFixups {
		addr, ok := pm.BlockAddr[f.block]
		if !ok {
			return fmt.Errorf("compile: %s: fixup to unknown block %v", p.Name, f.block)
		}
		e.code[f.idx].Imm = addr
	}
	return nil
}

// genBranch emits the conditional control transfer for a Br whose condition
// is already in scratch register r1, records edge metadata, and returns the
// cycles charged to the block (the branch's base cost; direction-dependent
// costs go to the edges). When neither successor is the next block, the
// polarity hint decides which arm gets the conditional branch: aiming it at
// the colder arm makes the hot arm an always-JMP (never mispredicted).
func (e *emitter) genBranch(pm *ProcMeta, bid ir.BlockID, t ir.Br, next ir.BlockID, hotTrue bool, fixups *[]branchFixup) uint64 {
	switch {
	case t.False == next:
		pc := e.emit(isa.Instr{Op: isa.BNZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.True})
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false}
		return e.cyc(isa.BNZ)
	case t.True == next:
		pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.False})
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false}
		return e.cyc(isa.BZ)
	case hotTrue:
		// Conditional branch targets the cold False arm; hot True arm
		// leaves via the unconditional JMP.
		pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.False})
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.True})
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true}
		return e.cyc(isa.BZ)
	default:
		pc := e.emit(isa.Instr{Op: isa.BNZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.True})
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.False})
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true}
		return e.cyc(isa.BNZ)
	}
}

// genCountedBranch is the ModeEdgeCounters variant: each arc increments a
// dedicated PROFCNT counter before transferring.
//
//	bz r1, Lfalse
//	profcnt trueID ; jmp True
//	Lfalse: profcnt falseID ; jmp False (or fall through)
func (e *emitter) genCountedBranch(pm *ProcMeta, bid ir.BlockID, t ir.Br, next ir.BlockID, fixups *[]branchFixup) uint64 {
	trueID := e.nextArcID
	falseID := e.nextArcID + 1
	e.nextArcID += 2
	pm.ArcCounters[EdgeKey{From: bid, To: t.True}] = trueID
	pm.ArcCounters[EdgeKey{From: bid, To: t.False}] = falseID

	pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
	e.emit(isa.Instr{Op: isa.PROFCNT, Imm: trueID})
	jt := e.emit(isa.Instr{Op: isa.JMP})
	*fixups = append(*fixups, branchFixup{idx: int(jt), block: t.True})
	e.code[pc].Imm = int32(len(e.code)) // Lfalse
	e.emit(isa.Instr{Op: isa.PROFCNT, Imm: falseID})
	falseViaJmp := t.False != next
	if falseViaJmp {
		jf := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jf), block: t.False})
	}
	pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{
		BranchPC: pc, Taken: false, ViaJmp: true,
		Extra: uint64(e.cost.Cycles[isa.PROFCNT]),
	}
	pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{
		BranchPC: pc, Taken: true, ViaJmp: falseViaJmp,
		Extra: uint64(e.cost.Cycles[isa.PROFCNT]),
	}
	return e.cyc(isa.BZ)
}

// validateLayout checks that layout is a permutation of the procedure's
// block IDs.
func validateLayout(p *cfg.Proc, layout []ir.BlockID) error {
	if len(layout) != len(p.Blocks) {
		return fmt.Errorf("compile: %s: layout has %d blocks, want %d", p.Name, len(layout), len(p.Blocks))
	}
	seen := make(map[ir.BlockID]bool, len(layout))
	for _, id := range layout {
		if int(id) < 0 || int(id) >= len(p.Blocks) {
			return fmt.Errorf("compile: %s: layout references unknown block %v", p.Name, id)
		}
		if seen[id] {
			return fmt.Errorf("compile: %s: layout repeats block %v", p.Name, id)
		}
		seen[id] = true
	}
	return nil
}
