package compile

import (
	"fmt"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// GlobalBase is the first RAM word used for globals (low words are left
// free as a guard/zero page).
const GlobalBase = 32

// Options configures code generation.
type Options struct {
	// Instrument selects the profiling instrumentation to insert.
	Instrument Mode
	// Layouts optionally overrides the basic-block emission order per
	// procedure (a permutation of its block IDs). Missing entries use the
	// natural (lowering) order.
	Layouts map[string][]ir.BlockID
	// BranchHints optionally records, per procedure and branch block,
	// whether the Br's True successor is the likelier one. When a branch
	// has no fall-through successor under the layout, the backend aims
	// the conditional branch at the colder arm (and the unconditional JMP
	// at the hotter one), minimizing mispredictions at equal cycle cost.
	BranchHints map[string]map[ir.BlockID]bool
	// FuseCompares enables the compare-branch peephole: a comparison
	// whose boolean result feeds only the block's branch is emitted as a
	// single compare-and-branch instruction (BEQ/BNE/BLT/BGE) instead of
	// materializing the boolean. Ignored in ModeEdgeCounters builds.
	FuseCompares bool
	// RotateLoops rewrites natural loops into bottom-test form before
	// code generation (see RotateLoops), turning loop latches into
	// backward conditional branches that BTFN-style prediction wins on.
	RotateLoops bool
	// DeadBranchElim folds conditional branches whose direction the range
	// analysis proves (see EliminateDeadBranches) and prunes the arms that
	// can never execute. Runs before loop rotation so rotation sees the
	// simplified CFG.
	DeadBranchElim bool
	// VerifyIR runs the strict IR verifier (analysis.Verify) on the CFG
	// after lowering and again after every CFG-mutating pass, so a pass
	// that breaks an invariant fails at the pass that broke it. The test
	// suite keeps it always on; production builds may skip it for speed.
	VerifyIR bool
	// Cost is the cycle/size table; nil means isa.DefaultCostModel().
	Cost *isa.CostModel
	// PGO, when non-nil, runs the profile-guided pipeline (inlining,
	// superblocks, hot/cold splitting, page packing — see PGOOptions)
	// between the middle-end passes and code generation. Build fills
	// Layouts, BranchHints, and ColdBlocks from it.
	PGO *PGOOptions
	// ColdBlocks names blocks to emit into the program's cold flash
	// region, placed after every procedure's hot region. Entries for a
	// procedure's entry block are ignored (the prologue stays hot).
	// Normally filled by the PGO pipeline rather than by hand.
	ColdBlocks map[string]map[ir.BlockID]bool

	// pgoWeights holds the pass-transformed edge weights runPGO computed —
	// the ones matching the CFG the backend actually emits (superblock and
	// inlining redistribute weight over new blocks). Page packing reads
	// them; PGO.Weights keeps the caller's originals.
	pgoWeights map[string]ProcWeights
}

// Output is a compiled program: machine code, the timing/placement
// metadata, and the CFG it was generated from.
type Output struct {
	Code []isa.Instr
	Meta *Meta
	CFG  *cfg.Program
}

type callFixup struct {
	idx  int
	name string
}

type branchFixup struct {
	idx   int
	block ir.BlockID
}

type emitter struct {
	opts Options
	cost *isa.CostModel
	prog *cfg.Program
	code []isa.Instr
	meta *Meta

	globalScalars map[string]int32
	globalArrays  map[string]int32

	callFixups []callFixup
	nextArcID  int32
	pending    []*pendingProc
}

// pendingProc carries what a procedure's deferred work needs: its cold
// blocks are emitted only after every hot region (so the hot regions stay
// contiguous in flash), and its branch fixups resolve only after that (hot
// code jumps into cold blocks whose addresses do not exist yet).
type pendingProc struct {
	p         *cfg.Proc
	fr        *frame
	pm        *ProcMeta
	cold      []ir.BlockID
	fixups    []branchFixup
	tempReads []int
}

// Generate emits M16 machine code for a lowered program.
func Generate(prog *cfg.Program, opts Options) (*Output, error) {
	if opts.Cost == nil {
		opts.Cost = isa.DefaultCostModel()
	}
	e := &emitter{
		opts:          opts,
		cost:          opts.Cost,
		prog:          prog,
		globalScalars: make(map[string]int32),
		globalArrays:  make(map[string]int32),
		meta: &Meta{
			ProcByName: make(map[string]*ProcMeta),
			GlobalAddr: make(map[string]int32),
			Mode:       opts.Instrument,
			Cost:       opts.Cost,
		},
	}
	e.layoutGlobals()

	// Startup stub: initialize globals, call main, halt. Global scalar
	// initializers are applied by the loader in package mote builds? No —
	// MiniC globals start zeroed; initializers are applied by the caller
	// of Compile via Meta.GlobalInits encoded here as stub code.
	e.emitStub()

	// When page packing is on, emit unweighted procedures first: a pad
	// shifts every later address, so code the packer cannot model (no
	// profile, e.g. a run-once main whose loop is still hot) must not sit
	// downstream of the regions it packs. Weighted procedures re-optimize
	// their own shift in emission order, and the cold region at the very
	// end holds only negligible weight by construction.
	order := prog.Procs
	if pgo := e.opts.PGO; pgo != nil && pgo.PagePack && e.cost.PageSizeBytes > 0 {
		order = make([]*cfg.Proc, 0, len(prog.Procs))
		var weighted []*cfg.Proc
		for _, p := range prog.Procs {
			if e.pagePackWanted(p.Name) {
				weighted = append(weighted, p)
			} else {
				order = append(order, p)
			}
		}
		order = append(order, weighted...)
	}
	for i, p := range order {
		if err := e.genProc(p, i); err != nil {
			return nil, err
		}
	}
	// Cold regions live after every hot region, contiguous per procedure.
	for _, pp := range e.pending {
		if len(pp.cold) == 0 {
			continue
		}
		pp.pm.ColdStartAddr = int32(len(e.code))
		if err := e.emitBlocks(pp.p, pp.fr, pp.pm, pp.cold, &pp.fixups, pp.tempReads); err != nil {
			return nil, err
		}
		pp.pm.ColdEndAddr = int32(len(e.code))
	}
	// Resolve intra-procedure branch targets — deferred program-wide
	// because hot code may branch into a cold block emitted only above.
	for _, pp := range e.pending {
		for _, f := range pp.fixups {
			addr, ok := pp.pm.BlockAddr[f.block]
			if !ok {
				return nil, fmt.Errorf("compile: %s: fixup to unknown block %v", pp.pm.Name, f.block)
			}
			e.code[f.idx].Imm = addr
		}
	}
	// Resolve CALL targets.
	for _, f := range e.callFixups {
		pm, ok := e.meta.ProcByName[f.name]
		if !ok {
			return nil, fmt.Errorf("compile: call to unknown procedure %q", f.name)
		}
		e.code[f.idx].Imm = pm.EntryAddr
	}
	e.computePageCrosses()
	e.meta.CodeBytes = e.cost.CodeBytes(e.code)
	e.meta.NumArcCounters = int(e.nextArcID)
	e.meta.Code = e.code
	return &Output{Code: e.code, Meta: e.meta, CFG: prog}, nil
}

// computePageCrosses fills EdgeInfo.PageCrosses once every branch and call
// target is resolved: an edge crosses a page for each of its redirects (the
// taken conditional branch, the explicit JMP) whose target lies on a
// different flash page than the transfer instruction — exactly the events
// the mote charges Cost.PageCrossPenalty for. Runs whenever the cost model
// has a page size, so tools can report page locality even at zero penalty.
func (e *emitter) computePageCrosses() {
	ps := e.cost.PageSizeBytes
	if ps == 0 {
		return
	}
	off := e.cost.ByteOffsets(e.code)
	page := func(pc int32) uint32 { return off[pc] / ps }
	for _, pm := range e.meta.Procs {
		for k, info := range pm.Edges {
			var n uint8
			if info.BranchPC >= 0 && info.Taken && page(e.code[info.BranchPC].Imm) != page(info.BranchPC) {
				n++
			}
			if info.ViaJmp && info.JmpPC >= 0 && page(e.code[info.JmpPC].Imm) != page(info.JmpPC) {
				n++
			}
			if n != 0 {
				info.PageCrosses = n
				pm.Edges[k] = info
			}
		}
	}
}

func (e *emitter) layoutGlobals() {
	addr := int32(GlobalBase)
	for _, name := range e.prog.Globals {
		e.globalScalars[name] = addr
		e.meta.GlobalAddr[name] = addr
		addr++
	}
	names := make([]string, 0, len(e.prog.GlobalArrays))
	for name := range e.prog.GlobalArrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.globalArrays[name] = addr
		e.meta.GlobalAddr[name] = addr
		addr += int32(e.prog.GlobalArrays[name])
	}
	e.meta.GlobalWords = int(addr)
}

// emit appends an instruction and returns its address.
func (e *emitter) emit(in isa.Instr) int32 {
	e.code = append(e.code, in)
	return int32(len(e.code) - 1)
}

func (e *emitter) cyc(op isa.Op) uint64 { return uint64(e.cost.Cycles[op]) }

// emitStub emits the reset vector: global initialization, CALL main, HALT.
// Global initializer values must have been folded by the front end; Lower
// keeps them out of the CFG, so the values are re-derived by the driver and
// passed via SetGlobalInit before Generate — instead we simply zero-default
// here and let the driver's stub data (GlobalInits) be emitted directly.
func (e *emitter) emitStub() {
	for _, init := range e.prog.GlobalInits {
		e.emit(isa.Instr{Op: isa.LDI, Rd: isa.RegScratch1, Imm: int32(init.Val)})
		e.emit(isa.Instr{Op: isa.LDI, Rd: isa.RegScratch2, Imm: e.meta.GlobalAddr[init.Name]})
		e.emit(isa.Instr{Op: isa.ST, Ra: isa.RegScratch2, Imm: 0, Rb: isa.RegScratch1})
	}
	idx := e.emit(isa.Instr{Op: isa.CALL})
	e.callFixups = append(e.callFixups, callFixup{idx: int(idx), name: "main"})
	e.emit(isa.Instr{Op: isa.HALT})
}

func (e *emitter) genProc(p *cfg.Proc, procIdx int) error {
	fr := newFrame(p)
	layout := e.opts.Layouts[p.Name]
	if layout == nil {
		layout = make([]ir.BlockID, len(p.Blocks))
		for i := range p.Blocks {
			layout[i] = ir.BlockID(i)
		}
	}
	if err := validateLayout(p, layout); err != nil {
		return err
	}

	// Partition the layout into the hot region (emitted here) and the
	// cold run (deferred until every hot region exists). Relative order
	// within each region follows the layout; the entry stays hot.
	coldSet := e.opts.ColdBlocks[p.Name]
	var hot, cold []ir.BlockID
	for _, bid := range layout {
		if coldSet[bid] && bid != p.Entry {
			cold = append(cold, bid)
		} else {
			hot = append(hot, bid)
		}
	}

	pm := &ProcMeta{
		Name:          p.Name,
		Index:         procIdx,
		EntryBlock:    p.Entry,
		Layout:        append(append([]ir.BlockID(nil), hot...), cold...),
		BlockAddr:     make(map[ir.BlockID]int32),
		BlockCycles:   make(map[ir.BlockID]uint64),
		Edges:         make(map[EdgeKey]EdgeInfo),
		EnterTraceID:  int32(procIdx * 2),
		ExitTraceID:   int32(procIdx*2 + 1),
		ArcCounters:   make(map[EdgeKey]int32),
		ColdStartAddr: -1,
		ColdEndAddr:   -1,
	}
	e.meta.Procs = append(e.meta.Procs, pm)
	e.meta.ProcByName[p.Name] = pm

	var tempReads []int
	if e.opts.FuseCompares && e.opts.Instrument != ModeEdgeCounters {
		tempReads = tempReadCounts(p)
	}
	pp := &pendingProc{p: p, fr: fr, pm: pm, cold: cold, tempReads: tempReads}
	e.pending = append(e.pending, pp)

	snapCode, snapCalls, snapArc := len(e.code), len(e.callFixups), e.nextArcID
	if err := e.emitBlocks(p, fr, pm, hot, &pp.fixups, tempReads); err != nil {
		return err
	}
	pm.EndAddr = int32(len(e.code))

	if e.pagePackWanted(p.Name) {
		if pad := e.pagePad(snapCode, pm); pad > 0 {
			// Re-emitting behind NOP padding (rather than shifting the
			// already-emitted code) keeps every absolute immediate the
			// emitters resolved mid-stream correct.
			e.code = e.code[:snapCode]
			e.callFixups = e.callFixups[:snapCalls]
			e.nextArcID = snapArc
			pp.fixups = pp.fixups[:0]
			pm.BlockAddr = make(map[ir.BlockID]int32, len(hot))
			pm.BlockCycles = make(map[ir.BlockID]uint64, len(hot))
			pm.Edges = make(map[EdgeKey]EdgeInfo)
			pm.ArcCounters = make(map[EdgeKey]int32)
			for i := 0; i < pad; i++ {
				e.emit(isa.Instr{Op: isa.NOP})
			}
			if err := e.emitBlocks(p, fr, pm, hot, &pp.fixups, tempReads); err != nil {
				return err
			}
			pm.EndAddr = int32(len(e.code))
		}
	}
	return nil
}

// pagePackWanted reports whether the procedure's hot region should be
// shifted relative to flash-page boundaries to minimize hot page straddles.
func (e *emitter) pagePackWanted(name string) bool {
	pgo := e.opts.PGO
	return pgo != nil && pgo.PagePack && e.cost.PageSizeBytes > 0 && e.pgoWeightsFor(name) != nil
}

// pgoWeightsFor returns the edge weights the backend should trust for the
// procedure: the pass-transformed ones when the PGO pipeline ran, else the
// caller's originals.
func (e *emitter) pgoWeightsFor(name string) ProcWeights {
	if w := e.opts.pgoWeights[name]; w != nil {
		return w
	}
	return e.opts.PGO.Weights[name]
}

// pagePad returns how many NOP words to insert before the hot region
// starting at instruction index start to minimize the region's expected
// page-crossing traffic: every charged redirect (taken conditional branch
// or JMP) whose source and target straddle a flash page pays the refill
// penalty per traversal, so the objective is the profile-weighted count of
// straddling redirects, evaluated exactly from the just-emitted code at
// every page-relative shift. A zero shift is always a candidate (packing
// can never make the estimate worse) and wins ties, so the pad is 0
// whenever alignment buys nothing. The padding never executes: it sits
// between the previous procedure's end and this one's entry.
func (e *emitter) pagePad(start int, pm *ProcMeta) int {
	ps := e.cost.PageSizeBytes
	w := e.pgoWeightsFor(pm.Name)
	if e.cost.CodeBytes(e.code[start:]) == 0 || len(w) == 0 {
		return 0
	}
	off := e.cost.ByteOffsets(e.code)
	// Weighted redirect events wholly inside the hot region. Targets not
	// yet emitted are cold blocks: unknown addresses, negligible weight.
	type event struct {
		pc, tgt int32
		w       float64
	}
	var evs []event
	for k, info := range pm.Edges {
		wt := w[[2]ir.BlockID{k.From, k.To}]
		if wt == 0 {
			continue
		}
		tgt, ok := pm.BlockAddr[k.To]
		if !ok {
			continue
		}
		if info.Taken && info.BranchPC >= 0 {
			evs = append(evs, event{pc: info.BranchPC, tgt: tgt, w: wt})
		}
		if info.ViaJmp && info.JmpPC >= 0 {
			evs = append(evs, event{pc: info.JmpPC, tgt: tgt, w: wt})
		}
	}
	if len(evs) == 0 {
		return 0
	}
	// Map iteration fed evs; fix the summation order so the chosen shift
	// never depends on it.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].pc != evs[j].pc {
			return evs[i].pc < evs[j].pc
		}
		return evs[i].tgt < evs[j].tgt
	})
	costAt := func(shift uint32) float64 {
		c := 0.0
		for _, v := range evs {
			if (off[v.pc]+shift)/ps != (off[v.tgt]+shift)/ps {
				c += v.w
			}
		}
		return c
	}
	best, bestCost := uint32(0), costAt(0)
	for s := uint32(2); s < ps; s += 2 {
		if c := costAt(s); c < bestCost {
			best, bestCost = s, c
		}
	}
	return int(best / 2)
}

// emitBlocks emits one contiguous run of blocks: consecutive entries fall
// through, the run's last block gets no implied successor, and the entry
// block (always in the hot run) gets the procedure preamble.
func (e *emitter) emitBlocks(p *cfg.Proc, fr *frame, pm *ProcMeta, run []ir.BlockID, branchFixups *[]branchFixup, tempReads []int) error {
	timestamps := e.opts.Instrument == ModeTimestamps

	for li, bid := range run {
		b := p.Block(bid)
		var next ir.BlockID = -1
		if li+1 < len(run) {
			next = run[li+1]
		}

		if bid == p.Entry {
			// Procedure preamble. EntryOverhead is charged once per
			// invocation by the timing model.
			pm.EntryAddr = int32(len(e.code))
			var over uint64
			if timestamps {
				e.emit(isa.Instr{Op: isa.TRACE, Imm: pm.EnterTraceID})
				over += e.cyc(isa.TRACE)
			}
			e.emit(isa.Instr{Op: isa.PUSH, Ra: isa.RegFP})
			e.emit(isa.Instr{Op: isa.GETSP, Rd: isa.RegFP})
			over += e.cyc(isa.PUSH) + e.cyc(isa.GETSP)
			if fr.size > 0 {
				e.emit(isa.Instr{Op: isa.SPADJ, Imm: -fr.size})
				over += e.cyc(isa.SPADJ)
			}
			pm.EntryOverhead = over
		}
		pm.BlockAddr[bid] = int32(len(e.code))

		var fuse *ir.Bin
		if tempReads != nil {
			fuse = fusableCompare(p, b, tempReads)
		}
		body := b.Instrs
		if fuse != nil {
			body = body[:len(body)-1]
		}

		var cycles uint64
		for _, in := range body {
			c, err := e.genInstr(in, fr, timestamps)
			if err != nil {
				return fmt.Errorf("compile: %s/%v: %w", p.Name, bid, err)
			}
			cycles += c
		}

		switch t := b.Term.(type) {
		case ir.Ret:
			if t.Val >= 0 {
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegRet, Ra: isa.RegFP, Imm: -fr.tempOff(t.Val)})
				cycles += e.cyc(isa.LD)
			}
			// Everything from the exit TRACE on is outside the measured
			// interval: charged to the caller via its call-site constant.
			if timestamps {
				e.emit(isa.Instr{Op: isa.TRACE, Imm: pm.ExitTraceID})
			}
			if fr.size > 0 {
				e.emit(isa.Instr{Op: isa.SPADJ, Imm: fr.size})
			}
			e.emit(isa.Instr{Op: isa.POP, Rd: isa.RegFP})
			e.emit(isa.Instr{Op: isa.RET})

		case ir.Halt:
			e.emit(isa.Instr{Op: isa.HALT})
			cycles += e.cyc(isa.HALT)

		case ir.Jmp:
			info := EdgeInfo{BranchPC: -1, JmpPC: -1}
			if t.Target != next {
				idx := e.emit(isa.Instr{Op: isa.JMP})
				*branchFixups = append(*branchFixups, branchFixup{idx: int(idx), block: t.Target})
				info.ViaJmp = true
				info.JmpPC = idx
			}
			pm.Edges[EdgeKey{From: bid, To: t.Target}] = info

		case ir.Br:
			hotTrue := e.opts.BranchHints[p.Name][bid]
			switch {
			case e.opts.Instrument == ModeEdgeCounters:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(t.Cond)})
				cycles += e.cyc(isa.LD)
				cycles += e.genCountedBranch(pm, bid, t, next, branchFixups)
			case fuse != nil:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(fuse.A)})
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch2, Ra: isa.RegFP, Imm: -fr.tempOff(fuse.B)})
				cycles += 2 * e.cyc(isa.LD)
				cycles += e.genFusedBranch(pm, bid, t, fuse.Op, next, hotTrue, branchFixups)
			default:
				e.emit(isa.Instr{Op: isa.LD, Rd: isa.RegScratch1, Ra: isa.RegFP, Imm: -fr.tempOff(t.Cond)})
				cycles += e.cyc(isa.LD)
				cycles += e.genBranch(pm, bid, t, next, hotTrue, branchFixups)
			}

		default:
			return fmt.Errorf("compile: %s/%v: unknown terminator %T", p.Name, bid, b.Term)
		}
		pm.BlockCycles[bid] = cycles
	}
	return nil
}

// genBranch emits the conditional control transfer for a Br whose condition
// is already in scratch register r1, records edge metadata, and returns the
// cycles charged to the block (the branch's base cost; direction-dependent
// costs go to the edges). When neither successor is the next block, the
// polarity hint decides which arm gets the conditional branch: aiming it at
// the colder arm makes the hot arm an always-JMP (never mispredicted).
func (e *emitter) genBranch(pm *ProcMeta, bid ir.BlockID, t ir.Br, next ir.BlockID, hotTrue bool, fixups *[]branchFixup) uint64 {
	switch {
	case t.False == next:
		pc := e.emit(isa.Instr{Op: isa.BNZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.True})
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false, JmpPC: -1}
		return e.cyc(isa.BNZ)
	case t.True == next:
		pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.False})
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false, JmpPC: -1}
		return e.cyc(isa.BZ)
	case hotTrue:
		// Conditional branch targets the cold False arm; hot True arm
		// leaves via the unconditional JMP.
		pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.False})
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.True})
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true, JmpPC: jmp}
		return e.cyc(isa.BZ)
	default:
		pc := e.emit(isa.Instr{Op: isa.BNZ, Ra: isa.RegScratch1})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: t.True})
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.False})
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true, JmpPC: jmp}
		return e.cyc(isa.BNZ)
	}
}

// genCountedBranch is the ModeEdgeCounters variant: each arc increments a
// dedicated PROFCNT counter before transferring.
//
//	bz r1, Lfalse
//	profcnt trueID ; jmp True
//	Lfalse: profcnt falseID ; jmp False (or fall through)
func (e *emitter) genCountedBranch(pm *ProcMeta, bid ir.BlockID, t ir.Br, next ir.BlockID, fixups *[]branchFixup) uint64 {
	trueID := e.nextArcID
	falseID := e.nextArcID + 1
	e.nextArcID += 2
	pm.ArcCounters[EdgeKey{From: bid, To: t.True}] = trueID
	pm.ArcCounters[EdgeKey{From: bid, To: t.False}] = falseID

	pc := e.emit(isa.Instr{Op: isa.BZ, Ra: isa.RegScratch1})
	e.emit(isa.Instr{Op: isa.PROFCNT, Imm: trueID})
	jt := e.emit(isa.Instr{Op: isa.JMP})
	*fixups = append(*fixups, branchFixup{idx: int(jt), block: t.True})
	e.code[pc].Imm = int32(len(e.code)) // Lfalse
	e.emit(isa.Instr{Op: isa.PROFCNT, Imm: falseID})
	falseViaJmp := t.False != next
	jf := int32(-1)
	if falseViaJmp {
		jf = e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jf), block: t.False})
	}
	pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{
		BranchPC: pc, Taken: false, ViaJmp: true, JmpPC: jt,
		Extra: uint64(e.cost.Cycles[isa.PROFCNT]),
	}
	pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{
		BranchPC: pc, Taken: true, ViaJmp: falseViaJmp, JmpPC: jf,
		Extra: uint64(e.cost.Cycles[isa.PROFCNT]),
	}
	return e.cyc(isa.BZ)
}

// validateLayout checks that layout is a permutation of the procedure's
// block IDs.
func validateLayout(p *cfg.Proc, layout []ir.BlockID) error {
	if len(layout) != len(p.Blocks) {
		return fmt.Errorf("compile: %s: layout has %d blocks, want %d", p.Name, len(layout), len(p.Blocks))
	}
	seen := make(map[ir.BlockID]bool, len(layout))
	for _, id := range layout {
		if int(id) < 0 || int(id) >= len(p.Blocks) {
			return fmt.Errorf("compile: %s: layout references unknown block %v", p.Name, id)
		}
		if seen[id] {
			return fmt.Errorf("compile: %s: layout repeats block %v", p.Name, id)
		}
		seen[id] = true
	}
	return nil
}
