package compile

import (
	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// fusedOp maps a comparison operator to the compare-and-branch opcode that
// transfers when the comparison holds (negate=false) or fails
// (negate=true), with swap indicating the operands must be exchanged
// (M16 has BLT/BGE but not BGT/BLE).
func fusedOp(op ir.Op, negate bool) (mop isa.Op, swap bool) {
	if negate {
		switch op {
		case ir.OpLt:
			op = ir.OpGe
		case ir.OpGe:
			op = ir.OpLt
		case ir.OpGt:
			op = ir.OpLe
		case ir.OpLe:
			op = ir.OpGt
		case ir.OpEq:
			op = ir.OpNe
		case ir.OpNe:
			op = ir.OpEq
		}
	}
	switch op {
	case ir.OpLt:
		return isa.BLT, false
	case ir.OpGe:
		return isa.BGE, false
	case ir.OpGt:
		return isa.BLT, true
	case ir.OpLe:
		return isa.BGE, true
	case ir.OpEq:
		return isa.BEQ, false
	case ir.OpNe:
		return isa.BNE, false
	}
	// fusableCompare guarantees a comparison operator.
	panic("compile: fusedOp on non-comparison " + op.String())
}

// genFusedBranch emits a single compare-and-branch for a Br whose condition
// was a one-use trailing comparison. The comparison operands are already in
// scratch registers r1 (A) and r2 (B). Returns the cycles charged to the
// block.
func (e *emitter) genFusedBranch(pm *ProcMeta, bid ir.BlockID, t ir.Br, op ir.Op, next ir.BlockID, hotTrue bool, fixups *[]branchFixup) uint64 {
	const (
		r1 = isa.RegScratch1
		r2 = isa.RegScratch2
	)
	emitCmp := func(negate bool, target ir.BlockID) int32 {
		mop, swap := fusedOp(op, negate)
		ra, rb := r1, r2
		if swap {
			ra, rb = r2, r1
		}
		pc := e.emit(isa.Instr{Op: mop, Ra: ra, Rb: rb})
		*fixups = append(*fixups, branchFixup{idx: int(pc), block: target})
		return pc
	}

	switch {
	case t.False == next:
		// Branch to True when the comparison holds; fall through to False.
		pc := emitCmp(false, t.True)
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false, JmpPC: -1}
		return uint64(e.cost.Cycles[e.code[pc].Op])
	case t.True == next:
		pc := emitCmp(true, t.False)
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false, JmpPC: -1}
		return uint64(e.cost.Cycles[e.code[pc].Op])
	case hotTrue:
		pc := emitCmp(true, t.False)
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.True})
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true, JmpPC: jmp}
		return uint64(e.cost.Cycles[e.code[pc].Op])
	default:
		pc := emitCmp(false, t.True)
		jmp := e.emit(isa.Instr{Op: isa.JMP})
		*fixups = append(*fixups, branchFixup{idx: int(jmp), block: t.False})
		pm.Edges[EdgeKey{From: bid, To: t.True}] = EdgeInfo{BranchPC: pc, Taken: true, JmpPC: -1}
		pm.Edges[EdgeKey{From: bid, To: t.False}] = EdgeInfo{BranchPC: pc, Taken: false, ViaJmp: true, JmpPC: jmp}
		return uint64(e.cost.Cycles[e.code[pc].Op])
	}
}
