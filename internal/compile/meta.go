package compile

import (
	"fmt"

	"codetomo/internal/ir"
	"codetomo/internal/isa"
)

// Mode selects the instrumentation inserted at code generation.
type Mode int

// Instrumentation modes.
const (
	// ModeNone builds the plain binary (used for optimized final builds).
	ModeNone Mode = iota
	// ModeTimestamps inserts a TRACE at each procedure entry and before
	// each return — the only measurement Code Tomography needs.
	ModeTimestamps
	// ModeEdgeCounters inserts per-arc PROFCNT counters at every
	// conditional branch — the classical full-profiling baseline.
	ModeEdgeCounters
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeTimestamps:
		return "timestamps"
	case ModeEdgeCounters:
		return "edge-counters"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// EdgeKey identifies a CFG edge within a procedure.
type EdgeKey struct {
	From, To ir.BlockID
}

// EdgeInfo describes the machine-level realization of a CFG edge under the
// layout the binary was generated with. Together with a Predictor it yields
// the edge's extra cycle cost (mispredict penalty and/or an explicit JMP).
type EdgeInfo struct {
	// BranchPC is the address of the conditional branch instruction that
	// decides this edge, or -1 for edges out of unconditional blocks.
	BranchPC int32
	// Taken reports whether traversing this edge takes that branch (as
	// opposed to falling through it).
	Taken bool
	// ViaJmp reports whether the edge additionally executes a JMP; JmpPC
	// is that JMP's address (meaningful only when ViaJmp).
	ViaJmp bool
	JmpPC  int32
	// PageCrosses is how many flash-page boundaries the edge's redirects
	// cross (the taken branch and/or the JMP, 0–2); each traversal pays
	// Cost.PageCrossPenalty per crossing. Computed after fixup resolution
	// whenever the cost model has a page size.
	PageCrosses uint8
	// Extra is a deterministic per-edge cycle cost beyond branch penalty
	// and JMP (e.g. the arc counter in ModeEdgeCounters builds).
	Extra uint64
}

// pageExtra is the deterministic page-refill cost paid on every traversal
// of the edge.
func (m *Meta) pageExtra(info EdgeInfo) uint64 {
	return uint64(info.PageCrosses) * uint64(m.Cost.PageCrossPenalty)
}

// Predictor is the slice of the mote's branch predictor interface the
// timing model needs. mote.Predictor satisfies it.
type Predictor interface {
	PredictTaken(pc int32, in isa.Instr) bool
}

// ProcMeta is the per-procedure timing/placement metadata emitted by the
// backend. It is the bridge between the binary and the Markov model: block
// base costs and per-edge descriptors let the estimator predict end-to-end
// durations for any path.
type ProcMeta struct {
	Name  string
	Index int
	// EntryAddr is the CALL target; EndAddr is one past the last
	// instruction of the procedure's hot region. Blocks split into the
	// cold flash region lie outside [EntryAddr, EndAddr).
	EntryAddr, EndAddr int32
	// ColdStartAddr/ColdEndAddr delimit the procedure's cold region
	// (hot/cold splitting under PGO), emitted after every procedure's hot
	// region; both are -1 when the procedure has no cold blocks.
	ColdStartAddr, ColdEndAddr int32
	// EntryBlock is the CFG entry block's ID.
	EntryBlock ir.BlockID
	// Layout is the block emission order used.
	Layout []ir.BlockID
	// BlockAddr is each block's first instruction address.
	BlockAddr map[ir.BlockID]int32
	// BlockCycles is the deterministic cycle cost attributed to each block
	// under the measured-interval convention: return blocks exclude the
	// exit TRACE and the epilogue (those cycles land in the caller's
	// exclusive time and are charged to the call site); call sites include
	// the full caller-side and callee-boundary overhead.
	BlockCycles map[ir.BlockID]uint64
	// EntryOverhead is the once-per-invocation cost of the entry TRACE (if
	// instrumented) and the prologue, kept separate from the entry block's
	// cost so that revisits of the entry region are not overcharged.
	EntryOverhead uint64
	// Edges describes every CFG edge's machine realization.
	Edges map[EdgeKey]EdgeInfo
	// EnterTraceID/ExitTraceID are the TRACE operands in ModeTimestamps.
	EnterTraceID, ExitTraceID int32
	// ArcCounters maps branch edges to PROFCNT ids in ModeEdgeCounters.
	ArcCounters map[EdgeKey]int32
}

// Meta is the whole-program metadata.
type Meta struct {
	Procs      []*ProcMeta
	ProcByName map[string]*ProcMeta
	GlobalAddr map[string]int32
	// GlobalWords is the number of RAM words occupied by globals.
	GlobalWords int
	// CodeBytes is the encoded program size.
	CodeBytes uint32
	// NumArcCounters is the total PROFCNT counters allocated.
	NumArcCounters int
	Mode           Mode
	Cost           *isa.CostModel
	// Code is the emitted program (shared with Output.Code); the timing
	// model reads branch encodings from it.
	Code []isa.Instr
}

// EdgeExtraCycles returns the additional cycles incurred when leaving a
// block via the given edge, under the given static predictor: the
// mispredict penalty if the predictor guesses the realized direction wrong,
// plus the cost of an explicit JMP on edges that need one.
func (m *Meta) EdgeExtraCycles(pm *ProcMeta, e EdgeKey, pred Predictor) (uint64, error) {
	info, ok := pm.Edges[e]
	if !ok {
		return 0, fmt.Errorf("compile: proc %s has no edge %v->%v", pm.Name, e.From, e.To)
	}
	var extra uint64
	if info.BranchPC >= 0 {
		if int(info.BranchPC) >= len(m.Code) {
			return 0, fmt.Errorf("compile: edge branch pc %d out of range", info.BranchPC)
		}
		in := m.Code[info.BranchPC]
		if pred.PredictTaken(info.BranchPC, in) != info.Taken {
			extra += uint64(m.Cost.TakenPenalty)
		}
	}
	if info.ViaJmp {
		extra += uint64(m.Cost.Cycles[isa.JMP])
	}
	return extra + info.Extra + m.pageExtra(info), nil
}

// PathCycles returns the deterministic duration of one complete execution
// path through the procedure (a block sequence starting at the entry and
// ending at a return block), under the measured-interval convention: the
// sum of block costs plus per-edge extras. Callee time is excluded by
// construction (call sites charge only the boundary overhead).
func (m *Meta) PathCycles(pm *ProcMeta, path []ir.BlockID, pred Predictor) (uint64, error) {
	total := pm.EntryOverhead
	for i, b := range path {
		c, ok := pm.BlockCycles[b]
		if !ok {
			return 0, fmt.Errorf("compile: proc %s has no block %v", pm.Name, b)
		}
		total += c
		if i+1 < len(path) {
			extra, err := m.EdgeExtraCycles(pm, EdgeKey{From: b, To: path[i+1]}, pred)
			if err != nil {
				return 0, err
			}
			total += extra
		}
	}
	return total, nil
}
