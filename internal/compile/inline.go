package compile

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// inlineHotCalls replaces calls to small leaf procedures at hot call sites
// with a copy of the callee body. A site qualifies when the call-site
// block's expected traversal count is at least InlineMinWeight and the
// callee fits InlineMaxInstrs; each caller stops after InlineBudget inlined
// IR instructions. Inlining removes the CALL/RET boundary overhead and the
// argument pushes, and — because the callee body now has its own block IDs
// inside the caller — exposes the callee's branches to the caller's layout,
// hint, and hot/cold decisions.
//
// Only leaf callees (no ir.Call in any block) are candidates, which rules
// out recursion; callers are scanned in program order and re-scanned after
// each transform so the site selection is deterministic. Weights are
// redistributed onto the new blocks: the callee's internal edges carry its
// own per-invocation weights scaled by the site weight, and the return
// edges into the continuation block carry each return block's weight.
func inlineHotCalls(prog *cfg.Program, weights map[string]ProcWeights, pgo PGOOptions) {
	inlinable := make(map[string]*cfg.Proc)
	for _, p := range prog.Procs {
		if inlinableCallee(p, pgo.InlineMaxInstrs) {
			inlinable[p.Name] = p
		}
	}
	if len(inlinable) == 0 {
		return
	}
	for _, p := range prog.Procs {
		w, ok := weights[p.Name]
		if !ok {
			continue
		}
		budget := pgo.InlineBudget
		site := 0
		for {
			bw := blockWeights(p, w)
			bid, k, callee := findInlineSite(p, bw, inlinable, weights, pgo, budget)
			if callee == nil {
				break
			}
			budget -= procInstrCount(callee)
			inlineSite(p, callee, bid, k, bw[bid], w, weights[callee.Name], site)
			site++
		}
	}
}

// inlinableCallee reports whether p can be substituted for a call: a leaf
// (no calls, hence no recursion), no Halt, never the program entry, every
// return explicit when a result is promised (so the continuation's result
// temp is defined on all paths), and small enough.
func inlinableCallee(p *cfg.Proc, maxInstrs int) bool {
	if p.Name == "main" {
		return false
	}
	size := 0
	for _, b := range p.Blocks {
		size += len(b.Instrs)
		switch t := b.Term.(type) {
		case ir.Halt:
			return false
		case ir.Ret:
			if p.HasRet && t.Val < 0 {
				return false
			}
		}
		for _, in := range b.Instrs {
			if _, isCall := in.(ir.Call); isCall {
				return false
			}
		}
	}
	return size <= maxInstrs
}

func procInstrCount(p *cfg.Proc) int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// findInlineSite returns the first qualifying call site in block-ID then
// instruction order, or a nil callee when none remains. Multi-block callees
// additionally need their own weight entry: without one the redistributed
// weights would report zero flow reaching the continuation, and the
// hot/cold pass would wrongly freeze the rest of the caller.
func findInlineSite(p *cfg.Proc, bw map[ir.BlockID]float64, inlinable map[string]*cfg.Proc, weights map[string]ProcWeights, pgo PGOOptions, budget int) (ir.BlockID, int, *cfg.Proc) {
	for _, b := range p.Blocks {
		if bw[b.ID] < pgo.InlineMinWeight {
			continue
		}
		for k, in := range b.Instrs {
			call, isCall := in.(ir.Call)
			if !isCall {
				continue
			}
			callee := inlinable[call.Fn]
			if callee == nil || callee == p {
				continue
			}
			if len(callee.Blocks) > 1 && weights[callee.Name] == nil {
				continue
			}
			if procInstrCount(callee) > budget {
				continue
			}
			return b.ID, k, callee
		}
	}
	return 0, 0, nil
}

// inlineSite splices a copy of callee into p at block bid, instruction k
// (an ir.Call). The call block keeps its prefix and ends with stores of the
// argument temps into fresh per-site locals standing in for the parameters;
// a new continuation block receives the suffix and the original terminator;
// the callee's blocks are appended with temps offset past the caller's and
// every frame name aliased with an "@callee#site" suffix (the '@' cannot
// occur in a source identifier, so aliases never collide with caller
// names). Returns become jumps to the continuation, preceded by a move of
// the returned temp into the call's destination.
func inlineSite(p *cfg.Proc, callee *cfg.Proc, bid ir.BlockID, k int, siteW float64, w, calleeW ProcWeights, site int) {
	b := p.Block(bid)
	call := b.Instrs[k].(ir.Call)

	suffix := fmt.Sprintf("@%s#%d", callee.Name, site)
	rename := make(map[string]string)
	for _, n := range callee.Params {
		rename[n] = n + suffix
		p.Locals = append(p.Locals, n+suffix)
	}
	for _, n := range callee.Locals {
		rename[n] = n + suffix
		p.Locals = append(p.Locals, n+suffix)
	}
	for n, size := range callee.Arrays {
		rename[n] = n + suffix
		if p.Arrays == nil {
			p.Arrays = make(map[string]int)
		}
		p.Arrays[n+suffix] = size
	}
	tempBase := ir.Temp(p.NumTemp)
	p.NumTemp += callee.NumTemp

	contID := ir.BlockID(len(p.Blocks))
	base := contID + 1
	hasPos := len(b.SrcPos) > 0
	callPos := b.InstrPos(k)

	// Continuation: the call block's suffix under the original terminator.
	cont := &cfg.Block{
		ID:     contID,
		Label:  b.Label + suffix + "_ret",
		Instrs: append([]ir.Instr(nil), b.Instrs[k+1:]...),
		Term:   b.Term,
	}
	if hasPos {
		cont.SrcPos = append([]ir.Pos(nil), b.SrcPos[k+1:]...)
	}
	p.Blocks = append(p.Blocks, cont)

	// The caller's out-edges of bid now leave the continuation.
	for _, s := range b.Succs() {
		key := [2]ir.BlockID{bid, s}
		if wt, ok := w[key]; ok {
			w[[2]ir.BlockID{contID, s}] += wt
			delete(w, key)
		}
	}

	// Truncate the call block and bind arguments.
	b.Instrs = b.Instrs[:k]
	if hasPos {
		b.SrcPos = b.SrcPos[:k]
	}
	for i, a := range call.Args {
		b.Instrs = append(b.Instrs, ir.StoreVar{Name: rename[callee.Params[i]], Src: a})
		if hasPos {
			b.SrcPos = append(b.SrcPos, callPos)
		}
	}
	entry := base + callee.Entry
	b.Term = ir.Jmp{Target: entry}
	w[[2]ir.BlockID{bid, entry}] = siteW

	// Copy the callee body; return blocks' weights decide the flow carried
	// back into the continuation.
	cbw := blockWeights(callee, calleeW)
	for _, cb := range callee.Blocks {
		nb := &cfg.Block{
			ID:     base + cb.ID,
			Label:  cb.Label + suffix,
			Instrs: make([]ir.Instr, 0, len(cb.Instrs)+1),
		}
		for _, in := range cb.Instrs {
			nb.Instrs = append(nb.Instrs, remapInstr(in, rename, tempBase))
		}
		if len(cb.SrcPos) > 0 {
			nb.SrcPos = append([]ir.Pos(nil), cb.SrcPos...)
		}
		switch t := cb.Term.(type) {
		case ir.Jmp:
			nb.Term = ir.Jmp{Target: base + t.Target}
		case ir.Br:
			nb.Term = ir.Br{Cond: t.Cond + tempBase, True: base + t.True, False: base + t.False}
		case ir.Ret:
			if call.Dst >= 0 && t.Val >= 0 {
				nb.Instrs = append(nb.Instrs, ir.Mov{Dst: call.Dst, Src: t.Val + tempBase})
				if len(nb.SrcPos) > 0 {
					nb.SrcPos = append(nb.SrcPos, callPos)
				}
			}
			nb.Term = ir.Jmp{Target: contID}
			w[[2]ir.BlockID{base + cb.ID, contID}] += cbw[cb.ID] * siteW
		default:
			// inlinableCallee rejected Halt; nothing else exists.
			panic("compile: inline: unexpected terminator")
		}
		p.Blocks = append(p.Blocks, nb)
	}
	for _, e := range callee.Edges() {
		w[[2]ir.BlockID{base + e.From, base + e.To}] = calleeW[[2]ir.BlockID{e.From, e.To}] * siteW
	}
}

// remapInstr rewrites one callee instruction for splicing into the caller:
// temps shift by tempBase, frame names go through the alias table (globals
// are absent from it and pass through untouched).
func remapInstr(in ir.Instr, rename map[string]string, tempBase ir.Temp) ir.Instr {
	rn := func(n string) string {
		if nn, ok := rename[n]; ok {
			return nn
		}
		return n
	}
	rt := func(t ir.Temp) ir.Temp {
		if t < 0 {
			return t
		}
		return t + tempBase
	}
	switch v := in.(type) {
	case ir.Const:
		v.Dst = rt(v.Dst)
		return v
	case ir.Mov:
		v.Dst, v.Src = rt(v.Dst), rt(v.Src)
		return v
	case ir.Bin:
		v.Dst, v.A, v.B = rt(v.Dst), rt(v.A), rt(v.B)
		return v
	case ir.Un:
		v.Dst, v.A = rt(v.Dst), rt(v.A)
		return v
	case ir.LoadVar:
		v.Dst, v.Name = rt(v.Dst), rn(v.Name)
		return v
	case ir.StoreVar:
		v.Src, v.Name = rt(v.Src), rn(v.Name)
		return v
	case ir.LoadIndex:
		v.Dst, v.Idx, v.Array = rt(v.Dst), rt(v.Idx), rn(v.Array)
		return v
	case ir.StoreIndex:
		v.Idx, v.Src, v.Array = rt(v.Idx), rt(v.Src), rn(v.Array)
		return v
	case ir.Builtin:
		v.Dst = rt(v.Dst)
		args := make([]ir.Temp, len(v.Args))
		for i, a := range v.Args {
			args[i] = rt(a)
		}
		v.Args = args
		return v
	case ir.Call:
		// inlinableCallee rejected callees with calls.
		panic("compile: inline: call in leaf callee")
	}
	panic(fmt.Sprintf("compile: inline: unhandled instruction %T", in))
}
