// Package compile is the MiniC compiler backend: it lowers checked ASTs to
// CFG form (package cfg/ir), runs light cleanup passes, and generates M16
// machine code under a chosen basic-block layout, optionally inserting
// profiling instrumentation (procedure-boundary timestamps for Code
// Tomography, or per-arc counters for the full-profiling baseline).
//
// The backend also emits the static timing metadata (per-block cycle costs
// and per-edge penalty descriptors) that the tomography estimator's Markov
// model is built from. Both the metadata and the simulator derive their
// numbers from the same isa.CostModel, which is the property that makes
// end-to-end durations invertible.
package compile

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/minic"
)

// lowerer lowers one function to a cfg.Proc.
type lowerer struct {
	file   *minic.File
	proc   *cfg.Proc
	cur    *cfg.Block
	nTemp  int
	breaks []ir.BlockID // innermost-last break targets
	conts  []ir.BlockID // innermost-last continue targets
	// pos is the source position of the statement currently being lowered;
	// emit stamps it onto each instruction (cfg.Block.SrcPos) so CFG-level
	// analyses can report file:line diagnostics.
	pos ir.Pos
}

// Lower converts a checked MiniC file into CFG form. It assumes
// minic.Check has passed; violations found here indicate compiler bugs and
// are returned as errors.
func Lower(f *minic.File) (*cfg.Program, error) {
	prog := &cfg.Program{GlobalArrays: make(map[string]int)}
	for _, g := range f.Globals {
		if g.ArrayLen > 0 {
			prog.GlobalArrays[g.Name] = g.ArrayLen
			continue
		}
		prog.Globals = append(prog.Globals, g.Name)
		if g.Init != nil {
			v, err := minic.EvalConst(g.Init)
			if err != nil {
				return nil, err
			}
			if v != 0 {
				prog.GlobalInits = append(prog.GlobalInits, cfg.GlobalInit{Name: g.Name, Val: v})
			}
		}
	}
	for _, fn := range f.Funcs {
		p, err := lowerFunc(f, fn)
		if err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, p)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compile: lowering produced invalid CFG: %w", err)
	}
	return prog, nil
}

func lowerFunc(file *minic.File, fn *minic.FuncDecl) (*cfg.Proc, error) {
	l := &lowerer{
		file: file,
		proc: &cfg.Proc{
			Name:   fn.Name,
			Params: append([]string(nil), fn.Params...),
			HasRet: fn.HasRet,
			Arrays: make(map[string]int),
		},
	}
	entry := l.newBlock("entry")
	l.proc.Entry = entry.ID
	l.cur = entry

	if err := l.block(fn.Body); err != nil {
		return nil, err
	}
	// Implicit void return at the end (checker guarantees value-returning
	// functions never reach here on a live path).
	if l.cur.Term == nil {
		l.cur.Term = ir.Ret{Val: -1}
	}
	l.proc.NumTemp = l.nTemp
	removeUnreachable(l.proc)
	threadJumps(l.proc)
	return l.proc, nil
}

func (l *lowerer) newBlock(label string) *cfg.Block {
	b := &cfg.Block{ID: ir.BlockID(len(l.proc.Blocks)), Label: label}
	l.proc.Blocks = append(l.proc.Blocks, b)
	return b
}

func (l *lowerer) newTemp() ir.Temp {
	t := ir.Temp(l.nTemp)
	l.nTemp++
	return t
}

// emit appends an instruction to the current block. Emitting after the
// block is terminated targets an unreachable continuation block, which the
// cleanup pass removes.
func (l *lowerer) emit(in ir.Instr) {
	if l.cur.Term != nil {
		l.cur = l.newBlock("dead")
	}
	l.cur.Instrs = append(l.cur.Instrs, in)
	l.cur.SrcPos = append(l.cur.SrcPos, l.pos)
}

// seal terminates the current block and switches to next.
func (l *lowerer) seal(t ir.Terminator, next *cfg.Block) {
	if l.cur.Term == nil {
		l.cur.Term = t
	}
	l.cur = next
}

func (l *lowerer) block(b *minic.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// stmtPos returns the source position of a statement.
func stmtPos(s minic.Stmt) ir.Pos {
	var p minic.Pos
	switch st := s.(type) {
	case *minic.BlockStmt:
		p = st.Pos
	case *minic.DeclStmt:
		p = st.Decl.Pos
	case *minic.AssignStmt:
		p = st.Pos
	case *minic.IfStmt:
		p = st.Pos
	case *minic.WhileStmt:
		p = st.Pos
	case *minic.ForStmt:
		p = st.Pos
	case *minic.ReturnStmt:
		p = st.Pos
	case *minic.BreakStmt:
		p = st.Pos
	case *minic.ContinueStmt:
		p = st.Pos
	case *minic.ExprStmt:
		p = st.Pos
	}
	return ir.Pos{Line: p.Line, Col: p.Col}
}

func (l *lowerer) stmt(s minic.Stmt) error {
	if p := stmtPos(s); p.Known() {
		l.pos = p
	}
	switch st := s.(type) {
	case *minic.BlockStmt:
		return l.block(st)

	case *minic.DeclStmt:
		d := st.Decl
		if d.ArrayLen > 0 {
			l.proc.Arrays[d.Name] = d.ArrayLen
			return nil
		}
		l.proc.Locals = append(l.proc.Locals, d.Name)
		if d.Init != nil {
			t, err := l.expr(d.Init)
			if err != nil {
				return err
			}
			l.emit(ir.StoreVar{Name: d.Name, Src: t})
		}
		return nil

	case *minic.AssignStmt:
		v, err := l.expr(st.Value)
		if err != nil {
			return err
		}
		if st.Index == nil {
			l.emit(ir.StoreVar{Name: st.Name, Src: v})
			return nil
		}
		idx, err := l.expr(st.Index)
		if err != nil {
			return err
		}
		l.emit(ir.StoreIndex{Array: st.Name, Idx: idx, Src: v})
		return nil

	case *minic.IfStmt:
		return l.ifStmt(st)

	case *minic.WhileStmt:
		return l.loopStmt(st.Cond, nil, st.Body)

	case *minic.ForStmt:
		if st.Init != nil {
			if err := l.stmt(st.Init); err != nil {
				return err
			}
		}
		return l.loopStmt(st.Cond, st.Post, st.Body)

	case *minic.ReturnStmt:
		val := ir.Temp(-1)
		if st.Value != nil {
			t, err := l.expr(st.Value)
			if err != nil {
				return err
			}
			val = t
		}
		l.seal(ir.Ret{Val: val}, l.newBlock("afterret"))
		return nil

	case *minic.BreakStmt:
		if len(l.breaks) == 0 {
			return fmt.Errorf("compile: break outside loop escaped the checker")
		}
		l.seal(ir.Jmp{Target: l.breaks[len(l.breaks)-1]}, l.newBlock("afterbreak"))
		return nil

	case *minic.ContinueStmt:
		if len(l.conts) == 0 {
			return fmt.Errorf("compile: continue outside loop escaped the checker")
		}
		l.seal(ir.Jmp{Target: l.conts[len(l.conts)-1]}, l.newBlock("aftercontinue"))
		return nil

	case *minic.ExprStmt:
		call, ok := st.X.(*minic.CallExpr)
		if !ok {
			return fmt.Errorf("compile: non-call expression statement escaped the checker")
		}
		_, err := l.call(call, false)
		return err
	}
	return fmt.Errorf("compile: unknown statement %T", s)
}

func (l *lowerer) ifStmt(st *minic.IfStmt) error {
	// Constant condition folds to a straight jump.
	if v, err := minic.EvalConst(st.Cond); err == nil {
		if v != 0 {
			return l.block(st.Then)
		}
		if st.Else != nil {
			return l.block(st.Else)
		}
		return nil
	}
	cond, err := l.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := l.newBlock("then")
	var elseB *cfg.Block
	join := l.newBlock("join")
	if st.Else != nil {
		elseB = l.newBlock("else")
		l.seal(ir.Br{Cond: cond, True: thenB.ID, False: elseB.ID}, thenB)
	} else {
		l.seal(ir.Br{Cond: cond, True: thenB.ID, False: join.ID}, thenB)
	}
	if err := l.block(st.Then); err != nil {
		return err
	}
	l.seal(ir.Jmp{Target: join.ID}, join)
	if elseB != nil {
		l.cur = elseB
		if err := l.block(st.Else); err != nil {
			return err
		}
		l.seal(ir.Jmp{Target: join.ID}, join)
	}
	l.cur = join
	return nil
}

// loopStmt lowers while (post == nil) and for loops.
func (l *lowerer) loopStmt(cond minic.Expr, post *minic.AssignStmt, body *minic.BlockStmt) error {
	header := l.newBlock("loophead")
	bodyB := l.newBlock("loopbody")
	exit := l.newBlock("loopexit")
	contTarget := header
	if post != nil {
		contTarget = l.newBlock("looppost")
	}

	l.seal(ir.Jmp{Target: header.ID}, header)

	// Header: evaluate the condition.
	constCond := -1
	if cond == nil {
		constCond = 1
	} else if v, err := minic.EvalConst(cond); err == nil {
		if v != 0 {
			constCond = 1
		} else {
			constCond = 0
		}
	}
	switch constCond {
	case 1:
		l.seal(ir.Jmp{Target: bodyB.ID}, bodyB)
	case 0:
		l.seal(ir.Jmp{Target: exit.ID}, bodyB)
	default:
		c, err := l.expr(cond)
		if err != nil {
			return err
		}
		l.seal(ir.Br{Cond: c, True: bodyB.ID, False: exit.ID}, bodyB)
	}

	l.cur = bodyB
	l.breaks = append(l.breaks, exit.ID)
	l.conts = append(l.conts, contTarget.ID)
	err := l.block(body)
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.conts = l.conts[:len(l.conts)-1]
	if err != nil {
		return err
	}
	l.seal(ir.Jmp{Target: contTarget.ID}, exit)

	if post != nil {
		l.cur = contTarget
		if err := l.stmt(post); err != nil {
			return err
		}
		l.seal(ir.Jmp{Target: header.ID}, exit)
	}
	l.cur = exit
	return nil
}

// expr lowers an expression, returning the temp holding its value.
func (l *lowerer) expr(e minic.Expr) (ir.Temp, error) {
	// Fold whole constant subtrees first.
	if v, err := minic.EvalConst(e); err == nil {
		t := l.newTemp()
		l.emit(ir.Const{Dst: t, Val: int(int16(uint16(v)))})
		return t, nil
	}
	switch ex := e.(type) {
	case *minic.NumLit:
		t := l.newTemp()
		l.emit(ir.Const{Dst: t, Val: ex.Val})
		return t, nil

	case *minic.VarRef:
		t := l.newTemp()
		l.emit(ir.LoadVar{Dst: t, Name: ex.Name})
		return t, nil

	case *minic.IndexExpr:
		idx, err := l.expr(ex.Index)
		if err != nil {
			return 0, err
		}
		t := l.newTemp()
		l.emit(ir.LoadIndex{Dst: t, Array: ex.Name, Idx: idx})
		return t, nil

	case *minic.UnExpr:
		x, err := l.expr(ex.X)
		if err != nil {
			return 0, err
		}
		t := l.newTemp()
		switch ex.Op {
		case minic.Minus:
			l.emit(ir.Un{Dst: t, Op: ir.OpNeg, A: x})
		case minic.Not:
			l.emit(ir.Un{Dst: t, Op: ir.OpNot, A: x})
		case minic.Tilde:
			// ~x lowered as x ^ 0xFFFF.
			m := l.newTemp()
			l.emit(ir.Const{Dst: m, Val: -1})
			l.emit(ir.Bin{Dst: t, Op: ir.OpXor, A: x, B: m})
		default:
			return 0, fmt.Errorf("compile: unknown unary op %v", ex.Op)
		}
		return t, nil

	case *minic.BinExpr:
		if ex.Op == minic.AndAnd || ex.Op == minic.OrOr {
			return l.shortCircuit(ex)
		}
		a, err := l.expr(ex.L)
		if err != nil {
			return 0, err
		}
		b, err := l.expr(ex.R)
		if err != nil {
			return 0, err
		}
		op, ok := binOpFor(ex.Op)
		if !ok {
			return 0, fmt.Errorf("compile: unknown binary op %v", ex.Op)
		}
		t := l.newTemp()
		l.emit(ir.Bin{Dst: t, Op: op, A: a, B: b})
		return t, nil

	case *minic.CallExpr:
		return l.call(ex, true)
	}
	return 0, fmt.Errorf("compile: unknown expression %T", e)
}

func binOpFor(k minic.Kind) (ir.Op, bool) {
	m := map[minic.Kind]ir.Op{
		minic.Plus: ir.OpAdd, minic.Minus: ir.OpSub, minic.Star: ir.OpMul,
		minic.Slash: ir.OpDiv, minic.Percent: ir.OpMod,
		minic.Amp: ir.OpAnd, minic.Pipe: ir.OpOr, minic.Caret: ir.OpXor,
		minic.Shl: ir.OpShl, minic.Shr: ir.OpShr,
		minic.Lt: ir.OpLt, minic.Le: ir.OpLe, minic.Gt: ir.OpGt,
		minic.Ge: ir.OpGe, minic.EqEq: ir.OpEq, minic.NotEq: ir.OpNe,
	}
	op, ok := m[k]
	return op, ok
}

// shortCircuit lowers && and || with proper control flow, producing 0/1.
// Temps are addressable frame slots in this backend, so assigning the
// result temp from two predecessor blocks is well-defined without phis.
func (l *lowerer) shortCircuit(ex *minic.BinExpr) (ir.Temp, error) {
	res := l.newTemp()
	a, err := l.expr(ex.L)
	if err != nil {
		return 0, err
	}
	evalR := l.newBlock("sc_rhs")
	short := l.newBlock("sc_short")
	join := l.newBlock("sc_join")

	if ex.Op == minic.AndAnd {
		// a false → result 0; else result = (b != 0).
		l.seal(ir.Br{Cond: a, True: evalR.ID, False: short.ID}, evalR)
	} else {
		// a true → result 1; else result = (b != 0).
		l.seal(ir.Br{Cond: a, True: short.ID, False: evalR.ID}, evalR)
	}

	l.cur = evalR
	b, err := l.expr(ex.R)
	if err != nil {
		return 0, err
	}
	zero := l.newTemp()
	l.emit(ir.Const{Dst: zero, Val: 0})
	l.emit(ir.Bin{Dst: res, Op: ir.OpNe, A: b, B: zero})
	l.seal(ir.Jmp{Target: join.ID}, short)

	l.cur = short
	shortVal := 0
	if ex.Op == minic.OrOr {
		shortVal = 1
	}
	l.emit(ir.Const{Dst: res, Val: shortVal})
	l.seal(ir.Jmp{Target: join.ID}, join)

	l.cur = join
	return res, nil
}

func (l *lowerer) call(ex *minic.CallExpr, needValue bool) (ir.Temp, error) {
	args := make([]ir.Temp, 0, len(ex.Args))
	for _, a := range ex.Args {
		t, err := l.expr(a)
		if err != nil {
			return 0, err
		}
		args = append(args, t)
	}
	dst := ir.Temp(-1)
	if needValue {
		dst = l.newTemp()
	}
	if _, isBuiltin := minic.Builtins[ex.Name]; isBuiltin {
		l.emit(ir.Builtin{Dst: dst, Name: ex.Name, Args: args})
	} else {
		l.emit(ir.Call{Dst: dst, Fn: ex.Name, Args: args})
	}
	return dst, nil
}
