package compile

// Tests for the static-bounds layer: trip-count inference over real loop
// shapes, soundness of the WCET and stack bounds against actual execution
// (property-tested over random programs and the examples corpus), and
// behavioral equivalence of dead-branch elimination.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"codetomo/internal/analysis"
	"codetomo/internal/minic"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
)

// buildOpts are the standard full-optimization build settings used by the
// bounds tests.
func fullOpts(mode Mode) Options {
	return Options{
		Instrument:   mode,
		VerifyIR:     true,
		FuseCompares: true,
		RotateLoops:  true,
	}
}

func TestTripBounds(t *testing.T) {
	// Each program has exactly one loop in main; want is the maximum
	// number of back-edge traversals (0 = expect no provable bound).
	cases := []struct {
		name    string
		body    string // statements inside main
		want    uint64
		exact   bool // want is the exact inferred bound, not just a cap
		bounded bool
	}{
		{name: "for-up", body: `
			var i int;
			var s int = 0;
			for (i = 0; i < 10; i = i + 1) { s = s + i; }
			debug(s);`, want: 10, bounded: true},
		{name: "for-up-le", body: `
			var i int;
			var s int = 0;
			for (i = 0; i <= 10; i = i + 1) { s = s + i; }
			debug(s);`, want: 11, bounded: true},
		{name: "for-down", body: `
			var i int;
			var s int = 0;
			for (i = 9; i > 0; i = i - 1) { s = s + i; }
			debug(s);`, want: 9, bounded: true},
		{name: "for-down-ge", body: `
			var i int;
			var s int = 0;
			for (i = 9; i >= 0; i = i - 1) { s = s + i; }
			debug(s);`, want: 10, bounded: true},
		{name: "while-ne", body: `
			var i int = 0;
			var s int = 0;
			while (i != 8) { s = s + i; i = i + 1; }
			debug(s);`, want: 8, bounded: true},
		{name: "step-3", body: `
			var i int;
			var s int = 0;
			for (i = 0; i < 10; i = i + 3) { s = s + i; }
			debug(s);`, want: 4, bounded: true},
		{name: "limit-from-sense", body: `
			var i int;
			var n int = sense();
			var s int = 0;
			for (i = 0; i < n; i = i + 1) { s = s + 1; }
			debug(s);`, want: 1023, bounded: true},
		{name: "counter-from-sense", body: `
			var i int = sense();
			var s int = 0;
			for (; i < 2000; i = i + 1) { s = s + 1; }
			debug(s);`, want: 2000, bounded: true},
		{name: "data-dependent-exit", body: `
			var i int = 0;
			while (sense() < 512) { i = i + 1; }
			debug(i);`, want: 0, bounded: false},
		{name: "double-update", body: `
			var i int = 0;
			var s int = 0;
			while (i < 10) { i = i + 1; s = s + i; i = i + 1; }
			debug(s);`, want: 0, bounded: false},
	}
	for _, tc := range cases {
		for _, rotate := range []bool{false, true} {
			name := tc.name
			if rotate {
				name += "/rotated"
			}
			t.Run(name, func(t *testing.T) {
				src := "func main() {\n" + tc.body + "\n}\n"
				opts := fullOpts(ModeNone)
				opts.RotateLoops = rotate
				out, err := Build(src, opts)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				sb, err := out.ProcStaticBound("main")
				if err != nil {
					t.Fatalf("bound: %v", err)
				}
				var loops int
				var got analysis.TripBound
				for _, tb := range sb.Trips {
					loops++
					got = tb
				}
				if loops != 1 {
					// Rotation can simplify a loop away entirely (e.g. a
					// resolved guard leaves a straight line); only a
					// genuinely missing loop is a failure.
					if loops == 0 && tc.bounded {
						if !sb.Bounded {
							t.Fatalf("no loop found and proc unbounded")
						}
						return // loop was fully resolved away: trivially bounded
					}
					t.Fatalf("found %d loops, want 1", loops)
				}
				if got.Bounded != tc.bounded {
					t.Fatalf("bounded = %v, want %v (bound %d)", got.Bounded, tc.bounded, got.MaxBackEdges)
				}
				if tc.bounded && got.MaxBackEdges > tc.want {
					t.Errorf("trip bound %d exceeds expected max %d", got.MaxBackEdges, tc.want)
				}
				if tc.bounded && sb.Bounded == false {
					t.Errorf("loop bounded but procedure WCET unbounded: %+v", sb.WCET)
				}
			})
		}
	}
}

// runWithBudget steps the machine to completion, tracking the minimum
// stack pointer ever observed.
func runWithBudget(m *mote.Machine, maxCycles uint64) (minSP int32, err error) {
	minSP = m.SP()
	for !m.Halted() {
		if m.Stats().Cycles > maxCycles {
			return minSP, fmt.Errorf("cycle budget exhausted")
		}
		if err := m.Step(); err != nil {
			return minSP, err
		}
		if sp := m.SP(); sp < minSP {
			minSP = sp
		}
	}
	return minSP, nil
}

// checkStaticBounds builds src with full optimizations plus timestamps at
// TickDiv 1, runs it, and asserts that no measured exclusive interval
// exceeds the procedure's static WCET and that the observed stack depth
// stays within the static stack bound. It is the soundness oracle shared
// by the property test, the fuzz target, and the corpus test.
func checkStaticBounds(t *testing.T, tag, src string, senseVals, randVals []uint16) {
	t.Helper()
	for _, dbe := range []bool{false, true} {
		opts := fullOpts(ModeTimestamps)
		opts.DeadBranchElim = dbe
		out, err := Build(src, opts)
		if err != nil {
			t.Fatalf("%s: build(dbe=%v): %v\n%s", tag, dbe, err, src)
		}
		bounds, err := out.StaticBounds()
		if err != nil {
			t.Fatalf("%s: bounds: %v", tag, err)
		}
		stack := analysis.StackBounds(out.CFG)

		cfgM := mote.DefaultConfig()
		cfgM.TickDiv = 1
		si, ri := 0, 0
		cfgM.Sensor = scripted{senseVals, &si}
		cfgM.Entropy = scripted{randVals, &ri}
		m := mote.New(out.Code, cfgM)
		minSP, err := runWithBudget(m, 200_000_000)
		if err != nil {
			t.Fatalf("%s: run(dbe=%v): %v\n%s", tag, dbe, err, src)
		}

		// Stack soundness: observed depth vs the static bound for main
		// (the stub calls main; everything hangs off it).
		mb := stack["main"]
		if !mb.Recursive {
			observed := int(cfgM.RAMWords) - int(minSP)
			if observed > mb.Words {
				t.Errorf("%s: observed stack depth %d words exceeds static bound %d\n%s",
					tag, observed, mb.Words, src)
			}
		}

		// Timing soundness: every completed exclusive interval vs the
		// procedure's WCET. At TickDiv 1 ticks are cycles exactly.
		ivs, err := trace.Extract(m.Trace())
		if err != nil {
			t.Fatalf("%s: trace: %v", tag, err)
		}
		for _, iv := range ivs {
			pm := out.Meta.Procs[iv.ProcIndex]
			sb := bounds[pm.Name]
			if !sb.Bounded {
				continue
			}
			if excl := iv.ExclusiveTicks(); excl > sb.Cycles {
				t.Errorf("%s: %s interval of %d cycles exceeds static WCET %d (dbe=%v)\n%s",
					tag, pm.Name, excl, sb.Cycles, dbe, src)
			}
		}
	}
}

// peripheralScripts returns deterministic sensor/entropy sequences for a
// seed, shared across build variants.
func peripheralScripts(seed int64) (senseVals, randVals []uint16) {
	rng := stats.NewRNG(9000 + seed)
	senseVals = make([]uint16, 64)
	randVals = make([]uint16, 64)
	for i := range senseVals {
		senseVals[i] = uint16(rng.Intn(1 << 16)) // pre-clamp: the ADC rails it
		randVals[i] = uint16(rng.Intn(1 << 16))
	}
	return senseVals, randVals
}

func TestStaticBoundsProperty(t *testing.T) {
	seeds := int64(500)
	if testing.Short() {
		seeds = 50
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := generateProgram(seed)
		senseVals, randVals := peripheralScripts(seed)
		checkStaticBounds(t, fmt.Sprintf("seed %d", seed), src, senseVals, randVals)
		if t.Failed() {
			return
		}
	}
}

// TestStaticBoundsExamples checks the soundness property over every
// program in the examples/minic corpus that runs to completion.
func TestStaticBoundsExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "minic", "*.mc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus: %v (%d files)", err, len(files))
	}
	for _, path := range files {
		srcB, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcB)
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			f, err := minic.Parse(src)
			if err != nil {
				t.Skipf("parse: %v", err)
			}
			if err := minic.Check(f); err != nil {
				t.Skipf("check: %v", err)
			}
			opts := fullOpts(ModeTimestamps)
			out, err := Build(src, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			bounds, err := out.StaticBounds()
			if err != nil {
				t.Fatalf("bounds: %v", err)
			}
			cfgM := mote.DefaultConfig()
			cfgM.TickDiv = 1
			si, ri := 0, 0
			sv, rv := peripheralScripts(1)
			cfgM.Sensor = scripted{sv, &si}
			cfgM.Entropy = scripted{rv, &ri}
			m := mote.New(out.Code, cfgM)
			// Event-loop programs never halt: cap the run and check the
			// intervals completed so far.
			_ = m.Run(2_000_000)
			ivs, err := trace.Extract(m.Trace())
			if err != nil {
				// A capped run can end mid-procedure; drop the open tail
				// by ignoring extraction errors on unbalanced logs.
				return
			}
			for _, iv := range ivs {
				pm := out.Meta.Procs[iv.ProcIndex]
				sb := bounds[pm.Name]
				if !sb.Bounded {
					continue
				}
				if excl := iv.ExclusiveTicks(); excl > sb.Cycles {
					t.Errorf("%s: interval of %d cycles exceeds static WCET %d",
						pm.Name, excl, sb.Cycles)
				}
			}
		})
	}
}

// TestDeadBranchElimResolves checks the pass actually fires: a branch on a
// sense() reading compared against a value beyond the ADC rail must fold.
func TestDeadBranchElimResolves(t *testing.T) {
	src := `
func main() {
	var v int = sense();
	if (v < 2000) {
		debug(1);
	} else {
		debug(2);
	}
	debug(v);
}
`
	plain, err := Build(src, fullOpts(ModeNone))
	if err != nil {
		t.Fatal(err)
	}
	opts := fullOpts(ModeNone)
	opts.DeadBranchElim = true
	elim, err := Build(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(elim.Code) >= len(plain.Code) {
		t.Errorf("elimination did not shrink the binary: %d vs %d instrs", len(elim.Code), len(plain.Code))
	}
	// The resolved program must still print 1 then v.
	cfgM := mote.DefaultConfig()
	i := 0
	cfgM.Sensor = scripted{[]uint16{700}, &i}
	m := mote.New(elim.Code, cfgM)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := []uint16{1, 700}
	got := m.DebugOutput()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("debug output = %v, want %v", got, want)
	}
}

func FuzzStaticBounds(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(1234))
	f.Fuzz(func(t *testing.T, seed int64) {
		src := generateProgram(seed)
		if parsed, err := minic.Parse(src); err != nil || minic.Check(parsed) != nil {
			t.Skip()
		}
		senseVals, randVals := peripheralScripts(seed)
		checkStaticBounds(t, fmt.Sprintf("fuzz seed %d", seed), src, senseVals, randVals)
	})
}
