package compile

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// RotateLoops rewrites every natural loop into bottom-test form: the header
// keeps its role as the entry guard, and a copy of it (the latch test) is
// placed at the bottom so back edges become conditional branches out of the
// loop body. On cores with backward-taken/forward-not-taken prediction this
// is the classical win; it also shortens the hot path by one unconditional
// jump per iteration under most layouts.
//
//	before:  pre → H(test) → {body → H, exit}
//	after:   pre → H(test) → {body → H'(test) → {body, exit}, exit}
//
// Header instructions are duplicated verbatim — each loop test still
// executes exactly once per iteration, so side effects (e.g. a sense() in
// the condition) are preserved.
func RotateLoops(prog *cfg.Program) {
	for _, p := range prog.Procs {
		rotateProc(p)
	}
}

func rotateProc(p *cfg.Proc) {
	// One pass over the loops found on the input CFG: rotation adds
	// blocks but never creates a new rotatable (top-test) loop, so a
	// single pass converges.
	loops := p.NaturalLoops()
	for _, l := range loops {
		h := p.Block(l.Header)
		// Only rotate classic top-test loops: header ends in a
		// conditional branch with one arm inside and one outside the
		// loop. Anything else (e.g. infinite loops, multi-exit headers)
		// is left alone.
		br, ok := h.Term.(ir.Br)
		if !ok {
			continue
		}
		inT, inF := l.Body[br.True], l.Body[br.False]
		if inT == inF {
			continue
		}

		// The latch test: a fresh copy of the header.
		latch := &cfg.Block{
			ID:     ir.BlockID(len(p.Blocks)),
			Label:  h.Label + "_latch",
			Instrs: append([]ir.Instr(nil), h.Instrs...),
			SrcPos: append([]ir.Pos(nil), h.SrcPos...),
			Term:   br,
		}
		p.Blocks = append(p.Blocks, latch)

		// Redirect this loop's back edges to the latch.
		for _, be := range l.BackEdges {
			src := p.Block(be.From)
			src.Term = redirect(src.Term, l.Header, latch.ID)
		}
	}
	removeUnreachable(p)
	threadJumps(p)
}

// redirect rewrites occurrences of old with new in a terminator's targets.
func redirect(t ir.Terminator, old, new ir.BlockID) ir.Terminator {
	switch tt := t.(type) {
	case ir.Jmp:
		if tt.Target == old {
			return ir.Jmp{Target: new}
		}
	case ir.Br:
		out := tt
		if out.True == old {
			out.True = new
		}
		if out.False == old {
			out.False = new
		}
		return out
	}
	return t
}
