package compile

import (
	"strings"
	"testing"

	"codetomo/internal/analysis"
	"codetomo/internal/ir"
	"codetomo/internal/minic"
)

func TestVerifyAcceptsAllPasses(t *testing.T) {
	src := `
var g int = 3;
var buf[4] int;
func helper(a int, b int) int {
	var acc int = a;
	while (acc < b) {
		acc = acc + (b & 7) + 1;
	}
	return acc;
}
func main() {
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		buf[i & 3] = helper(i, g);
		if (buf[i & 3] > 12 && i % 2 == 0) {
			send(buf[i & 3]);
		} else {
			led(i & 1);
		}
	}
	debug(g);
}`
	for _, opts := range []Options{
		{VerifyIR: true},
		{VerifyIR: true, FuseCompares: true},
		{VerifyIR: true, RotateLoops: true},
		{VerifyIR: true, FuseCompares: true, RotateLoops: true},
		{VerifyIR: true, RotateLoops: true, Instrument: ModeEdgeCounters},
	} {
		if _, err := Build(src, opts); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestVerifyCatchesBrokenPass simulates a buggy peephole that deletes an
// instruction whose result a later block still reads — exactly the class
// of miscompile the inter-pass verifier exists to catch.
func TestVerifyCatchesBrokenPass(t *testing.T) {
	src := `
func main() {
	var x int = 5;
	if (sense() > 2) {
		debug(x + 1);
	} else {
		debug(x - 1);
	}
}`
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(f); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.Verify(prog); err != nil {
		t.Fatalf("fresh lowering does not verify: %v", err)
	}

	// "Optimize away" the branch condition's definition: drop the compare
	// that feeds main's entry-block Br.
	p := prog.Proc("main")
	entry := p.Block(p.Entry)
	br, ok := entry.Term.(ir.Br)
	if !ok {
		t.Fatalf("entry terminator = %T, want Br", entry.Term)
	}
	kept := entry.Instrs[:0]
	var keptPos []ir.Pos
	for i, in := range entry.Instrs {
		if d, defOK := ir.InstrDef(in); defOK && d == br.Cond {
			continue
		}
		kept = append(kept, in)
		keptPos = append(keptPos, entry.InstrPos(i))
	}
	entry.Instrs = kept
	entry.SrcPos = keptPos

	err = analysis.Verify(prog)
	if err == nil {
		t.Fatal("verifier accepted a dropped still-read definition")
	}
	if !strings.Contains(err.Error(), "before any definition") {
		t.Fatalf("unexpected verifier error: %v", err)
	}
}

// TestVerifyCatchesBadCallArity checks the call-signature rules.
func TestVerifyCatchesBadCallArity(t *testing.T) {
	src := `
func f(a int) int { return a + 1; }
func main() { debug(f(2)); }`
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(f); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the call: drop its argument.
	for _, b := range prog.Proc("main").Blocks {
		for i, in := range b.Instrs {
			if c, ok := in.(ir.Call); ok {
				c.Args = nil
				b.Instrs[i] = c
			}
		}
	}
	if err := analysis.Verify(prog); err == nil {
		t.Fatal("verifier accepted a call with wrong arity")
	}
}
