package compile

import (
	"fmt"
	"strings"

	"codetomo/internal/minic"
)

// Build compiles MiniC source text end to end: parse, check, lower,
// generate. It is the entry point the tools and the evaluation harness use.
func Build(src string, opts Options) (*Output, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f); err != nil {
		return nil, err
	}
	prog, err := Lower(f)
	if err != nil {
		return nil, err
	}
	if err := runPasses(prog, opts); err != nil {
		return nil, err
	}
	// The PGO pipeline runs after the deterministic passes so its weights
	// (keyed by the post-pass block IDs an instrumented build exposes)
	// line up with the CFG it transforms.
	if opts.PGO != nil {
		if err := runPGO(prog, &opts); err != nil {
			return nil, err
		}
	}
	return Generate(prog, opts)
}

// Listing renders the generated code as an annotated assembly listing with
// procedure and block boundaries marked.
func (o *Output) Listing() string {
	type mark struct {
		proc  string
		block string
	}
	marks := make(map[int32]mark)
	for _, pm := range o.Meta.Procs {
		p := o.CFG.Proc(pm.Name)
		marks[pm.EntryAddr] = mark{proc: pm.Name}
		for id, addr := range pm.BlockAddr {
			m := marks[addr]
			m.block = fmt.Sprintf("%s/%v (%s)", pm.Name, id, p.Block(id).Label)
			marks[addr] = m
		}
	}
	var b strings.Builder
	for i, in := range o.Code {
		if m, ok := marks[int32(i)]; ok {
			if m.proc != "" {
				fmt.Fprintf(&b, "\n%s:\n", m.proc)
			}
			if m.block != "" {
				fmt.Fprintf(&b, "  .%s:\n", m.block)
			}
		}
		fmt.Fprintf(&b, "%5d: %s\n", i, in)
	}
	return b.String()
}
