package compile

// Differential testing: random MiniC programs are executed both by the
// reference AST interpreter (minic.Interpret) and by the full
// compiler + mote simulator stack, under every backend option combination
// and a hostile block layout. The debug-port outputs must agree exactly.
// This is the strongest whole-compiler correctness check in the suite.

import (
	"fmt"
	"strings"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/minic"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
)

// progGen emits random well-formed, terminating, fault-free MiniC.
type progGen struct {
	rng    *stats.RNG
	b      strings.Builder
	indent int
	vars   []string // scalars in scope (assignable)
	ro     []string // read-only scalars in scope (loop counters)
	nextID int
}

func (g *progGen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *progGen) fresh(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

// expr emits a random expression over the variables in scope.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Float64() < 0.3 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(2000)-1000)
		case 1:
			if len(g.vars) > 0 {
				return g.vars[g.rng.Intn(len(g.vars))]
			}
			return fmt.Sprintf("%d", g.rng.Intn(100))
		case 2:
			if len(g.ro) > 0 {
				return g.ro[g.rng.Intn(len(g.ro))]
			}
			return "sense()"
		default:
			if g.rng.Bernoulli(0.5) {
				return "sense()"
			}
			return "rand()"
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		// Division and modulo only by nonzero constants: the generator
		// must never build a faulting program.
		return fmt.Sprintf("(%s / %d)", g.expr(depth-1), 1+g.rng.Intn(7))
	case 4:
		return fmt.Sprintf("(%s %% %d)", g.expr(depth-1), 1+g.rng.Intn(9))
	case 5:
		ops := []string{"&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(3)], g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s >> %d)", g.expr(depth-1), g.rng.Intn(4))
	case 7:
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), g.rng.Intn(3))
	case 8:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(6)], g.expr(depth-1))
	case 9:
		ops := []string{"&&", "||"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(2)], g.expr(depth-1))
	case 10:
		ops := []string{"-", "!", "~"}
		return fmt.Sprintf("(%s%s)", ops[g.rng.Intn(3)], g.expr(depth-1))
	default:
		// Array access masked into range.
		return fmt.Sprintf("garr[(%s) & 7]", g.expr(depth-1))
	}
}

// stmts emits a random statement sequence.
func (g *progGen) stmts(n, depth int) {
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *progGen) stmt(depth int) {
	choice := g.rng.Intn(10)
	if depth <= 0 && choice >= 6 {
		choice = g.rng.Intn(6)
	}
	switch choice {
	case 0, 1:
		if len(g.vars) > 0 {
			v := g.vars[g.rng.Intn(len(g.vars))]
			g.line("%s = %s;", v, g.expr(2))
			return
		}
		g.line("debug(%s);", g.expr(2))
	case 2:
		g.line("garr[(%s) & 7] = %s;", g.expr(1), g.expr(2))
	case 3:
		g.line("debug(%s);", g.expr(2))
	case 4:
		v := g.fresh("v")
		g.line("var %s int = %s;", v, g.expr(2))
		g.vars = append(g.vars, v)
	case 5:
		g.line("gsum = gsum + %s;", g.expr(1))
	case 6, 7:
		// Variables declared inside a conditional block must not leak
		// into the enclosing scope: a skipped declaration leaves the
		// variable uninitialized, which the language leaves undefined.
		save := len(g.vars)
		g.line("if (%s) {", g.expr(2))
		g.indent++
		g.stmts(1+g.rng.Intn(2), depth-1)
		g.indent--
		g.vars = g.vars[:save]
		if g.rng.Bernoulli(0.5) {
			g.line("} else {")
			g.indent++
			g.stmts(1+g.rng.Intn(2), depth-1)
			g.indent--
			g.vars = g.vars[:save]
		}
		g.line("}")
	default:
		// Bounded counting loop; the counter is read-only inside.
		c := g.fresh("i")
		save := len(g.vars)
		g.line("var %s int;", c)
		g.line("for (%s = 0; %s < %d; %s = %s + 1) {", c, c, 1+g.rng.Intn(6), c, c)
		g.ro = append(g.ro, c)
		g.indent++
		g.stmts(1+g.rng.Intn(2), depth-1)
		g.indent--
		g.ro = g.ro[:len(g.ro)-1]
		g.vars = g.vars[:save]
		g.line("}")
	}
}

// generate returns a complete random program.
func generateProgram(seed int64) string {
	g := &progGen{rng: stats.NewRNG(seed)}
	g.line("var gsum int = %d;", g.rng.Intn(100))
	g.line("var garr[8] int;")
	g.line("")

	// A helper function with parameters and a guaranteed return.
	g.line("func helper(a int, b int) int {")
	g.indent++
	g.vars = []string{"a", "b"}
	g.stmts(2+g.rng.Intn(3), 2)
	g.line("return %s;", g.expr(2))
	g.indent--
	g.line("}")
	g.line("")

	g.line("func main() {")
	g.indent++
	g.vars = nil
	g.stmts(3+g.rng.Intn(4), 2)
	g.line("debug(helper(%s, %s));", g.expr(1), g.expr(1))
	g.stmts(2, 2)
	g.line("debug(gsum);")
	g.indent--
	g.line("}")
	return g.b.String()
}

// scripted replays a fixed value sequence (shared by both executions).
type scripted struct {
	vals []uint16
	i    *int
}

func (s scripted) Next() uint16 {
	v := s.vals[*s.i%len(s.vals)]
	*s.i++
	return v
}

func TestDifferentialRandomPrograms(t *testing.T) {
	// VerifyIR is on everywhere: each random program re-verifies the IR
	// after every pass, making this a miscompile detector as well as a
	// differential tester.
	variants := []Options{
		{VerifyIR: true},
		{FuseCompares: true, VerifyIR: true},
		{RotateLoops: true, VerifyIR: true},
		{FuseCompares: true, RotateLoops: true, VerifyIR: true},
		{Instrument: ModeTimestamps, FuseCompares: true, VerifyIR: true},
		{DeadBranchElim: true, VerifyIR: true},
		{DeadBranchElim: true, FuseCompares: true, RotateLoops: true, VerifyIR: true},
		{Instrument: ModeEdgeCounters, VerifyIR: true},
	}
	seeds := int64(60)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := generateProgram(seed)
		f, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated invalid program: %v\n%s", seed, err, src)
		}
		if err := minic.Check(f); err != nil {
			t.Fatalf("seed %d: generated ill-typed program: %v\n%s", seed, err, src)
		}

		// Shared deterministic peripheral sequences.
		rng := stats.NewRNG(1000 + seed)
		senseVals := make([]uint16, 64)
		randVals := make([]uint16, 64)
		for i := range senseVals {
			senseVals[i] = uint16(rng.Intn(1024))
			randVals[i] = uint16(rng.Intn(1 << 16))
		}

		// Reference run.
		var want []uint16
		si, ri := 0, 0
		env := minic.Env{
			Sense: scripted{senseVals, &si}.Next,
			Rand:  scripted{randVals, &ri}.Next,
			Debug: func(v uint16) { want = append(want, v) },
		}
		if err := minic.Interpret(f, env, 0); err != nil {
			t.Fatalf("seed %d: reference interpreter failed: %v\n%s", seed, err, src)
		}

		for vi, opts := range variants {
			out, err := Build(src, opts)
			if err != nil {
				t.Fatalf("seed %d variant %d: build: %v\n%s", seed, vi, err, src)
			}
			// Add a hostile layout on top of the last variant.
			if vi == len(variants)-1 {
				layouts := make(map[string][]ir.BlockID)
				for _, p := range out.CFG.Procs {
					order := []ir.BlockID{p.Entry}
					for i := len(p.Blocks) - 1; i >= 0; i-- {
						if ir.BlockID(i) != p.Entry {
							order = append(order, ir.BlockID(i))
						}
					}
					layouts[p.Name] = order
				}
				opts.Layouts = layouts
				out, err = Build(src, opts)
				if err != nil {
					t.Fatalf("seed %d: hostile layout build: %v", seed, err)
				}
			}
			cfgM := mote.DefaultConfig()
			s2, r2 := 0, 0
			cfgM.Sensor = scripted{senseVals, &s2}
			cfgM.Entropy = scripted{randVals, &r2}
			m := mote.New(out.Code, cfgM)
			if err := m.Run(200_000_000); err != nil {
				t.Fatalf("seed %d variant %d: run: %v\n%s\n%s", seed, vi, err, src, out.Listing())
			}
			got := m.DebugOutput()
			if len(got) != len(want) {
				t.Fatalf("seed %d variant %d: debug length %d, want %d\n%s", seed, vi, len(got), len(want), src)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d variant %d: debug[%d] = %d, want %d\n%s", seed, vi, i, got[i], want[i], src)
				}
			}
		}
	}
}
