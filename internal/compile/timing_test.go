package compile

import (
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/mote"
	"codetomo/internal/trace"
)

// TestTimingModelMatchesMeasurement locks the central contract of the whole
// reproduction: the static timing model (ProcMeta block costs + edge extras
// + entry overhead + call-site accounting) predicts exactly the exclusive
// durations the trace instrumentation measures, when the timer quantization
// is disabled (TickDiv = 1). Everything the tomography estimator does rests
// on this equality.
func TestTimingModelMatchesMeasurement(t *testing.T) {
	src := `
var g int = 7;

func leaf() int {
	var x int;
	x = g * 3 + 1;
	return x - 2;
}

func middle(a int) int {
	var y int;
	y = leaf() + a;
	y = y + leaf();
	return y;
}

func main() {
	debug(middle(5));
	debug(leaf());
}`
	out, err := Build(src, Options{Instrument: ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	cfg.TickDiv = 1
	m := mote.New(out.Code, cfg)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	byProc := trace.ExclusiveByProc(ivs)

	pred := cfg.Predictor
	for _, pm := range out.Meta.Procs {
		p := out.CFG.Proc(pm.Name)
		// These procedures are straight-line: the only path is the block
		// sequence entry→...→ret following unconditional edges.
		path := []ir.BlockID{p.Entry}
		for {
			succs := p.Block(path[len(path)-1]).Succs()
			if len(succs) == 0 {
				break
			}
			if len(succs) != 1 {
				t.Fatalf("%s is not straight-line", pm.Name)
			}
			path = append(path, succs[0])
		}
		want, err := out.Meta.PathCycles(pm, path, pred)
		if err != nil {
			t.Fatal(err)
		}
		samples := byProc[pm.Index]
		if len(samples) == 0 {
			t.Fatalf("no samples for %s", pm.Name)
		}
		for i, got := range samples {
			if got != want {
				t.Fatalf("%s invocation %d: measured %d cycles, model %d\npath %v\nblocks %v\n%s",
					pm.Name, i, got, want, path, pm.BlockCycles, out.Listing())
			}
		}
	}
}

// TestTimingModelWithBranches drives a procedure with a data-dependent
// branch down both sides and checks each measured duration equals the model
// prediction for the corresponding path.
func TestTimingModelWithBranches(t *testing.T) {
	src := `
func classify(v int) int {
	if (v > 100) {
		return 1;
	}
	return 0;
}

func main() {
	debug(classify(sense()));
	debug(classify(sense()));
}`
	out, err := Build(src, Options{Instrument: ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mote.DefaultConfig()
	cfg.TickDiv = 1
	cfg.Sensor = &seqSource{vals: []uint16{500, 3}} // taken path, then not
	m := mote.New(out.Code, cfg)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["classify"]
	p := out.CFG.Proc("classify")

	// Enumerate the two acyclic paths.
	var paths [][]ir.BlockID
	var walk func(path []ir.BlockID)
	walk = func(path []ir.BlockID) {
		last := p.Block(path[len(path)-1])
		succs := last.Succs()
		if len(succs) == 0 {
			paths = append(paths, append([]ir.BlockID(nil), path...))
			return
		}
		for _, s := range succs {
			walk(append(path, s))
		}
	}
	walk([]ir.BlockID{p.Entry})
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}

	times := make(map[uint64]bool)
	for _, path := range paths {
		c, err := out.Meta.PathCycles(pm, path, cfg.Predictor)
		if err != nil {
			t.Fatal(err)
		}
		times[c] = true
	}
	if len(times) != 2 {
		t.Fatalf("both paths predict the same duration %v; branch timing invisible", times)
	}

	seen := 0
	for _, iv := range ivs {
		if iv.ProcIndex != pm.Index {
			continue
		}
		seen++
		if !times[iv.ExclusiveTicks()] {
			t.Fatalf("measured %d cycles not among predicted path times %v", iv.ExclusiveTicks(), times)
		}
	}
	if seen != 2 {
		t.Fatalf("classify invocations = %d, want 2", seen)
	}
}
