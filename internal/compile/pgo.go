package compile

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/layout"
)

// ProcWeights are expected edge-traversal counts for one procedure per
// invocation, keyed by CFG edge — the same shape as layout.Weights, which
// the estimator derives from its branch-probability estimates via the
// Markov chain.
type ProcWeights = map[[2]ir.BlockID]float64

// PGOOptions configures the profile-guided optimization pipeline that runs
// between the middle-end passes and code generation. The pipeline consumes
// the same edge weights block placement does and goes beyond placement:
// inlining hot call sites, straightening hot traces with bounded tail
// duplication, splitting provably-cold blocks into a shared cold flash
// region, and packing hot regions to flash pages.
//
// The passes transform both the CFG and the weights, then compute layouts
// and polarity hints from the transformed weights; caller-supplied
// Options.Layouts/BranchHints entries for weighted procedures are
// overridden. Weights must be keyed by the block IDs of the CFG as it
// stands after the deterministic pre-PGO pipeline (DeadBranchElim,
// RotateLoops) — exactly the CFG an instrumented build with the same flags
// produced, which is what makes estimated probabilities transferable.
type PGOOptions struct {
	// Weights holds per-procedure edge weights. Procedures without an
	// entry are left untouched by every pass (no information, no
	// transformation).
	Weights map[string]ProcWeights

	// Inline replaces small leaf calls at hot call sites with the callee
	// body (fresh locals and temps per site).
	Inline bool
	// Superblock grows traces along hottest edges and removes side
	// entrances by duplicating the trace tail, so hot paths become
	// straight-line fall-through code under the computed layout.
	Superblock bool
	// HotCold moves blocks whose expected traversal count is at most
	// ColdMaxWeight into a cold region emitted after all hot regions.
	HotCold bool
	// PagePack aligns a procedure's hot region to the next flash page
	// boundary when doing so reduces the number of pages it spans
	// (requires a cost model with PageSizeBytes > 0).
	PagePack bool

	// InlineMaxInstrs caps the callee body size in IR instructions
	// (default 24); InlineMinWeight is the minimum expected executions
	// per invocation of the call-site block (default 0.5); InlineBudget
	// caps total inlined IR instructions per caller (default 96).
	InlineMaxInstrs int
	InlineMinWeight float64
	InlineBudget    int
	// TailDupMaxInstrs caps the IR instructions duplicated per procedure
	// by superblock formation (default 16).
	TailDupMaxInstrs int
	// ColdMaxWeight is the hot/cold threshold in expected traversals per
	// invocation (default 0.01). Zero means the default; use a negative
	// value to split only blocks the estimate proves never execute.
	ColdMaxWeight float64
}

func (o *PGOOptions) withDefaults() PGOOptions {
	p := *o
	if p.InlineMaxInstrs <= 0 {
		p.InlineMaxInstrs = 24
	}
	if p.InlineMinWeight <= 0 {
		p.InlineMinWeight = 0.5
	}
	if p.InlineBudget <= 0 {
		p.InlineBudget = 96
	}
	if p.TailDupMaxInstrs <= 0 {
		p.TailDupMaxInstrs = 16
	}
	switch {
	case p.ColdMaxWeight < 0:
		p.ColdMaxWeight = 0
	case p.ColdMaxWeight == 0:
		p.ColdMaxWeight = 0.01
	}
	return p
}

// runPGO executes the profile-guided pipeline on the lowered program,
// rewriting opts in place: the CFG is transformed, Layouts/BranchHints are
// recomputed from the transformed weights, and ColdBlocks is filled when
// hot/cold splitting is on. Each CFG-mutating pass is followed by the same
// stage checking the middle-end pipeline uses.
func runPGO(prog *cfg.Program, opts *Options) error {
	pgo := opts.PGO.withDefaults()
	opts.PGO = &pgo

	// The passes redistribute weight across transformed edges; work on a
	// copy so the caller's maps survive intact.
	weights := make(map[string]ProcWeights, len(pgo.Weights))
	for name, w := range pgo.Weights {
		cw := make(ProcWeights, len(w))
		for k, v := range w {
			cw[k] = v
		}
		weights[name] = cw
	}

	if pgo.Inline {
		inlineHotCalls(prog, weights, pgo)
		if err := checkStage(prog, "pgo-inline", *opts); err != nil {
			return err
		}
	}
	if pgo.Superblock {
		formSuperblocks(prog, weights, pgo)
		if err := checkStage(prog, "pgo-superblock", *opts); err != nil {
			return err
		}
	}

	// Placement and polarity from the transformed weights.
	if opts.Layouts == nil {
		opts.Layouts = make(map[string][]ir.BlockID)
	}
	if opts.BranchHints == nil {
		opts.BranchHints = make(map[string]map[ir.BlockID]bool)
	}
	for _, p := range prog.Procs {
		w, ok := weights[p.Name]
		if !ok {
			continue
		}
		opts.Layouts[p.Name] = layout.Optimize(p, w)
		opts.BranchHints[p.Name] = layout.Hints(p, w)
	}

	if pgo.HotCold {
		opts.ColdBlocks = coldSplit(prog, weights, pgo.ColdMaxWeight)
	}
	opts.pgoWeights = weights
	return nil
}

// blockWeights derives per-block expected traversal counts from edge
// weights: the entry executes once per invocation, every other block as
// often as its in-edges are traversed.
func blockWeights(p *cfg.Proc, w ProcWeights) map[ir.BlockID]float64 {
	bw := make(map[ir.BlockID]float64, len(p.Blocks))
	bw[p.Entry] = 1
	for _, e := range p.Edges() {
		bw[e.To] += w[[2]ir.BlockID{e.From, e.To}]
	}
	return bw
}

// coldSplit classifies blocks whose expected traversal count is at most
// maxW as cold. The entry block is never cold (the prologue lives there),
// and a procedure where every non-entry block would be cold is left alone:
// such a profile carries no contrast, and acting on it would only move the
// whole body out of line.
func coldSplit(prog *cfg.Program, weights map[string]ProcWeights, maxW float64) map[string]map[ir.BlockID]bool {
	out := make(map[string]map[ir.BlockID]bool)
	for _, p := range prog.Procs {
		w, ok := weights[p.Name]
		if !ok {
			continue
		}
		bw := blockWeights(p, w)
		cold := make(map[ir.BlockID]bool)
		for _, b := range p.Blocks {
			if b.ID == p.Entry {
				continue
			}
			if bw[b.ID] <= maxW {
				cold[b.ID] = true
			}
		}
		if len(cold) == 0 || len(cold) == len(p.Blocks)-1 {
			continue
		}
		out[p.Name] = cold
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
