package compile

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// tempReadCounts returns, for each temp of the procedure, how many times it
// is read anywhere (instructions and terminators). The branch-fusion
// peephole uses it to prove a comparison's boolean result is consumed only
// by the branch and need not be materialized.
func tempReadCounts(p *cfg.Proc) []int {
	counts := make([]int, p.NumTemp)
	read := func(t ir.Temp) {
		if t >= 0 && int(t) < len(counts) {
			counts[t]++
		}
	}
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			switch i := in.(type) {
			case ir.Const:
			case ir.Mov:
				read(i.Src)
			case ir.Bin:
				read(i.A)
				read(i.B)
			case ir.Un:
				read(i.A)
			case ir.LoadVar:
			case ir.StoreVar:
				read(i.Src)
			case ir.LoadIndex:
				read(i.Idx)
			case ir.StoreIndex:
				read(i.Idx)
				read(i.Src)
			case ir.Call:
				for _, a := range i.Args {
					read(a)
				}
			case ir.Builtin:
				for _, a := range i.Args {
					read(a)
				}
			}
		}
		switch t := b.Term.(type) {
		case ir.Br:
			read(t.Cond)
		case ir.Ret:
			read(t.Val)
		}
	}
	return counts
}

// fusableCompare reports whether the block's terminator branch can be fused
// with a trailing comparison: the last instruction computes the branch
// condition with a comparison operator, and that boolean is read nowhere
// else. It returns the comparison to fuse, or nil.
func fusableCompare(p *cfg.Proc, b *cfg.Block, reads []int) *ir.Bin {
	br, ok := b.Term.(ir.Br)
	if !ok || len(b.Instrs) == 0 {
		return nil
	}
	last, ok := b.Instrs[len(b.Instrs)-1].(ir.Bin)
	if !ok || !last.Op.IsComparison() {
		return nil
	}
	if last.Dst != br.Cond {
		return nil
	}
	if int(last.Dst) >= len(reads) || reads[last.Dst] != 1 {
		return nil
	}
	return &last
}
