package compile

import (
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/isa"
	"codetomo/internal/mote"
	"codetomo/internal/trace"
)

// optVariants builds the same source under the optimization option sets the
// suite exercises.
func optVariants() []Options {
	return []Options{
		{},
		{FuseCompares: true},
		{RotateLoops: true},
		{FuseCompares: true, RotateLoops: true},
	}
}

func TestFusionPreservesSemantics(t *testing.T) {
	for _, src := range []string{branchyProgram, goodKitchenSink} {
		ref := debugWords(t, src, Options{}, sensorRamp(64))
		for _, opts := range optVariants()[1:] {
			got := debugWords(t, src, opts, sensorRamp(64))
			if len(got) != len(ref) {
				t.Fatalf("opts %+v changed output length", opts)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("opts %+v changed output: %v vs %v", opts, got, ref)
				}
			}
		}
	}
}

// goodKitchenSink exercises every comparison operator in branch position,
// comparisons used as values (non-fusable), and nested loops.
const goodKitchenSink = `
var acc int;

func visit(v int) int {
	var r int;
	r = 0;
	if (v < 100) { r = r + 1; }
	if (v <= 100) { r = r + 2; }
	if (v > 100) { r = r + 4; }
	if (v >= 100) { r = r + 8; }
	if (v == 100) { r = r + 16; }
	if (v != 100) { r = r + 32; }
	r = r + (v < 500);            // comparison as value: must not fuse
	return r;
}

func nested(n int) int {
	var i int;
	var j int;
	var s int;
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < 3; j = j + 1) {
			s = s + i * j;
		}
	}
	return s;
}

func main() {
	var k int;
	for (k = 0; k < 30; k = k + 1) {
		acc = acc + visit(sense()) + nested(k & 7);
	}
	debug(acc);
}`

func TestFusionReducesCodeAndCycles(t *testing.T) {
	base, err := Build(goodKitchenSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Build(goodKitchenSink, Options{FuseCompares: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Meta.CodeBytes >= base.Meta.CodeBytes {
		t.Fatalf("fusion did not shrink code: %d vs %d", fused.Meta.CodeBytes, base.Meta.CodeBytes)
	}
	m1 := exec(t, goodKitchenSink, Options{}, sensorRamp(64))
	m2 := exec(t, goodKitchenSink, Options{FuseCompares: true}, sensorRamp(64))
	if m2.Stats().Cycles >= m1.Stats().Cycles {
		t.Fatalf("fusion did not save cycles: %d vs %d", m2.Stats().Cycles, m1.Stats().Cycles)
	}
	// Fused builds must contain compare-and-branch opcodes.
	found := false
	for _, in := range fused.Code {
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			found = true
		}
	}
	if !found {
		t.Fatal("no fused branches emitted")
	}
}

func TestFusionKeepsValueComparisons(t *testing.T) {
	// `r + (v < 500)` uses the comparison as a value; the SLT must remain.
	out, err := Build(goodKitchenSink, Options{FuseCompares: true})
	if err != nil {
		t.Fatal(err)
	}
	slt := false
	for _, in := range out.Code {
		if in.Op == isa.SLT {
			slt = true
		}
	}
	if !slt {
		t.Fatal("value-position comparison was removed")
	}
}

func TestRotationCreatesBackwardCondBranches(t *testing.T) {
	src := `
func main() {
	var i int;
	var s int;
	s = 0;
	for (i = 0; i < 100; i = i + 1) {
		s = s + i;
	}
	debug(s);
}`
	plain, err := Build(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := Build(src, Options{RotateLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	countBackward := func(code []isa.Instr) int {
		n := 0
		for pc, in := range code {
			if in.IsCondBranch() && in.Imm <= int32(pc) {
				n++
			}
		}
		return n
	}
	if countBackward(plain.Code) != 0 {
		t.Fatalf("plain build has backward conditional branches")
	}
	if countBackward(rot.Code) == 0 {
		t.Fatal("rotation produced no backward conditional branches")
	}
}

func TestRotationHelpsBTFN(t *testing.T) {
	src := `
func main() {
	var i int;
	var s int;
	s = 0;
	for (i = 0; i < 2000; i = i + 1) {
		s = s + (i & 7);
	}
	debug(s);
}`
	run := func(opts Options) mote.Stats {
		out, err := Build(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mote.DefaultConfig()
		cfg.Predictor = mote.BTFN{}
		m := mote.New(out.Code, cfg)
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	plain := run(Options{})
	rot := run(Options{RotateLoops: true, FuseCompares: true})
	// A top-test loop's latch is an unconditional JMP, so the natural
	// layout is already well predicted; rotation's win is removing that
	// JMP from every iteration. Mispredicts must not get worse and the
	// hot path must get shorter.
	if rot.Mispredicts > plain.Mispredicts {
		t.Fatalf("rotation worsened BTFN mispredicts: %d vs %d", rot.Mispredicts, plain.Mispredicts)
	}
	if rot.Cycles >= plain.Cycles {
		t.Fatalf("rotation did not cut cycles under BTFN: %d vs %d", rot.Cycles, plain.Cycles)
	}
}

func TestRotationWithSideEffectCondition(t *testing.T) {
	// The loop condition reads the sensor — a side effect. Rotation
	// duplicates the test block, and the number of sensor reads per
	// execution must not change.
	src := `
func main() {
	var n int;
	n = 0;
	while (sense() < 800) {
		n = n + 1;
	}
	debug(n);
}`
	ramp := sensorRamp(64) // eventually exceeds 800
	m1 := exec(t, src, Options{}, ramp)
	m2 := exec(t, src, Options{RotateLoops: true}, ramp)
	if m1.Stats().SensorReads != m2.Stats().SensorReads {
		t.Fatalf("rotation changed sensor reads: %d vs %d",
			m1.Stats().SensorReads, m2.Stats().SensorReads)
	}
	if m1.DebugOutput()[0] != m2.DebugOutput()[0] {
		t.Fatal("rotation changed loop trip count")
	}
}

// TestTimingModelHoldsUnderOptimizations re-validates the core contract —
// measured exclusive durations equal predicted path times — with fusion and
// rotation enabled.
func TestTimingModelHoldsUnderOptimizations(t *testing.T) {
	src := `
func classify(v int) int {
	var r int;
	r = 0;
	while (v > 200) {
		v = v - 150;
		r = r + 1;
	}
	if (v == 13) {
		r = r + 100;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 50; i = i + 1) {
		acc = acc + classify(sense());
	}
	debug(acc);
}`
	for _, opts := range optVariants() {
		opts.Instrument = ModeTimestamps
		out, err := Build(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mote.DefaultConfig()
		cfg.TickDiv = 1
		cfg.Sensor = &seqSource{vals: sensorRamp(64)}
		m := mote.New(out.Code, cfg)
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		ivs, err := trace.Extract(m.Trace())
		if err != nil {
			t.Fatal(err)
		}
		pm := out.Meta.ProcByName["classify"]
		p := out.CFG.Proc("classify")

		// Enumerate paths (bounded) and collect predicted times.
		times := map[uint64]bool{}
		var walk func(path []ir.BlockID, visits map[ir.BlockID]int)
		var paths int
		walk = func(path []ir.BlockID, visits map[ir.BlockID]int) {
			last := path[len(path)-1]
			if visits[last] > 12 || paths > 100000 {
				return
			}
			succs := p.Block(last).Succs()
			if len(succs) == 0 {
				c, err := out.Meta.PathCycles(pm, path, cfg.Predictor)
				if err != nil {
					t.Fatal(err)
				}
				times[c] = true
				paths++
				return
			}
			for _, s := range succs {
				visits[s]++
				walk(append(path, s), visits)
				visits[s]--
			}
		}
		walk([]ir.BlockID{p.Entry}, map[ir.BlockID]int{p.Entry: 1})

		for _, iv := range ivs {
			if iv.ProcIndex != pm.Index {
				continue
			}
			if !times[iv.ExclusiveTicks()] {
				t.Fatalf("opts %+v: measured %d cycles not among %d predicted path times",
					opts, iv.ExclusiveTicks(), len(times))
			}
		}
	}
}
