package compile

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// removeUnreachable deletes blocks not reachable from the entry and
// renumbers the survivors densely (block IDs must equal slice indices).
func removeUnreachable(p *cfg.Proc) {
	reach := p.Reachable()
	remap := make(map[ir.BlockID]ir.BlockID, len(reach))
	var kept []*cfg.Block
	for _, b := range p.Blocks {
		if reach[b.ID] {
			remap[b.ID] = ir.BlockID(len(kept))
			kept = append(kept, b)
		}
	}
	if len(kept) == len(p.Blocks) {
		return
	}
	for _, b := range kept {
		b.ID = remap[b.ID]
		b.Term = remapTerm(b.Term, remap)
	}
	p.Entry = remap[p.Entry]
	p.Blocks = kept
}

// threadJumps redirects edges that target empty forwarding blocks (no
// instructions, unconditional jump) to their final destination, then prunes
// the now-dead forwarders. It shrinks the CFGs produced by lowering's
// join/exit scaffolding, which keeps the tomography path enumeration small.
func threadJumps(p *cfg.Proc) {
	// Resolve the forwarding target of each block with path compression;
	// cycles of empty jumps (infinite empty loops) are left alone.
	target := func(id ir.BlockID) ir.BlockID {
		seen := map[ir.BlockID]bool{}
		for {
			b := p.Block(id)
			j, ok := b.Term.(ir.Jmp)
			if !ok || len(b.Instrs) != 0 || seen[id] {
				return id
			}
			seen[id] = true
			id = j.Target
		}
	}
	remap := make(map[ir.BlockID]ir.BlockID, len(p.Blocks))
	for _, b := range p.Blocks {
		remap[b.ID] = target(b.ID)
	}
	changed := false
	for _, b := range p.Blocks {
		nt := remapTerm(b.Term, remap)
		if nt != b.Term {
			b.Term = nt
			changed = true
		}
	}
	// The entry pointer is deliberately NOT remapped: lowering guarantees
	// no edges target the entry block, and the backend relies on that
	// invariant to place the prologue there (an entry with predecessors
	// would re-execute it).
	if changed {
		removeUnreachable(p)
	}
	// A conditional branch whose arms were threaded to the same target is
	// really a jump (the condition's side effects are in the block body,
	// which is preserved).
	simplified := false
	for _, b := range p.Blocks {
		if br, ok := b.Term.(ir.Br); ok && br.True == br.False {
			b.Term = ir.Jmp{Target: br.True}
			simplified = true
		}
	}
	if simplified {
		removeUnreachable(p)
	}
}

func remapTerm(t ir.Terminator, remap map[ir.BlockID]ir.BlockID) ir.Terminator {
	get := func(id ir.BlockID) ir.BlockID {
		if n, ok := remap[id]; ok {
			return n
		}
		return id
	}
	switch tt := t.(type) {
	case ir.Jmp:
		return ir.Jmp{Target: get(tt.Target)}
	case ir.Br:
		return ir.Br{Cond: tt.Cond, True: get(tt.True), False: get(tt.False)}
	default:
		return t
	}
}
