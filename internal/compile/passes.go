package compile

import (
	"fmt"

	"codetomo/internal/analysis"
	"codetomo/internal/cfg"
)

// Pass is one named CFG-to-CFG transformation in the middle-end pipeline.
// Passes mutate the program in place and must leave it valid; runPasses
// checks that after every one.
type Pass struct {
	Name string
	Run  func(*cfg.Program)
}

// pipeline returns the middle-end pass list selected by the options.
// Lowering itself (including its per-procedure unreachable-block removal
// and jump threading) runs before the pipeline; code generation after it.
func pipeline(opts Options) []Pass {
	var passes []Pass
	if opts.DeadBranchElim {
		passes = append(passes, Pass{Name: "dead-branch-elim", Run: EliminateDeadBranches})
	}
	if opts.RotateLoops {
		passes = append(passes, Pass{Name: "rotate-loops", Run: RotateLoops})
	}
	return passes
}

// runPasses executes the pass pipeline with inter-pass checking: the
// cheap structural validator always, and the strict IR verifier
// (analysis.Verify) after lowering and after every pass when
// Options.VerifyIR is set. The stage name in the error identifies the
// pass that broke the CFG.
func runPasses(prog *cfg.Program, opts Options) error {
	if err := checkStage(prog, "lower", opts); err != nil {
		return err
	}
	for _, p := range pipeline(opts) {
		p.Run(prog)
		if err := checkStage(prog, p.Name, opts); err != nil {
			return err
		}
	}
	return nil
}

func checkStage(prog *cfg.Program, stage string, opts Options) error {
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("compile: invalid CFG after %s: %w", stage, err)
	}
	if !opts.VerifyIR {
		return nil
	}
	if err := analysis.Verify(prog); err != nil {
		return fmt.Errorf("compile: IR verification failed after %s: %w", stage, err)
	}
	return nil
}
