package compile

import (
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
)

// Superblock formation thresholds: a trace grows along an out-edge only
// when that edge carries at least traceBiasFrac of its source's outgoing
// flow and at least traceMinEdgeW expected traversals per invocation; seeds
// must be at least traceMinSeedW hot; traces stop at traceMaxBlocks.
const (
	traceBiasFrac  = 0.6
	traceMinEdgeW  = 0.5
	traceMinSeedW  = 1.0
	traceMaxBlocks = 16
)

// formSuperblocks straightens each weighted procedure's hot paths: traces
// are grown from the hottest blocks along dominant out-edges, and side
// entrances into a trace's interior are removed by duplicating the trace
// tail, so that after placement the hot path is fall-through code with a
// single entry at the top. Tail duplication is bounded by TailDupMaxInstrs
// duplicated IR instructions per procedure.
func formSuperblocks(prog *cfg.Program, weights map[string]ProcWeights, pgo PGOOptions) {
	for _, p := range prog.Procs {
		w, ok := weights[p.Name]
		if !ok {
			continue
		}
		superblockProc(p, w, pgo.TailDupMaxInstrs)
	}
}

func superblockProc(p *cfg.Proc, w ProcWeights, budget int) {
	used := make(map[ir.BlockID]bool)
	for budget > 0 {
		bw := blockWeights(p, w)
		seed, ok := hottestSeed(p, bw, used)
		if !ok {
			return
		}
		trace := growTrace(p, w, seed, used)
		for _, b := range trace {
			used[b] = true
		}
		if len(trace) >= 2 {
			budget -= tailDuplicate(p, w, trace, budget)
		}
	}
}

// hottestSeed picks the hottest unused block (ties to the lower ID) that is
// hot enough to seed a trace.
func hottestSeed(p *cfg.Proc, bw map[ir.BlockID]float64, used map[ir.BlockID]bool) (ir.BlockID, bool) {
	type cand struct {
		id ir.BlockID
		w  float64
	}
	var cands []cand
	for _, b := range p.Blocks {
		if used[b.ID] || bw[b.ID] < traceMinSeedW {
			continue
		}
		cands = append(cands, cand{b.ID, bw[b.ID]})
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].id < cands[j].id
	})
	return cands[0].id, true
}

// growTrace extends a trace forward from seed along the hottest out-edge
// while that edge is dominant and hot, never revisiting a block, entering
// the procedure entry, or crossing into another trace.
func growTrace(p *cfg.Proc, w ProcWeights, seed ir.BlockID, used map[ir.BlockID]bool) []ir.BlockID {
	trace := []ir.BlockID{seed}
	inTrace := map[ir.BlockID]bool{seed: true}
	u := seed
	for len(trace) < traceMaxBlocks {
		var total, bestW float64
		best := ir.BlockID(-1)
		for _, s := range p.Block(u).Succs() {
			wt := w[[2]ir.BlockID{u, s}]
			total += wt
			if best == -1 || wt > bestW || (wt == bestW && s < best) {
				best, bestW = s, wt
			}
		}
		if best == -1 || bestW < traceMinEdgeW || bestW < traceBiasFrac*total {
			break
		}
		if best == p.Entry || used[best] || inTrace[best] {
			break
		}
		trace = append(trace, best)
		inTrace[best] = true
		u = best
	}
	return trace
}

// tailDuplicate removes side entrances from a trace's interior. The first
// side-entered position j splits the trace: [0,j) keeps its blocks, and
// [j,end) is duplicated into a parallel chain that the side predecessors
// are redirected into, while the original chain remains reachable only
// through the trace itself. The back edge into the trace head is not a side
// entrance (that is the superblock loop case). Duplication is truncated
// from the tail to fit the remaining budget; returns the IR instructions
// duplicated.
func tailDuplicate(p *cfg.Proc, w ProcWeights, trace []ir.BlockID, budget int) int {
	preds := p.Preds()
	sideAt := -1
	for j := 1; j < len(trace); j++ {
		for _, pr := range preds[trace[j]] {
			if pr != trace[j-1] {
				sideAt = j
				break
			}
		}
		if sideAt >= 0 {
			break
		}
	}
	if sideAt < 0 {
		return 0
	}

	// Truncate the trace until the duplicated suffix fits the budget.
	cost := 0
	for i := sideAt; i < len(trace); i++ {
		cost += len(p.Block(trace[i]).Instrs)
	}
	for cost > budget && len(trace) > sideAt {
		cost -= len(p.Block(trace[len(trace)-1]).Instrs)
		trace = trace[:len(trace)-1]
	}
	if len(trace) <= sideAt {
		return 0
	}
	n := len(trace)

	// Snapshot the suffix blocks' outgoing flow before any mutation; the
	// redistribution below needs the pre-duplication branch probabilities.
	type outSnap struct {
		succs []ir.BlockID
		wt    map[ir.BlockID]float64
		total float64
	}
	snap := make([]outSnap, n)
	for i := sideAt; i < n; i++ {
		b := p.Block(trace[i])
		s := outSnap{succs: append([]ir.BlockID(nil), b.Succs()...), wt: make(map[ir.BlockID]float64)}
		for _, sc := range s.succs {
			wt := w[[2]ir.BlockID{trace[i], sc}]
			s.wt[sc] = wt
			s.total += wt
		}
		snap[i] = s
	}
	prob := func(i int, s ir.BlockID) float64 {
		if snap[i].total <= 0 {
			return 0
		}
		return snap[i].wt[s] / snap[i].total
	}

	// Duplicate the suffix; each duplicate's in-trace arm continues into
	// the next duplicate, every other arm keeps its original target.
	baseID := ir.BlockID(len(p.Blocks))
	dupID := func(i int) ir.BlockID { return baseID + ir.BlockID(i-sideAt) }
	for i := sideAt; i < n; i++ {
		ob := p.Block(trace[i])
		nb := &cfg.Block{
			ID:     dupID(i),
			Label:  ob.Label + "_dup",
			Instrs: append([]ir.Instr(nil), ob.Instrs...),
			Term:   ob.Term,
		}
		if len(ob.SrcPos) > 0 {
			nb.SrcPos = append([]ir.Pos(nil), ob.SrcPos...)
		}
		if i+1 < n {
			nb.Term = redirect(ob.Term, trace[i+1], dupID(i+1))
		}
		p.Blocks = append(p.Blocks, nb)
	}

	// Rescale the original suffix's out-edges to the flow that still
	// reaches it once side entrances leave: only the trace edge from
	// position sideAt-1 feeds the original chain.
	g := w[[2]ir.BlockID{trace[sideAt-1], trace[sideAt]}]
	for i := sideAt; i < n; i++ {
		for _, s := range snap[i].succs {
			w[[2]ir.BlockID{trace[i], s}] = g * prob(i, s)
		}
		if i+1 < n {
			g *= prob(i, trace[i+1])
		}
	}

	// Redirect side predecessors into the duplicates and move their edge
	// weights (a redirected trace-internal skip edge carries its rescaled
	// weight, which is exactly the flow it now injects into the chain).
	sideIn := make([]float64, n)
	for i := sideAt; i < n; i++ {
		for _, pr := range preds[trace[i]] {
			if pr == trace[i-1] {
				continue
			}
			src := p.Block(pr)
			src.Term = redirect(src.Term, trace[i], dupID(i))
			key := [2]ir.BlockID{pr, trace[i]}
			if wt, ok := w[key]; ok {
				sideIn[i] += wt
				w[[2]ir.BlockID{pr, dupID(i)}] += wt
				delete(w, key)
			}
		}
	}

	// Cascade the side inflow down the duplicate chain using the original
	// branch probabilities.
	f := 0.0
	for i := sideAt; i < n; i++ {
		f += sideIn[i]
		for _, s := range snap[i].succs {
			target := s
			if i+1 < n && s == trace[i+1] {
				target = dupID(i + 1)
			}
			w[[2]ir.BlockID{dupID(i), target}] += f * prob(i, s)
		}
		if i+1 < n {
			f *= prob(i, trace[i+1])
		}
	}
	return cost
}
