package compile

// Tests for the profile-guided optimization pipeline: semantics preserved
// under every pass combination (differentially against the reference
// interpreter), structural effects of each pass (calls removed, cold
// regions out of line, hot regions page-minimal, traces duplicated), and
// exactness of the timing metadata on PGO-transformed binaries.

import (
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/isa"
	"codetomo/internal/minic"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
)

// pgoBaseOptions is the full optimizing configuration the PGO pipeline
// normally rides on.
func pgoBaseOptions() Options {
	return Options{FuseCompares: true, RotateLoops: true, DeadBranchElim: true, VerifyIR: true}
}

// randomPGOWeights fabricates edge weights for every procedure of a built
// program — adversarial profiles for semantic testing, not realistic ones.
func randomPGOWeights(out *Output, wseed int64) map[string]ProcWeights {
	wr := stats.NewRNG(wseed)
	weights := make(map[string]ProcWeights)
	for _, p := range out.CFG.Procs {
		w := make(ProcWeights)
		for _, e := range p.Edges() {
			w[[2]ir.BlockID{e.From, e.To}] = wr.Float64() * 8
		}
		weights[p.Name] = w
	}
	return weights
}

// checkPGOSemantics builds one random program with the PGO passes selected
// by mask (bit 0 inline, 1 superblock, 2 hot/cold, 3 page pack) under
// random weights and a page-penalized cost model, and requires its debug
// output to match the reference interpreter exactly.
func checkPGOSemantics(t *testing.T, seed, wseed int64, mask int) {
	t.Helper()
	src := generateProgram(seed)
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("seed %d: generated invalid program: %v\n%s", seed, err, src)
	}
	if err := minic.Check(f); err != nil {
		t.Fatalf("seed %d: generated ill-typed program: %v\n%s", seed, err, src)
	}

	rng := stats.NewRNG(1000 + seed)
	senseVals := make([]uint16, 64)
	randVals := make([]uint16, 64)
	for i := range senseVals {
		senseVals[i] = uint16(rng.Intn(1024))
		randVals[i] = uint16(rng.Intn(1 << 16))
	}

	var want []uint16
	si, ri := 0, 0
	env := minic.Env{
		Sense: scripted{senseVals, &si}.Next,
		Rand:  scripted{randVals, &ri}.Next,
		Debug: func(v uint16) { want = append(want, v) },
	}
	if err := minic.Interpret(f, env, 0); err != nil {
		t.Fatalf("seed %d: reference interpreter failed: %v\n%s", seed, err, src)
	}

	base := pgoBaseOptions()
	plain, err := Build(src, base)
	if err != nil {
		t.Fatalf("seed %d: plain build: %v\n%s", seed, err, src)
	}

	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = 3
	cost.PageSizeBytes = 64
	opts := base
	opts.Cost = cost
	opts.PGO = &PGOOptions{
		Weights:    randomPGOWeights(plain, wseed),
		Inline:     mask&1 != 0,
		Superblock: mask&2 != 0,
		HotCold:    mask&4 != 0,
		PagePack:   mask&8 != 0,
	}
	out, err := Build(src, opts)
	if err != nil {
		t.Fatalf("seed %d wseed %d mask %d: pgo build: %v\n%s", seed, wseed, mask, err, src)
	}

	cfgM := mote.DefaultConfig()
	cfgM.Cost = cost
	s2, r2 := 0, 0
	cfgM.Sensor = scripted{senseVals, &s2}
	cfgM.Entropy = scripted{randVals, &r2}
	m := mote.New(out.Code, cfgM)
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("seed %d wseed %d mask %d: run: %v\n%s\n%s", seed, wseed, mask, err, src, out.Listing())
	}
	got := m.DebugOutput()
	if len(got) != len(want) {
		t.Fatalf("seed %d wseed %d mask %d: debug length %d, want %d\n%s", seed, wseed, mask, len(got), len(want), src)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed %d wseed %d mask %d: debug[%d] = %d, want %d\n%s", seed, wseed, mask, i, got[i], want[i], src)
		}
	}
}

func TestPGODifferential(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		for _, mask := range []int{1, 2, 4, 8, 15} {
			checkPGOSemantics(t, seed, seed*31+int64(mask), mask)
		}
	}
}

// FuzzPGOPasses is the open-ended version of TestPGODifferential: the fuzzer
// picks the program, the (adversarial) weights, and the pass combination.
func FuzzPGOPasses(f *testing.F) {
	f.Add(int64(1), int64(2), byte(15))
	f.Add(int64(3), int64(40), byte(3))
	f.Add(int64(7), int64(11), byte(12))
	f.Add(int64(20), int64(500), byte(6))
	f.Fuzz(func(t *testing.T, seed, wseed int64, mask byte) {
		checkPGOSemantics(t, seed, wseed, int(mask&15))
	})
}

// buildPair builds src plain and with the given PGO options (sharing the
// cost model) and checks both produce identical debug output.
func buildPGOPair(t *testing.T, src string, cost *isa.CostModel, mkPGO func(plain *Output) *PGOOptions) (plain, pgo *Output) {
	t.Helper()
	base := pgoBaseOptions()
	base.Cost = cost
	plain, err := Build(src, base)
	if err != nil {
		t.Fatalf("plain build: %v", err)
	}
	opts := base
	opts.PGO = mkPGO(plain)
	pgo, err = Build(src, opts)
	if err != nil {
		t.Fatalf("pgo build: %v", err)
	}
	var outs [2][]uint16
	for i, o := range []*Output{plain, pgo} {
		cfgM := mote.DefaultConfig()
		cfgM.Cost = cost
		m := mote.New(o.Code, cfgM)
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, o.Listing())
		}
		outs[i] = m.DebugOutput()
	}
	if len(outs[0]) != len(outs[1]) {
		t.Fatalf("debug length %d vs %d", len(outs[0]), len(outs[1]))
	}
	for i := range outs[0] {
		if outs[0][i] != outs[1][i] {
			t.Fatalf("debug[%d] = %d plain, %d pgo", i, outs[0][i], outs[1][i])
		}
	}
	return plain, pgo
}

// uniformWeights gives every edge of every procedure the same weight.
func uniformWeights(out *Output, w float64) map[string]ProcWeights {
	weights := make(map[string]ProcWeights)
	for _, p := range out.CFG.Procs {
		pw := make(ProcWeights)
		for _, e := range p.Edges() {
			pw[[2]ir.BlockID{e.From, e.To}] = w
		}
		weights[p.Name] = pw
	}
	return weights
}

func TestPGOInlineRemovesCalls(t *testing.T) {
	src := `
func add3(a int) int {
	return a + 3;
}

func main() {
	var i int;
	var s int;
	for (i = 0; i < 5; i = i + 1) {
		s = s + add3(i);
	}
	debug(s);
}`
	_, pgo := buildPGOPair(t, src, isa.DefaultCostModel(), func(plain *Output) *PGOOptions {
		return &PGOOptions{Weights: uniformWeights(plain, 5), Inline: true}
	})
	calls := 0
	for _, in := range pgo.Code {
		if in.Op == isa.CALL {
			calls++
		}
	}
	// Only the startup stub's CALL main survives.
	if calls != 1 {
		t.Fatalf("CALL count = %d, want 1 (inlining should remove the add3 sites)\n%s", calls, pgo.Listing())
	}
	if got := pgo.Meta.ProcByName["main"]; got == nil {
		t.Fatal("no meta for main")
	}
}

func TestPGOColdRegionPlacement(t *testing.T) {
	src := `
func work(v int) int {
	if (v > 30000) {
		v = v * 3;
		v = v + 7;
		v = v ^ 5;
	}
	return v + 1;
}

func main() {
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		debug(work(i));
	}
}`
	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = 2
	_, pgo := buildPGOPair(t, src, cost, func(plain *Output) *PGOOptions {
		weights := uniformWeights(plain, 1)
		// Starve the guarded arm: its sole in-edge gets a near-zero weight.
		p := plain.CFG.Proc("work")
		bb := p.BranchBlocks()
		if len(bb) != 1 {
			t.Fatalf("work has %d branch blocks, want 1", len(bb))
		}
		coldArm := p.Block(bb[0]).Succs()[0]
		weights["work"][[2]ir.BlockID{bb[0], coldArm}] = 1e-6
		return &PGOOptions{Weights: weights, HotCold: true}
	})

	pm := pgo.Meta.ProcByName["work"]
	if pm.ColdStartAddr < 0 || pm.ColdEndAddr <= pm.ColdStartAddr {
		t.Fatalf("work has no cold region: [%d,%d)", pm.ColdStartAddr, pm.ColdEndAddr)
	}
	// The cold region sits after every procedure's hot region.
	for _, other := range pgo.Meta.Procs {
		if pm.ColdStartAddr < other.EndAddr {
			t.Fatalf("cold region %d starts before %s's hot region ends (%d)", pm.ColdStartAddr, other.Name, other.EndAddr)
		}
	}
	// Exactly the starved blocks live there.
	coldBlocks := 0
	for id, addr := range pm.BlockAddr {
		inCold := addr >= pm.ColdStartAddr && addr < pm.ColdEndAddr
		if inCold {
			coldBlocks++
		} else if addr < pm.EntryAddr || addr >= pm.EndAddr {
			t.Fatalf("block %v at %d outside both regions", id, addr)
		}
	}
	if coldBlocks == 0 {
		t.Fatalf("no block placed in the cold region\n%s", pgo.Listing())
	}
}

func TestPGOPagePackReducesWeightedCrossings(t *testing.T) {
	src := `
func mix(a int, b int) int {
	var r int;
	r = a * 3 + b;
	r = r ^ (a >> 2);
	return r;
}

func main() {
	var i int;
	var s int;
	for (i = 0; i < 6; i = i + 1) {
		s = s + i;
	}
	debug(s + mix(1, 2));
}`
	// The page size is tuned so main's hot loop fits in one page but
	// straddles a boundary at its natural address: the packer must find
	// the shift that keeps the back-edge on-page.
	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = 4
	cost.PageSizeBytes = 128
	base := pgoBaseOptions()
	base.Cost = cost
	ref, err := Build(src, base)
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	w := uniformWeights(ref, 2)

	build := func(pack bool) *Output {
		opts := base
		opts.PGO = &PGOOptions{Weights: w, PagePack: pack}
		out, err := Build(src, opts)
		if err != nil {
			t.Fatalf("build (pack=%v): %v", pack, err)
		}
		return out
	}
	unpacked, packed := build(false), build(true)

	// Profile-weighted static page crossings: the quantity the packer
	// minimizes per procedure, summed over the program.
	crossWeight := func(out *Output) float64 {
		total := 0.0
		for _, pm := range out.Meta.Procs {
			pw := w[pm.Name]
			for k, info := range pm.Edges {
				total += float64(info.PageCrosses) * pw[[2]ir.BlockID{k.From, k.To}]
			}
		}
		return total
	}
	cu, cp := crossWeight(unpacked), crossWeight(packed)
	if cp > cu {
		t.Fatalf("packing increased weighted crossings: %v > %v\n%s", cp, cu, packed.Listing())
	}
	if cp == cu {
		t.Fatalf("packer found nothing to improve (weighted crossings %v); shrink the page size so the test has teeth", cu)
	}

	// Padding must not change semantics, and the mote must observe fewer
	// crossings too (same loop structure, uniform weights).
	var crossings [2]uint64
	var outs [2][]uint16
	for i, o := range []*Output{unpacked, packed} {
		cfgM := mote.DefaultConfig()
		cfgM.Cost = cost
		m := mote.New(o.Code, cfgM)
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		crossings[i] = m.Stats().PageCrossings
		outs[i] = m.DebugOutput()
	}
	if len(outs[0]) != len(outs[1]) {
		t.Fatalf("debug length %d vs %d", len(outs[0]), len(outs[1]))
	}
	for i := range outs[0] {
		if outs[0][i] != outs[1][i] {
			t.Fatalf("debug[%d] = %d unpacked, %d packed", i, outs[0][i], outs[1][i])
		}
	}
	if crossings[1] > crossings[0] {
		t.Fatalf("packed build crossed pages more often at runtime: %d > %d", crossings[1], crossings[0])
	}
}

func TestPGOSuperblockDuplicatesTail(t *testing.T) {
	src := `
func main() {
	var i int;
	var s int;
	for (i = 0; i < 20; i = i + 1) {
		if ((i & 3) == 0) {
			s = s + 1;
		} else {
			s = s + 2;
		}
		s = s + i;
	}
	debug(s);
}`
	plain, pgo := buildPGOPair(t, src, isa.DefaultCostModel(), func(plain *Output) *PGOOptions {
		weights := make(map[string]ProcWeights)
		p := plain.CFG.Proc("main")
		w := make(ProcWeights)
		for _, e := range p.Edges() {
			w[[2]ir.BlockID{e.From, e.To}] = 20
		}
		// Bias every branch 1:4 so the hot arm dominates and the join
		// block becomes a side-entered trace interior.
		for _, bb := range p.BranchBlocks() {
			succs := p.Block(bb).Succs()
			w[[2]ir.BlockID{bb, succs[0]}] = 4
			w[[2]ir.BlockID{bb, succs[1]}] = 16
		}
		weights["main"] = w
		return &PGOOptions{Weights: weights, Superblock: true}
	})
	np, ng := len(plain.CFG.Proc("main").Blocks), len(pgo.CFG.Proc("main").Blocks)
	if ng <= np {
		t.Fatalf("superblock formation duplicated nothing: %d blocks plain, %d pgo", np, ng)
	}
}

// TestPGOTimingModelExact locks the timing contract on a PGO-transformed
// binary under page-cross penalties: the model's PathCycles must equal the
// measured exclusive durations exactly, for every procedure left
// straight-line by the transforms.
func TestPGOTimingModelExact(t *testing.T) {
	src := `
var g int = 7;

func leaf() int {
	var x int;
	x = g * 3 + 1;
	return x - 2;
}

func middle(a int) int {
	var y int;
	y = leaf() + a;
	y = y + leaf();
	return y;
}

func main() {
	debug(middle(5));
	debug(leaf());
}`
	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = 5
	cost.PageSizeBytes = 16 // tiny pages force crossings inside procedures
	base := Options{Instrument: ModeTimestamps, VerifyIR: true, Cost: cost}
	plain, err := Build(src, base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.PGO = &PGOOptions{
		Weights:    uniformWeights(plain, 1),
		Inline:     true,
		Superblock: true,
		HotCold:    true,
		PagePack:   true,
	}
	out, err := Build(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	cfgM := mote.DefaultConfig()
	cfgM.TickDiv = 1
	cfgM.Cost = cost
	m := mote.New(out.Code, cfgM)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	byProc := trace.ExclusiveByProc(ivs)

	checked := 0
	for _, pm := range out.Meta.Procs {
		samples := byProc[pm.Index]
		if len(samples) == 0 {
			continue // fully inlined away
		}
		p := out.CFG.Proc(pm.Name)
		path := []ir.BlockID{p.Entry}
		for {
			succs := p.Block(path[len(path)-1]).Succs()
			if len(succs) == 0 {
				break
			}
			if len(succs) != 1 {
				t.Fatalf("%s is not straight-line after PGO", pm.Name)
			}
			path = append(path, succs[0])
		}
		want, err := out.Meta.PathCycles(pm, path, cfgM.Predictor)
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range samples {
			if got != want {
				t.Fatalf("%s invocation %d: measured %d cycles, model %d\npath %v\n%s",
					pm.Name, i, got, want, path, out.Listing())
			}
		}
		checked++
	}
	if checked < 2 {
		t.Fatalf("only %d procedures checked", checked)
	}
}

// BenchmarkPGOBuild keeps the cost of the full profile-guided pipeline —
// inline, superblock, hot/cold split, page packing, and the re-emission the
// packer may trigger — visible per build of a mid-sized random program.
func BenchmarkPGOBuild(b *testing.B) {
	src := generateProgram(7)
	cost := isa.DefaultCostModel()
	cost.PageCrossPenalty = 3
	cost.PageSizeBytes = 64
	base := pgoBaseOptions()
	base.Cost = cost
	plain, err := Build(src, base)
	if err != nil {
		b.Fatal(err)
	}
	opts := base
	opts.PGO = &PGOOptions{
		Weights: uniformWeights(plain, 2),
		Inline:  true, Superblock: true, HotCold: true, PagePack: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}
