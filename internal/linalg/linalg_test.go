package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatalf("At(1,2) = %v, want 4.5", m.At(1, 2))
	}
	m.Add(1, 2, 0.5)
	if m.At(1, 2) != 5 {
		t.Fatalf("after Add, At(1,2) = %v, want 5", m.At(1, 2))
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	i2 := Identity(2)
	p, err := a.Mul(i2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("incompatible Mul accepted")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("incompatible MulVec accepted")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", at.At(2, 1))
	}
}

func TestLUSolveKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	x, err := Solve(a, []float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

func TestLUDet(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 2}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 6, 1e-12) {
		t.Fatalf("det = %v, want 6", f.Det())
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Mul(inv)
	diff, _ := p.Sub(Identity(2))
	if diff.MaxAbs() > 1e-12 {
		t.Fatalf("A·A⁻¹ deviates from I by %v", diff.MaxAbs())
	}
}

// Property: LU solves random well-conditioned systems to high accuracy.
func TestLUSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)+2) // diagonal dominance → well conditioned
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b, _ := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square consistent system: LSQ must reproduce the exact solution.
	a, _ := FromRows([][]float64{{1, 1}, {1, 2}, {1, 3}})
	// b generated from x = (0.5, 2).
	b := []float64{2.5, 4.5, 6.5}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 0.5, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Fatalf("x = %v, want [0.5 2]", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// For inconsistent systems the residual must be orthogonal to the
	// column space: Aᵀ(Ax−b) = 0.
	a, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 0, 2, 1}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = ax[i] - b[i]
	}
	g, _ := a.Transpose().MulVec(resid)
	for i, v := range g {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("gradient component %d = %v, want ~0", i, v)
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient LSQ accepted")
	}
}

func TestNNLSNonnegativityAndFit(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{1, 1, 1},
	})
	b := []float64{1, 2, 3, 6}
	x, err := NNLS(a, b, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if x[i] < 0 {
			t.Fatalf("x[%d] = %v < 0", i, x[i])
		}
		if !almostEqual(x[i], want[i], 1e-3) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestNNLSClampsNegatives(t *testing.T) {
	// Unconstrained solution is negative; NNLS must clamp to 0.
	a, _ := FromRows([][]float64{{1}, {1}})
	b := []float64{-1, -2}
	x, err := NNLS(a, b, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("x = %v, want [0]", x)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot incorrect")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 incorrect")
	}
}

// Property: transpose is an involution and Mul associates with vectors.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
