package linalg

import (
	"fmt"
	"math"
)

// LeastSquares solves min ‖A·x − b‖₂ for a matrix with Rows ≥ Cols using
// Householder QR. It returns ErrSingular when A is rank-deficient.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("%w: underdetermined system %dx%d", ErrShape, m, n)
	}
	r := a.Clone()
	y := make([]float64, m)
	copy(y, b)
	// Rank tolerance relative to the matrix magnitude.
	tol := 1e-12 * (a.MaxAbs() + 1)

	// Householder QR, applying reflections to the RHS as we go.
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm <= tol {
			return nil, fmt.Errorf("%w: rank-deficient at column %d", ErrSingular, k)
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		vnorm2 := 0.0
		for _, vi := range v {
			vnorm2 += vi * vi
		}
		if vnorm2 == 0 {
			return nil, fmt.Errorf("%w: degenerate reflector at column %d", ErrSingular, k)
		}
		// Apply H = I − 2vvᵀ/‖v‖² to the remaining columns and the RHS.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Add(i, j, -f*v[i-k])
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			y[i] -= f * v[i-k]
		}
	}

	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal in R at %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// NNLS solves min ‖A·x − b‖₂ subject to x ≥ 0 using projected gradient
// descent with an adaptive step. It is used for histogram tomography where
// path weights must be nonnegative. maxIter bounds the iteration count.
func NNLS(a *Matrix, b []float64, maxIter int) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), m)
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	at := a.Transpose()
	// Lipschitz estimate via power iteration on AᵀA.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	lip := 1.0
	for it := 0; it < 30; it++ {
		av, _ := a.MulVec(v)
		atav, _ := at.MulVec(av)
		norm := 0.0
		for _, x := range atav {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range v {
			v[i] = atav[i] / norm
		}
		lip = norm
	}
	step := 1 / (lip + 1e-12)

	x := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		ax, _ := a.MulVec(x)
		resid := make([]float64, m)
		for i := range resid {
			resid[i] = ax[i] - b[i]
		}
		grad, _ := at.MulVec(resid)
		moved := 0.0
		for i := range x {
			nx := x[i] - step*grad[i]
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[i])
			x[i] = nx
		}
		if moved < 1e-12 {
			break
		}
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
