package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored packed in lu with the unit diagonal of L implicit.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a square matrix a.
// It returns ErrSingular if a pivot is (numerically) zero.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: choose the largest magnitude in column k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				v := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, v)
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Solve solves A·X = B for a matrix right-hand side.
func (f *LU) Solve(b *Matrix) (*Matrix, error) {
	n := f.lu.Rows()
	if b.Rows() != n {
		return nil, fmt.Errorf("%w: rhs has %d rows, want %d", ErrShape, b.Rows(), n)
	}
	out := NewMatrix(n, b.Cols())
	col := make([]float64, n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() (*Matrix, error) {
	return f.Solve(Identity(f.lu.Rows()))
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the square system A·x = b directly.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns the inverse of a square matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}
