// Package linalg provides the small dense linear-algebra kernel used by the
// Markov model and the tomography estimators: dense matrices, LU
// factorization with partial pivoting, and least-squares solves.
//
// The matrices involved are tiny (one state per basic block of a procedure,
// rarely more than a few dozen), so the implementation favours clarity and
// numerical robustness over blocking or parallelism.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrShape)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.5f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
