package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	t.AddRow("alpha", "1.25")
	t.AddRow("beta, the second", "10")
	return t
}

func TestRender(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"demo", "====", "name", "alpha", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Numeric column right-aligned: "1.25" preceded by spaces to width 5.
	if !strings.Contains(out, " 1.25") {
		t.Fatalf("numbers not right-aligned:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"beta, the second"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
	q := &Table{Header: []string{"a"}, Rows: [][]string{{`say "hi"`}}}
	if !strings.Contains(q.CSV(), `"say ""hi"""`) {
		t.Fatalf("quote escaping wrong: %q", q.CSV())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if I(42) != "42" {
		t.Fatal("I wrong")
	}
	if I(uint64(7)) != "7" {
		t.Fatal("I uint64 wrong")
	}
	if Pct(0.1234) != "12.34%" {
		t.Fatalf("Pct wrong: %s", Pct(0.1234))
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"1", "-2.5", "3.14%", "1.0x"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "abc", "n/a"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func TestKV(t *testing.T) {
	tab := KV("Uplink", [2]string{"packets sent", "12"}, [2]string{"packets lost", "3"})
	if tab.Title != "Uplink" || len(tab.Rows) != 2 {
		t.Fatalf("KV table shape wrong: %+v", tab)
	}
	out := tab.Render()
	for _, want := range []string{"Uplink", "metric", "packets sent", "12", "packets lost", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered KV table missing %q:\n%s", want, out)
		}
	}
}
