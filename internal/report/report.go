// Package report renders the evaluation harness's results as aligned text
// tables (for the terminal and EXPERIMENTS.md) and CSV (for plotting).
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of results. The JSON tags define the
// machine-readable form `ctbench -json` emits (and BENCH_PR4.json holds).
type Table struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numbers, left-align text.
			if isNumeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func isNumeric(s string) bool {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(strings.ReplaceAll(s, "x", ""), 64)
	return err == nil
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an integer.
func I[T ~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~uint](v T) string {
	return fmt.Sprintf("%d", v)
}

// Pct formats a ratio as a percentage with 2 decimals.
func Pct(v float64) string { return F(100*v, 2) + "%" }

// KV builds a two-column metric/value table — the shape observability
// summaries (fleet uplink accounting, estimator effort) render as.
func KV(title string, pairs ...[2]string) *Table {
	t := &Table{Title: title, Header: []string{"metric", "value"}}
	for _, p := range pairs {
		t.AddRow(p[0], p[1])
	}
	return t
}
