package station

import (
	"encoding/json"
	"net/http"
)

// Handler returns the station's HTTP/JSON API:
//
//	GET  /healthz            liveness plus the current epoch
//	GET  /v1/models          the latest snapshot (every procedure)
//	GET  /v1/models/{proc}   one procedure's model
//	GET  /v1/metrics         ingest and estimation observability
//	POST /v1/epoch           force an epoch cut; returns the new snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": s.Epoch()})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Latest())
	})
	mux.HandleFunc("GET /v1/models/{proc}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("proc")
		snap := s.Latest()
		for i := range snap.Procs {
			if snap.Procs[i].Proc == name {
				writeJSON(w, http.StatusOK, map[string]any{"epoch": snap.Epoch, "model": snap.Procs[i]})
				return
			}
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown procedure " + name})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /v1/epoch", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.CutEpoch()
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away; nothing to do
}
