package station_test

import (
	"testing"

	"codetomo/internal/fleet"
	"codetomo/internal/station"
)

// benchFleet caches one simulated deployment across benchmark runs.
var benchFleet []fleet.MoteUpload

func benchUploads(b *testing.B) []fleet.MoteUpload {
	b.Helper()
	if benchFleet == nil {
		benchFleet = simulateFleet(b, 4)
	}
	return benchFleet
}

// BenchmarkIngest measures the raw frame path: decode, WAL-less route,
// shard enqueue.
func BenchmarkIngest(b *testing.B) {
	uploads := benchUploads(b)
	var frames [][]byte
	var bytes int
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
		for _, f := range up.Frames {
			bytes += len(f)
		}
	}
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newStation(b, station.Config{Shards: 2})
		b.StartTimer()
		for _, f := range frames {
			if err := s.IngestFrame(f); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkEpochCut measures a full seal: barrier, harvest, estimation,
// snapshot build.
func BenchmarkEpochCut(b *testing.B) {
	uploads := benchUploads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newStation(b, station.Config{Shards: 2})
		if _, _, err := s.IngestUploads(uploads); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.CutEpoch(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
