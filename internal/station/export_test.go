package station

// Abort exposes the crash-simulation hook to the external test package:
// stop the workers and drop the WAL handle without the final epoch cut or
// a clean sync, exactly as if the process had died.
func (s *Server) Abort() { s.abort() }
