package station

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"codetomo/internal/fleet"
)

// PushStats is the accounting for one client push session.
type PushStats struct {
	// Frames is how many frames the session attempted; Acked how many the
	// station accepted; Retransmissions how many extra sends the
	// stop-and-wait ARQ spent on NAKs; Failed how many frames exhausted
	// their retry budget and were abandoned.
	Frames, Acked, Retransmissions, Failed int
}

// Push uploads raw frames to a station's TCP ingest with a stop-and-wait
// ARQ: each frame is retransmitted on NAK up to retries extra times
// (retries < 0 selects the default of 3) before being abandoned. Transport
// errors — a dead station mid-stream — abort the session; per-frame NAKs
// do not.
func Push(addr string, frames [][]byte, retries int) (PushStats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return PushStats{}, fmt.Errorf("station: push: %w", err)
	}
	defer conn.Close()
	return push(conn, frames, retries)
}

// PushUploads is Push over a simulated fleet's deliveries, in mote order —
// the loopback demo's client half.
func PushUploads(addr string, uploads []fleet.MoteUpload, retries int) (PushStats, error) {
	var frames [][]byte
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
	}
	return Push(addr, frames, retries)
}

func push(conn io.ReadWriter, frames [][]byte, retries int) (PushStats, error) {
	if retries < 0 {
		retries = 3
	}
	var st PushStats
	var hdr [2]byte
	var status [1]byte
	for _, f := range frames {
		if len(f) == 0 || len(f) > maxWireFrame {
			st.Frames++
			st.Failed++ // unsendable on this transport; the wire would reject it
			continue
		}
		st.Frames++
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(f)))
		acked := false
		for attempt := 0; attempt <= retries; attempt++ {
			if attempt > 0 {
				st.Retransmissions++
			}
			if _, err := conn.Write(hdr[:]); err != nil {
				return st, fmt.Errorf("station: push: %w", err)
			}
			if _, err := conn.Write(f); err != nil {
				return st, fmt.Errorf("station: push: %w", err)
			}
			if _, err := io.ReadFull(conn, status[:]); err != nil {
				return st, fmt.Errorf("station: push: %w", err)
			}
			if status[0] == AckByte {
				acked = true
				break
			}
		}
		if acked {
			st.Acked++
		} else {
			st.Failed++
		}
	}
	return st, nil
}
