package station

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"codetomo/internal/fleet"
)

// PushStats is the accounting for one client push session.
type PushStats struct {
	// Frames is how many frames the session attempted; Acked how many the
	// station accepted; Retransmissions how many extra sends the
	// stop-and-wait ARQ spent on NAKs; Failed how many frames exhausted
	// their retry budget and were abandoned.
	Frames, Acked, Retransmissions, Failed int
}

// DefaultAckTimeout bounds how long a push session waits for the
// station's per-frame ACK/NAK byte when the caller does not choose a
// deadline. A station that accepts the connection but never answers
// (wedged, half-open, firewalled return path) would otherwise hang the
// client forever.
const DefaultAckTimeout = 10 * time.Second

// ErrAckTimeout reports that the station accepted a frame but its ACK
// never arrived within the configured deadline; the session is aborted
// (the connection state is unknown, so retrying on it would misattribute
// ACKs).
var ErrAckTimeout = errors.New("station: timed out waiting for ACK")

// PushConfig tunes a client push session.
type PushConfig struct {
	// Retries is the per-frame retransmission budget on NAK (< 0 selects
	// the default of 3).
	Retries int
	// AckTimeout bounds each wait for the station's ACK/NAK byte
	// (0 selects DefaultAckTimeout; negative disables the deadline).
	AckTimeout time.Duration
}

func (c PushConfig) withDefaults() PushConfig {
	if c.Retries < 0 {
		c.Retries = 3
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	return c
}

// Push uploads raw frames to a station's TCP ingest with a stop-and-wait
// ARQ and the default ACK deadline: each frame is retransmitted on NAK up
// to retries extra times (retries < 0 selects the default of 3) before
// being abandoned. Transport errors — a dead station mid-stream, or an
// ACK that never arrives — abort the session; per-frame NAKs do not.
func Push(addr string, frames [][]byte, retries int) (PushStats, error) {
	return PushFrames(addr, frames, PushConfig{Retries: retries})
}

// PushFrames is Push with the session fully configured.
func PushFrames(addr string, frames [][]byte, cfg PushConfig) (PushStats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return PushStats{}, fmt.Errorf("station: push: %w", err)
	}
	defer conn.Close()
	return push(conn, frames, cfg)
}

// PushUploads is PushFrames over a simulated fleet's deliveries, in mote
// order — the loopback demo's client half.
func PushUploads(addr string, uploads []fleet.MoteUpload, cfg PushConfig) (PushStats, error) {
	var frames [][]byte
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
	}
	return PushFrames(addr, frames, cfg)
}

// deadlineConn is the slice of net.Conn the push loop needs to bound ACK
// waits; the io.ReadWriter form keeps in-memory pipes testable.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

func push(conn io.ReadWriter, frames [][]byte, cfg PushConfig) (PushStats, error) {
	cfg = cfg.withDefaults()
	var st PushStats
	var hdr [2]byte
	var status [1]byte
	for _, f := range frames {
		if len(f) == 0 || len(f) > maxWireFrame {
			st.Frames++
			st.Failed++ // unsendable on this transport; the wire would reject it
			continue
		}
		st.Frames++
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(f)))
		acked := false
		for attempt := 0; attempt <= cfg.Retries; attempt++ {
			if attempt > 0 {
				st.Retransmissions++
			}
			if _, err := conn.Write(hdr[:]); err != nil {
				return st, fmt.Errorf("station: push: %w", err)
			}
			if _, err := conn.Write(f); err != nil {
				return st, fmt.Errorf("station: push: %w", err)
			}
			if dc, ok := conn.(deadlineConn); ok && cfg.AckTimeout > 0 {
				_ = dc.SetReadDeadline(time.Now().Add(cfg.AckTimeout))
			}
			if _, err := io.ReadFull(conn, status[:]); err != nil {
				if isTimeout(err) {
					return st, fmt.Errorf("%w after %v", ErrAckTimeout, cfg.AckTimeout)
				}
				return st, fmt.Errorf("station: push: %w", err)
			}
			if status[0] == AckByte {
				acked = true
				break
			}
		}
		if acked {
			st.Acked++
		} else {
			st.Failed++
		}
	}
	return st, nil
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
