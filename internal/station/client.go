package station

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"codetomo/internal/fleet"
)

// PushStats is the accounting for one client push session.
type PushStats struct {
	// Frames is how many frames the session attempted; Acked how many the
	// station accepted; Retransmissions how many extra sends the
	// stop-and-wait ARQ spent on NAKs; Failed how many frames exhausted
	// their retry budget and were abandoned.
	Frames, Acked, Retransmissions, Failed int
}

// DefaultAckTimeout bounds how long a push session waits for the
// station's per-frame ACK/NAK byte when the caller does not choose a
// deadline. A station that accepts the connection but never answers
// (wedged, half-open, firewalled return path) would otherwise hang the
// client forever.
const DefaultAckTimeout = 10 * time.Second

// ErrAckTimeout reports that the station accepted a frame but its ACK
// never arrived within the configured deadline; the session is aborted
// (the connection state is unknown, so retrying on it would misattribute
// ACKs).
var ErrAckTimeout = errors.New("station: timed out waiting for ACK")

// PushConfig tunes a client push session.
type PushConfig struct {
	// Retries is the per-frame retransmission budget on NAK (< 0 selects
	// the default of 3).
	Retries int
	// AckTimeout bounds each wait for the station's ACK/NAK byte
	// (0 selects DefaultAckTimeout; negative disables the deadline).
	AckTimeout time.Duration
}

func (c PushConfig) withDefaults() PushConfig {
	if c.Retries < 0 {
		c.Retries = 3
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	return c
}

// Push uploads raw frames to a station's TCP ingest with a stop-and-wait
// ARQ and the default ACK deadline: each frame is retransmitted on NAK up
// to retries extra times (retries < 0 selects the default of 3) before
// being abandoned. Transport errors — a dead station mid-stream, or an
// ACK that never arrives — abort the session; per-frame NAKs do not.
func Push(addr string, frames [][]byte, retries int) (PushStats, error) {
	return PushFrames(addr, frames, PushConfig{Retries: retries})
}

// PushFrames is Push with the session fully configured.
func PushFrames(addr string, frames [][]byte, cfg PushConfig) (PushStats, error) {
	s, err := DialPush(addr, cfg)
	if err != nil {
		return PushStats{}, err
	}
	defer s.Close()
	err = s.Send(frames)
	return s.Stats(), err
}

// PushSession is a long-lived client push connection: one TCP dial, any
// number of Send calls, one running PushStats. It is the wire half of the
// streaming fleet pipeline — cohorts of frames go out as they are
// simulated instead of a fleet's worth being materialized first — and is
// not safe for concurrent Send.
type PushSession struct {
	conn net.Conn
	cfg  PushConfig
	st   PushStats
}

// DialPush opens a push session to a station's TCP ingest.
func DialPush(addr string, cfg PushConfig) (*PushSession, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("station: push: %w", err)
	}
	return &PushSession{conn: conn, cfg: cfg.withDefaults()}, nil
}

// Send pushes one batch of frames through the session, accumulating into
// Stats. A transport error (including ErrAckTimeout) poisons the session:
// the connection state is unknown, so the caller should Close and redial.
func (s *PushSession) Send(frames [][]byte) error {
	return push(s.conn, frames, s.cfg, &s.st)
}

// Stats returns the session's accounting so far.
func (s *PushSession) Stats() PushStats { return s.st }

// Close releases the connection.
func (s *PushSession) Close() error { return s.conn.Close() }

// PushUploads is PushFrames over a simulated fleet's deliveries, in mote
// order — the loopback demo's client half.
func PushUploads(addr string, uploads []fleet.MoteUpload, cfg PushConfig) (PushStats, error) {
	var frames [][]byte
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
	}
	return PushFrames(addr, frames, cfg)
}

// deadlineConn is the slice of net.Conn the push loop needs to bound ACK
// waits; the io.ReadWriter form keeps in-memory pipes testable.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// push runs the stop-and-wait loop for one batch, accumulating into st
// (already-defaulted cfg; the io.ReadWriter form keeps in-memory pipes
// testable).
func push(conn io.ReadWriter, frames [][]byte, cfg PushConfig, st *PushStats) error {
	var hdr [2]byte
	var status [1]byte
	for _, f := range frames {
		if len(f) == 0 || len(f) > maxWireFrame {
			st.Frames++
			st.Failed++ // unsendable on this transport; the wire would reject it
			continue
		}
		st.Frames++
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(f)))
		acked := false
		for attempt := 0; attempt <= cfg.Retries; attempt++ {
			if attempt > 0 {
				st.Retransmissions++
			}
			if _, err := conn.Write(hdr[:]); err != nil {
				return fmt.Errorf("station: push: %w", err)
			}
			if _, err := conn.Write(f); err != nil {
				return fmt.Errorf("station: push: %w", err)
			}
			if dc, ok := conn.(deadlineConn); ok && cfg.AckTimeout > 0 {
				_ = dc.SetReadDeadline(time.Now().Add(cfg.AckTimeout))
			}
			if _, err := io.ReadFull(conn, status[:]); err != nil {
				if isTimeout(err) {
					return fmt.Errorf("%w after %v", ErrAckTimeout, cfg.AckTimeout)
				}
				return fmt.Errorf("station: push: %w", err)
			}
			if status[0] == AckByte {
				acked = true
				break
			}
		}
		if acked {
			st.Acked++
		} else {
			st.Failed++
		}
	}
	return nil
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
