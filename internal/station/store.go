package station

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The durable half of the station: an append-only write-ahead log of
// accepted frames and epoch cuts, plus JSON model snapshots.
//
// WAL record framing: 1 type byte ('F' frame, 'C' cut) | uint32 LE
// payload length | payload. Frames are stored as received off the wire —
// they carry their own CRC, so the log inherits the wire format's
// integrity check. Recovery reads records until the first torn or
// implausible one (a crash mid-append), truncates the file there, and
// replays the survivors; nothing before a torn tail is ever lost because
// records are appended before the frame is applied.

const (
	walFrame = 'F'
	walCut   = 'C'

	walName     = "wal.log"
	latestName  = "latest.json"
	snapshotDir = "snapshots"

	// walMaxPayload bounds a record's claimed length during recovery; the
	// largest legal frame is well under this, so anything bigger is a torn
	// or corrupted header.
	walMaxPayload = 4096
)

type walRecord struct {
	kind    byte
	payload []byte
}

// store is the station's data directory handle.
type store struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// openStore opens (creating if needed) the data directory, recovers the
// WAL's intact prefix, truncates any torn tail, and returns the surviving
// records for replay together with the append handle.
func openStore(dir string) (*store, []walRecord, error) {
	if err := os.MkdirAll(filepath.Join(dir, snapshotDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	path := filepath.Join(dir, walName)
	recs, valid, err := recoverWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("station: wal truncate: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	return &store{dir: dir, f: f}, recs, nil
}

// recoverWAL parses the log's intact prefix. A missing file is an empty
// log; a torn tail is expected after a crash and marks the valid length.
func recoverWAL(path string) ([]walRecord, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("station: %w", err)
	}
	var recs []walRecord
	off := int64(0)
	for int64(len(data))-off >= 5 {
		kind := data[off]
		n := int64(binary.LittleEndian.Uint32(data[off+1:]))
		if (kind != walFrame && kind != walCut) || n > walMaxPayload || off+5+n > int64(len(data)) {
			break
		}
		recs = append(recs, walRecord{kind: kind, payload: data[off+5 : off+5+n : off+5+n]})
		off += 5 + n
	}
	return recs, off, nil
}

func (st *store) append(kind byte, payload []byte) error {
	rec := make([]byte, 5+len(payload))
	rec[0] = kind
	binary.LittleEndian.PutUint32(rec[1:], uint32(len(payload)))
	copy(rec[5:], payload)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, err := st.f.Write(rec)
	return err
}

func (st *store) appendFrame(frame []byte) error { return st.append(walFrame, frame) }
func (st *store) appendCut() error               { return st.append(walCut, nil) }

// writeSnapshot persists one epoch's model publication: an immutable
// per-epoch file plus an atomically-replaced latest.json.
func (st *store) writeSnapshot(snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("station: %w", err)
	}
	data = append(data, '\n')
	name := filepath.Join(st.dir, snapshotDir, fmt.Sprintf("epoch-%06d.json", snap.Epoch))
	if err := os.WriteFile(name, data, 0o644); err != nil {
		return fmt.Errorf("station: %w", err)
	}
	tmp := filepath.Join(st.dir, latestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("station: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, latestName)); err != nil {
		return fmt.Errorf("station: %w", err)
	}
	return nil
}

// Close syncs and releases the log.
func (st *store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Sync()
	if cerr := st.f.Close(); err == nil {
		err = cerr
	}
	st.f = nil
	return err
}
