package station

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
)

// The wire ingest: CTP2 frames over stream and datagram transports.
//
// TCP carries length-prefixed frames (uint16 LE length, then the frame
// bytes) and answers each with one status byte — ACK for a frame that
// decoded, passed CRC, and was enqueued, NAK otherwise. The per-frame ack
// is what makes a stop-and-wait ARQ client (Push) work: a frame the
// channel or a proxy mangled is retransmitted instead of silently lost.
//
// UDP is fire-and-forget: one frame per datagram, no reply. It models the
// real deployment's uplink — the CRC and the reassembler's loss tolerance
// do the work acks would.

const (
	// AckByte and NakByte are the TCP per-frame replies.
	AckByte = 0x06 // ASCII ACK
	NakByte = 0x15 // ASCII NAK

	// maxWireFrame bounds a length prefix; the largest legal CTP2 frame
	// (85 records) is ~1 KB, so anything larger is protocol confusion.
	maxWireFrame = 2048
)

// ServeTCP accepts framed-uplink connections until the listener closes.
// Each connection is served on its own goroutine; the per-shard queues
// bound memory, not the connection count.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.m.tcpConns.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var hdr [2]byte
	buf := make([]byte, maxWireFrame)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // clean EOF or a dead peer; either way the stream is over
		}
		n := int(binary.LittleEndian.Uint16(hdr[:]))
		if n == 0 || n > maxWireFrame {
			return // unframed garbage; no way to resynchronize a stream
		}
		if _, err := io.ReadFull(conn, buf[:n]); err != nil {
			return
		}
		status := byte(AckByte)
		if err := s.IngestFrame(buf[:n]); err != nil {
			if !errors.Is(err, ErrRejected) {
				return // closing down; drop the connection, client retries elsewhere
			}
			status = NakByte
			s.m.tcpNaks.Add(1)
		} else {
			s.m.tcpAcks.Add(1)
		}
		if _, err := conn.Write([]byte{status}); err != nil {
			return
		}
	}
}

// ServeUDP ingests one frame per datagram until the connection closes.
// Rejected frames are counted (FramesRejected) but draw no reply.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	buf := make([]byte, maxWireFrame)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.m.udpFrames.Add(1)
		s.IngestFrame(buf[:n]) //nolint:errcheck // fire-and-forget transport; rejects are counted
	}
}
