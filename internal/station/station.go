// Package station is the long-running base-station service of the Code
// Tomography pipeline: where package fleet simulates one bounded
// measurement campaign and estimates at the end, station ingests CTP2
// trace frames continuously — over real sockets or an in-process bridge —
// reassembles per-mote streams on a set of shards, and rolls the fleet's
// samples into estimation epochs. Every epoch seals the receive window,
// folds the recovered durations into per-procedure warm-started streaming
// estimators, and publishes an immutable model snapshot (branch
// probabilities plus the suggested block layout) that a deployment tool
// can fetch over HTTP.
//
// Determinism contract: a snapshot is a pure function of the multiset of
// frames each mote delivered between epoch cuts. Reassembly is
// order-insensitive within a window (packets key by sequence number),
// harvests merge in ascending mote-ID order, and each procedure's
// estimator runs single-threaded — so the shard count, the frame
// interleaving, and the worker schedule never change a snapshot.
//
// Durability: with a data directory configured, every accepted frame and
// every epoch cut is appended to a write-ahead log before it is applied.
// A restarted station replays the log through the identical ingest and
// cut code paths, reproducing the estimator state exactly — including a
// partially-filled epoch in flight when the process died.
package station

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"codetomo/internal/compile"
	"codetomo/internal/fleet"
	"codetomo/internal/layout"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/tomography"
	"codetomo/internal/trace"
)

// Config tunes a station. Program is required; every other zero value
// selects the documented default.
type Config struct {
	// Program is the MiniC source of the deployed (instrumented) binary.
	// The station needs it to enumerate path models: Code Tomography
	// estimates from durations alone, but the mapping from durations to
	// branch probabilities is a property of the program.
	Program string
	// Shards is the number of per-mote reassembly shards; motes hash to a
	// shard by ID, and each shard is drained by one worker (default 2).
	Shards int
	// QueueDepth bounds each shard's ingest queue; a full queue applies
	// backpressure to the ingest path (default 256).
	QueueDepth int
	// TickDiv is the motes' timer prescaler in cycles (default 8).
	TickDiv int
	// Predictor is the motes' branch predictor (default predict-not-taken);
	// it determines the per-edge penalty cycles in the path models.
	Predictor mote.Predictor
	// Estimator selects the estimation strategy (default EM tuned to the
	// timer resolution).
	Estimator tomography.Estimator
	// StaticResolve pins statically-proven branches and enables the
	// envelope diagnostics, as in codetomo.Config.
	StaticResolve bool
	// MinSamples and MinCoverage gate snapshot trust exactly as the batch
	// pipeline gates estimation (defaults 50 and 0.85): an untrusted
	// procedure is still served, but carries no layout suggestion.
	MinSamples  int
	MinCoverage float64
	// MaxVisits bounds loop unrolling during path enumeration (default 12).
	MaxVisits int
	// ConvergeTol and ConvergePatience control the per-procedure streaming
	// early stop (defaults 1e-3 and 2).
	ConvergeTol      float64
	ConvergePatience int
	// EpochFrames, when positive, cuts an epoch automatically every N
	// accepted frames. Zero means epochs are cut only explicitly
	// (CutEpoch, or POST /v1/epoch).
	EpochFrames int
	// DataDir enables durability: an append-only frame log plus JSON model
	// snapshots under this directory. Empty runs in memory only.
	DataDir string
}

// Validate rejects configurations New cannot honor.
func (c Config) Validate() error {
	if c.Program == "" {
		return errors.New("station: Config.Program is required")
	}
	if c.Shards < 0 || c.Shards > 256 {
		return fmt.Errorf("station: Shards = %d; must be in [1, 256] (zero selects the default of 2)", c.Shards)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("station: QueueDepth = %d; must be positive (zero selects the default of 256)", c.QueueDepth)
	}
	if c.TickDiv < 0 {
		return fmt.Errorf("station: TickDiv = %d; must be positive (zero selects the default of 8)", c.TickDiv)
	}
	if c.MinSamples < 0 {
		return fmt.Errorf("station: MinSamples = %d; must be positive (zero selects the default of 50)", c.MinSamples)
	}
	if c.MinCoverage < 0 || c.MinCoverage > 1 {
		return fmt.Errorf("station: MinCoverage = %v; must be a fraction in [0, 1] (zero selects the default of 0.85)", c.MinCoverage)
	}
	if c.MaxVisits < 0 {
		return fmt.Errorf("station: MaxVisits = %d; must be positive (zero selects the default of 12)", c.MaxVisits)
	}
	if c.ConvergeTol < 0 {
		return fmt.Errorf("station: ConvergeTol = %v; must be positive (zero selects the default of 1e-3)", c.ConvergeTol)
	}
	if c.ConvergePatience < 0 {
		return fmt.Errorf("station: ConvergePatience = %d; must be positive (zero selects the default of 2)", c.ConvergePatience)
	}
	if c.EpochFrames < 0 {
		return fmt.Errorf("station: EpochFrames = %d; must be >= 0 (zero disables automatic cuts)", c.EpochFrames)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.TickDiv <= 0 {
		c.TickDiv = 8
	}
	if c.Predictor == nil {
		c.Predictor = mote.StaticNotTaken{}
	}
	if c.Estimator == nil {
		c.Estimator = tomography.EM{Config: tomography.EMConfig{KernelHalfWidth: float64(c.TickDiv)}}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.85
	}
	if c.MaxVisits <= 0 {
		c.MaxVisits = 12
	}
	if c.ConvergeTol == 0 {
		c.ConvergeTol = 1e-3
	}
	if c.ConvergePatience == 0 {
		c.ConvergePatience = 2
	}
	return c
}

// ErrClosed is returned by ingest entry points after Close has begun.
var ErrClosed = errors.New("station: server closed")

// ErrRejected wraps frames the station refused at the ingest boundary: a
// failed CRC, mangled framing, or the checksum-less legacy format (a
// long-running station never trusts unchecksummed bytes off a radio).
var ErrRejected = errors.New("station: frame rejected")

// procState is one procedure's standing estimation state.
type procState struct {
	name  string
	index int // trace/meta procedure index
	model *tomography.Model
	inc   *tomography.Incremental
}

// moteWindow is what one epoch's seal recovered from one mote.
type moteWindow struct {
	durs  map[int][]float64
	stats trace.UplinkStats
}

type cutReq struct {
	wg  *sync.WaitGroup
	out map[uint16]moteWindow // written only by the owning shard worker
}

type shardMsg struct {
	pkt *trace.Packet
	cut *cutReq
}

// shard owns the reassembly state for the motes that hash to it. Only its
// worker goroutine touches motes after Start, which is what makes the
// epoch-cut token a sufficient barrier.
type shard struct {
	ch    chan shardMsg
	motes map[uint16]*trace.Reassembler
}

// Server is a running base station.
type Server struct {
	cfg    Config
	prof   *compile.Output
	procs  []*procState // branchy procedures, CFG order
	byMeta map[int]*procState
	pool   *fleet.Pool

	// ingestMu is the epoch barrier: ingest holds it shared across
	// WAL-append plus shard enqueue, the cut path holds it exclusively
	// while logging the cut record and enqueueing the seal token on every
	// shard. FIFO queues then guarantee every frame lands on the correct
	// side of the cut on disk and in memory alike.
	ingestMu sync.RWMutex
	cutMu    sync.Mutex // serializes whole epoch cuts
	closed   atomic.Bool
	stopped  atomic.Bool // shard workers gone; cuts impossible

	shards []*shard
	wg     sync.WaitGroup
	cutCh  chan struct{}
	store  *store // nil when DataDir is empty

	snapMu sync.RWMutex
	epoch  uint64
	snap   *Snapshot

	framesSinceCut atomic.Int64
	m              counters
}

// counters is the server's atomic metrics block.
type counters struct {
	frames, corrupt, events, bytes        atomic.Uint64
	dups, lost, recovered, discarded      atomic.Uint64
	lostPartials                          atomic.Uint64
	samples                               atomic.Uint64
	tcpConns, tcpAcks, tcpNaks, udpFrames atomic.Uint64
	snapshotsWritten, walRecordsRecovered atomic.Uint64
}

// New builds a station, replays its write-ahead log if a data directory
// holds one, and starts the shard workers. The caller owns Close.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	prof, err := compile.Build(cfg.Program, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		return nil, fmt.Errorf("station: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		prof:   prof,
		byMeta: make(map[int]*procState),
		pool:   fleet.NewPool(cfg.Shards + 2),
		cutCh:  make(chan struct{}, 1),
	}
	enum := markov.EnumerateOptions{MaxVisits: cfg.MaxVisits, MaxPaths: 30000}
	for _, p := range prof.CFG.Procs {
		if len(p.BranchBlocks()) == 0 {
			continue
		}
		// A procedure whose path space cannot be enumerated within bounds
		// (a long-running driver loop, typically) is served permanently
		// untrusted rather than failing the whole station: the batch
		// pipeline defers the same error until the sample gate, which such
		// procedures rarely pass anyway.
		m, err := tomography.NewModelOpts(prof, p.Name, cfg.Predictor, enum,
			tomography.ModelOptions{StaticResolve: cfg.StaticResolve})
		if err != nil {
			m = nil
		}
		ps := &procState{name: p.Name, index: prof.Meta.ProcByName[p.Name].Index, model: m}
		s.procs = append(s.procs, ps)
		s.byMeta[ps.index] = ps
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			ch:    make(chan shardMsg, cfg.QueueDepth),
			motes: make(map[uint16]*trace.Reassembler),
		}
	}
	s.snap = s.buildSnapshot() // epoch 0: every procedure untrusted, no data yet

	if cfg.DataDir != "" {
		st, recs, err := openStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.replay(recs); err != nil {
			st.Close()
			return nil, err
		}
	}

	for _, sh := range s.shards {
		sh := sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.shardWorker(sh)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for range s.cutCh {
			// Auto-cut; a concurrent explicit cut may have drained the
			// window already, in which case this seals a (harmless) short
			// epoch of whatever arrived since.
			s.CutEpoch() //nolint:errcheck // cut failure surfaces via /v1/metrics epochs stalling
		}
	}()
	return s, nil
}

// Proc reports whether the deployed program has a procedure by this name.
func (s *Server) Proc(name string) bool {
	_, ok := s.prof.Meta.ProcByName[name]
	return ok
}

// Epoch returns the number of sealed epochs.
func (s *Server) Epoch() uint64 {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	return s.epoch
}

// shardWorker drains one shard: packets feed the per-mote reassemblers,
// cut tokens seal the window and hand the harvest back to the cut path.
func (s *Server) shardWorker(sh *shard) {
	for msg := range sh.ch {
		if msg.cut != nil {
			s.harvest(sh, msg.cut.out)
			msg.cut.wg.Done()
			continue
		}
		s.applyPacket(sh, msg.pkt)
	}
}

func (s *Server) applyPacket(sh *shard, p *trace.Packet) {
	r := sh.motes[p.MoteID]
	if r == nil {
		r = trace.NewReassembler(p.MoteID)
		sh.motes[p.MoteID] = r
	}
	// Add only fails on a mote-ID mismatch, impossible after routing by ID.
	r.Add(*p) //nolint:errcheck
}

// harvest seals one shard's receive window: recover every mote's
// intervals, convert to per-procedure durations, and rebase each stream at
// its next expected sequence so the next epoch counts neither the consumed
// packets nor their redeliveries.
func (s *Server) harvest(sh *shard, out map[uint16]moteWindow) {
	for id, r := range sh.motes {
		ivs, st := r.Recover()
		durs := make(map[int][]float64, 4)
		for p, ticks := range trace.ExclusiveByProc(ivs) {
			durs[p] = trace.DurationsCycles(ticks, s.cfg.TickDiv)
		}
		out[id] = moteWindow{durs: durs, stats: st}
		sh.motes[id] = trace.NewReassemblerAt(id, r.NextSeq())
	}
}

// IngestFrame accepts one raw CTP2 frame off the wire. Frames that fail
// to decode, fail CRC, or use the checksum-less legacy format are counted
// and rejected with ErrRejected. The call blocks when the target shard's
// queue is full (backpressure), and fails with ErrClosed during shutdown.
func (s *Server) IngestFrame(frame []byte) error {
	s.ingestMu.RLock()
	defer s.ingestMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	var p trace.Packet
	if err := p.UnmarshalBinary(frame); err != nil {
		s.m.corrupt.Add(1)
		return fmt.Errorf("%w: %v", ErrRejected, err)
	}
	if p.Version != trace.PacketVersionCRC {
		s.m.corrupt.Add(1)
		return fmt.Errorf("%w: legacy (checksum-less) frame", ErrRejected)
	}
	if s.store != nil {
		if err := s.store.appendFrame(frame); err != nil {
			return fmt.Errorf("station: wal: %w", err)
		}
	}
	s.shards[int(p.MoteID)%len(s.shards)].ch <- shardMsg{pkt: &p}
	s.m.frames.Add(1)
	s.m.events.Add(uint64(len(p.Events)))
	s.m.bytes.Add(uint64(len(frame)))
	if n := s.framesSinceCut.Add(1); s.cfg.EpochFrames > 0 && n == int64(s.cfg.EpochFrames) {
		select {
		case s.cutCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// IngestUploads is the in-process fleet→station bridge: it pushes every
// frame of every upload (mote order, arrival order within a mote) through
// the normal ingest path and reports how many were accepted and rejected.
func (s *Server) IngestUploads(uploads []fleet.MoteUpload) (accepted, rejected int, err error) {
	for _, up := range uploads {
		for _, f := range up.Frames {
			switch err := s.IngestFrame(f); {
			case err == nil:
				accepted++
			case errors.Is(err, ErrRejected):
				rejected++
			default:
				return accepted, rejected, err
			}
		}
	}
	return accepted, rejected, nil
}

// CutEpoch seals the current receive window across every shard, folds the
// harvested durations into the streaming estimators, and publishes (and,
// when durable, persists) a new model snapshot.
func (s *Server) CutEpoch() (*Snapshot, error) {
	s.cutMu.Lock()
	defer s.cutMu.Unlock()
	if s.stopped.Load() {
		return nil, ErrClosed
	}

	// Barrier: no ingest may be mid-flight while the cut record and the
	// seal tokens are placed, so the frame/cut order in the WAL matches
	// the order the shards observe.
	s.ingestMu.Lock()
	if s.store != nil {
		if err := s.store.appendCut(); err != nil {
			s.ingestMu.Unlock()
			return nil, fmt.Errorf("station: wal: %w", err)
		}
	}
	s.framesSinceCut.Store(0)
	var wg sync.WaitGroup
	results := make([]map[uint16]moteWindow, len(s.shards))
	for i, sh := range s.shards {
		results[i] = make(map[uint16]moteWindow)
		wg.Add(1)
		sh.ch <- shardMsg{cut: &cutReq{wg: &wg, out: results[i]}}
	}
	s.ingestMu.Unlock()
	wg.Wait()
	return s.finishCut(results)
}

// finishCut is the sharding-independent half of an epoch cut, shared by
// the live path and WAL replay: merge the harvests in ascending mote-ID
// order, observe one batch per procedure, and publish the snapshot.
func (s *Server) finishCut(results []map[uint16]moteWindow) (*Snapshot, error) {
	var ids []uint16
	windows := make(map[uint16]moteWindow)
	for _, res := range results {
		for id, w := range res {
			windows[id] = w
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	merged := make(map[int][]float64)
	for _, id := range ids {
		w := windows[id]
		s.m.dups.Add(uint64(w.stats.PacketsDuplicate))
		s.m.lost.Add(uint64(w.stats.PacketsLost))
		s.m.recovered.Add(uint64(w.stats.InvocationsRecovered))
		s.m.discarded.Add(uint64(w.stats.InvocationsDiscarded))
		s.m.lostPartials.Add(uint64(w.stats.LostPartials))
		for p, d := range w.durs {
			merged[p] = append(merged[p], d...)
		}
	}

	errs := make([]error, len(s.procs))
	var wg sync.WaitGroup
	for i, ps := range s.procs {
		batch := merged[ps.index]
		if len(batch) == 0 || ps.model == nil {
			continue // nothing new for this procedure, or no model to feed
		}
		s.m.samples.Add(uint64(len(batch)))
		i, ps := i, ps
		s.pool.Go(&wg, func() {
			if ps.inc == nil {
				ps.inc = tomography.NewIncremental(ps.model, s.cfg.Estimator, s.cfg.ConvergeTol, s.cfg.ConvergePatience)
			}
			if _, err := ps.inc.Observe(batch); err != nil && !errors.Is(err, tomography.ErrNoSamples) {
				errs[i] = fmt.Errorf("station: estimate %s: %w", ps.name, err)
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	s.snapMu.Lock()
	s.epoch++
	snap := s.buildSnapshot()
	s.snap = snap
	s.snapMu.Unlock()
	if s.store != nil {
		if err := s.store.writeSnapshot(snap); err != nil {
			return nil, err
		}
		s.m.snapshotsWritten.Add(1)
	}
	return snap, nil
}

// replay drives recovered WAL records through the identical ingest and cut
// code paths, before the shard workers exist — frames apply inline, cuts
// harvest inline — so the resumed estimator state is exactly what the
// crashed process held, including the partially-filled epoch in flight.
func (s *Server) replay(recs []walRecord) error {
	for _, rec := range recs {
		switch rec.kind {
		case walFrame:
			var p trace.Packet
			if err := p.UnmarshalBinary(rec.payload); err != nil {
				// The record passed the WAL's own framing; a frame that no
				// longer decodes means the log was tampered with or the
				// format drifted. Either way the remainder is untrustworthy.
				return fmt.Errorf("station: wal replay: %w", err)
			}
			if p.Version != trace.PacketVersionCRC {
				return fmt.Errorf("station: wal replay: legacy frame in log")
			}
			s.applyPacket(s.shards[int(p.MoteID)%len(s.shards)], &p)
			s.m.frames.Add(1)
			s.m.events.Add(uint64(len(p.Events)))
			s.m.bytes.Add(uint64(len(rec.payload)))
			s.framesSinceCut.Add(1)
		case walCut:
			s.framesSinceCut.Store(0)
			results := make([]map[uint16]moteWindow, len(s.shards))
			for i, sh := range s.shards {
				results[i] = make(map[uint16]moteWindow)
				s.harvest(sh, results[i])
			}
			if _, err := s.finishCut(results); err != nil {
				return err
			}
		}
		s.m.walRecordsRecovered.Add(1)
	}
	return nil
}

// Close drains the station: reject new ingest, seal a final epoch if the
// window holds any frames, stop the shard workers, and sync the log. It
// is idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// New IngestFrame calls now fail; in-flight ones finish under the
	// shared lock, so a final barrier acquisition proves the queues hold
	// everything that was accepted.
	s.ingestMu.Lock()
	close(s.cutCh)
	s.ingestMu.Unlock()

	var err error
	if s.framesSinceCut.Load() > 0 {
		_, err = s.CutEpoch()
	}
	s.stopped.Store(true)
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// abort is the test hook simulating a crash: stop everything without the
// final cut or a clean WAL sync, leaving recovery to the next New.
func (s *Server) abort() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.ingestMu.Lock()
	close(s.cutCh)
	s.ingestMu.Unlock()
	s.stopped.Store(true)
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
	if s.store != nil {
		s.store.Close() //nolint:errcheck
	}
}

// Snapshot is one epoch's immutable model publication.
type Snapshot struct {
	Epoch uint64      `json:"epoch"`
	Procs []ProcModel `json:"procs"`
}

// ProcModel is one procedure's entry in a snapshot.
type ProcModel struct {
	Proc string `json:"proc"`
	// Samples is the total durations absorbed across all epochs so far.
	Samples int `json:"samples"`
	// Trusted reports the estimate passed the sample-count, coverage, and
	// confidence gates; untrusted procedures carry no layout suggestion.
	Trusted bool `json:"trusted"`
	// Converged reports the streaming estimator's early stop has engaged.
	Converged bool `json:"converged,omitempty"`
	// Rounds is how many epochs re-estimated this procedure.
	Rounds int `json:"rounds,omitempty"`
	// Branches lists the estimated branch-edge probabilities.
	Branches []Branch `json:"branches,omitempty"`
	// Layout is the suggested block placement (block IDs in emission
	// order), present only for trusted procedures and branchless ones.
	Layout []int `json:"layout,omitempty"`
}

// Branch is one estimated branch edge.
type Branch struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Prob float64 `json:"prob"`
}

// buildSnapshot assembles the current publication. Callers must hold
// snapMu (or be the only goroutine, as during New and replay).
func (s *Server) buildSnapshot() *Snapshot {
	probs := make(map[string]markov.EdgeProbs)
	type entry struct {
		pm      ProcModel
		ps      *procState
		trusted bool
	}
	entries := make(map[string]*entry)
	for _, p := range s.prof.CFG.Procs {
		if len(p.BranchBlocks()) == 0 {
			probs[p.Name] = markov.Uniform(p)
			entries[p.Name] = &entry{pm: ProcModel{Proc: p.Name, Trusted: true}, trusted: true}
		}
	}
	for _, ps := range s.procs {
		e := &entry{pm: ProcModel{Proc: ps.name}, ps: ps}
		entries[ps.name] = e
		if ps.inc == nil {
			continue
		}
		e.pm.Samples = ps.inc.SampleCount()
		e.pm.Converged = ps.inc.Converged()
		e.pm.Rounds = ps.inc.Rounds()
		est := ps.inc.Probs()
		if est == nil {
			continue
		}
		for _, edge := range ps.model.BranchEdgeList() {
			e.pm.Branches = append(e.pm.Branches, Branch{From: int(edge[0]), To: int(edge[1]), Prob: est[edge]})
		}
		if e.pm.Samples >= s.cfg.MinSamples && ps.inc.Confident() &&
			ps.model.Coverage(ps.inc.Samples(), float64(s.cfg.TickDiv)) >= s.cfg.MinCoverage {
			e.trusted = true
			e.pm.Trusted = true
			probs[ps.name] = est
		}
	}

	plan := layout.PlanAll(s.prof.CFG, probs)
	snap := &Snapshot{Epoch: s.epoch}
	for _, p := range s.prof.CFG.Procs {
		e := entries[p.Name]
		if e.trusted {
			if order, ok := plan.Layouts[p.Name]; ok {
				e.pm.Layout = make([]int, len(order))
				for i, b := range order {
					e.pm.Layout[i] = int(b)
				}
			}
		}
		snap.Procs = append(snap.Procs, e.pm)
	}
	return snap
}

// Latest returns the most recent snapshot (epoch 0: the empty model).
func (s *Server) Latest() *Snapshot {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	return s.snap
}

// Metrics is the station's observability block.
type Metrics struct {
	Epoch                uint64 `json:"epoch"`
	FramesAccepted       uint64 `json:"frames_accepted"`
	FramesRejected       uint64 `json:"frames_rejected"`
	EventsDelivered      uint64 `json:"events_delivered"`
	BytesIngested        uint64 `json:"bytes_ingested"`
	PacketsDuplicate     uint64 `json:"packets_duplicate"`
	PacketsLost          uint64 `json:"packets_lost"`
	InvocationsRecovered uint64 `json:"invocations_recovered"`
	InvocationsDiscarded uint64 `json:"invocations_discarded"`
	// InvocationsLostPower counts invocations power-truncated on the mote
	// itself (epoch/power markers), a subset of InvocationsDiscarded.
	InvocationsLostPower uint64 `json:"invocations_lost_power"`
	SamplesAbsorbed      uint64 `json:"samples_absorbed"`
	TCPConns             uint64 `json:"tcp_conns"`
	TCPAcks              uint64 `json:"tcp_acks"`
	TCPNaks              uint64 `json:"tcp_naks"`
	UDPFrames            uint64 `json:"udp_frames"`
	SnapshotsWritten     uint64 `json:"snapshots_written"`
	WALRecordsRecovered  uint64 `json:"wal_records_recovered"`
	ShardQueueDepth      []int  `json:"shard_queue_depth"`
}

// Metrics returns a point-in-time copy of the counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Epoch:                s.Epoch(),
		FramesAccepted:       s.m.frames.Load(),
		FramesRejected:       s.m.corrupt.Load(),
		EventsDelivered:      s.m.events.Load(),
		BytesIngested:        s.m.bytes.Load(),
		PacketsDuplicate:     s.m.dups.Load(),
		PacketsLost:          s.m.lost.Load(),
		InvocationsRecovered: s.m.recovered.Load(),
		InvocationsDiscarded: s.m.discarded.Load(),
		InvocationsLostPower: s.m.lostPartials.Load(),
		SamplesAbsorbed:      s.m.samples.Load(),
		TCPConns:             s.m.tcpConns.Load(),
		TCPAcks:              s.m.tcpAcks.Load(),
		TCPNaks:              s.m.tcpNaks.Load(),
		UDPFrames:            s.m.udpFrames.Load(),
		SnapshotsWritten:     s.m.snapshotsWritten.Load(),
		WALRecordsRecovered:  s.m.walRecordsRecovered.Load(),
	}
	for _, sh := range s.shards {
		m.ShardQueueDepth = append(m.ShardQueueDepth, len(sh.ch))
	}
	return m
}
