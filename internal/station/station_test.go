package station_test

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"codetomo/internal/compile"
	"codetomo/internal/fleet"
	"codetomo/internal/mote"
	"codetomo/internal/station"
	"codetomo/internal/trace"
)

const testProgram = `
func work(v int) int {
	var r int;
	r = 0;
	if (v > 500) {
		r = r + v % 13;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 200; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

// simulateFleet runs a small deployment and returns the per-mote uploads
// (frames as the channel delivered them). Pure function of motes, so every
// test sees the identical traffic.
func simulateFleet(t testing.TB, motes int) []fleet.MoteUpload {
	t.Helper()
	prof, err := compile.Build(testProgram, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]fleet.MoteSpec, motes)
	for i := range specs {
		specs[i] = fleet.MoteSpec{
			ID:               uint16(i),
			Workload:         "gaussian",
			Seed:             1 + int64(i)*7919,
			ClockOffsetTicks: uint64(i) * 1000,
		}
	}
	mc := mote.DefaultConfig()
	mc.TickDiv = 8
	uploads, err := fleet.Simulate(fleet.SimConfig{
		Prog:      prof.Code,
		Mote:      mc,
		MaxCycles: 2_000_000_000,
		Workers:   2,
		Link:      fleet.LinkConfig{EventsPerPacket: 16, Seed: 99},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return uploads
}

func newStation(t testing.TB, cfg station.Config) *station.Server {
	t.Helper()
	cfg.Program = testProgram
	s, err := station.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// splitFrames cuts each mote's delivery in half: the two epoch windows
// every determinism test feeds.
func splitFrames(uploads []fleet.MoteUpload) (first, second [][][]byte) {
	first = make([][][]byte, len(uploads))
	second = make([][][]byte, len(uploads))
	for i, up := range uploads {
		mid := len(up.Frames) / 2
		first[i] = up.Frames[:mid]
		second[i] = up.Frames[mid:]
	}
	return first, second
}

func ingestAll(t *testing.T, s *station.Server, perMote [][][]byte, interleave bool) {
	t.Helper()
	if !interleave {
		for _, frames := range perMote {
			for _, f := range frames {
				if err := s.IngestFrame(f); err != nil {
					t.Fatal(err)
				}
			}
		}
		return
	}
	// Round-robin across motes, highest mote first: a maximally different
	// arrival order from the serial feed.
	for i := 0; ; i++ {
		sent := false
		for m := len(perMote) - 1; m >= 0; m-- {
			if i < len(perMote[m]) {
				if err := s.IngestFrame(perMote[m][i]); err != nil {
					t.Fatal(err)
				}
				sent = true
			}
		}
		if !sent {
			return
		}
	}
}

// Epoch snapshots must be a pure function of the frame multiset per
// window: one shard fed serially and four shards fed interleaved (and
// reversed) must publish identical models, epoch for epoch.
func TestShardedIngestMatchesSerial(t *testing.T) {
	uploads := simulateFleet(t, 4)
	first, second := splitFrames(uploads)

	run := func(shards int, interleave bool) []*station.Snapshot {
		s := newStation(t, station.Config{Shards: shards})
		defer s.Close()
		var snaps []*station.Snapshot
		for _, window := range [][][][]byte{first, second} {
			ingestAll(t, s, window, interleave)
			snap, err := s.CutEpoch()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap)
		}
		return snaps
	}

	serial := run(1, false)
	sharded := run(4, true)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], sharded[i]) {
			a, _ := json.Marshal(serial[i])
			b, _ := json.Marshal(sharded[i])
			t.Fatalf("epoch %d diverged between 1-shard serial and 4-shard interleaved ingest:\n%s\n%s", i+1, a, b)
		}
	}
	// The data must actually carry signal: work has 800 fleet samples and
	// should be a trusted, layout-bearing model by epoch 2.
	var work *station.ProcModel
	for i := range serial[1].Procs {
		if serial[1].Procs[i].Proc == "work" {
			work = &serial[1].Procs[i]
		}
	}
	if work == nil || !work.Trusted || len(work.Layout) == 0 || len(work.Branches) == 0 {
		t.Fatalf("work model not trusted after two epochs: %+v", work)
	}
}

// A station that crashes mid-epoch must resume from its WAL with the
// open window intact: finishing the epoch after restart yields the same
// snapshot as never having crashed.
func TestCrashMidEpochResumesWarm(t *testing.T) {
	uploads := simulateFleet(t, 4)
	first, second := splitFrames(uploads)
	cfg := func(dir string) station.Config {
		return station.Config{Shards: 2, DataDir: dir}
	}

	// Uninterrupted reference run.
	ref := newStation(t, cfg(t.TempDir()))
	ingestAll(t, ref, first, false)
	if _, err := ref.CutEpoch(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ref, second, false)
	want, err := ref.CutEpoch()
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Crashing run: epoch 1 sealed, epoch 2 half-filled, then the process
	// dies without flushing.
	dir := t.TempDir()
	s1 := newStation(t, cfg(dir))
	ingestAll(t, s1, first, false)
	if _, err := s1.CutEpoch(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s1, second[:2], false)
	s1.Abort()

	// Restart replays the WAL; the open window resumes where it stopped.
	s2 := newStation(t, cfg(dir))
	defer s2.Close()
	if got := s2.Epoch(); got != 1 {
		t.Fatalf("epoch after replay = %d, want 1", got)
	}
	ingestAll(t, s2, second[2:], false)
	got, err := s2.CutEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		t.Fatalf("resumed epoch 2 differs from uninterrupted run:\ngot  %s\nwant %s", a, b)
	}
	if rec := s2.Metrics().WALRecordsRecovered; rec == 0 {
		t.Fatal("restart recovered no WAL records")
	}
}

// A torn trailing WAL record — the crash happened mid-append — must be
// truncated away, not poison recovery.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	uploads := simulateFleet(t, 2)
	s1 := newStation(t, station.Config{Shards: 1, DataDir: dir})
	for _, up := range uploads {
		for _, f := range up.Frames {
			if err := s1.IngestFrame(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s1.CutEpoch(); err != nil {
		t.Fatal(err)
	}
	s1.Abort()

	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{'F', 0xff, 0xff}); err != nil { // torn header
		t.Fatal(err)
	}
	f.Close()

	s2 := newStation(t, station.Config{Shards: 1, DataDir: dir})
	defer s2.Close()
	if got := s2.Epoch(); got != 1 {
		t.Fatalf("epoch after torn-tail recovery = %d, want 1", got)
	}
}

// The TCP ingest must ACK good frames, NAK damaged ones, and survive a
// client that retransmits on NAK.
func TestServeTCPAckNak(t *testing.T) {
	uploads := simulateFleet(t, 2)
	s := newStation(t, station.Config{Shards: 2})
	defer s.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.ServeTCP(l)

	var frames [][]byte
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
	}
	// Damage one frame's CRC: every transmission of it will NAK.
	bad := append([]byte(nil), frames[0]...)
	bad[len(bad)-1] ^= 0xff
	frames = append(frames, bad)

	st, err := station.Push(l.Addr().String(), frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked != len(frames)-1 || st.Failed != 1 {
		t.Fatalf("push stats %+v, want %d acked and 1 failed", st, len(frames)-1)
	}
	if st.Retransmissions != 2 {
		t.Fatalf("Retransmissions = %d, want 2 (retry budget on the damaged frame)", st.Retransmissions)
	}
	m := s.Metrics()
	if m.FramesAccepted != uint64(len(frames)-1) || m.FramesRejected != 3 || m.TCPNaks != 3 {
		t.Fatalf("metrics %+v, want %d accepted, 3 rejected, 3 naks", m, len(frames)-1)
	}
	snap, err := s.CutEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch)
	}
}

// The UDP ingest is fire-and-forget: frames land without acks and count
// in the metrics.
func TestServeUDP(t *testing.T) {
	uploads := simulateFleet(t, 2)
	s := newStation(t, station.Config{Shards: 2})
	defer s.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go s.ServeUDP(pc)

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sent := 0
	for _, f := range uploads[0].Frames {
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().FramesAccepted < uint64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d UDP frames accepted", s.Metrics().FramesAccepted, sent)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The HTTP surface: health, models, per-procedure lookup, metrics, and
// the explicit epoch cut.
func TestHTTPAPI(t *testing.T) {
	uploads := simulateFleet(t, 4)
	s := newStation(t, station.Config{Shards: 2})
	defer s.Close()
	if _, _, err := s.IngestUploads(uploads); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap station.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Epoch != 1 || len(snap.Procs) == 0 {
		t.Fatalf("POST /v1/epoch returned %+v", snap)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Epoch != 1 {
		t.Fatalf("/healthz = %+v", health)
	}

	resp, err = http.Get(srv.URL + "/v1/models/work")
	if err != nil {
		t.Fatal(err)
	}
	var one struct {
		Epoch uint64            `json:"epoch"`
		Model station.ProcModel `json:"model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.Model.Proc != "work" || one.Model.Samples == 0 {
		t.Fatalf("/v1/models/work = %+v", one)
	}

	resp, err = http.Get(srv.URL + "/v1/models/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown procedure returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m station.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.FramesAccepted == 0 || m.Epoch != 1 || len(m.ShardQueueDepth) != 2 {
		t.Fatalf("/v1/metrics = %+v", m)
	}
}

// EpochFrames cuts epochs automatically as traffic accumulates.
func TestAutoEpochCut(t *testing.T) {
	uploads := simulateFleet(t, 2)
	s := newStation(t, station.Config{Shards: 2, EpochFrames: 8})
	defer s.Close()
	if _, _, err := s.IngestUploads(uploads); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic epoch cut after ingest")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close seals the open window (flushing a final snapshot when durable)
// and rejects further ingest.
func TestCloseFlushesFinalEpoch(t *testing.T) {
	dir := t.TempDir()
	uploads := simulateFleet(t, 2)
	s := newStation(t, station.Config{Shards: 2, DataDir: dir})
	if _, _, err := s.IngestUploads(uploads); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestFrame(uploads[0].Frames[0]); err != station.ErrClosed {
		t.Fatalf("ingest after close = %v, want ErrClosed", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "latest.json"))
	if err != nil {
		t.Fatalf("no final snapshot on disk: %v", err)
	}
	var snap station.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("final snapshot epoch = %d, want 1", snap.Epoch)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
}

// Rejected inputs at the ingest boundary: garbage, truncation, legacy
// frames.
func TestIngestRejects(t *testing.T) {
	uploads := simulateFleet(t, 1)
	s := newStation(t, station.Config{Shards: 1})
	defer s.Close()

	legacy := trace.Packet{MoteID: 0, Seq: 0, Version: trace.PacketVersionLegacy}
	lf, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, []byte("CTTX"), uploads[0].Frames[0][:5], lf} {
		if err := s.IngestFrame(bad); err == nil {
			t.Fatalf("frame %q accepted, want rejection", bad)
		}
	}
	if got := s.Metrics().FramesRejected; got != 4 {
		t.Fatalf("FramesRejected = %d, want 4", got)
	}
}

// A station that accepts the TCP connection but never answers must not
// hang the client: the push session aborts with ErrAckTimeout once the
// configured ACK deadline expires.
func TestPushAckTimeout(t *testing.T) {
	uploads := simulateFleet(t, 1)
	frames := uploads[0].Frames
	if len(frames) == 0 {
		t.Fatal("fleet produced no frames")
	}

	// A black hole: accept connections, drain bytes, never ACK.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn)
			}()
		}
	}()

	start := time.Now()
	_, err = station.PushFrames(l.Addr().String(), frames, station.PushConfig{
		Retries:    2,
		AckTimeout: 150 * time.Millisecond,
	})
	if !errors.Is(err, station.ErrAckTimeout) {
		t.Fatalf("PushFrames error = %v, want ErrAckTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("push took %v; the deadline did not bound the wait", elapsed)
	}
}

// UDP delivery drops and duplicates frames. The epoch snapshot must be a
// pure function of the accepted frame multiset: a station fed a lossy,
// duplicated stream over UDP publishes the same models as one fed the
// surviving distinct frames exactly once, and the duplicates surface in
// the metrics instead of double-feeding the reassemblers.
func TestServeUDPDropDuplicate(t *testing.T) {
	uploads := simulateFleet(t, 2)
	var frames [][]byte
	for _, up := range uploads {
		frames = append(frames, up.Frames...)
	}

	// Deterministic channel: every 7th frame is dropped, every 5th of the
	// survivors is delivered twice.
	var distinct, delivered [][]byte
	for i, f := range frames {
		if i%7 == 3 {
			continue // dropped in flight
		}
		distinct = append(distinct, f)
		delivered = append(delivered, f)
		if i%5 == 0 {
			delivered = append(delivered, f) // duplicated in flight
		}
	}
	if len(distinct) == len(frames) || len(delivered) == len(distinct) {
		t.Fatalf("channel model degenerate: %d frames, %d distinct, %d delivered",
			len(frames), len(distinct), len(delivered))
	}

	lossy := newStation(t, station.Config{Shards: 2})
	defer lossy.Close()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go lossy.ServeUDP(pc)

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, f := range delivered {
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for lossy.Metrics().FramesAccepted < uint64(len(delivered)) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d UDP frames accepted",
				lossy.Metrics().FramesAccepted, len(delivered))
		}
		time.Sleep(5 * time.Millisecond)
	}
	lossySnap, err := lossy.CutEpoch()
	if err != nil {
		t.Fatal(err)
	}

	ref := newStation(t, station.Config{Shards: 2})
	defer ref.Close()
	for _, f := range distinct {
		if err := ref.IngestFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	refSnap, err := ref.CutEpoch()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(lossySnap, refSnap) {
		a, _ := json.Marshal(lossySnap)
		b, _ := json.Marshal(refSnap)
		t.Fatalf("lossy UDP snapshot diverged from distinct-once reference:\n%s\n%s", a, b)
	}
	m := lossy.Metrics()
	if m.PacketsDuplicate == 0 {
		t.Fatal("duplicated frames were not counted as duplicate packets")
	}
	if m.PacketsLost == 0 {
		t.Fatal("dropped frames were not counted as lost packets")
	}
}
