package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"codetomo/internal/mote"
)

func TestCodecRoundTrip(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: 0, Tick: 0},
		{ID: 1, Tick: 42},
		{ID: 2, Tick: 1 << 40},
		{ID: 7, Tick: 12345},
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events from empty log", len(got))
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("X"),
		[]byte("NOPE...."),
		append([]byte("CTT1"), 0xFF, 0xFF, 0xFF, 0xFF), // absurd count
		append([]byte("CTT1"), 2, 0, 0, 0, 1, 2),       // truncated records
		append([]byte("CTT1"), 0, 0, 0, 0, 'x'),        // trailing garbage
	}
	for i, data := range cases {
		if _, err := ReadEvents(bytes.NewReader(data)); !errors.Is(err, ErrBadTraceFile) {
			t.Errorf("case %d: err = %v, want ErrBadTraceFile", i, err)
		}
	}
}

// A mote upload is exactly one log: concatenated or padded files are
// corrupt and must be rejected, not silently truncated at the declared
// record count.
func TestCodecRejectsTrailingBytes(t *testing.T) {
	events := []mote.TraceEvent{{ID: 0, Tick: 1}, {ID: 1, Tick: 9}}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	concat := append(append([]byte{}, buf.Bytes()...), buf.Bytes()...)
	if _, err := ReadEvents(bytes.NewReader(concat)); !errors.Is(err, ErrBadTraceFile) {
		t.Errorf("concatenated logs: err = %v, want ErrBadTraceFile", err)
	}
	padded := append(append([]byte{}, buf.Bytes()...), 0)
	if _, err := ReadEvents(bytes.NewReader(padded)); !errors.Is(err, ErrBadTraceFile) {
		t.Errorf("padded log: err = %v, want ErrBadTraceFile", err)
	}
	// The pristine log still decodes.
	if got, err := ReadEvents(bytes.NewReader(buf.Bytes())); err != nil || len(got) != 2 {
		t.Errorf("pristine log: got %d events, err = %v", len(got), err)
	}
}

// Property: any event log round-trips exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ids []int32, ticks []uint64) bool {
		n := len(ids)
		if len(ticks) < n {
			n = len(ticks)
		}
		events := make([]mote.TraceEvent, n)
		for i := 0; i < n; i++ {
			events[i] = mote.TraceEvent{ID: ids[i], Tick: ticks[i]}
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, events); err != nil {
			return false
		}
		got, err := ReadEvents(&buf)
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
