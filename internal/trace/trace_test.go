package trace

import (
	"errors"
	"testing"

	"codetomo/internal/mote"
)

func ev(id int32, tick uint64) mote.TraceEvent { return mote.TraceEvent{ID: id, Tick: tick} }

func TestExtractFlat(t *testing.T) {
	ivs, err := Extract([]mote.TraceEvent{
		ev(EnterID(0), 0), ev(ExitID(0), 10),
		ev(EnterID(0), 20), ev(ExitID(0), 35),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].GrossTicks() != 10 || ivs[1].GrossTicks() != 15 {
		t.Fatalf("gross = %d/%d", ivs[0].GrossTicks(), ivs[1].GrossTicks())
	}
	if ivs[0].ExclusiveTicks() != 10 {
		t.Fatalf("exclusive = %d", ivs[0].ExclusiveTicks())
	}
}

func TestExtractNested(t *testing.T) {
	// main(1) calls child(0) twice: main [0,100], children [10,20], [30,45].
	ivs, err := Extract([]mote.TraceEvent{
		ev(EnterID(1), 0),
		ev(EnterID(0), 10), ev(ExitID(0), 20),
		ev(EnterID(0), 30), ev(ExitID(0), 45),
		ev(ExitID(1), 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	// Completion order: child, child, main.
	main := ivs[2]
	if main.ProcIndex != 1 || main.Depth != 0 {
		t.Fatalf("main interval = %+v", main)
	}
	if main.ChildTicks != 25 {
		t.Fatalf("child ticks = %d, want 25", main.ChildTicks)
	}
	if main.ExclusiveTicks() != 75 {
		t.Fatalf("exclusive = %d, want 75", main.ExclusiveTicks())
	}
	if ivs[0].Depth != 1 {
		t.Fatalf("child depth = %d", ivs[0].Depth)
	}
}

func TestExtractRecursion(t *testing.T) {
	// f(0) calls itself once.
	ivs, err := Extract([]mote.TraceEvent{
		ev(EnterID(0), 0),
		ev(EnterID(0), 5), ev(ExitID(0), 15),
		ev(ExitID(0), 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[1].ExclusiveTicks() != 20 {
		t.Fatalf("outer exclusive = %d, want 20", ivs[1].ExclusiveTicks())
	}
}

func TestExtractMalformed(t *testing.T) {
	cases := [][]mote.TraceEvent{
		{ev(ExitID(0), 5)},                    // exit without enter
		{ev(EnterID(0), 0)},                   // unclosed
		{ev(EnterID(0), 0), ev(ExitID(1), 5)}, // mismatched proc
		{ev(-3, 0)},                           // negative id
		{ev(EnterID(0), 0), ev(EnterID(1), 1), ev(ExitID(0), 2)}, // cross-nesting
	}
	for i, events := range cases {
		if _, err := Extract(events); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestExclusiveClamp(t *testing.T) {
	// Child gross (quantized) can exceed parent's span by a tick; the
	// exclusive time must clamp to zero, not wrap around.
	iv := Interval{EnterTick: 10, ExitTick: 12, ChildTicks: 3}
	if iv.ExclusiveTicks() != 0 {
		t.Fatalf("exclusive = %d, want 0", iv.ExclusiveTicks())
	}
}

func TestExclusiveByProc(t *testing.T) {
	ivs, err := Extract([]mote.TraceEvent{
		ev(EnterID(1), 0),
		ev(EnterID(0), 10), ev(ExitID(0), 20),
		ev(ExitID(1), 50),
		ev(EnterID(0), 60), ev(ExitID(0), 65),
	})
	if err != nil {
		t.Fatal(err)
	}
	by := ExclusiveByProc(ivs)
	if len(by[0]) != 2 || len(by[1]) != 1 {
		t.Fatalf("grouping = %v", by)
	}
	if by[1][0] != 40 {
		t.Fatalf("proc1 exclusive = %d", by[1][0])
	}
}

func TestDurationsCycles(t *testing.T) {
	got := DurationsCycles([]uint64{1, 5}, 8)
	if got[0] != 8 || got[1] != 40 {
		t.Fatalf("cycles = %v", got)
	}
}

// TestExtractPowerMarker: Extract tolerates power markers — frames open
// across a checkpoint restore are structurally balanced (their exits
// arrive after re-execution) but their intervals span the outage, so they
// are suppressed; invocations nested after the marker are kept.
func TestExtractPowerMarker(t *testing.T) {
	ivs, err := Extract([]mote.TraceEvent{
		{ID: EnterID(0), Tick: 1},
		{ID: EnterID(1), Tick: 2},
		{ID: mote.PowerMarkID, Tick: 50},
		{ID: ExitID(1), Tick: 60},                             // doomed
		{ID: EnterID(1), Tick: 61}, {ID: ExitID(1), Tick: 65}, // clean
		{ID: ExitID(0), Tick: 70}, // doomed
	})
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if len(ivs) != 1 || ivs[0].EnterTick != 61 || ivs[0].ExitTick != 65 {
		t.Fatalf("intervals = %+v, want only the post-restore invocation", ivs)
	}
	// A doomed frame still participates in nesting checks: a mismatched
	// exit remains malformed.
	if _, err := Extract([]mote.TraceEvent{
		{ID: EnterID(0), Tick: 1},
		{ID: mote.PowerMarkID, Tick: 5},
		{ID: ExitID(1), Tick: 9},
	}); err == nil {
		t.Fatal("mismatched exit after power marker accepted")
	}
}
