package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"codetomo/internal/mote"
)

// The on-disk trace format models what a mote deployment uploads for
// offline decoding: a small header followed by fixed-width little-endian
// records. Version 1 records are (id int32, tick uint64).
var traceMagic = [4]byte{'C', 'T', 'T', '1'}

// ErrBadTraceFile is returned when decoding input that is not a trace file.
var ErrBadTraceFile = errors.New("trace: not a trace file")

// WriteEvents serializes a trace event log.
func WriteEvents(w io.Writer, events []mote.TraceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(events))); err != nil {
		return err
	}
	for _, ev := range events {
		if err := binary.Write(bw, binary.LittleEndian, ev.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, ev.Tick); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents deserializes a trace event log written by WriteEvents.
func ReadEvents(r io.Reader) ([]mote.TraceEvent, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadTraceFile, magic[:])
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTraceFile)
	}
	const maxEvents = 1 << 26 // 64M events ≈ 768 MB; reject absurd headers
	if n > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadTraceFile, n)
	}
	events := make([]mote.TraceEvent, 0, n)
	for i := uint32(0); i < n; i++ {
		var ev mote.TraceEvent
		if err := binary.Read(br, binary.LittleEndian, &ev.ID); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadTraceFile, i)
		}
		if err := binary.Read(br, binary.LittleEndian, &ev.Tick); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadTraceFile, i)
		}
		events = append(events, ev)
	}
	// The header promised exactly n records; anything after them means a
	// corrupt or concatenated upload, which must fail loudly rather than be
	// silently truncated.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTraceFile, err)
		}
		return nil, fmt.Errorf("%w: trailing data after %d records", ErrBadTraceFile, n)
	}
	return events, nil
}
