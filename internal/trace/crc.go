package trace

// crc16 is CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF, no
// reflection) — the frame check sequence low-power radio hardware
// (IEEE 802.15.4) already computes, which is why the CTP2 uplink frame
// adopts it rather than inventing a checksum.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
