package trace

import (
	"bytes"
	"io"
	"testing"
)

// Baselines for future perf work on the measurement channel: the on-disk
// codec, the radio packet codec, and stream reassembly.

func BenchmarkWriteEvents(b *testing.B) {
	events, _ := syntheticLog(5000)
	b.SetBytes(int64(8 + len(events)*12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteEvents(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadEvents(b *testing.B) {
	events, _ := syntheticLog(5000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEvents(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketMarshal(b *testing.B) {
	events, _ := syntheticLog(16)
	p := Packet{MoteID: 1, Seq: 7, Events: events}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketUnmarshal(b *testing.B) {
	events, _ := syntheticLog(16)
	data, err := (&Packet{MoteID: 1, Seq: 7, Events: events}).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var p Packet
		if err := p.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReassemble(b *testing.B) {
	events, _ := syntheticLog(5000)
	pkts := Packetize(1, events, DefaultEventsPerPacket)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReassembler(1)
		for _, p := range pkts {
			if err := r.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		ivs, _ := r.Recover()
		if len(ivs) == 0 {
			b.Fatal("no intervals")
		}
	}
}
