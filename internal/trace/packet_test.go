package trace

import (
	"bytes"
	"errors"
	"testing"

	"codetomo/internal/mote"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{MoteID: 7, Seq: 42, Events: []mote.TraceEvent{
		{ID: 0, Tick: 10}, {ID: 1, Tick: 25}, {ID: 4, Tick: 1 << 40},
	}}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q.MoteID != p.MoteID || q.Seq != p.Seq || len(q.Events) != len(p.Events) {
		t.Fatalf("got %+v, want %+v", q, p)
	}
	for i := range p.Events {
		if q.Events[i] != p.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, q.Events[i], p.Events[i])
		}
	}
}

func TestPacketRejectsGarbage(t *testing.T) {
	good, _ := (&Packet{MoteID: 1, Seq: 0, Events: []mote.TraceEvent{{ID: 0, Tick: 1}}}).MarshalBinary()
	cases := [][]byte{
		nil,
		[]byte("CTP"),
		[]byte("NOPE........"),
		append([]byte("CTP1"), 0, 0, 0, 0, 0, 0, 0xFF, 0xFF), // absurd count
		good[:len(good)-1],                   // truncated record
		append(append([]byte{}, good...), 0), // trailing byte
	}
	for i, data := range cases {
		var p Packet
		if err := p.UnmarshalBinary(data); !errors.Is(err, ErrBadPacket) {
			t.Errorf("case %d: err = %v, want ErrBadPacket", i, err)
		}
	}
}

func TestPacketizeBoundaries(t *testing.T) {
	events := make([]mote.TraceEvent, 10)
	for i := range events {
		events[i] = mote.TraceEvent{ID: int32(i % 4), Tick: uint64(i)}
	}
	pkts := Packetize(3, events, 4)
	if len(pkts) != 3 {
		t.Fatalf("got %d packets, want 3", len(pkts))
	}
	total := 0
	for i, p := range pkts {
		if p.MoteID != 3 || p.Seq != uint32(i) {
			t.Fatalf("packet %d: mote %d seq %d", i, p.MoteID, p.Seq)
		}
		total += len(p.Events)
	}
	if total != len(events) {
		t.Fatalf("packetize lost events: %d of %d", total, len(events))
	}
	if Packetize(0, nil, 4) != nil {
		t.Fatal("empty log should produce no packets")
	}
}

// syntheticLog builds a well-nested log: n depth-0 invocations of proc 0,
// every third one calling proc 1. Returns the log and the per-proc
// invocation counts.
func syntheticLog(n int) ([]mote.TraceEvent, map[int]int) {
	var events []mote.TraceEvent
	tick := uint64(0)
	next := func(id int32) {
		tick += 3
		events = append(events, mote.TraceEvent{ID: id, Tick: tick})
	}
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		next(EnterID(0))
		if i%3 == 0 {
			next(EnterID(1))
			next(ExitID(1))
			counts[1]++
		}
		next(ExitID(0))
		counts[0]++
	}
	return events, counts
}

// TestReassemblerLossSemantics is the loss-tolerance contract: for specific
// drop/duplicate/reorder patterns, exactly the invocations a lost packet
// truncates disappear and everything else survives.
func TestReassemblerLossSemantics(t *testing.T) {
	// A log with 9 proc-0 invocations (3 of which contain a proc-1 call) =
	// 9*2 + 3*2 = 24 events → 8 packets of 3. Three events per packet makes
	// packet borders fall inside invocations, so drops genuinely truncate.
	events, counts := syntheticLog(9)
	if len(events) != 24 {
		t.Fatalf("synthetic log has %d events", len(events))
	}
	pkts := Packetize(1, events, 3)
	if len(pkts) != 8 {
		t.Fatalf("got %d packets", len(pkts))
	}

	cases := []struct {
		name      string
		deliver   []int // packet indices in arrival order (repeats = dup)
		wantProc  map[int]int
		wantLost  int // PacketsLost
		wantDup   int
		discardLo int // minimum InvocationsDiscarded
	}{
		{
			name:     "lossless in order",
			deliver:  []int{0, 1, 2, 3, 4, 5, 6, 7},
			wantProc: counts,
		},
		{
			name:     "reordered and duplicated",
			deliver:  []int{1, 0, 3, 2, 5, 5, 4, 0, 7, 6},
			wantProc: counts,
			wantDup:  2,
		},
		{
			// Packet 1 carries invocation 0's exit and all of invocation 1:
			// dropping it truncates invocation 0 (its proc-1 callee, fully
			// inside packet 0, must survive) and loses invocation 1
			// outright; everything from packet 2 on is intact.
			name:      "interior drop",
			deliver:   []int{0, 2, 3, 4, 5, 6, 7},
			wantLost:  1,
			discardLo: 1,
		},
		{
			name:      "two gaps",
			deliver:   []int{0, 1, 3, 4, 6, 7},
			wantLost:  2,
			discardLo: 2,
		},
		{
			name:     "tail drop",
			deliver:  []int{0, 1, 2, 3, 4, 5, 6},
			wantLost: 0, // tail loss is indistinguishable from stream end
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReassembler(1)
			for _, i := range tc.deliver {
				if err := r.Add(pkts[i]); err != nil {
					t.Fatal(err)
				}
			}
			ivs, st := r.Recover()
			got := map[int]int{}
			for _, iv := range ivs {
				got[iv.ProcIndex]++
				if iv.ExitTick < iv.EnterTick {
					t.Fatalf("inverted interval %+v", iv)
				}
			}
			if tc.wantProc != nil {
				for proc, want := range tc.wantProc {
					if got[proc] != want {
						t.Errorf("proc %d: recovered %d invocations, want %d", proc, got[proc], want)
					}
				}
				if st.InvocationsDiscarded != 0 {
					t.Errorf("discarded %d invocations, want 0", st.InvocationsDiscarded)
				}
			}
			if st.PacketsLost != tc.wantLost {
				t.Errorf("PacketsLost = %d, want %d", st.PacketsLost, tc.wantLost)
			}
			if st.PacketsDuplicate != tc.wantDup {
				t.Errorf("PacketsDuplicate = %d, want %d", st.PacketsDuplicate, tc.wantDup)
			}
			if st.InvocationsDiscarded < tc.discardLo {
				t.Errorf("InvocationsDiscarded = %d, want >= %d", st.InvocationsDiscarded, tc.discardLo)
			}
			if st.InvocationsRecovered != len(ivs) {
				t.Errorf("InvocationsRecovered = %d, ivs = %d", st.InvocationsRecovered, len(ivs))
			}
			// Loss only removes invocations, never invents them, and the
			// survivors' durations match the lossless reconstruction.
			lossless, _ := Extract(events)
			byKey := map[[2]uint64]Interval{}
			for _, iv := range lossless {
				byKey[[2]uint64{iv.EnterTick, iv.ExitTick}] = iv
			}
			for _, iv := range ivs {
				ref, ok := byKey[[2]uint64{iv.EnterTick, iv.ExitTick}]
				if !ok {
					t.Fatalf("recovered interval %+v not in lossless set", iv)
				}
				if ref.ProcIndex != iv.ProcIndex || ref.ChildTicks != iv.ChildTicks {
					t.Fatalf("recovered %+v differs from lossless %+v", iv, ref)
				}
			}
		})
	}
}

// A gap inside a nested region discards the enclosing invocation but keeps
// complete callees on both sides of the gap.
func TestReassemblerNestedGap(t *testing.T) {
	// outer enter | inner1 enter, exit | inner2 enter, exit | outer exit
	events := []mote.TraceEvent{
		{ID: EnterID(0), Tick: 1},
		{ID: EnterID(1), Tick: 2}, {ID: ExitID(1), Tick: 3},
		{ID: EnterID(1), Tick: 4}, {ID: ExitID(1), Tick: 5},
		{ID: ExitID(0), Tick: 6},
	}
	pkts := Packetize(0, events, 2) // [outer+in1enter][in1exit+in2enter][in2exit+outerexit]
	r := NewReassembler(0)
	_ = r.Add(pkts[0])
	_ = r.Add(pkts[2]) // drop the middle packet
	ivs, st := r.Recover()
	for _, iv := range ivs {
		if iv.ProcIndex == 0 {
			t.Fatalf("outer invocation should have been truncated: %+v", iv)
		}
	}
	// Both inner invocations are split across the gap, so nothing survives
	// intact, and the outer frame plus both halves are discarded.
	if st.InvocationsDiscarded < 2 {
		t.Fatalf("discarded = %d, want >= 2", st.InvocationsDiscarded)
	}
}

func TestReassemblerRejectsForeignMote(t *testing.T) {
	r := NewReassembler(1)
	if err := r.Add(Packet{MoteID: 2}); err == nil {
		t.Fatal("foreign mote accepted")
	}
}

// The salvage path agrees with strict Extract on lossless streams.
func TestSalvageMatchesExtract(t *testing.T) {
	events, _ := syntheticLog(20)
	want, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(9)
	for _, p := range Packetize(9, events, 5) {
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	got, st := r.Recover()
	if len(got) != len(want) || st.InvocationsDiscarded != 0 {
		t.Fatalf("salvage: %d intervals (%d discarded), extract: %d", len(got), st.InvocationsDiscarded, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestPacketWireFormatIsStable(t *testing.T) {
	// The wire format is a contract with deployed motes: pin both versions.
	body := []byte{
		0x02, 0x01, // mote id LE
		0x06, 0x05, 0x04, 0x03, // seq LE
		0x01, 0x00, // count LE
		0x02, 0x00, 0x00, 0x00, // id LE
		0x0A, 0, 0, 0, 0, 0, 0, 0, // tick LE
	}
	events := []mote.TraceEvent{{ID: 2, Tick: 0x0A}}

	v1 := Packet{MoteID: 0x0102, Seq: 0x03040506, Events: events, Version: PacketVersionLegacy}
	data, err := v1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("CTP1"), body...)
	if !bytes.Equal(data, want) {
		t.Fatalf("v1 wire bytes:\n got %x\nwant %x", data, want)
	}

	// Version 0 defaults to the CRC format: CTP2 magic, same body, CRC-16
	// (CCITT-FALSE over magic+body) appended little-endian.
	v2 := Packet{MoteID: 0x0102, Seq: 0x03040506, Events: events}
	data, err = v2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want = append(append([]byte("CTP2"), body...), 0x11, 0xEB)
	if !bytes.Equal(data, want) {
		t.Fatalf("v2 wire bytes:\n got %x\nwant %x", data, want)
	}
	if got := crc16(want[:len(want)-2]); got != 0xEB11 {
		t.Fatalf("crc16 = %#04x, want 0xEB11", got)
	}
}

// Legacy CTP1 captures must keep decoding, and decode must preserve the
// version so re-marshal round-trips byte-for-byte.
func TestPacketLegacyFixtureDecodes(t *testing.T) {
	fixture := []byte{
		'C', 'T', 'P', '1',
		0x07, 0x00, // mote 7
		0x2A, 0x00, 0x00, 0x00, // seq 42
		0x02, 0x00, // 2 events
		0x00, 0x00, 0x00, 0x00, 0x0A, 0, 0, 0, 0, 0, 0, 0,
		0x01, 0x00, 0x00, 0x00, 0x19, 0, 0, 0, 0, 0, 0, 0,
	}
	var p Packet
	if err := p.UnmarshalBinary(fixture); err != nil {
		t.Fatalf("v1 fixture rejected: %v", err)
	}
	if p.Version != PacketVersionLegacy || p.MoteID != 7 || p.Seq != 42 || len(p.Events) != 2 {
		t.Fatalf("decoded %+v", p)
	}
	re, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, fixture) {
		t.Fatalf("v1 re-marshal changed bytes:\n got %x\nwant %x", re, fixture)
	}
}

// Every single-byte corruption of a v2 frame must be rejected — either by
// the CRC (ErrCorruptPacket) or, when the damage hits the magic or length
// fields, by framing (ErrBadPacket). Nothing decodes silently wrong.
func TestPacketCRCRejectsCorruption(t *testing.T) {
	p := Packet{MoteID: 3, Seq: 9, Events: []mote.TraceEvent{{ID: 1, Tick: 100}, {ID: 2, Tick: 250}}}
	good, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		for _, flip := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), good...)
			bad[i] ^= flip
			var q Packet
			err := q.UnmarshalBinary(bad)
			if err == nil {
				t.Fatalf("corruption at byte %d (flip %#02x) decoded silently", i, flip)
			}
			if !errors.Is(err, ErrCorruptPacket) && !errors.Is(err, ErrBadPacket) {
				t.Fatalf("byte %d: unexpected error %v", i, err)
			}
		}
	}
	// An uncorrupted frame still decodes, with the version preserved.
	var q Packet
	if err := q.UnmarshalBinary(good); err != nil {
		t.Fatal(err)
	}
	if q.Version != PacketVersionCRC {
		t.Fatalf("Version = %d, want %d", q.Version, PacketVersionCRC)
	}
}

// AddFrame is the base station's ingest path: corrupt frames are counted,
// not fatal, and never contribute events (the corrupted-packet accounting
// satellite).
func TestReassemblerAddFrameCountsCorrupt(t *testing.T) {
	events, _ := syntheticLog(4)
	pkts := Packetize(5, events, 4)
	r := NewReassembler(5)
	corrupt := 0
	for i, p := range pkts {
		f, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			f[len(f)-1] ^= 0xFF // mangle the CRC
			corrupt++
		}
		if err := r.AddFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	_, st := r.Recover()
	if st.PacketsCorrupted != corrupt {
		t.Fatalf("PacketsCorrupted = %d, want %d", st.PacketsCorrupted, corrupt)
	}
	if st.PacketsDelivered != len(pkts)-corrupt {
		t.Fatalf("PacketsDelivered = %d, want %d", st.PacketsDelivered, len(pkts)-corrupt)
	}
	// A CRC-validated packet from a foreign mote is a routing bug, not
	// noise — the checksum vouches for the mote ID.
	foreign, _ := (&Packet{MoteID: 6, Seq: 0, Events: []mote.TraceEvent{{ID: 0, Tick: 1}}}).MarshalBinary()
	if err := r.AddFrame(foreign); err == nil {
		t.Fatal("foreign mote frame accepted")
	}
	// On a checksum-less legacy frame the same mismatch is indistinguishable
	// from a bit flip in the ID field: rejected and counted, never an error.
	legacyForeign, _ := (&Packet{Version: PacketVersionLegacy, MoteID: 6, Seq: 1,
		Events: []mote.TraceEvent{{ID: 0, Tick: 1}}}).MarshalBinary()
	if err := r.AddFrame(legacyForeign); err != nil {
		t.Fatalf("legacy foreign frame errored: %v", err)
	}
	if _, st2 := r.Recover(); st2.PacketsCorrupted != corrupt+1 {
		t.Fatalf("legacy foreign frame not counted corrupt: %d, want %d", st2.PacketsCorrupted, corrupt+1)
	}
}

// An epoch marker (watchdog reset) inside a segment truncates the frames
// open at the crash; invocations completed before it and started after it
// both survive.
func TestSalvageEpochMarker(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: EnterID(0), Tick: 1}, {ID: ExitID(0), Tick: 5}, // completes pre-crash
		{ID: EnterID(0), Tick: 6}, // open at the crash
		{ID: mote.EpochMarkID, Tick: 8},
		{ID: EnterID(0), Tick: 10}, {ID: ExitID(0), Tick: 14}, // post-reboot
	}
	r := NewReassembler(2)
	for _, p := range Packetize(2, events, 3) {
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ivs, st := r.Recover()
	if len(ivs) != 2 {
		t.Fatalf("recovered %d intervals, want 2: %+v", len(ivs), ivs)
	}
	if ivs[0].EnterTick != 1 || ivs[1].EnterTick != 10 {
		t.Fatalf("wrong survivors: %+v", ivs)
	}
	if st.InvocationsDiscarded != 1 {
		t.Fatalf("discarded = %d, want 1 (the frame open at the crash)", st.InvocationsDiscarded)
	}
}

// TestSalvagePowerMarker: a power marker (checkpoint restore) dooms the
// invocations that straddle it — they are counted as lost partials per
// procedure and their exits are discarded — while everything completed
// before the marker or opened after it survives, including children of a
// doomed frame.
func TestSalvagePowerMarker(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: EnterID(0), Tick: 1},                           // main: open across the outage — doomed
		{ID: EnterID(1), Tick: 2}, {ID: ExitID(1), Tick: 5}, // completes pre-outage
		{ID: EnterID(1), Tick: 6}, // handler: open at the outage — doomed
		{ID: mote.PowerMarkID, Tick: 100},
		{ID: ExitID(1), Tick: 110},                              // doomed handler's exit: spans the outage
		{ID: EnterID(1), Tick: 111}, {ID: ExitID(1), Tick: 115}, // clean post-restore child of doomed main
		{ID: ExitID(0), Tick: 120}, // doomed main's exit
	}
	r := NewReassembler(3)
	for _, p := range Packetize(3, events, 4) {
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ivs, st := r.Recover()
	if len(ivs) != 2 {
		t.Fatalf("recovered %d intervals, want 2: %+v", len(ivs), ivs)
	}
	if ivs[0].EnterTick != 2 || ivs[1].EnterTick != 111 {
		t.Fatalf("wrong survivors: %+v", ivs)
	}
	if st.LostPartials != 2 {
		t.Fatalf("lost partials = %d, want 2 (main and the open handler)", st.LostPartials)
	}
	if st.LostPartialsByProc[0] != 1 || st.LostPartialsByProc[1] != 1 {
		t.Fatalf("per-proc lost partials = %v", st.LostPartialsByProc)
	}
	if st.InvocationsDiscarded != 2 {
		t.Fatalf("discarded = %d, want 2 (the doomed pair)", st.InvocationsDiscarded)
	}
}

// TestSalvagePowerMarkerNoDoubleCount: a frame that stays open across
// several restores is one lost partial, not one per marker; a cold boot
// (epoch marker) after a restore must not re-count already-doomed frames,
// and its own truncations are lost partials too.
func TestSalvagePowerMarkerNoDoubleCount(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: EnterID(2), Tick: 1},
		{ID: mote.PowerMarkID, Tick: 10},
		{ID: mote.PowerMarkID, Tick: 20}, // second outage, same open frame
		{ID: EnterID(3), Tick: 25},       // opened after the restores
		{ID: mote.EpochMarkID, Tick: 30}, // cold boot truncates both
		{ID: EnterID(2), Tick: 40}, {ID: ExitID(2), Tick: 44},
	}
	r := NewReassembler(4)
	for _, p := range Packetize(4, events, 0) {
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ivs, st := r.Recover()
	if len(ivs) != 1 || ivs[0].EnterTick != 40 {
		t.Fatalf("survivors = %+v, want the post-reboot pair", ivs)
	}
	// Proc 2's frame: doomed once at the first marker. Proc 3's frame:
	// truncated by the cold boot. The second power marker adds nothing.
	if st.LostPartials != 2 {
		t.Fatalf("lost partials = %d, want 2", st.LostPartials)
	}
	if st.LostPartialsByProc[2] != 1 || st.LostPartialsByProc[3] != 1 {
		t.Fatalf("per-proc lost partials = %v", st.LostPartialsByProc)
	}
	if st.InvocationsDiscarded != 2 {
		t.Fatalf("discarded = %d, want 2", st.InvocationsDiscarded)
	}
}

// TestSalvageEpochMarkerCountsLostPartials: frames truncated by a cold
// boot are power-truncated executions — the survival-bias correction needs
// them counted per procedure just like restore-doomed frames.
func TestSalvageEpochMarkerCountsLostPartials(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: EnterID(0), Tick: 1},
		{ID: EnterID(1), Tick: 3},
		{ID: mote.EpochMarkID, Tick: 9},
		{ID: EnterID(0), Tick: 10}, {ID: ExitID(0), Tick: 12},
	}
	r := NewReassembler(5)
	for _, p := range Packetize(5, events, 0) {
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ivs, st := r.Recover()
	if len(ivs) != 1 {
		t.Fatalf("recovered %d intervals, want 1", len(ivs))
	}
	if st.LostPartials != 2 || st.LostPartialsByProc[0] != 1 || st.LostPartialsByProc[1] != 1 {
		t.Fatalf("lost partials = %d %v, want one each for procs 0 and 1", st.LostPartials, st.LostPartialsByProc)
	}
}

// TestSalvageGapIsNotLostPartial: channel loss truncates invocations too,
// but those are not power events — they must stay out of LostPartials or
// the survival-bias correction would conflate radio loss with mote death.
func TestSalvageGapIsNotLostPartial(t *testing.T) {
	events := []mote.TraceEvent{
		{ID: EnterID(0), Tick: 1}, {ID: ExitID(0), Tick: 5},
		{ID: EnterID(0), Tick: 6}, {ID: ExitID(0), Tick: 9},
		{ID: EnterID(0), Tick: 10}, {ID: ExitID(0), Tick: 14},
	}
	pkts := Packetize(6, events, 3)
	r := NewReassembler(6)
	if err := r.Add(pkts[0]); err != nil {
		t.Fatal(err)
	}
	// pkts[1] lost: invocation 2 is split across the gap, invocation 3's
	// exit is in the lost packet.
	ivs, st := r.Recover()
	if len(ivs) != 1 {
		t.Fatalf("recovered %d intervals, want 1", len(ivs))
	}
	if st.InvocationsDiscarded == 0 {
		t.Fatal("gap should discard the split invocations")
	}
	if st.LostPartials != 0 || st.LostPartialsByProc != nil {
		t.Fatalf("channel loss counted as lost partials: %d %v", st.LostPartials, st.LostPartialsByProc)
	}
}
