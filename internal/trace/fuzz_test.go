package trace

import (
	"bytes"
	"testing"

	"codetomo/internal/mote"
)

// FuzzReadEvents checks the trace decoder never panics on arbitrary bytes,
// and that anything it accepts round-trips.
func FuzzReadEvents(f *testing.F) {
	var good bytes.Buffer
	_ = WriteEvents(&good, nil)
	f.Add(good.Bytes())
	f.Add([]byte("CTT1"))
	f.Add([]byte("CTT1\x02\x00\x00\x00junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(events))
		}
	})
}

// FuzzExtract checks interval reconstruction never panics and never
// produces inverted intervals, for arbitrary monotone event sequences.
func FuzzExtract(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 1, 1})
	f.Add([]byte{2, 3})
	f.Fuzz(func(t *testing.T, ids []byte) {
		events := make([]mote.TraceEvent, 0, len(ids))
		tick := uint64(0)
		for _, id := range ids {
			tick += uint64(id % 7)
			events = append(events, mote.TraceEvent{ID: int32(id % 16), Tick: tick})
		}
		ivs, err := Extract(events)
		if err != nil {
			return // malformed logs are rejected, not crashed on
		}
		for _, iv := range ivs {
			if iv.ExitTick < iv.EnterTick {
				t.Fatalf("inverted interval: %+v", iv)
			}
			if iv.ExclusiveTicks() > iv.GrossTicks() {
				t.Fatalf("exclusive exceeds gross: %+v", iv)
			}
		}
	})
}
