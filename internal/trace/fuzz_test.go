package trace

import (
	"bytes"
	"testing"

	"codetomo/internal/mote"
)

// FuzzReadEvents checks the trace decoder never panics on arbitrary bytes,
// and that anything it accepts round-trips.
func FuzzReadEvents(f *testing.F) {
	var good bytes.Buffer
	_ = WriteEvents(&good, nil)
	f.Add(good.Bytes())
	f.Add(append(append([]byte{}, good.Bytes()...), 'x')) // trailing garbage
	f.Add([]byte("CTT1"))
	f.Add([]byte("CTT1\x02\x00\x00\x00junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(events))
		}
	})
}

// FuzzPacketDecode checks the packet decoder never panics on arbitrary
// bytes, and that anything it accepts re-marshals to the identical frame
// (the decoder is strict, so accepted input is exactly one packet).
func FuzzPacketDecode(f *testing.F) {
	good, _ := (&Packet{MoteID: 2, Seq: 9, Events: []mote.TraceEvent{{ID: 4, Tick: 77}}}).MarshalBinary()
	legacy, _ := (&Packet{MoteID: 2, Seq: 9, Version: PacketVersionLegacy,
		Events: []mote.TraceEvent{{ID: 4, Tick: 77}}}).MarshalBinary()
	badCRC := append([]byte(nil), good...)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(good)
	f.Add(legacy)
	f.Add(badCRC)
	f.Add(good[:len(good)-1])
	f.Add(append(append([]byte{}, good...), 0))
	f.Add([]byte("CTP1"))
	f.Add([]byte("CTP2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes:\n got %x\nwant %x", out, data)
		}
	})
}

// FuzzReassembler feeds arbitrary packet subsets (drops, duplicates,
// reorderings encoded in the perm bytes) of a synthetic log through the
// reassembler: it must never panic, never invent invocations, and keep
// every recovered interval well-formed.
func FuzzReassembler(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(3))
	f.Add([]byte{3, 1, 1, 0}, uint8(2))
	f.Add([]byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, perm []byte, perPacket uint8) {
		events, _ := syntheticLog(12)
		pkts := Packetize(5, events, int(perPacket%8))
		lossless, err := Extract(events)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReassembler(5)
		for _, b := range perm {
			if len(pkts) == 0 {
				break
			}
			if err := r.Add(pkts[int(b)%len(pkts)]); err != nil {
				t.Fatal(err)
			}
		}
		ivs, st := r.Recover()
		if len(ivs) > len(lossless) {
			t.Fatalf("recovered %d intervals from %d lossless", len(ivs), len(lossless))
		}
		if st.InvocationsRecovered != len(ivs) {
			t.Fatalf("stats disagree: %d vs %d", st.InvocationsRecovered, len(ivs))
		}
		for _, iv := range ivs {
			if iv.ExitTick < iv.EnterTick || iv.ExclusiveTicks() > iv.GrossTicks() {
				t.Fatalf("malformed interval %+v", iv)
			}
		}
	})
}

// FuzzExtract checks interval reconstruction never panics and never
// produces inverted intervals, for arbitrary monotone event sequences.
func FuzzExtract(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 1, 1})
	f.Add([]byte{2, 3})
	f.Fuzz(func(t *testing.T, ids []byte) {
		events := make([]mote.TraceEvent, 0, len(ids))
		tick := uint64(0)
		for _, id := range ids {
			tick += uint64(id % 7)
			events = append(events, mote.TraceEvent{ID: int32(id % 16), Tick: tick})
		}
		ivs, err := Extract(events)
		if err != nil {
			return // malformed logs are rejected, not crashed on
		}
		for _, iv := range ivs {
			if iv.ExitTick < iv.EnterTick {
				t.Fatalf("inverted interval: %+v", iv)
			}
			if iv.ExclusiveTicks() > iv.GrossTicks() {
				t.Fatalf("exclusive exceeds gross: %+v", iv)
			}
		}
	})
}
