// Package trace turns the mote's raw TRACE-event log into per-procedure
// duration samples — the only measurement channel Code Tomography is
// allowed to use. An instrumented binary logs (id, tick) at every procedure
// entry and return; this package reconstructs the call tree from the log
// and computes each invocation's gross and exclusive (callee-subtracted)
// duration in timer ticks.
package trace

import (
	"errors"
	"fmt"

	"codetomo/internal/mote"
)

// ErrMalformed is returned when the event log cannot be a well-nested
// execution (mismatched enter/exit ids).
var ErrMalformed = errors.New("trace: malformed event log")

// EnterID and ExitID are the TRACE operand encodings used by the compiler:
// procedure k logs 2k on entry and 2k+1 on return.
func EnterID(procIndex int) int32 { return int32(procIndex * 2) }

// ExitID returns the TRACE operand a procedure logs on return.
func ExitID(procIndex int) int32 { return int32(procIndex*2 + 1) }

// Interval is one reconstructed procedure invocation.
type Interval struct {
	// ProcIndex identifies the procedure (compiler's proc index).
	ProcIndex int
	// EnterTick and ExitTick are the boundary timer readings.
	EnterTick, ExitTick uint64
	// ChildTicks is the summed gross duration of direct callees.
	ChildTicks uint64
	// Depth is the call nesting depth (0 = outermost traced frame).
	Depth int
}

// GrossTicks is the wall duration including callees.
func (iv Interval) GrossTicks() uint64 { return iv.ExitTick - iv.EnterTick }

// ExclusiveTicks is the duration with direct callees' gross time removed —
// the quantity whose distribution the tomography estimator inverts.
func (iv Interval) ExclusiveTicks() uint64 {
	g := iv.GrossTicks()
	if iv.ChildTicks > g {
		// Quantization can make the sum of child ticks exceed the parent
		// reading by a tick; clamp rather than underflow.
		return 0
	}
	return g - iv.ChildTicks
}

// Extract reconstructs invocation intervals from a TRACE log. Events must
// be properly nested (the instrumentation guarantees this); unbalanced logs
// return ErrMalformed. An epoch marker (mote.EpochMarkID, logged at a
// fault-injected reboot) flushes the frames open at the crash — their
// exits never happened — and well-nested execution resumes after it. A
// power marker (mote.PowerMarkID, logged at a checkpoint restore) dooms
// the frames open across it: the restored mote resumes inside them and
// their exits do arrive, but the span covers the outage, so their
// intervals are suppressed while everything nested after the marker is
// kept. Intervals are returned in completion order.
func Extract(events []mote.TraceEvent) ([]Interval, error) {
	type frame struct {
		proc       int
		enter      uint64
		childTicks uint64
		doomed     bool
	}
	var stack []frame
	var out []Interval
	for i, ev := range events {
		if ev.ID == mote.EpochMarkID {
			stack = stack[:0]
			continue
		}
		if ev.ID == mote.PowerMarkID {
			for j := range stack {
				stack[j].doomed = true
			}
			continue
		}
		if ev.ID < 0 {
			return nil, fmt.Errorf("%w: negative id %d at event %d", ErrMalformed, ev.ID, i)
		}
		proc := int(ev.ID / 2)
		if ev.ID%2 == 0 {
			stack = append(stack, frame{proc: proc, enter: ev.Tick})
			continue
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("%w: exit for proc %d with empty stack at event %d", ErrMalformed, proc, i)
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.proc != proc {
			return nil, fmt.Errorf("%w: exit for proc %d while proc %d is open at event %d", ErrMalformed, proc, top.proc, i)
		}
		if top.doomed {
			continue // timing spans a power outage: not a duration sample
		}
		iv := Interval{
			ProcIndex:  proc,
			EnterTick:  top.enter,
			ExitTick:   ev.Tick,
			ChildTicks: top.childTicks,
			Depth:      len(stack),
		}
		out = append(out, iv)
		if len(stack) > 0 {
			stack[len(stack)-1].childTicks += iv.GrossTicks()
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: %d frame(s) still open at end of log", ErrMalformed, len(stack))
	}
	return out, nil
}

// ExclusiveByProc groups exclusive durations (in ticks) by procedure index.
func ExclusiveByProc(ivs []Interval) map[int][]uint64 {
	out := make(map[int][]uint64)
	for _, iv := range ivs {
		out[iv.ProcIndex] = append(out[iv.ProcIndex], iv.ExclusiveTicks())
	}
	return out
}

// DurationsCycles converts tick durations to cycle units (the center of the
// quantization cell), for feeding estimators that work in cycles.
func DurationsCycles(ticks []uint64, tickDiv int) []float64 {
	out := make([]float64, len(ticks))
	for i, t := range ticks {
		out[i] = float64(t) * float64(tickDiv)
	}
	return out
}
