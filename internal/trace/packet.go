package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"codetomo/internal/mote"
)

// The radio uplink format, versioned alongside the on-disk trace format
// ("CTT1"): a mote batches its TRACE events into sequence-numbered packets
// small enough for a low-power radio MTU and transmits them to the base
// station over a lossy link. Packets are self-delimiting so the base
// station can reassemble per-mote streams from whatever subset arrives.
// Two wire versions exist:
//
//	v1: magic "CTP1" (4) | mote id uint16 | seq uint32 | count uint16
//	    count × record, record = (id int32, tick uint64)
//	v2: magic "CTP2" (4) | same header and records | crc uint16
//
// All fields little-endian. The v2 trailer is CRC-16/CCITT-FALSE over
// everything before it, letting the base station reject bit-flipped
// frames instead of decoding garbage; v1 frames (old captures) still
// decode, they just carry no integrity check. Sequence numbers start at 0
// and increase by 1 per packet, which is what makes gaps (lost packets)
// detectable.
var (
	packetMagicV1 = [4]byte{'C', 'T', 'P', '1'}
	packetMagicV2 = [4]byte{'C', 'T', 'P', '2'}
)

// ErrBadPacket is returned when decoding input that is not a trace packet.
var ErrBadPacket = errors.New("trace: not a trace packet")

// ErrCorruptPacket is returned when a v2 frame's CRC check fails: the
// frame was a trace packet once, but the channel damaged it.
var ErrCorruptPacket = errors.New("trace: packet failed CRC")

const (
	// PacketVersionLegacy is the original CRC-less wire format;
	// PacketVersionCRC appends the CRC-16 trailer and is the default for
	// new captures.
	PacketVersionLegacy = 1
	PacketVersionCRC    = 2

	packetHeaderSize = 12 // magic + mote id + seq + count
	packetRecordSize = 12 // id int32 + tick uint64
	packetCRCSize    = 2  // v2 trailer

	// MaxPacketEvents bounds a packet's payload; 85 records keep the wire
	// size near a 1 KB radio frame.
	MaxPacketEvents = 85

	// DefaultEventsPerPacket is the batching used when the caller does not
	// choose one: 32 records ≈ 396 B on the wire.
	DefaultEventsPerPacket = 32
)

// Packet is one radio frame of trace events from one mote.
type Packet struct {
	MoteID uint16
	Seq    uint32
	// Version selects the wire format: PacketVersionLegacy or
	// PacketVersionCRC (0 marshals as PacketVersionCRC). UnmarshalBinary
	// records the version it decoded, so decode→re-marshal round-trips
	// byte for byte on either format.
	Version int
	Events  []mote.TraceEvent
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Packet) MarshalBinary() ([]byte, error) {
	v := p.Version
	if v == 0 {
		v = PacketVersionCRC
	}
	if v != PacketVersionLegacy && v != PacketVersionCRC {
		return nil, fmt.Errorf("trace: unknown packet version %d", v)
	}
	if len(p.Events) > MaxPacketEvents {
		return nil, fmt.Errorf("trace: packet payload %d exceeds %d events", len(p.Events), MaxPacketEvents)
	}
	size := packetHeaderSize + len(p.Events)*packetRecordSize
	if v == PacketVersionCRC {
		size += packetCRCSize
	}
	out := make([]byte, size)
	magic := packetMagicV1
	if v == PacketVersionCRC {
		magic = packetMagicV2
	}
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], p.MoteID)
	binary.LittleEndian.PutUint32(out[6:], p.Seq)
	binary.LittleEndian.PutUint16(out[10:], uint16(len(p.Events)))
	off := packetHeaderSize
	for _, ev := range p.Events {
		binary.LittleEndian.PutUint32(out[off:], uint32(ev.ID))
		binary.LittleEndian.PutUint64(out[off+4:], ev.Tick)
		off += packetRecordSize
	}
	if v == PacketVersionCRC {
		binary.LittleEndian.PutUint16(out[off:], crc16(out[:off]))
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It is strict: the
// buffer must hold exactly one packet, and trailing bytes are an error —
// frames are length-delimited by the radio, so excess data means
// corruption. A v2 frame whose CRC does not match returns
// ErrCorruptPacket.
func (p *Packet) UnmarshalBinary(data []byte) error {
	if len(data) < packetHeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrBadPacket, len(data))
	}
	var version int
	switch [4]byte(data[:4]) {
	case packetMagicV1:
		version = PacketVersionLegacy
	case packetMagicV2:
		version = PacketVersionCRC
	default:
		return fmt.Errorf("%w: magic %q", ErrBadPacket, data[:4])
	}
	count := int(binary.LittleEndian.Uint16(data[10:]))
	if count > MaxPacketEvents {
		return fmt.Errorf("%w: implausible event count %d", ErrBadPacket, count)
	}
	want := packetHeaderSize + count*packetRecordSize
	if version == PacketVersionCRC {
		want += packetCRCSize
	}
	if len(data) != want {
		return fmt.Errorf("%w: %d bytes for %d records (want %d)", ErrBadPacket, len(data), count, want)
	}
	if version == PacketVersionCRC {
		body := data[:len(data)-packetCRCSize]
		if got := binary.LittleEndian.Uint16(data[len(data)-packetCRCSize:]); crc16(body) != got {
			return fmt.Errorf("%w: seq %d", ErrCorruptPacket, binary.LittleEndian.Uint32(data[6:]))
		}
	}
	p.MoteID = binary.LittleEndian.Uint16(data[4:])
	p.Seq = binary.LittleEndian.Uint32(data[6:])
	p.Version = version
	p.Events = make([]mote.TraceEvent, count)
	off := packetHeaderSize
	for i := range p.Events {
		p.Events[i].ID = int32(binary.LittleEndian.Uint32(data[off:]))
		p.Events[i].Tick = binary.LittleEndian.Uint64(data[off+4:])
		off += packetRecordSize
	}
	return nil
}

// Packetize batches an event log into sequence-numbered packets of at most
// perPacket events each (DefaultEventsPerPacket when perPacket <= 0, capped
// at MaxPacketEvents). An empty log produces no packets.
func Packetize(moteID uint16, events []mote.TraceEvent, perPacket int) []Packet {
	if perPacket <= 0 {
		perPacket = DefaultEventsPerPacket
	}
	if perPacket > MaxPacketEvents {
		perPacket = MaxPacketEvents
	}
	var out []Packet
	for seq := uint32(0); len(events) > 0; seq++ {
		n := perPacket
		if n > len(events) {
			n = len(events)
		}
		out = append(out, Packet{MoteID: moteID, Seq: seq, Version: PacketVersionCRC, Events: events[:n:n]})
		events = events[n:]
	}
	return out
}

// UplinkStats counts what one mote's uplink delivered and what the base
// station could salvage from it.
type UplinkStats struct {
	// PacketsDelivered counts distinct packets received; PacketsDuplicate
	// counts redundant copies discarded; PacketsLost counts sequence gaps
	// below the highest sequence seen (tail losses are indistinguishable
	// from the stream simply ending and are not counted).
	PacketsDelivered, PacketsDuplicate, PacketsLost int
	// PacketsCorrupted counts frames rejected before reassembly — a failed
	// CRC or undecodable framing. Unlike PacketsLost these arrived, but
	// were unusable; a sequence whose only copy was corrupt is counted
	// again as lost when the gap it leaves is observed.
	PacketsCorrupted int
	// EventsDelivered is the total payload of distinct packets.
	EventsDelivered int
	// InvocationsRecovered counts complete intervals reconstructed;
	// InvocationsDiscarded counts invocations a lost packet truncated
	// (an unmatched enter or exit, or a frame still open at a gap).
	InvocationsRecovered, InvocationsDiscarded int
	// LostPartials counts invocations truncated by a power event on the
	// mote itself (an epoch or power marker between their enter and exit)
	// rather than by channel loss: executions that began and never
	// completed because the mote lost power mid-procedure. They are a
	// subset of InvocationsDiscarded, broken out per procedure in
	// LostPartialsByProc (nil when zero) because the estimator uses the
	// counts to correct the survival bias of completed-invocation samples.
	LostPartials       int
	LostPartialsByProc map[int]int
}

// addLostPartial records one power-truncated invocation of proc.
func (st *UplinkStats) addLostPartial(proc int) {
	st.LostPartials++
	if st.LostPartialsByProc == nil {
		st.LostPartialsByProc = make(map[int]int)
	}
	st.LostPartialsByProc[proc]++
}

// Reassembler rebuilds one mote's event stream from sequence-numbered
// packets that may arrive duplicated, reordered, or not at all.
type Reassembler struct {
	moteID   uint16
	base     uint32
	payloads map[uint32][]mote.TraceEvent
	dups     int
	corrupt  int
}

// NewReassembler returns a reassembler for the given mote's stream.
func NewReassembler(moteID uint16) *Reassembler {
	return NewReassemblerAt(moteID, 0)
}

// NewReassemblerAt returns a reassembler whose stream starts at firstSeq
// instead of 0. A long-running base station seals its receive window at
// every estimation epoch and resumes reassembly from the next expected
// sequence number: without the base, everything the previous epochs already
// consumed would be counted as lost. Packets below firstSeq are stale
// redeliveries of sealed data and are discarded like duplicates.
func NewReassemblerAt(moteID uint16, firstSeq uint32) *Reassembler {
	return &Reassembler{moteID: moteID, base: firstSeq, payloads: make(map[uint32][]mote.TraceEvent)}
}

// Add accepts one received packet. Duplicates (same sequence number) and
// stale packets (below the stream's first sequence) are counted and
// discarded; a packet from a different mote is an error.
func (r *Reassembler) Add(p Packet) error {
	if p.MoteID != r.moteID {
		return fmt.Errorf("trace: packet from mote %d on mote %d's stream", p.MoteID, r.moteID)
	}
	if p.Seq < r.base {
		r.dups++
		return nil
	}
	if _, ok := r.payloads[p.Seq]; ok {
		r.dups++
		return nil
	}
	r.payloads[p.Seq] = p.Events
	return nil
}

// NextSeq returns the sequence number a successor stream should start at:
// one past the highest sequence received, or the stream's own base when
// nothing has arrived. It is the rebasing hand-off between estimation
// epochs.
func (r *Reassembler) NextSeq() uint32 {
	next := r.base
	for s := range r.payloads {
		if s+1 > next {
			next = s + 1
		}
	}
	return next
}

// AddFrame accepts one raw frame off the radio. Frames that fail to
// decode — a failed CRC or mangled framing — are rejected and counted in
// UplinkStats.PacketsCorrupted; rejection is the expected behaviour on a
// corrupting channel, not an error. A CRC-validated packet from the wrong
// mote is still an error — that is a base-station routing bug, not channel
// noise — but on a legacy checksum-less frame a mismatched mote ID is the
// only integrity signal there is: flipped ID bytes survive decoding, so
// the frame is rejected as channel damage like any other corruption.
func (r *Reassembler) AddFrame(frame []byte) error {
	var p Packet
	if err := p.UnmarshalBinary(frame); err != nil {
		r.corrupt++
		return nil
	}
	if p.MoteID != r.moteID && p.Version == PacketVersionLegacy {
		r.corrupt++
		return nil
	}
	return r.Add(p)
}

// Recover reconstructs invocation intervals from everything received so
// far. Lost packets split the stream into contiguous segments; only the
// invocations truncated by a gap (enter and exit on opposite sides of it)
// are discarded — complete invocations inside every segment survive, so
// estimation degrades with the loss rate instead of collapsing. Intervals
// are returned in completion order; under loss their Depth is relative to
// the enclosing segment (a lower bound on the true nesting depth).
func (r *Reassembler) Recover() ([]Interval, UplinkStats) {
	st := UplinkStats{PacketsDelivered: len(r.payloads), PacketsDuplicate: r.dups, PacketsCorrupted: r.corrupt}
	if len(r.payloads) == 0 {
		return nil, st
	}
	seqs := make([]uint32, 0, len(r.payloads))
	for s := range r.payloads {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	st.PacketsLost = int(seqs[len(seqs)-1]-r.base) + 1 - len(seqs)

	var out []Interval
	var segment []mote.TraceEvent
	flush := func() {
		ivs, discarded := salvage(segment, &st)
		out = append(out, ivs...)
		st.InvocationsDiscarded += discarded
		segment = segment[:0]
	}
	for i, s := range seqs {
		if i > 0 && s != seqs[i-1]+1 {
			flush()
		}
		st.EventsDelivered += len(r.payloads[s])
		segment = append(segment, r.payloads[s]...)
	}
	flush()
	st.InvocationsRecovered = len(out)
	return out, st
}

// salvage is the loss-tolerant version of Extract for one contiguous run of
// events: a substring of a well-nested log. Unmatched exits at the front
// (their enters were lost) and frames still open at the end (their exits
// were lost) are discarded and counted; everything properly paired inside
// the run is complete — contiguity guarantees no callee is missing — and is
// emitted. An epoch marker (mote.EpochMarkID, logged at a cold reboot)
// flushes the open frames: their exits were lost to the crash, and
// post-reboot events must never pair with pre-crash enters; each flushed
// frame is also a power-truncated lost partial. A power marker
// (mote.PowerMarkID, logged at a checkpoint restore) dooms the frames
// that straddle it: their enters are real and their exits will arrive —
// the restored mote resumes inside them — but the span covers a dark
// window and re-executed work, so the interval's timing is garbage. Doomed
// frames are counted as lost partials at the marker and silently discarded
// when their exits pair; frames opened after the marker are clean. Other
// corrupt events (negative ids, time running backwards) discard the
// enclosing frame rather than aborting the whole stream.
func salvage(events []mote.TraceEvent, st *UplinkStats) ([]Interval, int) {
	type frame struct {
		proc       int
		enter      uint64
		childTicks uint64
		doomed     bool
	}
	var stack []frame
	var out []Interval
	discarded := 0
	for _, ev := range events {
		if ev.ID == mote.EpochMarkID {
			// Cold boot: every frame open at the outage is truncated. Frames
			// already doomed by a power marker were counted there.
			for _, fr := range stack {
				if !fr.doomed {
					st.addLostPartial(fr.proc)
				}
			}
			discarded += len(stack)
			stack = stack[:0]
			continue
		}
		if ev.ID == mote.PowerMarkID {
			// Checkpoint restore: straddling frames survive structurally but
			// their timing spans the outage — doom them.
			for i := range stack {
				if !stack[i].doomed {
					stack[i].doomed = true
					st.addLostPartial(stack[i].proc)
				}
			}
			continue
		}
		if ev.ID < 0 {
			discarded++
			continue
		}
		proc := int(ev.ID / 2)
		if ev.ID%2 == 0 {
			stack = append(stack, frame{proc: proc, enter: ev.Tick})
			continue
		}
		if len(stack) == 0 {
			// Exit whose enter is on the other side of a gap.
			discarded++
			continue
		}
		// In a substring of a well-nested log the exit always matches the
		// top of the stack; a mismatch means corruption, so resynchronize
		// by popping (and discarding) frames until it does.
		match := -1
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].proc == proc {
				match = i
				break
			}
		}
		if match < 0 {
			discarded++
			continue
		}
		discarded += len(stack) - 1 - match
		top := stack[match]
		stack = stack[:match]
		if top.doomed {
			discarded++ // straddled a power marker: timing spans the outage
			continue
		}
		if ev.Tick < top.enter {
			discarded++ // clock ran backwards: corrupt pair
			continue
		}
		iv := Interval{
			ProcIndex:  top.proc,
			EnterTick:  top.enter,
			ExitTick:   ev.Tick,
			ChildTicks: top.childTicks,
			Depth:      len(stack),
		}
		out = append(out, iv)
		if len(stack) > 0 {
			stack[len(stack)-1].childTicks += iv.GrossTicks()
		}
	}
	return out, discarded + len(stack)
}
