package trace

import (
	"testing"

	"codetomo/internal/mote"
)

// events builds one complete invocation of proc at the given ticks.
func invocation(proc int, enter, exit uint64) []mote.TraceEvent {
	return []mote.TraceEvent{
		{ID: EnterID(proc), Tick: enter},
		{ID: ExitID(proc), Tick: exit},
	}
}

// A rebased reassembler must account loss relative to its base, not to
// sequence zero: a stream resumed at seq 100 that receives 100 and 101 has
// lost nothing.
func TestReassemblerRebaseLossAccounting(t *testing.T) {
	r := NewReassemblerAt(7, 100)
	for i, seq := range []uint32{100, 101} {
		if err := r.Add(Packet{MoteID: 7, Seq: seq, Events: invocation(1, uint64(10*i), uint64(10*i+4))}); err != nil {
			t.Fatal(err)
		}
	}
	ivs, st := r.Recover()
	if st.PacketsLost != 0 {
		t.Fatalf("PacketsLost = %d, want 0 (stream is rebased at 100)", st.PacketsLost)
	}
	if len(ivs) != 2 || st.InvocationsRecovered != 2 {
		t.Fatalf("recovered %d intervals (stats %d), want 2", len(ivs), st.InvocationsRecovered)
	}
	if got := r.NextSeq(); got != 102 {
		t.Fatalf("NextSeq = %d, want 102", got)
	}
}

// A gap between the base and the first received packet is observed loss.
func TestReassemblerRebaseFrontGap(t *testing.T) {
	r := NewReassemblerAt(3, 10)
	if err := r.Add(Packet{MoteID: 3, Seq: 12, Events: invocation(0, 5, 9)}); err != nil {
		t.Fatal(err)
	}
	_, st := r.Recover()
	if st.PacketsLost != 2 {
		t.Fatalf("PacketsLost = %d, want 2 (seqs 10 and 11)", st.PacketsLost)
	}
}

// Stale packets — sequences below the base, i.e. redeliveries of data a
// previous epoch already consumed — are discarded and counted like
// duplicates, never reassembled twice.
func TestReassemblerRebaseStalePackets(t *testing.T) {
	r := NewReassemblerAt(5, 4)
	if err := r.Add(Packet{MoteID: 5, Seq: 2, Events: invocation(0, 1, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Packet{MoteID: 5, Seq: 4, Events: invocation(0, 20, 24)}); err != nil {
		t.Fatal(err)
	}
	ivs, st := r.Recover()
	if len(ivs) != 1 || ivs[0].EnterTick != 20 {
		t.Fatalf("recovered %v, want only the seq-4 invocation", ivs)
	}
	if st.PacketsDuplicate != 1 {
		t.Fatalf("PacketsDuplicate = %d, want 1 (the stale packet)", st.PacketsDuplicate)
	}
	if st.PacketsDelivered != 1 {
		t.Fatalf("PacketsDelivered = %d, want 1", st.PacketsDelivered)
	}
}

// An empty rebased stream reports its own base as the next sequence, so
// epoch hand-off is stable across idle epochs.
func TestReassemblerNextSeqIdle(t *testing.T) {
	r := NewReassemblerAt(1, 37)
	if got := r.NextSeq(); got != 37 {
		t.Fatalf("NextSeq = %d, want 37", got)
	}
	ivs, st := r.Recover()
	if len(ivs) != 0 || st.PacketsLost != 0 {
		t.Fatalf("idle stream recovered %v with %d lost, want nothing", ivs, st.PacketsLost)
	}
}

// Splitting one mote's upload across two rebased reassemblers — the
// epoch-seal discipline — recovers every invocation that does not straddle
// the cut, and the straddlers are counted as discarded, not silently
// dropped.
func TestReassemblerEpochSealSplit(t *testing.T) {
	// Three packets: P0 holds a complete invocation, P1 opens one that P2
	// closes. Cutting between P1 and P2 truncates that invocation.
	p0 := Packet{MoteID: 9, Seq: 0, Events: invocation(0, 0, 5)}
	p1 := Packet{MoteID: 9, Seq: 1, Events: []mote.TraceEvent{{ID: EnterID(1), Tick: 10}}}
	p2 := Packet{MoteID: 9, Seq: 2, Events: []mote.TraceEvent{{ID: ExitID(1), Tick: 15}}}

	epoch1 := NewReassemblerAt(9, 0)
	for _, p := range []Packet{p0, p1} {
		if err := epoch1.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ivs1, st1 := epoch1.Recover()
	if len(ivs1) != 1 || st1.InvocationsDiscarded != 1 {
		t.Fatalf("epoch 1: recovered %d, discarded %d; want 1 and 1", len(ivs1), st1.InvocationsDiscarded)
	}

	epoch2 := NewReassemblerAt(9, epoch1.NextSeq())
	if err := epoch2.Add(p2); err != nil {
		t.Fatal(err)
	}
	ivs2, st2 := epoch2.Recover()
	if len(ivs2) != 0 || st2.InvocationsDiscarded != 1 {
		t.Fatalf("epoch 2: recovered %d, discarded %d; want 0 and 1 (exit without enter)", len(ivs2), st2.InvocationsDiscarded)
	}
	if st2.PacketsLost != 0 {
		t.Fatalf("epoch 2: PacketsLost = %d, want 0", st2.PacketsLost)
	}
}
