package profile

import (
	"fmt"
	"sort"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
)

// BlockSamples holds PC-sampling hit counts per procedure and block.
type BlockSamples map[string]map[ir.BlockID]uint64

// blockRange maps a code address range to a (proc, block) pair.
type blockRange struct {
	start, end int32
	proc       string
	block      ir.BlockID
}

// buildRanges derives sorted address ranges for every block from metadata.
func buildRanges(meta *compile.Meta) []blockRange {
	var rs []blockRange
	for _, pm := range meta.Procs {
		type ba struct {
			id   ir.BlockID
			addr int32
		}
		var blocks []ba
		for id, addr := range pm.BlockAddr {
			blocks = append(blocks, ba{id: id, addr: addr})
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })
		for i, b := range blocks {
			// A block's range is capped by its own region's end: EndAddr
			// for the hot region, ColdEndAddr for blocks split into the
			// cold region (which lie at or beyond ColdStartAddr).
			end := pm.EndAddr
			if pm.ColdStartAddr >= 0 && b.addr >= pm.ColdStartAddr {
				end = pm.ColdEndAddr
			}
			if i+1 < len(blocks) && blocks[i+1].addr < end {
				end = blocks[i+1].addr
			}
			rs = append(rs, blockRange{start: b.addr, end: end, proc: pm.Name, block: b.id})
		}
		// The entry preamble belongs to the entry block.
		if len(blocks) > 0 && pm.EntryAddr < blocks[0].addr {
			rs = append(rs, blockRange{start: pm.EntryAddr, end: blocks[0].addr, proc: pm.Name, block: pm.EntryBlock})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
	return rs
}

// SampleRun executes the machine to completion, recording which block the
// PC is in every period cycles — a host-side model of a timer-interrupt
// PC-sampling profiler. It returns the hit counts.
func SampleRun(m *mote.Machine, meta *compile.Meta, period uint64, maxCycles uint64) (BlockSamples, error) {
	if period == 0 {
		return nil, fmt.Errorf("profile: sampling period must be positive")
	}
	ranges := buildRanges(meta)
	locate := func(pc int32) (string, ir.BlockID, bool) {
		i := sort.Search(len(ranges), func(i int) bool { return ranges[i].end > pc })
		if i < len(ranges) && pc >= ranges[i].start {
			return ranges[i].proc, ranges[i].block, true
		}
		return "", 0, false
	}

	samples := make(BlockSamples)
	nextSample := period
	for !m.Halted() {
		if m.Stats().Cycles >= maxCycles {
			return nil, fmt.Errorf("profile: %w", mote.ErrCycleBudget)
		}
		if m.Stats().Cycles >= nextSample {
			if proc, blk, ok := locate(m.PC()); ok {
				if samples[proc] == nil {
					samples[proc] = make(map[ir.BlockID]uint64)
				}
				samples[proc][blk]++
			}
			for nextSample <= m.Stats().Cycles {
				nextSample += period
			}
		}
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// SamplingProbs derives branch probabilities from block sample weights:
// the probability of a branch edge is approximated by the relative sample
// weight of its successor blocks. This is the classical weakness of
// PC sampling — successors shared with other paths smear the estimate —
// kept deliberately as the "cheap but crude" comparator.
func SamplingProbs(proc *cfg.Proc, samples map[ir.BlockID]uint64) markov.EdgeProbs {
	probs := markov.Uniform(proc)
	for _, bb := range proc.BranchBlocks() {
		succs := proc.Block(bb).Succs()
		var total uint64
		for _, s := range succs {
			total += samples[s]
		}
		if total == 0 {
			continue
		}
		for _, s := range succs {
			probs[[2]ir.BlockID{bb, s}] = float64(samples[s]) / float64(total)
		}
	}
	return probs
}
