// Package profile provides the profiling baselines Code Tomography is
// compared against, and the cost models for what each profiling strategy
// costs on a mote:
//
//   - Oracle: exact edge probabilities from the simulator's ground-truth
//     branch statistics (what an ideal profiler would report).
//   - EdgeCounter: exact edge probabilities reconstructed from PROFCNT arc
//     counters in a ModeEdgeCounters build — the classical full
//     instrumentation approach, with its RAM/flash/runtime cost.
//   - Sampling: PC-sampling profiler that estimates block weights only.
//   - BallLarus: static branch-prediction heuristics needing no profiling
//     at all (the zero-cost baseline).
package profile

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
)

// OracleProbs converts the simulator's per-branch outcome counts into edge
// probabilities for one procedure — the ground truth estimators are scored
// against. Branches never executed stay at the uniform prior.
func OracleProbs(pm *compile.ProcMeta, proc *cfg.Proc, branchStats map[int32]*mote.BranchStat) markov.EdgeProbs {
	probs := markov.Uniform(proc)
	for _, bb := range proc.BranchBlocks() {
		for _, s := range proc.Block(bb).Succs() {
			key := [2]ir.BlockID{bb, s}
			info, ok := pm.Edges[compile.EdgeKey{From: bb, To: s}]
			if !ok || info.BranchPC < 0 {
				continue
			}
			st := branchStats[info.BranchPC]
			if st == nil {
				continue
			}
			total := st.Taken + st.NotTaken
			if total == 0 {
				continue
			}
			if info.Taken {
				probs[key] = float64(st.Taken) / float64(total)
			} else {
				probs[key] = float64(st.NotTaken) / float64(total)
			}
		}
	}
	return probs
}

// OracleEdgeCounts converts branch statistics into absolute edge traversal
// counts (the layout pass prefers counts over probabilities so hot code
// dominates).
func OracleEdgeCounts(pm *compile.ProcMeta, proc *cfg.Proc, branchStats map[int32]*mote.BranchStat) map[[2]ir.BlockID]float64 {
	out := make(map[[2]ir.BlockID]float64)
	for _, bb := range proc.BranchBlocks() {
		for _, s := range proc.Block(bb).Succs() {
			info, ok := pm.Edges[compile.EdgeKey{From: bb, To: s}]
			if !ok || info.BranchPC < 0 {
				continue
			}
			st := branchStats[info.BranchPC]
			if st == nil {
				continue
			}
			if info.Taken {
				out[[2]ir.BlockID{bb, s}] = float64(st.Taken)
			} else {
				out[[2]ir.BlockID{bb, s}] = float64(st.NotTaken)
			}
		}
	}
	return out
}

// EdgeCounterProbs reconstructs edge probabilities from the PROFCNT arc
// counters of a ModeEdgeCounters run.
func EdgeCounterProbs(pm *compile.ProcMeta, proc *cfg.Proc, counters map[int32]uint64) (markov.EdgeProbs, error) {
	probs := markov.Uniform(proc)
	for _, bb := range proc.BranchBlocks() {
		succs := proc.Block(bb).Succs()
		var total uint64
		counts := make([]uint64, len(succs))
		for i, s := range succs {
			id, ok := pm.ArcCounters[compile.EdgeKey{From: bb, To: s}]
			if !ok {
				return nil, fmt.Errorf("profile: %s: no arc counter for edge %v->%v", pm.Name, bb, s)
			}
			counts[i] = counters[id]
			total += counts[i]
		}
		if total == 0 {
			continue
		}
		for i, s := range succs {
			probs[[2]ir.BlockID{bb, s}] = float64(counts[i]) / float64(total)
		}
	}
	return probs, nil
}
