package profile

import (
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
)

const testProgram = `
func work(v int) int {
	var r int;
	r = 0;
	while (v > 100) {
		v = v - 100;
		r = r + 1;
	}
	if (v > 50) {
		r = r + 10;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 200; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

type rampSource struct{ i int }

func (s *rampSource) Next() uint16 {
	s.i++
	return uint16((s.i * 211) % 1024)
}

func build(t *testing.T, mode compile.Mode) (*compile.Output, *mote.Machine) {
	t.Helper()
	out, err := compile.Build(testProgram, compile.Options{Instrument: mode})
	if err != nil {
		t.Fatal(err)
	}
	mc := mote.DefaultConfig()
	mc.Sensor = &rampSource{}
	m := mote.New(out.Code, mc)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	return out, m
}

func TestOracleProbsSumToOne(t *testing.T) {
	out, m := build(t, compile.ModeNone)
	p := out.CFG.Proc("work")
	probs := OracleProbs(out.Meta.ProcByName["work"], p, m.BranchStats())
	if _, err := markov.New(p, probs); err != nil {
		t.Fatalf("oracle probs invalid: %v", err)
	}
	// The loop branch must be biased (many iterations per call under the
	// ramp input), not at the uniform prior.
	biased := false
	for _, bb := range p.BranchBlocks() {
		for _, s := range p.Block(bb).Succs() {
			q := probs[[2]ir.BlockID{bb, s}]
			if q > 0.6 || q < 0.4 {
				biased = true
			}
		}
	}
	if !biased {
		t.Fatal("oracle probabilities all uniform; ground truth not flowing")
	}
}

func TestOracleEdgeCountsMatchProbs(t *testing.T) {
	out, m := build(t, compile.ModeNone)
	p := out.CFG.Proc("work")
	pm := out.Meta.ProcByName["work"]
	probs := OracleProbs(pm, p, m.BranchStats())
	counts := OracleEdgeCounts(pm, p, m.BranchStats())
	for _, bb := range p.BranchBlocks() {
		succs := p.Block(bb).Succs()
		total := 0.0
		for _, s := range succs {
			total += counts[[2]ir.BlockID{bb, s}]
		}
		if total == 0 {
			continue
		}
		for _, s := range succs {
			key := [2]ir.BlockID{bb, s}
			got := counts[key] / total
			if d := got - probs[key]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("edge %v: count ratio %v != prob %v", key, got, probs[key])
			}
		}
	}
}

func TestEdgeCounterProbsMatchOracle(t *testing.T) {
	out, m := build(t, compile.ModeEdgeCounters)
	p := out.CFG.Proc("work")
	pm := out.Meta.ProcByName["work"]
	fromCounters, err := EdgeCounterProbs(pm, p, m.ProfileCounters())
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleProbs(pm, p, m.BranchStats())
	for k, v := range oracle {
		if d := v - fromCounters[k]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("edge %v: counters %v, oracle %v", k, fromCounters[k], v)
		}
	}
}

func TestBallLarusLoopHeuristic(t *testing.T) {
	out, _ := build(t, compile.ModeNone)
	p := out.CFG.Proc("work")
	probs := BallLarusProbs(p)
	if _, err := markov.New(p, probs); err != nil {
		t.Fatalf("Ball-Larus probs invalid: %v", err)
	}
	// The loop header must favour staying in the loop.
	loops := p.NaturalLoops()
	if len(loops) == 0 {
		t.Fatal("work has no loop")
	}
	h := loops[0].Header
	for _, s := range p.Block(h).Succs() {
		q := probs[[2]ir.BlockID{h, s}]
		if loops[0].Body[s] {
			if q < 0.8 {
				t.Fatalf("in-loop edge prob = %v, want >= 0.8", q)
			}
		} else if q > 0.2 {
			t.Fatalf("loop-exit edge prob = %v, want <= 0.2", q)
		}
	}
}

func TestBallLarusReturnHeuristic(t *testing.T) {
	// Branch where one arm returns immediately: return arm is unlikely.
	p := &cfg.Proc{
		Name:  "g",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Term: ir.Ret{Val: -1}},
			{ID: 2, Term: ir.Jmp{Target: 3}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
	probs := BallLarusProbs(p)
	if probs[[2]ir.BlockID{0, 1}] >= 0.5 {
		t.Fatalf("return-arm prob = %v, want < 0.5", probs[[2]ir.BlockID{0, 1}])
	}
}

func TestSampleRun(t *testing.T) {
	out, err := compile.Build(testProgram, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc := mote.DefaultConfig()
	mc.Sensor = &rampSource{}
	m := mote.New(out.Code, mc)
	samples, err := SampleRun(m, out.Meta, 37, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples["work"]) == 0 {
		t.Fatal("sampling saw no blocks of work")
	}
	var total uint64
	for _, blocks := range samples {
		for _, n := range blocks {
			total += n
		}
	}
	// Sample count ≈ cycles / period.
	want := m.Stats().Cycles / 37
	if total < want*8/10 || total > want {
		t.Fatalf("samples = %d, want ≈ %d", total, want)
	}
	// Derived probabilities must be a valid assignment.
	probs := SamplingProbs(out.CFG.Proc("work"), samples["work"])
	if _, err := markov.New(out.CFG.Proc("work"), probs); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRunRejectsZeroPeriod(t *testing.T) {
	out, _ := compile.Build(testProgram, compile.Options{})
	m := mote.New(out.Code, mote.DefaultConfig())
	if _, err := SampleRun(m, out.Meta, 0, 1000); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestMeasureOverhead(t *testing.T) {
	outBase, mBase := build(t, compile.ModeNone)
	outTS, mTS := build(t, compile.ModeTimestamps)
	outEC, mEC := build(t, compile.ModeEdgeCounters)
	energy := mote.DefaultEnergyModel()

	ts := MeasureOverhead("timestamps", outBase.Meta, outTS.Meta, mBase.Stats(), mTS.Stats(), energy)
	ec := MeasureOverhead("edge-counters", outBase.Meta, outEC.Meta, mBase.Stats(), mEC.Stats(), energy)

	if ts.CodeBytes == 0 || ec.CodeBytes == 0 {
		t.Fatal("instrumentation added no code?")
	}
	if ts.ExtraCycles == 0 || ec.ExtraCycles == 0 {
		t.Fatal("instrumentation added no cycles?")
	}
	if ts.RAMBytes != TraceRingWords*2 {
		t.Fatalf("timestamp RAM = %d", ts.RAMBytes)
	}
	if ec.RAMBytes != outEC.Meta.NumArcCounters*2 {
		t.Fatalf("counter RAM = %d", ec.RAMBytes)
	}
	// The paper's claim in miniature: two timestamps per invocation cost
	// fewer cycles than a counter at every branch arc of a loopy kernel.
	if ts.ExtraCycles >= ec.ExtraCycles {
		t.Fatalf("timestamps (%d) not cheaper than counters (%d)", ts.ExtraCycles, ec.ExtraCycles)
	}
	if ts.ExtraCyclesPct <= 0 || ts.ExtraEnergyUJ <= 0 {
		t.Fatal("percentage/energy not computed")
	}
}
