package profile

import (
	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// BallLarusProbs assigns branch probabilities from static heuristics in the
// spirit of Ball & Larus (1993), needing no profile data at all:
//
//   - Loop-branch heuristic: an edge that is a loop back edge, or stays
//     inside the loop, is likely (88%).
//   - Return heuristic: an edge leading directly to a return block is
//     unlikely (28%) — error/exit paths are rare.
//   - Otherwise: 50/50.
//
// This is the zero-cost comparator for profile-guided placement.
func BallLarusProbs(proc *cfg.Proc) markov.EdgeProbs {
	const (
		loopTaken = 0.88
		retTaken  = 0.28
	)
	probs := markov.Uniform(proc)
	backEdges := proc.LoopBackEdgeSet()
	loops := proc.NaturalLoops()

	inSomeLoop := func(b ir.BlockID) bool {
		for _, l := range loops {
			if l.Body[b] {
				return true
			}
		}
		return false
	}
	isRet := func(b ir.BlockID) bool {
		switch proc.Block(b).Term.(type) {
		case ir.Ret, ir.Halt:
			return true
		}
		return false
	}

	for _, bb := range proc.BranchBlocks() {
		succs := proc.Block(bb).Succs()
		if len(succs) != 2 {
			continue
		}
		a, b := succs[0], succs[1]
		pa := 0.5

		// Loop heuristic first (strongest signal).
		aLoop := backEdges[[2]ir.BlockID{bb, a}] || (inSomeLoop(bb) && inSomeLoop(a))
		bLoop := backEdges[[2]ir.BlockID{bb, b}] || (inSomeLoop(bb) && inSomeLoop(b))
		switch {
		case aLoop && !bLoop:
			pa = loopTaken
		case bLoop && !aLoop:
			pa = 1 - loopTaken
		default:
			// Return heuristic.
			aRet, bRet := isRet(a), isRet(b)
			switch {
			case aRet && !bRet:
				pa = retTaken
			case bRet && !aRet:
				pa = 1 - retTaken
			}
		}
		probs[[2]ir.BlockID{bb, a}] = pa
		probs[[2]ir.BlockID{bb, b}] = 1 - pa
	}
	return probs
}
