package profile

import (
	"codetomo/internal/compile"
	"codetomo/internal/mote"
)

// Overhead quantifies what a profiling strategy costs on the mote relative
// to an uninstrumented build of the same program — the core of the paper's
// overhead comparison: Code Tomography's two timestamps per procedure
// invocation against a counter per branch arc.
type Overhead struct {
	Strategy string
	// CodeBytes is the flash increase of the instrumented binary.
	CodeBytes uint32
	// RAMBytes is the RAM dedicated to profiling state (counters or the
	// trace ring buffer).
	RAMBytes int
	// ExtraCycles is the runtime increase for the measured run.
	ExtraCycles uint64
	// ExtraCyclesPct is ExtraCycles relative to the baseline run.
	ExtraCyclesPct float64
	// ExtraEnergyUJ is the energy increase under the mote energy model.
	ExtraEnergyUJ float64
}

// TraceRingWords is the RAM budget a real deployment dedicates to the
// timestamp ring buffer (id + 16-bit tick per event). Code Tomography only
// needs duration histograms, so a small ring flushed opportunistically
// suffices; 64 entries of 2 words matches the paper's setting of logging at
// procedure boundaries.
const TraceRingWords = 64 * 2

// CounterWords returns the RAM words needed for arc counters (16-bit each).
func CounterWords(meta *compile.Meta) int { return meta.NumArcCounters }

// MeasureOverhead compares an instrumented run against a baseline run of
// the same program/workload and fills in the cost model.
func MeasureOverhead(strategy string, baseMeta, instMeta *compile.Meta, base, inst mote.Stats, energy mote.EnergyModel) Overhead {
	o := Overhead{Strategy: strategy}
	if instMeta.CodeBytes > baseMeta.CodeBytes {
		o.CodeBytes = instMeta.CodeBytes - baseMeta.CodeBytes
	}
	switch instMeta.Mode {
	case compile.ModeTimestamps:
		o.RAMBytes = TraceRingWords * 2
	case compile.ModeEdgeCounters:
		o.RAMBytes = CounterWords(instMeta) * 2
	}
	if inst.Cycles > base.Cycles {
		o.ExtraCycles = inst.Cycles - base.Cycles
	}
	if base.Cycles > 0 {
		o.ExtraCyclesPct = 100 * float64(o.ExtraCycles) / float64(base.Cycles)
	}
	be, ie := energy.Energy(base), energy.Energy(inst)
	if ie > be {
		o.ExtraEnergyUJ = ie - be
	}
	return o
}
