package apps

import (
	"testing"

	"codetomo/internal/compile"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("suite has %d apps, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Handler == "" || a.Description == "" || a.Workload == "" {
			t.Fatalf("incomplete app %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		if _, ok := workload.Named(a.Workload, stats.NewRNG(1)); !ok {
			t.Fatalf("%s references unknown workload %q", a.Name, a.Workload)
		}
		got, ok := ByName(a.Name)
		if !ok || got.Name != a.Name {
			t.Fatalf("ByName(%q) failed", a.Name)
		}
	}
	if _, ok := ByName("missing"); ok {
		t.Fatal("ByName accepted unknown app")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() incomplete")
	}
}

func TestSourceItersValidation(t *testing.T) {
	a := All()[0]
	for _, bad := range []int{0, -5, 40000} {
		if _, err := a.Source(bad); err == nil {
			t.Errorf("Source(%d) accepted", bad)
		}
	}
}

// TestAllAppsCompileRunAndProfile compiles every benchmark in every
// instrumentation mode, runs it to completion under its default workload,
// and checks the handler actually produced samples and executes branches.
func TestAllAppsCompileRunAndProfile(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			src, err := a.Source(500)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []compile.Mode{compile.ModeNone, compile.ModeTimestamps, compile.ModeEdgeCounters} {
				out, err := compile.Build(src, compile.Options{Instrument: mode, VerifyIR: true})
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				pm, ok := out.Meta.ProcByName[a.Handler]
				if !ok {
					t.Fatalf("handler %q not in program", a.Handler)
				}
				cfgM := mote.DefaultConfig()
				rng := stats.NewRNG(42)
				sensor, _ := workload.Named(a.Workload, rng)
				cfgM.Sensor = sensor
				cfgM.Entropy = workload.NewEntropy(rng.Fork())
				m := mote.New(out.Code, cfgM)
				if err := m.Run(200_000_000); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if !m.Halted() {
					t.Fatalf("mode %v: did not halt", mode)
				}
				if mode == compile.ModeTimestamps {
					ivs, err := trace.Extract(m.Trace())
					if err != nil {
						t.Fatal(err)
					}
					n := len(trace.ExclusiveByProc(ivs)[pm.Index])
					if n < 500 {
						t.Fatalf("handler samples = %d, want >= 500", n)
					}
				}
				// Every app except blink must exercise data-dependent
				// branches (blink alternates deterministically).
				if m.Stats().CondBranches == 0 {
					t.Fatal("no conditional branches executed")
				}
			}
		})
	}
}

// TestAppsDeterministic ensures a fixed seed reproduces identical runs —
// the property every experiment in the harness relies on.
func TestAppsDeterministic(t *testing.T) {
	a, _ := ByName("eventdetect")
	src, _ := a.Source(300)
	out, err := compile.Build(src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() mote.Stats {
		cfgM := mote.DefaultConfig()
		sensor, _ := workload.Named(a.Workload, stats.NewRNG(7))
		cfgM.Sensor = sensor
		m := mote.New(out.Code, cfgM)
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	if run() != run() {
		t.Fatal("same seed produced different executions")
	}
}

// TestHandlersHaveBranchDiversity verifies the suite gives the estimators
// something to estimate: every handler except blink has at least 2 branch
// blocks, and the suite total is substantial.
func TestHandlersHaveBranchDiversity(t *testing.T) {
	total := 0
	for _, a := range All() {
		src, _ := a.Source(100)
		out, err := compile.Build(src, compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := out.CFG.Proc(a.Handler)
		if p == nil {
			t.Fatalf("%s: handler missing", a.Name)
		}
		nb := len(p.BranchBlocks())
		total += nb
		if a.Name != "blink" && nb < 2 {
			t.Fatalf("%s: handler has %d branch blocks, want >= 2", a.Name, nb)
		}
	}
	if total < 25 {
		t.Fatalf("suite has %d branch blocks total, want >= 25", total)
	}
}
