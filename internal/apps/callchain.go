package apps

// CallChain is the call-heavy companion kernel to the suite in All(): its
// handler conditions every sample through two small leaf helpers, so the
// hot path is dominated by call/return overhead rather than branches. It
// is what the profile-guided inlining pass (ctbench -exp pg1) is measured
// on, and is kept out of All() so the committed numbers of the placement
// experiments remain reproducible.
var CallChain = App{
	Name:        "chain",
	Description: "call-heavy sample conditioning chain (inlining kernel)",
	Handler:     "step",
	Workload:    "gaussian",
	template: `
var peaks int;

func scale(v int) int {
	return (v * 3) / 4;
}

func clamp(v int) int {
	if (v > 255) {
		return 255;
	}
	if (v < 0) {
		return 0;
	}
	return v;
}

func step(s int) int {
	var v int = clamp(scale(s - 400));
	if (v > 120) {
		peaks = peaks + 1;
		send(v);
	} else {
		led(v & 1);
	}
	return v;
}

func main() {
	var i int;
	var acc int = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + step(sense());
	}
	debug(acc);
	debug(peaks);
}
`,
}
