// Package apps is the benchmark suite: MiniC sensor-network kernels of the
// shapes TinyOS applications are built from — periodic sense-and-send,
// hysteresis event detection, sliding-window aggregation, FIR filtering,
// packet CRC, duty-cycle scheduling, and histogram quantization. Each app
// names its profiled handler procedure (the one whose branch probabilities
// the estimators recover) and a default input workload regime.
package apps

import (
	"fmt"
	"strconv"
	"strings"
)

// App is one benchmark program.
type App struct {
	// Name is the benchmark's identifier in tables.
	Name string
	// Description is a one-line summary.
	Description string
	// Handler is the procedure profiled and optimized.
	Handler string
	// Workload is the default input regime (see workload.Named).
	Workload string
	// template is MiniC source with @ITERS@ standing for the main-loop
	// iteration count.
	template string
}

// Source instantiates the program for the given number of handler
// invocations. iters must fit a 16-bit signed loop counter.
func (a App) Source(iters int) (string, error) {
	if iters <= 0 || iters > 30000 {
		return "", fmt.Errorf("apps: iters %d out of range [1, 30000]", iters)
	}
	return strings.ReplaceAll(a.template, "@ITERS@", strconv.Itoa(iters)), nil
}

// All returns the benchmark suite in table order.
func All() []App {
	return []App{blink, senseApp, eventdetect, aggregate, fir, crc, duty, quantize}
}

// ByName returns the named app.
func ByName(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Names lists the benchmark names in table order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

var blink = App{
	Name:        "blink",
	Description: "timer-driven LED toggle (deterministic sanity kernel)",
	Handler:     "tick",
	Workload:    "gaussian",
	template: `
var on int;

func tick() int {
	if (on == 0) {
		on = 1;
	} else {
		on = 0;
	}
	led(on);
	return on;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + tick();
	}
	debug(acc);
}
`,
}

var senseApp = App{
	Name:        "sense",
	Description: "periodic sample, threshold, and report",
	Handler:     "sample",
	Workload:    "gaussian",
	template: `
var threshold int = 520;
var sent int;

func sample() int {
	var v int;
	v = sense();
	if (v > threshold) {
		send(v);
		sent = sent + 1;
		return 1;
	}
	if (v < 64) {
		led(1);
	}
	return 0;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + sample();
	}
	debug(acc);
	debug(sent);
}
`,
}

var eventdetect = App{
	Name:        "eventdetect",
	Description: "hysteresis event detector with debounce",
	Handler:     "detect",
	Workload:    "bursty",
	template: `
var state int;
var count int;
var events int;

func detect(v int) int {
	if (state == 0) {
		if (v > 520) {
			count = count + 1;
			if (count >= 3) {
				state = 1;
				count = 0;
				events = events + 1;
				send(v);
			}
		} else {
			count = 0;
		}
	} else {
		if (v < 380) {
			count = count + 1;
			if (count >= 3) {
				state = 0;
				count = 0;
			}
		} else {
			count = 0;
		}
	}
	return state;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + detect(sense());
	}
	debug(acc);
	debug(events);
}
`,
}

var aggregate = App{
	Name:        "aggregate",
	Description: "sliding-window average with outlier rejection",
	Handler:     "addsample",
	Workload:    "gaussian",
	template: `
var win[8] int;
var idx int;
var filled int;
var rejected int;

func addsample(v int) int {
	var i int;
	var sum int;
	var avg int;
	sum = 0;
	for (i = 0; i < 8; i = i + 1) {
		sum = sum + win[i];
	}
	avg = sum / 8;
	if (filled >= 8 && (v > avg + 250 || v + 250 < avg)) {
		rejected = rejected + 1;
		return avg;
	}
	win[idx] = v;
	idx = (idx + 1) % 8;
	if (filled < 8) {
		filled = filled + 1;
	}
	if (idx == 0) {
		send(avg);
	}
	return avg;
}

func main() {
	var i int;
	var last int;
	last = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		last = addsample(sense());
	}
	debug(last);
	debug(rejected);
}
`,
}

var fir = App{
	Name:        "fir",
	Description: "4-tap FIR filter with activity classification",
	Handler:     "filterstep",
	Workload:    "regime",
	template: `
var taps[4] int;
var active int;

func filterstep(v int) int {
	var y int;
	taps[3] = taps[2];
	taps[2] = taps[1];
	taps[1] = taps[0];
	taps[0] = v;
	y = (taps[0] * 4 + taps[1] * 3 + taps[2] * 2 + taps[3]) / 10;
	if (y > 520) {
		active = active + 1;
		if (active >= 4) {
			send(y);
			active = 0;
		}
		return 2;
	}
	if (y > 240) {
		return 1;
	}
	active = 0;
	return 0;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + filterstep(sense());
	}
	debug(acc);
}
`,
}

var crc = App{
	Name:        "crc",
	Description: "packet CRC-8 with retransmission backoff",
	Handler:     "crc8",
	Workload:    "uniform",
	template: `
var pkt[8] int;

func crc8(n int) int {
	var c int;
	var i int;
	var j int;
	c = 0;
	for (i = 0; i < n; i = i + 1) {
		c = c ^ pkt[i];
		for (j = 0; j < 8; j = j + 1) {
			if (c & 1) {
				c = (c >> 1) ^ 0x8C;
			} else {
				c = c >> 1;
			}
		}
	}
	return c;
}

func sendpacket() int {
	var i int;
	var c int;
	var tries int;
	for (i = 0; i < 8; i = i + 1) {
		pkt[i] = sense() & 255;
	}
	c = crc8(8);
	tries = 1;
	while ((rand() & 7) == 0 && tries < 4) {
		tries = tries + 1;
	}
	send(c);
	return tries;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + sendpacket();
	}
	debug(acc);
}
`,
}

var duty = App{
	Name:        "duty",
	Description: "duty-cycled MAC-style scheduler state machine",
	Handler:     "schedule",
	Workload:    "bursty",
	template: `
var mode int;
var budget int = 40;

func schedule(v int) int {
	if (mode == 0) {
		if (v > 500 || budget > 60) {
			mode = 1;
		}
		budget = budget + 2;
		if (budget > 100) {
			budget = 100;
		}
	} else {
		budget = budget - 5;
		if (v > 700) {
			send(v);
			budget = budget - 10;
		}
		if (budget < 20) {
			mode = 0;
		}
	}
	if (budget < 0) {
		budget = 0;
	}
	led(mode);
	return mode;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + schedule(sense());
	}
	debug(acc);
	debug(budget);
}
`,
}

var quantize = App{
	Name:        "quantize",
	Description: "histogram quantization with bin-overflow reporting",
	Handler:     "binof",
	Workload:    "diurnal",
	template: `
var bins[8] int;

func binof(v int) int {
	var b int;
	if (v < 512) {
		if (v < 256) {
			if (v < 128) {
				b = 0;
			} else {
				b = 1;
			}
		} else {
			if (v < 384) {
				b = 2;
			} else {
				b = 3;
			}
		}
	} else {
		if (v < 768) {
			if (v < 640) {
				b = 4;
			} else {
				b = 5;
			}
		} else {
			if (v < 896) {
				b = 6;
			} else {
				b = 7;
			}
		}
	}
	bins[b] = bins[b] + 1;
	if (bins[b] > 900) {
		bins[b] = 0;
		send(b);
	}
	return b;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < @ITERS@; i = i + 1) {
		acc = acc + binof(sense());
	}
	debug(acc);
}
`,
}
