package isa

// Default memory limits of the simulated M16 part. The mote's default
// configuration and the static cost analysis both reference these, so a
// program the linter passes as fitting is a program the simulator can run.
const (
	// DefaultRAMWords is the data memory size in 16-bit words. The stack
	// grows down from the top; globals sit at the bottom.
	DefaultRAMWords = 4096
	// DefaultFlashBytes is the program memory size in bytes (Harvard
	// architecture: flash is separate from RAM and byte-accounted via
	// CostModel.Bytes).
	DefaultFlashBytes = 32 * 1024
)
