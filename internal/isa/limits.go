package isa

// Default memory limits of the simulated M16 part. The mote's default
// configuration and the static cost analysis both reference these, so a
// program the linter passes as fitting is a program the simulator can run.
const (
	// DefaultRAMWords is the data memory size in 16-bit words. The stack
	// grows down from the top; globals sit at the bottom.
	DefaultRAMWords = 4096
	// DefaultFlashBytes is the program memory size in bytes (Harvard
	// architecture: flash is separate from RAM and byte-accounted via
	// CostModel.Bytes).
	DefaultFlashBytes = 32 * 1024
)

// ADC characteristics of the M16 part. The converter saturates at its
// rails, so a SENSE destination register is architecturally guaranteed to
// hold a value in [0, ADCMaxReading] — the simulator cores, the workload
// generators, and the static value-range analysis all rely on the same
// constant.
const (
	// ADCBits is the converter resolution.
	ADCBits = 10
	// ADCMaxReading is the highest value SENSE can produce (the positive
	// rail of the 10-bit converter).
	ADCMaxReading = 1<<ADCBits - 1
)

// ClampADC saturates a raw sample at the converter rails, exactly as the
// SENSE instruction does.
func ClampADC(v uint16) uint16 {
	if v > ADCMaxReading {
		return ADCMaxReading
	}
	return v
}
