package isa

// CostModel gives per-opcode base cycle counts and encoded sizes in bytes.
// Both the simulator and the compiler's static timing model consult this
// table, which is what lets Code Tomography predict end-to-end durations
// from the program text alone.
//
// Conditional branches have an asymmetric cost handled outside this table:
// the base cost below is the not-redirecting cost; a taken conditional
// branch (pipeline redirect) additionally pays TakenPenalty when the static
// predictor guessed wrong (see package mote).
type CostModel struct {
	Cycles [numOps]uint32
	Bytes  [numOps]uint32
	// TakenPenalty is the pipeline-flush penalty, in cycles, paid by a
	// conditional branch whose outcome the static predictor mispredicted.
	TakenPenalty uint32
	// PageSizeBytes is the size of one flash page (the instruction-fetch
	// buffer granule). PageCrossPenalty is the refill stall, in cycles,
	// paid when a control-flow redirect — an executed JMP or a *taken*
	// conditional branch — lands on a different flash page than the
	// transfer instruction itself. Sequential fetch is free (the buffer is
	// refilled ahead of the fetch stream), and CALL/RET are exempt: a
	// return's page locality depends on the call site, not the callee, so
	// charging it would make a block's cost depend on its caller and break
	// the per-edge determinism the timing model relies on. A zero penalty
	// (the default) disables the whole mechanism bit-for-bit.
	PageSizeBytes    uint32
	PageCrossPenalty uint32
}

// DefaultCostModel returns the cost table used throughout the evaluation.
// The values follow low-end in-order MCUs: single-cycle ALU, two-cycle
// memory, multi-cycle multiply/divide, and multi-cycle control transfers.
func DefaultCostModel() *CostModel {
	m := &CostModel{TakenPenalty: 2, PageSizeBytes: 256}
	for op := Op(0); op < numOps; op++ {
		m.Cycles[op] = 1
		m.Bytes[op] = 2
	}
	set := func(op Op, cyc, bytes uint32) {
		m.Cycles[op] = cyc
		m.Bytes[op] = bytes
	}
	set(LDI, 1, 4)
	set(ADDI, 1, 4)
	set(XORI, 1, 4)
	set(MUL, 2, 2)
	set(DIV, 8, 2)
	set(MOD, 8, 2)
	set(LD, 2, 4)
	set(ST, 2, 4)
	set(PUSH, 2, 2)
	set(POP, 2, 2)
	set(SPADJ, 1, 4)
	set(JMP, 2, 4)
	set(BZ, 1, 4)
	set(BNZ, 1, 4)
	set(BEQ, 1, 4)
	set(BNE, 1, 4)
	set(BLT, 1, 4)
	set(BGE, 1, 4)
	set(CALL, 4, 4)
	set(RET, 4, 2)
	set(IN, 1, 4)
	set(OUT, 1, 4)
	// TRACE stands for: read 16-bit timer + store (id, ts) into a RAM ring
	// buffer. PROFCNT stands for: load counter, increment, store.
	set(TRACE, 5, 4)
	set(PROFCNT, 4, 4)
	m.Cycles[HALT] = 1
	return m
}

// InstrCycles returns the base cycle cost of one instruction (excluding
// any branch-redirect penalty).
func (m *CostModel) InstrCycles(i Instr) uint32 { return m.Cycles[i.Op] }

// InstrBytes returns the encoded size of one instruction in bytes.
func (m *CostModel) InstrBytes(i Instr) uint32 { return m.Bytes[i.Op] }

// CodeBytes returns the total encoded size of a code sequence.
func (m *CostModel) CodeBytes(code []Instr) uint32 {
	var n uint32
	for _, in := range code {
		n += m.InstrBytes(in)
	}
	return n
}

// ByteOffsets returns the flash byte offset of every instruction plus a
// final entry one past the last byte (len(code)+1 entries): the prefix
// sums of the per-instruction encodings. Both the simulator's page table
// and the compiler's page-crossing analysis are derived from it.
func (m *CostModel) ByteOffsets(code []Instr) []uint32 {
	off := make([]uint32, len(code)+1)
	var n uint32
	for i, in := range code {
		off[i] = n
		n += m.InstrBytes(in)
	}
	off[len(code)] = n
	return off
}

// PageTable returns each instruction's flash page index (byte offset /
// PageSizeBytes), or nil when the model has no page penalty configured —
// the signal both interpreter cores use to skip the page check entirely.
func (m *CostModel) PageTable(code []Instr) []uint32 {
	if m.PageCrossPenalty == 0 || m.PageSizeBytes == 0 {
		return nil
	}
	off := m.ByteOffsets(code)
	pages := make([]uint32, len(code))
	for i := range pages {
		pages[i] = off[i] / m.PageSizeBytes
	}
	return pages
}

// Port numbers of the mote's peripherals (for IN/OUT).
const (
	PortTimer     = 0 // IN: current timer tick (cycles / TickDiv)
	PortADC       = 1 // IN: next sensor reading from the workload source
	PortRNG       = 2 // IN: pseudo-random 16-bit value from the entropy source
	PortLED       = 3 // OUT: LED state bits
	PortRadioData = 4 // OUT: append a word to the radio TX buffer
	PortRadioCtl  = 5 // OUT: 1 = transmit buffered packet; IN: last TX status
	PortDebug     = 6 // OUT: append a word to the debug capture (tests use this)
)
