package isa

import (
	"strings"
	"testing"
)

func TestOpNamesComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if opNames[op] == "" {
			t.Fatalf("opcode %d has no name", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LDI, Rd: 1, Imm: 42}, "ldi r1, 42"},
		{Instr{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: LD, Rd: 1, Ra: 15, Imm: -2}, "ld r1, [r15-2]"},
		{Instr{Op: ST, Ra: 15, Imm: 3, Rb: 2}, "st [r15+3], r2"},
		{Instr{Op: BZ, Ra: 1, Imm: 10}, "bz r1, 10"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: IN, Rd: 3, Imm: PortADC}, "in r3, port1"},
		{Instr{Op: OUT, Imm: PortLED, Ra: 2}, "out port3, r2"},
		{Instr{Op: TRACE, Imm: 7}, "trace 7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	if !(Instr{Op: BZ}).IsCondBranch() || !(Instr{Op: BGE}).IsCondBranch() {
		t.Fatal("conditional branches not classified")
	}
	if (Instr{Op: JMP}).IsCondBranch() {
		t.Fatal("JMP classified as conditional")
	}
	if !(Instr{Op: JMP}).IsTerminator() || !(Instr{Op: RET}).IsTerminator() || !(Instr{Op: HALT}).IsTerminator() {
		t.Fatal("terminators not classified")
	}
	if (Instr{Op: BNZ}).IsTerminator() {
		t.Fatal("conditional branch classified as terminator")
	}
}

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel()
	for op := Op(0); op < numOps; op++ {
		if m.Cycles[op] == 0 {
			t.Fatalf("op %v has zero cycle cost", op)
		}
		if m.Bytes[op] == 0 {
			t.Fatalf("op %v has zero size", op)
		}
	}
	if m.Cycles[DIV] <= m.Cycles[ADD] {
		t.Fatal("DIV should cost more than ADD")
	}
	if m.Cycles[LD] <= m.Cycles[MOV] {
		t.Fatal("LD should cost more than MOV")
	}
	if m.TakenPenalty == 0 {
		t.Fatal("taken penalty must be nonzero for placement to matter")
	}
}

func TestCodeBytes(t *testing.T) {
	m := DefaultCostModel()
	code := []Instr{{Op: LDI}, {Op: ADD}, {Op: RET}}
	want := m.Bytes[LDI] + m.Bytes[ADD] + m.Bytes[RET]
	if got := m.CodeBytes(code); got != want {
		t.Fatalf("CodeBytes = %d, want %d", got, want)
	}
}

func TestRegString(t *testing.T) {
	if Reg(7).String() != "r7" {
		t.Fatal("Reg string wrong")
	}
	if !strings.HasPrefix(RegFP.String(), "r15") {
		t.Fatal("FP convention changed")
	}
}
