// Package isa defines the M16 instruction set — the machine language of the
// simulated sensor mote. M16 is a 16-bit in-order RISC MCU in the spirit of
// the AVR/MSP430 parts used on sensor motes:
//
//   - 16 general registers r0..r15 (r0 also carries return values, r15 is
//     the frame pointer by software convention) plus a dedicated SP.
//   - Data memory is word-addressed (16-bit words); program memory is a
//     separate flash addressed by instruction index (Harvard architecture).
//   - No condition flags: conditional control flow uses compare-and-branch
//     and branch-on-(non)zero instructions.
//   - No dynamic branch prediction: the pipeline statically predicts every
//     conditional branch (policy configurable), and pays a flush penalty
//     when the prediction is wrong. Code placement therefore directly
//     controls the misprediction rate — the effect the paper optimizes.
//
// The package also owns the cycle table and the byte-size table used for
// both execution timing and static code-size accounting, so the simulator
// and the compiler's timing model can never disagree.
package isa

import "fmt"

// Reg is a register number 0..15.
type Reg uint8

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Software register conventions used by the compiler backend.
const (
	RegRet      Reg = 0  // return value
	RegScratch1 Reg = 1  // codegen scratch
	RegScratch2 Reg = 2  // codegen scratch
	RegScratch3 Reg = 3  // codegen scratch
	RegFP       Reg = 15 // frame pointer
)

// Op enumerates M16 opcodes.
type Op uint8

// M16 opcodes.
const (
	NOP Op = iota
	HALT
	LDI   // rd = imm
	MOV   // rd = ra
	ADD   // rd = ra + rb
	SUB   // rd = ra - rb
	MUL   // rd = ra * rb (low 16 bits)
	DIV   // rd = ra / rb (signed; trap on zero)
	MOD   // rd = ra % rb (signed; trap on zero)
	AND   // rd = ra & rb
	OR    // rd = ra | rb
	XOR   // rd = ra ^ rb
	SHL   // rd = ra << (rb & 15)
	SHR   // rd = ra >> (rb & 15) logical
	SAR   // rd = ra >> (rb & 15) arithmetic
	ADDI  // rd = ra + imm
	XORI  // rd = ra ^ imm
	SLT   // rd = (ra < rb) signed ? 1 : 0
	SLTU  // rd = (ra < rb) unsigned ? 1 : 0
	SEQ   // rd = (ra == rb) ? 1 : 0
	LD    // rd = mem[ra + imm]
	ST    // mem[ra + imm] = rb
	PUSH  // mem[--sp] = ra
	POP   // rd = mem[sp++]
	SPADJ // sp += imm
	GETSP // rd = sp
	JMP   // pc = imm
	BZ    // if ra == 0: pc = imm
	BNZ   // if ra != 0: pc = imm
	BEQ   // if ra == rb: pc = imm
	BNE   // if ra != rb: pc = imm
	BLT   // if ra < rb (signed): pc = imm
	BGE   // if ra >= rb (signed): pc = imm
	CALL  // mem[--sp] = pc+1; pc = imm
	RET   // pc = mem[sp++]
	IN    // rd = port[imm]
	OUT   // port[imm] = ra
	// TRACE and PROFCNT are instrumentation pseudo-instructions. On real
	// hardware each stands for a short stub (read timer + append to a log
	// buffer; load-increment-store of a RAM counter). Modeling them as
	// single instructions with the stub's aggregate cycle/byte cost keeps
	// the perturbation they cause explicit and centrally configurable.
	TRACE   // log (imm, timer) to the trace buffer
	PROFCNT // profiling counter imm++
	numOps
)

var opNames = [numOps]string{
	NOP: "nop", HALT: "halt", LDI: "ldi", MOV: "mov", ADD: "add", SUB: "sub",
	MUL: "mul", DIV: "div", MOD: "mod", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SAR: "sar", ADDI: "addi", XORI: "xori",
	SLT: "slt", SLTU: "sltu", SEQ: "seq", LD: "ld", ST: "st",
	PUSH: "push", POP: "pop", SPADJ: "spadj", GETSP: "getsp",
	JMP: "jmp", BZ: "bz", BNZ: "bnz", BEQ: "beq", BNE: "bne",
	BLT: "blt", BGE: "bge", CALL: "call", RET: "ret", IN: "in", OUT: "out",
	TRACE: "trace", PROFCNT: "profcnt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one M16 instruction. Unused fields are zero.
type Instr struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int32 // immediate / address / port, sign-extended
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instr) IsCondBranch() bool {
	switch i.Op {
	case BZ, BNZ, BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through this
// instruction (unconditional transfer or stop).
func (i Instr) IsTerminator() bool {
	switch i.Op {
	case JMP, RET, HALT:
		return true
	}
	return false
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT, RET:
		return i.Op.String()
	case LDI:
		return fmt.Sprintf("%s %v, %d", i.Op, i.Rd, i.Imm)
	case MOV, GETSP:
		if i.Op == GETSP {
			return fmt.Sprintf("%s %v", i.Op, i.Rd)
		}
		return fmt.Sprintf("%s %v, %v", i.Op, i.Rd, i.Ra)
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR, SLT, SLTU, SEQ:
		return fmt.Sprintf("%s %v, %v, %v", i.Op, i.Rd, i.Ra, i.Rb)
	case ADDI, XORI:
		return fmt.Sprintf("%s %v, %v, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case LD:
		return fmt.Sprintf("%s %v, [%v%+d]", i.Op, i.Rd, i.Ra, i.Imm)
	case ST:
		return fmt.Sprintf("%s [%v%+d], %v", i.Op, i.Ra, i.Imm, i.Rb)
	case PUSH:
		return fmt.Sprintf("%s %v", i.Op, i.Ra)
	case POP:
		return fmt.Sprintf("%s %v", i.Op, i.Rd)
	case SPADJ:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case JMP, CALL:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case BZ, BNZ:
		return fmt.Sprintf("%s %v, %d", i.Op, i.Ra, i.Imm)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %v, %v, %d", i.Op, i.Ra, i.Rb, i.Imm)
	case IN:
		return fmt.Sprintf("%s %v, port%d", i.Op, i.Rd, i.Imm)
	case OUT:
		return fmt.Sprintf("%s port%d, %v", i.Op, i.Imm, i.Ra)
	case TRACE, PROFCNT:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	default:
		return fmt.Sprintf("%s ?", i.Op)
	}
}
