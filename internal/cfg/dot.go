package cfg

import (
	"fmt"
	"strings"
)

// DOT renders the procedure's CFG in Graphviz DOT syntax, with optional
// edge annotations (e.g. probabilities) keyed by [from,to] pairs.
func (p *Proc) DOT(edgeLabels map[[2]int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	b.WriteString("  node [shape=box fontname=monospace];\n")
	for _, blk := range p.Blocks {
		var body strings.Builder
		fmt.Fprintf(&body, "%v (%s)\\l", blk.ID, blk.Label)
		for _, in := range blk.Instrs {
			body.WriteString(escapeDOT(in.String()))
			body.WriteString("\\l")
		}
		body.WriteString(escapeDOT(blk.Term.String()))
		body.WriteString("\\l")
		shape := ""
		if blk.ID == p.Entry {
			shape = " penwidth=2"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", int(blk.ID), body.String(), shape)
	}
	for _, e := range p.Edges() {
		label := ""
		if edgeLabels != nil {
			if s, ok := edgeLabels[[2]int{int(e.From), int(e.To)}]; ok {
				label = fmt.Sprintf(" [label=%q]", s)
			}
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", int(e.From), int(e.To), label)
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
