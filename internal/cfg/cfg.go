// Package cfg provides the control-flow-graph representation of lowered
// procedures plus the graph algorithms the rest of the system needs:
// reachability, reverse postorder, dominators, natural-loop detection, and
// DOT export for debugging.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"codetomo/internal/ir"
)

// Block is a basic block: a straight-line instruction sequence ended by a
// single terminator.
type Block struct {
	ID     ir.BlockID
	Label  string // human-readable label for listings and DOT output
	Instrs []ir.Instr
	Term   ir.Terminator
	// SrcPos optionally records, per instruction, the source position of
	// the statement that produced it (parallel to Instrs). Either empty or
	// exactly len(Instrs) long; Validate enforces the invariant. Passes
	// that copy or splice Instrs must keep SrcPos in sync.
	SrcPos []ir.Pos
}

// InstrPos returns the source position of instruction i, or the zero Pos
// when positions were not recorded.
func (b *Block) InstrPos(i int) ir.Pos {
	if i < 0 || i >= len(b.SrcPos) {
		return ir.Pos{}
	}
	return b.SrcPos[i]
}

// Succs returns the successor block IDs of b.
func (b *Block) Succs() []ir.BlockID {
	if b.Term == nil {
		return nil
	}
	return b.Term.Successors()
}

// Proc is a procedure: its blocks (indexed by BlockID), entry block, and
// signature information needed by the backend.
type Proc struct {
	Name    string
	Params  []string
	HasRet  bool
	Blocks  []*Block
	Entry   ir.BlockID
	NumTemp int // number of virtual registers used
	// Locals lists scalar local variable names (excluding params).
	Locals []string
	// Arrays maps local array names to their length. Global arrays are
	// held on the Program.
	Arrays map[string]int
}

// Block returns the block with the given ID.
func (p *Proc) Block(id ir.BlockID) *Block { return p.Blocks[int(id)] }

// Edge is a directed CFG edge.
type Edge struct {
	From, To ir.BlockID
	// Index is the successor position within From's terminator
	// (0 = taken/true or jump target, 1 = false/fall-through of a Br).
	Index int
}

// Edges returns all CFG edges in deterministic order.
func (p *Proc) Edges() []Edge {
	var out []Edge
	for _, b := range p.Blocks {
		for i, s := range b.Succs() {
			out = append(out, Edge{From: b.ID, To: s, Index: i})
		}
	}
	return out
}

// BranchBlocks returns the IDs of blocks with two or more successors, in
// ascending order. These are the blocks whose outgoing probabilities the
// tomography estimator must recover.
func (p *Proc) BranchBlocks() []ir.BlockID {
	var out []ir.BlockID
	for _, b := range p.Blocks {
		if len(b.Succs()) >= 2 {
			out = append(out, b.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Preds returns the predecessor map of the graph.
func (p *Proc) Preds() map[ir.BlockID][]ir.BlockID {
	preds := make(map[ir.BlockID][]ir.BlockID, len(p.Blocks))
	for _, b := range p.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// Reachable returns the set of blocks reachable from the entry.
func (p *Proc) Reachable() map[ir.BlockID]bool {
	seen := make(map[ir.BlockID]bool)
	var walk func(id ir.BlockID)
	walk = func(id ir.BlockID) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, s := range p.Block(id).Succs() {
			walk(s)
		}
	}
	walk(p.Entry)
	return seen
}

// ReversePostorder returns reachable blocks in reverse postorder from the
// entry — the canonical forward-dataflow iteration order.
func (p *Proc) ReversePostorder() []ir.BlockID {
	seen := make(map[ir.BlockID]bool)
	var post []ir.BlockID
	var walk func(id ir.BlockID)
	walk = func(id ir.BlockID) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, s := range p.Block(id).Succs() {
			walk(s)
		}
		post = append(post, id)
	}
	walk(p.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Exits returns the blocks that leave the procedure (Ret or Halt
// terminators), in ascending order.
func (p *Proc) Exits() []ir.BlockID {
	var out []ir.BlockID
	for _, b := range p.Blocks {
		switch b.Term.(type) {
		case ir.Ret, ir.Halt:
			out = append(out, b.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the structural invariants the rest of the pipeline relies
// on: every block has a terminator, successor IDs are in range, block IDs
// match their index, the entry is in range, SrcPos (when present) parallels
// Instrs, and every temp referenced by an instruction or terminator lies in
// [0, NumTemp).
func (p *Proc) Validate() error {
	if int(p.Entry) < 0 || int(p.Entry) >= len(p.Blocks) {
		return fmt.Errorf("cfg: %s: entry %v out of range", p.Name, p.Entry)
	}
	if p.NumTemp < 0 {
		return fmt.Errorf("cfg: %s: negative NumTemp %d", p.Name, p.NumTemp)
	}
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("cfg: %s: nil block %d", p.Name, i)
		}
		if int(b.ID) != i {
			return fmt.Errorf("cfg: %s: block %d has ID %v", p.Name, i, b.ID)
		}
		if b.Term == nil {
			return fmt.Errorf("cfg: %s: block %v lacks a terminator", p.Name, b.ID)
		}
		if len(b.SrcPos) != 0 && len(b.SrcPos) != len(b.Instrs) {
			return fmt.Errorf("cfg: %s: block %v has %d source positions for %d instructions",
				p.Name, b.ID, len(b.SrcPos), len(b.Instrs))
		}
		for _, s := range b.Succs() {
			if int(s) < 0 || int(s) >= len(p.Blocks) {
				return fmt.Errorf("cfg: %s: block %v has out-of-range successor %v", p.Name, b.ID, s)
			}
		}
		if err := p.validateTemps(b); err != nil {
			return err
		}
	}
	return nil
}

// validateTemps checks that every temp a block references is consistent
// with the procedure's declared NumTemp.
func (p *Proc) validateTemps(b *Block) error {
	check := func(t ir.Temp, what string, idx int) error {
		if int(t) < 0 || int(t) >= p.NumTemp {
			return fmt.Errorf("cfg: %s: block %v instr %d: %s %v outside [0, NumTemp=%d)",
				p.Name, b.ID, idx, what, t, p.NumTemp)
		}
		return nil
	}
	var err error
	for idx, in := range b.Instrs {
		if err != nil {
			break
		}
		if d, ok := ir.InstrDef(in); ok && err == nil {
			err = check(d, "def", idx)
		}
		ir.InstrUses(in, func(t ir.Temp) {
			if err == nil {
				err = check(t, "use", idx)
			}
		})
	}
	if err != nil {
		return err
	}
	ir.TermUses(b.Term, func(t ir.Temp) {
		if err == nil {
			err = check(t, "terminator use", len(b.Instrs))
		}
	})
	return err
}

// String renders the procedure as a readable listing.
func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s(%s) entry=%v\n", p.Name, strings.Join(p.Params, ", "), p.Entry)
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "%v (%s):\n", blk.ID, blk.Label)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in)
		}
		fmt.Fprintf(&b, "    %s\n", blk.Term)
	}
	return b.String()
}

// GlobalInit records a constant initial value for a scalar global.
type GlobalInit struct {
	Name string
	Val  int
}

// Program is a whole compilation unit.
type Program struct {
	Procs []*Proc
	// Globals lists scalar global names; GlobalArrays maps array globals
	// to their lengths.
	Globals      []string
	GlobalArrays map[string]int
	// GlobalInits lists nonzero constant initializers applied by the
	// startup stub before main runs.
	GlobalInits []GlobalInit
}

// Proc returns the procedure with the given name, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Validate validates all procedures, identifying the offending procedure
// by name and index in the error.
func (p *Program) Validate() error {
	for i, pr := range p.Procs {
		if pr == nil {
			return fmt.Errorf("cfg: program: nil procedure at index %d", i)
		}
		if err := pr.Validate(); err != nil {
			return fmt.Errorf("proc %d (%s): %w", i, pr.Name, err)
		}
	}
	return nil
}
