package cfg

import (
	"sort"

	"codetomo/internal/ir"
)

// LoopNest organizes a procedure's natural loops into a nesting forest.
// Natural loops of a reducible CFG are either disjoint or properly nested,
// so body containment induces a forest; loops sharing a header were already
// merged by NaturalLoops.
type LoopNest struct {
	// Loops are the natural loops, sorted by header (NaturalLoops order).
	Loops []Loop
	// Parent[i] is the index of the smallest loop properly containing
	// Loops[i], or -1 for outermost loops.
	Parent []int
	// Depth[i] is the nesting depth (1 = outermost).
	Depth []int

	inner map[ir.BlockID]int // innermost loop per block, absent = none
}

// BuildLoopNest computes the loop-nesting forest of a procedure.
func (p *Proc) BuildLoopNest() *LoopNest {
	n := &LoopNest{
		Loops: p.NaturalLoops(),
		inner: make(map[ir.BlockID]int),
	}
	n.Parent = make([]int, len(n.Loops))
	n.Depth = make([]int, len(n.Loops))
	for i := range n.Loops {
		n.Parent[i] = -1
		for j := range n.Loops {
			if i == j || !n.Loops[j].Body[n.Loops[i].Header] {
				continue
			}
			// j contains i (headers are distinct, so containment of the
			// header implies containment of the body); keep the smallest
			// such loop as the direct parent.
			if n.Parent[i] == -1 || len(n.Loops[j].Body) < len(n.Loops[n.Parent[i]].Body) {
				n.Parent[i] = j
			}
		}
	}
	for i := range n.Loops {
		d := 1
		for a := n.Parent[i]; a != -1; a = n.Parent[a] {
			d++
		}
		n.Depth[i] = d
	}
	for i, l := range n.Loops {
		for b := range l.Body {
			cur, ok := n.inner[b]
			if !ok || len(l.Body) < len(n.Loops[cur].Body) {
				n.inner[b] = i
			}
		}
	}
	return n
}

// Innermost returns the index (into Loops) of the smallest loop containing
// block b, or -1 when b is outside every loop.
func (n *LoopNest) Innermost(b ir.BlockID) int {
	if i, ok := n.inner[b]; ok {
		return i
	}
	return -1
}

// InnermostFirst returns the loop indices ordered deepest-first — the
// order in which bound composition must contract loops.
func (n *LoopNest) InnermostFirst() []int {
	order := make([]int, len(n.Loops))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := n.Depth[order[a]], n.Depth[order[b]]
		if da != db {
			return da > db
		}
		return n.Loops[order[a]].Header < n.Loops[order[b]].Header
	})
	return order
}

// ChildIn maps a body block of loop li to the node representing it when
// loop li is viewed with its child loops contracted: the index of the
// direct child loop containing b (returned as a loop index), or -1 when b
// belongs to li itself. b must be in Loops[li].Body.
func (n *LoopNest) ChildIn(li int, b ir.BlockID) int {
	c := n.Innermost(b)
	for c != -1 && c != li {
		if n.Parent[c] == li {
			return c
		}
		c = n.Parent[c]
	}
	return -1
}
